#!/usr/bin/env python3
"""Perf-regression gate for bench_routing output.

Compares a fresh BENCH_routing.json against the checked-in
bench/baseline.json and fails (exit 1) when the run regressed:

  * hard invariants -- summary all_identical / all_complete must be true,
    and per design the routed QUALITY must be exactly the baseline's:
    total_channel_length, matched_channel_length, matched_clusters.
    Routing is deterministic, so any drift here is a functional change,
    not noise, and has no tolerance band.
  * search-effort counters (search.*.searches / expansions /
    bounded_visits) -- allowed to drift by --counter-tolerance
    (default 10%) to absorb intentional kernel tweaks; growth beyond
    that is an algorithmic regression even if wall-time hides it.
  * serial wall-time per design and in total -- allowed to grow by
    --time-tolerance (default 100%, i.e. 2x; CI machines are noisy,
    local runs can pass --time-tolerance=0.02 for the paper's <2% bar).

Usage:
  bench/compare_baseline.py CURRENT.json BASELINE.json \
      [--time-tolerance=1.0] [--counter-tolerance=0.10]
"""

import json
import sys


def fail(violations):
    print("\nPERF GATE: FAIL")
    width = max(len(v[0]) for v in violations)
    for where, what in violations:
        print(f"  {where:<{width}}  {what}")
    return 1


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__.strip())
        return 2
    time_tol = 1.0
    counter_tol = 0.10
    for a in argv[1:]:
        if a.startswith("--time-tolerance="):
            time_tol = float(a.split("=", 1)[1])
        elif a.startswith("--counter-tolerance="):
            counter_tol = float(a.split("=", 1)[1])
        elif a.startswith("--"):
            print(f"unknown option {a}")
            return 2

    with open(args[0]) as f:
        current = json.load(f)
    with open(args[1]) as f:
        baseline = json.load(f)

    violations = []

    for key in ("all_identical", "all_complete"):
        if not current["summary"].get(key, False):
            violations.append(("summary", f"{key} is false"))

    cur_by_name = {d["design"]: d for d in current["designs"]}
    for base in baseline["designs"]:
        name = base["design"]
        cur = cur_by_name.get(name)
        if cur is None:
            violations.append((name, "design missing from current run"))
            continue

        # Routed quality: exact, no band.
        for key in ("total_channel_length", "matched_channel_length",
                    "matched_clusters", "complete"):
            if cur.get(key) != base.get(key):
                violations.append(
                    (name, f"{key}: {cur.get(key)} != baseline {base.get(key)}"))

        # Search effort: banded.
        for stage, counters in base.get("search", {}).items():
            for counter, ref in counters.items():
                got = cur.get("search", {}).get(stage, {}).get(counter)
                if got is None:
                    violations.append((name, f"search.{stage}.{counter} missing"))
                elif got > ref * (1.0 + counter_tol) + 1:
                    violations.append(
                        (name, f"search.{stage}.{counter}: {got} > "
                               f"{ref} +{counter_tol:.0%}"))

        # Wall-time: banded.
        ref = base["serial_seconds"]
        got = cur["serial_seconds"]
        if got > ref * (1.0 + time_tol):
            violations.append(
                (name, f"serial_seconds: {got:.3f}s > {ref:.3f}s +{time_tol:.0%}"))

    ref = baseline["summary"]["serial_seconds_total"]
    got = current["summary"]["serial_seconds_total"]
    if got > ref * (1.0 + time_tol):
        violations.append(
            ("summary", f"serial_seconds_total: {got:.3f}s > {ref:.3f}s "
                        f"+{time_tol:.0%}"))

    if violations:
        return fail(violations)
    print(f"PERF GATE: OK ({len(baseline['designs'])} designs, "
          f"serial total {got:.3f}s vs baseline {ref:.3f}s, "
          f"time tolerance {time_tol:.0%}, counter tolerance {counter_tol:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
