#!/usr/bin/env python3
"""Perf-regression gate for bench_routing output.

Compares a fresh BENCH_routing.json against the checked-in
bench/baseline.json and fails (exit 1) when the run regressed:

  * hard invariants -- summary all_identical / all_complete must be true,
    and per design the routed QUALITY must be exactly the baseline's:
    total_channel_length, matched_channel_length, matched_clusters.
    Routing is deterministic, so any drift here is a functional change,
    not noise, and has no tolerance band.
  * search-effort counters (search.*.searches / expansions /
    bounded_visits) -- allowed to drift by --counter-tolerance
    (default 10%) to absorb intentional kernel tweaks; growth beyond
    that is an algorithmic regression even if wall-time hides it.
  * serial wall-time per design and in total -- allowed to grow by
    --time-tolerance (default 100%, i.e. 2x; CI machines are noisy,
    local runs can pass --time-tolerance=0.02 for the paper's <2% bar).
  * escape-stage wall-time per design (metrics time.escape_s) -- banded
    by --stage-time-tolerance (defaults to --time-tolerance). The escape
    stage is ~99% of the serial time on the flow-dominated designs, so a
    regression in the escape-flow kernel fails the gate here even when
    total-time noise would hide it.
  * golden-hash cross-check -- each design's solution_sha256 (the SHA-256
    of the canonical solution text, emitted by bench_routing) must match
    tests/golden/solution_hashes.txt, in BOTH the current run and the
    baseline. Routed quality may only ever move together with a golden
    re-pin, so baseline.json and the goldens cannot drift apart silently:
    regenerate the hashes and the baseline in the same change.
    --golden=PATH overrides the hash file (default: resolved relative to
    this script); --golden=none skips the cross-check.
  * ECO re-route rows (eco.seconds, the 1-valve-move rerouteChip latency)
    -- banded by --time-tolerance when the baseline carries them, and the
    Chip1 speedup over from-scratch routing is hard-gated at
    --eco-speedup-min (default 3x) whenever the current run reports it:
    the incremental path losing its edge over routeChip is a regression
    with no tolerance band.

With --serve the inputs are BENCH_serve.json files (bench_serve_net's
socket replay report) and the gate checks instead:

  * hard invariants -- zero error responses, zero hash mismatches,
    all_hashes_match true, at least one ok response, and warm repeats:
    warm_hits == warm_eligible (the per-design FIFO affinity contract --
    a repeat request that rebuilt its escape session cold is a
    functional regression, not noise).
  * ok-latency p99 -- allowed to grow by --time-tolerance over the
    baseline's p99 (latency is the noisiest number here; CI passes a
    generous band).
  * warm_hit_ratio -- may not drop more than --warm-tolerance
    (default 0.10, absolute) below the baseline's ratio.
  * golden-hash cross-check -- each design row's sha256 (the one-shot
    reference hash the replay driver verified every response against)
    must match tests/golden/solution_hashes.txt in both files.

Usage:
  bench/compare_baseline.py CURRENT.json BASELINE.json \
      [--time-tolerance=1.0] [--stage-time-tolerance=T] \
      [--counter-tolerance=0.10] [--golden=PATH] [--eco-speedup-min=3.0] \
      [--serve] [--warm-tolerance=0.10]
"""

import json
import os
import sys


def fail(violations):
    print("\nPERF GATE: FAIL")
    width = max(len(v[0]) for v in violations)
    for where, what in violations:
        print(f"  {where:<{width}}  {what}")
    return 1


REPIN_HINT = ("re-pin tests/golden/solution_hashes.txt and regenerate "
              "bench/baseline.json in the same change")


def default_golden_path():
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "tests", "golden", "solution_hashes.txt")


def load_golden(path):
    """{design: sha256} from the 'name hash' lines of the golden file."""
    golden = {}
    with open(path) as f:
        for line in f:
            parts = line.split()
            if len(parts) == 2:
                golden[parts[0]] = parts[1]
    return golden


def check_golden(golden, label, design, violations):
    """Cross-checks one design record against the pinned golden hash."""
    name = design["design"]
    got = design.get("solution_sha256")
    ref = golden.get(name)
    if ref is None:
        violations.append((name, f"no golden hash pinned for this design; "
                                 f"{REPIN_HINT}"))
    elif got is None:
        violations.append((name, f"{label} lacks solution_sha256 (rerun "
                                 f"bench_routing; {REPIN_HINT})"))
    elif got != ref:
        violations.append((name, f"{label} solution_sha256 {got[:12]}... != "
                                 f"golden {ref[:12]}...: routed output moved "
                                 f"without a golden re-pin; {REPIN_HINT}"))


def serve_gate(current, baseline, golden, time_tol, warm_tol):
    """The --serve mode: gates a BENCH_serve.json against its baseline."""
    violations = []
    cur = current["summary"]
    base = baseline["summary"]

    if cur.get("errors", 1) != 0:
        violations.append(("summary", f"{cur.get('errors')} error response(s)"))
    # Nominal runs carry no aggressive deadline, so any expiry means a
    # request timed out unexpectedly -- a liveness regression, hard fail.
    if cur.get("deadline_expired", 0) != 0:
        violations.append(
            ("summary", f"{cur.get('deadline_expired')} request(s) expired "
                        f"past their deadline in the nominal run"))
    if cur.get("hash_mismatches", 1) != 0 or not cur.get("all_hashes_match"):
        violations.append(("summary",
                           f"{cur.get('hash_mismatches')} hash mismatch(es)"))
    if cur.get("ok", 0) < 1:
        violations.append(("summary", "no ok responses at all"))
    if cur.get("warm_hits") != cur.get("warm_eligible"):
        violations.append(
            ("summary", f"warm_hits {cur.get('warm_hits')} != warm_eligible "
                        f"{cur.get('warm_eligible')}: a repeat-design request "
                        f"rebuilt its escape session cold"))

    ref_p99 = base["latency_ms"]["p99"]
    got_p99 = cur["latency_ms"]["p99"]
    if got_p99 > ref_p99 * (1.0 + time_tol):
        violations.append(
            ("latency", f"p99: {got_p99:.1f}ms > {ref_p99:.1f}ms "
                        f"+{time_tol:.0%}"))

    ref_ratio = base.get("warm_hit_ratio", 0.0)
    got_ratio = cur.get("warm_hit_ratio", 0.0)
    if got_ratio < ref_ratio - warm_tol:
        violations.append(
            ("warm", f"warm_hit_ratio: {got_ratio:.2f} < baseline "
                     f"{ref_ratio:.2f} - {warm_tol:.2f}"))

    if golden is not None:
        for label, report in (("current run", current), ("baseline", baseline)):
            for row in report.get("designs", []):
                ref = golden.get(row["design"])
                if ref is not None and row.get("sha256") != ref:
                    violations.append(
                        (row["design"],
                         f"{label} sha256 {row.get('sha256', '')[:12]}... != "
                         f"golden {ref[:12]}...; {REPIN_HINT}"))

    if violations:
        return fail(violations)
    golden_note = ("golden hashes cross-checked" if golden is not None
                   else "golden cross-check skipped")
    print(f"PERF GATE: OK (serve: {cur.get('ok')} ok / {cur.get('busy')} busy "
          f"over {cur.get('requests')} requests, p99 {got_p99:.1f}ms vs "
          f"baseline {ref_p99:.1f}ms +{time_tol:.0%}, warm ratio "
          f"{got_ratio:.2f} vs {ref_ratio:.2f} -{warm_tol:.2f}, {golden_note})")
    return 0


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__.strip())
        return 2
    time_tol = 1.0
    stage_time_tol = None
    counter_tol = 0.10
    eco_speedup_min = 3.0
    warm_tol = 0.10
    serve_mode = False
    golden_path = default_golden_path()
    for a in argv[1:]:
        if a.startswith("--time-tolerance="):
            time_tol = float(a.split("=", 1)[1])
        elif a.startswith("--stage-time-tolerance="):
            stage_time_tol = float(a.split("=", 1)[1])
        elif a.startswith("--counter-tolerance="):
            counter_tol = float(a.split("=", 1)[1])
        elif a.startswith("--eco-speedup-min="):
            eco_speedup_min = float(a.split("=", 1)[1])
        elif a.startswith("--warm-tolerance="):
            warm_tol = float(a.split("=", 1)[1])
        elif a == "--serve":
            serve_mode = True
        elif a.startswith("--golden="):
            golden_path = a.split("=", 1)[1]
        elif a.startswith("--"):
            print(f"unknown option {a}")
            return 2
    if stage_time_tol is None:
        stage_time_tol = time_tol

    golden = None
    if golden_path != "none":
        try:
            golden = load_golden(golden_path)
        except OSError as e:
            print(f"cannot read golden hash file {golden_path}: {e}")
            return 2

    with open(args[0]) as f:
        current = json.load(f)
    with open(args[1]) as f:
        baseline = json.load(f)

    if serve_mode:
        return serve_gate(current, baseline, golden, time_tol, warm_tol)

    violations = []

    for key in ("all_identical", "all_complete"):
        if not current["summary"].get(key, False):
            violations.append(("summary", f"{key} is false"))

    cur_by_name = {d["design"]: d for d in current["designs"]}
    for base in baseline["designs"]:
        name = base["design"]
        cur = cur_by_name.get(name)
        if cur is None:
            violations.append((name, "design missing from current run"))
            continue

        # Routed quality: exact, no band.
        for key in ("total_channel_length", "matched_channel_length",
                    "matched_clusters", "complete"):
            if cur.get(key) != base.get(key):
                violations.append(
                    (name, f"{key}: {cur.get(key)} != baseline {base.get(key)}"))

        # Golden cross-check: quality may only move together with a golden
        # re-pin, in the current run AND in the committed baseline.
        if golden is not None:
            check_golden(golden, "current run", cur, violations)
            check_golden(golden, "baseline", base, violations)

        # Search effort: banded.
        for stage, counters in base.get("search", {}).items():
            for counter, ref in counters.items():
                got = cur.get("search", {}).get(stage, {}).get(counter)
                if got is None:
                    violations.append((name, f"search.{stage}.{counter} missing"))
                elif got > ref * (1.0 + counter_tol) + 1:
                    violations.append(
                        (name, f"search.{stage}.{counter}: {got} > "
                               f"{ref} +{counter_tol:.0%}"))

        # Escape-stage wall-time: banded separately, so an escape-kernel
        # regression is caught even when the design's total time is noisy.
        ref = base.get("metrics", {}).get("time.escape_s")
        got = cur.get("metrics", {}).get("time.escape_s")
        if ref is not None:
            if got is None:
                violations.append((name, "metrics time.escape_s missing"))
            elif got > ref * (1.0 + stage_time_tol):
                violations.append(
                    (name, f"time.escape_s: {got:.3f}s > {ref:.3f}s "
                           f"+{stage_time_tol:.0%}"))

        # ECO re-route latency: banded like wall-time when the baseline
        # carries an eco row. The mode must not degrade either -- a
        # valve-move answered in full mode means the incremental path
        # stopped recognizing the edit.
        ref_eco = base.get("eco")
        cur_eco = cur.get("eco")
        if ref_eco is not None:
            if cur_eco is None:
                violations.append((name, "eco row missing from current run "
                                         "(rerun bench_routing)"))
            else:
                if cur_eco.get("mode") != ref_eco.get("mode"):
                    violations.append(
                        (name, f"eco.mode: {cur_eco.get('mode')} != baseline "
                               f"{ref_eco.get('mode')}"))
                ref_s = ref_eco["seconds"]
                got_s = cur_eco["seconds"]
                if got_s > ref_s * (1.0 + time_tol):
                    violations.append(
                        (name, f"eco.seconds: {got_s:.4f}s > {ref_s:.4f}s "
                               f"+{time_tol:.0%}"))

        # Wall-time: banded.
        ref = base["serial_seconds"]
        got = cur["serial_seconds"]
        if got > ref * (1.0 + time_tol):
            violations.append(
                (name, f"serial_seconds: {got:.3f}s > {ref:.3f}s +{time_tol:.0%}"))

    ref = baseline["summary"]["serial_seconds_total"]
    got = current["summary"]["serial_seconds_total"]
    if got > ref * (1.0 + time_tol):
        violations.append(
            ("summary", f"serial_seconds_total: {got:.3f}s > {ref:.3f}s "
                        f"+{time_tol:.0%}"))

    # Hard ECO floor: the Chip1 1-valve-move re-route must beat
    # from-scratch routing by at least --eco-speedup-min, no band.
    chip1_eco = cur_by_name.get("Chip1", {}).get("eco")
    if chip1_eco is not None:
        speedup = chip1_eco.get("speedup", 0.0)
        if speedup < eco_speedup_min:
            violations.append(
                ("Chip1", f"eco.speedup: {speedup:.2f}x < required "
                          f"{eco_speedup_min:g}x over from-scratch routing"))

    if violations:
        return fail(violations)
    golden_note = ("golden hashes cross-checked" if golden is not None
                   else "golden cross-check skipped")
    eco_note = (f"Chip1 eco speedup {chip1_eco['speedup']:.1f}x >= "
                f"{eco_speedup_min:g}x" if chip1_eco is not None
                else "no eco rows")
    print(f"PERF GATE: OK ({len(baseline['designs'])} designs, "
          f"serial total {got:.3f}s vs baseline {ref:.3f}s, "
          f"time tolerance {time_tol:.0%}, stage tolerance {stage_time_tol:.0%}, "
          f"counter tolerance {counter_tol:.0%}, {golden_note}, {eco_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
