// Socket serve-tier load harness: a multi-connection replay driver.
//
// Fires --requests mixed requests over --connections concurrent clients
// against a serve-net endpoint -- an in-process loopback NetServer by
// default, or an external `pacor serve --listen` instance via
// --connect=HOST:PORT (with a startup retry loop, for CI jobs that
// background the server). The design mix spans the fast Table-1 designs
// plus two fpva: valve arrays; --skew weights the mix zipf-style (design
// i drawn with weight 1/(i+1)^skew), so higher skew concentrates traffic
// on few designs and drives the warm-hit ratio up.
//
// Every ok response's sha256 is checked against a local one-shot
// routeChip of the same design, and the Table-1 designs are additionally
// cross-checked against tests/golden/solution_hashes.txt (--golden=PATH
// to override, --golden=none to skip): the serving tier may never change
// routed bytes. Busy responses are counted (expected under admission
// pressure), error responses are failures.
//
// Writes BENCH_serve.json (consumed by bench/compare_baseline.py
// --serve): request/response tallies, ok-latency p50/p95/p99 ms,
// throughput, warm_hits (ok responses with cold_builds=0) and
// warm_hit_ratio over the warm-eligible requests (ok responses beyond
// each design's first).
//
// Exit 0 when every non-busy response was ok with matching hashes and
// repeat traffic landed warm; 1 otherwise.
//
// --deadline-ms=D appends deadline_ms=D to every request line (works
// against external servers too); deadline-expired responses are tallied
// separately (`deadline_expired` in the JSON) and do not fail the bench --
// the compare gate requires the nominal run to have zero. --max-designs=N
// caps the in-process server's warm-context LRU; under eviction pressure
// the exactly-one-cold affinity check is skipped (hash identity still
// holds) and the post-drain resident count must stay within the cap.
//
// Usage: bench_serve_net [out.json] [--connect=HOST:PORT] [--requests=N]
//          [--connections=C] [--skew=S] [--jobs=N] [--max-inflight=N]
//          [--max-queue=N] [--deadline-ms=D] [--max-designs=N] [--seed=S]
//          [--golden=PATH|none]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "serve/net.hpp"
#include "serve/serve.hpp"
#include "util/sha256.hpp"

namespace {

using namespace pacor;

struct Options {
  std::string outPath = "BENCH_serve.json";
  std::string connectHost;  ///< empty = in-process loopback server
  std::uint16_t connectPort = 0;
  int requests = 1000;
  int connections = 4;
  double skew = 1.0;
  int jobs = 2;
  int maxInflight = 2;
  std::size_t maxQueue = 0;
  std::int64_t deadlineMs = 0;   ///< >0: append deadline_ms= to every request
  std::size_t maxDesigns = 0;    ///< >0: cap the server's warm-context LRU
  std::uint32_t seed = 42;
  std::string goldenPath;  ///< "" = default lookup, "none" = skip
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_serve_net [out.json] [--connect=HOST:PORT] "
               "[--requests=N] [--connections=C] [--skew=S] [--jobs=N] "
               "[--max-inflight=N] [--max-queue=N] [--deadline-ms=D] "
               "[--max-designs=N] [--seed=S] [--golden=PATH|none]\n");
  return 2;
}

bool parseOptions(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string v = argv[i];
    try {
      if (v.rfind("--connect=", 0) == 0) {
        const std::string hostPort = v.substr(10);
        const std::size_t colon = hostPort.rfind(':');
        if (colon == std::string::npos) return false;
        opt.connectHost = hostPort.substr(0, colon);
        opt.connectPort =
            static_cast<std::uint16_t>(std::stoi(hostPort.substr(colon + 1)));
      } else if (v.rfind("--requests=", 0) == 0) {
        opt.requests = std::stoi(v.substr(11));
      } else if (v.rfind("--connections=", 0) == 0) {
        opt.connections = std::stoi(v.substr(14));
      } else if (v.rfind("--skew=", 0) == 0) {
        opt.skew = std::stod(v.substr(7));
      } else if (v.rfind("--jobs=", 0) == 0) {
        opt.jobs = std::stoi(v.substr(7));
      } else if (v.rfind("--max-inflight=", 0) == 0) {
        opt.maxInflight = std::stoi(v.substr(15));
      } else if (v.rfind("--max-queue=", 0) == 0) {
        opt.maxQueue = static_cast<std::size_t>(std::stoul(v.substr(12)));
      } else if (v.rfind("--deadline-ms=", 0) == 0) {
        opt.deadlineMs = std::stoll(v.substr(14));
        if (opt.deadlineMs < 0 || opt.deadlineMs > serve::kMaxDeadlineMs)
          return false;
      } else if (v.rfind("--max-designs=", 0) == 0) {
        opt.maxDesigns = static_cast<std::size_t>(std::stoul(v.substr(14)));
      } else if (v.rfind("--seed=", 0) == 0) {
        opt.seed = static_cast<std::uint32_t>(std::stoul(v.substr(7)));
      } else if (v.rfind("--golden=", 0) == 0) {
        opt.goldenPath = v.substr(9);
      } else if (v.rfind("--", 0) == 0) {
        return false;
      } else {
        opt.outPath = v;
      }
    } catch (const std::exception&) {
      return false;
    }
  }
  return opt.requests > 0 && opt.connections > 0;
}

/// {design: sha256} from the `name hash` lines of the golden file; empty
/// when the file is absent at every candidate path.
std::map<std::string, std::string> loadGolden(const std::string& override_) {
  std::map<std::string, std::string> golden;
  if (override_ == "none") return golden;
  std::vector<std::string> candidates;
  if (!override_.empty()) {
    candidates.push_back(override_);
  } else {
    candidates = {"tests/golden/solution_hashes.txt",
                  "../tests/golden/solution_hashes.txt",
                  "../../tests/golden/solution_hashes.txt"};
  }
  for (const std::string& path : candidates) {
    std::ifstream is(path);
    if (!is) continue;
    std::string name, hash;
    while (is >> name >> hash) golden[name] = hash;
    break;
  }
  if (!override_.empty() && golden.empty())
    std::fprintf(stderr, "bench_serve_net: cannot read golden file %s\n",
                 override_.c_str());
  return golden;
}

serve::net::Client connectWithRetry(const std::string& host,
                                    std::uint16_t port) {
  // An external server (CI backgrounds it) may still be binding.
  for (int attempt = 0;; ++attempt) {
    try {
      return serve::net::Client(host, port);
    } catch (const std::exception&) {
      if (attempt >= 100) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct RequestLog {
  std::string design;
  std::string status;  ///< "ok", "busy", ... or "dropped" on conn loss
  std::string sha256;
  std::string errorField;  ///< err responses: "deadline" marks an expiry
  int coldBuilds = -1;
  double millis = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parseOptions(argc, argv, opt)) return usage();

  const std::vector<std::string> kDesigns = {
      "S1", "S2", "S3", "S4", "S5", "fpva:8x8", "fpva:12x12"};

  // Local one-shot references: the bytes the serving tier must reproduce.
  std::map<std::string, std::string> expected;
  for (const std::string& design : kDesigns)
    expected[design] = util::sha256Hex(core::solutionToString(
        core::routeChip(serve::loadDesign(design), core::pacorDefaultConfig())));

  // Golden cross-check: the local references themselves must match the
  // pinned hashes, so a drifted router cannot vouch for itself.
  const std::map<std::string, std::string> golden = loadGolden(opt.goldenPath);
  int goldenChecked = 0;
  for (const auto& [design, hash] : expected) {
    const auto it = golden.find(design);
    if (it == golden.end()) continue;
    ++goldenChecked;
    if (it->second != hash) {
      std::fprintf(stderr,
                   "bench_serve_net: FAIL %s local one-shot hash %.12s... != "
                   "golden %.12s...\n",
                   design.c_str(), hash.c_str(), it->second.c_str());
      return 1;
    }
  }

  // Zipf-skewed request mix, fixed ahead of time so every connection
  // count replays the same traffic.
  std::vector<double> weights;
  for (std::size_t i = 0; i < kDesigns.size(); ++i)
    weights.push_back(1.0 / std::pow(static_cast<double>(i + 1), opt.skew));
  std::mt19937 rng(opt.seed);
  std::discrete_distribution<std::size_t> pick(weights.begin(), weights.end());
  std::vector<std::string> mix;
  mix.reserve(static_cast<std::size_t>(opt.requests));
  for (int i = 0; i < opt.requests; ++i) mix.push_back(kDesigns[pick(rng)]);

  // In-process loopback server unless --connect points elsewhere.
  std::unique_ptr<serve::net::NetServer> local;
  std::string host = opt.connectHost;
  std::uint16_t port = opt.connectPort;
  if (host.empty()) {
    serve::net::NetOptions netOpt;
    netOpt.jobs = opt.jobs;
    netOpt.admission.maxInflight = opt.maxInflight;
    netOpt.admission.maxQueue = opt.maxQueue;
    if (opt.maxDesigns > 0) netOpt.admission.maxDesigns = opt.maxDesigns;
    local = std::make_unique<serve::net::NetServer>(netOpt);
    host = "127.0.0.1";
    port = local->port();
  }

  std::vector<RequestLog> log(mix.size());
  std::vector<std::string> connectionErrors(
      static_cast<std::size_t>(opt.connections));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < opt.connections; ++c) {
    clients.emplace_back([&, c] {
      try {
        serve::net::Client client = connectWithRetry(host, port);
        for (std::size_t i = static_cast<std::size_t>(c); i < mix.size();
             i += static_cast<std::size_t>(opt.connections)) {
          RequestLog& entry = log[i];
          entry.design = mix[i];
          std::string request = mix[i];
          if (opt.deadlineMs > 0)
            request += " deadline_ms=" + std::to_string(opt.deadlineMs);
          const auto start = std::chrono::steady_clock::now();
          std::string line;
          if (!client.send(request) || !client.recv(line)) {
            entry.status = "dropped";
            return;
          }
          entry.millis = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
          if (const auto resp = serve::parseResponseLine(line)) {
            entry.status = resp->status;
            entry.sha256 = resp->sha256;
            entry.coldBuilds = resp->coldBuilds;
            entry.errorField = resp->errorField;
          } else {
            entry.status = "unparseable";
          }
        }
      } catch (const std::exception& e) {
        connectionErrors[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (local != nullptr) local->wait();

  // Server-side liveness counters (in-process runs only; a --connect
  // server's stats land on its own stderr at drain time).
  std::uint64_t evictions = 0;
  std::size_t residentDesigns = 0;
  if (local != nullptr) {
    evictions = local->server().stats().evictions;
    residentDesigns = local->server().designCount();
  }

  int failures = 0;
  for (int c = 0; c < opt.connections; ++c)
    if (!connectionErrors[static_cast<std::size_t>(c)].empty()) {
      std::fprintf(stderr, "bench_serve_net: FAIL connection %d: %s\n", c,
                   connectionErrors[static_cast<std::size_t>(c)].c_str());
      ++failures;
    }

  // Tally. The affinity contract: per design exactly ONE execution builds
  // the escape session cold (whichever the dispatcher ran first -- not
  // necessarily the lowest request index, connections race to submit);
  // every other ok response must report cold_builds=0. Warm-eligible =
  // ok responses beyond each design's first.
  std::size_t okCount = 0, busyCount = 0, errorCount = 0, mismatches = 0,
              deadlineExpired = 0;
  std::vector<double> latencies;
  std::map<std::string, std::size_t> okPerDesign, coldPerDesign,
      requestsPerDesign, busyPerDesign;
  for (const RequestLog& entry : log) {
    if (entry.design.empty()) continue;  // connection died earlier
    ++requestsPerDesign[entry.design];
    if (entry.status == "err" && entry.errorField == "deadline") {
      // An expiry is a structured, expected outcome under an aggressive
      // --deadline-ms; the compare gate decides whether the nominal run
      // may contain any (it may not).
      ++deadlineExpired;
      continue;
    }
    if (entry.status == "ok") {
      ++okCount;
      latencies.push_back(entry.millis);
      ++okPerDesign[entry.design];
      if (entry.coldBuilds != 0) ++coldPerDesign[entry.design];
      if (entry.sha256 != expected[entry.design]) {
        if (mismatches++ == 0)
          std::fprintf(stderr,
                       "bench_serve_net: FAIL %s response hash %.12s... != "
                       "one-shot %.12s...\n",
                       entry.design.c_str(), entry.sha256.c_str(),
                       expected[entry.design].c_str());
      }
    } else if (entry.status == "busy") {
      ++busyCount;
      ++busyPerDesign[entry.design];
    } else {
      if (errorCount++ == 0)
        std::fprintf(stderr, "bench_serve_net: FAIL %s response status '%s'\n",
                     entry.design.c_str(), entry.status.c_str());
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 50), p95 = percentile(latencies, 95),
               p99 = percentile(latencies, 99);
  std::size_t warmHits = 0, warmEligible = 0;
  // With the LRU capped below the design-mix size, evictions legitimately
  // force re-cold builds; the exactly-one-cold affinity contract only
  // holds when every design fits resident.
  const bool evictionPressure =
      opt.maxDesigns > 0 && opt.maxDesigns < kDesigns.size();
  for (const auto& [design, ok] : okPerDesign) {
    if (ok == 0) continue;
    warmEligible += ok - 1;
    warmHits += ok - coldPerDesign[design];
    // Repeat traffic must land warm -- the affinity contract, not a band.
    if (!evictionPressure && coldPerDesign[design] > 1) {
      std::fprintf(stderr,
                   "bench_serve_net: FAIL %s: %zu of %zu executions built the "
                   "escape session cold (expected exactly 1)\n",
                   design.c_str(), coldPerDesign[design], ok);
      ++failures;
    }
  }
  const double warmRatio =
      warmEligible == 0
          ? 0.0
          : static_cast<double>(warmHits) / static_cast<double>(warmEligible);

  if (mismatches > 0 || errorCount > 0) ++failures;

  // The LRU cap is a hard bound: once traffic drains nothing is pinned, so
  // the resident set may never exceed --max-designs.
  if (local != nullptr && opt.maxDesigns > 0 && residentDesigns > opt.maxDesigns) {
    std::fprintf(stderr,
                 "bench_serve_net: FAIL %zu resident design context(s) exceed "
                 "--max-designs=%zu after drain\n",
                 residentDesigns, opt.maxDesigns);
    ++failures;
  }

  std::ofstream os(opt.outPath);
  os << "{\n  \"summary\": {\n"
     << "    \"requests\": " << mix.size() << ",\n"
     << "    \"connections\": " << opt.connections << ",\n"
     << "    \"skew\": " << opt.skew << ",\n"
     << "    \"seconds\": " << seconds << ",\n"
     << "    \"throughput_rps\": "
     << (seconds > 0 ? static_cast<double>(okCount) / seconds : 0.0) << ",\n"
     << "    \"ok\": " << okCount << ",\n"
     << "    \"busy\": " << busyCount << ",\n"
     << "    \"errors\": " << errorCount << ",\n"
     << "    \"deadline_ms\": " << opt.deadlineMs << ",\n"
     << "    \"deadline_expired\": " << deadlineExpired << ",\n"
     << "    \"max_designs\": " << opt.maxDesigns << ",\n"
     << "    \"evictions\": " << evictions << ",\n"
     << "    \"hash_mismatches\": " << mismatches << ",\n"
     << "    \"warm_hits\": " << warmHits << ",\n"
     << "    \"warm_eligible\": " << warmEligible << ",\n"
     << "    \"warm_hit_ratio\": " << warmRatio << ",\n"
     << "    \"golden_checked\": " << goldenChecked << ",\n"
     << "    \"all_hashes_match\": " << (mismatches == 0 ? "true" : "false")
     << ",\n"
     << "    \"latency_ms\": {\"p50\": " << p50 << ", \"p95\": " << p95
     << ", \"p99\": " << p99 << ", \"max\": "
     << (latencies.empty() ? 0.0 : latencies.back()) << "}\n  },\n";
  os << "  \"designs\": [\n";
  bool first = true;
  for (const std::string& design : kDesigns) {
    if (requestsPerDesign[design] == 0) continue;
    os << (first ? "" : ",\n") << "    {\"design\": \"" << design
       << "\", \"requests\": " << requestsPerDesign[design]
       << ", \"ok\": " << okPerDesign[design]
       << ", \"busy\": " << busyPerDesign[design] << ", \"sha256\": \""
       << expected[design] << "\"}";
    first = false;
  }
  os << "\n  ]\n}\n";

  std::printf(
      "bench_serve_net: %zu requests over %d connection(s) in %.2fs "
      "(%.1f ok/s), %zu ok / %zu busy / %zu error / %zu deadline-expired, "
      "%llu eviction(s), latency ms p50 %.1f p95 %.1f p99 %.1f, "
      "warm %zu/%zu (%.0f%%), %d golden-checked, %s -> %s\n",
      mix.size(), opt.connections, seconds,
      seconds > 0 ? static_cast<double>(okCount) / seconds : 0.0, okCount,
      busyCount, errorCount, deadlineExpired,
      static_cast<unsigned long long>(evictions), p50, p95, p99, warmHits,
      warmEligible, warmRatio * 100.0, goldenChecked,
      failures == 0 ? "PASS" : "FAIL", opt.outPath.c_str());
  return failures == 0 ? 0 : 1;
}
