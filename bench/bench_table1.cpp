// Reproduces Table 1 of the paper: the design parameters of the seven
// benchmark instances (two real-chip-scale designs + five synthetic).
// The rows are regenerated from the seeded generators and printed in the
// paper's layout; google-benchmark additionally times instance synthesis.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/report.hpp"

namespace {

void printTable1() {
  std::printf("\n=== Table 1: Design parameters ===\n");
  std::printf("%-8s %-10s %8s %8s %8s\n", "Design", "Size", "#Valves", "#CP", "#Obs");
  for (const auto& params : pacor::chip::table1Designs()) {
    const auto chip = pacor::chip::generateChip(params);
    char size[24];
    std::snprintf(size, sizeof size, "%dx%d", chip.routingGrid.width(),
                  chip.routingGrid.height());
    std::printf("%-8s %-10s %8zu %8zu %8zu\n", chip.name.c_str(), size,
                chip.valves.size(), chip.pins.size(), chip.obstacles.size());
  }
  std::printf("\n");

  // Search-effort companion: route each Table 1 design once with the
  // default flow and summarize its MetricsRegistry counters.
  std::printf("=== Table 1 companion: search effort (default flow) ===\n");
  for (const auto& params : pacor::chip::table1Designs()) {
    const auto chip = pacor::chip::generateChip(params);
    const auto result = routeChip(chip, pacor::core::pacorDefaultConfig());
    std::printf("%s\n", pacor::core::describeEffort(result).c_str());
  }
  std::printf("\n");
}

void BM_GenerateDesign(benchmark::State& state) {
  const auto designs = pacor::chip::table1Designs();
  const auto& params = designs[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    auto chip = pacor::chip::generateChip(params);
    benchmark::DoNotOptimize(chip);
  }
  state.SetLabel(params.name);
}
BENCHMARK(BM_GenerateDesign)->DenseRange(0, 6);

}  // namespace

int main(int argc, char** argv) {
  printTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
