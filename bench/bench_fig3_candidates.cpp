// Reproduces Figure 3 of the paper: candidate Steiner trees computed by
// the DME algorithm for a four-valve cluster. Prints the merging-node
// embeddings and per-sink Manhattan estimates of each candidate (all
// satisfying the length-matching target up to grid rounding) and times
// candidate construction as cluster size grows.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "dme/candidate_tree.hpp"
#include "grid/obstacle_map.hpp"

namespace {

using pacor::geom::Point;

void printFigure3() {
  std::printf("\n=== Figure 3: candidate Steiner trees (4-sink cluster) ===\n");
  pacor::grid::ObstacleMap obs{pacor::grid::Grid(32, 32)};
  const std::vector<Point> sinks{{6, 6}, {22, 8}, {8, 22}, {24, 24}};
  const auto cands = pacor::dme::buildCandidateTrees(obs, 0, sinks, {.count = 4});
  std::printf("sinks: S1(6,6) S2(22,8) S3(8,22) S4(24,24); %zu candidates\n",
              cands.size());
  for (std::size_t k = 0; k < cands.size(); ++k) {
    const auto& c = cands[k];
    std::printf("candidate %zu: mismatch estimate %lld, total est. length %lld\n", k,
                static_cast<long long>(c.mismatchEstimate),
                static_cast<long long>(c.totalEstimatedLength));
    const auto paths = c.sinkToRootPaths();
    for (std::size_t s = 0; s < paths.size(); ++s) {
      std::int64_t len = 0;
      for (std::size_t i = 0; i + 1 < paths[s].size(); ++i)
        len += pacor::geom::manhattan(
            c.embed[static_cast<std::size_t>(paths[s][i])],
            c.embed[static_cast<std::size_t>(paths[s][i + 1])]);
      std::printf("  sink %zu full-path estimate: %lld\n", s,
                  static_cast<long long>(len));
    }
    const Point root = c.embed[static_cast<std::size_t>(c.topo.root)];
    std::printf("  root merging node: (%d,%d)\n", root.x, root.y);
  }
  std::printf("\n");
}

void BM_CandidateConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  pacor::grid::ObstacleMap obs{pacor::grid::Grid(128, 128)};
  std::vector<Point> sinks;
  // Deterministic spiral of sinks.
  for (std::size_t i = 0; i < n; ++i)
    sinks.push_back({static_cast<std::int32_t>(10 + (i * 37) % 100),
                     static_cast<std::int32_t>(10 + (i * 53) % 100)});
  for (auto _ : state) {
    auto cands = pacor::dme::buildCandidateTrees(obs, 0, sinks, {.count = 5});
    benchmark::DoNotOptimize(cands);
  }
}
BENCHMARK(BM_CandidateConstruction)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  printFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
