// Standalone microbenchmark for graph::MinCostFlow, the escape-routing
// kernel: synthetic node-split grids (the escape network shape of Sec. 5)
// at Table-1 scale (n = 120, the Chip1/Chip2 routing-grid magnitude) and
// an FPVA-like scale (n = 300, the 10-100x valve-count workloads of the
// fully-programmable-valve-array papers), solved
//
//   * cold (fresh network each iteration; construction excluded from the
//     timed region) vs. warm (one frozen network, rerun() per iteration --
//     the incremental escape-session shape),
//   * with the default Dial-bucket open list vs. the pure packed heap
//     (setBucketQueue(false)) -- identical results, different queue,
//   * with the classic one-path-per-pass SSP vs. fast mode
//     (setFastSsp(true): blocking-flow multi-augmentation + bidirectional
//     last unit).
//
// Per-iteration solver-effort counters (Dijkstra passes, settles, queue
// traffic) are exported as benchmark counters, so a solver regression is
// visible here without routing a whole chip.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "graph/min_cost_flow.hpp"

namespace {

using pacor::graph::MinCostFlow;

// k unit source->sink pairs across an n x n unit-capacity node-split grid:
// every cell splits into in/out (cap 1, cost 0), 4-neighbor channel arcs
// cost 1 both ways, k taps on the left edge, k pin arcs on the right.
struct GridSpec {
  std::int32_t n;
  std::size_t nodes() const { return static_cast<std::size_t>(2 * n * n + 2); }
  std::size_t s() const { return static_cast<std::size_t>(2 * n * n); }
  std::size_t t() const { return s() + 1; }
  std::int32_t demand() const { return n / 4; }
};

void buildGrid(MinCostFlow& flow, const GridSpec& g) {
  const std::int32_t n = g.n;
  const auto in = [&](std::int32_t x, std::int32_t y) {
    return static_cast<std::size_t>(2 * (y * n + x));
  };
  const auto out = [&](std::int32_t x, std::int32_t y) {
    return static_cast<std::size_t>(2 * (y * n + x) + 1);
  };
  for (std::int32_t y = 0; y < n; ++y)
    for (std::int32_t x = 0; x < n; ++x) {
      flow.addEdge(in(x, y), out(x, y), 1, 0);
      if (x + 1 < n) {
        flow.addEdge(out(x, y), in(x + 1, y), 1, 1);
        flow.addEdge(out(x + 1, y), in(x, y), 1, 1);
      }
      if (y + 1 < n) {
        flow.addEdge(out(x, y), in(x, y + 1), 1, 1);
        flow.addEdge(out(x, y + 1), in(x, y), 1, 1);
      }
    }
  for (std::int32_t i = 0; i < g.demand(); ++i) {
    const std::int32_t y = 1 + (2 * i) % (n - 1);
    flow.addEdge(g.s(), in(0, y), 1, 0);
    flow.addEdge(out(n - 1, y), g.t(), 1, 0);
  }
}

void reportCounters(benchmark::State& state, const MinCostFlow::Counters& c) {
  const auto perIter = benchmark::Counter::kAvgIterations;
  state.counters["passes"] =
      benchmark::Counter(static_cast<double>(c.dijkstraPasses), perIter);
  state.counters["settles"] =
      benchmark::Counter(static_cast<double>(c.settles), perIter);
  state.counters["pushes"] = benchmark::Counter(
      static_cast<double>(c.bucketPushes + c.heapPushes), perIter);
  state.counters["multi_aug"] =
      benchmark::Counter(static_cast<double>(c.multiAugPaths), perIter);
}

// state.range(0): grid size n. range(1): 1 = Dial buckets, 0 = pure heap.
// range(2): 1 = fast mode (multi-aug + bidir), 0 = classic SSP.
void BM_SolveCold(benchmark::State& state) {
  const GridSpec g{static_cast<std::int32_t>(state.range(0))};
  MinCostFlow::Counters total;
  std::int64_t flow = 0, cost = 0;
  for (auto _ : state) {
    state.PauseTiming();  // network construction is not the kernel
    MinCostFlow solver(g.nodes());
    buildGrid(solver, g);
    solver.setBucketQueue(state.range(1) != 0);
    solver.setFastSsp(state.range(2) != 0);
    state.ResumeTiming();
    const auto r = solver.run(g.s(), g.t());
    benchmark::DoNotOptimize(r);
    state.PauseTiming();
    flow = r.flow;
    cost = r.cost;
    const auto& c = solver.counters();
    total.dijkstraPasses += c.dijkstraPasses;
    total.settles += c.settles;
    total.bucketPushes += c.bucketPushes;
    total.heapPushes += c.heapPushes;
    total.multiAugPaths += c.multiAugPaths;
    state.ResumeTiming();
  }
  reportCounters(state, total);
  state.counters["flow"] = static_cast<double>(flow);
  state.counters["cost"] = static_cast<double>(cost);
}
BENCHMARK(BM_SolveCold)
    ->ArgsProduct({{120, 300}, {1, 0}, {0}})  // bucket vs heap, classic
    ->Args({120, 1, 1})                       // fast mode, Table-1 scale
    ->Args({300, 1, 1})                       // fast mode, FPVA scale
    ->Unit(benchmark::kMillisecond);

// Warm rerun: one frozen network, resetFlow()+run() per iteration -- the
// shape every incremental escape-session round takes.
void BM_RerunWarm(benchmark::State& state) {
  const GridSpec g{static_cast<std::int32_t>(state.range(0))};
  MinCostFlow solver(g.nodes());
  buildGrid(solver, g);
  solver.freeze();
  solver.setBucketQueue(state.range(1) != 0);
  solver.setFastSsp(state.range(2) != 0);
  solver.run(g.s(), g.t());  // populate the dirty lists once
  solver.resetCounters();
  std::int64_t flow = 0, cost = 0;
  for (auto _ : state) {
    const auto r = solver.rerun(g.s(), g.t());
    benchmark::DoNotOptimize(r);
    flow = r.flow;
    cost = r.cost;
  }
  reportCounters(state, solver.counters());
  state.counters["flow"] = static_cast<double>(flow);
  state.counters["cost"] = static_cast<double>(cost);
}
BENCHMARK(BM_RerunWarm)
    ->ArgsProduct({{120, 300}, {1, 0}, {0}})
    ->Args({120, 1, 1})
    ->Args({300, 1, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
