// ECO re-route latency benchmark: edit-to-solution time vs from-scratch.
//
// For every Table-1 design this routes the chip once from scratch, then
// measures rerouteChip() against three canonical single edits:
//
//   valve_move     valve 0 moved to the nearest free cell -- dirties
//                  exactly one cluster, the headline incremental case,
//   obstacle_add   an obstacle dropped on a free cell no routed channel
//                  occupies -- the identity-mode floor (no routing work),
//   cluster_touch  an obstacle dropped onto the middle of a routed escape
//                  channel -- forces a dirty cluster through the full
//                  seeded stage 2-5 pipeline.
//
// Each edit is timed best-of-kRepetitions against a best-of-kRepetitions
// from-scratch routeChip() of the same edited chip; the ratio is the
// speedup an ECO user sees over re-running the router. Every eco result
// is cross-checked with the independent oracle on the edited chip.
//
// Writes BENCH_eco.json (consumed by bench/compare_baseline.py --eco
// alongside the BENCH_routing.json eco rows). Exit 0 when every re-route
// completed and was oracle-clean, 1 otherwise.
//
// Usage: bench_eco [out.json]   (default: BENCH_eco.json)

#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "chip/delta.hpp"
#include "chip/generator.hpp"
#include "pacor/eco.hpp"
#include "pacor/pipeline.hpp"
#include "verify/oracle.hpp"

namespace {

using namespace pacor;

constexpr int kRepetitions = 3;  ///< per edit and mode; best time wins

std::unordered_set<geom::Point> usedCells(const chip::Chip& chip) {
  std::unordered_set<geom::Point> used(chip.obstacles.begin(), chip.obstacles.end());
  for (const chip::Valve& v : chip.valves) used.insert(v.pos);
  for (const chip::ControlPin& p : chip.pins) used.insert(p.pos);
  return used;
}

std::unordered_set<geom::Point> routedCells(const core::PacorResult& result) {
  std::unordered_set<geom::Point> cells;
  for (const core::RoutedCluster& rc : result.clusters) {
    for (const route::Path& path : rc.treePaths)
      cells.insert(path.begin(), path.end());
    cells.insert(rc.escapePath.begin(), rc.escapePath.end());
  }
  return cells;
}

/// Free cell closest (Manhattan) to `from`, y-major ties -- deterministic.
geom::Point nearestFreeCell(const chip::Chip& chip, geom::Point from) {
  const std::unordered_set<geom::Point> used = usedCells(chip);
  geom::Point best{-1, -1};
  std::int64_t bestDist = -1;
  for (std::int32_t y = 0; y < chip.routingGrid.height(); ++y)
    for (std::int32_t x = 0; x < chip.routingGrid.width(); ++x) {
      const geom::Point p{x, y};
      if (used.count(p)) continue;
      const std::int64_t d = geom::manhattan(from, p);
      if (bestDist < 0 || d < bestDist) {
        best = p;
        bestDist = d;
      }
    }
  return best;
}

/// First free cell (y-major) no routed channel occupies: the edit is
/// invisible to every cluster, so rerouteChip must answer in identity mode.
geom::Point freeUnroutedCell(const chip::Chip& chip, const core::PacorResult& prev) {
  const std::unordered_set<geom::Point> used = usedCells(chip);
  const std::unordered_set<geom::Point> routed = routedCells(prev);
  for (std::int32_t y = 0; y < chip.routingGrid.height(); ++y)
    for (std::int32_t x = 0; x < chip.routingGrid.width(); ++x) {
      const geom::Point p{x, y};
      if (!used.count(p) && !routed.count(p)) return p;
    }
  return {-1, -1};
}

/// Middle cell of the longest routed escape channel: blocking it dirties
/// that cluster and forces a real incremental re-route.
geom::Point escapeChannelCell(const core::PacorResult& prev) {
  const route::Path* longest = nullptr;
  for (const core::RoutedCluster& rc : prev.clusters)
    if (rc.escapePath.size() >= 3 &&
        (longest == nullptr || rc.escapePath.size() > longest->size()))
      longest = &rc.escapePath;
  if (longest == nullptr) return {-1, -1};
  return (*longest)[longest->size() / 2];
}

template <typename Fn>
double bestSeconds(Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

const char* modeName(core::EcoInfo::Mode mode) {
  switch (mode) {
    case core::EcoInfo::Mode::kIdentity: return "identity";
    case core::EcoInfo::Mode::kIncremental: return "incremental";
    case core::EcoInfo::Mode::kFull: return "full";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outPath = argc > 1 ? argv[1] : "BENCH_eco.json";
  core::PacorConfig cfg = core::pacorDefaultConfig();
  cfg.jobs = 1;

  std::FILE* f = std::fopen(outPath.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"eco\",\n");
  std::fprintf(f, "  \"repetitions\": %d,\n  \"designs\": [\n", kRepetitions);

  bool allClean = true;
  double chip1ValveMoveSpeedup = 0.0;
  std::printf("%-8s %-13s %-12s %12s %12s %8s\n", "Design", "Edit", "Mode",
              "scratch(s)", "eco(s)", "speedup");

  const auto designs = chip::table1Designs();
  for (std::size_t d = 0; d < designs.size(); ++d) {
    const chip::Chip base = chip::generateChip(designs[d]);
    core::PacorResult prev;
    const double baseSeconds = bestSeconds([&] { prev = core::routeChip(base, cfg); });

    struct Edit {
      const char* name;
      chip::ChipDelta delta;
      bool skipped = false;
    };
    std::vector<Edit> edits(3);
    edits[0].name = "valve_move";
    if (const geom::Point to = nearestFreeCell(base, base.valves.front().pos);
        to.x >= 0)
      edits[0].delta.moveValve(0, to);
    else
      edits[0].skipped = true;
    edits[1].name = "obstacle_add";
    if (const geom::Point at = freeUnroutedCell(base, prev); at.x >= 0)
      edits[1].delta.addObstacle(at);
    else
      edits[1].skipped = true;
    edits[2].name = "cluster_touch";
    if (const geom::Point at = escapeChannelCell(prev); at.x >= 0)
      edits[2].delta.addObstacle(at);
    else
      edits[2].skipped = true;

    std::fprintf(f, "    {\n      \"design\": \"%s\",\n", base.name.c_str());
    std::fprintf(f, "      \"scratch_seconds\": %.6f,\n      \"edits\": [\n",
                 baseSeconds);
    bool first = true;
    for (const Edit& edit : edits) {
      if (edit.skipped) continue;
      const chip::Chip edited = chip::apply(base, edit.delta);
      core::PacorResult scratch;
      const double scratchSeconds =
          bestSeconds([&] { scratch = core::routeChip(edited, cfg); });
      core::PacorResult eco;
      core::EcoInfo info;
      const double ecoSeconds = bestSeconds(
          [&] { eco = core::rerouteChip(base, prev, edit.delta, cfg, {}, &info); });
      const double speedup = ecoSeconds > 0.0 ? scratchSeconds / ecoSeconds : 0.0;

      const bool clean =
          eco.complete && verify::verifySolution(edited, eco).clean();
      if (!clean) {
        std::fprintf(stderr, "FAIL %s/%s: eco result %s\n", base.name.c_str(),
                     edit.name,
                     eco.complete ? "is not oracle-clean" : "did not complete");
        allClean = false;
      }
      if (base.name == "Chip1" && std::string(edit.name) == "valve_move")
        chip1ValveMoveSpeedup = speedup;

      std::printf("%-8s %-13s %-12s %12.4f %12.4f %7.1fx\n", base.name.c_str(),
                  edit.name, modeName(info.mode), scratchSeconds, ecoSeconds,
                  speedup);
      std::fprintf(f, "        %s{\"edit\": \"%s\", \"mode\": \"%s\", ",
                   first ? "" : ",", edit.name, modeName(info.mode));
      std::fprintf(f,
                   "\"scratch_seconds\": %.6f, \"eco_seconds\": %.6f, "
                   "\"speedup\": %.4f, \"dirty\": %d, \"reused\": %d, "
                   "\"clean\": %s}\n",
                   scratchSeconds, ecoSeconds, speedup, info.dirtyClusters,
                   info.frozenClusters, clean ? "true" : "false");
      first = false;
    }
    std::fprintf(f, "      ]\n    }%s\n", d + 1 < designs.size() ? "," : "");
  }

  std::fprintf(f, "  ],\n  \"summary\": {\n");
  std::fprintf(f, "    \"chip1_valve_move_speedup\": %.4f,\n",
               chip1ValveMoveSpeedup);
  std::fprintf(f, "    \"all_clean\": %s\n  }\n}\n", allClean ? "true" : "false");
  std::fclose(f);

  std::printf("chip1 valve-move speedup %.1fx, wrote %s\n",
              chip1ValveMoveSpeedup, outPath.c_str());
  return allClean ? 0 : 1;
}
