// Ablation of the negotiation-based router (Sec. 4.3 / Alg. 1): how the
// iteration budget gamma and the history parameters affect routability on
// a synthetic congestion stress (many parallel demands through a narrow
// region) -- the PathFinder effect in miniature.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "grid/obstacle_map.hpp"
#include "route/negotiation.hpp"

namespace {

using pacor::geom::Point;

/// K edges that all want to cross a 3-cell-wide bottleneck.
std::vector<pacor::route::NegotiationEdge> bottleneckCase(int k,
                                                          pacor::grid::ObstacleMap& obs) {
  const auto& g = obs.grid();
  // Walls above and below a 6-wide slit in the middle column.
  const std::int32_t mid = g.width() / 2;
  for (std::int32_t y = 0; y < g.height(); ++y) {
    if (y >= g.height() / 2 - 3 && y < g.height() / 2 + 3) continue;
    obs.addObstacle({mid, y});
  }
  std::vector<pacor::route::NegotiationEdge> edges(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    edges[static_cast<std::size_t>(i)].a = {Point{2, 2 + 3 * i}};
    edges[static_cast<std::size_t>(i)].b = {Point{g.width() - 3, 2 + 3 * i}};
    edges[static_cast<std::size_t>(i)].group = i;
  }
  return edges;
}

void printGammaSweep() {
  std::printf("\n=== Ablation: negotiation iterations gamma (bottleneck stress) ===\n");
  std::printf("%-8s %10s %12s\n", "gamma", "routed", "iterations");
  for (const int gamma : {1, 2, 4, 6, 10}) {
    pacor::grid::ObstacleMap obs{pacor::grid::Grid(48, 24)};
    const auto edges = bottleneckCase(5, obs);
    pacor::route::NegotiationConfig cfg;
    cfg.maxIterations = gamma;
    const auto r = negotiatedRoute(obs, edges, cfg);
    int routed = 0;
    for (const bool ok : r.routed) routed += ok;
    std::printf("%-8d %7d/%zu %12d\n", gamma, routed, edges.size(), r.iterations);
  }
  std::printf("\n");
}

void BM_NegotiationBottleneck(benchmark::State& state) {
  for (auto _ : state) {
    pacor::grid::ObstacleMap obs{pacor::grid::Grid(48, 24)};
    const auto edges = bottleneckCase(static_cast<int>(state.range(0)), obs);
    auto r = negotiatedRoute(obs, edges);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NegotiationBottleneck)->Arg(2)->Arg(4)->Arg(6);

}  // namespace

int main(int argc, char** argv) {
  printGammaSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
