// Delta sweep + detour-strategy ablation. The paper fixes the
// length-matching threshold delta = 1 (the tightest grid-feasible window:
// parity guarantees exactly one reachable length in [maxL-1, maxL]); this
// harness shows how matched clusters and total wirelength respond as the
// window loosens, and what the minimum-length bounded A* contributes over
// pure serpentine bump insertion.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"

namespace {

void printDeltaSweep() {
  std::printf("\n=== Delta sweep (4 stress seeds, aggregated) ===\n");
  std::printf("%-8s %10s %14s %12s\n", "delta", "#matched", "total_len", "complete");
  for (const std::int64_t delta : {0, 1, 2, 4, 8, 16}) {
    int matched = 0;
    long long total = 0;
    bool complete = true;
    for (const std::uint32_t seed : {3u, 5u, 6u, 8u}) {
      auto chip = pacor::chip::generateChip(pacor::chip::stressParams(seed));
      chip.delta = delta;
      const auto r = pacor::core::routeChip(chip);
      matched += r.matchedClusterCount;
      total += r.totalChannelLength;
      complete &= r.complete;
    }
    std::printf("%-8lld %7d/48 %14lld %12s\n", static_cast<long long>(delta), matched,
                total, complete ? "yes" : "NO");
  }
  std::printf("\n");
}

void printDetourStrategyAblation() {
  std::printf("=== Detour strategy: bounded A* + bumps vs bumps only ===\n");
  std::printf("%-22s %10s %14s\n", "strategy", "#matched", "total_len");
  for (const bool bounded : {true, false}) {
    int matched = 0;
    long long total = 0;
    for (const std::uint32_t seed : {3u, 5u, 6u, 8u}) {
      const auto chip = pacor::chip::generateChip(pacor::chip::stressParams(seed));
      pacor::core::PacorConfig cfg;
      cfg.useBoundedDetour = bounded;
      const auto r = routeChip(chip, cfg);
      matched += r.matchedClusterCount;
      total += r.totalChannelLength;
    }
    std::printf("%-22s %7d/48 %14lld\n",
                bounded ? "bounded A* + bumps" : "bumps only", matched, total);
  }
  std::printf("\n");
}

void BM_DeltaEffect(benchmark::State& state) {
  auto chip = pacor::chip::generateChip(pacor::chip::stressParams(5));
  chip.delta = state.range(0);
  for (auto _ : state) {
    auto r = pacor::core::routeChip(chip);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DeltaEffect)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printDeltaSweep();
  printDetourStrategyAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
