// Reproducible end-to-end routing benchmark: routes every Table-1 design
// with the full PACOR flow serially (jobs = 1) and with the worker pool
// (jobs = max(2, hardware threads)), checks that the two results are
// bit-identical, and writes the timings plus the pipeline's per-stage
// time / search-effort counters to BENCH_routing.json in the working
// directory. Intended for before/after comparisons of the routing
// kernels: routed quality must not move, only the seconds.
//
// Each design record also carries an "eco" row: the best-of-kRepetitions
// rerouteChip() latency for the canonical 1-valve-move edit (valve 0 to
// the nearest free cell) and its speedup over the serial from-scratch
// time. compare_baseline.py bands the latency and hard-gates the Chip1
// speedup; bench_eco covers more edit kinds in depth.
//
// Usage: bench_routing [out.json]   (default: BENCH_routing.json)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_set>

#include "chip/delta.hpp"
#include "chip/generator.hpp"
#include "pacor/eco.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "util/sha256.hpp"
#include "util/thread_pool.hpp"

namespace {

using pacor::core::PacorConfig;
using pacor::core::PacorResult;

constexpr int kRepetitions = 3;  ///< per design and mode; best time wins

bool identicalRouting(const PacorResult& a, const PacorResult& b) {
  if (a.complete != b.complete || a.totalChannelLength != b.totalChannelLength ||
      a.matchedChannelLength != b.matchedChannelLength ||
      a.matchedClusterCount != b.matchedClusterCount ||
      a.clusters.size() != b.clusters.size())
    return false;
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    const auto& x = a.clusters[i];
    const auto& y = b.clusters[i];
    if (x.pin != y.pin || !(x.tap == y.tap) || x.treePaths != y.treePaths ||
        x.escapePath != y.escapePath || x.totalLength != y.totalLength)
      return false;
  }
  return true;
}

struct TimedRun {
  PacorResult result;
  double seconds = 0.0;
};

TimedRun bestOf(const pacor::chip::Chip& chip, const PacorConfig& cfg) {
  TimedRun best;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    PacorResult r = pacor::core::routeChip(chip, cfg);
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (rep == 0 || s < best.seconds) {
      best.result = std::move(r);
      best.seconds = s;
    }
  }
  return best;
}

/// Free cell closest (Manhattan) to `from`, y-major ties -- deterministic,
/// so the measured ECO edit is identical run to run.
pacor::geom::Point nearestFreeCell(const pacor::chip::Chip& chip,
                                   pacor::geom::Point from) {
  std::unordered_set<pacor::geom::Point> used(chip.obstacles.begin(),
                                              chip.obstacles.end());
  for (const auto& v : chip.valves) used.insert(v.pos);
  for (const auto& p : chip.pins) used.insert(p.pos);
  pacor::geom::Point best{-1, -1};
  std::int64_t bestDist = -1;
  for (std::int32_t y = 0; y < chip.routingGrid.height(); ++y)
    for (std::int32_t x = 0; x < chip.routingGrid.width(); ++x) {
      const pacor::geom::Point p{x, y};
      if (used.count(p)) continue;
      const std::int64_t d = pacor::geom::manhattan(from, p);
      if (bestDist < 0 || d < bestDist) {
        best = p;
        bestDist = d;
      }
    }
  return best;
}

const char* ecoModeName(pacor::core::EcoInfo::Mode mode) {
  switch (mode) {
    case pacor::core::EcoInfo::Mode::kIdentity: return "identity";
    case pacor::core::EcoInfo::Mode::kIncremental: return "incremental";
    case pacor::core::EcoInfo::Mode::kFull: return "full";
  }
  return "?";
}

void jsonCounters(std::FILE* f, const char* key,
                  const pacor::route::SearchCounters& c, const char* tail) {
  std::fprintf(f,
               "        \"%s\": {\"searches\": %llu, \"expansions\": %llu, "
               "\"bounded_visits\": %llu}%s\n",
               key, static_cast<unsigned long long>(c.searches),
               static_cast<unsigned long long>(c.expansions),
               static_cast<unsigned long long>(c.boundedVisits), tail);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outPath = argc > 1 ? argv[1] : "BENCH_routing.json";
  const int parallelJobs =
      std::max(2, static_cast<int>(pacor::util::hardwareJobs()));

  PacorConfig serialCfg = pacor::core::pacorDefaultConfig();
  serialCfg.jobs = 1;
  PacorConfig parallelCfg = serialCfg;
  parallelCfg.jobs = parallelJobs;

  std::FILE* f = std::fopen(outPath.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"routing\",\n");
  std::fprintf(f, "  \"repetitions\": %d,\n", kRepetitions);
  std::fprintf(f, "  \"parallel_jobs\": %d,\n  \"designs\": [\n", parallelJobs);

  double serialTotal = 0.0;
  double parallelTotal = 0.0;
  bool allIdentical = true;
  bool allComplete = true;

  const auto designs = pacor::chip::table1Designs();
  std::printf("%-8s %10s %10s %8s  %s   (parallel = %d jobs)\n", "Design",
              "serial(s)", "par(s)", "speedup", "identical", parallelJobs);
  for (std::size_t d = 0; d < designs.size(); ++d) {
    const auto chip = pacor::chip::generateChip(designs[d]);
    const TimedRun serial = bestOf(chip, serialCfg);
    const TimedRun parallel = bestOf(chip, parallelCfg);
    const bool identical = identicalRouting(serial.result, parallel.result);
    serialTotal += serial.seconds;
    parallelTotal += parallel.seconds;
    allIdentical &= identical;
    allComplete &= serial.result.complete && parallel.result.complete;

    std::printf("%-8s %10.3f %10.3f %8.2f  %s\n", chip.name.c_str(),
                serial.seconds, parallel.seconds,
                parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0,
                identical ? "yes" : "NO");

    const auto& st = serial.result.times;
    std::fprintf(f, "    {\n      \"design\": \"%s\",\n", chip.name.c_str());
    std::fprintf(f, "      \"serial_seconds\": %.6f,\n", serial.seconds);
    std::fprintf(f, "      \"parallel_seconds\": %.6f,\n", parallel.seconds);
    std::fprintf(f, "      \"speedup\": %.4f,\n",
                 parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0);
    std::fprintf(f, "      \"identical\": %s,\n", identical ? "true" : "false");
    std::fprintf(f, "      \"complete\": %s,\n",
                 serial.result.complete ? "true" : "false");
    std::fprintf(f, "      \"total_channel_length\": %lld,\n",
                 static_cast<long long>(serial.result.totalChannelLength));
    std::fprintf(f, "      \"matched_channel_length\": %lld,\n",
                 static_cast<long long>(serial.result.matchedChannelLength));
    std::fprintf(f, "      \"matched_clusters\": %d,\n",
                 serial.result.matchedClusterCount);
    // Hash of the canonical solution text: lets compare_baseline.py verify
    // that routed quality only moves together with a golden-hash re-pin.
    std::fprintf(f, "      \"solution_sha256\": \"%s\",\n",
                 pacor::util::sha256Hex(
                     pacor::core::solutionToString(serial.result))
                     .c_str());
    std::fprintf(f,
                 "      \"stage_seconds\": {\"clustering\": %.6f, "
                 "\"cluster_routing\": %.6f, \"escape\": %.6f, "
                 "\"detour\": %.6f, \"total\": %.6f},\n",
                 st.clustering, st.clusterRouting, st.escape, st.detour, st.total);
    std::fprintf(f, "      \"search\": {\n");
    jsonCounters(f, "cluster_routing", serial.result.searchClusterRouting, ",");
    jsonCounters(f, "escape", serial.result.searchEscape, ",");
    jsonCounters(f, "detour", serial.result.searchDetour, "");
    std::fprintf(f, "      },\n");

    // ECO row: 1-valve-move rerouteChip latency against the serial
    // from-scratch time (the edited chip's scratch cost is statistically
    // the base chip's -- one valve moved).
    {
      pacor::chip::ChipDelta delta;
      delta.moveValve(0, nearestFreeCell(chip, chip.valves.front().pos));
      pacor::core::EcoInfo info;
      double ecoSeconds = 0.0;
      for (int rep = 0; rep < kRepetitions; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const PacorResult eco = pacor::core::rerouteChip(
            chip, serial.result, delta, serialCfg, {}, &info);
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        if (rep == 0 || s < ecoSeconds) ecoSeconds = s;
        allComplete &= eco.complete;
      }
      std::fprintf(f,
                   "      \"eco\": {\"edit\": \"valve_move\", \"mode\": \"%s\", "
                   "\"seconds\": %.6f, \"speedup\": %.4f},\n",
                   ecoModeName(info.mode), ecoSeconds,
                   ecoSeconds > 0.0 ? serial.seconds / ecoSeconds : 0.0);
    }

    std::fprintf(f, "      \"metrics\": %s\n",
                 serial.result.metrics.toJson(/*pretty=*/false).c_str());
    std::fprintf(f, "    }%s\n", d + 1 < designs.size() ? "," : "");
  }

  std::fprintf(f, "  ],\n  \"summary\": {\n");
  std::fprintf(f, "    \"serial_seconds_total\": %.6f,\n", serialTotal);
  std::fprintf(f, "    \"parallel_seconds_total\": %.6f,\n", parallelTotal);
  std::fprintf(f, "    \"speedup\": %.4f,\n",
               parallelTotal > 0.0 ? serialTotal / parallelTotal : 0.0);
  std::fprintf(f, "    \"all_identical\": %s,\n", allIdentical ? "true" : "false");
  std::fprintf(f, "    \"all_complete\": %s\n  }\n}\n",
               allComplete ? "true" : "false");
  std::fclose(f);

  std::printf("total: serial %.3fs, parallel %.3fs (%.2fx), wrote %s\n",
              serialTotal, parallelTotal,
              parallelTotal > 0.0 ? serialTotal / parallelTotal : 0.0,
              outPath.c_str());
  return allIdentical && allComplete ? 0 : 1;
}
