// Component-level scaling benchmarks: min-cost max-flow (the escape
// solver), the bounded-length A* (the detour primitive), and plain A* on
// growing grids. These back the complexity claims of Secs. 5-6.

#include <benchmark/benchmark.h>

#include "graph/min_cost_flow.hpp"
#include "graph/steiner.hpp"
#include "grid/obstacle_map.hpp"
#include "route/astar.hpp"
#include "route/bounded_astar.hpp"

namespace {

using pacor::geom::Point;

void BM_MinCostFlowGrid(benchmark::State& state) {
  // k source-sink pairs across an n x n node-split grid.
  const auto n = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    pacor::graph::MinCostFlow flow(static_cast<std::size_t>(2 * n * n + 2));
    const auto in = [&](std::int32_t x, std::int32_t y) {
      return static_cast<std::size_t>(2 * (y * n + x));
    };
    const auto out = [&](std::int32_t x, std::int32_t y) {
      return static_cast<std::size_t>(2 * (y * n + x) + 1);
    };
    const std::size_t s = static_cast<std::size_t>(2 * n * n);
    const std::size_t t = s + 1;
    for (std::int32_t y = 0; y < n; ++y)
      for (std::int32_t x = 0; x < n; ++x) {
        flow.addEdge(in(x, y), out(x, y), 1, 0);
        if (x + 1 < n) {
          flow.addEdge(out(x, y), in(x + 1, y), 1, 1);
          flow.addEdge(out(x + 1, y), in(x, y), 1, 1);
        }
        if (y + 1 < n) {
          flow.addEdge(out(x, y), in(x, y + 1), 1, 1);
          flow.addEdge(out(x, y + 1), in(x, y), 1, 1);
        }
      }
    const std::int32_t k = n / 4;
    for (std::int32_t i = 0; i < k; ++i) {
      flow.addEdge(s, in(0, 1 + 2 * i), 1, 0);
      flow.addEdge(out(n - 1, 1 + 2 * i), t, 1, 0);
    }
    const auto r = flow.run(s, t);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinCostFlowGrid)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_AStarGrid(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  pacor::grid::ObstacleMap obs{pacor::grid::Grid(n, n)};
  for (std::int32_t i = 4; i < n - 4; i += 4)  // picket-fence obstacles
    for (std::int32_t y = (i % 8 == 0) ? 0 : 4; y < n - ((i % 8 == 0) ? 4 : 0); ++y)
      obs.addObstacle({i, y});
  for (auto _ : state) {
    auto r = pacor::route::aStarPointToPoint(obs, {0, 0}, {n - 1, n - 1});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AStarGrid)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_BoundedAStar(benchmark::State& state) {
  // Fixed endpoints, growing required detour slack.
  pacor::grid::ObstacleMap obs{pacor::grid::Grid(64, 64)};
  const std::int64_t extra = state.range(0);
  pacor::route::BoundedAStarRequest req;
  req.source = {10, 32};
  req.target = {50, 32};
  req.minLength = 40 + extra;
  req.maxLength = 40 + extra + 1;
  for (auto _ : state) {
    auto r = pacor::route::boundedLengthRoute(obs, req);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BoundedAStar)->Arg(0)->Arg(8)->Arg(32)->Arg(128);


void BM_SteinerVsMst(benchmark::State& state) {
  // Random terminal sets; the counter reports the mean wirelength saving
  // of iterated 1-Steiner over the plain MST topology.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::int64_t mstTotal = 0;
  std::int64_t steinerTotal = 0;
  unsigned seed = 1;
  for (auto _ : state) {
    std::vector<pacor::geom::Point> pts;
    for (std::size_t i = 0; i < n; ++i) {
      seed = seed * 1664525u + 1013904223u;
      pts.push_back({static_cast<std::int32_t>(seed % 64),
                     static_cast<std::int32_t>((seed >> 8) % 64)});
    }
    const auto tree = pacor::graph::iteratedOneSteiner(pts);
    mstTotal += pacor::graph::mstCost(pts);
    steinerTotal += tree.cost;
    benchmark::DoNotOptimize(tree);
  }
  if (mstTotal > 0)
    state.counters["saving"] =
        1.0 - static_cast<double>(steinerTotal) / static_cast<double>(mstTotal);
}
BENCHMARK(BM_SteinerVsMst)->Arg(4)->Arg(6)->Arg(9);

}  // namespace

BENCHMARK_MAIN();
