// Physical validation of the paper's motivation (Sec. 1): pressure
// propagation through PDMS control channels is slow, so unmatched channel
// lengths desynchronize valves. Routes S3 with and without the final
// detour stage and reports the worst per-cluster actuation skew under the
// RC channel model -- matched clusters must show (near-)zero skew.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"
#include "sim/pressure.hpp"

namespace {

using pacor::geom::Point;

double worstClusterSkew(const pacor::chip::Chip& chip,
                        const pacor::core::PacorResult& result, bool matchedOnly) {
  double worst = 0.0;
  for (const auto& c : result.clusters) {
    if (!c.lengthMatchRequested || c.pin < 0) continue;
    if (matchedOnly && !c.lengthMatched) continue;
    std::vector<pacor::route::Path> paths = c.treePaths;
    paths.push_back(c.escapePath);
    std::vector<Point> valves;
    for (const auto v : c.valves) valves.push_back(chip.valve(v).pos);
    const auto tree =
        pacor::sim::ChannelTree::build(chip.pin(c.pin).pos, paths, valves);
    if (!tree) continue;
    worst = std::max(worst, tree->skew(valves));
  }
  return worst;
}

void printSkewComparison() {
  std::printf("\n=== Pressure-propagation skew: matched vs unmatched routing ===\n");
  for (const auto& params : {pacor::chip::s3Params(), pacor::chip::s4Params()}) {
    const auto chip = pacor::chip::generateChip(params);

    pacor::core::PacorConfig matched;  // full PACOR
    pacor::core::PacorConfig unmatched;
    unmatched.detourIterations = 0;  // skip detouring entirely

    const auto rm = pacor::core::routeChip(chip, matched);
    const auto ru = pacor::core::routeChip(chip, unmatched);
    std::printf("%-4s matched clusters %d/%d, worst Elmore skew %.2f a.u.\n",
                chip.name.c_str(), rm.matchedClusterCount, rm.multiValveClusterCount,
                worstClusterSkew(chip, rm, true));
    std::printf("%-4s without detour:  %d/%d, worst Elmore skew %.2f a.u.\n",
                chip.name.c_str(), ru.matchedClusterCount, ru.multiValveClusterCount,
                worstClusterSkew(chip, ru, false));
  }
  std::printf("\n");
}

void BM_ElmoreAnalysis(benchmark::State& state) {
  const auto chip = pacor::chip::generateChip(pacor::chip::s3Params());
  const auto result = pacor::core::routeChip(chip);
  for (auto _ : state) {
    const double skew = worstClusterSkew(chip, result, false);
    benchmark::DoNotOptimize(skew);
  }
}
BENCHMARK(BM_ElmoreAnalysis);

void BM_TransientSimulation(benchmark::State& state) {
  // One long channel, explicit RC integration.
  pacor::route::Path path;
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(state.range(0)); ++i)
    path.push_back({i, 0});
  const std::vector<pacor::route::Path> paths{path};
  const std::vector<Point> probe{path.back()};
  const auto tree = pacor::sim::ChannelTree::build({0, 0}, paths, probe);
  for (auto _ : state) {
    auto times = tree->actuationTimes(probe, 0.05, 5000.0);
    benchmark::DoNotOptimize(times);
  }
}
BENCHMARK(BM_TransientSimulation)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printSkewComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
