// FPVA scale-sweep benchmark: generates N x N programmable valve arrays
// with the chip::generateFpvaChip defaults across a ladder of sizes,
// routes each with the full PACOR flow serially and with the worker pool,
// and writes per-stage wall time, search-effort counters, and the process
// peak RSS to BENCH_fpva.json. The JSON shape matches BENCH_routing.json
// so bench/compare_baseline.py gates it unchanged (run with --golden=none:
// FPVA instances are not part of the Table-1 golden set).
//
// Every routed solution is re-checked by the independent oracle
// (verify::verifySolution); an unclean solution fails the run. Peak RSS
// is a process-global high-water mark, so each row reports the value
// observed after that size finished -- the column is monotone and the
// largest size's row is the sweep's peak.
//
// Usage: bench_fpva [out.json] [--sizes=8,16,32,40,64]
//   out.json  defaults to BENCH_fpva.json
//   --sizes=  comma-separated square array sizes (rows = cols = N)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "util/rss.hpp"
#include "util/sha256.hpp"
#include "util/thread_pool.hpp"
#include "verify/oracle.hpp"

namespace {

using pacor::core::PacorConfig;
using pacor::core::PacorResult;

constexpr int kRepetitions = 2;  ///< per design and mode; best time wins

bool identicalRouting(const PacorResult& a, const PacorResult& b) {
  if (a.complete != b.complete || a.totalChannelLength != b.totalChannelLength ||
      a.matchedChannelLength != b.matchedChannelLength ||
      a.matchedClusterCount != b.matchedClusterCount ||
      a.clusters.size() != b.clusters.size())
    return false;
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    const auto& x = a.clusters[i];
    const auto& y = b.clusters[i];
    if (x.pin != y.pin || !(x.tap == y.tap) || x.treePaths != y.treePaths ||
        x.escapePath != y.escapePath || x.totalLength != y.totalLength)
      return false;
  }
  return true;
}

struct TimedRun {
  PacorResult result;
  double seconds = 0.0;
};

TimedRun bestOf(const pacor::chip::Chip& chip, const PacorConfig& cfg) {
  TimedRun best;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    PacorResult r = pacor::core::routeChip(chip, cfg);
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (rep == 0 || s < best.seconds) {
      best.result = std::move(r);
      best.seconds = s;
    }
  }
  return best;
}

void jsonCounters(std::FILE* f, const char* key,
                  const pacor::route::SearchCounters& c, const char* tail) {
  std::fprintf(f,
               "        \"%s\": {\"searches\": %llu, \"expansions\": %llu, "
               "\"bounded_visits\": %llu}%s\n",
               key, static_cast<unsigned long long>(c.searches),
               static_cast<unsigned long long>(c.expansions),
               static_cast<unsigned long long>(c.boundedVisits), tail);
}

std::vector<int> parseSizes(const std::string& arg) {
  std::vector<int> sizes;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string tok =
        arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    sizes.push_back(std::stoi(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_fpva.json";
  std::vector<int> sizes = {8, 16, 32, 40, 64};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sizes=", 0) == 0) {
      sizes = parseSizes(arg.substr(8));
      if (sizes.empty()) {
        std::fprintf(stderr, "empty --sizes list\n");
        return 2;
      }
    } else {
      outPath = arg;
    }
  }

  const int parallelJobs =
      std::max(2, static_cast<int>(pacor::util::hardwareJobs()));
  PacorConfig serialCfg = pacor::core::pacorDefaultConfig();
  serialCfg.jobs = 1;
  PacorConfig parallelCfg = serialCfg;
  parallelCfg.jobs = parallelJobs;

  std::FILE* f = std::fopen(outPath.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"fpva\",\n");
  std::fprintf(f, "  \"repetitions\": %d,\n", kRepetitions);
  std::fprintf(f, "  \"parallel_jobs\": %d,\n  \"designs\": [\n", parallelJobs);

  double serialTotal = 0.0;
  double parallelTotal = 0.0;
  bool allIdentical = true;
  bool allComplete = true;
  bool allClean = true;

  std::printf("%-12s %8s %8s %10s %10s %8s  %s %s   (parallel = %d jobs)\n",
              "Design", "valves", "clusters", "serial(s)", "par(s)", "rss(MB)",
              "identical", "oracle", parallelJobs);
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    pacor::chip::FpvaParams params;
    params.rows = sizes[d];
    params.cols = sizes[d];
    const auto chip = pacor::chip::generateFpvaChip(params);

    const TimedRun serial = bestOf(chip, serialCfg);
    const TimedRun parallel = bestOf(chip, parallelCfg);
    const bool identical = identicalRouting(serial.result, parallel.result);
    const auto oracle = pacor::verify::verifySolution(chip, serial.result);
    const std::int64_t rssKb = pacor::util::peakRssKb();
    serialTotal += serial.seconds;
    parallelTotal += parallel.seconds;
    allIdentical &= identical;
    allComplete &= serial.result.complete && parallel.result.complete;
    allClean &= oracle.clean();

    std::printf("%-12s %8zu %8zu %10.3f %10.3f %8.1f  %-9s %s\n",
                chip.name.c_str(), chip.valves.size(),
                serial.result.clusters.size(), serial.seconds, parallel.seconds,
                static_cast<double>(rssKb) / 1024.0, identical ? "yes" : "NO",
                oracle.clean() ? "clean" : "DIRTY");
    if (!oracle.clean())
      std::fprintf(stderr, "%s oracle violations:\n%s\n", chip.name.c_str(),
                   oracle.str().c_str());

    const auto& st = serial.result.times;
    std::fprintf(f, "    {\n      \"design\": \"%s\",\n", chip.name.c_str());
    std::fprintf(f, "      \"valves\": %zu,\n", chip.valves.size());
    std::fprintf(f, "      \"clusters\": %zu,\n", serial.result.clusters.size());
    std::fprintf(f, "      \"grid\": [%d, %d],\n", chip.routingGrid.width(),
                 chip.routingGrid.height());
    std::fprintf(f, "      \"serial_seconds\": %.6f,\n", serial.seconds);
    std::fprintf(f, "      \"parallel_seconds\": %.6f,\n", parallel.seconds);
    std::fprintf(f, "      \"speedup\": %.4f,\n",
                 parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0);
    std::fprintf(f, "      \"identical\": %s,\n", identical ? "true" : "false");
    std::fprintf(f, "      \"complete\": %s,\n",
                 serial.result.complete ? "true" : "false");
    std::fprintf(f, "      \"oracle_clean\": %s,\n",
                 oracle.clean() ? "true" : "false");
    std::fprintf(f, "      \"peak_rss_kb\": %lld,\n",
                 static_cast<long long>(rssKb));
    std::fprintf(f, "      \"total_channel_length\": %lld,\n",
                 static_cast<long long>(serial.result.totalChannelLength));
    std::fprintf(f, "      \"matched_channel_length\": %lld,\n",
                 static_cast<long long>(serial.result.matchedChannelLength));
    std::fprintf(f, "      \"matched_clusters\": %d,\n",
                 serial.result.matchedClusterCount);
    std::fprintf(f, "      \"solution_sha256\": \"%s\",\n",
                 pacor::util::sha256Hex(
                     pacor::core::solutionToString(serial.result))
                     .c_str());
    std::fprintf(f,
                 "      \"stage_seconds\": {\"clustering\": %.6f, "
                 "\"cluster_routing\": %.6f, \"escape\": %.6f, "
                 "\"detour\": %.6f, \"total\": %.6f},\n",
                 st.clustering, st.clusterRouting, st.escape, st.detour, st.total);
    std::fprintf(f, "      \"search\": {\n");
    jsonCounters(f, "cluster_routing", serial.result.searchClusterRouting, ",");
    jsonCounters(f, "escape", serial.result.searchEscape, ",");
    jsonCounters(f, "detour", serial.result.searchDetour, "");
    std::fprintf(f, "      },\n");
    std::fprintf(f, "      \"metrics\": %s\n",
                 serial.result.metrics.toJson(/*pretty=*/false).c_str());
    std::fprintf(f, "    }%s\n", d + 1 < sizes.size() ? "," : "");
  }

  std::fprintf(f, "  ],\n  \"summary\": {\n");
  std::fprintf(f, "    \"serial_seconds_total\": %.6f,\n", serialTotal);
  std::fprintf(f, "    \"parallel_seconds_total\": %.6f,\n", parallelTotal);
  std::fprintf(f, "    \"speedup\": %.4f,\n",
               parallelTotal > 0.0 ? serialTotal / parallelTotal : 0.0);
  std::fprintf(f, "    \"peak_rss_kb\": %lld,\n",
               static_cast<long long>(pacor::util::peakRssKb()));
  std::fprintf(f, "    \"all_identical\": %s,\n", allIdentical ? "true" : "false");
  std::fprintf(f, "    \"all_complete\": %s,\n", allComplete ? "true" : "false");
  std::fprintf(f, "    \"all_oracle_clean\": %s\n  }\n}\n",
               allClean ? "true" : "false");
  std::fclose(f);

  std::printf("total: serial %.3fs, parallel %.3fs (%.2fx), peak RSS %.1f MB, "
              "wrote %s\n",
              serialTotal, parallelTotal,
              parallelTotal > 0.0 ? serialTotal / parallelTotal : 0.0,
              static_cast<double>(pacor::util::peakRssKb()) / 1024.0,
              outPath.c_str());
  return allIdentical && allComplete && allClean ? 0 : 1;
}
