// Reproduces Table 2 of the paper: the main self-comparison of the three
// flow variants ("w/o Sel", "Detour First", full PACOR) on all seven
// designs -- matched cluster counts, matched channel length, total channel
// length, and runtime. The absolute numbers differ from the paper (the
// instances are regenerated to Table 1's statistics, not the proprietary
// netlists), but the qualitative shape must hold: 100% completion
// everywhere, PACOR matching at least as many clusters as the baselines,
// and "w/o Sel" paying in matched clusters / wirelength.

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <iostream>
#include <vector>

#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/report.hpp"

namespace {

using pacor::core::PacorResult;

void printTable2() {
  std::printf("\n=== Table 2: Computational simulation ===\n");
  pacor::core::printTable2Header(std::cout);
  int incomplete = 0;
  std::vector<std::array<PacorResult, 3>> rows;
  for (const auto& params : pacor::chip::table1Designs()) {
    const auto chip = pacor::chip::generateChip(params);
    PacorResult woSel = routeChip(chip, pacor::core::withoutSelectionConfig());
    PacorResult detourFirst = routeChip(chip, pacor::core::detourFirstConfig());
    PacorResult full = routeChip(chip, pacor::core::pacorDefaultConfig());
    pacor::core::printTable2Row(std::cout, woSel, detourFirst, full);
    incomplete += !woSel.complete + !detourFirst.complete + !full.complete;
    rows.push_back({std::move(woSel), std::move(detourFirst), std::move(full)});
  }
  std::printf("routing completion: %s\n\n",
              incomplete == 0 ? "100%% on all designs/variants"
                              : "INCOMPLETE RUNS PRESENT");

  // Search-effort companion table, from each run's MetricsRegistry.
  std::printf("=== Table 2 companion: search effort ===\n");
  pacor::core::printEffortHeader(std::cout);
  for (const auto& row : rows)
    pacor::core::printEffortRow(std::cout, row[0], row[1], row[2]);
  std::printf("\n");
}

void BM_PacorFullFlow(benchmark::State& state) {
  const auto designs = pacor::chip::table1Designs();
  const auto& params = designs[static_cast<std::size_t>(state.range(0))];
  const auto chip = pacor::chip::generateChip(params);
  for (auto _ : state) {
    auto result = routeChip(chip, pacor::core::pacorDefaultConfig());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(params.name);
}
// Small designs only in the timed loop; the big ones are exercised once in
// printTable2 (matching the paper's single-run reporting).
BENCHMARK(BM_PacorFullFlow)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
