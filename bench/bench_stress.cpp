// Stress-instance reproduction of the Table 2 *ordering*: the regenerated
// Table 1 designs are routable enough that every variant saturates, so
// this harness packs many length-matching clusters into congested dies
// (chip::stressParams) and aggregates matched-cluster counts over seeds --
// the paper's qualitative claims (candidate selection raises the matched
// count; detour-first can save wirelength but costs matches) must show in
// the aggregate. Also isolates the Sec. 5 claim that the min-cost-flow
// escape beats greedy sequential escape on routability and length.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "chip/generator.hpp"
#include "pacor/escape.hpp"
#include "pacor/pipeline.hpp"

namespace {

using pacor::core::PacorResult;

void printStressComparison() {
  std::printf("\n=== Stress suite: variant ordering over 8 seeds ===\n");
  std::printf("%-10s %8s %8s %8s   %10s %10s %10s\n", "Instance", "w/oSel", "DetF",
              "PACOR", "len(w/o)", "len(DetF)", "len(PACOR)");
  int sumWo = 0, sumDf = 0, sumPa = 0;
  long long lenWo = 0, lenDf = 0, lenPa = 0;
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const auto chip = pacor::chip::generateChip(pacor::chip::stressParams(seed));
    const auto wo = routeChip(chip, pacor::core::withoutSelectionConfig());
    const auto df = routeChip(chip, pacor::core::detourFirstConfig());
    const auto pa = routeChip(chip, pacor::core::pacorDefaultConfig());
    std::printf("%-10s %5d/%-2d %5d/%-2d %5d/%-2d   %10lld %10lld %10lld%s\n",
                chip.name.c_str(), wo.matchedClusterCount, wo.multiValveClusterCount,
                df.matchedClusterCount, df.multiValveClusterCount,
                pa.matchedClusterCount, pa.multiValveClusterCount,
                static_cast<long long>(wo.totalChannelLength),
                static_cast<long long>(df.totalChannelLength),
                static_cast<long long>(pa.totalChannelLength),
                (wo.complete && df.complete && pa.complete) ? "" : "  INCOMPLETE");
    sumWo += wo.matchedClusterCount;
    sumDf += df.matchedClusterCount;
    sumPa += pa.matchedClusterCount;
    lenWo += wo.totalChannelLength;
    lenDf += df.totalChannelLength;
    lenPa += pa.totalChannelLength;
  }
  std::printf("%-10s %8d %8d %8d   %10lld %10lld %10lld\n", "TOTAL", sumWo, sumDf,
              sumPa, lenWo, lenDf, lenPa);
  std::printf("\n");
}

/// Builds N internally-routed singleton clusters in a row competing for
/// pins on one edge through an obstacle shelf; runs either escape solver.
void escapeScenario(bool useFlow, int& routed, long long& length) {
  using pacor::geom::Point;
  pacor::chip::Chip chip;
  chip.name = "escape-abl";
  chip.routingGrid = pacor::grid::Grid(30, 18);
  int id = 0;
  for (int i = 0; i < 8; ++i) {
    const std::string seq = std::string(1, '0' + (i & 1)) +
                            std::string(1, '0' + ((i >> 1) & 1)) +
                            std::string(1, '0' + ((i >> 2) & 1)) + "1";
    chip.valves.push_back({id++, Point{7 + 2 * i, 12}, pacor::chip::ActivationSequence(seq)});
  }
  for (int i = 0; i < 9; ++i) chip.pins.push_back({i, Point{6 + 2 * i, 0}});
  for (std::int32_t x = 6; x <= 22; ++x)
    if (x != 9 && x != 16) chip.obstacles.push_back({x, 6});

  pacor::grid::ObstacleMap obs = chip.makeObstacleMap();
  std::vector<pacor::core::WorkCluster> clusters(chip.valves.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    auto& wc = clusters[i];
    wc.spec.valves = {static_cast<pacor::chip::ValveId>(i)};
    wc.net = static_cast<pacor::grid::NetId>(i);
    const Point cell = chip.valves[i].pos;
    obs.occupy(std::span<const Point>(&cell, 1), wc.net);
    wc.tap = cell;
    wc.tapCells = {cell};
    wc.internallyRouted = true;
  }
  std::vector<pacor::core::WorkCluster*> ptrs;
  for (auto& wc : clusters) ptrs.push_back(&wc);
  const auto outcome = useFlow ? pacor::core::escapeRoute(chip, obs, ptrs)
                               : pacor::core::escapeRouteSequential(chip, obs, ptrs);
  routed = outcome.routedCount;
  length = 0;
  for (const auto& wc : clusters)
    length += pacor::route::pathLength(wc.escapePath);
}

void printEscapeAblation() {
  std::printf("=== Escape routing: min-cost flow vs greedy sequential ===\n");
  int routed = 0;
  long long length = 0;
  escapeScenario(false, routed, length);
  std::printf("sequential A*:  routed %d/8, total length %lld\n", routed, length);
  escapeScenario(true, routed, length);
  std::printf("min-cost flow:  routed %d/8, total length %lld\n", routed, length);
  std::printf("\n");
}

void BM_EscapeFlow(benchmark::State& state) {
  for (auto _ : state) {
    int routed = 0;
    long long length = 0;
    escapeScenario(state.range(0) != 0, routed, length);
    benchmark::DoNotOptimize(routed);
  }
  state.SetLabel(state.range(0) ? "flow" : "sequential");
}
BENCHMARK(BM_EscapeFlow)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_StressFullFlow(benchmark::State& state) {
  const auto chip = pacor::chip::generateChip(pacor::chip::stressParams(1));
  for (auto _ : state) {
    auto r = pacor::core::routeChip(chip);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_StressFullFlow)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printStressComparison();
  printEscapeAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
