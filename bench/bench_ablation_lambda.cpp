// Ablation of the selection objective's lambda (Sec. 4.2): lambda weighs
// pre-routing length mismatch against Steiner-tree overlap (Eqs. 2-3).
// The paper fixes lambda = 0.1, prioritizing routability; the sweep shows
// how matched clusters and wirelength respond across the range.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"

namespace {

void printLambdaSweep() {
  std::printf("\n=== Ablation: selection weight lambda (4 stress seeds, aggregated) ===\n");
  std::printf("%-8s %10s %14s %12s\n", "lambda", "#matched", "total_len", "complete");
  for (const double lambda : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    pacor::core::PacorConfig cfg;
    cfg.lambda = lambda;
    int matched = 0;
    long long total = 0;
    bool complete = true;
    for (const std::uint32_t seed : {3u, 5u, 6u, 8u}) {
      const auto chip = pacor::chip::generateChip(pacor::chip::stressParams(seed));
      const auto r = routeChip(chip, cfg);
      matched += r.matchedClusterCount;
      total += r.totalChannelLength;
      complete &= r.complete;
    }
    std::printf("%-8.2f %7d/48 %14lld %12s\n", lambda, matched, total,
                complete ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_SelectionSolve(benchmark::State& state) {
  const auto chip = pacor::chip::generateChip(pacor::chip::s4Params());
  pacor::core::PacorConfig cfg;
  cfg.lambda = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    auto r = routeChip(chip, cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SelectionSolve)->Arg(0)->Arg(1)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printLambdaSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
