// Reproduces Figure 2 of the paper as an instrumented run: the stage-by-
// stage pipeline trace (valve clustering, length-matching cluster routing,
// MST routing, escape routing, de-clustering, detouring) with per-stage
// wall-clock shares on each design.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"

namespace {

void printFlowTrace() {
  std::printf("\n=== Figure 2: flow stages (per-stage runtime share) ===\n");
  std::printf("%-8s %10s %12s %10s %10s %8s %8s %10s\n", "Design", "cluster(s)",
              "lm+mst(s)", "escape(s)", "detour(s)", "rounds", "declust", "matched");
  for (const auto& params : pacor::chip::table1Designs()) {
    const auto chip = pacor::chip::generateChip(params);
    const auto r = pacor::core::routeChip(chip);
    std::printf("%-8s %10.4f %12.4f %10.4f %10.4f %8d %8d %6d/%d\n",
                r.design.c_str(), r.times.clustering, r.times.clusterRouting,
                r.times.escape, r.times.detour, r.escapeRounds, r.declusteredCount,
                r.matchedClusterCount, r.multiValveClusterCount);
  }
  std::printf("\n");
}

void BM_StageBreakdownS3(benchmark::State& state) {
  const auto chip = pacor::chip::generateChip(pacor::chip::s3Params());
  double escape = 0.0;
  double total = 0.0;
  for (auto _ : state) {
    const auto r = pacor::core::routeChip(chip);
    escape += r.times.escape;
    total += r.times.total;
    benchmark::DoNotOptimize(r.totalChannelLength);
  }
  state.counters["escape_share"] = total > 0 ? escape / total : 0.0;
}
BENCHMARK(BM_StageBreakdownS3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printFlowTrace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
