#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <stdexcept>
#include <unordered_set>

#include "grid/grid.hpp"
#include "grid/obstacle_map.hpp"

namespace pacor::grid {
namespace {

TEST(Grid, BoundsAndIndexing) {
  const Grid g(7, 5);
  EXPECT_EQ(g.width(), 7);
  EXPECT_EQ(g.height(), 5);
  EXPECT_EQ(g.cellCount(), 35);
  EXPECT_TRUE(g.inBounds({0, 0}));
  EXPECT_TRUE(g.inBounds({6, 4}));
  EXPECT_FALSE(g.inBounds({7, 0}));
  EXPECT_FALSE(g.inBounds({0, -1}));
  for (std::int32_t i = 0; i < g.cellCount(); ++i)
    EXPECT_EQ(g.index(g.point(i)), i);
}

TEST(Grid, BoundaryPredicate) {
  const Grid g(4, 4);
  EXPECT_TRUE(g.onBoundary({0, 2}));
  EXPECT_TRUE(g.onBoundary({3, 1}));
  EXPECT_TRUE(g.onBoundary({2, 0}));
  EXPECT_FALSE(g.onBoundary({1, 1}));
  EXPECT_FALSE(g.onBoundary({4, 0}));  // out of bounds is not boundary
}

TEST(Grid, NeighborsInterior) {
  const Grid g(5, 5);
  const auto n = g.neighbors({2, 2});
  EXPECT_EQ(n.size(), 4u);
}

TEST(Grid, NeighborsCorner) {
  const Grid g(5, 5);
  const auto n = g.neighbors({0, 0});
  ASSERT_EQ(n.size(), 2u);
  const std::unordered_set<geom::Point> set(n.begin(), n.end());
  EXPECT_TRUE(set.contains({1, 0}));
  EXPECT_TRUE(set.contains({0, 1}));
}

TEST(Grid, BoundaryCellsCountAndUniqueness) {
  const Grid g(6, 9);
  const auto cells = g.boundaryCells();
  EXPECT_EQ(cells.size(), static_cast<std::size_t>(2 * (6 + 9) - 4));
  std::unordered_set<geom::Point> set(cells.begin(), cells.end());
  EXPECT_EQ(set.size(), cells.size());
  for (const auto c : cells) EXPECT_TRUE(g.onBoundary(c));
}

TEST(Grid, BoundaryCellsCoverAllBoundary) {
  const Grid g(5, 4);
  const auto cells = g.boundaryCells();
  const std::unordered_set<geom::Point> set(cells.begin(), cells.end());
  for (std::int32_t x = 0; x < 5; ++x)
    for (std::int32_t y = 0; y < 4; ++y)
      EXPECT_EQ(set.contains({x, y}), g.onBoundary({x, y}));
}

TEST(Grid, SingleRowBoundary) {
  const Grid g(5, 1);
  const auto cells = g.boundaryCells();
  EXPECT_EQ(cells.size(), 5u);
}

// Regression: index() computes y * width + x in int32, so a die whose
// cell count exceeds INT32_MAX used to wrap and alias distinct cells.
// The constructor must reject such dimensions outright.
TEST(Grid, RejectsCellCountPastInt32) {
  EXPECT_THROW(Grid(65536, 65536), std::invalid_argument);
  EXPECT_THROW(Grid(2, std::numeric_limits<std::int32_t>::max() / 2 + 1),
               std::invalid_argument);
  // The largest representable rectangle is fine.
  const std::int32_t big = 46340;  // 46340^2 < 2^31 - 1
  EXPECT_NO_THROW(Grid(big, big));
}

TEST(ObstacleMap, InitiallyFree) {
  ObstacleMap map(Grid(4, 4));
  for (std::int32_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(map.isFree(map.grid().point(i)));
    EXPECT_EQ(map.owner(map.grid().point(i)), kFreeCell);
  }
}

TEST(ObstacleMap, ObstaclesBlock) {
  ObstacleMap map(Grid(4, 4));
  map.addObstacle({1, 1});
  EXPECT_TRUE(map.isObstacle({1, 1}));
  EXPECT_FALSE(map.isFree({1, 1}));
  EXPECT_FALSE(map.isFreeFor({1, 1}, 3));
  EXPECT_EQ(map.obstacleCount(), 1);
}

TEST(ObstacleMap, ObstacleRectClipped) {
  ObstacleMap map(Grid(4, 4));
  map.blockRect(geom::Rect{{2, 2}, {9, 9}});  // clipped to grid
  EXPECT_EQ(map.obstacleCount(), 4);            // (2..3)x(2..3)
}

TEST(ObstacleMap, OccupyAndOwnership) {
  ObstacleMap map(Grid(5, 5));
  const std::vector<geom::Point> path{{0, 0}, {1, 0}, {2, 0}};
  map.occupy(path, 7);
  EXPECT_EQ(map.owner({1, 0}), 7);
  EXPECT_TRUE(map.isFreeFor({1, 0}, 7));
  EXPECT_FALSE(map.isFreeFor({1, 0}, 8));
  EXPECT_EQ(map.countOwnedBy(7), 3);
}

TEST(ObstacleMap, ReleaseWholeNet) {
  ObstacleMap map(Grid(5, 5));
  const std::vector<geom::Point> path{{0, 0}, {1, 0}};
  map.occupy(path, 2);
  map.release(2);
  EXPECT_TRUE(map.isFree({0, 0}));
  EXPECT_TRUE(map.isFree({1, 0}));
  EXPECT_EQ(map.countOwnedBy(2), 0);
}

TEST(ObstacleMap, ReleasePathKeepsOtherCells) {
  ObstacleMap map(Grid(5, 5));
  const std::vector<geom::Point> a{{0, 0}, {1, 0}};
  const std::vector<geom::Point> b{{3, 3}};
  map.occupy(a, 4);
  map.occupy(b, 4);
  map.releasePath(a, 4);
  EXPECT_TRUE(map.isFree({0, 0}));
  EXPECT_EQ(map.owner({3, 3}), 4);
}

TEST(ObstacleMap, ReleasePathIgnoresForeignCells) {
  ObstacleMap map(Grid(5, 5));
  const std::vector<geom::Point> a{{0, 0}};
  map.occupy(a, 1);
  map.releasePath(a, 2);  // wrong net: no-op
  EXPECT_EQ(map.owner({0, 0}), 1);
}

TEST(ObstacleMap, ReoccupySameNetIsIdempotent) {
  ObstacleMap map(Grid(5, 5));
  const std::vector<geom::Point> a{{2, 2}, {2, 3}};
  map.occupy(a, 9);
  map.occupy(a, 9);  // same net may re-claim (shared tree trunks)
  EXPECT_EQ(map.countOwnedBy(9), 2);
}

std::vector<NetId> ownerSnapshot(const ObstacleMap& map) {
  std::vector<NetId> owners;
  owners.reserve(static_cast<std::size_t>(map.grid().cellCount()));
  for (std::int32_t c = 0; c < map.grid().cellCount(); ++c)
    owners.push_back(map.owner(map.grid().point(c)));
  return owners;
}

TEST(ObstacleMapTransaction, RollbackRestoresExactState) {
  ObstacleMap map(Grid(8, 6));
  map.addObstacle({3, 3});
  const std::vector<geom::Point> base{{0, 0}, {1, 0}, {2, 0}};
  map.occupy(base, 7);
  const auto before = ownerSnapshot(map);

  ObstacleMapTransaction txn(map);
  const std::vector<geom::Point> path{{0, 1}, {1, 1}, {2, 1}, {2, 2}};
  txn.occupy(path, 9);
  txn.releasePath(std::span<const geom::Point>(base.data(), 2), 7);
  EXPECT_EQ(map.owner({1, 1}), 9);
  EXPECT_TRUE(map.isFree({0, 0}));
  EXPECT_EQ(txn.log().size(), 6u);  // 4 occupied + 2 released

  txn.rollback();
  EXPECT_EQ(ownerSnapshot(map), before);
  EXPECT_TRUE(txn.log().empty());
}

TEST(ObstacleMapTransaction, RollbackUndoesOverlappingMutationsInOrder) {
  ObstacleMap map(Grid(6, 6));
  const std::vector<geom::Point> cells{{1, 1}, {2, 1}};
  const auto before = ownerSnapshot(map);

  // The same cell changes owner twice: free -> 5 -> free -> 8. The reverse
  // replay must walk back through every intermediate owner.
  ObstacleMapTransaction txn(map);
  txn.occupy(cells, 5);
  txn.releasePath(cells, 5);
  txn.occupy(cells, 8);
  EXPECT_EQ(map.owner({1, 1}), 8);
  txn.rollback();
  EXPECT_EQ(ownerSnapshot(map), before);
}

TEST(ObstacleMapTransaction, LogSkipsCellsAlreadyOwnedBySameNet) {
  ObstacleMap map(Grid(6, 6));
  const std::vector<geom::Point> cells{{4, 4}};
  map.occupy(cells, 3);

  ObstacleMapTransaction txn(map);
  txn.occupy(cells, 3);  // no-op: already owned by net 3
  EXPECT_TRUE(txn.log().empty());
  txn.rollback();
  EXPECT_EQ(map.owner({4, 4}), 3);
}

TEST(ObstacleMapTransaction, CommitKeepsMutations) {
  ObstacleMap map(Grid(6, 6));
  const std::vector<geom::Point> cells{{0, 5}, {1, 5}};

  ObstacleMapTransaction txn(map);
  txn.occupy(cells, 2);
  txn.commit();
  EXPECT_TRUE(txn.log().empty());
  txn.rollback();  // nothing left to undo
  EXPECT_EQ(map.owner({0, 5}), 2);
  EXPECT_EQ(map.owner({1, 5}), 2);
}

TEST(ObstacleMapTransaction, RollbackAfterCommitOnlyUndoesNewerMutations) {
  ObstacleMap map(Grid(6, 6));
  ObstacleMapTransaction txn(map);
  const std::vector<geom::Point> first{{1, 1}, {2, 1}};
  const std::vector<geom::Point> second{{3, 1}, {4, 1}};

  txn.occupy(first, 5);
  txn.commit();  // first is now permanent
  const auto afterCommit = ownerSnapshot(map);

  txn.occupy(second, 6);
  txn.releasePath(std::span<const geom::Point>(first.data(), 1), 5);
  txn.rollback();  // must restore exactly the post-commit state
  EXPECT_EQ(ownerSnapshot(map), afterCommit);
  EXPECT_EQ(map.owner({1, 1}), 5);
  EXPECT_TRUE(map.isFree({3, 1}));
}

TEST(ObstacleMapTransaction, AlternatingCommitRollbackSequences) {
  ObstacleMap map(Grid(8, 8));
  map.addObstacle({4, 4});
  ObstacleMapTransaction txn(map);

  // Round 1: route two nets, keep them.
  txn.occupy(std::vector<geom::Point>{{0, 0}, {1, 0}}, 1);
  txn.occupy(std::vector<geom::Point>{{0, 2}, {1, 2}}, 2);
  txn.commit();
  const auto round1 = ownerSnapshot(map);

  // Round 2: rip net 1 up, try a new net, abandon the whole round.
  txn.releasePath(std::vector<geom::Point>{{0, 0}, {1, 0}}, 1);
  txn.occupy(std::vector<geom::Point>{{2, 2}, {2, 3}, {2, 4}}, 3);
  txn.rollback();
  EXPECT_EQ(ownerSnapshot(map), round1);

  // Round 3: same rip-up succeeds this time and is committed.
  txn.releasePath(std::vector<geom::Point>{{0, 0}, {1, 0}}, 1);
  txn.occupy(std::vector<geom::Point>{{0, 0}, {0, 1}}, 3);
  txn.commit();
  txn.rollback();  // empty log: must not disturb the committed round
  EXPECT_EQ(map.owner({0, 0}), 3);
  EXPECT_EQ(map.owner({0, 1}), 3);
  EXPECT_TRUE(map.isFree({1, 0}));
  EXPECT_EQ(map.owner({0, 2}), 2);
  EXPECT_TRUE(map.isObstacle({4, 4}));
}

TEST(ObstacleMapTransaction, RandomInterleavingsMatchSnapshotModel) {
  // Differential model check: an ObstacleMapTransaction driven by a random
  // occupy/release/commit/rollback schedule must behave exactly like the
  // brute-force model "commit = snapshot, rollback = restore snapshot".
  std::mt19937 rng(20260805);
  for (int round = 0; round < 50; ++round) {
    ObstacleMap map(Grid(7, 7));
    map.addObstacle({3, 3});
    ObstacleMapTransaction txn(map);
    auto checkpoint = ownerSnapshot(map);
    std::vector<std::vector<geom::Point>> routed;  // paths occupied since ever

    for (int step = 0; step < 40; ++step) {
      const auto roll = rng() % 10;
      if (roll < 5) {
        // Occupy a short random free path for a fresh net id.
        std::vector<geom::Point> path;
        geom::Point p{static_cast<std::int32_t>(rng() % 7),
                      static_cast<std::int32_t>(rng() % 7)};
        for (int k = 0; k < 3; ++k) {
          if (!map.grid().inBounds(p) || !map.isFree(p)) break;
          path.push_back(p);
          p = (rng() & 1) ? geom::Point{p.x + 1, p.y} : geom::Point{p.x, p.y + 1};
        }
        if (path.empty()) continue;
        txn.occupy(path, static_cast<NetId>(100 + step));
        routed.push_back(std::move(path));
      } else if (roll < 7 && !routed.empty()) {
        const auto idx = rng() % routed.size();
        const auto path = routed[idx];
        routed.erase(routed.begin() + static_cast<std::ptrdiff_t>(idx));
        txn.releasePath(path, map.owner(path.front()));
      } else if (roll < 8) {
        txn.commit();
        checkpoint = ownerSnapshot(map);
      } else {
        txn.rollback();
        ASSERT_EQ(ownerSnapshot(map), checkpoint) << "round " << round;
        routed.clear();  // ownership below the checkpoint is unknown to us
      }
    }
    txn.rollback();
    EXPECT_EQ(ownerSnapshot(map), checkpoint) << "round " << round;
  }
}

}  // namespace
}  // namespace pacor::grid
