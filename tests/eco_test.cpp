// ECO re-routing tests: the chip::diff/apply contract, edit-script
// serialization, and core::rerouteChip's dirty-set exactness -- an edit
// confined to one cluster must never perturb another cluster's committed
// geometry, and an edit touching nothing must return the previous result
// verbatim.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "chip/chip.hpp"
#include "chip/delta.hpp"
#include "chip/generator.hpp"
#include "pacor/eco.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "verify/oracle.hpp"

namespace pacor {
namespace {

using chip::Chip;
using chip::ChipDelta;
using core::EcoInfo;
using core::PacorResult;
using core::RoutedCluster;

// --- diff / apply ----------------------------------------------------------

class DiffApplyRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DiffApplyRoundTrip, ReconstructsTargetAndSerializes) {
  const std::uint32_t seed = GetParam();
  const Chip a = chip::generateChip(chip::randomParams(seed));
  const Chip b = chip::generateChip(chip::randomParams(seed + 1000));

  const ChipDelta d = chip::diff(a, b);  // self-checks apply(a, d) == b
  EXPECT_TRUE(chip::chipsEqual(chip::apply(a, d), b));

  // Text round-trip preserves every op.
  const ChipDelta parsed = chip::deltaFromString(chip::deltaToString(d));
  EXPECT_EQ(parsed.ops, d.ops);
  EXPECT_TRUE(chip::chipsEqual(chip::apply(a, parsed), b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffApplyRoundTrip,
                         ::testing::Values(1u, 7u, 21u, 42u, 77u, 123u));

TEST(DiffApply, SelfDiffIsEmptyAndEmptyDeltaIsNoOp) {
  const Chip a = chip::generateChip(chip::randomParams(5));
  EXPECT_TRUE(chip::diff(a, a).empty());
  EXPECT_TRUE(chip::chipsEqual(chip::apply(a, ChipDelta{}), a));
}

TEST(DiffApply, ValveMapTracksRemovalRenumbering) {
  const Chip a = chip::generateChip(chip::randomParams(9));
  ASSERT_GE(a.valves.size(), 3u);
  ChipDelta d;
  d.removeValve(1);
  const chip::AppliedDelta applied = chip::applyWithMap(a, d);
  ASSERT_EQ(applied.valveMap.size(), a.valves.size());
  EXPECT_EQ(applied.valveMap[0], 0);
  EXPECT_EQ(applied.valveMap[1], -1);
  for (std::size_t v = 2; v < a.valves.size(); ++v)
    EXPECT_EQ(applied.valveMap[v], static_cast<chip::ValveId>(v) - 1);
  // Surviving valves keep their geometry under the new ids.
  for (std::size_t v = 0; v < a.valves.size(); ++v)
    if (applied.valveMap[v] >= 0)
      EXPECT_EQ(applied.chip.valve(applied.valveMap[v]).pos, a.valve(static_cast<chip::ValveId>(v)).pos);
}

TEST(DeltaIo, MalformedInputThrows) {
  EXPECT_THROW(chip::deltaFromString("not-a-delta"), std::runtime_error);
  EXPECT_THROW(chip::deltaFromString("pacor-delta 1\nops 1\nbad-op 0\n"),
               std::runtime_error);
}

// --- rerouteChip -----------------------------------------------------------

/// Two length-matching pairs on opposite ends of a wide die, far enough
/// apart that an edit inside one cluster's region cannot plausibly force
/// the other to move.
Chip twoIslandChip() {
  Chip c;
  c.name = "eco-islands";
  c.routingGrid = grid::Grid(40, 20);
  c.delta = 2;
  const auto addValve = [&](geom::Point p) {
    chip::Valve v;
    v.id = static_cast<chip::ValveId>(c.valves.size());
    v.pos = p;
    v.sequence = chip::ActivationSequence("10");
    c.valves.push_back(std::move(v));
  };
  addValve({4, 7});
  addValve({4, 13});
  addValve({35, 7});
  addValve({35, 13});
  const auto addPin = [&](geom::Point p) {
    c.pins.push_back(chip::ControlPin{static_cast<chip::PinId>(c.pins.size()), p});
  };
  addPin({0, 10});
  addPin({39, 10});
  addPin({0, 4});
  addPin({39, 4});
  c.givenClusters.push_back(chip::ValveCluster{{0, 1}, true});
  c.givenClusters.push_back(chip::ValveCluster{{2, 3}, true});
  return c;
}

std::vector<chip::ValveId> sorted(std::vector<chip::ValveId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

const RoutedCluster* findCluster(const PacorResult& r,
                                 std::vector<chip::ValveId> valves) {
  valves = sorted(std::move(valves));
  for (const RoutedCluster& rc : r.clusters)
    if (sorted(rc.valves) == valves) return &rc;
  return nullptr;
}

void expectSameGeometry(const RoutedCluster& a, const RoutedCluster& b) {
  EXPECT_EQ(a.pin, b.pin);
  EXPECT_EQ(a.tap, b.tap);
  EXPECT_EQ(a.treePaths, b.treePaths);
  EXPECT_EQ(a.escapePath, b.escapePath);
  EXPECT_EQ(a.valveLengths, b.valveLengths);
}

/// A committed cell of `rc` that is neither a valve site nor a pin --
/// legal to turn into an obstacle in an edited chip.
geom::Point interiorPathCell(const Chip& c, const RoutedCluster& rc) {
  const auto usable = [&](geom::Point p) {
    for (const chip::Valve& v : c.valves)
      if (v.pos == p) return false;
    for (const chip::ControlPin& pin : c.pins)
      if (pin.pos == p) return false;
    return true;
  };
  for (const route::Path& p : rc.treePaths)
    for (const geom::Point cell : p)
      if (usable(cell)) return cell;
  for (const geom::Point cell : rc.escapePath)
    if (usable(cell)) return cell;
  ADD_FAILURE() << "cluster has no interior path cell";
  return {0, 0};
}

/// A cell owned by nobody: not on any committed channel, valve, pin, or
/// obstacle of the routed chip.
geom::Point freeCell(const Chip& c, const PacorResult& r) {
  const auto taken = [&](geom::Point p) {
    for (const chip::Valve& v : c.valves)
      if (v.pos == p) return true;
    for (const chip::ControlPin& pin : c.pins)
      if (pin.pos == p) return true;
    for (const geom::Point o : c.obstacles)
      if (o == p) return true;
    for (const RoutedCluster& rc : r.clusters) {
      for (const route::Path& path : rc.treePaths)
        for (const geom::Point cell : path)
          if (cell == p) return true;
      for (const geom::Point cell : rc.escapePath)
        if (cell == p) return true;
    }
    return false;
  };
  for (std::int32_t y = 1; y + 1 < c.routingGrid.height(); ++y)
    for (std::int32_t x = 1; x + 1 < c.routingGrid.width(); ++x)
      if (!taken({x, y})) return {x, y};
  ADD_FAILURE() << "no free interior cell";
  return {1, 1};
}

TEST(RerouteChip, EmptyDeltaIsIdentity) {
  const Chip base = twoIslandChip();
  ASSERT_EQ(base.validate(), std::nullopt);
  const PacorResult prev = core::routeChip(base);
  ASSERT_TRUE(prev.complete);

  EcoInfo info;
  const PacorResult out = core::rerouteChip(base, prev, ChipDelta{}, {}, {}, &info);
  EXPECT_EQ(info.mode, EcoInfo::Mode::kIdentity);
  EXPECT_EQ(core::solutionToString(out), core::solutionToString(prev));
  for (const RoutedCluster& rc : out.clusters) EXPECT_TRUE(rc.ecoCarried);
}

TEST(RerouteChip, UntouchedObstacleEditIsIdentity) {
  const Chip base = twoIslandChip();
  const PacorResult prev = core::routeChip(base);
  ASSERT_TRUE(prev.complete);

  ChipDelta d;
  d.addObstacle(freeCell(base, prev));
  EcoInfo info;
  const PacorResult out = core::rerouteChip(base, prev, d, {}, {}, &info);
  EXPECT_EQ(info.mode, EcoInfo::Mode::kIdentity);
  EXPECT_EQ(core::solutionToString(out), core::solutionToString(prev));
  // The carried solution must still be clean on the *edited* chip.
  EXPECT_TRUE(verify::verifySolution(chip::apply(base, d), out).clean());
}

TEST(RerouteChip, ObstacleOnOneClusterNeverPerturbsTheOther) {
  const Chip base = twoIslandChip();
  const PacorResult prev = core::routeChip(base);
  ASSERT_TRUE(prev.complete);
  const RoutedCluster* left = findCluster(prev, {0, 1});
  const RoutedCluster* right = findCluster(prev, {2, 3});
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);

  // Block a committed cell of the left cluster: only it may re-route.
  ChipDelta d;
  d.addObstacle(interiorPathCell(base, *left));
  const Chip edited = chip::apply(base, d);
  ASSERT_EQ(edited.validate(), std::nullopt);

  EcoInfo info;
  const PacorResult out = core::rerouteChip(base, prev, d, {}, {}, &info);
  EXPECT_EQ(info.mode, EcoInfo::Mode::kIncremental);
  EXPECT_EQ(info.dirtyClusters, 1);
  EXPECT_EQ(info.frozenClusters, 1);
  EXPECT_TRUE(out.complete);
  EXPECT_TRUE(verify::verifySolution(edited, out).clean());

  const RoutedCluster* rightAfter = findCluster(out, {2, 3});
  ASSERT_NE(rightAfter, nullptr);
  EXPECT_TRUE(rightAfter->ecoCarried);
  expectSameGeometry(*rightAfter, *right);

  const RoutedCluster* leftAfter = findCluster(out, {0, 1});
  ASSERT_NE(leftAfter, nullptr);
  EXPECT_FALSE(leftAfter->ecoCarried);
}

TEST(RerouteChip, ValveMoveDirtiesExactlyItsCluster) {
  const Chip base = twoIslandChip();
  const PacorResult prev = core::routeChip(base);
  ASSERT_TRUE(prev.complete);
  const RoutedCluster* right = findCluster(prev, {2, 3});
  ASSERT_NE(right, nullptr);

  ChipDelta d;
  d.moveValve(0, {5, 6});
  const Chip edited = chip::apply(base, d);
  ASSERT_EQ(edited.validate(), std::nullopt);

  EcoInfo info;
  const PacorResult out = core::rerouteChip(base, prev, d, {}, {}, &info);
  EXPECT_EQ(info.mode, EcoInfo::Mode::kIncremental);
  EXPECT_EQ(info.dirtyClusters, 1);
  EXPECT_EQ(info.frozenClusters, 1);
  EXPECT_TRUE(out.complete);
  EXPECT_TRUE(verify::verifySolution(edited, out).clean());

  const RoutedCluster* rightAfter = findCluster(out, {2, 3});
  ASSERT_NE(rightAfter, nullptr);
  EXPECT_TRUE(rightAfter->ecoCarried);
  expectSameGeometry(*rightAfter, *right);
}

TEST(RerouteChip, PinEditForcesFullMode) {
  const Chip base = twoIslandChip();
  const PacorResult prev = core::routeChip(base);
  ASSERT_TRUE(prev.complete);

  ChipDelta d;
  d.addPin({0, 15});
  EcoInfo info;
  const PacorResult out = core::rerouteChip(base, prev, d, {}, {}, &info);
  EXPECT_EQ(info.mode, EcoInfo::Mode::kFull);
  EXPECT_FALSE(info.fellBack);
  const Chip edited = chip::apply(base, d);
  // Full mode is a plain routeChip of the edited design: byte-identical.
  EXPECT_EQ(core::solutionToString(out),
            core::solutionToString(core::routeChip(edited)));
}

TEST(RerouteChip, InvalidEditedChipThrows) {
  const Chip base = twoIslandChip();
  const PacorResult prev = core::routeChip(base);
  ChipDelta d;
  d.addObstacle(base.valve(0).pos);  // obstacle on a valve cell
  EXPECT_THROW(core::rerouteChip(base, prev, d), std::invalid_argument);
}

/// Random-instance sweep: seeded obstacle edits on generated chips; the
/// incremental answer must be oracle-clean on the edited chip and every
/// carried cluster byte-equal to its previous incarnation.
class RerouteRandom : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RerouteRandom, ObstacleEditStaysClean) {
  const std::uint32_t seed = GetParam();
  const Chip base = chip::generateChip(chip::randomParams(seed));
  const PacorResult prev = core::routeChip(base);
  if (!prev.complete) GTEST_SKIP() << "base instance did not route";

  ChipDelta d;
  d.addObstacle(freeCell(base, prev));
  const Chip edited = chip::apply(base, d);
  ASSERT_EQ(edited.validate(), std::nullopt);

  EcoInfo info;
  const PacorResult out = core::rerouteChip(base, prev, d, {}, {}, &info);
  EXPECT_TRUE(out.complete);
  EXPECT_TRUE(verify::verifySolution(edited, out).clean())
      << verify::verifySolution(edited, out).str();
  for (const RoutedCluster& rc : out.clusters) {
    if (!rc.ecoCarried) continue;
    const RoutedCluster* was = findCluster(prev, rc.valves);
    ASSERT_NE(was, nullptr);
    expectSameGeometry(rc, *was);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RerouteRandom,
                         ::testing::Values(2u, 11u, 33u, 58u, 91u));

}  // namespace
}  // namespace pacor
