#include <gtest/gtest.h>

#include <sstream>

#include "chip/flow_layer.hpp"
#include "chip/schedule.hpp"
#include "chip/synth_spec.hpp"

namespace pacor::chip {
namespace {

using geom::Point;

// --- AssaySchedule / control synthesis --------------------------------------

TEST(Schedule, ValidatesWindows) {
  AssaySchedule s;
  s.horizon = 10;
  s.operations = {{"ok", 0, 5, {0}, {1}}};
  EXPECT_EQ(s.validate(2), std::nullopt);

  s.operations = {{"bad", 5, 5, {0}, {}}};
  EXPECT_NE(s.validate(2), std::nullopt);  // empty window
  s.operations = {{"bad", 8, 12, {0}, {}}};
  EXPECT_NE(s.validate(2), std::nullopt);  // beyond horizon
  s.operations = {{"bad", 0, 2, {7}, {}}};
  EXPECT_NE(s.validate(2), std::nullopt);  // unknown valve
  s.operations = {{"bad", 0, 2, {0}, {0}}};
  EXPECT_NE(s.validate(2), std::nullopt);  // open AND closed
}

TEST(Synthesis, FillsDontCaresOutsideOperations) {
  AssaySchedule s;
  s.horizon = 6;
  s.operations = {{"op", 2, 4, {0}, {1}}};
  const auto seqs = synthesizeSequences(s, 3);
  ASSERT_TRUE(seqs.has_value());
  EXPECT_EQ((*seqs)[0].str(), "XX00XX");
  EXPECT_EQ((*seqs)[1].str(), "XX11XX");
  EXPECT_EQ((*seqs)[2].str(), "XXXXXX");  // never referenced
}

TEST(Synthesis, OverlappingConsistentDemandsMerge) {
  AssaySchedule s;
  s.horizon = 4;
  s.operations = {{"a", 0, 3, {0}, {}}, {"b", 1, 4, {0}, {}}};
  const auto seqs = synthesizeSequences(s, 1);
  ASSERT_TRUE(seqs.has_value());
  EXPECT_EQ((*seqs)[0].str(), "0000");
}

TEST(Synthesis, DetectsConflicts) {
  AssaySchedule s;
  s.horizon = 4;
  s.operations = {{"a", 0, 3, {0}, {}}, {"b", 2, 4, {}, {0}}};
  std::string why;
  const auto seqs = synthesizeSequences(s, 1, &why);
  EXPECT_FALSE(seqs.has_value());
  EXPECT_NE(why.find("valve 0"), std::string::npos);
  EXPECT_NE(why.find("step 2"), std::string::npos);
}

TEST(Synthesis, GroupMembersOfOneAssayShareAPinCompatibility) {
  // Valves demanded by the SAME operations in the same roles end up with
  // identical concrete steps -> compatible.
  AssaySchedule s;
  s.horizon = 5;
  s.operations = {{"a", 0, 2, {0, 1}, {}}, {"b", 3, 5, {}, {0, 1}}};
  const auto seqs = synthesizeSequences(s, 2);
  ASSERT_TRUE(seqs.has_value());
  EXPECT_TRUE((*seqs)[0].compatibleWith((*seqs)[1]));
}

TEST(Synthesis, GeneratorProducesValidConflictFreeSchedules) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const AssaySchedule s = synthesizeAssay(12, 16, 4, seed);
    EXPECT_EQ(s.validate(12), std::nullopt) << "seed " << seed;
    const auto seqs = synthesizeSequences(s, 12);
    ASSERT_TRUE(seqs.has_value()) << "seed " << seed;
    EXPECT_EQ(seqs->size(), 12u);
    for (const auto& q : *seqs) EXPECT_EQ(q.length(), 16u);
  }
}

TEST(Synthesis, GeneratorDeterministic) {
  const AssaySchedule a = synthesizeAssay(8, 10, 3, 42);
  const AssaySchedule b = synthesizeAssay(8, 10, 3, 42);
  ASSERT_EQ(a.operations.size(), b.operations.size());
  for (std::size_t i = 0; i < a.operations.size(); ++i) {
    EXPECT_EQ(a.operations[i].start, b.operations[i].start);
    EXPECT_EQ(a.operations[i].openValves, b.operations[i].openValves);
  }
}

// --- FlowLayer ----------------------------------------------------------------

TEST(FlowLayer, ValidatesGeometry) {
  const grid::Grid g(20, 20);
  FlowLayer flow;
  flow.channels.push_back({{{2, 2}, {2, 10}, {8, 10}}});
  flow.components.push_back({"chamber", {{12, 12}, {15, 15}}});
  EXPECT_EQ(flow.validate(g), std::nullopt);

  FlowLayer diag;
  diag.channels.push_back({{{0, 0}, {3, 4}}});  // non-rectilinear
  EXPECT_NE(diag.validate(g), std::nullopt);

  FlowLayer oob;
  oob.channels.push_back({{{0, 0}, {0, 25}}});
  EXPECT_NE(oob.validate(g), std::nullopt);

  FlowLayer shortChannel;
  shortChannel.channels.push_back({{{1, 1}}});
  EXPECT_NE(shortChannel.validate(g), std::nullopt);
}

TEST(FlowLayer, TraceCoversPolyline) {
  FlowChannel c{{{2, 2}, {2, 5}, {6, 5}}};
  const auto cells = traceChannel(c);
  // 4 vertical + 5 horizontal - 1 shared joint = 8 cells.
  EXPECT_EQ(cells.size(), 8u);
  EXPECT_TRUE(std::find(cells.begin(), cells.end(), Point{2, 3}) != cells.end());
  EXPECT_TRUE(std::find(cells.begin(), cells.end(), Point{4, 5}) != cells.end());
}

TEST(FlowLayer, ObstaclesExcludeValveSites) {
  const grid::Grid g(20, 20);
  FlowLayer flow;
  flow.channels.push_back({{{2, 10}, {17, 10}}});
  const std::vector<Point> valves{{9, 10}};
  const auto obstacles = controlObstacles(flow, g, valves);
  EXPECT_EQ(obstacles.size(), 15u);  // 16 cells minus the valve site
  EXPECT_TRUE(std::find(obstacles.begin(), obstacles.end(), Point{9, 10}) ==
              obstacles.end());
}

TEST(FlowLayer, ComponentFootprintsBlock) {
  const grid::Grid g(20, 20);
  FlowLayer flow;
  flow.components.push_back({"chamber", {{5, 5}, {7, 6}}});
  const auto obstacles = controlObstacles(flow, g, {});
  EXPECT_EQ(obstacles.size(), 6u);  // 3 x 2
}

TEST(FlowLayer, OverlapsDeduplicated) {
  const grid::Grid g(20, 20);
  FlowLayer flow;
  flow.channels.push_back({{{2, 5}, {8, 5}}});
  flow.channels.push_back({{{5, 2}, {5, 8}}});  // crosses the first at (5,5)
  const auto obstacles = controlObstacles(flow, g, {});
  EXPECT_EQ(obstacles.size(), 7u + 7u - 1u);
  // Sorted and unique.
  EXPECT_TRUE(std::is_sorted(obstacles.begin(), obstacles.end()));
  EXPECT_TRUE(std::adjacent_find(obstacles.begin(), obstacles.end()) ==
              obstacles.end());
}


// --- SynthSpec ---------------------------------------------------------------

SynthSpec mixerSpec() {
  SynthSpec spec;
  spec.name = "mixer-test";
  spec.die = grid::Grid(26, 20);
  spec.valveSites = {{8, 10}, {18, 10}, {5, 14}, {21, 14}};
  spec.flow.channels.push_back({{{5, 17}, {5, 10}, {10, 10}}});
  spec.flow.channels.push_back({{{21, 17}, {21, 10}, {16, 10}}});
  spec.flow.components.push_back({"mixer", {{10, 9}, {16, 11}}});
  for (int i = 0; i < 8; ++i) spec.pinSites.push_back({2 + 3 * i, 0});
  spec.clusters = {{{0, 1}, true}};
  spec.assay.horizon = 8;
  spec.assay.operations = {{"load", 0, 3, {2, 3}, {0, 1}},
                           {"mix", 5, 8, {}, {0, 1}}};
  return spec;
}

TEST(SynthSpec, ValidatesAndBuilds) {
  const SynthSpec spec = mixerSpec();
  EXPECT_EQ(spec.validate(), std::nullopt);
  const Chip chip = buildChip(spec);
  EXPECT_EQ(chip.validate(), std::nullopt);
  EXPECT_EQ(chip.valves.size(), 4u);
  EXPECT_EQ(chip.givenClusters.size(), 1u);
  EXPECT_GT(chip.obstacles.size(), 0u);
  // Valves 0 and 1 share the whole schedule: compatible.
  EXPECT_TRUE(chip.valve(0).sequence.compatibleWith(chip.valve(1).sequence));
}

TEST(SynthSpec, RoundTrip) {
  const SynthSpec spec = mixerSpec();
  std::stringstream buf;
  writeSynthSpec(buf, spec);
  const SynthSpec back = readSynthSpec(buf);
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.die.width(), 26);
  EXPECT_EQ(back.valveSites, spec.valveSites);
  EXPECT_EQ(back.flow.channels.size(), spec.flow.channels.size());
  EXPECT_EQ(back.flow.components.size(), spec.flow.components.size());
  EXPECT_EQ(back.pinSites, spec.pinSites);
  ASSERT_EQ(back.clusters.size(), 1u);
  EXPECT_TRUE(back.clusters[0].lengthMatched);
  EXPECT_EQ(back.assay.horizon, 8);
  ASSERT_EQ(back.assay.operations.size(), 2u);
  EXPECT_EQ(back.assay.operations[0].name, "load");
  EXPECT_EQ(back.assay.operations[0].openValves, (std::vector<std::int32_t>{2, 3}));
  // Build from the round-tripped spec gives the identical chip.
  const Chip a = buildChip(spec);
  const Chip b = buildChip(back);
  EXPECT_EQ(a.obstacles, b.obstacles);
  for (std::size_t v = 0; v < a.valves.size(); ++v)
    EXPECT_EQ(a.valves[v].sequence, b.valves[v].sequence);
}

TEST(SynthSpec, CatchesBrokenSpecs) {
  SynthSpec bad = mixerSpec();
  bad.valveSites[0] = {99, 99};
  EXPECT_NE(bad.validate(), std::nullopt);
  EXPECT_THROW(buildChip(bad), std::runtime_error);

  SynthSpec conflict = mixerSpec();
  conflict.assay.operations.push_back({"oops", 0, 2, {0}, {}});  // 0 also closed
  EXPECT_EQ(conflict.validate(), std::nullopt);  // per-op validation passes
  EXPECT_THROW(buildChip(conflict), std::runtime_error);  // cross-op conflict
}

TEST(SynthSpec, RejectsMalformedText) {
  std::stringstream bad("pacor-synth 2\n");
  EXPECT_THROW(readSynthSpec(bad), std::runtime_error);
  std::stringstream truncated("pacor-synth 1\nname x\ngrid 10 10\n");
  EXPECT_THROW(readSynthSpec(truncated), std::runtime_error);
}

}  // namespace
}  // namespace pacor::chip
