#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <unordered_set>

#include "grid/obstacle_map.hpp"
#include "route/astar.hpp"
#include "route/bounded_astar.hpp"
#include "route/bump_detour.hpp"
#include "route/negotiation.hpp"
#include "route/path.hpp"
#include "route/workspace.hpp"
#include "util/thread_pool.hpp"

namespace pacor::route {
namespace {

using geom::Point;
using grid::Grid;
using grid::ObstacleMap;

TEST(Path, LengthAndValidity) {
  const Path p{{0, 0}, {1, 0}, {1, 1}};
  EXPECT_EQ(pathLength(p), 2);
  EXPECT_TRUE(isConnected(p));
  EXPECT_TRUE(isSimple(p));
  EXPECT_TRUE(isValidChannel(p));
  EXPECT_EQ(pathLength(Path{}), 0);
  EXPECT_EQ(pathLength(Path{{3, 3}}), 0);
}

TEST(Path, DetectsDisconnection) {
  const Path p{{0, 0}, {2, 0}};
  EXPECT_FALSE(isConnected(p));
  EXPECT_FALSE(isValidChannel(p));
}

TEST(Path, DetectsSelfIntersection) {
  const Path p{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}};
  EXPECT_TRUE(isConnected(p));
  EXPECT_FALSE(isSimple(p));
}

TEST(AStar, StraightLine) {
  ObstacleMap obs((Grid(10, 10)));
  const auto r = aStarPointToPoint(obs, {1, 1}, {6, 1});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(pathLength(r.path), 5);
  EXPECT_EQ(r.path.front(), (Point{1, 1}));
  EXPECT_EQ(r.path.back(), (Point{6, 1}));
  EXPECT_TRUE(isValidChannel(r.path));
}

TEST(AStar, RoutesAroundObstacleWall) {
  ObstacleMap obs((Grid(10, 10)));
  for (std::int32_t y = 0; y < 9; ++y) obs.addObstacle({5, y});  // wall with gap at top
  const auto r = aStarPointToPoint(obs, {1, 1}, {8, 1});
  ASSERT_TRUE(r.success);
  EXPECT_GT(pathLength(r.path), 7);  // must detour over the wall
  EXPECT_TRUE(isValidChannel(r.path));
  for (const Point p : r.path) EXPECT_FALSE(obs.isObstacle(p));
}

TEST(AStar, FailsWhenSealed) {
  ObstacleMap obs((Grid(10, 10)));
  for (std::int32_t y = 0; y < 10; ++y) obs.addObstacle({5, y});
  const auto r = aStarPointToPoint(obs, {1, 1}, {8, 1});
  EXPECT_FALSE(r.success);
}

TEST(AStar, OwnNetCellsArePassable) {
  ObstacleMap obs((Grid(10, 10)));
  const Path owned{{5, 0}, {5, 1}, {5, 2}, {5, 3}, {5, 4}, {5, 5},
                   {5, 6}, {5, 7}, {5, 8}, {5, 9}};
  obs.occupy(owned, 3);
  EXPECT_FALSE(aStarPointToPoint(obs, {1, 1}, {8, 1}, 7).success);
  EXPECT_TRUE(aStarPointToPoint(obs, {1, 1}, {8, 1}, 3).success);
}

TEST(AStar, MultiSourceMultiTargetPicksNearestPair) {
  ObstacleMap obs((Grid(20, 20)));
  AStarRequest req;
  req.sources = {{0, 0}, {10, 10}};
  req.targets = {{12, 10}, {19, 19}};
  const auto r = aStarRoute(obs, req);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(pathLength(r.path), 2);  // (10,10) -> (12,10)
}

TEST(AStar, HistoryCostSteersAway) {
  ObstacleMap obs((Grid(9, 9)));
  std::vector<double> history(81, 0.0);
  // Poison the straight corridor y=4 so the router prefers a detour row.
  const Grid& g = obs.grid();
  for (std::int32_t x = 0; x < 9; ++x) history[static_cast<std::size_t>(g.index({x, 4}))] = 10.0;
  AStarRequest req;
  req.sources = {{0, 4}};
  req.targets = {{8, 4}};
  req.historyCost = &history;
  const auto r = aStarRoute(obs, req);
  ASSERT_TRUE(r.success);
  // Endpoints are on the poisoned row but the middle must leave it.
  int onRow = 0;
  for (const Point p : r.path) onRow += (p.y == 4);
  EXPECT_LE(onRow, 4);
}

TEST(AStar, EmptyRequestsFail) {
  ObstacleMap obs((Grid(4, 4)));
  AStarRequest req;
  EXPECT_FALSE(aStarRoute(obs, req).success);
  req.sources = {{0, 0}};
  EXPECT_FALSE(aStarRoute(obs, req).success);
}

TEST(AStar, SourceEqualsTarget) {
  ObstacleMap obs((Grid(4, 4)));
  const auto r = aStarPointToPoint(obs, {2, 2}, {2, 2});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(pathLength(r.path), 0);
}

TEST(Negotiation, RoutesConflictFreeEdges) {
  ObstacleMap obs((Grid(12, 12)));
  std::vector<NegotiationEdge> edges(2);
  edges[0].a = {{1, 1}};
  edges[0].b = {{10, 1}};
  edges[0].group = 0;
  edges[1].a = {{1, 5}};
  edges[1].b = {{10, 5}};
  edges[1].group = 1;
  const auto r = negotiatedRoute(obs, edges);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.iterations, 1);
  ASSERT_EQ(r.paths.size(), 2u);
  EXPECT_TRUE(isValidChannel(r.paths[0]));
  EXPECT_TRUE(isValidChannel(r.paths[1]));
}

TEST(Negotiation, ResolvesCrossingDemands) {
  // Two edges whose straight routes cross; negotiation must find the
  // planar pair (possible on a grid by routing around).
  ObstacleMap obs((Grid(9, 9)));
  std::vector<NegotiationEdge> edges(2);
  edges[0].a = {{1, 4}};
  edges[0].b = {{7, 4}};
  edges[0].group = 0;
  edges[1].a = {{4, 1}};
  edges[1].b = {{4, 7}};
  edges[1].group = 1;
  const auto r = negotiatedRoute(obs, edges);
  EXPECT_TRUE(r.success);
  // Cell-disjointness between the two paths.
  std::unordered_set<Point> cells(r.paths[0].begin(), r.paths[0].end());
  for (const Point p : r.paths[1]) EXPECT_FALSE(cells.contains(p));
}

TEST(Negotiation, SameGroupSharesTerminalCell) {
  // Two edges of one tree meet at the merge node (4,4).
  ObstacleMap obs((Grid(9, 9)));
  std::vector<NegotiationEdge> edges(2);
  edges[0].a = {{0, 4}};
  edges[0].b = {{4, 4}};
  edges[0].group = 0;
  edges[1].a = {{8, 4}};
  edges[1].b = {{4, 4}};
  edges[1].group = 0;
  const auto r = negotiatedRoute(obs, edges);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.paths[0].back(), (Point{4, 4}));
  EXPECT_EQ(r.paths[1].back(), (Point{4, 4}));
}

TEST(Negotiation, ForeignGroupTerminalsAreFenced) {
  // Edge 1's terminals arrive pre-owned by their cluster's net (as valve
  // cells do in the pipeline). Negotiation opens them up for edge 1, but
  // edge 0 — whose cheapest route runs straight through (4,4) — must not
  // use another group's terminals as a shortcut: committing such a path
  // would claim a cell the caller's map still assigns to the other net.
  ObstacleMap obs((Grid(9, 9)));
  const std::vector<Point> claimed = {{4, 4}, {4, 6}};
  obs.occupy(claimed, 7);
  std::vector<NegotiationEdge> edges(2);
  edges[0].a = {{0, 4}};
  edges[0].b = {{8, 4}};
  edges[0].group = 0;
  edges[1].a = {{4, 4}};
  edges[1].b = {{4, 6}};
  edges[1].group = 1;
  const auto r = negotiatedRoute(obs, edges);
  ASSERT_TRUE(r.success);
  for (const Point p : r.paths[0]) {
    EXPECT_NE(p, (Point{4, 4}));
    EXPECT_NE(p, (Point{4, 6}));
  }
  EXPECT_EQ(r.paths[1].front(), (Point{4, 4}));
  EXPECT_EQ(r.paths[1].back(), (Point{4, 6}));
}

TEST(Negotiation, ReportsFailureWhenImpossible) {
  ObstacleMap obs((Grid(3, 3)));
  for (std::int32_t y = 0; y < 3; ++y) obs.addObstacle({1, y});
  std::vector<NegotiationEdge> edges(1);
  edges[0].a = {{0, 0}};
  edges[0].b = {{2, 0}};
  NegotiationConfig cfg;
  cfg.maxIterations = 3;
  const auto r = negotiatedRoute(obs, edges, cfg);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.iterations, 3);
}

TEST(BoundedAStar, MeetsExactLowerBound) {
  ObstacleMap obs((Grid(12, 12)));
  BoundedAStarRequest req;
  req.source = {1, 1};
  req.target = {5, 1};  // manhattan 4
  req.minLength = 8;
  req.maxLength = 10;
  const auto r = boundedLengthRoute(obs, req);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.length, 8);
  EXPECT_LE(r.length, 10);
  EXPECT_EQ(pathLength(r.path), r.length);
  EXPECT_TRUE(isValidChannel(r.path));
  EXPECT_EQ(r.path.front(), req.source);
  EXPECT_EQ(r.path.back(), req.target);
}

TEST(BoundedAStar, ShortestWhenBoundBelowManhattan) {
  ObstacleMap obs((Grid(12, 12)));
  BoundedAStarRequest req;
  req.source = {1, 1};
  req.target = {5, 5};
  req.minLength = 0;
  req.maxLength = 30;
  const auto r = boundedLengthRoute(obs, req);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.length, 8);
}

TEST(BoundedAStar, ParityForcesNextReachableLength) {
  ObstacleMap obs((Grid(12, 12)));
  BoundedAStarRequest req;
  req.source = {1, 1};
  req.target = {4, 1};  // manhattan 3, parity odd
  req.minLength = 4;    // unreachable parity; next valid is 5
  req.maxLength = 7;
  const auto r = boundedLengthRoute(obs, req);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.length, 5);
}

TEST(BoundedAStar, FailsInTightCorridor) {
  // 1-wide corridor: no simple path longer than the straight one exists.
  ObstacleMap obs((Grid(12, 3)));
  for (std::int32_t x = 0; x < 12; ++x) {
    obs.addObstacle({x, 0});
    obs.addObstacle({x, 2});
  }
  BoundedAStarRequest req;
  req.source = {1, 1};
  req.target = {8, 1};
  req.minLength = 11;
  req.maxLength = 13;
  const auto r = boundedLengthRoute(obs, req);
  EXPECT_FALSE(r.success);
}

TEST(BoundedAStar, RespectsWindowUpperBound) {
  ObstacleMap obs((Grid(12, 12)));
  BoundedAStarRequest req;
  req.source = {1, 1};
  req.target = {5, 1};
  req.minLength = 9;  // parity-unreachable (manhattan 4); only 10 fits
  req.maxLength = 9;  // ...but the cap forbids it
  const auto r = boundedLengthRoute(obs, req);
  EXPECT_FALSE(r.success);
}

TEST(BoundedAStar, AvoidsForeignNets) {
  ObstacleMap obs((Grid(8, 8)));
  const Path foreign{{3, 0}, {3, 1}, {3, 2}, {3, 3}};
  obs.occupy(foreign, 5);
  BoundedAStarRequest req;
  req.source = {1, 1};
  req.target = {6, 1};
  req.net = 9;
  req.minLength = 5;
  req.maxLength = 11;  // the foreign wall forces an 11-cell route
  const auto r = boundedLengthRoute(obs, req);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.length, 11);
  for (const Point p : r.path) EXPECT_NE(obs.owner(p), 5);
}

TEST(BumpDetour, AddsExactEvenSlack) {
  ObstacleMap obs((Grid(12, 12)));
  BumpDetourRequest req;
  req.path = {{1, 5}, {2, 5}, {3, 5}, {4, 5}, {5, 5}};
  req.minLength = 9;
  req.maxLength = 10;
  const auto r = bumpDetour(obs, req);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.length, 10);
  EXPECT_TRUE(isValidChannel(r.path));
  EXPECT_EQ(r.path.front(), (Point{1, 5}));
  EXPECT_EQ(r.path.back(), (Point{5, 5}));
}

TEST(BumpDetour, AlreadyInWindowIsNoop) {
  ObstacleMap obs((Grid(12, 12)));
  BumpDetourRequest req;
  req.path = {{1, 5}, {2, 5}, {3, 5}};
  req.minLength = 1;
  req.maxLength = 4;
  const auto r = bumpDetour(obs, req);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.length, 2);
  EXPECT_EQ(r.path, req.path);
}

TEST(BumpDetour, ParityMismatchFails) {
  ObstacleMap obs((Grid(12, 12)));
  BumpDetourRequest req;
  req.path = {{1, 5}, {2, 5}, {3, 5}};  // length 2 (even)
  req.minLength = 5;
  req.maxLength = 5;  // odd-only window
  EXPECT_FALSE(bumpDetour(obs, req).success);
}

TEST(BumpDetour, FailsWithoutFreeSpace) {
  ObstacleMap obs((Grid(12, 3)));
  for (std::int32_t x = 0; x < 12; ++x) {
    obs.addObstacle({x, 0});
    obs.addObstacle({x, 2});
  }
  BumpDetourRequest req;
  req.path = {{1, 1}, {2, 1}, {3, 1}};
  req.minLength = 4;
  req.maxLength = 6;
  EXPECT_FALSE(bumpDetour(obs, req).success);
}

TEST(BumpDetour, CannotShorten) {
  ObstacleMap obs((Grid(12, 12)));
  BumpDetourRequest req;
  req.path = {{1, 5}, {2, 5}, {3, 5}, {4, 5}, {5, 5}};
  req.minLength = 1;
  req.maxLength = 2;  // below current length: impossible
  EXPECT_FALSE(bumpDetour(obs, req).success);
}

TEST(BumpDetour, LargeExtensionUsesMultipleBumps) {
  ObstacleMap obs((Grid(24, 24)));
  BumpDetourRequest req;
  req.path = {{2, 12}, {3, 12}, {4, 12}, {5, 12}, {6, 12}, {7, 12}};
  req.minLength = 29;
  req.maxLength = 30;
  const auto r = bumpDetour(obs, req);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.length, 29);
  EXPECT_TRUE(isValidChannel(r.path));
}


TEST(AStarBends, PrefersSingleCornerOverStaircase) {
  ObstacleMap obs((Grid(12, 12)));
  AStarRequest req;
  req.sources = {{1, 1}};
  req.targets = {{8, 8}};
  req.bendPenalty = 0.25;  // small: same length, fewest corners
  const auto r = aStarRoute(obs, req);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(pathLength(r.path), 14);  // still a shortest path
  int bends = 0;
  for (std::size_t i = 2; i < r.path.size(); ++i) {
    const Point d1 = r.path[i - 1] - r.path[i - 2];
    const Point d2 = r.path[i] - r.path[i - 1];
    bends += !(d1 == d2);
  }
  EXPECT_EQ(bends, 1);  // one L corner
}

TEST(AStarBends, LargePenaltyTradesLengthForStraightness) {
  // A pocket forcing a zig-zag on the short route; with a huge bend
  // penalty the router prefers the longer but straighter way around.
  ObstacleMap obs((Grid(16, 16)));
  for (std::int32_t y = 2; y <= 13; ++y)
    if (y != 2) obs.addObstacle({8, y});  // wall with gap at the top
  AStarRequest plain;
  plain.sources = {{4, 8}};
  plain.targets = {{12, 8}};
  const auto shortest = aStarRoute(obs, plain);
  AStarRequest straight = plain;
  straight.bendPenalty = 0.25;
  const auto fewBends = aStarRoute(obs, straight);
  ASSERT_TRUE(shortest.success);
  ASSERT_TRUE(fewBends.success);
  EXPECT_EQ(pathLength(shortest.path), pathLength(fewBends.path));
  const auto bendCount = [](const Path& p) {
    int bends = 0;
    for (std::size_t i = 2; i < p.size(); ++i)
      bends += !((p[i - 1] - p[i - 2]) == (p[i] - p[i - 1]));
    return bends;
  };
  EXPECT_LE(bendCount(fewBends.path), bendCount(shortest.path));
}

TEST(RouterWorkspace, ReusedWorkspaceMatchesFreshSearches) {
  ObstacleMap obs((Grid(32, 32)));
  for (int y = 0; y < 30; ++y) obs.addObstacle({16, y});
  RouterWorkspace reused;
  for (int k = 0; k < 3; ++k) {
    AStarRequest req;
    req.sources = {{2, 5 + k}};
    req.targets = {{29, 20 - k}};
    req.net = 1;
    const auto a = aStarRoute(obs, req, &reused);
    RouterWorkspace fresh;
    const auto b = aStarRoute(obs, req, &fresh);
    ASSERT_TRUE(a.success);
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(a.cost, b.cost);
  }
}

TEST(RouterWorkspace, TouchedCoversThePathWithoutDuplicates) {
  ObstacleMap obs((Grid(16, 16)));
  RouterWorkspace ws;
  AStarRequest req;
  req.sources = {{1, 1}};
  req.targets = {{12, 9}};
  req.net = 1;
  const auto r = aStarRoute(obs, req, &ws);
  ASSERT_TRUE(r.success);
  const Grid& g = obs.grid();
  std::unordered_set<std::int32_t> touched(ws.touched.begin(), ws.touched.end());
  EXPECT_EQ(touched.size(), ws.touched.size());  // labeled once each
  for (const Point p : r.path) EXPECT_TRUE(touched.contains(g.index(p)));
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  std::vector<std::atomic<int>> hits(997);
  pool.parallelFor(hits.size(), [&](std::size_t i, unsigned) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  util::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallelFor(20, [&](std::size_t i, unsigned) {
      sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 190);
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1u);
  std::vector<int> order;
  pool.parallelFor(5, [&](std::size_t i, unsigned w) {
    EXPECT_EQ(w, 0u);
    order.push_back(static_cast<int>(i));  // inline: no data race
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, RethrowsFirstBodyException) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallelFor(100,
                                [&](std::size_t i, unsigned) {
                                  if (i == 42) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool must remain usable after an exceptional batch.
  std::atomic<int> count{0};
  pool.parallelFor(10, [&](std::size_t, unsigned) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, PropagatesExceptionWhenEveryTaskThrows) {
  // Worst-case error path: all workers race to record the failure; exactly
  // one exception must surface, every task must still be drained, and the
  // batch must terminate (no lost wakeups on the done condition).
  util::ThreadPool pool(4);
  std::atomic<int> attempts{0};
  try {
    pool.parallelFor(64, [&](std::size_t i, unsigned) {
      ++attempts;
      throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected parallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("task "), std::string::npos);
  }
  EXPECT_EQ(attempts.load(), 64);
}

TEST(ThreadPool, PropagatesExceptionFromInlineSingleThreadMode) {
  // threads <= 1 short-circuits to a plain loop; the error contract must
  // be identical to the threaded path.
  util::ThreadPool pool(1);
  EXPECT_THROW(pool.parallelFor(8,
                                [](std::size_t i, unsigned) {
                                  if (i == 3) throw std::logic_error("inline");
                                }),
               std::logic_error);
  int ran = 0;
  pool.parallelFor(4, [&](std::size_t, unsigned) { ++ran; });
  EXPECT_EQ(ran, 4);
}

TEST(ThreadPool, NonStdExceptionsSurviveTheWorkerBoundary) {
  util::ThreadPool pool(3);
  EXPECT_THROW(pool.parallelFor(16,
                                [](std::size_t i, unsigned) {
                                  if (i % 5 == 0) throw 42;  // not std::exception
                                }),
               int);
}

TEST(ThreadPool, ExceptionalBatchesAlternatingWithCleanOnes) {
  // Regression guard for stale error state: a failure in batch N must not
  // leak into batch N+1, across many alternations on one pool.
  util::ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    EXPECT_THROW(pool.parallelFor(12,
                                  [&](std::size_t i, unsigned) {
                                    if (i == static_cast<std::size_t>(round % 12))
                                      throw std::runtime_error("round");
                                  }),
                 std::runtime_error);
    std::atomic<int> sum{0};
    pool.parallelFor(12, [&](std::size_t i, unsigned) {
      sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 66) << "round " << round;
  }
}

TEST(AStarBends, StillRespectsObstaclesAndNets) {
  ObstacleMap obs((Grid(10, 10)));
  const Path foreign{{5, 0}, {5, 1}, {5, 2}, {5, 3}, {5, 4}};
  obs.occupy(foreign, 3);
  AStarRequest req;
  req.sources = {{1, 2}};
  req.targets = {{8, 2}};
  req.net = 7;
  req.bendPenalty = 0.5;
  const auto r = aStarRoute(obs, req);
  ASSERT_TRUE(r.success);
  for (const Point p : r.path) EXPECT_NE(obs.owner(p), 3);
  EXPECT_TRUE(isValidChannel(r.path));
}

}  // namespace
}  // namespace pacor::route
