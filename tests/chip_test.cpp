#include <gtest/gtest.h>

#include <sstream>

#include "chip/activation.hpp"
#include "chip/chip.hpp"
#include "chip/design_rules.hpp"
#include "chip/generator.hpp"
#include "chip/io.hpp"

namespace pacor::chip {
namespace {

TEST(Activation, StatusCompatibility) {
  using A = Activation;
  EXPECT_TRUE(compatible(A::kOpen, A::kOpen));
  EXPECT_TRUE(compatible(A::kClosed, A::kClosed));
  EXPECT_FALSE(compatible(A::kOpen, A::kClosed));
  EXPECT_TRUE(compatible(A::kOpen, A::kDontCare));
  EXPECT_TRUE(compatible(A::kDontCare, A::kClosed));
  EXPECT_TRUE(compatible(A::kDontCare, A::kDontCare));
}

TEST(ActivationSequence, ValidatesAlphabet) {
  EXPECT_NO_THROW(ActivationSequence("01X01"));
  EXPECT_THROW(ActivationSequence("012"), std::invalid_argument);
  EXPECT_THROW(ActivationSequence("0x1"), std::invalid_argument);  // lowercase x
}

TEST(ActivationSequence, SequenceCompatibility) {
  const ActivationSequence a("01X");
  const ActivationSequence b("0XX");
  const ActivationSequence c("11X");
  EXPECT_TRUE(a.compatibleWith(b));
  EXPECT_TRUE(b.compatibleWith(a));
  EXPECT_FALSE(a.compatibleWith(c));
  EXPECT_FALSE(a.compatibleWith(ActivationSequence("01X0")));  // length mismatch
  EXPECT_TRUE(a.compatibleWith(a));
}

TEST(ActivationSequence, MergeResolvesDontCares) {
  const ActivationSequence a("0X1X");
  const ActivationSequence b("X01X");
  const auto m = a.mergedWith(b);
  EXPECT_EQ(m.str(), "001X");
  EXPECT_THROW(a.mergedWith(ActivationSequence("1111")), std::invalid_argument);
}

TEST(DesignRules, GridPitchAndConversion) {
  DesignRules rules{10, 10};
  EXPECT_EQ(rules.gridPitchUm(), 20);
  EXPECT_EQ(rules.umToCells(205), 10);
  EXPECT_EQ(rules.cellsToUm(7), 140);
  EXPECT_TRUE(rules.valid());
  EXPECT_FALSE((DesignRules{0, 10}).valid());
}

Chip tinyChip() {
  Chip chip;
  chip.name = "tiny";
  chip.routingGrid = grid::Grid(8, 8);
  chip.valves = {{0, {3, 3}, ActivationSequence("01")},
                 {1, {5, 3}, ActivationSequence("0X")},
                 {2, {3, 5}, ActivationSequence("10")}};
  chip.pins = {{0, {0, 0}}, {1, {7, 4}}};
  chip.obstacles = {{6, 6}};
  chip.givenClusters = {{{0, 1}, true}};
  return chip;
}

TEST(Chip, ValidInstancePasses) {
  const Chip chip = tinyChip();
  EXPECT_EQ(chip.validate(), std::nullopt);
}

TEST(Chip, CompatibilityGraph) {
  const Chip chip = tinyChip();
  const auto g = chip.compatibilityGraph();
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_FALSE(g.hasEdge(1, 2));
}

TEST(Chip, ValidationCatchesOutOfBoundsValve) {
  Chip chip = tinyChip();
  chip.valves[0].pos = {99, 0};
  EXPECT_NE(chip.validate(), std::nullopt);
}

TEST(Chip, ValidationCatchesOverlappingValves) {
  Chip chip = tinyChip();
  chip.valves[1].pos = chip.valves[0].pos;
  EXPECT_NE(chip.validate(), std::nullopt);
}

TEST(Chip, ValidationCatchesInteriorPin) {
  Chip chip = tinyChip();
  chip.pins[0].pos = {4, 4};
  EXPECT_NE(chip.validate(), std::nullopt);
}

TEST(Chip, ValidationCatchesIncompatibleCluster) {
  Chip chip = tinyChip();
  chip.givenClusters = {{{0, 2}, true}};  // 01 vs 10: incompatible
  EXPECT_NE(chip.validate(), std::nullopt);
}

TEST(Chip, ValidationCatchesDuplicateClusterMembership) {
  Chip chip = tinyChip();
  chip.givenClusters = {{{0, 1}, true}, {{1, 2}, false}};
  EXPECT_NE(chip.validate(), std::nullopt);
}

TEST(Chip, ValidationCatchesTinyCluster) {
  Chip chip = tinyChip();
  chip.givenClusters = {{{0}, true}};
  EXPECT_NE(chip.validate(), std::nullopt);
}

TEST(Chip, ValidationCatchesSequenceLengthMismatch) {
  Chip chip = tinyChip();
  chip.valves[2].sequence = ActivationSequence("100");
  EXPECT_NE(chip.validate(), std::nullopt);
}

TEST(Chip, ObstacleMapSeeded) {
  const Chip chip = tinyChip();
  const auto map = chip.makeObstacleMap();
  EXPECT_TRUE(map.isObstacle({6, 6}));
  EXPECT_EQ(map.obstacleCount(), 1);
}

TEST(ChipIo, RoundTrip) {
  const Chip chip = tinyChip();
  std::stringstream buf;
  writeChip(buf, chip);
  const Chip back = readChip(buf);
  EXPECT_EQ(back.name, chip.name);
  EXPECT_EQ(back.routingGrid.width(), 8);
  EXPECT_EQ(back.valves.size(), 3u);
  EXPECT_EQ(back.valves[1].pos, chip.valves[1].pos);
  EXPECT_EQ(back.valves[1].sequence, chip.valves[1].sequence);
  EXPECT_EQ(back.pins.size(), 2u);
  EXPECT_EQ(back.obstacles, chip.obstacles);
  ASSERT_EQ(back.givenClusters.size(), 1u);
  EXPECT_TRUE(back.givenClusters[0].lengthMatched);
  EXPECT_EQ(back.givenClusters[0].valves, chip.givenClusters[0].valves);
}

TEST(ChipIo, RejectsGarbage) {
  std::stringstream buf("not-a-chip 1\n");
  EXPECT_THROW(readChip(buf), std::runtime_error);
}

TEST(ChipIo, SkipsComments) {
  const Chip chip = tinyChip();
  std::stringstream buf;
  writeChip(buf, chip);
  std::stringstream commented("# heading comment\n" + buf.str());
  EXPECT_NO_THROW(readChip(commented));
}

TEST(Generator, SmallDesignsMatchTable1) {
  struct Expect {
    const char* name;
    std::int32_t w, h, valves, pins, obs;
    std::size_t clusters;
  };
  const Expect expectations[] = {
      {"S1", 12, 12, 5, 14, 9, 2},    {"S2", 22, 22, 10, 40, 54, 2},
      {"S3", 52, 52, 15, 93, 0, 5},   {"S4", 72, 72, 20, 139, 27, 7},
      {"S5", 152, 152, 40, 306, 135, 13},
  };
  const GeneratorParams params[] = {s1Params(), s2Params(), s3Params(), s4Params(),
                                    s5Params()};
  for (std::size_t i = 0; i < std::size(expectations); ++i) {
    const Chip chip = generateChip(params[i]);
    const Expect& e = expectations[i];
    EXPECT_EQ(chip.name, e.name);
    EXPECT_EQ(chip.routingGrid.width(), e.w);
    EXPECT_EQ(chip.routingGrid.height(), e.h);
    EXPECT_EQ(chip.valves.size(), static_cast<std::size_t>(e.valves));
    EXPECT_EQ(chip.pins.size(), static_cast<std::size_t>(e.pins));
    EXPECT_EQ(chip.obstacles.size(), static_cast<std::size_t>(e.obs));
    EXPECT_EQ(chip.givenClusters.size(), e.clusters);
    EXPECT_EQ(chip.validate(), std::nullopt);
  }
}

TEST(Generator, RealChipPresetsMatchTable1) {
  const Chip c1 = generateChip(chip1Params());
  EXPECT_EQ(c1.routingGrid.width(), 179);
  EXPECT_EQ(c1.routingGrid.height(), 413);
  EXPECT_EQ(c1.valves.size(), 176u);
  EXPECT_EQ(c1.pins.size(), 556u);
  EXPECT_EQ(c1.obstacles.size(), 1800u);
  EXPECT_EQ(c1.givenClusters.size(), 40u);

  const Chip c2 = generateChip(chip2Params());
  EXPECT_EQ(c2.routingGrid.width(), 231);
  EXPECT_EQ(c2.valves.size(), 56u);
  EXPECT_EQ(c2.givenClusters.size(), 22u);
  for (const auto& cluster : c2.givenClusters)
    EXPECT_EQ(cluster.valves.size(), 2u);  // paper: Chip2 has only pairs
}

TEST(Generator, DeterministicForFixedSeed) {
  const Chip a = generateChip(s2Params());
  const Chip b = generateChip(s2Params());
  ASSERT_EQ(a.valves.size(), b.valves.size());
  for (std::size_t i = 0; i < a.valves.size(); ++i) {
    EXPECT_EQ(a.valves[i].pos, b.valves[i].pos);
    EXPECT_EQ(a.valves[i].sequence, b.valves[i].sequence);
  }
}

TEST(Generator, ClusterMembersCompatibleAcrossClustersNot) {
  const Chip chip = generateChip(s3Params());
  for (const auto& cluster : chip.givenClusters) {
    for (std::size_t i = 0; i < cluster.valves.size(); ++i)
      for (std::size_t j = i + 1; j < cluster.valves.size(); ++j)
        EXPECT_TRUE(chip.valve(cluster.valves[i])
                        .sequence.compatibleWith(chip.valve(cluster.valves[j]).sequence));
  }
  // Valves from different given clusters are made incompatible.
  const auto& a = chip.givenClusters[0].valves[0];
  const auto& b = chip.givenClusters[1].valves[0];
  EXPECT_FALSE(chip.valve(a).sequence.compatibleWith(chip.valve(b).sequence));
}

TEST(Generator, PlainClusterGroupsSupported) {
  GeneratorParams p = s2Params();
  p.plainClusterSizes = {3};
  p.valveCount = 13;
  const Chip chip = generateChip(p);
  EXPECT_EQ(chip.givenClusters.size(), 3u);
  EXPECT_FALSE(chip.givenClusters.back().lengthMatched);
  EXPECT_EQ(chip.validate(), std::nullopt);
}

TEST(Generator, RejectsInfeasibleParams) {
  GeneratorParams p;
  p.width = 10;
  p.height = 10;
  p.valveCount = 200;  // cannot fit
  EXPECT_THROW(generateChip(p), std::invalid_argument);

  GeneratorParams tiny;
  tiny.width = 4;
  tiny.height = 4;
  EXPECT_THROW(generateChip(tiny), std::invalid_argument);

  GeneratorParams badCluster = s1Params();
  badCluster.lmClusterSizes = {1};
  EXPECT_THROW(generateChip(badCluster), std::invalid_argument);
}

TEST(Generator, Table1DesignsEnumeration) {
  const auto designs = table1Designs();
  ASSERT_EQ(designs.size(), 7u);
  EXPECT_EQ(designs[0].name, "Chip1");
  EXPECT_EQ(designs[6].name, "S5");
}

}  // namespace
}  // namespace pacor::chip
