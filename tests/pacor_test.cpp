#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "chip/generator.hpp"
#include "pacor/clustering.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/report.hpp"

namespace pacor::core {
namespace {

TEST(Clustering, PreservesGivenClusters) {
  const chip::Chip chip = chip::generateChip(chip::s1Params());
  const auto specs = clusterValves(chip);
  ASSERT_GE(specs.size(), chip.givenClusters.size());
  for (std::size_t i = 0; i < chip.givenClusters.size(); ++i) {
    EXPECT_EQ(specs[i].valves, chip.givenClusters[i].valves);
    EXPECT_EQ(specs[i].lengthMatched, chip.givenClusters[i].lengthMatched);
  }
}

TEST(Clustering, CoversEveryValveExactlyOnce) {
  const chip::Chip chip = chip::generateChip(chip::s3Params());
  const auto specs = clusterValves(chip);
  std::vector<int> seen(chip.valves.size(), 0);
  for (const auto& spec : specs)
    for (const chip::ValveId v : spec.valves) ++seen[static_cast<std::size_t>(v)];
  for (const int c : seen) EXPECT_EQ(c, 1);
}

TEST(Clustering, ClustersArePairwiseCompatible) {
  const chip::Chip chip = chip::generateChip(chip::s4Params());
  for (const auto& spec : clusterValves(chip))
    for (std::size_t i = 0; i < spec.valves.size(); ++i)
      for (std::size_t j = i + 1; j < spec.valves.size(); ++j)
        EXPECT_TRUE(
            chip.valve(spec.valves[i])
                .sequence.compatibleWith(chip.valve(spec.valves[j]).sequence));
}

/// Structural checks every routing result must satisfy, independent of
/// quality: completion, connectivity, design rules, pin exclusivity.
void checkInvariants(const chip::Chip& chip, const PacorResult& result) {
  SCOPED_TRACE(result.design);
  EXPECT_TRUE(result.complete);

  // Every valve appears in exactly one cluster.
  std::vector<int> valveSeen(chip.valves.size(), 0);
  std::unordered_set<chip::PinId> pinsUsed;
  std::unordered_map<geom::Point, int> cellOwner;
  for (std::size_t ci = 0; ci < result.clusters.size(); ++ci) {
    const RoutedCluster& c = result.clusters[ci];
    EXPECT_TRUE(c.routed);
    for (const chip::ValveId v : c.valves) ++valveSeen[static_cast<std::size_t>(v)];
    ASSERT_GE(c.pin, 0);
    EXPECT_TRUE(pinsUsed.insert(c.pin).second) << "pin shared: " << c.pin;

    // Valves on the same pin are pairwise compatible (constraint ii).
    for (std::size_t i = 0; i < c.valves.size(); ++i)
      for (std::size_t j = i + 1; j < c.valves.size(); ++j) {
        EXPECT_TRUE(chip.valve(c.valves[i])
                        .sequence.compatibleWith(chip.valve(c.valves[j]).sequence));
      }

    // Channels of different clusters never share a cell (design rules).
    const auto claim = [&](const route::Path& p) {
      for (const geom::Point cell : p) {
        const auto [it, fresh] = cellOwner.emplace(cell, static_cast<int>(ci));
        if (!fresh) {
          EXPECT_EQ(it->second, static_cast<int>(ci)) << cell.str();
        }
      }
    };
    for (const auto& p : c.treePaths) claim(p);
    claim(c.escapePath);

    // Lengths reported for every valve.
    ASSERT_EQ(c.valveLengths.size(), c.valves.size());
    for (const auto l : c.valveLengths) EXPECT_GE(l, 0);
  }
  for (const int c : valveSeen) EXPECT_EQ(c, 1);

  // No channel cell on an obstacle.
  const auto obsMap = chip.makeObstacleMap();
  for (const auto& [cell, owner] : cellOwner) {
    (void)owner;
    EXPECT_FALSE(obsMap.isObstacle(cell)) << cell.str();
  }
}

TEST(Pipeline, S1FullFlow) {
  const chip::Chip chip = chip::generateChip(chip::s1Params());
  const PacorResult result = routeChip(chip);
  checkInvariants(chip, result);
  EXPECT_EQ(result.multiValveClusterCount, 2);
  EXPECT_GT(result.totalChannelLength, 0);
}

TEST(Pipeline, S2FullFlow) {
  const chip::Chip chip = chip::generateChip(chip::s2Params());
  const PacorResult result = routeChip(chip);
  checkInvariants(chip, result);
  EXPECT_EQ(result.multiValveClusterCount, 2);
}

TEST(Pipeline, S3FullFlowMatchesMostClusters) {
  const chip::Chip chip = chip::generateChip(chip::s3Params());
  const PacorResult result = routeChip(chip);
  checkInvariants(chip, result);
  EXPECT_EQ(result.multiValveClusterCount, 5);
  EXPECT_GE(result.matchedClusterCount, 3);  // paper: 4 of 5
}

TEST(Pipeline, MatchedClustersAreActuallyMatched) {
  const chip::Chip chip = chip::generateChip(chip::s3Params());
  const PacorResult result = routeChip(chip);
  for (const RoutedCluster& c : result.clusters) {
    if (c.lengthMatchRequested && c.lengthMatched) {
      EXPECT_LE(c.lengthSpread(), chip.delta);
    }
  }
}

TEST(Pipeline, MatchedLengthsAccounting) {
  const chip::Chip chip = chip::generateChip(chip::s4Params());
  const PacorResult result = routeChip(chip);
  checkInvariants(chip, result);
  std::int64_t matched = 0;
  std::int64_t total = 0;
  for (const RoutedCluster& c : result.clusters) {
    total += c.totalLength;
    if (c.lengthMatchRequested && c.lengthMatched) matched += c.totalLength;
  }
  EXPECT_EQ(result.totalChannelLength, total);
  EXPECT_EQ(result.matchedChannelLength, matched);
  EXPECT_LE(matched, total);
}

TEST(Pipeline, WithoutSelectionStillCompletes) {
  const chip::Chip chip = chip::generateChip(chip::s3Params());
  const PacorResult result = routeChip(chip, withoutSelectionConfig());
  checkInvariants(chip, result);
}

TEST(Pipeline, DetourFirstStillCompletes) {
  const chip::Chip chip = chip::generateChip(chip::s3Params());
  const PacorResult result = routeChip(chip, detourFirstConfig());
  checkInvariants(chip, result);
}

TEST(Pipeline, PacorMatchesAtLeastAsManyAsBaselinesOnS4) {
  const chip::Chip chip = chip::generateChip(chip::s4Params());
  const PacorResult pacor = routeChip(chip);
  const PacorResult noSel = routeChip(chip, withoutSelectionConfig());
  // The headline Table 2 shape: selection never hurts matching.
  EXPECT_GE(pacor.matchedClusterCount, noSel.matchedClusterCount - 1);
}

TEST(Pipeline, RejectsInvalidChip) {
  chip::Chip bad = chip::generateChip(chip::s1Params());
  bad.valves[0].pos = {-1, -1};
  EXPECT_THROW(routeChip(bad), std::invalid_argument);
}

TEST(Pipeline, ReportFormatting) {
  const chip::Chip chip = chip::generateChip(chip::s1Params());
  const PacorResult r = routeChip(chip);
  const std::string desc = describeResult(r);
  EXPECT_NE(desc.find("design S1"), std::string::npos);
  EXPECT_NE(desc.find("cluster 0"), std::string::npos);
  std::ostringstream table;
  printTable2Header(table);
  printTable2Row(table, r, r, r);
  EXPECT_NE(table.str().find("S1"), std::string::npos);
}

}  // namespace
}  // namespace pacor::core
