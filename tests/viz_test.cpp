#include <gtest/gtest.h>

#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"
#include "chip/flow_layer.hpp"
#include "viz/svg.hpp"

namespace pacor::viz {
namespace {

chip::Chip smallChip() { return chip::generateChip(chip::s1Params()); }

TEST(Svg, ProducesWellFormedDocument) {
  const auto chip = smallChip();
  const std::string svg = renderSvg(chip, {});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One circle per valve, one rect per pin (plus background/border).
  std::size_t circles = 0;
  for (std::size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos; ++pos)
    ++circles;
  EXPECT_EQ(circles, chip.valves.size());
}

TEST(Svg, DrawsObstacles) {
  const auto chip = smallChip();
  const std::string svg = renderSvg(chip, {});
  std::size_t dark = 0;
  for (std::size_t pos = 0; (pos = svg.find("#3A3A3A", pos)) != std::string::npos; ++pos)
    ++dark;
  EXPECT_EQ(dark, chip.obstacles.size());
}

TEST(Svg, DrawsRoutedNetsAsPolylines) {
  const auto chip = smallChip();
  const auto result = core::routeChip(chip);
  std::vector<DrawnNet> nets;
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    DrawnNet net;
    net.colorIndex = static_cast<int>(i);
    net.label = "cluster " + std::to_string(i);
    net.paths = result.clusters[i].treePaths;
    net.paths.push_back(result.clusters[i].escapePath);
    nets.push_back(std::move(net));
  }
  const std::string svg = renderSvg(chip, nets);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("cluster 0"), std::string::npos);
}

TEST(Svg, ColorsWrapAroundPalette) {
  const auto chip = smallChip();
  DrawnNet net;
  net.colorIndex = 9999;  // far past the palette size
  net.paths = {{{2, 2}, {3, 2}}};
  EXPECT_NO_THROW(renderSvg(chip, {net}));
  DrawnNet negative;
  negative.colorIndex = -3;
  negative.paths = {{{2, 3}, {3, 3}}};
  EXPECT_NO_THROW(renderSvg(chip, {negative}));
}

TEST(Svg, EmptyPathsSkipped) {
  const auto chip = smallChip();
  DrawnNet net;
  net.paths = {{}};
  const std::string svg = renderSvg(chip, {net});
  EXPECT_EQ(svg.find("<polyline"), std::string::npos);
}

TEST(Svg, WriteFileAndFailureModes) {
  const auto chip = smallChip();
  const std::string path = ::testing::TempDir() + "/pacor_viz_test.svg";
  EXPECT_NO_THROW(writeSvgFile(path, chip, {}));
  EXPECT_THROW(writeSvgFile("/nonexistent/dir/x.svg", chip, {}), std::runtime_error);
}


TEST(Svg, FlowLayerRendering) {
  const auto chip = smallChip();
  chip::FlowLayer flow;
  flow.channels.push_back({{{2, 2}, {2, 8}}});
  flow.components.push_back({"chamber", {{5, 5}, {8, 7}}});
  const std::string svg = renderSvgWithFlow(chip, flow, {});
  EXPECT_NE(svg.find("#A8C8E8"), std::string::npos);  // channel stroke
  EXPECT_NE(svg.find("#D6E4F0"), std::string::npos);  // footprint fill
  EXPECT_NE(svg.find("chamber"), std::string::npos);  // component title
  // Obstacle squares are suppressed in the two-layer view (the flow layer
  // itself shows where they come from).
  EXPECT_EQ(svg.find("#3A3A3A"), std::string::npos);
}

}  // namespace
}  // namespace pacor::viz
