#include <gtest/gtest.h>

#include <sstream>

#include "chip/generator.hpp"
#include "pacor/drc.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"

namespace pacor::core {
namespace {

TEST(SolutionIo, RoundTripPreservesEverything) {
  const auto chip = chip::generateChip(chip::s2Params());
  const auto result = routeChip(chip);

  std::stringstream buf;
  writeSolution(buf, result);
  const PacorResult back = readSolution(buf);

  EXPECT_EQ(back.design, result.design);
  EXPECT_EQ(back.complete, result.complete);
  EXPECT_EQ(back.multiValveClusterCount, result.multiValveClusterCount);
  EXPECT_EQ(back.matchedClusterCount, result.matchedClusterCount);
  EXPECT_EQ(back.matchedChannelLength, result.matchedChannelLength);
  EXPECT_EQ(back.totalChannelLength, result.totalChannelLength);
  ASSERT_EQ(back.clusters.size(), result.clusters.size());
  for (std::size_t i = 0; i < back.clusters.size(); ++i) {
    const auto& a = back.clusters[i];
    const auto& b = result.clusters[i];
    EXPECT_EQ(a.valves, b.valves);
    EXPECT_EQ(a.pin, b.pin);
    EXPECT_EQ(a.tap, b.tap);
    EXPECT_EQ(a.lengthMatchRequested, b.lengthMatchRequested);
    EXPECT_EQ(a.lengthMatched, b.lengthMatched);
    EXPECT_EQ(a.routed, b.routed);
    EXPECT_EQ(a.valveLengths, b.valveLengths);
    EXPECT_EQ(a.treePaths, b.treePaths);
    EXPECT_EQ(a.escapePath, b.escapePath);
    EXPECT_EQ(a.totalLength, b.totalLength);
  }
}

TEST(SolutionIo, RoundTripStaysDrcClean) {
  const auto chip = chip::generateChip(chip::s3Params());
  const auto result = routeChip(chip);
  std::stringstream buf;
  writeSolution(buf, result);
  const PacorResult back = readSolution(buf);
  const auto report = checkSolution(chip, back);
  EXPECT_TRUE(report.clean()) << report.str();
}

TEST(SolutionIo, RejectsBadHeader) {
  std::stringstream buf("bogus 1\n");
  EXPECT_THROW(readSolution(buf), std::runtime_error);
}

TEST(SolutionIo, RejectsWrongVersion) {
  std::stringstream buf("pacor-solution 7\n");
  EXPECT_THROW(readSolution(buf), std::runtime_error);
}

TEST(SolutionIo, RejectsTruncatedFile) {
  const auto chip = chip::generateChip(chip::s1Params());
  const auto result = routeChip(chip);
  std::stringstream buf;
  writeSolution(buf, result);
  std::string text = buf.str();
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(readSolution(cut), std::runtime_error);
}

TEST(SolutionIo, RejectsMalformedCells) {
  std::stringstream buf(
      "pacor-solution 1\ndesign x\ncomplete 1\nstats 0 0 0 0 1 0\nclusters 1\n"
      "valves 1 0\nflags 0 0 1\npin 0\ntap 1 1\nlengths 1 5\ntreepaths 1\n"
      "path 3 1 1 1 2\n"  // claims 3 cells, provides 2
      "escape 0\n");
  EXPECT_THROW(readSolution(buf), std::runtime_error);
}

TEST(SolutionIo, SkipsComments) {
  const auto chip = chip::generateChip(chip::s1Params());
  const auto result = routeChip(chip);
  std::stringstream buf;
  writeSolution(buf, result);
  std::stringstream commented("# a comment line\n" + buf.str());
  EXPECT_NO_THROW(readSolution(commented));
}

TEST(SolutionIo, FileRoundTrip) {
  const auto chip = chip::generateChip(chip::s1Params());
  const auto result = routeChip(chip);
  const std::string path = ::testing::TempDir() + "/pacor_sol_test.sol";
  writeSolutionFile(path, result);
  const PacorResult back = readSolutionFile(path);
  EXPECT_EQ(back.clusters.size(), result.clusters.size());
  EXPECT_THROW(readSolutionFile("/nonexistent/dir/x.sol"), std::runtime_error);
}

}  // namespace
}  // namespace pacor::core
