#include <gtest/gtest.h>

#include <sstream>

#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/report.hpp"
#include "sim/analysis.hpp"

namespace pacor {
namespace {

TEST(Report, DescribeMentionsUnroutedClusters) {
  const auto chip = chip::generateChip(chip::s1Params());
  auto result = core::routeChip(chip);
  result.clusters[0].routed = false;
  result.complete = false;
  const std::string text = core::describeResult(result);
  EXPECT_NE(text.find("INCOMPLETE"), std::string::npos);
  EXPECT_NE(text.find("UNROUTED"), std::string::npos);
}

TEST(Report, DescribeMentionsFailedMatch) {
  const auto chip = chip::generateChip(chip::s1Params());
  auto result = core::routeChip(chip);
  bool found = false;
  for (auto& c : result.clusters)
    if (c.lengthMatchRequested) {
      c.lengthMatched = false;
      found = true;
      break;
    }
  ASSERT_TRUE(found);
  EXPECT_NE(core::describeResult(result).find("match=NO"), std::string::npos);
}

TEST(Report, Table2RowsAlignUnderHeader) {
  const auto chip = chip::generateChip(chip::s1Params());
  const auto r = core::routeChip(chip);
  std::ostringstream os;
  core::printTable2Header(os);
  core::printTable2Row(os, r, r, r);
  std::istringstream lines(os.str());
  std::string l1, l2, l3;
  std::getline(lines, l1);
  std::getline(lines, l2);
  std::getline(lines, l3);
  // Column separators line up between header and data rows.
  for (std::size_t pos = l1.find('|'); pos != std::string::npos;
       pos = l1.find('|', pos + 1)) {
    ASSERT_LT(pos, l3.size());
    EXPECT_EQ(l3[pos], '|') << "column bar misaligned at " << pos;
  }
}

TEST(Report, EffortSummaryDrawsFromMetricsRegistry) {
  const auto chip = chip::generateChip(chip::s1Params());
  const auto r = core::routeChip(chip);
  const std::string text = core::describeEffort(r);
  EXPECT_NE(text.find(r.design), std::string::npos);
  EXPECT_NE(text.find("expansions"), std::string::npos);
  EXPECT_NE(text.find("escape round"), std::string::npos);
  // The counts come straight from the registry, not from stale result
  // fields: the escape-round figure matches the metric.
  const std::string rounds =
      std::to_string(r.metrics.getInt("escape.rounds")) + " escape round";
  EXPECT_NE(text.find(rounds), std::string::npos);
}

TEST(Report, EffortRowsAlignUnderHeader) {
  const auto chip = chip::generateChip(chip::s1Params());
  const auto r = core::routeChip(chip);
  std::ostringstream os;
  core::printEffortHeader(os);
  core::printEffortRow(os, r, r, r);
  std::istringstream lines(os.str());
  std::string l1, l2, l3;
  std::getline(lines, l1);
  std::getline(lines, l2);
  std::getline(lines, l3);
  for (std::size_t pos = l1.find('|'); pos != std::string::npos;
       pos = l1.find('|', pos + 1)) {
    ASSERT_LT(pos, l3.size());
    EXPECT_EQ(l3[pos], '|') << "column bar misaligned at " << pos;
  }
  // All three identical variants print identical effort cells.
  EXPECT_NE(l3.find(std::to_string(r.metrics.getInt("detour.iterations"))),
            std::string::npos);
}

TEST(Report, LengthSpreadEdgeCases) {
  core::RoutedCluster c;
  EXPECT_EQ(c.lengthSpread(), 0);  // no lengths
  c.routed = true;
  c.valveLengths = {7};
  EXPECT_EQ(c.lengthSpread(), 0);  // single valve
  c.valveLengths = {7, 12, 9};
  EXPECT_EQ(c.lengthSpread(), 5);
  c.routed = false;
  EXPECT_EQ(c.lengthSpread(), 0);  // unrouted reports zero
}

TEST(SkewAnalysis, ReportsEveryMultiValveCluster) {
  const auto chip = chip::generateChip(chip::s3Params());
  const auto result = core::routeChip(chip);
  const auto report = sim::analyzeSkew(chip, result);
  std::size_t multi = 0;
  for (const auto& c : result.clusters) multi += c.valves.size() >= 2;
  EXPECT_EQ(report.clusters.size(), multi);
  for (const auto& entry : report.clusters) {
    EXPECT_GE(entry.elmoreSkew, 0.0);  // all routed on S3
    EXPECT_LT(entry.clusterIndex, result.clusters.size());
  }
  EXPECT_GE(report.worstUnmatchedSkew, 0.0);
}

TEST(SkewAnalysis, MatchedClustersHaveBoundedSkewVsUnmatched) {
  // On a pair cluster, matched lengths imply symmetric arms: zero skew.
  chip::Chip pairChip;
  pairChip.name = "pair";
  pairChip.routingGrid = grid::Grid(20, 20);
  pairChip.delta = 1;
  pairChip.valves = {{0, {4, 10}, chip::ActivationSequence("01")},
                     {1, {15, 10}, chip::ActivationSequence("01")}};
  pairChip.pins = {{0, {0, 10}}, {1, {19, 10}}, {2, {10, 0}}, {3, {10, 19}}};
  pairChip.givenClusters = {{{0, 1}, true}};
  const auto result = core::routeChip(pairChip);
  const auto report = sim::analyzeSkew(pairChip, result);
  ASSERT_EQ(report.clusters.size(), 1u);
  if (result.clusters[0].lengthMatched && result.clusters[0].lengthSpread() == 0) {
    EXPECT_NEAR(report.clusters[0].elmoreSkew, 0.0, 1e-9);
  }
}

TEST(SkewAnalysis, UnroutedClustersAreSkippedInAggregates) {
  const auto chip = chip::generateChip(chip::s1Params());
  auto result = core::routeChip(chip);
  for (auto& c : result.clusters) c.pin = -1;  // pretend nothing escaped
  const auto report = sim::analyzeSkew(chip, result);
  for (const auto& entry : report.clusters) EXPECT_EQ(entry.elmoreSkew, -1.0);
  EXPECT_EQ(report.worstMatchedSkew, 0.0);
  EXPECT_EQ(report.worstUnmatchedSkew, 0.0);
}

}  // namespace
}  // namespace pacor
