#include <gtest/gtest.h>

#include "chip/generator.hpp"
#include "pacor/drc.hpp"
#include "pacor/pipeline.hpp"

namespace pacor::core {
namespace {

/// Random small instances spanning cluster shapes and congestion levels;
/// every variant must produce a DRC-clean, 100%-complete solution with
/// self-consistent accounting -- the paper's headline completion claim as
/// a sweep property.
struct InstanceSpec {
  const char* tag;
  std::int32_t size;
  std::int32_t valves;
  std::int32_t pins;
  std::int32_t obstacles;
  std::vector<std::int32_t> lmSizes;
  std::vector<std::int32_t> plainSizes;
  std::uint32_t seed;
};

chip::Chip makeInstance(const InstanceSpec& spec) {
  chip::GeneratorParams p;
  p.name = spec.tag;
  p.width = spec.size;
  p.height = spec.size;
  p.valveCount = spec.valves;
  p.pinCount = spec.pins;
  p.obstacleCellCount = spec.obstacles;
  p.lmClusterSizes = spec.lmSizes;
  p.plainClusterSizes = spec.plainSizes;
  p.clusterRadius = 4;
  p.seed = spec.seed;
  return chip::generateChip(p);
}

class PipelineSweep : public ::testing::TestWithParam<InstanceSpec> {};

TEST_P(PipelineSweep, AllVariantsCompleteAndDrcClean) {
  const chip::Chip chip = makeInstance(GetParam());
  for (const auto& cfg :
       {pacorDefaultConfig(), withoutSelectionConfig(), detourFirstConfig()}) {
    const PacorResult result = routeChip(chip, cfg);
    EXPECT_TRUE(result.complete) << chip.name;
    const auto report = checkSolution(chip, result);
    EXPECT_TRUE(report.clean()) << chip.name << ": " << report.str();

    // Accounting invariants.
    std::int64_t total = 0;
    std::int64_t matchedLen = 0;
    int matched = 0;
    for (const RoutedCluster& c : result.clusters) {
      total += c.totalLength;
      if (c.lengthMatchRequested && c.lengthMatched) {
        ++matched;
        matchedLen += c.totalLength;
        EXPECT_LE(c.lengthSpread(), chip.delta);
      }
    }
    EXPECT_EQ(result.totalChannelLength, total);
    EXPECT_EQ(result.matchedChannelLength, matchedLen);
    EXPECT_EQ(result.matchedClusterCount, matched);
    EXPECT_LE(result.matchedClusterCount, result.multiValveClusterCount);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineSweep,
    ::testing::Values(
        // Pairs only (the Chip2 shape).
        InstanceSpec{"pairs", 24, 10, 24, 20, {2, 2, 2}, {}, 11},
        // One large matched tree.
        InstanceSpec{"bigtree", 32, 10, 24, 30, {6}, {}, 12},
        // Mixed matched + plain clusters (exercises MST routing).
        InstanceSpec{"mixed", 32, 14, 28, 40, {3, 2}, {3, 2}, 13},
        // Obstacle-free.
        InstanceSpec{"open", 28, 12, 24, 0, {4, 2}, {2}, 14},
        // Dense obstacles.
        InstanceSpec{"dense", 36, 12, 30, 220, {3, 3}, {}, 15},
        // Only singletons (pure escape problem).
        InstanceSpec{"singles", 24, 12, 30, 25, {}, {}, 16},
        // Odd cluster sizes stress DME balancing.
        InstanceSpec{"odd", 40, 16, 32, 50, {5, 3}, {}, 17},
        // Many small matched clusters.
        InstanceSpec{"many", 44, 24, 44, 60, {2, 2, 2, 2, 2, 2}, {}, 18}),
    [](const auto& info) { return std::string(info.param.tag); });

class SeedSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SeedSweep, StressInstancesCompleteUnderAllVariants) {
  const chip::Chip chip = chip::generateChip(chip::stressParams(GetParam()));
  for (const auto& cfg :
       {pacorDefaultConfig(), withoutSelectionConfig(), detourFirstConfig()}) {
    const PacorResult result = routeChip(chip, cfg);
    EXPECT_TRUE(result.complete) << chip.name;
    const auto report = checkSolution(chip, result);
    EXPECT_TRUE(report.clean()) << chip.name << ": " << report.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(PipelineDeterminism, SameInputSameResult) {
  const chip::Chip chip = chip::generateChip(chip::s3Params());
  const PacorResult a = routeChip(chip);
  const PacorResult b = routeChip(chip);
  EXPECT_EQ(a.matchedClusterCount, b.matchedClusterCount);
  EXPECT_EQ(a.totalChannelLength, b.totalChannelLength);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].pin, b.clusters[i].pin);
    EXPECT_EQ(a.clusters[i].valveLengths, b.clusters[i].valveLengths);
  }
}

TEST(PipelineDelta, LargerDeltaNeverMatchesFewer) {
  chip::Chip chip = chip::generateChip(chip::s4Params());
  chip.delta = 1;
  const int tight = routeChip(chip).matchedClusterCount;
  chip.delta = 4;
  const int loose = routeChip(chip).matchedClusterCount;
  EXPECT_GE(loose, tight);
}


TEST(PipelineEscapeMode, SequentialBaselineWorksOnEasyDesigns) {
  const chip::Chip chip = chip::generateChip(chip::s3Params());
  PacorConfig cfg;
  cfg.escapeMode = EscapeMode::kSequential;
  const PacorResult result = routeChip(chip, cfg);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(checkSolution(chip, result).clean());
}

TEST(PipelineEscapeMode, FlowNeverRoutesFewerThanSequential) {
  for (const std::uint32_t seed : {2u, 5u}) {
    const chip::Chip chip = chip::generateChip(chip::stressParams(seed));
    PacorConfig seq;
    seq.escapeMode = EscapeMode::kSequential;
    const int seqMatched = routeChip(chip, seq).matchedClusterCount;
    const int flowMatched = routeChip(chip).matchedClusterCount;
    // The flow solver dominates routability; allow 1 cluster of noise in
    // matching since the downstream detour interacts with geometry.
    EXPECT_GE(flowMatched + 1, seqMatched) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pacor::core
