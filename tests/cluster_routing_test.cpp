#include <gtest/gtest.h>

#include <unordered_set>

#include "pacor/cluster_routing.hpp"

namespace pacor::core {
namespace {

using geom::Point;

/// Builds a chip with the given LM clusters (one compatible group per
/// cluster) and wires up pre-occupied work clusters, mirroring what the
/// pipeline does before stage 2.
struct LmFixture {
  chip::Chip chip;
  grid::ObstacleMap obs{grid::Grid(1, 1)};
  std::vector<WorkCluster> clusters;

  explicit LmFixture(std::int32_t size, const std::vector<std::vector<Point>>& groups) {
    chip.name = "lm-fixture";
    chip.routingGrid = grid::Grid(size, size);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      chip::ValveCluster cluster;
      cluster.lengthMatched = true;
      for (const Point p : groups[g]) {
        const auto id = static_cast<chip::ValveId>(chip.valves.size());
        std::string seq(6, '0');
        for (int b = 0; b < 6; ++b)
          if ((g >> b) & 1u) seq[static_cast<std::size_t>(b)] = '1';
        chip.valves.push_back({id, p, chip::ActivationSequence(seq)});
        cluster.valves.push_back(id);
      }
      chip.givenClusters.push_back(std::move(cluster));
    }
    chip.pins = {{0, {0, 0}}};
    obs = chip.makeObstacleMap();
    clusters.resize(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      auto& wc = clusters[g];
      wc.spec.valves = chip.givenClusters[g].valves;
      wc.spec.lengthMatched = true;
      wc.net = static_cast<grid::NetId>(g);
      for (const chip::ValveId v : wc.spec.valves) {
        const Point cell = chip.valve(v).pos;
        obs.occupy(std::span<const Point>(&cell, 1), wc.net);
      }
    }
  }

  std::vector<WorkCluster*> ptrs() {
    std::vector<WorkCluster*> out;
    for (auto& wc : clusters) out.push_back(&wc);
    return out;
  }
};

TEST(LmRouting, RoutesTwoValvePairWithMiddleTap) {
  LmFixture fx(16, {{{3, 8}, {12, 8}}});
  auto ptrs = fx.ptrs();
  const auto stats = routeLengthMatchingClusters(fx.chip, {}, fx.obs,
                                                 std::span<WorkCluster*>(ptrs));
  EXPECT_EQ(stats.pairClusters, 1);
  EXPECT_EQ(stats.demoted, 0);
  const auto& wc = fx.clusters[0];
  ASSERT_TRUE(wc.internallyRouted);
  ASSERT_TRUE(wc.lmStructured);
  ASSERT_EQ(wc.treePaths.size(), 2u);
  // Arms start at the valves and end at the shared tap.
  EXPECT_EQ(wc.treePaths[0].front(), (Point{3, 8}));
  EXPECT_EQ(wc.treePaths[1].front(), (Point{12, 8}));
  EXPECT_EQ(wc.treePaths[0].back(), wc.tap);
  EXPECT_EQ(wc.treePaths[1].back(), wc.tap);
  // Middle tap: arm lengths differ by at most one.
  EXPECT_LE(std::abs(route::pathLength(wc.treePaths[0]) -
                     route::pathLength(wc.treePaths[1])),
            1);
}

TEST(LmRouting, RoutesFourValveTreeViaDme) {
  LmFixture fx(28, {{{5, 5}, {20, 6}, {6, 21}, {21, 22}}});
  auto ptrs = fx.ptrs();
  const auto stats = routeLengthMatchingClusters(fx.chip, {}, fx.obs,
                                                 std::span<WorkCluster*>(ptrs));
  EXPECT_EQ(stats.dmeClusters, 1);
  EXPECT_GE(stats.candidatesBuilt, 1);
  const auto& wc = fx.clusters[0];
  ASSERT_TRUE(wc.internallyRouted);
  ASSERT_TRUE(wc.lmStructured);
  EXPECT_EQ(wc.treePaths.size(), 6u);  // 3 internal nodes x 2 child edges
  ASSERT_EQ(wc.sinkSequences.size(), 4u);
  // Every sink sequence references valid path indices, leaf edge first.
  for (std::size_t s = 0; s < 4; ++s) {
    ASSERT_FALSE(wc.sinkSequences[s].empty());
    for (const int idx : wc.sinkSequences[s]) {
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, 6);
    }
    const route::Path& leaf =
        wc.treePaths[static_cast<std::size_t>(wc.sinkSequences[s].front())];
    const Point valve = fx.chip.valve(wc.spec.valves[s]).pos;
    EXPECT_TRUE(leaf.front() == valve || leaf.back() == valve);
  }
}

TEST(LmRouting, TreeCellsCommittedToObstacleMap) {
  LmFixture fx(24, {{{4, 12}, {19, 12}}});
  auto ptrs = fx.ptrs();
  routeLengthMatchingClusters(fx.chip, {}, fx.obs, std::span<WorkCluster*>(ptrs));
  const auto& wc = fx.clusters[0];
  for (const auto& p : wc.treePaths)
    for (const Point c : p) EXPECT_EQ(fx.obs.owner(c), wc.net) << c.str();
}

TEST(LmRouting, TwoClustersShareNoCells) {
  LmFixture fx(24, {{{4, 6}, {19, 6}}, {{4, 16}, {19, 16}}});
  auto ptrs = fx.ptrs();
  const auto stats = routeLengthMatchingClusters(fx.chip, {}, fx.obs,
                                                 std::span<WorkCluster*>(ptrs));
  EXPECT_EQ(stats.demoted, 0);
  // Within a cluster the arms share the tap cell; across clusters nothing
  // may be shared.
  std::vector<std::unordered_set<Point>> cellsOf(fx.clusters.size());
  for (std::size_t i = 0; i < fx.clusters.size(); ++i)
    for (const auto& p : fx.clusters[i].treePaths)
      cellsOf[i].insert(p.begin(), p.end());
  for (const Point c : cellsOf[0]) EXPECT_FALSE(cellsOf[1].contains(c)) << c.str();
}

TEST(LmRouting, SelectionAvoidsOverlappingCandidates) {
  // Two interleaved clusters whose bounding boxes overlap heavily: the
  // stage must still route both (selection + negotiation).
  LmFixture fx(26, {{{4, 4}, {21, 21}}, {{21, 4}, {4, 21}}});
  auto ptrs = fx.ptrs();
  const auto stats = routeLengthMatchingClusters(fx.chip, {}, fx.obs,
                                                 std::span<WorkCluster*>(ptrs));
  EXPECT_EQ(stats.demoted, 0);
  EXPECT_TRUE(fx.clusters[0].internallyRouted);
  EXPECT_TRUE(fx.clusters[1].internallyRouted);
}

TEST(LmRouting, DemotesWhenUnroutable) {
  LmFixture fx(16, {{{2, 8}, {13, 8}}});
  // Slice the chip in half with a full wall: no channel can connect.
  for (std::int32_t y = 0; y < 16; ++y) fx.obs.addObstacle({8, y});
  auto ptrs = fx.ptrs();
  const auto stats = routeLengthMatchingClusters(fx.chip, {}, fx.obs,
                                                 std::span<WorkCluster*>(ptrs));
  EXPECT_EQ(stats.demoted, 1);
  EXPECT_TRUE(fx.clusters[0].wasDemoted);
  EXPECT_FALSE(fx.clusters[0].internallyRouted);
}

TEST(LmRouting, WithoutSelectionUsesFirstCandidate) {
  LmFixture fxA(28, {{{5, 5}, {20, 6}, {6, 21}, {21, 22}}});
  LmFixture fxB(28, {{{5, 5}, {20, 6}, {6, 21}, {21, 22}}});
  PacorConfig noSel;
  noSel.useSelection = false;
  auto ptrsA = fxA.ptrs();
  auto ptrsB = fxB.ptrs();
  const auto a = routeLengthMatchingClusters(fxA.chip, {}, fxA.obs,
                                             std::span<WorkCluster*>(ptrsA));
  const auto b = routeLengthMatchingClusters(fxB.chip, noSel, fxB.obs,
                                             std::span<WorkCluster*>(ptrsB));
  // Both succeed; the selection stats reflect the configuration.
  EXPECT_TRUE(fxA.clusters[0].internallyRouted);
  EXPECT_TRUE(fxB.clusters[0].internallyRouted);
  EXPECT_GE(a.candidatesBuilt, b.candidatesBuilt);  // same candidate builder
}

TEST(LmRouting, EmptyInputIsNoop) {
  LmFixture fx(16, {});
  auto ptrs = fx.ptrs();
  const auto stats = routeLengthMatchingClusters(fx.chip, {}, fx.obs,
                                                 std::span<WorkCluster*>(ptrs));
  EXPECT_EQ(stats.dmeClusters + stats.pairClusters, 0);
}

}  // namespace
}  // namespace pacor::core
