#include <gtest/gtest.h>

#include <sstream>

#include "chip/generator.hpp"
#include "chip/stats.hpp"

namespace pacor::chip {
namespace {

TEST(ChipStats, CountsMatchInstance) {
  const Chip chip = generateChip(s3Params());
  const ChipStats stats = computeStats(chip);
  EXPECT_EQ(stats.name, "S3");
  EXPECT_EQ(stats.width, 52);
  EXPECT_EQ(stats.height, 52);
  EXPECT_EQ(stats.valveCount, chip.valves.size());
  EXPECT_EQ(stats.pinCount, chip.pins.size());
  EXPECT_EQ(stats.obstacleCount, chip.obstacles.size());
  EXPECT_EQ(stats.clusterCount, chip.givenClusters.size());
  EXPECT_EQ(stats.matchedClusterCount, chip.givenClusters.size());  // all LM
}

TEST(ChipStats, DensitiesInUnitInterval) {
  for (const auto& params : {s1Params(), s4Params(), chip2Params()}) {
    const ChipStats stats = computeStats(generateChip(params));
    EXPECT_GE(stats.obstacleDensity, 0.0);
    EXPECT_LE(stats.obstacleDensity, 1.0);
    EXPECT_GE(stats.valveDensity, 0.0);
    EXPECT_LE(stats.valveDensity, 1.0);
    EXPECT_GE(stats.compatibilityDensity, 0.0);
    EXPECT_LE(stats.compatibilityDensity, 1.0);
  }
}

TEST(ChipStats, ClusterGeometry) {
  Chip chip;
  chip.name = "t";
  chip.routingGrid = grid::Grid(20, 20);
  chip.valves = {{0, {2, 2}, ActivationSequence("00")},
                 {1, {8, 2}, ActivationSequence("00")},
                 {2, {2, 10}, ActivationSequence("11")}};
  chip.pins = {{0, {0, 0}}};
  chip.givenClusters = {{{0, 1}, true}};
  const ChipStats stats = computeStats(chip);
  EXPECT_EQ(stats.largestClusterSize, 2u);
  EXPECT_DOUBLE_EQ(stats.meanClusterDiameter, 6.0);
  // Pairs: (0,1) compatible, (0,2)/(1,2) not -> density 1/3.
  EXPECT_NEAR(stats.compatibilityDensity, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.minValveToPinDistance, 4);  // valve 0 to (0,0)
}

TEST(ChipStats, EmptyEdgeCases) {
  Chip chip;
  chip.name = "empty";
  chip.routingGrid = grid::Grid(4, 4);
  const ChipStats stats = computeStats(chip);
  EXPECT_EQ(stats.valveCount, 0u);
  EXPECT_EQ(stats.minValveToPinDistance, 0);
  EXPECT_DOUBLE_EQ(stats.compatibilityDensity, 0.0);
}

TEST(ChipStats, StreamOutputMentionsEverything) {
  const ChipStats stats = computeStats(generateChip(s2Params()));
  std::ostringstream os;
  os << stats;
  const std::string text = os.str();
  EXPECT_NE(text.find("S2"), std::string::npos);
  EXPECT_NE(text.find("clusters"), std::string::npos);
  EXPECT_NE(text.find("densities"), std::string::npos);
}

}  // namespace
}  // namespace pacor::chip
