// Property tests for the independent solution oracle (src/verify): a
// handcrafted known-good chip/solution pair is perturbed one fault at a
// time, and the oracle must flag exactly the injected violation class --
// no false accepts, no bleed into unrelated classes. A routed S2 instance
// then cross-checks the oracle against the router-side DRC.

#include <gtest/gtest.h>

#include "chip/generator.hpp"
#include "pacor/drc.hpp"
#include "pacor/pipeline.hpp"
#include "verify/oracle.hpp"

namespace pacor {
namespace {

using geom::Point;
using verify::Fault;

/// 12x12 die, two pins, one length-matched pair + one singleton, all
/// routed by hand so every perturbation below has a known effect.
chip::Chip makeChip() {
  chip::Chip c;
  c.name = "oracle-fixture";
  c.routingGrid = grid::Grid(12, 12);
  c.delta = 1;
  c.valves = {{0, {3, 3}, chip::ActivationSequence("0011")},
              {1, {5, 3}, chip::ActivationSequence("00X1")},
              {2, {8, 8}, chip::ActivationSequence("1100")}};
  c.pins = {{0, {4, 0}}, {1, {11, 8}}};
  c.obstacles = {{6, 6}};
  c.givenClusters = {{{0, 1}, true}};
  return c;
}

core::PacorResult makeSolution() {
  core::PacorResult r;
  r.design = "oracle-fixture";
  r.complete = true;

  core::RoutedCluster pair;
  pair.valves = {0, 1};
  pair.lengthMatchRequested = true;
  pair.lengthMatched = true;
  pair.routed = true;
  pair.pin = 0;
  pair.tap = {4, 3};
  pair.treePaths = {{{3, 3}, {4, 3}, {5, 3}}};
  pair.escapePath = {{4, 3}, {4, 2}, {4, 1}, {4, 0}};
  pair.valveLengths = {4, 4};

  core::RoutedCluster single;
  single.valves = {2};
  single.routed = true;
  single.pin = 1;
  single.tap = {8, 8};
  single.escapePath = {{8, 8}, {9, 8}, {10, 8}, {11, 8}};
  single.valveLengths = {3};

  r.clusters = {pair, single};
  return r;
}

/// Asserts `fault` fires and no *other* class does.
void expectOnly(const verify::OracleReport& report, Fault fault) {
  EXPECT_TRUE(report.has(fault)) << report.str();
  for (const verify::Violation& v : report.violations)
    EXPECT_EQ(verify::faultName(v.fault), verify::faultName(fault)) << report.str();
}

TEST(Oracle, AcceptsTheHandcraftedSolution) {
  const auto report = verify::verifySolution(makeChip(), makeSolution());
  EXPECT_TRUE(report.clean()) << report.str();
}

TEST(Oracle, FlagsAShiftedPathCell) {
  auto solution = makeSolution();
  solution.clusters[0].escapePath[1] = {5, 2};  // breaks 4-adjacency both sides
  const auto report = verify::verifySolution(makeChip(), solution);
  EXPECT_TRUE(report.has(Fault::kBadChannel)) << report.str();
  // The tree is cut off from the pin as a consequence; nothing else fires.
  for (const verify::Violation& v : report.violations)
    EXPECT_TRUE(v.fault == Fault::kBadChannel || v.fault == Fault::kDisconnected)
        << report.str();
}

TEST(Oracle, FlagsSwappedPinAssignments) {
  auto solution = makeSolution();
  std::swap(solution.clusters[0].pin, solution.clusters[1].pin);
  const auto report = verify::verifySolution(makeChip(), solution);
  expectOnly(report, Fault::kDisconnected);
  EXPECT_EQ(report.count(Fault::kDisconnected), 3u) << report.str();  // all valves
}

TEST(Oracle, FlagsABrokenLengthMatch) {
  auto solution = makeSolution();
  // Reroute valve 1 the long way around; report the true (unmatched)
  // lengths so only the match claim itself is wrong.
  auto& c = solution.clusters[0];
  c.treePaths = {{{3, 3}, {4, 3}},
                 {{4, 3}, {4, 4}, {5, 4}, {6, 4}, {6, 3}, {5, 3}}};
  c.valveLengths = {4, 8};
  const auto report = verify::verifySolution(makeChip(), solution);
  expectOnly(report, Fault::kMatchBroken);
}

TEST(Oracle, FlagsACrossing) {
  auto solution = makeSolution();
  // The singleton sprouts a stray channel over the pair's escape column.
  solution.clusters[1].treePaths.push_back({{4, 2}, {4, 3}});
  const auto report = verify::verifySolution(makeChip(), solution);
  expectOnly(report, Fault::kCrossing);
}

TEST(Oracle, FlagsAChannelOnAForeignValve) {
  auto solution = makeSolution();
  // Drop the singleton so its valve at (8,8) is unclaimed, then let the
  // pair sprout a stray channel ending on that cell -- the occupancy
  // corruption a reroute that swallowed a foreign endpoint would leave.
  solution.clusters.pop_back();
  solution.clusters[0].treePaths.push_back({{8, 7}, {8, 8}});
  const auto report = verify::verifySolution(makeChip(), solution);
  expectOnly(report, Fault::kForeignValve);
  EXPECT_EQ(report.count(Fault::kForeignValve), 1u) << report.str();
}

TEST(Oracle, FlagsMisreportedLengths) {
  auto solution = makeSolution();
  solution.clusters[1].valveLengths = {7};
  const auto report = verify::verifySolution(makeChip(), solution);
  expectOnly(report, Fault::kLengthReport);
}

TEST(Oracle, FlagsAChannelOnABlockage) {
  auto solution = makeSolution();
  solution.clusters[1].treePaths.push_back({{6, 6}});  // the chip's obstacle
  const auto report = verify::verifySolution(makeChip(), solution);
  expectOnly(report, Fault::kBlockedCell);
}

TEST(Oracle, FlagsOffGridCells) {
  auto solution = makeSolution();
  solution.clusters[1].treePaths.push_back({{11, 8}, {12, 8}});
  const auto report = verify::verifySolution(makeChip(), solution);
  // (12,8) is off the die; it also collides with nothing else.
  expectOnly(report, Fault::kOffGrid);
}

TEST(Oracle, FlagsIncompatibleValvesOnOnePin) {
  auto chip = makeChip();
  chip.valves[1].sequence = chip::ActivationSequence("1111");  // conflicts with v0
  const auto report = verify::verifySolution(chip, makeSolution());
  expectOnly(report, Fault::kIncompatible);
}

TEST(Oracle, FlagsASharedPin) {
  auto solution = makeSolution();
  solution.clusters[1].pin = 0;
  const auto report = verify::verifySolution(makeChip(), solution);
  EXPECT_TRUE(report.has(Fault::kPinShared)) << report.str();
  // The singleton's channels never reach pin 0, so disconnection follows.
  for (const verify::Violation& v : report.violations)
    EXPECT_TRUE(v.fault == Fault::kPinShared || v.fault == Fault::kDisconnected)
        << report.str();
}

TEST(Oracle, FlagsMalformedReferencesInsteadOfThrowing) {
  auto solution = makeSolution();
  solution.clusters[1].valves = {99};
  const auto report = verify::verifySolution(makeChip(), solution);
  expectOnly(report, Fault::kBadReference);

  auto dup = makeSolution();
  dup.clusters[1].valves = {0};  // already owned by cluster 0
  EXPECT_TRUE(verify::verifySolution(makeChip(), dup).has(Fault::kBadReference));

  auto badPin = makeSolution();
  badPin.clusters[1].pin = 42;
  EXPECT_TRUE(verify::verifySolution(makeChip(), badPin).has(Fault::kPinMissing));
}

TEST(Oracle, FlagsARevisitedCellAsBadChannel) {
  auto solution = makeSolution();
  auto& escape = solution.clusters[1].escapePath;
  escape = {{8, 8}, {9, 8}, {9, 9}, {9, 8}, {10, 8}, {11, 8}};  // doubles back
  const auto report = verify::verifySolution(makeChip(), solution);
  expectOnly(report, Fault::kBadChannel);
}

TEST(Oracle, AgreesWithDrcOnRoutedDesigns) {
  for (const auto& params : {chip::s1Params(), chip::s2Params(), chip::s3Params()}) {
    const chip::Chip chip = chip::generateChip(params);
    const core::PacorResult result = core::routeChip(chip);
    const auto oracle = verify::verifySolution(chip, result);
    const auto drc = core::checkSolution(chip, result);
    EXPECT_EQ(oracle.clean(), drc.clean())
        << params.name << "\n" << oracle.str() << drc.str();
    EXPECT_TRUE(oracle.clean()) << params.name << "\n" << oracle.str();
  }
}

}  // namespace
}  // namespace pacor
