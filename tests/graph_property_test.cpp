#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "graph/clique_partition.hpp"
#include "graph/min_cost_flow.hpp"
#include "graph/mst.hpp"
#include "graph/selection.hpp"

namespace pacor::graph {
namespace {

// --- Min-cost flow optimality via the residual-graph certificate -----------
//
// A feasible flow is minimum-cost for its value iff the residual graph has
// no negative-cost cycle. We rebuild the residual graph from the solver's
// public introspection (flowOn / residual) and run Bellman-Ford.

struct RandomFlowInstance {
  std::size_t nodes;
  struct E {
    std::size_t u, v;
    std::int64_t cap, cost;
  };
  std::vector<E> edges;
};

RandomFlowInstance makeInstance(std::mt19937& rng) {
  RandomFlowInstance inst;
  inst.nodes = 5 + rng() % 6;
  const std::size_t m = 8 + rng() % 15;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t u = rng() % inst.nodes;
    std::size_t v = rng() % inst.nodes;
    if (u == v) v = (v + 1) % inst.nodes;
    inst.edges.push_back({u, v, static_cast<std::int64_t>(1 + rng() % 4),
                          static_cast<std::int64_t>(rng() % 10)});
  }
  return inst;
}

bool hasNegativeCycle(const std::vector<std::tuple<std::size_t, std::size_t, std::int64_t>>&
                          residualArcs,
                      std::size_t n) {
  std::vector<std::int64_t> dist(n, 0);  // virtual super-source trick
  for (std::size_t iter = 0; iter < n; ++iter) {
    bool relaxed = false;
    for (const auto& [u, v, w] : residualArcs) {
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        relaxed = true;
      }
    }
    if (!relaxed) return false;
  }
  return true;  // still relaxing after n rounds => negative cycle
}

class McmfOptimality : public ::testing::TestWithParam<int> {};

TEST_P(McmfOptimality, ResidualGraphHasNoNegativeCycle) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = makeInstance(rng);
    MinCostFlow flow(inst.nodes);
    std::vector<std::size_t> ids;
    for (const auto& e : inst.edges) ids.push_back(flow.addEdge(e.u, e.v, e.cap, e.cost));
    const auto result = flow.run(0, inst.nodes - 1);

    // Conservation + capacity sanity.
    std::vector<std::int64_t> balance(inst.nodes, 0);
    for (std::size_t i = 0; i < inst.edges.size(); ++i) {
      const auto f = flow.flowOn(ids[i]);
      EXPECT_GE(f, 0);
      EXPECT_LE(f, inst.edges[i].cap);
      balance[inst.edges[i].u] -= f;
      balance[inst.edges[i].v] += f;
    }
    EXPECT_EQ(balance[0], -result.flow);
    EXPECT_EQ(balance[inst.nodes - 1], result.flow);
    for (std::size_t v = 1; v + 1 < inst.nodes; ++v) EXPECT_EQ(balance[v], 0);

    // Optimality certificate.
    std::vector<std::tuple<std::size_t, std::size_t, std::int64_t>> residual;
    for (std::size_t i = 0; i < inst.edges.size(); ++i) {
      if (flow.residual(ids[i]) > 0)
        residual.emplace_back(inst.edges[i].u, inst.edges[i].v, inst.edges[i].cost);
      if (flow.flowOn(ids[i]) > 0)
        residual.emplace_back(inst.edges[i].v, inst.edges[i].u, -inst.edges[i].cost);
    }
    EXPECT_FALSE(hasNegativeCycle(residual, inst.nodes)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McmfOptimality, ::testing::Range(1, 11));

// --- MCMF vs exhaustive optimum on tiny instances ---------------------------

TEST(McmfExact, MatchesBruteForceAssignment) {
  // 3x3 assignment as a flow problem: compare against explicit min-cost
  // perfect matching by permutation enumeration.
  std::mt19937 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    std::int64_t cost[3][3];
    for (auto& row : cost)
      for (auto& c : row) c = static_cast<std::int64_t>(rng() % 50);

    MinCostFlow flow(8);  // s=0, L=1..3, R=4..6, t=7
    for (std::size_t i = 0; i < 3; ++i) flow.addEdge(0, 1 + i, 1, 0);
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) flow.addEdge(1 + i, 4 + j, 1, cost[i][j]);
    for (std::size_t j = 0; j < 3; ++j) flow.addEdge(4 + j, 7, 1, 0);
    const auto r = flow.run(0, 7);
    ASSERT_EQ(r.flow, 3);

    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    int perm[3] = {0, 1, 2};
    std::sort(perm, perm + 3);
    do {
      best = std::min(best, cost[0][perm[0]] + cost[1][perm[1]] + cost[2][perm[2]]);
    } while (std::next_permutation(perm, perm + 3));
    EXPECT_EQ(r.cost, best) << "trial " << trial;
  }
}

// --- Selection exact dominates greedy across sizes ---------------------------

struct SelectionSize {
  std::size_t clusters;
  std::size_t candidates;
};

class SelectionScaling : public ::testing::TestWithParam<SelectionSize> {};

TEST_P(SelectionScaling, ExactNeverWorseThanGreedy) {
  const auto [k, c] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(7 * k + c));
  for (int trial = 0; trial < 5; ++trial) {
    SelectionProblem p;
    std::vector<std::size_t> all;
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j < c; ++j)
        all.push_back(p.addCandidate(i, -static_cast<double>(rng() % 100) / 100.0));
    for (std::size_t a = 0; a < all.size(); ++a)
      for (std::size_t b = a + 1; b < all.size(); ++b) {
        if (a / c == b / c) continue;  // same cluster
        if (rng() % 3 == 0)
          p.setPairWeight(all[a], all[b], -static_cast<double>(rng() % 100) / 50.0);
      }
    const auto greedy = p.solveGreedy();
    const auto exact = p.solveExact();
    EXPECT_GE(exact.objective, greedy.objective - 1e-9);
    EXPECT_EQ(exact.chosen.size(), k);
    // Every chosen candidate belongs to its cluster slot.
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_GE(exact.chosen[i], i * c);
      EXPECT_LT(exact.chosen[i], (i + 1) * c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SelectionScaling,
                         ::testing::Values(SelectionSize{2, 2}, SelectionSize{3, 3},
                                           SelectionSize{4, 2}, SelectionSize{4, 4},
                                           SelectionSize{6, 3}, SelectionSize{8, 2}));

// --- MST cost is invariant under point permutation ---------------------------

class MstPermutation : public ::testing::TestWithParam<int> {};

TEST_P(MstPermutation, CostIndependentOfInputOrder) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::vector<geom::Point> pts;
  const std::size_t n = 3 + rng() % 10;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({static_cast<std::int32_t>(rng() % 40),
                   static_cast<std::int32_t>(rng() % 40)});
  const auto baseline = totalCost(manhattanMst(pts));
  for (int shuffleTrial = 0; shuffleTrial < 5; ++shuffleTrial) {
    std::shuffle(pts.begin(), pts.end(), rng);
    EXPECT_EQ(totalCost(manhattanMst(pts)), baseline);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstPermutation, ::testing::Range(1, 7));

// --- Clique partition invariants over density sweep --------------------------

class CliqueDensity : public ::testing::TestWithParam<int> {};

TEST_P(CliqueDensity, PartitionValidAtAllDensities) {
  const int densityPct = GetParam();
  std::mt19937 rng(static_cast<unsigned>(densityPct + 1));
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + rng() % 24;
    AdjacencyMatrix g(n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (static_cast<int>(rng() % 100) < densityPct) g.addEdge(i, j);
    const auto parts = cliquePartition(g);
    EXPECT_TRUE(isValidCliquePartition(g, parts));
    EXPECT_LE(parts.size(), n);
    EXPECT_GE(parts.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Density, CliqueDensity,
                         ::testing::Values(0, 10, 30, 50, 70, 90, 100));

}  // namespace
}  // namespace pacor::graph
