#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "pacor/escape.hpp"

namespace pacor::core {
namespace {

using geom::Point;

/// Brute-force reference for the escape problem on tiny grids: enumerate
/// every packing of node-disjoint simple paths (valve-neighbor ... pin)
/// and report the lexicographic optimum (max routed count, then min total
/// cell count) -- the exact objective the min-cost max-flow formulation
/// claims (Theorem 1 of the paper).
struct BruteForce {
  const chip::Chip& chip;
  const grid::ObstacleMap& obs;
  std::vector<Point> taps;  // one singleton valve per cluster

  int bestCount = 0;
  std::int64_t bestLength = 0;

  std::unordered_set<Point> usedCells;
  std::unordered_set<Point> usedPins;

  void solve() { recurse(0, 0, 0); }

  void recurse(std::size_t idx, int count, std::int64_t length) {
    if (count > bestCount) {
      bestCount = count;
      bestLength = length;
    } else if (count == bestCount && count > 0 && length < bestLength) {
      bestLength = length;
    }
    if (idx >= taps.size()) return;
    // Option A: leave this cluster unrouted.
    recurse(idx + 1, count, length);
    // Option B: route it along every possible simple path.
    const Point tap = taps[idx];
    obs.grid().forNeighbors(tap, [&](Point start) {
      if (!obs.isFree(start) || usedCells.contains(start)) return;
      extend(idx, count, length, start, 1);
    });
  }

  void extend(std::size_t idx, int count, std::int64_t length, Point cell,
              std::int64_t soFar) {
    if (soFar > 11) return;  // cap: tiny instances only
    usedCells.insert(cell);
    if (isPinCell(cell) && !usedPins.contains(cell)) {
      usedPins.insert(cell);
      recurse(idx + 1, count + 1, length + soFar);
      usedPins.erase(cell);
    }
    obs.grid().forNeighbors(cell, [&](Point next) {
      if (!obs.isFree(next) || usedCells.contains(next)) return;
      extend(idx, count, length, next, soFar + 1);
    });
    usedCells.erase(cell);
  }

  bool isPinCell(Point p) const {
    for (const auto& pin : chip.pins)
      if (pin.pos == p) return true;
    return false;
  }
};

struct Instance {
  chip::Chip chip;
  grid::ObstacleMap obs{grid::Grid(1, 1)};
  std::vector<WorkCluster> clusters;
};

Instance randomTinyInstance(std::mt19937& rng) {
  Instance inst;
  inst.chip.name = "tiny";
  inst.chip.routingGrid = grid::Grid(6, 6);
  // 1-3 pins on the boundary.
  const auto boundary = inst.chip.routingGrid.boundaryCells();
  const std::size_t pinCount = 1 + rng() % 3;
  std::unordered_set<std::size_t> pinIdx;
  while (pinIdx.size() < pinCount) pinIdx.insert(rng() % boundary.size());
  int pinId = 0;
  for (const std::size_t i : pinIdx)
    inst.chip.pins.push_back({pinId++, boundary[i]});
  // 1-3 interior valves.
  const std::size_t valveCount = 1 + rng() % 3;
  std::unordered_set<Point> cells;
  while (cells.size() < valveCount)
    cells.insert({static_cast<std::int32_t>(1 + rng() % 4),
                  static_cast<std::int32_t>(1 + rng() % 4)});
  int vid = 0;
  for (const Point p : cells) {
    std::string seq(4, '0');
    for (int b = 0; b < 3; ++b)
      if ((vid >> b) & 1) seq[static_cast<std::size_t>(b)] = '1';
    inst.chip.valves.push_back({vid++, p, chip::ActivationSequence(seq)});
  }
  // A few obstacle cells.
  for (int k = 0; k < 4; ++k) {
    const Point p{static_cast<std::int32_t>(1 + rng() % 4),
                  static_cast<std::int32_t>(1 + rng() % 4)};
    if (!cells.contains(p)) inst.chip.obstacles.push_back(p);
  }
  std::sort(inst.chip.obstacles.begin(), inst.chip.obstacles.end());
  inst.chip.obstacles.erase(
      std::unique(inst.chip.obstacles.begin(), inst.chip.obstacles.end()),
      inst.chip.obstacles.end());

  inst.obs = inst.chip.makeObstacleMap();
  inst.clusters.resize(inst.chip.valves.size());
  for (std::size_t i = 0; i < inst.clusters.size(); ++i) {
    auto& wc = inst.clusters[i];
    wc.spec.valves = {static_cast<chip::ValveId>(i)};
    wc.net = static_cast<grid::NetId>(i);
    const Point cell = inst.chip.valves[i].pos;
    inst.obs.occupy(std::span<const Point>(&cell, 1), wc.net);
    wc.tap = cell;
    wc.tapCells = {cell};
    wc.internallyRouted = true;
  }
  return inst;
}

class EscapeExactness : public ::testing::TestWithParam<int> {};

TEST_P(EscapeExactness, FlowMatchesBruteForceOptimum) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 6; ++trial) {
    Instance inst = randomTinyInstance(rng);

    // Brute force on a pristine copy of the obstacle map.
    BruteForce brute{inst.chip, inst.obs, {}, 0, 0, {}, {}};
    for (const auto& wc : inst.clusters) brute.taps.push_back(wc.tap);
    brute.solve();

    std::vector<WorkCluster*> ptrs;
    for (auto& wc : inst.clusters) ptrs.push_back(&wc);
    const auto outcome = escapeRoute(inst.chip, inst.obs, ptrs);

    // The capped brute force is a lower bound; the flow must never be
    // beaten by it, and when every flow path fits under the enumeration
    // cap the two optima coincide exactly.
    EXPECT_GE(outcome.routedCount, brute.bestCount)
        << "seed " << GetParam() << " trial " << trial;
    std::int64_t total = 0;
    std::int64_t longest = 0;
    for (const auto& wc : inst.clusters) {
      total += route::pathLength(wc.escapePath);
      longest = std::max(longest, route::pathLength(wc.escapePath));
    }
    if (longest <= 11) {
      EXPECT_EQ(outcome.routedCount, brute.bestCount)
          << "seed " << GetParam() << " trial " << trial;
      if (outcome.routedCount == brute.bestCount && brute.bestCount > 0) {
        EXPECT_EQ(total, brute.bestLength)
            << "seed " << GetParam() << " trial " << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscapeExactness, ::testing::Range(1, 7));

}  // namespace
}  // namespace pacor::core
