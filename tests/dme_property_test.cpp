#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "dme/candidate_tree.hpp"
#include "dme/merging.hpp"
#include "dme/topology.hpp"
#include "grid/obstacle_map.hpp"

namespace pacor::dme {
namespace {

using geom::Point;

std::vector<Point> randomSinks(std::mt19937& rng, std::size_t n, std::int32_t size,
                               std::int32_t margin) {
  std::unordered_set<Point> set;
  while (set.size() < n) {
    set.insert({margin + static_cast<std::int32_t>(
                             rng() % static_cast<unsigned>(size - 2 * margin)),
                margin + static_cast<std::int32_t>(
                             rng() % static_cast<unsigned>(size - 2 * margin))});
  }
  return {set.begin(), set.end()};
}

// --- Merge plan invariants over random sink sets ---------------------------

struct MergeCase {
  int seed;
  std::size_t sinks;
};

class MergePlanProperty : public ::testing::TestWithParam<MergeCase> {};

TEST_P(MergePlanProperty, ZeroSkewTargetsUpToFlooring) {
  const auto [seed, n] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed));
  for (int trial = 0; trial < 10; ++trial) {
    const auto sinks = randomSinks(rng, n, 48, 2);
    const Topology topo = balancedBipartition(sinks);
    ASSERT_TRUE(topo.coversAllSinks(n));
    const MergePlan plan = computeMergePlan(topo, sinks);

    // Per-sink target distance = sum of edge targets up the tree; the
    // zero-skew recurrence guarantees all agree with the root delay up to
    // the accumulated integer-flooring slack.
    std::vector<int> parent(topo.nodes.size(), -1);
    std::vector<std::int64_t> edgeToParent(topo.nodes.size(), 0);
    for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
      const TopologyNode& t = topo.nodes[i];
      if (t.isLeaf()) continue;
      parent[static_cast<std::size_t>(t.left)] = static_cast<int>(i);
      parent[static_cast<std::size_t>(t.right)] = static_cast<int>(i);
      edgeToParent[static_cast<std::size_t>(t.left)] = plan.nodes[i].edgeLeft;
      edgeToParent[static_cast<std::size_t>(t.right)] = plan.nodes[i].edgeRight;
    }
    const std::int64_t rootDelay =
        plan.nodes[static_cast<std::size_t>(topo.root)].delay;
    const std::int64_t slackBound = plan.maxSkewSlack(topo);
    for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
      if (!topo.nodes[i].isLeaf()) continue;
      std::int64_t pathTarget = 0;
      for (int v = static_cast<int>(i); v != -1; v = parent[static_cast<std::size_t>(v)])
        pathTarget += edgeToParent[static_cast<std::size_t>(v)];
      EXPECT_LE(rootDelay - pathTarget, slackBound + 1);
      EXPECT_GE(rootDelay - pathTarget, 0);
    }

    // Regions must be non-empty and wire accounting non-negative.
    for (const MergeNode& m : plan.nodes) EXPECT_FALSE(m.region.empty());
    EXPECT_GE(plan.totalTargetWire, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MergePlanProperty,
                         ::testing::Values(MergeCase{1, 2}, MergeCase{2, 3},
                                           MergeCase{3, 4}, MergeCase{4, 5},
                                           MergeCase{5, 6}, MergeCase{6, 8},
                                           MergeCase{7, 12}));

// --- Candidate-tree invariants over random sink sets ------------------------

class CandidateProperty : public ::testing::TestWithParam<MergeCase> {};

TEST_P(CandidateProperty, EmbeddingsAreConsistent) {
  const auto [seed, n] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed + 100));
  const grid::ObstacleMap obs{grid::Grid(48, 48)};
  for (int trial = 0; trial < 5; ++trial) {
    const auto sinks = randomSinks(rng, n, 48, 2);
    const auto cands = buildCandidateTrees(obs, 0, sinks, {.count = 4});
    ASSERT_FALSE(cands.empty());
    for (const auto& c : cands) {
      ASSERT_EQ(c.embed.size(), c.topo.nodes.size());
      // Leaves at sinks, everything in bounds.
      for (std::size_t i = 0; i < c.topo.nodes.size(); ++i) {
        const Point p = c.embed[i];
        EXPECT_TRUE(obs.grid().inBounds(p)) << p.str();
        if (c.topo.nodes[i].isLeaf()) {
          EXPECT_EQ(p, sinks[static_cast<std::size_t>(c.topo.nodes[i].sink)]);
        }
      }
      // Mismatch estimate is exactly max-min of the full-path estimates.
      const auto paths = c.sinkToRootPaths();
      std::int64_t lo = std::numeric_limits<std::int64_t>::max();
      std::int64_t hi = 0;
      for (const auto& path : paths) {
        std::int64_t len = 0;
        for (std::size_t k = 0; k + 1 < path.size(); ++k)
          len += geom::manhattan(c.embed[static_cast<std::size_t>(path[k])],
                                 c.embed[static_cast<std::size_t>(path[k + 1])]);
        lo = std::min(lo, len);
        hi = std::max(hi, len);
      }
      EXPECT_EQ(c.mismatchEstimate, hi - lo);
      // The estimate may be large when subtree delays are imbalanced (the
      // DME detour-wire case: targets exceed embedded distances and the
      // final detour stage supplies the slack), but never exceeds the
      // longest full path itself.
      EXPECT_LE(c.mismatchEstimate, hi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CandidateProperty,
                         ::testing::Values(MergeCase{1, 2}, MergeCase{2, 3},
                                           MergeCase{3, 4}, MergeCase{4, 5},
                                           MergeCase{5, 7}));

TEST(CandidateProperty, ObstacleFieldsNeverPlaceNodesOnBlockages) {
  std::mt19937 rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    grid::ObstacleMap obs{grid::Grid(40, 40)};
    for (int k = 0; k < 150; ++k)
      obs.addObstacle({static_cast<std::int32_t>(rng() % 40),
                       static_cast<std::int32_t>(rng() % 40)});
    std::vector<Point> sinks;
    while (sinks.size() < 4) {
      const Point p{static_cast<std::int32_t>(2 + rng() % 36),
                    static_cast<std::int32_t>(2 + rng() % 36)};
      if (obs.isFree(p) &&
          std::find(sinks.begin(), sinks.end(), p) == sinks.end())
        sinks.push_back(p);
    }
    const auto cands = buildCandidateTrees(obs, 0, sinks, {.count = 3});
    for (const auto& c : cands)
      for (std::size_t i = 0; i < c.topo.nodes.size(); ++i)
        if (!c.topo.nodes[i].isLeaf()) {
          EXPECT_FALSE(obs.isObstacle(c.embed[i])) << c.embed[i].str();
        }
  }
}

}  // namespace
}  // namespace pacor::dme
