// Determinism contract of the parallel routing layer: routeChip with any
// jobs value must produce a result bit-identical to the serial reference
// (jobs = 1) -- same cluster decomposition, same routed geometry, same
// lengths -- and the parallel result must independently pass DRC.

#include <gtest/gtest.h>

#include "chip/generator.hpp"
#include "pacor/drc.hpp"
#include "pacor/pipeline.hpp"

namespace pacor::core {
namespace {

void expectIdentical(const PacorResult& serial, const PacorResult& parallel) {
  EXPECT_EQ(serial.complete, parallel.complete);
  EXPECT_EQ(serial.totalChannelLength, parallel.totalChannelLength);
  EXPECT_EQ(serial.matchedChannelLength, parallel.matchedChannelLength);
  EXPECT_EQ(serial.matchedClusterCount, parallel.matchedClusterCount);
  EXPECT_EQ(serial.declusteredCount, parallel.declusteredCount);
  EXPECT_EQ(serial.negotiationIterations, parallel.negotiationIterations);
  ASSERT_EQ(serial.clusters.size(), parallel.clusters.size());
  for (std::size_t i = 0; i < serial.clusters.size(); ++i) {
    SCOPED_TRACE(i);
    const RoutedCluster& a = serial.clusters[i];
    const RoutedCluster& b = parallel.clusters[i];
    EXPECT_EQ(a.valves, b.valves);
    EXPECT_EQ(a.pin, b.pin);
    EXPECT_EQ(a.tap, b.tap);
    EXPECT_EQ(a.routed, b.routed);
    EXPECT_EQ(a.lengthMatched, b.lengthMatched);
    EXPECT_EQ(a.treePaths, b.treePaths);
    EXPECT_EQ(a.escapePath, b.escapePath);
    EXPECT_EQ(a.valveLengths, b.valveLengths);
    EXPECT_EQ(a.totalLength, b.totalLength);
  }
}

void checkDesign(const chip::GeneratorParams& params, const PacorConfig& base) {
  SCOPED_TRACE(params.name);
  const chip::Chip chip = chip::generateChip(params);

  PacorConfig serialCfg = base;
  serialCfg.jobs = 1;
  const PacorResult serial = routeChip(chip, serialCfg);

  for (const int jobs : {2, 4}) {
    SCOPED_TRACE(jobs);
    PacorConfig parallelCfg = base;
    parallelCfg.jobs = jobs;
    const PacorResult parallel = routeChip(chip, parallelCfg);
    expectIdentical(serial, parallel);
    EXPECT_TRUE(checkSolution(chip, parallel).clean());
  }
}

TEST(ParallelRouting, SyntheticDesignsMatchSerial) {
  checkDesign(chip::s2Params(), pacorDefaultConfig());
  checkDesign(chip::s3Params(), pacorDefaultConfig());
  checkDesign(chip::s4Params(), pacorDefaultConfig());
  checkDesign(chip::s5Params(), pacorDefaultConfig());
}

TEST(ParallelRouting, RealScaleDesignMatchesSerial) {
  checkDesign(chip::chip2Params(), pacorDefaultConfig());
}

TEST(ParallelRouting, VariantsMatchSerial) {
  checkDesign(chip::s4Params(), withoutSelectionConfig());
  checkDesign(chip::s4Params(), detourFirstConfig());
}

TEST(ParallelRouting, JobsZeroResolvesToHardwareConcurrency) {
  const chip::Chip chip = chip::generateChip(chip::s3Params());
  PacorConfig serialCfg = pacorDefaultConfig();
  serialCfg.jobs = 1;
  PacorConfig autoCfg = pacorDefaultConfig();
  autoCfg.jobs = 0;
  const PacorResult serial = routeChip(chip, serialCfg);
  const PacorResult parallel = routeChip(chip, autoCfg);
  EXPECT_GE(parallel.parallelJobs, 1);
  expectIdentical(serial, parallel);
}

}  // namespace
}  // namespace pacor::core
