#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <stdexcept>

#include "graph/adjacency.hpp"
#include "graph/clique_partition.hpp"
#include "graph/dsu.hpp"
#include "graph/max_weight_clique.hpp"
#include "graph/min_cost_flow.hpp"
#include "graph/mst.hpp"
#include "graph/selection.hpp"
#include "graph/steiner.hpp"

namespace pacor::graph {
namespace {

TEST(Dsu, UniteAndFind) {
  Dsu dsu(6);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_FALSE(dsu.unite(1, 0));
  EXPECT_TRUE(dsu.connected(0, 1));
  EXPECT_FALSE(dsu.connected(0, 2));
  EXPECT_TRUE(dsu.unite(1, 3));
  EXPECT_TRUE(dsu.connected(0, 2));
  EXPECT_EQ(dsu.setSize(3), 4u);
  EXPECT_EQ(dsu.setSize(5), 1u);
}

TEST(Mst, ManhattanPrimSimple) {
  const std::vector<geom::Point> pts{{0, 0}, {0, 3}, {4, 0}};
  const auto tree = manhattanMst(pts);
  ASSERT_EQ(tree.size(), 2u);
  EXPECT_EQ(totalCost(tree), 7);
}

TEST(Mst, SinglePointAndEmpty) {
  EXPECT_TRUE(manhattanMst({}).empty());
  const std::vector<geom::Point> one{{5, 5}};
  EXPECT_TRUE(manhattanMst(one).empty());
}

TEST(Mst, MatchesKruskalOnRandomPoints) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<geom::Point> pts;
    const int n = 2 + static_cast<int>(rng() % 9);
    for (int i = 0; i < n; ++i)
      pts.push_back({static_cast<std::int32_t>(rng() % 50),
                     static_cast<std::int32_t>(rng() % 50)});
    std::vector<WeightedEdge> edges;
    for (std::size_t i = 0; i < pts.size(); ++i)
      for (std::size_t j = i + 1; j < pts.size(); ++j)
        edges.push_back({i, j, geom::manhattan(pts[i], pts[j])});
    const auto prim = manhattanMst(pts);
    const auto kruskal = kruskalMst(pts.size(), edges);
    EXPECT_EQ(totalCost(prim), totalCost(kruskal)) << "trial " << trial;
  }
}

TEST(Kruskal, DisconnectedGraphGivesForest) {
  std::vector<WeightedEdge> edges{{0, 1, 5}, {2, 3, 7}};
  const auto forest = kruskalMst(4, edges);
  EXPECT_EQ(forest.size(), 2u);
}

TEST(Adjacency, EdgesAndDegree) {
  AdjacencyMatrix g(70);  // spans multiple 64-bit words
  g.addEdge(0, 69);
  g.addEdge(0, 33);
  EXPECT_TRUE(g.hasEdge(69, 0));
  EXPECT_TRUE(g.hasEdge(0, 33));
  EXPECT_FALSE(g.hasEdge(1, 2));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(69), 1u);
}

TEST(CliquePartition, CompleteGraphIsOneClique) {
  AdjacencyMatrix g(5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j) g.addEdge(i, j);
  const auto parts = cliquePartition(g);
  EXPECT_EQ(parts.size(), 1u);
  EXPECT_TRUE(isValidCliquePartition(g, parts));
}

TEST(CliquePartition, EmptyGraphIsAllSingletons) {
  AdjacencyMatrix g(4);
  const auto parts = cliquePartition(g);
  EXPECT_EQ(parts.size(), 4u);
  EXPECT_TRUE(isValidCliquePartition(g, parts));
}

TEST(CliquePartition, RandomGraphsAreValidPartitions) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 3 + rng() % 20;
    AdjacencyMatrix g(n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (rng() % 3 != 0) g.addEdge(i, j);
    EXPECT_TRUE(isValidCliquePartition(g, cliquePartition(g)));
  }
}

TEST(CliquePartitionValidate, RejectsNonClique) {
  AdjacencyMatrix g(3);
  g.addEdge(0, 1);
  EXPECT_FALSE(isValidCliquePartition(g, {{0, 1, 2}}));
  EXPECT_FALSE(isValidCliquePartition(g, {{0, 1}}));        // misses vertex 2
  EXPECT_FALSE(isValidCliquePartition(g, {{0, 1}, {1, 2}}));  // 1 twice + non-edge
  EXPECT_TRUE(isValidCliquePartition(g, {{0, 1}, {2}}));
}

TEST(MaxWeightClique, TriangleBeatsHeavyEdge) {
  // Triangle {0,1,2} of weight 3 vs pair {3,4} of weight 2+2=4... the
  // solver must weigh, not count.
  AdjacencyMatrix g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 2);
  g.addEdge(3, 4);
  const std::vector<double> w{1, 1, 1, 2, 2};
  const auto res = maxWeightClique(g, w);
  EXPECT_DOUBLE_EQ(res.weight, 4.0);
  EXPECT_EQ(res.vertices, (std::vector<std::size_t>{3, 4}));
}

TEST(MaxWeightClique, ExactBeatsGreedyOrMatchesOnRandom) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 4 + rng() % 10;
    AdjacencyMatrix g(n);
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) w[i] = 0.1 + static_cast<double>(rng() % 100) / 10.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (rng() % 2) g.addEdge(i, j);
    const auto exact = maxWeightClique(g, w);
    const auto greedy = maxWeightCliqueGreedy(g, w);
    EXPECT_GE(exact.weight, greedy.weight - 1e-9);
    // Exact result must be a clique.
    for (std::size_t i = 0; i < exact.vertices.size(); ++i)
      for (std::size_t j = i + 1; j < exact.vertices.size(); ++j)
        EXPECT_TRUE(g.hasEdge(exact.vertices[i], exact.vertices[j]));
  }
}

TEST(Selection, SingleClusterPicksBestCandidate) {
  SelectionProblem p;
  p.addCandidate(0, -0.5);
  p.addCandidate(0, -0.1);
  p.addCandidate(0, -0.9);
  const auto sol = p.solveExact();
  EXPECT_TRUE(sol.exact);
  EXPECT_EQ(sol.chosen, (std::vector<std::size_t>{1}));
  EXPECT_DOUBLE_EQ(sol.objective, -0.1);
}

TEST(Selection, PairwisePenaltyChangesChoice) {
  SelectionProblem p;
  // Cluster 0: candidates a0 (0), a1 (-0.05). Cluster 1: b0 (0).
  const auto a0 = p.addCandidate(0, 0.0);
  const auto a1 = p.addCandidate(0, -0.05);
  const auto b0 = p.addCandidate(1, 0.0);
  (void)a1;
  p.setPairWeight(a0, b0, -1.0);  // a0 overlaps b0 heavily
  const auto sol = p.solveExact();
  EXPECT_TRUE(sol.exact);
  EXPECT_EQ(sol.chosen[0], 1u);  // prefers the slightly worse, non-overlapping one
  EXPECT_DOUBLE_EQ(sol.objective, -0.05);
}

TEST(Selection, ExactMatchesBruteForceOnRandom) {
  std::mt19937 rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    SelectionProblem p;
    const std::size_t clusters = 2 + rng() % 3;
    std::vector<std::vector<std::size_t>> ids(clusters);
    for (std::size_t c = 0; c < clusters; ++c) {
      const std::size_t k = 1 + rng() % 3;
      for (std::size_t i = 0; i < k; ++i)
        ids[c].push_back(p.addCandidate(c, -static_cast<double>(rng() % 100) / 100.0));
    }
    for (std::size_t c1 = 0; c1 < clusters; ++c1)
      for (std::size_t c2 = c1 + 1; c2 < clusters; ++c2)
        for (const auto x : ids[c1])
          for (const auto y : ids[c2])
            if (rng() % 2) p.setPairWeight(x, y, -static_cast<double>(rng() % 100) / 50.0);

    const auto sol = p.solveExact();
    ASSERT_TRUE(sol.exact);

    // Brute force.
    double best = -1e18;
    std::vector<std::size_t> pick(clusters, 0);
    const std::function<void(std::size_t, std::vector<std::size_t>&)> rec =
        [&](std::size_t c, std::vector<std::size_t>& cur) {
          if (c == clusters) {
            best = std::max(best, p.objective(cur));
            return;
          }
          for (const auto id : ids[c]) {
            cur.push_back(id);
            rec(c + 1, cur);
            cur.pop_back();
          }
        };
    std::vector<std::size_t> cur;
    rec(0, cur);
    EXPECT_NEAR(sol.objective, best, 1e-9) << "trial " << trial;
  }
}

TEST(Selection, GreedyIsValidAssignment) {
  SelectionProblem p;
  p.addCandidate(0, -0.3);
  p.addCandidate(0, -0.4);
  p.addCandidate(1, -0.1);
  p.addCandidate(2, -0.2);
  p.addCandidate(2, -0.25);
  const auto sol = p.solveGreedy();
  ASSERT_EQ(sol.chosen.size(), 3u);
  EXPECT_LE(sol.objective, 0.0);
}

TEST(MinCostFlow, SimplePath) {
  MinCostFlow f(4);
  f.addEdge(0, 1, 2, 1);
  f.addEdge(1, 2, 2, 1);
  f.addEdge(2, 3, 2, 1);
  const auto r = f.run(0, 3);
  EXPECT_EQ(r.flow, 2);
  EXPECT_EQ(r.cost, 6);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  MinCostFlow f(4);
  const auto cheap1 = f.addEdge(0, 1, 1, 1);
  f.addEdge(1, 3, 1, 1);
  const auto dear1 = f.addEdge(0, 2, 1, 5);
  f.addEdge(2, 3, 1, 5);
  const auto r = f.run(0, 3, 1);
  EXPECT_EQ(r.flow, 1);
  EXPECT_EQ(r.cost, 2);
  EXPECT_EQ(f.flowOn(cheap1), 1);
  EXPECT_EQ(f.flowOn(dear1), 0);
}

TEST(MinCostFlow, MaxFlowThenMinCost) {
  // Two units must flow; the optimum uses both paths even though one is
  // expensive (lexicographic max-flow before min-cost).
  MinCostFlow f(4);
  f.addEdge(0, 1, 1, 1);
  f.addEdge(1, 3, 1, 1);
  f.addEdge(0, 2, 1, 10);
  f.addEdge(2, 3, 1, 10);
  const auto r = f.run(0, 3);
  EXPECT_EQ(r.flow, 2);
  EXPECT_EQ(r.cost, 22);
}

TEST(MinCostFlow, ReroutesThroughResidualEdges) {
  // Classic residual test: greedy shortest path would block the second
  // unit; successive shortest paths must undo it via the reverse arc.
  MinCostFlow f(6);
  // s=0, t=5. Direct middle edge is tempting but must be shared.
  f.addEdge(0, 1, 1, 1);
  f.addEdge(0, 2, 1, 2);
  f.addEdge(1, 3, 1, 1);
  f.addEdge(1, 4, 1, 3);
  f.addEdge(2, 3, 1, 1);
  f.addEdge(3, 5, 1, 1);
  f.addEdge(4, 5, 1, 1);
  const auto r = f.run(0, 5);
  EXPECT_EQ(r.flow, 2);
  EXPECT_EQ(r.cost, 3 + 6);  // 0-1-3-5 (3) and 0-2-3... rerouted: total 9
}

TEST(MinCostFlow, RespectsMaxFlowCap) {
  MinCostFlow f(2);
  f.addEdge(0, 1, 10, 1);
  const auto r = f.run(0, 1, 3);
  EXPECT_EQ(r.flow, 3);
  EXPECT_EQ(r.cost, 3);
}

TEST(MinCostFlow, DisconnectedGivesZero) {
  MinCostFlow f(3);
  f.addEdge(0, 1, 1, 1);
  const auto r = f.run(0, 2);
  EXPECT_EQ(r.flow, 0);
  EXPECT_EQ(r.cost, 0);
}

TEST(MinCostFlow, AccumulatesAcrossRuns) {
  MinCostFlow f(2);
  f.addEdge(0, 1, 5, 2);
  const auto r1 = f.run(0, 1, 2);
  const auto r2 = f.run(0, 1, 2);
  EXPECT_EQ(r1.flow + r2.flow, 4);
  EXPECT_EQ(f.flowOn(0), 4);
  EXPECT_EQ(f.residual(0), 1);
}


TEST(CliquePartitionExact, OptimalOnKnownGraphs) {
  // 5-cycle: needs 3 cliques (edges can only pair adjacent vertices).
  AdjacencyMatrix c5(5);
  for (std::size_t i = 0; i < 5; ++i) c5.addEdge(i, (i + 1) % 5);
  const auto parts = cliquePartitionExact(c5);
  EXPECT_TRUE(isValidCliquePartition(c5, parts));
  EXPECT_EQ(parts.size(), 3u);

  // Complete graph: one clique; empty graph: n cliques.
  AdjacencyMatrix k4(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = i + 1; j < 4; ++j) k4.addEdge(i, j);
  EXPECT_EQ(cliquePartitionExact(k4).size(), 1u);
  AdjacencyMatrix e3(3);
  EXPECT_EQ(cliquePartitionExact(e3).size(), 3u);
}

TEST(CliquePartitionExact, NeverWorseThanGreedyOnRandom) {
  std::mt19937 rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng() % 11;
    AdjacencyMatrix g(n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (rng() % 2) g.addEdge(i, j);
    const auto exact = cliquePartitionExact(g);
    const auto greedy = cliquePartition(g);
    EXPECT_TRUE(isValidCliquePartition(g, exact));
    EXPECT_LE(exact.size(), greedy.size()) << "trial " << trial;
  }
}

TEST(CliquePartitionExact, AutoSwitchesToGreedyAboveLimit) {
  AdjacencyMatrix g(24);
  for (std::size_t i = 0; i + 1 < 24; i += 2) g.addEdge(i, i + 1);
  const auto parts = cliquePartitionAuto(g, 16);
  EXPECT_TRUE(isValidCliquePartition(g, parts));
}

// Regression: cliquePartitionExact used to silently fall back to the
// greedy heuristic past the subset-DP capacity, so a caller asking for
// the exact optimum could get a non-optimal partition with no warning.
// It must refuse instead.
TEST(CliquePartitionExact, ThrowsPastDpCapacity) {
  AdjacencyMatrix g(kMaxExactCliqueVertices + 1);
  for (std::size_t i = 0; i + 1 < g.size(); i += 2) g.addEdge(i, i + 1);
  EXPECT_THROW(cliquePartitionExact(g), std::invalid_argument);

  // At the capacity boundary the exact DP still runs and is optimal:
  // a perfect matching on 20 vertices needs exactly 10 cliques.
  AdjacencyMatrix boundary(kMaxExactCliqueVertices);
  for (std::size_t i = 0; i + 1 < boundary.size(); i += 2)
    boundary.addEdge(i, i + 1);
  const auto parts = cliquePartitionExact(boundary);
  EXPECT_TRUE(isValidCliquePartition(boundary, parts));
  EXPECT_EQ(parts.size(), kMaxExactCliqueVertices / 2);
}

// Auto clamps the caller's exact limit to the DP capacity instead of
// forwarding an oversized graph into the throwing exact path.
TEST(CliquePartitionExact, AutoClampsOversizedExactLimit) {
  AdjacencyMatrix g(kMaxExactCliqueVertices + 4);
  for (std::size_t i = 0; i + 1 < g.size(); i += 2) g.addEdge(i, i + 1);
  const auto parts = cliquePartitionAuto(g, /*exactLimit=*/100);
  EXPECT_TRUE(isValidCliquePartition(g, parts));
}


TEST(Steiner, LShapedTripleGainsACorner) {
  // Classic: three points in an L; the Steiner point at the corner saves
  // exactly min(dx, dy)... here MST = 8 + 8 = 16, RSMT = 12.
  const std::vector<geom::Point> pts{{0, 0}, {8, 0}, {0, 4}};
  const auto tree = iteratedOneSteiner(pts);
  EXPECT_EQ(mstCost(pts), 12);  // MST already optimal here (shares (0,0))
  EXPECT_LE(tree.cost, mstCost(pts));

  // A cross: 4 points around a center; one Steiner point saves a lot.
  const std::vector<geom::Point> cross{{0, 5}, {10, 5}, {5, 0}, {5, 10}};
  const auto crossTree = iteratedOneSteiner(cross);
  EXPECT_EQ(crossTree.cost, 20);  // star through (5,5)
  EXPECT_LT(crossTree.cost, mstCost(cross));
  ASSERT_GE(crossTree.steinerPoints.size(), 1u);
}

TEST(Steiner, NeverWorseThanMstOnRandom) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<geom::Point> pts;
    const std::size_t n = 3 + rng() % 7;
    for (std::size_t i = 0; i < n; ++i)
      pts.push_back({static_cast<std::int32_t>(rng() % 30),
                     static_cast<std::int32_t>(rng() % 30)});
    const auto tree = iteratedOneSteiner(pts);
    EXPECT_LE(tree.cost, mstCost(pts)) << "trial " << trial;
    // The tree spans terminals + steiner points.
    EXPECT_EQ(tree.edges.size() + 1, pts.size() + tree.steinerPoints.size());
  }
}

TEST(Steiner, DegenerateInputs) {
  EXPECT_EQ(iteratedOneSteiner(std::vector<geom::Point>{}).cost, 0);
  EXPECT_EQ(iteratedOneSteiner(std::vector<geom::Point>{{3, 3}}).cost, 0);
  const std::vector<geom::Point> two{{0, 0}, {5, 7}};
  EXPECT_EQ(iteratedOneSteiner(two).cost, 12);
}

}  // namespace
}  // namespace pacor::graph
