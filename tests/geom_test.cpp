#include <gtest/gtest.h>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "geom/tilted.hpp"

namespace pacor::geom {
namespace {

TEST(Point, ArithmeticAndOrder) {
  const Point a{2, 3};
  const Point b{-1, 5};
  EXPECT_EQ((a + b), (Point{1, 8}));
  EXPECT_EQ((a - b), (Point{3, -2}));
  EXPECT_EQ((a * 3), (Point{6, 9}));
  EXPECT_LT(a, b);  // y-major ordering
  EXPECT_LT((Point{1, 3}), a);
}

TEST(Point, ManhattanAndChebyshev) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({-2, -2}, {2, 2}), 8);
  EXPECT_EQ(chebyshev({0, 0}, {3, 4}), 4);
  EXPECT_EQ(chebyshev({5, 5}, {5, 5}), 0);
}

TEST(Point, ParityDefinition) {
  EXPECT_EQ(parity({0, 0}), 0);
  EXPECT_EQ(parity({1, 0}), 1);
  EXPECT_EQ(parity({-1, 0}), 1);
  EXPECT_EQ(parity({-3, -5}), 0);
}

TEST(Point, HashDistinguishesNeighbors) {
  const std::hash<Point> h;
  EXPECT_NE(h({0, 0}), h({0, 1}));
  EXPECT_NE(h({0, 0}), h({1, 0}));
  EXPECT_EQ(h({7, 9}), h({7, 9}));
}

TEST(Rect, BasicGeometry) {
  const Rect r = Rect::fromCorners({5, 1}, {2, 4});
  EXPECT_EQ(r.lo, (Point{2, 1}));
  EXPECT_EQ(r.hi, (Point{5, 4}));
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.area(), 16);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains({3, 2}));
  EXPECT_FALSE(r.contains({6, 2}));
}

TEST(Rect, EmptyAndDegenerate) {
  const Rect empty{{2, 2}, {1, 1}};
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.area(), 0);
  const Rect point = Rect::fromPoint({3, 3});
  EXPECT_EQ(point.area(), 1);
  EXPECT_TRUE(point.contains({3, 3}));
}

TEST(Rect, UnionAndIntersection) {
  const Rect a{{0, 0}, {4, 4}};
  const Rect b{{3, 3}, {6, 7}};
  const Rect u = a.unionWith(b);
  EXPECT_EQ(u, (Rect{{0, 0}, {6, 7}}));
  const Rect i = a.intersectWith(b);
  EXPECT_EQ(i, (Rect{{3, 3}, {4, 4}}));
  EXPECT_EQ(i.area(), 4);
  const Rect disjoint = a.intersectWith({{10, 10}, {11, 11}});
  EXPECT_TRUE(disjoint.empty());
}

TEST(Rect, UnionWithEmptyIsIdentity) {
  const Rect a{{1, 1}, {2, 2}};
  const Rect empty{{5, 5}, {4, 4}};
  EXPECT_EQ(a.unionWith(empty), a);
  EXPECT_EQ(empty.unionWith(a), a);
}

TEST(Rect, ClampAndDistance) {
  const Rect r{{2, 2}, {5, 5}};
  EXPECT_EQ(r.clamp({0, 3}), (Point{2, 3}));
  EXPECT_EQ(r.clamp({3, 3}), (Point{3, 3}));
  EXPECT_EQ(r.manhattanTo({0, 0}), 4);
  EXPECT_EQ(r.manhattanTo({3, 4}), 0);
  EXPECT_EQ(r.manhattanTo({7, 5}), 2);
}

TEST(Rect, Inflated) {
  const Rect r = Rect::fromPoint({3, 3}).inflated(2);
  EXPECT_EQ(r, (Rect{{1, 1}, {5, 5}}));
}

TEST(Tilted, RoundTrip) {
  for (std::int32_t x = -5; x <= 5; ++x)
    for (std::int32_t y = -5; y <= 5; ++y) {
      const Point t = toTilted({x, y});
      EXPECT_TRUE(tiltedOnLattice(t));
      EXPECT_EQ(fromTilted(t), (Point{x, y}));
    }
}

TEST(Tilted, ManhattanBecomesChebyshev) {
  const Point a{3, -2};
  const Point b{-1, 7};
  EXPECT_EQ(manhattan(a, b), chebyshev(toTilted(a), toTilted(b)));
}

TEST(Tilted, BallMapsToSquare) {
  // All points at Manhattan distance <= 2 from origin lie in the tilted
  // square of Chebyshev radius 2, and vice versa for lattice images.
  const TiltedRect square = TiltedRect::fromXY({0, 0}).inflated(2);
  for (std::int32_t x = -4; x <= 4; ++x)
    for (std::int32_t y = -4; y <= 4; ++y) {
      const bool inBall = manhattan({0, 0}, {x, y}) <= 2;
      EXPECT_EQ(square.containsXY({x, y}), inBall) << x << ',' << y;
    }
}

TEST(TiltedRect, GapMatchesPointDistances) {
  const TiltedRect a = TiltedRect::fromXY({0, 0});
  const TiltedRect b = TiltedRect::fromXY({5, 3});
  EXPECT_EQ(chebyshevGap(a, b), manhattan({0, 0}, {5, 3}));
  EXPECT_EQ(chebyshevGap(a, a), 0);
}

TEST(TiltedRect, InflateIntersectIsMergeRegion) {
  // Two points at Manhattan distance 6; inflating by 3+3 must meet in a
  // non-empty region whose every lattice point is equidistant-feasible.
  const TiltedRect a = TiltedRect::fromXY({0, 0});
  const TiltedRect b = TiltedRect::fromXY({6, 0});
  const TiltedRect m = a.inflated(3).intersectWith(b.inflated(3));
  ASSERT_FALSE(m.empty());
  for (const Point p : m.latticePointsXY(64)) {
    EXPECT_LE(manhattan(p, {0, 0}), 3);
    EXPECT_LE(manhattan(p, {6, 0}), 3);
  }
}

TEST(TiltedRect, LatticePointsRespectParityFilter) {
  const TiltedRect r{{0, 0}, {4, 4}};
  const auto pts = r.latticePointsXY(1000);
  ASSERT_FALSE(pts.empty());
  for (const Point p : pts) {
    const Point t = toTilted(p);
    EXPECT_TRUE(r.containsTilted(t));
  }
}

TEST(TiltedRect, LatticePointsCapRespected) {
  const TiltedRect r{{0, 0}, {20, 20}};
  EXPECT_LE(r.latticePointsXY(5).size(), 5u);
  EXPECT_EQ(r.latticePointsXY(0).size(), 0u);
}

TEST(TiltedRect, ChebyshevToAndClamp) {
  const TiltedRect r{{0, 0}, {4, 2}};
  EXPECT_EQ(r.chebyshevTo({2, 1}), 0);
  EXPECT_EQ(r.chebyshevTo({8, 1}), 4);
  EXPECT_EQ(r.clampTilted({8, 1}), (Point{4, 1}));
}

TEST(TiltedRect, DegenerateDetection) {
  EXPECT_TRUE((TiltedRect{{1, 0}, {1, 5}}).degenerate());
  EXPECT_TRUE((TiltedRect{{1, 2}, {1, 2}}).isPoint());
  EXPECT_FALSE((TiltedRect{{0, 0}, {2, 2}}).degenerate());
  EXPECT_TRUE((TiltedRect{{3, 0}, {1, 5}}).empty());
}

TEST(TiltedRect, SnapLatticeReturnsLatticePoint) {
  const TiltedRect r{{0, 0}, {5, 5}};
  for (std::int32_t u = -2; u < 8; ++u)
    for (std::int32_t v = -2; v < 8; ++v) {
      const Point p = r.snapLatticeXY({u, v});
      const Point t = toTilted(p);
      EXPECT_TRUE(tiltedOnLattice(t));
    }
}

}  // namespace
}  // namespace pacor::geom
