// Tests for the tracing + metrics subsystem (src/trace): registry
// semantics, zero-emission when disabled, span coverage of the five
// pipeline stages, laminar per-thread nesting of parallel traces with
// unchanged routed output, and the Chrome trace_event JSON shape.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace pacor {
namespace {

/// Two hand-placed length-matched pairs on a 24x24 die with four edge
/// pins: small enough to route in milliseconds, rich enough to exercise
/// every pipeline stage.
chip::Chip makeChip() {
  chip::Chip c;
  c.name = "trace-fixture";
  c.routingGrid = grid::Grid(24, 24);
  c.delta = 1;
  c.valves = {{0, {6, 6}, chip::ActivationSequence("01")},
              {1, {6, 10}, chip::ActivationSequence("01")},
              {2, {16, 16}, chip::ActivationSequence("10")},
              {3, {16, 12}, chip::ActivationSequence("10")}};
  c.pins = {{0, {0, 8}}, {1, {23, 14}}, {2, {8, 0}}, {3, {23, 0}}};
  c.givenClusters = {{{0, 1}, true}, {{2, 3}, true}};
  return c;
}

std::vector<std::string> names(const std::vector<trace::Event>& events) {
  std::vector<std::string> out;
  out.reserve(events.size());
  for (const trace::Event& e : events) out.emplace_back(e.name);
  return out;
}

bool contains(const std::vector<std::string>& haystack, const std::string& needle) {
  for (const std::string& s : haystack)
    if (s == needle) return true;
  return false;
}

TEST(Metrics, SetAddLookupRoundTrip) {
  trace::MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.setInt("a.count", 3);
  m.addInt("a.count", 4);
  m.addInt("b.fresh", 2);
  m.setReal("c.seconds", 1.5);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.getInt("a.count"), 7);
  EXPECT_EQ(m.getInt("b.fresh"), 2);
  EXPECT_DOUBLE_EQ(m.getReal("c.seconds"), 1.5);
  EXPECT_DOUBLE_EQ(m.getReal("a.count"), 7.0);  // int promoted on real read
  EXPECT_EQ(m.getInt("missing", -1), -1);
  EXPECT_EQ(m.find("missing"), nullptr);
  // Overwrite keeps insertion position.
  m.setInt("a.count", 1);
  EXPECT_EQ(m.entries().front().name, "a.count");
  EXPECT_EQ(m.getInt("a.count"), 1);
}

TEST(Metrics, JsonIsDeterministicAndOrdered) {
  trace::MetricsRegistry m;
  m.setInt("x", 1);
  m.setReal("y", 0.25);
  EXPECT_EQ(m.toJson(), "{\"x\": 1, \"y\": 0.25}");
  EXPECT_EQ(m.toJson(/*pretty=*/true), "{\n  \"x\": 1,\n  \"y\": 0.25\n}");
  EXPECT_EQ(trace::MetricsRegistry().toJson(), "{}");
}

TEST(Trace, DisabledEmitsNothingAndCostsNoSession) {
  EXPECT_FALSE(trace::enabled());
  EXPECT_FALSE(trace::sessionActive());
  {
    trace::Span span("should.not.appear", "test");
    span.arg("k", 1);
  }
  EXPECT_TRUE(trace::endSession().empty());

  // A disabled run of the full pipeline emits nothing either.
  const auto result = core::routeChip(makeChip(), core::pacorDefaultConfig());
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(trace::endSession().empty());
}

TEST(Trace, LevelFiltersSpans) {
  trace::beginSession(trace::Level::kStage);
  {
    trace::Span keep("keep", "test", trace::Level::kStage);
    trace::Span drop("drop", "test", trace::Level::kCluster);
    trace::Span dropDeep("drop.deep", "test", trace::Level::kSearch);
  }
  const auto events = trace::endSession();
  const auto got = names(events);
  EXPECT_TRUE(contains(got, "keep"));
  EXPECT_FALSE(contains(got, "drop"));
  EXPECT_FALSE(contains(got, "drop.deep"));
  EXPECT_FALSE(trace::sessionActive());
}

TEST(Trace, SerialRunCoversAllFiveStages) {
  trace::beginSession(trace::Level::kStage);
  const auto result = core::routeChip(makeChip(), core::pacorDefaultConfig());
  const auto events = trace::endSession();
  EXPECT_TRUE(result.complete);

  const auto got = names(events);
  for (const char* stage :
       {"pacor.route", "stage.clustering", "stage.cluster_routing",
        "stage.mst_routing", "stage.escape", "stage.detour"})
    EXPECT_TRUE(contains(got, stage)) << "missing span " << stage;

  // Everything ran on one thread at kStage, and the root span covers the
  // stage spans.
  std::int64_t rootStart = 0, rootEnd = 0;
  for (const trace::Event& e : events) {
    EXPECT_EQ(e.tid, 0);
    if (std::string(e.name) == "pacor.route") {
      rootStart = e.startNs;
      rootEnd = e.startNs + e.durNs;
    }
  }
  for (const trace::Event& e : events) {
    EXPECT_GE(e.startNs, rootStart) << e.name;
    EXPECT_LE(e.startNs + e.durNs, rootEnd) << e.name;
  }
}

TEST(Trace, ParallelSearchTraceIsLaminarAndOutputUnchanged) {
  const chip::Chip chip = makeChip();

  core::PacorConfig serialCfg = core::pacorDefaultConfig();
  serialCfg.jobs = 1;
  trace::beginSession(trace::Level::kSearch);
  const auto serial = core::routeChip(chip, serialCfg);
  const auto serialEvents = trace::endSession();

  core::PacorConfig parallelCfg = serialCfg;
  parallelCfg.jobs = 4;
  trace::beginSession(trace::Level::kSearch);
  const auto parallel = core::routeChip(chip, parallelCfg);
  const auto parallelEvents = trace::endSession();

  // Tracing at search granularity must not perturb the routed result.
  EXPECT_EQ(core::solutionToString(serial), core::solutionToString(parallel));

  // kSearch adds per-search spans on top of the stage spans.
  EXPECT_GT(parallelEvents.size(), 6u);
  EXPECT_TRUE(contains(names(parallelEvents), "route.astar"));

  // Per thread, spans are laminar: any two either nest or are disjoint.
  std::map<int, std::vector<const trace::Event*>> byTid;
  for (const trace::Event& e : parallelEvents) byTid[e.tid].push_back(&e);
  for (const auto& [tid, evs] : byTid) {
    for (std::size_t i = 0; i < evs.size(); ++i)
      for (std::size_t j = i + 1; j < evs.size(); ++j) {
        const auto aS = evs[i]->startNs, aE = aS + evs[i]->durNs;
        const auto bS = evs[j]->startNs, bE = bS + evs[j]->durNs;
        const bool disjoint = aE <= bS || bE <= aS;
        const bool nested = (aS <= bS && bE <= aE) || (bS <= aS && aE <= bE);
        EXPECT_TRUE(disjoint || nested)
            << "tid " << tid << ": " << evs[i]->name << " [" << aS << "," << aE
            << ") overlaps " << evs[j]->name << " [" << bS << "," << bE << ")";
      }
  }

  // The merge is sorted by start time.
  for (std::size_t i = 1; i < parallelEvents.size(); ++i)
    EXPECT_LE(parallelEvents[i - 1].startNs, parallelEvents[i].startNs);

  // Serial trace has exactly one tid.
  for (const trace::Event& e : serialEvents) EXPECT_EQ(e.tid, 0);
}

TEST(Trace, SessionHandleCollectsItsOwnEvents) {
  // A local Session records a region in isolation; the free-function API
  // (backed by the default instance) sees nothing of it.
  trace::Session local;
  EXPECT_FALSE(local.active());
  local.begin(trace::Level::kStage);
  EXPECT_TRUE(local.active());
  EXPECT_TRUE(trace::sessionActive());
  { trace::Span span("local.work", "test"); }
  EXPECT_TRUE(trace::endSession().empty());  // default instance not active
  EXPECT_TRUE(local.active());               // ... and did not end `local`
  const auto events = local.end();
  EXPECT_FALSE(local.active());
  EXPECT_TRUE(contains(names(events), "local.work"));
  EXPECT_TRUE(local.end().empty());  // ended sessions return nothing
}

TEST(Trace, SessionBeginSupersedesActiveRecorder) {
  trace::Session first;
  trace::Session second;
  first.begin(trace::Level::kStage);
  { trace::Span span("first.work", "test"); }
  second.begin(trace::Level::kStage);  // discards first's events
  EXPECT_FALSE(first.active());
  EXPECT_TRUE(second.active());
  // The loser is told about the discard instead of just returning an
  // empty event list (callers like the serve loop surface this).
  EXPECT_TRUE(first.superseded());
  EXPECT_FALSE(second.superseded());
  { trace::Span span("second.work", "test"); }
  EXPECT_TRUE(first.end().empty());
  const auto events = second.end();
  EXPECT_TRUE(contains(names(events), "second.work"));
  EXPECT_FALSE(contains(names(events), "first.work"));
  EXPECT_FALSE(trace::sessionActive());

  // A fresh begin() clears the stale flag.
  first.begin(trace::Level::kStage);
  EXPECT_FALSE(first.superseded());
  first.end();
}

TEST(Trace, DefaultSessionBacksFreeFunctions) {
  EXPECT_FALSE(trace::defaultSession().active());
  trace::beginSession(trace::Level::kStage);
  EXPECT_TRUE(trace::defaultSession().active());
  { trace::Span span("default.work", "test"); }
  const auto events = trace::defaultSession().end();  // mix-and-match APIs
  EXPECT_TRUE(contains(names(events), "default.work"));
  EXPECT_FALSE(trace::sessionActive());
}

TEST(Trace, ChromeJsonShapeAndFileRoundTrip) {
  trace::beginSession(trace::Level::kCluster);
  {
    trace::Span outer("outer", "test");
    outer.arg("items", 3);
    trace::Span inner("inner", "test", trace::Level::kCluster);
    inner.arg("visits", 42);
    inner.arg("found", 1);
  }
  const auto events = trace::endSession();
  ASSERT_EQ(events.size(), 2u);

  const std::string json = trace::toChromeJson(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"visits\": 42"), std::string::npos);
  std::int64_t depth = 0;
  bool balanced = true;
  for (const char ch : json) {
    depth += ch == '{' ? 1 : (ch == '}' ? -1 : 0);
    depth += ch == '[' ? 1 : (ch == ']' ? -1 : 0);
    balanced &= depth >= 0;
  }
  EXPECT_TRUE(balanced);
  EXPECT_EQ(depth, 0);

  const std::string path = "trace_test_roundtrip.json";
  ASSERT_TRUE(trace::writeChromeTrace(path, events));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json);
  std::remove(path.c_str());
}

TEST(Trace, ResultMetricsCoverThePipeline) {
  const auto result = core::routeChip(makeChip(), core::pacorDefaultConfig());
  const trace::MetricsRegistry& m = result.metrics;
  for (const char* key :
       {"config.jobs", "pipeline.complete", "clusters.total", "clusters.matched",
        "length.total", "lm.candidates_built", "escape.rounds", "escape.splits",
        "detour.reroutes", "detour.iterations", "detour.restores",
        "search.cluster_routing.searches", "search.escape.expansions",
        "search.detour.bounded_visits"})
    EXPECT_NE(m.find(key), nullptr) << "missing metric " << key;
  EXPECT_NE(m.find("time.total_s"), nullptr);
  EXPECT_EQ(m.getInt("clusters.total"),
            static_cast<std::int64_t>(result.clusters.size()));
  EXPECT_EQ(m.getInt("pipeline.complete"), result.complete ? 1 : 0);
  EXPECT_EQ(m.getInt("detour.reroutes"), result.detourReroutes);
  EXPECT_GT(m.getReal("time.total_s"), 0.0);
}

}  // namespace
}  // namespace pacor
