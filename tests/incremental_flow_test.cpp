// Tests for the mutable MinCostFlow API (setCapacity / disableNode /
// enableNode / cancelFlowThrough / rerun / truncateEdges) and the
// EscapeFlowSession built on it. The core property throughout: after any
// edit sequence, a warm rerun() must produce exactly the same Result and
// the same per-edge flows as a *fresh* solver constructed with the same
// effective capacities — bit-identity is what lets the pipeline serve
// every rip-up round from one persistent session without moving the
// golden solution hashes.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "chip/generator.hpp"
#include "graph/min_cost_flow.hpp"
#include "grid/obstacle_map.hpp"
#include "pacor/escape.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"

namespace pacor::graph {
namespace {

struct Edge {
  std::size_t u, v;
  std::int64_t cap, cost;
};

/// Random sparse instance with node 0 as source and n-1 as sink.
std::vector<Edge> makeEdges(std::mt19937& rng, std::size_t nodes) {
  std::vector<Edge> edges;
  const std::size_t m = 10 + rng() % 20;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t u = rng() % nodes;
    std::size_t v = rng() % nodes;
    if (u == v) v = (v + 1) % nodes;
    edges.push_back({u, v, static_cast<std::int64_t>(1 + rng() % 4),
                     static_cast<std::int64_t>(rng() % 10)});
  }
  // Guarantee some source/sink adjacency so instances are non-trivial.
  edges.push_back({0, 1 + rng() % (nodes - 1), 2, 1});
  edges.push_back({rng() % (nodes - 1), nodes - 1, 2, 1});
  return edges;
}

/// Fresh solver over the *effective* state of `mutated`: same edges in the
/// same insertion order, capacity 0 where an endpoint is disabled.
MinCostFlow freshEquivalent(const MinCostFlow& mutated,
                            const std::vector<Edge>& edges) {
  MinCostFlow fresh(mutated.nodeCount());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const std::int64_t cap = mutated.nodeDisabled(edges[e].u) ||
                                     mutated.nodeDisabled(edges[e].v)
                                 ? 0
                                 : mutated.capacityOf(e);
    fresh.addEdge(edges[e].u, edges[e].v, cap, edges[e].cost);
  }
  return fresh;
}

void expectSameSolve(MinCostFlow& mutated, MinCostFlow& fresh,
                     std::size_t edgeCount, std::size_t s, std::size_t t,
                     const char* context) {
  const MinCostFlow::Result warm = mutated.rerun(s, t);
  const MinCostFlow::Result cold = fresh.run(s, t);
  EXPECT_EQ(warm.flow, cold.flow) << context;
  EXPECT_EQ(warm.cost, cold.cost) << context;
  for (std::size_t e = 0; e < edgeCount; ++e)
    EXPECT_EQ(mutated.flowOn(e), fresh.flowOn(e)) << context << " edge " << e;
}

class IncrementalEdits : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalEdits, RandomEditSequenceMatchesFreshSolver) {
  std::mt19937 rng(static_cast<std::uint32_t>(GetParam()) * 7919u + 13u);
  const std::size_t nodes = 6 + rng() % 6;
  const std::vector<Edge> edges = makeEdges(rng, nodes);
  const std::size_t s = 0, t = nodes - 1;

  MinCostFlow solver(nodes);
  for (const Edge& e : edges) solver.addEdge(e.u, e.v, e.cap, e.cost);
  solver.run(s, t);  // leave flow in the network before the first edit

  for (int step = 0; step < 12; ++step) {
    switch (rng() % 4) {
      case 0: {  // capacity change (grow or shrink, possibly to zero)
        const std::size_t e = rng() % edges.size();
        solver.setCapacity(e, static_cast<std::int64_t>(rng() % 5));
        break;
      }
      case 1: {  // disable an interior node
        const std::size_t n = 1 + rng() % (nodes - 2);
        solver.disableNode(n);
        break;
      }
      case 2: {  // re-enable an interior node
        const std::size_t n = 1 + rng() % (nodes - 2);
        solver.enableNode(n);
        break;
      }
      default: {  // cancel flow crossing a random edge
        const std::size_t e = rng() % edges.size();
        solver.cancelFlowThrough(e);
        break;
      }
    }
    MinCostFlow fresh = freshEquivalent(solver, edges);
    expectSameSolve(solver, fresh, edges.size(), s, t,
                    ("step " + std::to_string(step)).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEdits, ::testing::Range(0, 25));

TEST(IncrementalFlow, CancelRestoresConservationAndFlowValue) {
  // Diamond: s -> a -> t and s -> b -> t, both unit paths.
  MinCostFlow f(4);
  const std::size_t sa = f.addEdge(0, 1, 1, 1);
  const std::size_t at = f.addEdge(1, 3, 1, 1);
  const std::size_t sb = f.addEdge(0, 2, 1, 2);
  const std::size_t bt = f.addEdge(2, 3, 1, 2);
  const auto r = f.run(0, 3);
  EXPECT_EQ(r.flow, 2);
  EXPECT_EQ(f.totalFlowUnits(), 2);

  // Cancelling through a->t removes exactly the s->a->t unit.
  EXPECT_EQ(f.cancelFlowThrough(at), 1);
  EXPECT_EQ(f.totalFlowUnits(), 1);
  EXPECT_EQ(f.flowOn(sa), 0);
  EXPECT_EQ(f.flowOn(at), 0);
  EXPECT_EQ(f.flowOn(sb), 1);
  EXPECT_EQ(f.flowOn(bt), 1);

  // Cancelling through node b removes the other unit.
  EXPECT_EQ(f.cancelFlowThroughNode(2), 1);
  EXPECT_EQ(f.totalFlowUnits(), 0);
  for (const std::size_t e : {sa, at, sb, bt}) EXPECT_EQ(f.flowOn(e), 0);
}

TEST(IncrementalFlow, DisabledNodeCarriesNoFlowUntilReenabled) {
  MinCostFlow f(4);
  f.addEdge(0, 1, 1, 1);
  f.addEdge(1, 3, 1, 1);
  f.addEdge(0, 2, 1, 5);
  f.addEdge(2, 3, 1, 5);
  EXPECT_EQ(f.run(0, 3).flow, 2);

  f.disableNode(1);
  EXPECT_EQ(f.totalFlowUnits(), 1);  // the unit through node 1 is cancelled
  EXPECT_TRUE(f.nodeDisabled(1));
  EXPECT_EQ(f.flowOn(0), 0);
  EXPECT_EQ(f.rerun(0, 3).flow, 1);  // only the expensive path remains

  f.enableNode(1);
  EXPECT_FALSE(f.nodeDisabled(1));
  const auto r = f.rerun(0, 3);
  EXPECT_EQ(r.flow, 2);
  EXPECT_EQ(r.cost, 12);
}

TEST(IncrementalFlow, OverlayEdgesBehaveLikePreBuildEdges) {
  // Build a frozen base, add per-round edges post-freeze, and compare
  // against a fresh solver that received every edge before its build.
  std::mt19937 rng(42);
  for (int round = 0; round < 10; ++round) {
    const std::size_t nodes = 6 + rng() % 4;
    const std::vector<Edge> base = makeEdges(rng, nodes);
    MinCostFlow warm(nodes);
    for (const Edge& e : base) warm.addEdge(e.u, e.v, e.cap, e.cost);
    warm.freeze();

    std::vector<Edge> all = base;
    for (int extra = 0; extra < 4; ++extra) {
      const std::size_t u = rng() % nodes;
      const std::size_t v = u == nodes - 1 ? 0 : u + 1;
      const Edge e{u, v, static_cast<std::int64_t>(1 + rng() % 3),
                   static_cast<std::int64_t>(rng() % 6)};
      warm.addEdge(e.u, e.v, e.cap, e.cost);
      all.push_back(e);
    }

    MinCostFlow cold(nodes);
    for (const Edge& e : all) cold.addEdge(e.u, e.v, e.cap, e.cost);
    expectSameSolve(warm, cold, all.size(), 0, nodes - 1, "overlay round");
  }
}

TEST(IncrementalFlow, TruncateEdgesDropsPerRoundSuffix) {
  MinCostFlow f(4);
  f.addEdge(0, 1, 1, 1);
  f.addEdge(1, 3, 1, 1);
  const std::size_t persistent = f.edgeCount();
  f.freeze();

  for (int round = 0; round < 5; ++round) {
    // Per-round edges: a second parallel path through node 2.
    f.addEdge(0, 2, 1, 0);
    f.addEdge(2, 3, 1, 0);
    EXPECT_EQ(f.rerun(0, 3).flow, 2);
    f.resetFlow();
    f.truncateEdges(persistent);
    EXPECT_EQ(f.edgeCount(), persistent);
    // Without the per-round edges only the persistent path remains.
    EXPECT_EQ(f.rerun(0, 3).flow, 1);
  }
}

}  // namespace
}  // namespace pacor::graph

namespace pacor {
namespace {

/// Pipeline-level bit-identity: the persistent EscapeFlowSession must
/// reproduce the from-scratch escape solver's solution exactly, including
/// on designs that take several rip-up rounds.
TEST(IncrementalEscape, SessionMatchesScratchOnStressDesigns) {
  for (const std::uint32_t seed : {2u, 5u}) {
    const chip::Chip chip = chip::generateChip(chip::stressParams(seed));
    core::PacorConfig inc = core::pacorDefaultConfig();
    inc.incrementalEscape = true;
    core::PacorConfig scratch = inc;
    scratch.incrementalEscape = false;
    const auto a = core::routeChip(chip, inc);
    const auto b = core::routeChip(chip, scratch);
    EXPECT_EQ(core::solutionToString(a), core::solutionToString(b))
        << "stress seed " << seed;
    EXPECT_GT(a.metrics.getInt("escape.flow.persistent_arcs"), 0);
    if (a.metrics.getInt("escape.rounds") >= 2) {
      EXPECT_GT(a.metrics.getInt("escape.flow.warm_rounds"), 0);
    }
    EXPECT_EQ(b.metrics.getInt("escape.flow.incremental"), 0);
  }
}

}  // namespace
}  // namespace pacor
