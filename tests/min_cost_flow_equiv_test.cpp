#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "graph/min_cost_flow.hpp"

// Differential suite for the solver's three open-list / augmentation
// configurations:
//
//  * Dial buckets (default) vs. the pure packed heap must be BIT-IDENTICAL:
//    same (flow, cost) and the same flow on every edge, because the bucket
//    pop sequence reproduces the heap's (distance, node) comparator order
//    exactly, stale entries included.
//  * Fast mode (multi-augmentation + bidirectional last unit) must match
//    the classic solver's (flow, cost) optimum; per-edge flows may differ
//    (equal-cost ties resolve to different, equally optimal paths), which
//    is verified by a residual-graph optimality certificate instead.
//
// Instances are seeded layered DAG-ish networks plus fully random digraphs,
// including seeds whose costs exceed the Dial span so the heap-overflow
// path of the bucket queue is exercised.

namespace pacor::graph {
namespace {

struct Instance {
  std::size_t nodes = 0;
  std::size_t s = 0;
  std::size_t t = 0;
  struct E {
    std::size_t u, v;
    std::int64_t cap, cost;
  };
  std::vector<E> edges;
};

Instance makeInstance(std::uint32_t seed) {
  std::mt19937 rng(seed);
  Instance inst;
  inst.nodes = 6 + rng() % 20;
  inst.s = 0;
  inst.t = inst.nodes - 1;
  const std::size_t m = inst.nodes + rng() % (3 * inst.nodes);
  // Every third seed uses costs far beyond the Dial bucket span (1 << 14)
  // so labels overflow into the packed heap.
  const std::int64_t costRange = seed % 3 == 2 ? 100000 : 9;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t u = rng() % inst.nodes;
    std::size_t v = rng() % inst.nodes;
    if (u == v) v = (v + 1) % inst.nodes;
    inst.edges.push_back({u, v, static_cast<std::int64_t>(1 + rng() % 5),
                          static_cast<std::int64_t>(rng() % (costRange + 1))});
  }
  // Guarantee some s-adjacent and t-adjacent arcs so most instances have
  // nonzero max flow.
  inst.edges.push_back({inst.s, 1 + rng() % (inst.nodes - 1),
                        static_cast<std::int64_t>(1 + rng() % 5),
                        static_cast<std::int64_t>(rng() % (costRange + 1))});
  inst.edges.push_back({rng() % (inst.nodes - 1), inst.t,
                        static_cast<std::int64_t>(1 + rng() % 5),
                        static_cast<std::int64_t>(rng() % (costRange + 1))});
  return inst;
}

MinCostFlow buildSolver(const Instance& inst) {
  MinCostFlow flow(inst.nodes);
  for (const auto& e : inst.edges) flow.addEdge(e.u, e.v, e.cap, e.cost);
  return flow;
}

// Bellman-Ford negative-cycle check over the residual graph: a feasible
// flow is min-cost for its value iff no residual negative cycle exists.
bool residualOptimal(const Instance& inst, const MinCostFlow& flow) {
  std::vector<std::tuple<std::size_t, std::size_t, std::int64_t>> arcs;
  for (std::size_t e = 0; e < inst.edges.size(); ++e) {
    if (flow.residual(e) > 0)
      arcs.emplace_back(inst.edges[e].u, inst.edges[e].v, inst.edges[e].cost);
    if (flow.flowOn(e) > 0)
      arcs.emplace_back(inst.edges[e].v, inst.edges[e].u, -inst.edges[e].cost);
  }
  std::vector<std::int64_t> dist(inst.nodes, 0);
  for (std::size_t iter = 0; iter < inst.nodes; ++iter) {
    bool relaxed = false;
    for (const auto& [u, v, w] : arcs) {
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        relaxed = true;
      }
    }
    if (!relaxed) return true;
  }
  return false;
}

class SolverEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SolverEquivalence, BucketMatchesHeapBitForBit) {
  bool heapOverflowSeen = false;
  for (int rep = 0; rep < 25; ++rep) {
    const auto seed = static_cast<std::uint32_t>(GetParam() * 1000 + rep);
    const Instance inst = makeInstance(seed);

    MinCostFlow bucket = buildSolver(inst);
    MinCostFlow heap = buildSolver(inst);
    heap.setBucketQueue(false);

    const auto rb = bucket.run(inst.s, inst.t);
    const auto rh = heap.run(inst.s, inst.t);
    ASSERT_EQ(rb.flow, rh.flow) << "seed " << seed;
    ASSERT_EQ(rb.cost, rh.cost) << "seed " << seed;
    for (std::size_t e = 0; e < inst.edges.size(); ++e)
      ASSERT_EQ(bucket.flowOn(e), heap.flowOn(e))
          << "seed " << seed << " edge " << e;
    heapOverflowSeen = heapOverflowSeen || bucket.counters().heapPushes > 0;
  }
  // The large-cost seeds (every third) must exercise the bucket queue's
  // heap-overflow path somewhere in the group; an individual seed may
  // happen to keep every reachable label under the span.
  EXPECT_TRUE(heapOverflowSeen);
}

// Regression: the Dial bucket span was a fixed compile-time 1 << 14, so
// grids whose distance labels exceeded it pushed every long label through
// the overflow heap (correct but slow) with no way to widen the window,
// and small instances paid the full 16K-bucket allocation. The span is
// now configurable; because the overflow heap drains strictly after the
// buckets in comparator order, the settle order -- and therefore the
// routed flow on every edge -- must be bit-identical at ANY span.
TEST_P(SolverEquivalence, BucketSpanDoesNotChangeTheSolution) {
  bool overflowSeen = false;
  bool allInBucketsSeen = false;
  for (int rep = 0; rep < 25; ++rep) {
    const auto seed = static_cast<std::uint32_t>(GetParam() * 1000 + rep);
    const Instance inst = makeInstance(seed);

    MinCostFlow narrow = buildSolver(inst);
    narrow.setBucketSpan(1);  // clamps to kMinBucketSpan
    ASSERT_EQ(narrow.bucketSpan(), MinCostFlow::kMinBucketSpan);
    MinCostFlow wide = buildSolver(inst);
    wide.setBucketSpan(MinCostFlow::kMaxBucketSpan);
    MinCostFlow heap = buildSolver(inst);
    heap.setBucketQueue(false);

    const auto rn = narrow.run(inst.s, inst.t);
    const auto rw = wide.run(inst.s, inst.t);
    const auto rh = heap.run(inst.s, inst.t);
    ASSERT_EQ(rn.flow, rh.flow) << "seed " << seed;
    ASSERT_EQ(rn.cost, rh.cost) << "seed " << seed;
    ASSERT_EQ(rw.flow, rh.flow) << "seed " << seed;
    ASSERT_EQ(rw.cost, rh.cost) << "seed " << seed;
    for (std::size_t e = 0; e < inst.edges.size(); ++e) {
      ASSERT_EQ(narrow.flowOn(e), heap.flowOn(e))
          << "seed " << seed << " edge " << e;
      ASSERT_EQ(wide.flowOn(e), heap.flowOn(e))
          << "seed " << seed << " edge " << e;
    }
    overflowSeen = overflowSeen || narrow.counters().heapPushes > 0;
    // The large-cost seeds overflow even the max span; the small-cost
    // ones must fit entirely inside it.
    if (seed % 3 != 2 && rw.flow > 0)
      allInBucketsSeen = allInBucketsSeen || wide.counters().heapPushes == 0;
  }
  EXPECT_TRUE(overflowSeen);
  EXPECT_TRUE(allInBucketsSeen);
}

TEST(MinCostFlowBucketSpan, RecommendedSpanCoversTheDistanceAndClamps) {
  // Smallest power of two strictly above the expected distance bound.
  EXPECT_EQ(MinCostFlow::recommendedBucketSpan(0), MinCostFlow::kMinBucketSpan);
  EXPECT_EQ(MinCostFlow::recommendedBucketSpan(100), 128);
  EXPECT_EQ(MinCostFlow::recommendedBucketSpan(128), 256);
  EXPECT_EQ(MinCostFlow::recommendedBucketSpan(1 << 25),
            MinCostFlow::kMaxBucketSpan);
}

TEST_P(SolverEquivalence, FastModeMatchesClassicOptimum) {
  for (int rep = 0; rep < 25; ++rep) {
    const auto seed = static_cast<std::uint32_t>(GetParam() * 1000 + rep);
    const Instance inst = makeInstance(seed);

    MinCostFlow classic = buildSolver(inst);
    MinCostFlow fast = buildSolver(inst);
    fast.setFastSsp(true);

    const auto rc = classic.run(inst.s, inst.t);
    const auto rf = fast.run(inst.s, inst.t);
    ASSERT_EQ(rc.flow, rf.flow) << "seed " << seed;
    ASSERT_EQ(rc.cost, rf.cost) << "seed " << seed;
    ASSERT_TRUE(residualOptimal(inst, fast)) << "seed " << seed;

    // Bounded demand: the lexicographic (flow, then cost) optimum is
    // unique for every prefix of the demand, so partial solves agree too.
    if (rc.flow > 1) {
      MinCostFlow classicPart = buildSolver(inst);
      MinCostFlow fastPart = buildSolver(inst);
      fastPart.setFastSsp(true);
      const auto pc = classicPart.run(inst.s, inst.t, rc.flow - 1);
      const auto pf = fastPart.run(inst.s, inst.t, rc.flow - 1);
      ASSERT_EQ(pc.flow, pf.flow) << "seed " << seed;
      ASSERT_EQ(pc.cost, pf.cost) << "seed " << seed;
    }
  }
}

TEST_P(SolverEquivalence, WarmRerunMatchesColdSolve) {
  for (int rep = 0; rep < 10; ++rep) {
    const auto seed = static_cast<std::uint32_t>(GetParam() * 1000 + rep);
    const Instance inst = makeInstance(seed);

    MinCostFlow warm = buildSolver(inst);
    warm.freeze();
    const auto first = warm.run(inst.s, inst.t);
    const auto second = warm.rerun(inst.s, inst.t);
    ASSERT_EQ(first.flow, second.flow) << "seed " << seed;
    ASSERT_EQ(first.cost, second.cost) << "seed " << seed;

    MinCostFlow cold = buildSolver(inst);
    const auto fresh = cold.run(inst.s, inst.t);
    ASSERT_EQ(fresh.flow, second.flow) << "seed " << seed;
    ASSERT_EQ(fresh.cost, second.cost) << "seed " << seed;
    for (std::size_t e = 0; e < inst.edges.size(); ++e)
      ASSERT_EQ(cold.flowOn(e), warm.flowOn(e))
          << "seed " << seed << " edge " << e;
  }
}

// 10 groups x 25 reps = 250 seeded networks per differential property.
INSTANTIATE_TEST_SUITE_P(Seeds, SolverEquivalence, ::testing::Range(0, 10));

}  // namespace
}  // namespace pacor::graph
