#include <gtest/gtest.h>

#include <unordered_set>

#include "pacor/escape.hpp"

namespace pacor::core {
namespace {

using geom::Point;

/// Fixture: a small chip with singleton clusters placed by the test.
struct EscapeFixture {
  chip::Chip chip;
  grid::ObstacleMap obs{grid::Grid(1, 1)};
  std::vector<WorkCluster> clusters;

  explicit EscapeFixture(std::int32_t w = 16, std::int32_t h = 16) {
    chip.name = "escape-fixture";
    chip.routingGrid = grid::Grid(w, h);
  }

  void addValve(Point p) {
    const auto id = static_cast<chip::ValveId>(chip.valves.size());
    // Unique code per valve keeps them pairwise incompatible.
    std::string seq(8, '0');
    for (int b = 0; b < 8; ++b)
      if ((static_cast<unsigned>(id) >> b) & 1u) seq[static_cast<std::size_t>(b)] = '1';
    chip.valves.push_back({id, p, chip::ActivationSequence(seq)});
  }

  void addPin(Point p) {
    chip.pins.push_back({static_cast<chip::PinId>(chip.pins.size()), p});
  }

  /// Finalize: build the obstacle map and singleton work clusters.
  std::vector<WorkCluster*> finish() {
    obs = chip.makeObstacleMap();
    clusters.clear();
    clusters.resize(chip.valves.size());
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      auto& wc = clusters[i];
      wc.spec.valves = {static_cast<chip::ValveId>(i)};
      wc.net = static_cast<grid::NetId>(i);
      const Point cell = chip.valves[i].pos;
      obs.occupy(std::span<const Point>(&cell, 1), wc.net);
      wc.tap = cell;
      wc.tapCells = {cell};
      wc.internallyRouted = true;
    }
    std::vector<WorkCluster*> ptrs;
    for (auto& wc : clusters) ptrs.push_back(&wc);
    return ptrs;
  }
};

TEST(Escape, SingleValveToSinglePin) {
  EscapeFixture fx;
  fx.addValve({8, 8});
  fx.addPin({0, 8});
  auto ptrs = fx.finish();
  const auto outcome = escapeRoute(fx.chip, fx.obs, ptrs);
  EXPECT_EQ(outcome.routedCount, 1);
  EXPECT_TRUE(outcome.failed.empty());
  EXPECT_EQ(fx.clusters[0].pin, 0);
  EXPECT_EQ(fx.clusters[0].escapePath.front(), (Point{8, 8}));
  EXPECT_EQ(fx.clusters[0].escapePath.back(), (Point{0, 8}));
  EXPECT_TRUE(route::isValidChannel(fx.clusters[0].escapePath));
}

TEST(Escape, PathsAreNodeDisjoint) {
  EscapeFixture fx(20, 20);
  for (int i = 0; i < 5; ++i) fx.addValve({5 + 2 * i, 10});
  for (int i = 0; i < 6; ++i) fx.addPin({4 + 2 * i, 0});
  auto ptrs = fx.finish();
  const auto outcome = escapeRoute(fx.chip, fx.obs, ptrs);
  EXPECT_EQ(outcome.routedCount, 5);
  std::unordered_set<Point> used;
  for (const auto& wc : fx.clusters)
    for (const Point p : wc.escapePath)
      EXPECT_TRUE(used.insert(p).second) << p.str();
}

TEST(Escape, PinsAssignedUniquely) {
  EscapeFixture fx(20, 20);
  for (int i = 0; i < 4; ++i) fx.addValve({6 + 2 * i, 10});
  for (int i = 0; i < 4; ++i) fx.addPin({6 + 2 * i, 0});
  auto ptrs = fx.finish();
  escapeRoute(fx.chip, fx.obs, ptrs);
  std::unordered_set<chip::PinId> pins;
  for (const auto& wc : fx.clusters) {
    ASSERT_GE(wc.pin, 0);
    EXPECT_TRUE(pins.insert(wc.pin).second);
  }
}

TEST(Escape, MaximizesRoutedCountOverLength) {
  // One pin reachable only by a long detour; flow must still use it for
  // the second cluster instead of stranding it (beta-dominant objective).
  EscapeFixture fx(12, 12);
  fx.addValve({5, 6});
  fx.addValve({7, 6});
  fx.addPin({5, 0});
  fx.addPin({11, 11});
  auto ptrs = fx.finish();
  const auto outcome = escapeRoute(fx.chip, fx.obs, ptrs);
  EXPECT_EQ(outcome.routedCount, 2);
}

TEST(Escape, MinimizesTotalLengthAmongMaxRoutings) {
  // Two valves, two pins straight below each: the optimal assignment is
  // the identity (total 2 * distance), not the crossed one.
  EscapeFixture fx(12, 12);
  fx.addValve({3, 6});
  fx.addValve({8, 6});
  fx.addPin({3, 0});
  fx.addPin({8, 0});
  auto ptrs = fx.finish();
  const auto outcome = escapeRoute(fx.chip, fx.obs, ptrs);
  EXPECT_EQ(outcome.routedCount, 2);
  std::int64_t total = 0;
  for (const auto& wc : fx.clusters) total += route::pathLength(wc.escapePath);
  EXPECT_EQ(total, 12);  // 6 + 6, no crossing detour
}

TEST(Escape, ReportsFailuresWhenPinsExhausted) {
  EscapeFixture fx(16, 16);
  for (int i = 0; i < 3; ++i) fx.addValve({5 + 2 * i, 8});
  fx.addPin({0, 8});  // only one pin
  auto ptrs = fx.finish();
  const auto outcome = escapeRoute(fx.chip, fx.obs, ptrs);
  EXPECT_EQ(outcome.routedCount, 1);
  EXPECT_EQ(outcome.failed.size(), 2u);
}

TEST(Escape, RespectsObstacles) {
  EscapeFixture fx(16, 16);
  fx.addValve({8, 8});
  fx.addPin({8, 0});
  // Wall between valve and pin with a single gap at x = 2.
  for (std::int32_t x = 0; x < 16; ++x)
    if (x != 2) fx.chip.obstacles.push_back({x, 4});
  auto ptrs = fx.finish();
  const auto outcome = escapeRoute(fx.chip, fx.obs, ptrs);
  ASSERT_EQ(outcome.routedCount, 1);
  const auto& path = fx.clusters[0].escapePath;
  // Must pass through the gap.
  EXPECT_TRUE(std::any_of(path.begin(), path.end(),
                          [](Point p) { return p == Point{2, 4}; }));
}

TEST(Escape, AlreadyEscapedClustersKeepTheirPins) {
  EscapeFixture fx(16, 16);
  fx.addValve({5, 8});
  fx.addValve({10, 8});
  fx.addPin({5, 0});
  fx.addPin({10, 0});
  auto ptrs = fx.finish();
  escapeRoute(fx.chip, fx.obs, ptrs);
  const auto pin0 = fx.clusters[0].pin;
  const auto outcome2 = escapeRoute(fx.chip, fx.obs, ptrs);  // idempotent
  EXPECT_EQ(outcome2.requested, 0);
  EXPECT_EQ(fx.clusters[0].pin, pin0);
}

TEST(Escape, SequentialGreedyCanStrandClusters) {
  // The ablation scenario in miniature: the greedy order blocks later
  // clusters while the flow routes everything.
  EscapeFixture fxSeq(14, 10);
  EscapeFixture fxFlow(14, 10);
  for (auto* fx : {&fxSeq, &fxFlow}) {
    for (int i = 0; i < 3; ++i) fx->addValve({5 + 2 * i, 6});
    for (int i = 0; i < 3; ++i) fx->addPin({5 + 2 * i, 0});
    // Funnel: walls force all paths through a 3-wide slit.
    for (std::int32_t x = 0; x < 14; ++x)
      if (x < 5 || x > 7) fx->chip.obstacles.push_back({x, 3});
  }
  auto seqPtrs = fxSeq.finish();
  auto flowPtrs = fxFlow.finish();
  const auto seq = escapeRouteSequential(fxSeq.chip, fxSeq.obs, seqPtrs);
  const auto flow = escapeRoute(fxFlow.chip, fxFlow.obs, flowPtrs);
  EXPECT_GE(flow.routedCount, seq.routedCount);
  EXPECT_EQ(flow.routedCount, 3);
}

TEST(Escape, WideTapBiasPrefersNearRootAttachment) {
  // A two-path tree with the root in the middle; with wideTap the escape
  // should still attach adjacent to the root when space allows.
  EscapeFixture fx(16, 16);
  fx.addValve({8, 8});
  fx.addPin({8, 0});
  auto ptrs = fx.finish();
  auto& wc = fx.clusters[0];
  // Build an artificial horizontal tree through the valve.
  route::Path tree;
  for (std::int32_t x = 4; x <= 12; ++x) tree.push_back({x, 8});
  fx.obs.occupy(tree, wc.net);
  wc.treePaths = {tree};
  wc.tap = {8, 8};
  wc.tapCells.assign(tree.begin(), tree.end());
  wc.wideTap = true;
  const auto outcome = escapeRoute(fx.chip, fx.obs, ptrs);
  ASSERT_EQ(outcome.routedCount, 1);
  // The anchor (first path cell) should be the root itself.
  EXPECT_EQ(wc.escapePath.front(), (Point{8, 8}));
}

}  // namespace
}  // namespace pacor::core
