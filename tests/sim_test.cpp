#include <gtest/gtest.h>

#include "sim/pressure.hpp"

namespace pacor::sim {
namespace {

using geom::Point;
using route::Path;

Path straight(Point from, std::int32_t n) {
  Path p;
  for (std::int32_t i = 0; i < n; ++i) p.push_back({from.x + i, from.y});
  return p;
}

TEST(ChannelTree, BuildRequiresRootOnChannel) {
  const std::vector<Path> paths{straight({0, 0}, 5)};
  EXPECT_FALSE(ChannelTree::build({9, 9}, paths, {}).has_value());
  EXPECT_TRUE(ChannelTree::build({0, 0}, paths, {}).has_value());
}

TEST(ChannelTree, BuildRejectsDisconnected) {
  const std::vector<Path> paths{straight({0, 0}, 3), straight({5, 5}, 3)};
  EXPECT_FALSE(ChannelTree::build({0, 0}, paths, {}).has_value());
}

TEST(ChannelTree, ElmoreGrowsWithDistance) {
  const std::vector<Path> paths{straight({0, 0}, 10)};
  const auto tree = ChannelTree::build({0, 0}, paths, {});
  ASSERT_TRUE(tree.has_value());
  double prev = -1.0;
  for (std::int32_t x = 0; x < 10; ++x) {
    const double d = tree->elmoreDelay({x, 0});
    EXPECT_GT(d, prev) << "at x=" << x;
    prev = d;
  }
}

TEST(ChannelTree, ElmoreIsSuperlinearInLength) {
  // RC ladders diffuse: doubling the length should much more than double
  // the delay (the physical reason short/long channel skew matters).
  const std::vector<Path> p1{straight({0, 0}, 11)};
  const std::vector<Path> p2{straight({0, 0}, 21)};
  const auto t1 = ChannelTree::build({0, 0}, p1, {});
  const auto t2 = ChannelTree::build({0, 0}, p2, {});
  ASSERT_TRUE(t1 && t2);
  const double d1 = t1->elmoreDelay({10, 0});
  const double d2 = t2->elmoreDelay({20, 0});
  EXPECT_GT(d2, 2.5 * d1);
}

TEST(ChannelTree, EqualArmsHaveZeroSkew) {
  // Symmetric Y: root at origin, two arms of equal length.
  Path up{{0, 0}};
  Path down{{0, 0}};
  for (std::int32_t i = 1; i <= 6; ++i) {
    up.push_back({0, i});
    down.push_back({0, -i});
  }
  const std::vector<Path> paths{up, down};
  const std::vector<Point> valves{{0, 6}, {0, -6}};
  const auto tree = ChannelTree::build({0, 0}, paths, valves);
  ASSERT_TRUE(tree.has_value());
  EXPECT_NEAR(tree->skew(valves), 0.0, 1e-12);
}

TEST(ChannelTree, UnequalArmsHavePositiveSkew) {
  Path shortArm{{0, 0}};
  Path longArm{{0, 0}};
  for (std::int32_t i = 1; i <= 3; ++i) shortArm.push_back({0, i});
  for (std::int32_t i = 1; i <= 9; ++i) longArm.push_back({i, 0});
  const std::vector<Path> paths{shortArm, longArm};
  const std::vector<Point> valves{{0, 3}, {9, 0}};
  const auto tree = ChannelTree::build({0, 0}, paths, valves);
  ASSERT_TRUE(tree.has_value());
  EXPECT_GT(tree->skew(valves), 10.0);
}

TEST(ChannelTree, ValveCapacitanceSlowsPropagation) {
  const std::vector<Path> paths{straight({0, 0}, 8)};
  const std::vector<Point> valve{{7, 0}};
  const auto bare = ChannelTree::build({0, 0}, paths, {});
  const auto loaded = ChannelTree::build({0, 0}, paths, valve);
  ASSERT_TRUE(bare && loaded);
  EXPECT_GT(loaded->elmoreDelay({7, 0}), bare->elmoreDelay({7, 0}));
}

TEST(ChannelTree, TransientMatchesElmoreOrdering) {
  Path shortArm{{0, 0}};
  Path longArm{{0, 0}};
  for (std::int32_t i = 1; i <= 4; ++i) shortArm.push_back({0, i});
  for (std::int32_t i = 1; i <= 8; ++i) longArm.push_back({i, 0});
  const std::vector<Path> paths{shortArm, longArm};
  const std::vector<Point> valves{{0, 4}, {8, 0}};
  const auto tree = ChannelTree::build({0, 0}, paths, valves);
  ASSERT_TRUE(tree.has_value());
  const auto times = tree->actuationTimes(valves, 0.01, 2000.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_GT(times[0], 0.0);
  EXPECT_GT(times[1], 0.0);
  EXPECT_LT(times[0], times[1]);  // shorter arm actuates first
}

TEST(ChannelTree, TransientNeverCrossesReportsMinusOne) {
  const std::vector<Path> paths{straight({0, 0}, 30)};
  const auto tree = ChannelTree::build({0, 0}, paths, {});
  ASSERT_TRUE(tree.has_value());
  const std::vector<Point> far{{29, 0}};
  const auto times = tree->actuationTimes(far, 0.05, 0.5);  // way too short
  EXPECT_EQ(times[0], -1.0);
}

TEST(ChannelTree, QueryUnknownCell) {
  const std::vector<Path> paths{straight({0, 0}, 4)};
  const auto tree = ChannelTree::build({0, 0}, paths, {});
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->elmoreDelay({17, 17}), -1.0);
}

}  // namespace
}  // namespace pacor::sim
