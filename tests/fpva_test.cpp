#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "chip/generator.hpp"
#include "chip/io.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "util/thread_pool.hpp"
#include "verify/oracle.hpp"

// Tier-1 coverage of the FPVA valve-array generator and its spec grammar:
// the generated instances must validate, round-trip through the chip text
// format, route oracle-clean with the default flow, and route
// byte-identically serial vs. with the worker pool.

namespace pacor {
namespace {

core::PacorConfig jobsConfig(int jobs) {
  core::PacorConfig cfg = core::pacorDefaultConfig();
  cfg.jobs = jobs;
  return cfg;
}

TEST(FpvaGenerator, DefaultEightByEightValidatesAndHasTheLattice) {
  chip::FpvaParams params;  // 8x8, auto pitch/blocks
  const auto c = chip::generateFpvaChip(params);
  EXPECT_EQ(c.validate(), std::nullopt);
  EXPECT_EQ(c.name, "fpva_8x8");
  EXPECT_EQ(c.valves.size(), 64u);
  // 2x2 blocks at this size: one compatible group of 4 valves per block.
  EXPECT_EQ(c.givenClusters.size(), 16u);
  for (const auto& cl : c.givenClusters) EXPECT_EQ(cl.valves.size(), 4u);
  // Every valve sits on the pitch lattice inside the margin ring.
  for (const auto& v : c.valves) {
    EXPECT_EQ((v.pos.x - 3) % 4, 0) << "valve x off-lattice";
    EXPECT_EQ((v.pos.y - 3) % 4, 0) << "valve y off-lattice";
  }
}

TEST(FpvaGenerator, RoundTripsThroughChipIo) {
  chip::FpvaParams params;
  params.rows = 6;
  params.cols = 9;
  params.obstaclePermille = 20;
  params.seed = 7;
  const auto original = chip::generateFpvaChip(params);
  std::stringstream first;
  chip::writeChip(first, original);
  std::stringstream input(first.str());
  const auto reread = chip::readChip(input);
  EXPECT_EQ(reread.validate(), std::nullopt);
  EXPECT_EQ(reread.name, original.name);
  EXPECT_EQ(reread.valves.size(), original.valves.size());
  EXPECT_EQ(reread.givenClusters.size(), original.givenClusters.size());
  EXPECT_EQ(reread.obstacles.size(), original.obstacles.size());
  // The canonical text of the reread chip is byte-identical: every field
  // survived the round trip.
  std::stringstream second;
  chip::writeChip(second, reread);
  EXPECT_EQ(second.str(), first.str());
}

TEST(FpvaGenerator, DeterministicForASeedAndDistinctAcrossSeeds) {
  chip::FpvaParams params;
  params.seed = 11;
  std::stringstream a, b;
  chip::writeChip(a, chip::generateFpvaChip(params));
  chip::writeChip(b, chip::generateFpvaChip(params));
  EXPECT_EQ(a.str(), b.str());
  params.seed = 12;
  std::stringstream c;
  chip::writeChip(c, chip::generateFpvaChip(params));
  EXPECT_NE(a.str(), c.str());
}

TEST(FpvaRouting, EightByEightRoutesOracleClean) {
  const auto c = chip::generateFpvaChip(chip::parseFpvaSpec("8x8"));
  const auto result = core::routeChip(c, jobsConfig(1));
  EXPECT_TRUE(result.complete);
  const auto report = verify::verifySolution(c, result);
  EXPECT_TRUE(report.clean()) << report.str();
}

TEST(FpvaRouting, DenseArrayRoutesOracleClean) {
  // 12x10 with obstacles and every block length-matched: the dense mix.
  const auto c =
      chip::generateFpvaChip(chip::parseFpvaSpec("fpva:12x10:obs=30:lm=100"));
  const auto result = core::routeChip(c, jobsConfig(1));
  EXPECT_TRUE(result.complete);
  const auto report = verify::verifySolution(c, result);
  EXPECT_TRUE(report.clean()) << report.str();
}

TEST(FpvaRouting, SerialAndParallelAreByteIdentical) {
  const int jobs = std::max(2, static_cast<int>(util::hardwareJobs()));
  const auto c = chip::generateFpvaChip(chip::parseFpvaSpec("10x10:lm=100"));
  const auto serial = core::routeChip(c, jobsConfig(1));
  const auto parallel = core::routeChip(c, jobsConfig(jobs));
  EXPECT_EQ(core::solutionToString(serial), core::solutionToString(parallel));
}

TEST(FpvaSpec, ParsesBareAndPrefixedForms) {
  const auto bare = chip::parseFpvaSpec("8x8");
  EXPECT_EQ(bare.rows, 8);
  EXPECT_EQ(bare.cols, 8);
  const auto prefixed = chip::parseFpvaSpec("fpva:16x12");
  EXPECT_EQ(prefixed.rows, 16);
  EXPECT_EQ(prefixed.cols, 12);
}

TEST(FpvaSpec, ParsesKeysWithEitherSeparator) {
  const auto p = chip::parseFpvaSpec(
      "fpva:16x16:pitch=5,margin=4:block=2x4,lm=75:obs=25:pins=8,seq=20,"
      "delta=3:seed=42");
  EXPECT_EQ(p.rows, 16);
  EXPECT_EQ(p.cols, 16);
  EXPECT_EQ(p.pitch, 5);
  EXPECT_EQ(p.margin, 4);
  EXPECT_EQ(p.blockRows, 2);
  EXPECT_EQ(p.blockCols, 4);
  EXPECT_EQ(p.lmPercent, 75);
  EXPECT_EQ(p.obstaclePermille, 25);
  EXPECT_EQ(p.extraPins, 8);
  EXPECT_EQ(p.sequenceLength, 20);
  EXPECT_EQ(p.delta, 3);
  EXPECT_EQ(p.seed, 42u);
}

TEST(FpvaSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(chip::parseFpvaSpec(""), std::invalid_argument);
  EXPECT_THROW(chip::parseFpvaSpec("8"), std::invalid_argument);
  EXPECT_THROW(chip::parseFpvaSpec("8x"), std::invalid_argument);
  EXPECT_THROW(chip::parseFpvaSpec("axb"), std::invalid_argument);
  EXPECT_THROW(chip::parseFpvaSpec("8x8:bogus=1"), std::invalid_argument);
  EXPECT_THROW(chip::parseFpvaSpec("8x8:pitch="), std::invalid_argument);
  EXPECT_THROW(chip::parseFpvaSpec("8x8:block=2"), std::invalid_argument);
}

TEST(FpvaSpec, IsFpvaSpecRecognizesThePrefixOnly) {
  EXPECT_TRUE(chip::isFpvaSpec("fpva:8x8"));
  EXPECT_FALSE(chip::isFpvaSpec("8x8"));  // bare dims: CLI-only shorthand
  EXPECT_FALSE(chip::isFpvaSpec("Chip1"));
  EXPECT_FALSE(chip::isFpvaSpec("designs/fpva.chip"));
}

TEST(FpvaGenerator, RejectsInfeasibleParameters) {
  chip::FpvaParams p;
  p.rows = 1;  // below the 2x2 minimum array
  EXPECT_THROW(chip::generateFpvaChip(p), std::invalid_argument);
  p = {};
  p.pitch = 2;  // below the minimum routable pitch
  EXPECT_THROW(chip::generateFpvaChip(p), std::invalid_argument);
  p = {};
  p.blockRows = 1;
  p.blockCols = 1;  // a block must hold at least two valves
  EXPECT_THROW(chip::generateFpvaChip(p), std::invalid_argument);
  p = {};
  p.rows = 50000;  // grid would overflow the int32 cell-index range
  p.cols = 50000;
  EXPECT_THROW(chip::generateFpvaChip(p), std::invalid_argument);
}

TEST(FpvaGenerator, RandomParamsAlwaysGenerateValidChips) {
  for (std::uint32_t seed = 0; seed < 25; ++seed) {
    const auto params = chip::randomFpvaParams(seed);
    const auto c = chip::generateFpvaChip(params);
    EXPECT_EQ(c.validate(), std::nullopt) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pacor
