#include <gtest/gtest.h>

#include <queue>
#include <random>
#include <unordered_set>

#include "route/astar.hpp"
#include "route/bounded_astar.hpp"
#include "route/bump_detour.hpp"
#include "route/negotiation.hpp"

namespace pacor::route {
namespace {

using geom::Point;
using grid::Grid;
using grid::ObstacleMap;

/// Reference BFS shortest-path length (-1 when unreachable).
std::int64_t bfsDistance(const ObstacleMap& obs, Point s, Point t) {
  if (!obs.isFree(s) || !obs.isFree(t)) return -1;
  std::unordered_map<Point, std::int64_t> dist;
  std::queue<Point> q;
  q.push(s);
  dist.emplace(s, 0);
  while (!q.empty()) {
    const Point p = q.front();
    q.pop();
    if (p == t) return dist.at(p);
    obs.grid().forNeighbors(p, [&](Point n) {
      if (!obs.isFree(n) || dist.contains(n)) return;
      dist.emplace(n, dist.at(p) + 1);
      q.push(n);
    });
  }
  return -1;
}

ObstacleMap randomMap(std::mt19937& rng, std::int32_t size, int obstaclePct) {
  ObstacleMap obs{Grid(size, size)};
  for (std::int32_t y = 0; y < size; ++y)
    for (std::int32_t x = 0; x < size; ++x)
      if (static_cast<int>(rng() % 100) < obstaclePct) obs.addObstacle({x, y});
  return obs;
}

Point randomFree(std::mt19937& rng, const ObstacleMap& obs) {
  const auto& g = obs.grid();
  for (int tries = 0; tries < 1000; ++tries) {
    const Point p{static_cast<std::int32_t>(rng() % static_cast<unsigned>(g.width())),
                  static_cast<std::int32_t>(rng() % static_cast<unsigned>(g.height()))};
    if (obs.isFree(p)) return p;
  }
  return {0, 0};
}

// --- A* agrees with BFS on random mazes ----------------------------------

class AStarOptimality : public ::testing::TestWithParam<int> {};

TEST_P(AStarOptimality, MatchesBfsShortestPath) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 25; ++trial) {
    auto obs = randomMap(rng, 14, 25);
    const Point s = randomFree(rng, obs);
    const Point t = randomFree(rng, obs);
    const auto expected = bfsDistance(obs, s, t);
    const auto r = aStarPointToPoint(obs, s, t);
    if (expected < 0) {
      EXPECT_FALSE(r.success);
    } else {
      ASSERT_TRUE(r.success);
      EXPECT_EQ(pathLength(r.path), expected);
      EXPECT_TRUE(isValidChannel(r.path));
      for (const Point p : r.path) EXPECT_TRUE(obs.isFree(p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarOptimality, ::testing::Range(1, 9));

// --- Bounded-length routing invariants ------------------------------------

struct BoundedCase {
  int seed;
  std::int64_t extraSlack;  // window bottom = manhattan + extraSlack
};

class BoundedRouteProperty : public ::testing::TestWithParam<BoundedCase> {};

TEST_P(BoundedRouteProperty, ResultsAreSimpleAndInWindow) {
  const auto [seed, extra] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed));
  int successes = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto obs = randomMap(rng, 16, 12);
    const Point s = randomFree(rng, obs);
    const Point t = randomFree(rng, obs);
    if (s == t) continue;
    const std::int64_t base = geom::manhattan(s, t);
    BoundedAStarRequest req;
    req.source = s;
    req.target = t;
    // Parity-align the window bottom with reachable lengths.
    req.minLength = base + extra + (extra % 2 != 0 ? 1 : 0);
    req.maxLength = req.minLength + 1;
    const auto r = boundedLengthRoute(obs, req);
    if (!r.success) continue;  // congestion may make the window infeasible
    ++successes;
    EXPECT_TRUE(isValidChannel(r.path));
    EXPECT_EQ(r.path.front(), s);
    EXPECT_EQ(r.path.back(), t);
    EXPECT_GE(r.length, req.minLength);
    EXPECT_LE(r.length, req.maxLength);
    EXPECT_EQ(pathLength(r.path), r.length);
    for (const Point p : r.path) EXPECT_TRUE(obs.isFree(p));
  }
  EXPECT_GT(successes, 0);  // the sweep must exercise the success path
}

INSTANTIATE_TEST_SUITE_P(
    WindowSweep, BoundedRouteProperty,
    ::testing::Values(BoundedCase{1, 0}, BoundedCase{2, 2}, BoundedCase{3, 4},
                      BoundedCase{4, 8}, BoundedCase{5, 16}, BoundedCase{6, 1},
                      BoundedCase{7, 7}));

TEST(BoundedRouteProperty, AlwaysSucceedsOnOpenGridWithModestSlack) {
  ObstacleMap obs{Grid(24, 24)};
  for (std::int64_t extra = 0; extra <= 20; extra += 2) {
    BoundedAStarRequest req;
    req.source = {4, 12};
    req.target = {19, 12};
    req.minLength = 15 + extra;
    req.maxLength = 15 + extra + 1;
    const auto r = boundedLengthRoute(obs, req);
    ASSERT_TRUE(r.success) << "extra " << extra;
    EXPECT_GE(r.length, req.minLength);
    EXPECT_LE(r.length, req.maxLength);
  }
}

// --- Bump detour invariants ------------------------------------------------

class BumpDetourProperty : public ::testing::TestWithParam<int> {};

TEST_P(BumpDetourProperty, PreservesEndpointsAndStaysInWindow) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 15; ++trial) {
    ObstacleMap obs{Grid(28, 28)};
    // Straight base path at a random row.
    const auto y = static_cast<std::int32_t>(4 + rng() % 20);
    Path base;
    for (std::int32_t x = 4; x <= 20; ++x) base.push_back({x, y});
    const std::int64_t want = pathLength(base) + 2 * static_cast<std::int64_t>(rng() % 8);

    BumpDetourRequest req;
    req.path = base;
    req.minLength = want;
    req.maxLength = want + 1;
    const auto r = bumpDetour(obs, req);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.path.front(), base.front());
    EXPECT_EQ(r.path.back(), base.back());
    EXPECT_TRUE(isValidChannel(r.path));
    EXPECT_GE(r.length, req.minLength);
    EXPECT_LE(r.length, req.maxLength);
    // Bumps only ever ADD cells; the original cells stay in order.
    std::unordered_set<Point> newCells(r.path.begin(), r.path.end());
    for (const Point p : base) EXPECT_TRUE(newCells.contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BumpDetourProperty, ::testing::Range(1, 7));

// --- Negotiation invariants --------------------------------------------------

class NegotiationProperty : public ::testing::TestWithParam<int> {};

TEST_P(NegotiationProperty, RoutedPathsAreDisjointAcrossGroups) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  ObstacleMap obs{Grid(24, 24)};
  std::vector<NegotiationEdge> edges;
  for (int i = 0; i < 6; ++i) {
    NegotiationEdge e;
    e.a = {Point{static_cast<std::int32_t>(1 + rng() % 6),
                 static_cast<std::int32_t>(2 + 3 * i)}};
    e.b = {Point{static_cast<std::int32_t>(17 + rng() % 6),
                 static_cast<std::int32_t>(2 + 3 * ((i + 2) % 6))}};
    e.group = i;
    edges.push_back(std::move(e));
  }
  const auto r = negotiatedRoute(obs, edges);
  std::unordered_map<Point, int> ownerOf;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!r.routed[i]) continue;
    EXPECT_TRUE(isValidChannel(r.paths[i]));
    EXPECT_EQ(r.paths[i].front(), edges[i].a.front());
    EXPECT_EQ(r.paths[i].back(), edges[i].b.front());
    for (const Point p : r.paths[i]) {
      const auto [it, fresh] = ownerOf.emplace(p, edges[i].group);
      EXPECT_TRUE(fresh || it->second == edges[i].group) << p.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NegotiationProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace pacor::route
