#include <gtest/gtest.h>

#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"
#include "verify/oracle.hpp"

// `--fast-escape` (PacorConfig::fastEscape) reorders augmentations inside
// the escape-flow solver, so its output is not covered by the golden
// hashes; this suite is the gate instead. For every Table-1 design the
// fast route must be oracle-clean and exactly as complete as the classic
// one, and the *first* escape pass -- the only pass where both solvers
// see the identical network, before committed paths diverge -- must
// reach the same lexicographic (routed count, flow cost) optimum.

namespace pacor {
namespace {

class FastEscapeOracle : public ::testing::TestWithParam<int> {};

TEST_P(FastEscapeOracle, Table1DesignIsOracleCleanAndCostEqual) {
  const chip::GeneratorParams params =
      chip::table1Designs()[static_cast<std::size_t>(GetParam())];
  const chip::Chip chip = chip::generateChip(params);

  const core::PacorResult classic = core::routeChip(chip);
  core::PacorConfig cfg = core::pacorDefaultConfig();
  cfg.fastEscape = true;
  const core::PacorResult fast = core::routeChip(chip, cfg);

  const auto report = verify::verifySolution(chip, fast);
  EXPECT_TRUE(report.clean()) << params.name << ": " << report.str();
  EXPECT_EQ(classic.complete, fast.complete) << params.name;

  EXPECT_EQ(fast.metrics.getInt("escape.flow.fast", -1), 1) << params.name;
  EXPECT_EQ(classic.metrics.getInt("escape.flow.first_routed", -1),
            fast.metrics.getInt("escape.flow.first_routed", -2))
      << params.name;
  EXPECT_EQ(classic.metrics.getInt("escape.flow.first_cost", -1),
            fast.metrics.getInt("escape.flow.first_cost", -2))
      << params.name;
}

INSTANTIATE_TEST_SUITE_P(Table1, FastEscapeOracle, ::testing::Range(0, 7));

}  // namespace
}  // namespace pacor
