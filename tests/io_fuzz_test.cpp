#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "chip/generator.hpp"
#include "chip/io.hpp"
#include "chip/synth_spec.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "verify/oracle.hpp"

namespace pacor {
namespace {

/// Robustness sweeps over the three text formats: every truncation and
/// simple mutation must either parse to a valid object or throw -- never
/// crash, hang, or return garbage that fails validation.

std::string chipText() {
  std::stringstream buf;
  chip::writeChip(buf, chip::generateChip(chip::s1Params()));
  return buf.str();
}

std::string solutionText() {
  const auto chip = chip::generateChip(chip::s1Params());
  std::stringstream buf;
  core::writeSolution(buf, core::routeChip(chip));
  return buf.str();
}

std::string synthText() {
  chip::SynthSpec spec;
  spec.die = grid::Grid(16, 16);
  spec.valveSites = {{4, 4}, {10, 4}};
  spec.flow.channels.push_back({{{2, 8}, {13, 8}}});
  spec.pinSites = {{0, 5}, {15, 5}};
  spec.clusters = {{{0, 1}, true}};
  spec.assay.horizon = 4;
  spec.assay.operations = {{"op", 0, 2, {0, 1}, {}}};
  std::stringstream buf;
  chip::writeSynthSpec(buf, spec);
  return buf.str();
}

class TruncationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TruncationFuzz, ChipReaderNeverCrashes) {
  const std::string full = chipText();
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cut = rng() % full.size();
    std::stringstream is(full.substr(0, cut));
    try {
      const chip::Chip c = chip::readChip(is);
      EXPECT_EQ(c.validate(), std::nullopt);  // parsed => valid
    } catch (const std::runtime_error&) {
      // expected for most cuts
    } catch (const std::invalid_argument&) {
      // activation-sequence validation can fire mid-token
    }
  }
}

// Regression: a chip header like "grid 65536 65536" used to parse
// "successfully" -- width * height overflows the int32 cell-index range,
// so every Grid::index() past the wrap point silently corrupted. The
// reader must reject such dies at parse time.
TEST(ChipReaderOverflow, RejectsGridsPastInt32CellRange) {
  const std::string full = chipText();
  const std::size_t gridPos = full.find("\ngrid ");
  ASSERT_NE(gridPos, std::string::npos);
  const std::size_t lineEnd = full.find('\n', gridPos + 1);
  const std::string huge = full.substr(0, gridPos) + "\ngrid 65536 65536" +
                           full.substr(lineEnd);
  std::stringstream is(huge);
  EXPECT_THROW(chip::readChip(is), std::runtime_error);

  // A big-but-representable die still parses (cells fit in int32); the
  // original content round-trips unchanged.
  std::stringstream ok(full);
  EXPECT_EQ(chip::readChip(ok).validate(), std::nullopt);
}

TEST_P(TruncationFuzz, SolutionReaderNeverCrashes) {
  const std::string full = solutionText();
  std::mt19937 rng(static_cast<unsigned>(100 + GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cut = rng() % full.size();
    std::stringstream is(full.substr(0, cut));
    try {
      (void)core::readSolution(is);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST_P(TruncationFuzz, SynthReaderNeverCrashes) {
  const std::string full = synthText();
  std::mt19937 rng(static_cast<unsigned>(200 + GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cut = rng() % full.size();
    std::stringstream is(full.substr(0, cut));
    try {
      (void)chip::readSynthSpec(is);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST_P(TruncationFuzz, MutatedChipEitherParsesValidOrThrows) {
  const std::string full = chipText();
  std::mt19937 rng(static_cast<unsigned>(300 + GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = full;
    // Flip a handful of characters to digits/garbage.
    for (int k = 0; k < 3; ++k) {
      const std::size_t pos = rng() % mutated.size();
      const char repl[] = {'0', '9', '-', 'Z', ' '};
      mutated[pos] = repl[rng() % std::size(repl)];
    }
    std::stringstream is(mutated);
    try {
      const chip::Chip c = chip::readChip(is);
      EXPECT_EQ(c.validate(), std::nullopt);
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruncationFuzz, ::testing::Range(1, 5));

TEST(SolutionOracleRoundTrip, ParseWriteParseVerifyIsStable) {
  // solution_io must be a faithful codec for the oracle: parse -> write ->
  // parse must reproduce the same bytes, and the oracle must reach the
  // same verdict on the original result and on its round-tripped twin.
  const auto chip = chip::generateChip(chip::s2Params());
  const core::PacorResult routed = core::routeChip(chip);
  const auto original = verify::verifySolution(chip, routed);
  EXPECT_TRUE(original.clean()) << original.str();

  const std::string once = core::solutionToString(routed);
  const core::PacorResult reparsed = core::solutionFromString(once);
  EXPECT_EQ(core::solutionToString(reparsed), once);
  const auto roundTripped = verify::verifySolution(chip, reparsed);
  EXPECT_TRUE(roundTripped.clean()) << roundTripped.str();
}

TEST_P(TruncationFuzz, MutatedSolutionEitherThrowsOrVerifiesSafely) {
  // A malformed .sol must be rejected with a diagnostic (std::runtime_error
  // from the parser) or, if it happens to still parse, survive the full
  // oracle without UB: unknown valve/pin ids, wild coordinates and broken
  // channels all become typed violations, never crashes.
  const auto chip = chip::generateChip(chip::s1Params());
  std::stringstream routedBuf;
  core::writeSolution(routedBuf, core::routeChip(chip));
  const std::string full = routedBuf.str();

  std::mt19937 rng(static_cast<unsigned>(400 + GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = full;
    for (int k = 0; k < 3; ++k) {
      const std::size_t pos = rng() % mutated.size();
      const char repl[] = {'0', '9', '-', 'Z', ' '};
      mutated[pos] = repl[rng() % std::size(repl)];
    }
    try {
      const core::PacorResult parsed = core::solutionFromString(mutated);
      const auto report = verify::verifySolution(chip, parsed);
      // Write/parse/verify again: the verdict must be codec-independent.
      const core::PacorResult again =
          core::solutionFromString(core::solutionToString(parsed));
      EXPECT_EQ(verify::verifySolution(chip, again).clean(), report.clean());
    } catch (const std::runtime_error&) {
      // the parser's diagnostic path -- expected for most mutations
    }
  }
}

}  // namespace
}  // namespace pacor
