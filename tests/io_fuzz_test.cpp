#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "chip/generator.hpp"
#include "chip/io.hpp"
#include "chip/synth_spec.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"

namespace pacor {
namespace {

/// Robustness sweeps over the three text formats: every truncation and
/// simple mutation must either parse to a valid object or throw -- never
/// crash, hang, or return garbage that fails validation.

std::string chipText() {
  std::stringstream buf;
  chip::writeChip(buf, chip::generateChip(chip::s1Params()));
  return buf.str();
}

std::string solutionText() {
  const auto chip = chip::generateChip(chip::s1Params());
  std::stringstream buf;
  core::writeSolution(buf, core::routeChip(chip));
  return buf.str();
}

std::string synthText() {
  chip::SynthSpec spec;
  spec.die = grid::Grid(16, 16);
  spec.valveSites = {{4, 4}, {10, 4}};
  spec.flow.channels.push_back({{{2, 8}, {13, 8}}});
  spec.pinSites = {{0, 5}, {15, 5}};
  spec.clusters = {{{0, 1}, true}};
  spec.assay.horizon = 4;
  spec.assay.operations = {{"op", 0, 2, {0, 1}, {}}};
  std::stringstream buf;
  chip::writeSynthSpec(buf, spec);
  return buf.str();
}

class TruncationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TruncationFuzz, ChipReaderNeverCrashes) {
  const std::string full = chipText();
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cut = rng() % full.size();
    std::stringstream is(full.substr(0, cut));
    try {
      const chip::Chip c = chip::readChip(is);
      EXPECT_EQ(c.validate(), std::nullopt);  // parsed => valid
    } catch (const std::runtime_error&) {
      // expected for most cuts
    } catch (const std::invalid_argument&) {
      // activation-sequence validation can fire mid-token
    }
  }
}

TEST_P(TruncationFuzz, SolutionReaderNeverCrashes) {
  const std::string full = solutionText();
  std::mt19937 rng(static_cast<unsigned>(100 + GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cut = rng() % full.size();
    std::stringstream is(full.substr(0, cut));
    try {
      (void)core::readSolution(is);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST_P(TruncationFuzz, SynthReaderNeverCrashes) {
  const std::string full = synthText();
  std::mt19937 rng(static_cast<unsigned>(200 + GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cut = rng() % full.size();
    std::stringstream is(full.substr(0, cut));
    try {
      (void)chip::readSynthSpec(is);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST_P(TruncationFuzz, MutatedChipEitherParsesValidOrThrows) {
  const std::string full = chipText();
  std::mt19937 rng(static_cast<unsigned>(300 + GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = full;
    // Flip a handful of characters to digits/garbage.
    for (int k = 0; k < 3; ++k) {
      const std::size_t pos = rng() % mutated.size();
      const char repl[] = {'0', '9', '-', 'Z', ' '};
      mutated[pos] = repl[rng() % std::size(repl)];
    }
    std::stringstream is(mutated);
    try {
      const chip::Chip c = chip::readChip(is);
      EXPECT_EQ(c.validate(), std::nullopt);
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruncationFuzz, ::testing::Range(1, 5));

}  // namespace
}  // namespace pacor
