// Differential regression corpus: the canonical solution text of every
// Table-1 design (default flow, serial) is pinned by SHA-256 in
// tests/golden/solution_hashes.txt. Any refactor that changes routed
// output -- intentionally or not -- fails here at review time instead of
// being discovered by accident downstream.
//
// To re-pin after an *intentional* output change:
//   PACOR_UPDATE_GOLDEN=1 ctest -R golden_solution_test
// then commit the rewritten hash file along with the change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "util/sha256.hpp"

#ifndef PACOR_GOLDEN_DIR
#error "PACOR_GOLDEN_DIR must point at tests/golden"
#endif

namespace pacor {
namespace {

const std::string kHashFile = std::string(PACOR_GOLDEN_DIR) + "/solution_hashes.txt";

std::map<std::string, std::string> readGolden() {
  std::map<std::string, std::string> golden;
  std::ifstream is(kHashFile);
  std::string name, hash;
  while (is >> name >> hash) golden[name] = hash;
  return golden;
}

TEST(Sha256, MatchesKnownVectors) {
  EXPECT_EQ(util::sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(util::sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(util::sha256Hex(std::string(1000, 'a')),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3");
}

TEST(GoldenSolutions, Table1OutputsAreBitStable) {
  std::map<std::string, std::string> actual;
  for (const auto& params : chip::table1Designs()) {
    const chip::Chip chip = chip::generateChip(params);
    const core::PacorResult result = core::routeChip(chip);
    ASSERT_TRUE(result.complete) << params.name;
    actual[params.name] = util::sha256Hex(core::solutionToString(result));
  }

  if (std::getenv("PACOR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(kHashFile);
    ASSERT_TRUE(os) << "cannot rewrite " << kHashFile;
    for (const auto& [name, hash] : actual) os << name << ' ' << hash << '\n';
    GTEST_SKIP() << "golden hashes re-pinned; review and commit " << kHashFile;
  }

  const auto golden = readGolden();
  ASSERT_FALSE(golden.empty()) << "missing or empty " << kHashFile;
  for (const auto& [name, hash] : actual) {
    const auto it = golden.find(name);
    ASSERT_NE(it, golden.end()) << name << " missing from " << kHashFile;
    EXPECT_EQ(it->second, hash)
        << name << " routed output changed. If intentional, re-pin with "
        << "PACOR_UPDATE_GOLDEN=1 and commit the diff.";
  }
  EXPECT_EQ(golden.size(), actual.size()) << "stale extra entries in " << kHashFile;
}

}  // namespace
}  // namespace pacor
