#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "dme/candidate_tree.hpp"
#include "dme/merging.hpp"
#include "dme/topology.hpp"
#include "grid/obstacle_map.hpp"

namespace pacor::dme {
namespace {

using geom::Point;

TEST(Topology, ManhattanDiameter) {
  const std::vector<Point> pts{{0, 0}, {3, 0}, {0, 4}};
  EXPECT_EQ(manhattanDiameter(pts), 7);
  EXPECT_EQ(manhattanDiameter(std::vector<Point>{}), 0);
  EXPECT_EQ(manhattanDiameter(std::vector<Point>{{5, 5}}), 0);
}

TEST(Topology, TwoSinks) {
  const std::vector<Point> sinks{{0, 0}, {4, 0}};
  const Topology topo = balancedBipartition(sinks);
  EXPECT_EQ(topo.nodes.size(), 3u);
  EXPECT_EQ(topo.leafCount(), 2u);
  EXPECT_TRUE(topo.coversAllSinks(2));
}

TEST(Topology, PowerOfTwoIsBalanced) {
  const std::vector<Point> sinks{{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  const Topology topo = balancedBipartition(sinks);
  EXPECT_EQ(topo.nodes.size(), 7u);
  EXPECT_TRUE(topo.coversAllSinks(4));
  // Root children each hold two leaves (balanced).
  const TopologyNode& root = topo.nodes[static_cast<std::size_t>(topo.root)];
  const auto countLeaves = [&](int node) {
    std::vector<int> stack{node};
    std::size_t leaves = 0;
    while (!stack.empty()) {
      const TopologyNode& n = topo.nodes[static_cast<std::size_t>(stack.back())];
      stack.pop_back();
      if (n.isLeaf())
        ++leaves;
      else {
        stack.push_back(n.left);
        stack.push_back(n.right);
      }
    }
    return leaves;
  };
  EXPECT_EQ(countLeaves(root.left), 2u);
  EXPECT_EQ(countLeaves(root.right), 2u);
}

TEST(Topology, SplitsSeparatedGroups) {
  // Two tight pairs far apart: BB must not mix the groups (that would
  // inflate the diameter sum).
  const std::vector<Point> sinks{{0, 0}, {1, 0}, {40, 40}, {41, 40}};
  const Topology topo = balancedBipartition(sinks);
  const TopologyNode& root = topo.nodes[static_cast<std::size_t>(topo.root)];
  const auto leavesUnder = [&](int node) {
    std::vector<int> stack{node};
    std::vector<int> sinksFound;
    while (!stack.empty()) {
      const TopologyNode& n = topo.nodes[static_cast<std::size_t>(stack.back())];
      stack.pop_back();
      if (n.isLeaf())
        sinksFound.push_back(n.sink);
      else {
        stack.push_back(n.left);
        stack.push_back(n.right);
      }
    }
    std::sort(sinksFound.begin(), sinksFound.end());
    return sinksFound;
  };
  const auto l = leavesUnder(root.left);
  const auto r = leavesUnder(root.right);
  const std::vector<int> g1{0, 1}, g2{2, 3};
  EXPECT_TRUE((l == g1 && r == g2) || (l == g2 && r == g1));
}

TEST(Topology, OddCountCovered) {
  const std::vector<Point> sinks{{0, 0}, {8, 0}, {4, 6}, {2, 9}, {9, 9}};
  const Topology topo = balancedBipartition(sinks);
  EXPECT_TRUE(topo.coversAllSinks(5));
  EXPECT_EQ(topo.leafCount(), 5u);
}

TEST(Merging, TwoSinksZeroSkew) {
  const std::vector<Point> sinks{{0, 0}, {6, 0}};
  const Topology topo = balancedBipartition(sinks);
  const MergePlan plan = computeMergePlan(topo, sinks);
  const MergeNode& root = plan.nodes[static_cast<std::size_t>(topo.root)];
  // Doubled space: distance 12, split 6/6.
  EXPECT_EQ(root.edgeLeft + root.edgeRight, 12);
  EXPECT_EQ(root.edgeLeft, root.edgeRight);
  EXPECT_EQ(root.delay, 6);
  EXPECT_EQ(root.skewSlack, 0);
  EXPECT_FALSE(root.region.empty());
}

TEST(Merging, FourSymmetricSinksExactZeroSkew) {
  const std::vector<Point> sinks{{0, 0}, {8, 0}, {0, 8}, {8, 8}};
  const Topology topo = balancedBipartition(sinks);
  const MergePlan plan = computeMergePlan(topo, sinks);
  EXPECT_EQ(plan.maxSkewSlack(topo), 0);
  // Every sink's target root distance equals the root delay by
  // construction; verify via the per-node recurrence.
  const auto& rootNode = plan.nodes[static_cast<std::size_t>(topo.root)];
  EXPECT_GT(rootNode.delay, 0);
}

TEST(Merging, DetourCaseBalancesUnequalDepths) {
  // Collinear, clumped: {0,0},{2,0} merge cheaply; {20,0},{22,0} likewise;
  // final merge forces wire; delays must balance at the root.
  const std::vector<Point> sinks{{0, 0}, {2, 0}, {20, 0}, {22, 0}};
  const Topology topo = balancedBipartition(sinks);
  const MergePlan plan = computeMergePlan(topo, sinks);
  const auto& root = plan.nodes[static_cast<std::size_t>(topo.root)];
  const auto& l = plan.nodes[static_cast<std::size_t>(
      topo.nodes[static_cast<std::size_t>(topo.root)].left)];
  const auto& r = plan.nodes[static_cast<std::size_t>(
      topo.nodes[static_cast<std::size_t>(topo.root)].right)];
  EXPECT_EQ(l.delay + root.edgeLeft, r.delay + root.edgeRight);
  EXPECT_EQ(root.delay, l.delay + root.edgeLeft);
}

TEST(Merging, TotalTargetWireAtLeastHalfPerimeterBound) {
  const std::vector<Point> sinks{{0, 0}, {10, 2}, {3, 9}, {12, 12}};
  const Topology topo = balancedBipartition(sinks);
  const MergePlan plan = computeMergePlan(topo, sinks);
  // Any tree connecting the sinks needs at least diameter total length
  // (doubled space doubles it); sanity-check the accounting is plausible.
  EXPECT_GE(plan.totalTargetWire, manhattanDiameter(sinks) * 2 / 2);
}

grid::ObstacleMap emptyMap(std::int32_t w = 32, std::int32_t h = 32) {
  return grid::ObstacleMap(grid::Grid(w, h));
}

TEST(CandidateTrees, Figure3FourSinks) {
  // The paper's Fig. 3 scenario: four sinks with diagonal offsets (axis-
  // aligned pairs would degenerate every merging segment to a point),
  // several distinct candidate trees, each internally consistent.
  const auto obs = emptyMap();
  const std::vector<Point> sinks{{8, 8}, {18, 12}, {10, 20}, {20, 24}};
  const auto cands = buildCandidateTrees(obs, 0, sinks, {.count = 5});
  ASSERT_GE(cands.size(), 2u);  // multiple merging-node choices exist
  std::int64_t bestMismatch = std::numeric_limits<std::int64_t>::max();
  for (const auto& c : cands) {
    EXPECT_TRUE(c.topo.coversAllSinks(4));
    EXPECT_EQ(c.edges().size(), 6u);  // 3 internal nodes x 2
    // DME targets are zero-skew; the embedded estimate may deviate only
    // by grid rounding (Lemma 1), never grossly.
    EXPECT_LE(c.mismatchEstimate, 4);
    bestMismatch = std::min(bestMismatch, c.mismatchEstimate);
    for (const Point p : c.embed) {
      EXPECT_GE(p.x, 0);
      EXPECT_LT(p.x, 32);
      EXPECT_GE(p.y, 0);
      EXPECT_LT(p.y, 32);
    }
  }
  EXPECT_LE(bestMismatch, 1);
  // Candidates must actually differ.
  EXPECT_NE(cands[0].embed, cands[1].embed);
}

TEST(CandidateTrees, LeavesEmbedAtSinks) {
  const auto obs = emptyMap();
  const std::vector<Point> sinks{{5, 5}, {25, 6}, {14, 25}};
  const auto cands = buildCandidateTrees(obs, 0, sinks, {.count = 3});
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands)
    for (std::size_t i = 0; i < c.topo.nodes.size(); ++i)
      if (c.topo.nodes[i].isLeaf()) {
        EXPECT_EQ(c.embed[i], sinks[static_cast<std::size_t>(c.topo.nodes[i].sink)]);
      }
}

TEST(CandidateTrees, SinkPathsReachRoot) {
  const auto obs = emptyMap();
  const std::vector<Point> sinks{{5, 5}, {25, 6}, {14, 25}, {28, 28}};
  const auto cands = buildCandidateTrees(obs, 0, sinks, {.count = 2});
  ASSERT_FALSE(cands.empty());
  const auto paths = cands[0].sinkToRootPaths();
  ASSERT_EQ(paths.size(), 4u);
  for (const auto& path : paths) {
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), cands[0].topo.root);
    EXPECT_TRUE(cands[0].topo.nodes[static_cast<std::size_t>(path.front())].isLeaf());
  }
}

TEST(CandidateTrees, AvoidsObstaclesAtMergingNodes) {
  auto obs = emptyMap();
  // Blanket the central block where merging nodes would naturally land.
  for (std::int32_t x = 12; x <= 18; ++x)
    for (std::int32_t y = 12; y <= 18; ++y) obs.addObstacle({x, y});
  const std::vector<Point> sinks{{8, 8}, {22, 8}, {8, 22}, {22, 22}};
  const auto cands = buildCandidateTrees(obs, 0, sinks, {.count = 4});
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands)
    for (std::size_t i = 0; i < c.topo.nodes.size(); ++i)
      if (!c.topo.nodes[i].isLeaf()) {
        EXPECT_FALSE(obs.isObstacle(c.embed[i]));
      }
}

TEST(CandidateTrees, SingleSinkDegenerates) {
  const auto obs = emptyMap();
  const std::vector<Point> sinks{{7, 7}};
  const auto cands = buildCandidateTrees(obs, 0, sinks, {.count = 3});
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].edges().empty());
  EXPECT_EQ(cands[0].embed[0], (Point{7, 7}));
}

TEST(CandidateTrees, OddDistancePairStillEmbeds) {
  // Lemma 1: odd Manhattan distance puts the merging segment off-grid;
  // the embedding must still produce an on-grid node.
  const auto obs = emptyMap();
  const std::vector<Point> sinks{{5, 5}, {10, 5}};  // distance 5, odd
  const auto cands = buildCandidateTrees(obs, 0, sinks, {.count = 3});
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands) {
    const Point root = c.embed[static_cast<std::size_t>(c.topo.root)];
    const auto d1 = geom::manhattan(root, sinks[0]);
    const auto d2 = geom::manhattan(root, sinks[1]);
    // Snap error is at most one grid unit of skew.
    EXPECT_LE(std::abs(d1 - d2), 1);
    EXPECT_EQ(d1 + d2, 5);  // root lies on a shortest path between sinks
  }
}

TEST(CandidateTrees, EstimateMatchesEmbeddedDistances) {
  const auto obs = emptyMap();
  const std::vector<Point> sinks{{4, 4}, {20, 4}, {12, 24}};
  const auto cands = buildCandidateTrees(obs, 0, sinks, {.count = 3});
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands) {
    std::int64_t total = 0;
    for (const auto& [p, ch] : c.edges())
      total += geom::manhattan(c.embed[static_cast<std::size_t>(p)],
                               c.embed[static_cast<std::size_t>(ch)]);
    EXPECT_EQ(total, c.totalEstimatedLength);
  }
}

}  // namespace
}  // namespace pacor::dme
