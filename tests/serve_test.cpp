// Long-lived serve mode: per-request isolation contracts.
//
//  * Request-scoped search counters: two concurrent in-process routeChip
//    calls must report exactly the per-stage search effort of the same
//    designs run serially (the seed implementation differenced a
//    process-wide tally, so concurrent calls cross-contaminated each
//    other's search.* metrics).
//  * Serve-vs-oneshot byte-identity: requests through one Server -- which
//    shares a thread pool and per-design obstacle templates across
//    requests, sequentially and concurrently -- produce canonical
//    solution text identical to a fresh one-shot routeChip.
//  * Trace ownership: concurrent traced requests are serialized by the
//    server, so both get their own complete trace and neither is
//    silently discarded by supersession.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chip/delta.hpp"
#include "chip/generator.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "serve/serve.hpp"
#include "util/sha256.hpp"

namespace pacor {
namespace {

core::PacorConfig serialConfig() {
  core::PacorConfig cfg = core::pacorDefaultConfig();
  cfg.jobs = 1;
  return cfg;
}

void expectCountersEqual(const route::SearchCounters& a,
                         const route::SearchCounters& b, const char* stage) {
  SCOPED_TRACE(stage);
  EXPECT_EQ(a.searches, b.searches);
  EXPECT_EQ(a.expansions, b.expansions);
  EXPECT_EQ(a.boundedVisits, b.boundedVisits);
}

void expectSameStageCounters(const core::PacorResult& a, const core::PacorResult& b) {
  expectCountersEqual(a.searchClusterRouting, b.searchClusterRouting,
                      "cluster_routing");
  expectCountersEqual(a.searchEscape, b.searchEscape, "escape");
  expectCountersEqual(a.searchDetour, b.searchDetour, "detour");
}

TEST(RequestIsolation, ConcurrentRouteChipCountersMatchSerial) {
  const chip::Chip chipA = chip::generateChip(chip::s3Params());
  const chip::Chip chipB = chip::generateChip(chip::s4Params());

  const core::PacorResult serialA = core::routeChip(chipA, serialConfig());
  const core::PacorResult serialB = core::routeChip(chipB, serialConfig());

  // Both calls run in flight together (spin barrier), so a process-global
  // tally difference would attribute each call's searches to the other.
  // These designs route in a few milliseconds, so one round can miss the
  // contamination window; many rounds make a pre-fix failure near-certain.
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE(round);
    core::PacorResult concurrentA;
    core::PacorResult concurrentB;
    std::atomic<int> ready{0};
    const auto runOn = [&ready](const chip::Chip& chip, core::PacorResult& out) {
      ready.fetch_add(1);
      while (ready.load() < 2) {
      }
      out = core::routeChip(chip, serialConfig());
    };
    std::thread ta(runOn, std::cref(chipA), std::ref(concurrentA));
    std::thread tb(runOn, std::cref(chipB), std::ref(concurrentB));
    ta.join();
    tb.join();

    expectSameStageCounters(serialA, concurrentA);
    expectSameStageCounters(serialB, concurrentB);
    ASSERT_EQ(core::solutionToString(serialA), core::solutionToString(concurrentA));
    ASSERT_EQ(core::solutionToString(serialB), core::solutionToString(concurrentB));
  }
}

TEST(RequestIsolation, ObstacleTemplateMustMatchTheChip) {
  const chip::Chip small = chip::generateChip(chip::s1Params());
  const chip::Chip big = chip::generateChip(chip::s3Params());
  const grid::ObstacleMap wrongTemplate = core::makeRoutingObstacleTemplate(small);
  core::RouteResources resources;
  resources.obstacleTemplate = &wrongTemplate;
  EXPECT_THROW(core::routeChip(big, serialConfig(), resources),
               std::invalid_argument);
}

TEST(ServeIdentity, SequentialRequestsMatchOneShot) {
  const chip::Chip chipA = chip::generateChip(chip::s2Params());
  const chip::Chip chipB = chip::generateChip(chip::s3Params());
  const std::string oneShotA =
      core::solutionToString(core::routeChip(chipA, serialConfig()));
  const std::string oneShotB =
      core::solutionToString(core::routeChip(chipB, serialConfig()));

  serve::Server server(/*jobs=*/2);
  serve::RequestOptions options;
  // Two rounds per design: the second request reuses the cached context
  // (obstacle template) and the warm worker pool.
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE(round);
    const serve::Response a = server.route("A", chipA, options);
    const serve::Response b = server.route("B", chipB, options);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_TRUE(a.complete);
    EXPECT_TRUE(b.complete);
    EXPECT_EQ(a.solutionText, oneShotA);
    EXPECT_EQ(b.solutionText, oneShotB);
    EXPECT_EQ(a.solutionHash, util::sha256Hex(oneShotA));
  }
  EXPECT_EQ(server.designCount(), 2u);
}

TEST(ServeIdentity, ConcurrentRequestsMatchOneShot) {
  const std::vector<chip::Chip> chips = {
      chip::generateChip(chip::s2Params()),
      chip::generateChip(chip::s3Params()),
      chip::generateChip(chip::s4Params()),
  };
  std::vector<std::string> oneShot;
  for (const chip::Chip& c : chips)
    oneShot.push_back(core::solutionToString(core::routeChip(c, serialConfig())));

  serve::Server server(/*jobs=*/2);
  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 3;
  std::vector<serve::Response> responses(kThreads * kRequestsPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        const int i = t * kRequestsPerThread + r;
        const std::size_t design = static_cast<std::size_t>(i) % chips.size();
        responses[i] = server.route("design" + std::to_string(design),
                                    chips[design], serve::RequestOptions{});
      }
    });
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kThreads * kRequestsPerThread; ++i) {
    SCOPED_TRACE(i);
    const std::size_t design = static_cast<std::size_t>(i) % chips.size();
    ASSERT_TRUE(responses[i].ok) << responses[i].error;
    EXPECT_EQ(responses[i].solutionText, oneShot[design]);
  }
  EXPECT_EQ(server.designCount(), chips.size());
}

TEST(ServeTrace, ConcurrentTracedRequestsBothRecord) {
  const chip::Chip chipA = chip::generateChip(chip::s2Params());
  const chip::Chip chipB = chip::generateChip(chip::s3Params());

  serve::Server server(/*jobs=*/2);
  serve::RequestOptions optionsA;
  optionsA.tracePath = testing::TempDir() + "serve_trace_a.json";
  serve::RequestOptions optionsB;
  optionsB.tracePath = testing::TempDir() + "serve_trace_b.json";

  serve::Response a;
  serve::Response b;
  std::thread ta([&] { a = server.route("A", chipA, optionsA); });
  std::thread tb([&] { b = server.route("B", chipB, optionsB); });
  ta.join();
  tb.join();

  for (const serve::Response* resp : {&a, &b}) {
    ASSERT_TRUE(resp->ok) << resp->error;
    EXPECT_FALSE(resp->traceDiscarded);
    EXPECT_GT(resp->traceSpans, 0);
  }
  EXPECT_TRUE(std::ifstream(optionsA.tracePath).good());
  EXPECT_TRUE(std::ifstream(optionsB.tracePath).good());
}

/// An interior cell owned by nothing in the routed design: legal to turn
/// into an obstacle without touching any committed channel.
geom::Point freeCellOf(const chip::Chip& c, const core::PacorResult& r) {
  const auto taken = [&](geom::Point p) {
    for (const chip::Valve& v : c.valves)
      if (v.pos == p) return true;
    for (const chip::ControlPin& pin : c.pins)
      if (pin.pos == p) return true;
    for (const geom::Point o : c.obstacles)
      if (o == p) return true;
    for (const core::RoutedCluster& rc : r.clusters) {
      for (const route::Path& path : rc.treePaths)
        for (const geom::Point cell : path)
          if (cell == p) return true;
      for (const geom::Point cell : rc.escapePath)
        if (cell == p) return true;
    }
    return false;
  };
  for (std::int32_t y = 1; y + 1 < c.routingGrid.height(); ++y)
    for (std::int32_t x = 1; x + 1 < c.routingGrid.width(); ++x)
      if (!taken({x, y})) return {x, y};
  ADD_FAILURE() << "no free interior cell";
  return {1, 1};
}

TEST(ServeSession, WarmEscapeSessionIsByteIdenticalToCold) {
  const chip::Chip chip = chip::generateChip(chip::s3Params());
  const std::string oneShot =
      core::solutionToString(core::routeChip(chip, serialConfig()));

  serve::Server server(/*jobs=*/1);
  serve::RequestOptions options;
  options.metricsPath = testing::TempDir() + "serve_warm_metrics.json";
  const serve::Response cold = server.route("W", chip, options);
  ASSERT_TRUE(cold.ok) << cold.error;
  std::stringstream coldJson;
  coldJson << std::ifstream(options.metricsPath).rdbuf();
  EXPECT_EQ(coldJson.str().find("\"escape.flow.cold_builds\": 0"),
            std::string::npos)
      << "first request should cold-build the escape session";

  // Second request reuses the persistent session (warm rebind, zero cold
  // builds) and must still produce byte-identical output.
  const serve::Response warm = server.route("W", chip, options);
  ASSERT_TRUE(warm.ok) << warm.error;
  std::stringstream warmJson;
  warmJson << std::ifstream(options.metricsPath).rdbuf();
  EXPECT_NE(warmJson.str().find("\"escape.flow.cold_builds\": 0"),
            std::string::npos)
      << warmJson.str();
  EXPECT_EQ(cold.solutionText, oneShot);
  EXPECT_EQ(warm.solutionText, oneShot);
}

TEST(ServeEco, EcoRequestAdvancesTheDesign) {
  const chip::Chip base = chip::generateChip(chip::s2Params());
  const core::PacorResult oneShot = core::routeChip(base, serialConfig());
  ASSERT_TRUE(oneShot.complete);

  serve::Server server(/*jobs=*/2);
  const std::shared_ptr<serve::DesignContext> ctx =
      server.context("E", [&] { return base; });
  const serve::Response before = server.route(*ctx, serve::RequestOptions{});
  ASSERT_TRUE(before.ok) << before.error;

  // An obstacle on free ground: identity -- the previous result carries.
  chip::ChipDelta d;
  d.addObstacle(freeCellOf(base, oneShot));
  const serve::Response eco = server.eco(*ctx, d, serve::RequestOptions{});
  ASSERT_TRUE(eco.ok) << eco.error;
  EXPECT_EQ(eco.ecoMode, "identity");
  EXPECT_EQ(eco.solutionHash, before.solutionHash);

  // The context now holds the edited chip: a later plain route must match
  // a one-shot of the edited design, not of the base.
  const chip::Chip edited = chip::apply(base, d);
  const serve::Response after = server.route(*ctx, serve::RequestOptions{});
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.solutionText,
            core::solutionToString(core::routeChip(edited, serialConfig())));
}

TEST(ServeEco, ConcurrentRouteAndEcoStayConsistent) {
  const chip::Chip base = chip::generateChip(chip::s2Params());
  const core::PacorResult oneShot = core::routeChip(base, serialConfig());
  ASSERT_TRUE(oneShot.complete);
  chip::ChipDelta d;
  d.addObstacle(freeCellOf(base, oneShot));
  const chip::Chip edited = chip::apply(base, d);

  serve::Server server(/*jobs=*/2);
  const std::shared_ptr<serve::DesignContext> ctx =
      server.context("C", [&] { return base; });

  // Routers race the eco edit: each response must match a one-shot of
  // whichever design state its request observed.
  const std::string baseText = core::solutionToString(oneShot);
  const std::string editedText =
      core::solutionToString(core::routeChip(edited, serialConfig()));
  constexpr int kRouteThreads = 3;
  std::vector<serve::Response> routed(kRouteThreads * 2);
  serve::Response ecoResp;
  std::vector<std::thread> threads;
  for (int t = 0; t < kRouteThreads; ++t)
    threads.emplace_back([&, t] {
      for (int r = 0; r < 2; ++r)
        routed[t * 2 + r] = server.route(*ctx, serve::RequestOptions{});
    });
  threads.emplace_back(
      [&] { ecoResp = server.eco(*ctx, d, serve::RequestOptions{}); });
  for (std::thread& t : threads) t.join();

  ASSERT_TRUE(ecoResp.ok) << ecoResp.error;
  for (const serve::Response& resp : routed) {
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_TRUE(resp.solutionText == baseText || resp.solutionText == editedText);
  }
  const serve::Response final = server.route(*ctx, serve::RequestOptions{});
  ASSERT_TRUE(final.ok) << final.error;
  EXPECT_EQ(final.solutionText, editedText);
}

TEST(ServeEco, AbandonedEcoDoesNotCommitTheDelta) {
  // The watchdog answers a mid-execution expiry and sets the request's
  // cancel flag; the abandoned eco's response is discarded -- but it must
  // also NOT advance the design, because the caller was told the eco did
  // not happen and may retry the same delta. A committed abandoned eco
  // plus a retry would double-apply the edit.
  const chip::Chip base = chip::generateChip(chip::s2Params());
  const core::PacorResult oneShot = core::routeChip(base, serialConfig());
  ASSERT_TRUE(oneShot.complete);

  serve::Server server(/*jobs=*/2);
  const std::shared_ptr<serve::DesignContext> ctx =
      server.context("A", [&] { return base; });
  const serve::Response before = server.route(*ctx, serve::RequestOptions{});
  ASSERT_TRUE(before.ok) << before.error;

  chip::ChipDelta d;
  d.addObstacle(freeCellOf(base, oneShot));
  serve::RequestOptions abandonedOptions;
  abandonedOptions.cancel = std::make_shared<std::atomic<bool>>(true);
  const serve::Response abandoned = server.eco(*ctx, d, abandonedOptions);
  EXPECT_FALSE(abandoned.ok);
  EXPECT_NE(abandoned.error.find("not committed"), std::string::npos)
      << abandoned.error;

  // The context still routes the base design...
  const serve::Response after = server.route(*ctx, serve::RequestOptions{});
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.solutionHash, before.solutionHash);

  // ...and a live retry applies the delta exactly once.
  const serve::Response retry = server.eco(*ctx, d, serve::RequestOptions{});
  ASSERT_TRUE(retry.ok) << retry.error;
  const serve::Response edited = server.route(*ctx, serve::RequestOptions{});
  ASSERT_TRUE(edited.ok) << edited.error;
  EXPECT_EQ(edited.solutionText,
            core::solutionToString(
                core::routeChip(chip::apply(base, d), serialConfig())));
}

TEST(ServeCancel, AbandonedRequestWritesNoSideFiles) {
  // An abandoned request's caller was already answered with a deadline
  // error; its discarded execution must not write sol=/metrics= files
  // that could clobber the output of a retry racing it.
  const chip::Chip base = chip::generateChip(chip::s1Params());
  serve::Server server(/*jobs=*/2);
  const std::shared_ptr<serve::DesignContext> ctx =
      server.context("F", [&] { return base; });

  serve::RequestOptions options;
  options.solutionPath = ::testing::TempDir() + "serve_cancel.sol";
  options.metricsPath = ::testing::TempDir() + "serve_cancel.json";
  std::remove(options.solutionPath.c_str());
  std::remove(options.metricsPath.c_str());
  options.cancel = std::make_shared<std::atomic<bool>>(true);
  server.route(*ctx, options);
  EXPECT_FALSE(std::ifstream(options.solutionPath).good());
  EXPECT_FALSE(std::ifstream(options.metricsPath).good());

  // The live retry with the same paths writes both.
  options.cancel = nullptr;
  const serve::Response live = server.route(*ctx, options);
  ASSERT_TRUE(live.ok) << live.error;
  EXPECT_TRUE(std::ifstream(options.solutionPath).good());
  EXPECT_TRUE(std::ifstream(options.metricsPath).good());
}

TEST(ServeBatch, EcoVerbRoutesAndReportsMode) {
  const chip::Chip s1 = chip::generateChip(chip::s1Params());
  const core::PacorResult oneShot = core::routeChip(s1, serialConfig());
  ASSERT_TRUE(oneShot.complete);
  chip::ChipDelta d;
  d.addObstacle(freeCellOf(s1, oneShot));
  const std::string deltaPath = testing::TempDir() + "serve_eco.delta";
  chip::writeDeltaFile(deltaPath, d);

  std::istringstream manifest("S1\neco S1 delta=" + deltaPath +
                              "\neco S1\n");
  std::ostringstream out;
  const int failed = serve::runBatch(manifest, out, serve::BatchOptions{});
  EXPECT_EQ(failed, 1);  // only the delta-less eco line

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("ok S1 sha256=", 0), 0u) << line;
  EXPECT_EQ(line.find(" eco="), std::string::npos) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("ok S1 sha256=", 0), 0u) << line;
  EXPECT_NE(line.find(" eco=identity dirty=0 reused="), std::string::npos) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("error S1 ", 0), 0u) << line;
}

TEST(ServeBatch, ManifestRoutesInOrderAndReportsHashes) {
  const chip::Chip s1 = chip::generateChip(chip::s1Params());
  const std::string hash =
      util::sha256Hex(core::solutionToString(core::routeChip(s1, serialConfig())));

  std::istringstream manifest(
      "# comment and blank lines are skipped\n"
      "\n"
      "S1\n"
      "S1\n"
      "no-such-design\n");
  std::ostringstream out;
  serve::BatchOptions options;
  options.jobs = 2;
  options.concurrency = 2;
  const int failed = serve::runBatch(manifest, out, options);
  EXPECT_EQ(failed, 1);  // the unknown design, and nothing else

  std::istringstream lines(out.str());
  std::string line;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line.rfind("ok S1 sha256=" + hash + " complete=1", 0), 0u) << line;
  }
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("error no-such-design ", 0), 0u) << line;
  EXPECT_FALSE(std::getline(lines, line));
}

}  // namespace
}  // namespace pacor
