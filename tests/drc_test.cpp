#include <gtest/gtest.h>

#include "chip/generator.hpp"
#include "pacor/drc.hpp"
#include "pacor/pipeline.hpp"

namespace pacor::core {
namespace {

using geom::Point;

bool hasKind(const DrcReport& r, DrcViolation::Kind kind) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const DrcViolation& v) { return v.kind == kind; });
}

TEST(Drc, CleanOnRealRun) {
  const auto chip = chip::generateChip(chip::s3Params());
  const auto result = routeChip(chip);
  const auto report = checkSolution(chip, result);
  EXPECT_TRUE(report.clean()) << report.str();
}

TEST(Drc, CleanOnAllSmallDesignsAllVariants) {
  for (const auto& params : {chip::s1Params(), chip::s2Params(), chip::s4Params()}) {
    const auto chip = chip::generateChip(params);
    for (const auto& cfg : {pacorDefaultConfig(), withoutSelectionConfig(),
                            detourFirstConfig()}) {
      const auto report = checkSolution(chip, routeChip(chip, cfg));
      EXPECT_TRUE(report.clean()) << params.name << ": " << report.str();
    }
  }
}

/// Tampering fixture: a clean routed result we can corrupt.
struct Tampered {
  chip::Chip chip;
  PacorResult result;

  Tampered() {
    chip = chip::generateChip(chip::s1Params());
    result = routeChip(chip);
  }
};

TEST(Drc, DetectsMissingPin) {
  Tampered t;
  t.result.clusters[0].pin = -1;
  EXPECT_TRUE(hasKind(checkSolution(t.chip, t.result),
                      DrcViolation::Kind::kUnroutedValve));
}

TEST(Drc, DetectsUnknownPin) {
  Tampered t;
  t.result.clusters[0].pin = 9999;
  EXPECT_TRUE(hasKind(checkSolution(t.chip, t.result),
                      DrcViolation::Kind::kPinNotOnBoundary));
}

TEST(Drc, DetectsPinConflict) {
  Tampered t;
  ASSERT_GE(t.result.clusters.size(), 2u);
  t.result.clusters[1].pin = t.result.clusters[0].pin;
  EXPECT_TRUE(hasKind(checkSolution(t.chip, t.result),
                      DrcViolation::Kind::kPinConflict));
}

TEST(Drc, DetectsBrokenPath) {
  Tampered t;
  for (auto& c : t.result.clusters) {
    if (c.escapePath.size() >= 3) {
      c.escapePath.erase(c.escapePath.begin() + 1);  // break adjacency
      break;
    }
  }
  EXPECT_TRUE(hasKind(checkSolution(t.chip, t.result),
                      DrcViolation::Kind::kBrokenPath));
}

TEST(Drc, DetectsOutOfBounds) {
  Tampered t;
  t.result.clusters[0].escapePath.front() = Point{-5, -5};
  const auto report = checkSolution(t.chip, t.result);
  EXPECT_TRUE(hasKind(report, DrcViolation::Kind::kOutOfBounds));
}

TEST(Drc, DetectsObstacleOverlap) {
  Tampered t;
  ASSERT_FALSE(t.chip.obstacles.empty());
  // Teleport one channel cell onto an obstacle.
  t.result.clusters[0].escapePath.front() = t.chip.obstacles.front();
  EXPECT_TRUE(hasKind(checkSolution(t.chip, t.result),
                      DrcViolation::Kind::kOnObstacle));
}

TEST(Drc, DetectsCellConflict) {
  Tampered t;
  ASSERT_GE(t.result.clusters.size(), 2u);
  // Make cluster 1 claim a cell of cluster 0's escape path.
  auto& c1 = t.result.clusters[1];
  const auto& c0 = t.result.clusters[0];
  ASSERT_FALSE(c0.escapePath.empty());
  c1.treePaths.push_back({c0.escapePath.back()});
  EXPECT_TRUE(hasKind(checkSolution(t.chip, t.result),
                      DrcViolation::Kind::kCellConflict));
}

TEST(Drc, DetectsFalseMatchClaim) {
  Tampered t;
  for (auto& c : t.result.clusters) {
    if (!c.lengthMatchRequested || !c.lengthMatched) continue;
    // Graft a long stub onto one valve's leaf path to break the match,
    // while keeping the geometry valid.
    ASSERT_FALSE(c.treePaths.empty());
    route::Path& leaf = c.treePaths.front();
    ASSERT_GE(leaf.size(), 2u);
    // Claim matched lengths but also corrupt the reported lengths so both
    // checks trigger.
    c.valveLengths.front() += 40;
    EXPECT_TRUE(hasKind(checkSolution(t.chip, t.result),
                        DrcViolation::Kind::kLengthMismatchReport));
    return;
  }
  GTEST_SKIP() << "no matched cluster in this instance";
}

TEST(Drc, DetectsIncompatibleValvesOnPin) {
  Tampered t;
  // Merge two incompatible clusters' valve lists artificially.
  ASSERT_GE(t.result.clusters.size(), 2u);
  auto& c0 = t.result.clusters[0];
  const auto& c1 = t.result.clusters[1];
  c0.valves.insert(c0.valves.end(), c1.valves.begin(), c1.valves.end());
  const auto report = checkSolution(t.chip, t.result);
  EXPECT_TRUE(hasKind(report, DrcViolation::Kind::kIncompatibleValves));
}

TEST(Drc, ReportFormatsViolations) {
  Tampered t;
  t.result.clusters[0].pin = -1;
  const auto report = checkSolution(t.chip, t.result);
  ASSERT_FALSE(report.clean());
  const std::string text = report.str();
  EXPECT_NE(text.find("unrouted-valve"), std::string::npos);
  EXPECT_NE(text.find("cluster 0"), std::string::npos);
}

TEST(Drc, KindNamesAreUnique) {
  using K = DrcViolation::Kind;
  const K kinds[] = {K::kUnroutedValve,      K::kBrokenPath,
                     K::kOutOfBounds,        K::kOnObstacle,
                     K::kCellConflict,       K::kPinConflict,
                     K::kPinNotOnBoundary,   K::kIncompatibleValves,
                     K::kEscapeDetached,     K::kMatchViolated,
                     K::kLengthMismatchReport};
  std::set<std::string> names;
  for (const K k : kinds) EXPECT_TRUE(names.insert(kindName(k)).second);
}

}  // namespace
}  // namespace pacor::core
