#include <gtest/gtest.h>

#include <random>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "geom/tilted.hpp"

namespace pacor::geom {
namespace {

Point randomPoint(std::mt19937& rng, std::int32_t span = 100) {
  return {static_cast<std::int32_t>(rng() % static_cast<unsigned>(2 * span)) - span,
          static_cast<std::int32_t>(rng() % static_cast<unsigned>(2 * span)) - span};
}

class MetricProperty : public ::testing::TestWithParam<int> {};

TEST_P(MetricProperty, ManhattanIsAMetric) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const Point a = randomPoint(rng);
    const Point b = randomPoint(rng);
    const Point c = randomPoint(rng);
    EXPECT_EQ(manhattan(a, a), 0);
    EXPECT_EQ(manhattan(a, b), manhattan(b, a));
    EXPECT_LE(manhattan(a, c), manhattan(a, b) + manhattan(b, c));
    EXPECT_GE(manhattan(a, b), chebyshev(a, b));
    EXPECT_LE(manhattan(a, b), 2 * chebyshev(a, b));
  }
}

TEST_P(MetricProperty, TiltedTransformIsIsometric) {
  std::mt19937 rng(static_cast<unsigned>(10 + GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const Point a = randomPoint(rng);
    const Point b = randomPoint(rng);
    EXPECT_EQ(manhattan(a, b), chebyshev(toTilted(a), toTilted(b)));
    EXPECT_EQ(fromTilted(toTilted(a)), a);
    EXPECT_TRUE(tiltedOnLattice(toTilted(a)));
  }
}

TEST_P(MetricProperty, ParityMatchesManhattanMod2) {
  std::mt19937 rng(static_cast<unsigned>(20 + GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const Point a = randomPoint(rng);
    const Point b = randomPoint(rng);
    EXPECT_EQ((parity(a) + parity(b)) % 2, static_cast<int>(manhattan(a, b) % 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperty, ::testing::Range(1, 5));

class RectProperty : public ::testing::TestWithParam<int> {};

TEST_P(RectProperty, IntersectionIsCommutativeAndContained) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const Rect a = Rect::fromCorners(randomPoint(rng, 40), randomPoint(rng, 40));
    const Rect b = Rect::fromCorners(randomPoint(rng, 40), randomPoint(rng, 40));
    const Rect i1 = a.intersectWith(b);
    const Rect i2 = b.intersectWith(a);
    EXPECT_EQ(i1, i2);
    if (!i1.empty()) {
      EXPECT_TRUE(a.containsRect(i1));
      EXPECT_TRUE(b.containsRect(i1));
    }
    const Rect u = a.unionWith(b);
    EXPECT_TRUE(u.containsRect(a));
    EXPECT_TRUE(u.containsRect(b));
    EXPECT_GE(u.area(), std::max(a.area(), b.area()));
  }
}

TEST_P(RectProperty, InflationMonotoneAndExact) {
  std::mt19937 rng(static_cast<unsigned>(30 + GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const Rect r = Rect::fromCorners(randomPoint(rng, 30), randomPoint(rng, 30));
    const auto k = static_cast<std::int32_t>(rng() % 5);
    const Rect big = r.inflated(k);
    EXPECT_TRUE(big.containsRect(r));
    EXPECT_EQ(big.width(), r.width() + 2 * k);
    EXPECT_EQ(big.height(), r.height() + 2 * k);
    // Manhattan distance to the inflated rect shrinks by at most k per
    // axis (2k total) and never grows.
    const Point p = randomPoint(rng, 60);
    const auto before = r.manhattanTo(p);
    const auto after = big.manhattanTo(p);
    EXPECT_LE(after, before);
    EXPECT_GE(after, std::max<std::int64_t>(0, before - 2 * k));
  }
}

TEST_P(RectProperty, ClampIsNearestPoint) {
  std::mt19937 rng(static_cast<unsigned>(40 + GetParam()));
  for (int trial = 0; trial < 25; ++trial) {
    const Rect r = Rect::fromCorners(randomPoint(rng, 15), randomPoint(rng, 15));
    const Point p = randomPoint(rng, 30);
    const Point c = r.clamp(p);
    EXPECT_TRUE(r.contains(c));
    // No rect point is closer than the clamp (check a sample).
    for (int k = 0; k < 10; ++k) {
      const Point q = r.clamp(randomPoint(rng, 30));
      EXPECT_LE(manhattan(p, c), manhattan(p, q));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectProperty, ::testing::Range(1, 5));

class TiltedRectProperty : public ::testing::TestWithParam<int> {};

TEST_P(TiltedRectProperty, MergeRegionPointsAreFeasibleMeetingPoints) {
  // For random point pairs and any split ea + eb >= distance, every
  // lattice point of inflate(A, ea) n inflate(B, eb) is within ea of A
  // and eb of B -- the exact property DME merging relies on.
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 30; ++trial) {
    const Point a = randomPoint(rng, 25);
    const Point b = randomPoint(rng, 25);
    const std::int64_t d = manhattan(a, b);
    const std::int64_t ea = static_cast<std::int64_t>(rng() % (d + 3));
    const std::int64_t eb = d - ea + static_cast<std::int64_t>(rng() % 3);
    if (eb < 0) continue;
    const TiltedRect ta = TiltedRect::fromXY(a);
    const TiltedRect tb = TiltedRect::fromXY(b);
    const TiltedRect merge = ta.inflated(ea).intersectWith(tb.inflated(eb));
    if (ea + eb < d) {
      EXPECT_TRUE(merge.empty());
      continue;
    }
    ASSERT_FALSE(merge.empty());
    for (const Point p : merge.latticePointsXY(32)) {
      EXPECT_LE(manhattan(p, a), ea) << p.str();
      EXPECT_LE(manhattan(p, b), eb) << p.str();
    }
  }
}

TEST_P(TiltedRectProperty, GapIsTheMinimumPairwiseDistance) {
  std::mt19937 rng(static_cast<unsigned>(50 + GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const Point a = randomPoint(rng, 12);
    const Point b = randomPoint(rng, 12);
    const auto ra = static_cast<std::int64_t>(rng() % 4);
    const auto rb = static_cast<std::int64_t>(rng() % 4);
    const TiltedRect ta = TiltedRect::fromXY(a).inflated(ra);
    const TiltedRect tb = TiltedRect::fromXY(b).inflated(rb);
    const std::int64_t gap = chebyshevGap(ta, tb);
    // Brute force: min over lattice points of both regions.
    std::int64_t brute = std::numeric_limits<std::int64_t>::max();
    for (const Point p : ta.latticePointsXY(64))
      for (const Point q : tb.latticePointsXY(64))
        brute = std::min(brute, manhattan(p, q));
    if (brute != std::numeric_limits<std::int64_t>::max()) {
      EXPECT_LE(gap, brute);
      // The gap is attained by SOME pair of region points (maybe off our
      // lattice sample when regions have off-lattice corners).
      EXPECT_GE(brute, gap);
      EXPECT_LE(brute - gap, 2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TiltedRectProperty, ::testing::Range(1, 5));

}  // namespace
}  // namespace pacor::geom
