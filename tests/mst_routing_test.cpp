#include <gtest/gtest.h>

#include <unordered_set>

#include "pacor/mst_routing.hpp"

namespace pacor::core {
namespace {

using geom::Point;

struct PlainFixture {
  chip::Chip chip;
  grid::ObstacleMap obs{grid::Grid(1, 1)};
  WorkCluster wc;

  PlainFixture(std::int32_t size, const std::vector<Point>& valves) {
    chip.name = "plain";
    chip.routingGrid = grid::Grid(size, size);
    for (const Point p : valves) {
      const auto id = static_cast<chip::ValveId>(chip.valves.size());
      chip.valves.push_back({id, p, chip::ActivationSequence("0")});
      wc.spec.valves.push_back(id);
    }
    chip.pins = {{0, {0, 0}}};
    obs = chip.makeObstacleMap();
    wc.net = 0;
    for (const Point p : valves) obs.occupy(std::span<const Point>(&p, 1), wc.net);
  }
};

TEST(MstRouting, SingletonNeedsNoChannels) {
  PlainFixture fx(12, {{5, 5}});
  EXPECT_TRUE(routePlainCluster(fx.chip, fx.obs, fx.wc));
  EXPECT_TRUE(fx.wc.internallyRouted);
  EXPECT_TRUE(fx.wc.treePaths.empty());
  EXPECT_EQ(fx.wc.tapCells, (std::vector<Point>{Point{5, 5}}));
}

TEST(MstRouting, ConnectsThreeValvesIntoOneTree) {
  PlainFixture fx(20, {{3, 3}, {15, 4}, {8, 16}});
  ASSERT_TRUE(routePlainCluster(fx.chip, fx.obs, fx.wc));
  EXPECT_EQ(fx.wc.treePaths.size(), 2u);  // n-1 connections
  // All valves lie in one connected component of the committed cells.
  std::unordered_set<Point> cells(fx.wc.tapCells.begin(), fx.wc.tapCells.end());
  for (const auto v : fx.wc.spec.valves)
    EXPECT_TRUE(cells.contains(fx.chip.valve(v).pos));
  // Every committed cell belongs to the net.
  for (const Point c : fx.wc.tapCells) EXPECT_EQ(fx.obs.owner(c), fx.wc.net);
}

TEST(MstRouting, TreeLengthIsReasonable) {
  PlainFixture fx(24, {{2, 2}, {12, 2}, {2, 12}});
  ASSERT_TRUE(routePlainCluster(fx.chip, fx.obs, fx.wc));
  std::int64_t total = 0;
  for (const auto& p : fx.wc.treePaths) total += route::pathLength(p);
  // Lower bound: MST over Manhattan distances / upper: generous slack.
  EXPECT_GE(total, 20);
  EXPECT_LE(total, 30);
}

TEST(MstRouting, FailureRollsBackCleanly) {
  PlainFixture fx(16, {{3, 8}, {12, 8}});
  for (std::int32_t y = 0; y < 16; ++y) fx.obs.addObstacle({7, y});
  EXPECT_FALSE(routePlainCluster(fx.chip, fx.obs, fx.wc));
  EXPECT_FALSE(fx.wc.internallyRouted);
  // Only the valve cells remain owned.
  EXPECT_EQ(fx.obs.countOwnedBy(fx.wc.net), 2);
}

TEST(MstRouting, DeclusteringSplitsAcrossWall) {
  PlainFixture fx(16, {{3, 8}, {4, 10}, {12, 8}, {13, 10}});
  for (std::int32_t y = 0; y < 16; ++y) fx.obs.addObstacle({7, y});
  grid::NetId next = 10;
  const auto allocate = [&next] { return next++; };
  int splits = 0;
  auto parts = routeWithDeclustering(fx.chip, fx.obs, std::move(fx.wc), allocate, &splits);
  EXPECT_GE(splits, 1);
  ASSERT_EQ(parts.size(), 2u);  // the two sides of the wall
  for (const auto& part : parts) {
    EXPECT_TRUE(part.internallyRouted);
    EXPECT_EQ(part.spec.valves.size(), 2u);
    EXPECT_FALSE(part.spec.lengthMatched);
  }
}

TEST(MstRouting, DeclusteringBottomsOutAtSingletons) {
  // Four valves in four sealed quadrants: every split ends as singletons.
  PlainFixture fx(17, {{3, 3}, {13, 3}, {3, 13}, {13, 13}});
  for (std::int32_t i = 0; i < 17; ++i) {
    fx.obs.addObstacle({8, i});
    if (i != 8) fx.obs.addObstacle({i, 8});
  }
  grid::NetId next = 10;
  const auto allocate = [&next] { return next++; };
  auto parts = routeWithDeclustering(fx.chip, fx.obs, std::move(fx.wc), allocate);
  EXPECT_EQ(parts.size(), 4u);
  for (const auto& part : parts) {
    EXPECT_EQ(part.spec.valves.size(), 1u);
    EXPECT_TRUE(part.internallyRouted);
  }
}

TEST(MstRouting, NoSplitWhenRoutable) {
  PlainFixture fx(20, {{3, 3}, {15, 4}, {8, 16}});
  grid::NetId next = 10;
  const auto allocate = [&next] { return next++; };
  int splits = 0;
  auto parts = routeWithDeclustering(fx.chip, fx.obs, std::move(fx.wc), allocate, &splits);
  EXPECT_EQ(parts.size(), 1u);
  EXPECT_EQ(splits, 0);
}

}  // namespace
}  // namespace pacor::core
