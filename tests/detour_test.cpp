#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "pacor/detour.hpp"

namespace pacor::core {
namespace {

using geom::Point;

/// Builds a hand-made two-valve matched cluster: valve0 -- tap -- valve1
/// along a straight line, plus an escape from the tap to `pinCell`.
struct PairFixture {
  chip::Chip chip;
  grid::ObstacleMap obs{grid::Grid(1, 1)};
  WorkCluster wc;

  PairFixture(Point v0, Point tap, Point v1, Point pinCell, std::int32_t size = 24) {
    chip.name = "pair";
    chip.routingGrid = grid::Grid(size, size);
    chip.valves = {{0, v0, chip::ActivationSequence("01")},
                   {1, v1, chip::ActivationSequence("01")}};
    chip.pins = {{0, pinCell}};
    obs = chip.makeObstacleMap();

    wc.spec.valves = {0, 1};
    wc.spec.lengthMatched = true;
    wc.net = 0;

    const auto straight = [](Point a, Point b) {
      route::Path p;
      const Point d{b.x > a.x ? 1 : (b.x < a.x ? -1 : 0),
                    b.y > a.y ? 1 : (b.y < a.y ? -1 : 0)};
      for (Point c = a;; c = c + d) {
        p.push_back(c);
        if (c == b) break;
      }
      return p;
    };
    wc.treePaths = {straight(v0, tap), straight(v1, tap)};
    wc.sinkSequences = {{0}, {1}};
    wc.tap = tap;
    wc.tapCells = {tap};
    wc.lmStructured = true;
    wc.internallyRouted = true;
    wc.escapePath = straight(tap, pinCell);
    wc.pin = 0;
    for (const auto& p : wc.treePaths) obs.occupy(p, wc.net);
    obs.occupy(wc.escapePath, wc.net);
  }
};


/// Occupies the cells of `path` not yet owned by `net` (test helper for
/// re-anchoring escapes by hand).
void obsOccupyTail(grid::ObstacleMap& obs, const route::Path& path, grid::NetId net) {
  for (const Point c : path) {
    if (obs.owner(c) == net) continue;
    obs.occupy(std::span<const Point>(&c, 1), net);
  }
}

TEST(MeasureLengths, StraightPair) {
  PairFixture fx({4, 10}, {10, 10}, {16, 10}, {10, 0});
  const auto lengths = measureValveLengths(fx.chip, fx.wc, {10, 0});
  ASSERT_EQ(lengths.size(), 2u);
  EXPECT_EQ(lengths[0], 16);  // 10 escape + 6 arm
  EXPECT_EQ(lengths[1], 16);
}

TEST(MeasureLengths, UnreachableValveIsMinusOne) {
  PairFixture fx({4, 10}, {10, 10}, {16, 10}, {10, 0});
  fx.wc.treePaths[1].clear();  // disconnect valve 1
  const auto lengths = measureValveLengths(fx.chip, fx.wc, {10, 0});
  EXPECT_EQ(lengths[0], 16);
  EXPECT_EQ(lengths[1], -1);
}

TEST(MeasureLengths, ParallelChannelsDoNotShortCircuit) {
  // Two channels of the same net running adjacent must not merge: build a
  // U where the long way around is the only channel connection.
  chip::Chip chip;
  chip.name = "u";
  chip.routingGrid = grid::Grid(16, 16);
  chip.valves = {{0, Point{2, 2}, chip::ActivationSequence("0")}};
  chip.pins = {{0, Point{2, 0}}};

  WorkCluster wc;
  wc.spec.valves = {0};
  wc.net = 0;
  // Path loops: (2,2) -> (10,2) -> (10,3) -> (2,3): the ends (2,2)/(2,3)
  // are grid-adjacent but 17 channel-steps apart.
  route::Path path;
  for (std::int32_t x = 2; x <= 10; ++x) path.push_back({x, 2});
  path.push_back({10, 3});
  for (std::int32_t x = 10; x >= 2; --x) path.push_back({x, 3});
  wc.treePaths = {path};
  route::Path escape{{2, 3}, {2, 4}};  // dangles off the FAR end
  // Build: origin = (2,4); channel distance to valve (2,2) must go all
  // the way around (1 + 17 = 18), not 2.
  wc.escapePath = escape;
  const auto lengths = measureValveLengths(chip, wc, {2, 4});
  ASSERT_EQ(lengths.size(), 1u);
  EXPECT_EQ(lengths[0], 18);
}

TEST(Detour, AlreadyMatchedIsImmediate) {
  PairFixture fx({4, 10}, {10, 10}, {16, 10}, {10, 0});
  DetourStats stats;
  EXPECT_TRUE(detourClusterForMatching(fx.chip, fx.obs, fx.wc, {10, 0}, 1, 10, &stats));
  EXPECT_TRUE(fx.wc.lengthMatched);
  EXPECT_EQ(stats.reroutes, 0);
}

TEST(Detour, EqualizesAsymmetricPair) {
  // Tap off-center: arms 4 and 10; the short arm needs +6.
  PairFixture fx({4, 10}, {8, 10}, {18, 10}, {8, 0});
  DetourStats stats;
  ASSERT_TRUE(detourClusterForMatching(fx.chip, fx.obs, fx.wc, {8, 0}, 1, 10, &stats));
  const auto lengths = measureValveLengths(fx.chip, fx.wc, {8, 0});
  EXPECT_LE(std::abs(lengths[0] - lengths[1]), 1);
  EXPECT_GE(stats.reroutes, 1);
  // The committed paths stay valid channels.
  for (const auto& p : fx.wc.treePaths) EXPECT_TRUE(route::isValidChannel(p));
}

TEST(Detour, LargeAsymmetryAcrossRounds) {
  PairFixture fx({2, 12}, {4, 12}, {22, 12}, {4, 0}, 26);
  ASSERT_TRUE(detourClusterForMatching(fx.chip, fx.obs, fx.wc, {4, 0}, 1, 10));
  const auto lengths = measureValveLengths(fx.chip, fx.wc, {4, 0});
  EXPECT_LE(std::abs(lengths[0] - lengths[1]), 1);
}

TEST(Detour, RestoresOnImpossibleGeometry) {
  // Choke the short arm completely: no space to detour.
  PairFixture fx({4, 10}, {8, 10}, {18, 10}, {8, 0});
  for (std::int32_t x = 0; x < 24; ++x) {
    for (std::int32_t y : {9, 11}) {
      if (fx.obs.isFree({x, y})) fx.obs.addObstacle({x, y});
    }
  }
  for (std::int32_t y = 12; y < 24; ++y)
    for (std::int32_t x = 0; x < 24; ++x)
      if (fx.obs.isFree({x, y})) fx.obs.addObstacle({x, y});
  const auto before = fx.wc.treePaths;
  EXPECT_FALSE(detourClusterForMatching(fx.chip, fx.obs, fx.wc, {8, 0}, 1, 10));
  EXPECT_FALSE(fx.wc.lengthMatched);
  EXPECT_EQ(fx.wc.treePaths, before);  // Alg. 2 restore semantics
}

TEST(Detour, MaxRoundsExhaustionRestoresSnapshot) {
  // Three-sink cluster where round 0 lengthens the shared trunk for the
  // first short sink but the second short sink stays stuck: its own arm
  // cannot detour and the trunk is already marked detoured, so the round
  // "succeeds" via the shared-ancestor skip. The budget then runs out
  // with the lengths still spread wider than delta. Alg. 2 steps 22-24
  // demand the snapshot restore on this exit exactly as on a failed
  // round: no partially-detoured trunk may stay committed.
  chip::Chip chip;
  chip.name = "exhaust";
  chip.routingGrid = grid::Grid(32, 32);
  chip.valves = {{0, Point{8, 8}, chip::ActivationSequence("01")},
                 {1, Point{14, 8}, chip::ActivationSequence("01")},
                 {2, Point{24, 4}, chip::ActivationSequence("01")}};
  chip.pins = {{0, Point{12, 0}}};
  grid::ObstacleMap obs = chip.makeObstacleMap();

  WorkCluster wc;
  wc.spec.valves = {0, 1, 2};
  wc.spec.lengthMatched = true;
  wc.net = 0;
  route::Path trunk;  // tap (12,4) up to the junction (12,8)
  for (std::int32_t y = 4; y <= 8; ++y) trunk.push_back({12, y});
  route::Path armA;  // valve 0 east to the junction
  for (std::int32_t x = 8; x <= 12; ++x) armA.push_back({x, 8});
  route::Path armB{{14, 8}, {13, 8}, {12, 8}};  // valve 1 to the junction
  route::Path armC;  // valve 2 west to the tap
  for (std::int32_t x = 24; x >= 12; --x) armC.push_back({x, 4});
  wc.treePaths = {trunk, armA, armB, armC};
  wc.sinkSequences = {{1, 0}, {2, 0}, {3}};
  wc.tap = {12, 4};
  wc.tapCells = {{12, 4}};
  wc.lmStructured = true;
  wc.internallyRouted = true;
  for (std::int32_t y = 4; y >= 0; --y) wc.escapePath.push_back({12, y});
  wc.pin = 0;
  for (const auto& p : wc.treePaths) obs.occupy(p, wc.net);
  obs.occupy(wc.escapePath, wc.net);

  // Wall off the junction corridor: the short arms sit in a one-cell-wide
  // slot and cannot detour; only the trunk can grow, through its own
  // released cells at x = 12.
  for (std::int32_t x = 5; x <= 17; ++x)
    for (std::int32_t y : {7, 9})
      if (obs.isFree({x, y})) obs.addObstacle({x, y});

  const auto before = wc.treePaths;
  const std::int64_t ownedBefore = obs.countOwnedBy(wc.net);
  DetourStats stats;
  EXPECT_FALSE(detourClusterForMatching(chip, obs, wc, {12, 0}, 1, 1, &stats));
  EXPECT_FALSE(wc.lengthMatched);
  EXPECT_EQ(stats.iterations, 1);
  EXPECT_EQ(stats.reroutes, 1);  // the trunk was lengthened mid-round...
  EXPECT_EQ(stats.restores, 1);  // ...and rolled back on exhaustion
  EXPECT_EQ(wc.treePaths, before);
  EXPECT_EQ(obs.countOwnedBy(wc.net), ownedBefore);
}

TEST(Detour, DisconnectedClusterFailsCleanly) {
  PairFixture fx({4, 10}, {10, 10}, {16, 10}, {10, 0});
  fx.wc.treePaths[0].clear();
  EXPECT_FALSE(detourClusterForMatching(fx.chip, fx.obs, fx.wc, {10, 0}, 1, 10));
}

TEST(Detour, RequiresStructure) {
  PairFixture fx({4, 10}, {10, 10}, {16, 10}, {10, 0});
  fx.wc.lmStructured = false;
  EXPECT_FALSE(detourClusterForMatching(fx.chip, fx.obs, fx.wc, {10, 0}, 1, 10));
}

TEST(Detour, ZeroRoundsBudget) {
  PairFixture fx({4, 10}, {8, 10}, {18, 10}, {8, 0});
  // No rounds allowed: unmatched pair stays unmatched but is not damaged.
  EXPECT_FALSE(detourClusterForMatching(fx.chip, fx.obs, fx.wc, {8, 0}, 1, 0));
  for (const auto& p : fx.wc.treePaths) EXPECT_TRUE(route::isValidChannel(p));
}

TEST(Detour, WideDeltaAcceptsLooseMatch) {
  PairFixture fx({4, 10}, {8, 10}, {18, 10}, {8, 0});
  // delta = 6 covers the asymmetry of arms 4 vs 10 exactly.
  ASSERT_TRUE(detourClusterForMatching(fx.chip, fx.obs, fx.wc, {8, 0}, 6, 10));
  EXPECT_TRUE(fx.wc.lengthMatched);
}

TEST(Detour, ObstacleMapStaysConsistent) {
  PairFixture fx({4, 10}, {8, 10}, {18, 10}, {8, 0});
  ASSERT_TRUE(detourClusterForMatching(fx.chip, fx.obs, fx.wc, {8, 0}, 1, 10));
  // Every cell of the final paths is owned by the net, and the owned cell
  // count matches the union of path cells exactly (no leaked cells).
  std::unordered_set<Point> cells;
  for (const auto& p : fx.wc.treePaths) cells.insert(p.begin(), p.end());
  cells.insert(fx.wc.escapePath.begin(), fx.wc.escapePath.end());
  for (const Point c : cells) EXPECT_EQ(fx.obs.owner(c), fx.wc.net) << c.str();
  EXPECT_EQ(fx.obs.countOwnedBy(fx.wc.net), static_cast<std::int64_t>(cells.size()));
}


TEST(RebuildStructure, RootAnchorReproducesSegments) {
  PairFixture fx({4, 10}, {10, 10}, {16, 10}, {10, 0});
  ASSERT_TRUE(rebuildDetourStructure(fx.chip, fx.wc));
  EXPECT_EQ(fx.wc.tap, (Point{10, 10}));
  ASSERT_EQ(fx.wc.treePaths.size(), 2u);
  ASSERT_EQ(fx.wc.sinkSequences.size(), 2u);
  EXPECT_EQ(fx.wc.sinkSequences[0].size(), 1u);
  EXPECT_EQ(fx.wc.sinkSequences[1].size(), 1u);
  // Lengths measured through the rebuilt structure are unchanged.
  const auto lengths = measureValveLengths(fx.chip, fx.wc, {10, 0});
  EXPECT_EQ(lengths[0], 16);
  EXPECT_EQ(lengths[1], 16);
}

TEST(RebuildStructure, LeafsideAnchorSplitsTheArm) {
  // Escape attaches mid-arm: the rebuilt structure must expose the
  // valve-side sub-segment so the detour stage can equalize.
  PairFixture fx({4, 10}, {10, 10}, {16, 10}, {10, 0});
  // Re-anchor the escape at (6,10), interior of arm 0.
  fx.obs.releasePath(fx.wc.escapePath, fx.wc.net);
  fx.wc.escapePath.clear();
  route::Path esc;
  for (std::int32_t y = 10; y >= 0; --y) esc.push_back({6, y});
  fx.wc.escapePath = esc;
  obsOccupyTail(fx.obs, esc, fx.wc.net);
  ASSERT_TRUE(rebuildDetourStructure(fx.chip, fx.wc));
  EXPECT_EQ(fx.wc.tap, (Point{6, 10}));
  // Sink 0 (valve at (4,10)) now has an exclusive segment (6,10)->(4,10).
  ASSERT_EQ(fx.wc.sinkSequences.size(), 2u);
  ASSERT_FALSE(fx.wc.sinkSequences[0].empty());
  const route::Path& seg =
      fx.wc.treePaths[static_cast<std::size_t>(fx.wc.sinkSequences[0].front())];
  EXPECT_EQ(seg.front(), (Point{4, 10}));
  EXPECT_EQ(seg.back(), (Point{6, 10}));
  // Sink 1's pin path passes through the anchor toward the far valve.
  const auto lengths = measureValveLengths(fx.chip, fx.wc, {6, 0});
  EXPECT_EQ(lengths[0], 12);  // 10 down + 2 left
  EXPECT_EQ(lengths[1], 20);  // 10 down + 10 right
}

TEST(RebuildStructure, FailsWithoutEscapeOrDisconnected) {
  PairFixture fx({4, 10}, {10, 10}, {16, 10}, {10, 0});
  WorkCluster noEscape = fx.wc;
  noEscape.escapePath.clear();
  EXPECT_FALSE(rebuildDetourStructure(fx.chip, noEscape));

  WorkCluster broken = fx.wc;
  broken.treePaths[1].clear();  // valve 1 unreachable
  EXPECT_FALSE(rebuildDetourStructure(fx.chip, broken));
}

}  // namespace
}  // namespace pacor::core
