// Socket serve tier: framing, protocol grammar, affinity, backpressure,
// and drain contracts of serve::net.
//
//  * Protocol tables: valid request lines round-trip exactly
//    (format(parse(x)) == canonical(x)); malformed lines report the
//    offending field, both from parseRequestLine and as structured `err`
//    responses over a live socket.
//  * Multi-client byte-identity: concurrent clients hammering mixed
//    designs get responses whose sha256 -- and sol= file bytes -- equal a
//    fresh one-shot routeChip of the same design.
//  * Warm affinity: the per-design FIFO serializes same-design requests
//    onto the warm EscapeFlowSession, so a repeat request reports
//    cold_builds=0.
//  * Backpressure: with maxInflight=1/maxQueue=1 and the executing
//    request parked on a named-pipe design (the chip bytes arrive only
//    when the test writes them), the over-limit submit gets an immediate
//    `busy`, and the queue accepts work again after the block clears.
//  * Graceful drain: an in-flight request completes and its response is
//    flushed, frames sent after beginDrain get `busy draining`, and a
//    late connect is refused.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chip/generator.hpp"
#include "chip/io.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/solution_io.hpp"
#include "serve/net.hpp"
#include "serve/serve.hpp"
#include "util/sha256.hpp"

namespace pacor {
namespace {

/// One-shot reference: what any serve path must reproduce byte-for-byte.
struct Oneshot {
  std::string text;
  std::string hash;
};

Oneshot oneshot(const std::string& design) {
  const core::PacorResult result =
      core::routeChip(serve::loadDesign(design), core::pacorDefaultConfig());
  Oneshot ref;
  ref.text = core::solutionToString(result);
  ref.hash = util::sha256Hex(ref.text);
  return ref;
}

std::string readFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// --- protocol tables -----------------------------------------------------

TEST(ServeProtocol, ValidLinesRoundTripExactly) {
  // {input line, canonical form} -- parse then format must yield the
  // canonical text, and the canonical text must be a fixed point.
  const std::vector<std::pair<std::string, std::string>> kTable = {
      {"S1", "S1"},
      {"  S1   sol=out.sol  ", "S1 sol=out.sol"},
      {"S2 metrics=m.json sol=a.sol", "S2 sol=a.sol metrics=m.json"},
      {"fpva:8x8 variant=wosel", "fpva:8x8 variant=wosel"},
      {"S3 trace=t.json trace-level=search fast-escape",
       "S3 trace=t.json trace-level=search fast-escape"},
      {"S1 variant=pacor", "S1"},  // defaults canonicalize away
      {"S1 trace=t.json trace-level=cluster", "S1 trace=t.json"},
      {"S4 no-incremental-escape", "S4 no-incremental-escape"},
      {"eco S1 delta=d.delta", "eco S1 delta=d.delta"},
      {"eco S1 delta=d.delta variant=detour-first sol=s.sol",
       "eco S1 delta=d.delta sol=s.sol variant=detour-first"},
      {"gen fpva:16x16", "gen fpva:16x16"},
      {"S1 deadline_ms=500", "S1 deadline_ms=500"},
      {"S1 deadline_ms=250 fast-escape", "S1 fast-escape deadline_ms=250"},
      {"eco S2 deadline_ms=86400000 delta=d.delta",
       "eco S2 delta=d.delta deadline_ms=86400000"},
  };
  for (const auto& [line, canonical] : kTable) {
    SCOPED_TRACE(line);
    serve::ParseError error;
    const auto req = serve::parseRequestLine(line, &error);
    ASSERT_TRUE(req.has_value()) << error.render();
    EXPECT_EQ(serve::formatRequestLine(*req), canonical);
    const auto reparsed = serve::parseRequestLine(canonical, &error);
    ASSERT_TRUE(reparsed.has_value()) << error.render();
    EXPECT_EQ(serve::formatRequestLine(*reparsed), canonical);
  }
}

TEST(ServeProtocol, MalformedLinesReportTheOffendingField) {
  // {input line, expected field, expected design token}
  const std::vector<std::array<std::string, 3>> kTable = {
      {"", "design", ""},
      {"   ", "design", ""},
      {"eco", "design", ""},
      {"gen", "design", ""},
      {"eco S1", "delta", "S1"},
      {"S1 delta=d.delta", "delta", "S1"},
      {"eco S1 delta=", "delta", "S1"},
      {"S1 sol=", "sol", "S1"},
      {"S1 metrics=", "metrics", "S1"},
      {"S1 trace=", "trace", "S1"},
      {"S1 trace-level=bogus", "trace-level", "S1"},
      {"S1 variant=fastest", "variant", "S1"},
      {"S1 frobnicate", "frobnicate", "S1"},
      {"S1 frobnicate=2", "frobnicate", "S1"},
      {"gen S1 sol=out.sol", "sol", "S1"},
      {"S1 deadline_ms=", "deadline_ms", "S1"},
      {"S1 deadline_ms=0", "deadline_ms", "S1"},
      {"S1 deadline_ms=-5", "deadline_ms", "S1"},
      {"S1 deadline_ms=abc", "deadline_ms", "S1"},
      {"S1 deadline_ms=1e3", "deadline_ms", "S1"},
      {"S1 deadline_ms=86400001", "deadline_ms", "S1"},
      {"S1 deadline_ms=99999999999999999999", "deadline_ms", "S1"},
  };
  for (const auto& [line, field, design] : kTable) {
    SCOPED_TRACE("'" + line + "'");
    serve::ParseError error;
    EXPECT_FALSE(serve::parseRequestLine(line, &error).has_value());
    EXPECT_EQ(error.field, field);
    EXPECT_EQ(error.design, design);
    EXPECT_NE(error.render().find("field '" + field + "'"), std::string::npos);
  }
}

TEST(ServeProtocol, BatchModeReportsLineNumbers) {
  std::istringstream manifest(
      "# comment\n"
      "\n"
      "eco S1\n"
      "S1 frobnicate\n");
  std::ostringstream out;
  serve::BatchOptions options;
  EXPECT_EQ(serve::runBatch(manifest, out, options), 2);
  std::istringstream lines(out.str());
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  // Comments and blanks do not advance the reported request numbering --
  // the N in `line N` is the manifest line, so editors can jump to it.
  EXPECT_EQ(first,
            "error S1 line 3: eco request without delta=PATH (field 'delta')");
  EXPECT_EQ(second,
            "error S1 line 4: unknown option 'frobnicate' (field 'frobnicate')");
}

// --- socket tier ---------------------------------------------------------

serve::net::NetOptions loopback(int jobs = 1) {
  serve::net::NetOptions options;
  options.jobs = jobs;
  return options;  // host 127.0.0.1, port 0 = ephemeral
}

TEST(ServeNet, MalformedFramesGetStructuredErrResponses) {
  serve::net::NetServer server(loopback());
  serve::net::Client client("127.0.0.1", server.port());
  const std::vector<std::pair<std::string, std::string>> kTable = {
      {"eco S1", "err S1 field=delta eco request without delta=PATH"},
      {"S1 trace-level=bogus", "err S1 field=trace-level bad trace-level 'bogus'"},
      {"S1 frobnicate", "err S1 field=frobnicate unknown option 'frobnicate'"},
      {"", "err - field=design empty request line"},
  };
  for (const auto& [line, expected] : kTable) {
    SCOPED_TRACE("'" + line + "'");
    EXPECT_EQ(client.call(line), expected);
  }
  // The connection survives malformed frames: a valid request still works.
  const auto resp = serve::parseResponseLine(client.call("gen S1"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "ok");
  EXPECT_EQ(resp->design, "S1");
}

TEST(ServeNet, ConcurrentClientsMatchOneshotByteForByte) {
  const std::vector<std::string> kDesigns = {"S1", "S2", "S5"};
  std::map<std::string, Oneshot> expected;
  for (const std::string& design : kDesigns) expected[design] = oneshot(design);

  serve::net::NetServer server(loopback(/*jobs=*/2));
  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        serve::net::Client client("127.0.0.1", server.port());
        for (int round = 0; round < kRounds; ++round) {
          const std::string& design = kDesigns[(c + round) % kDesigns.size()];
          const auto resp = serve::parseResponseLine(client.call(design));
          if (!resp || resp->status != "ok" || resp->complete != 1 ||
              resp->sha256 != expected[design].hash) {
            failures[c] = "design " + design + " round " +
                          std::to_string(round) + ": bad response";
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], "") << "client " << c;

  // Solution text (not just the hash) is byte-identical: a sol= request's
  // file equals the one-shot canonical bytes.
  const std::string solPath = testing::TempDir() + "serve_net_s1.sol";
  serve::net::Client client("127.0.0.1", server.port());
  const auto resp = serve::parseResponseLine(client.call("S1 sol=" + solPath));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "ok");
  EXPECT_EQ(readFile(solPath), expected["S1"].text);
}

TEST(ServeNet, RepeatDesignRequestsLandWarm) {
  serve::net::NetServer server(loopback());
  serve::net::Client client("127.0.0.1", server.port());
  const auto first = serve::parseResponseLine(client.call("S1"));
  const auto second = serve::parseResponseLine(client.call("S1"));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(first->status, "ok");
  ASSERT_EQ(second->status, "ok");
  // First request of a design builds its escape-flow session...
  EXPECT_GT(first->coldBuilds, 0);
  // ...and the per-design FIFO guarantees every repeat lands warm.
  EXPECT_EQ(second->coldBuilds, 0);
  EXPECT_EQ(first->sha256, second->sha256);
}

TEST(ServeNet, ExecutionErrorsComeBackAsErrorResponses) {
  serve::net::NetServer server(loopback());
  serve::net::Client client("127.0.0.1", server.port());
  const std::string line = client.call("no-such-design.chip");
  EXPECT_EQ(line.rfind("error no-such-design.chip ", 0), 0u) << line;
}

/// A design token whose loadDesign blocks until the test supplies the
/// chip bytes: a named pipe masquerading as a .chip file. Writing the
/// serialized chip and closing the write end releases the dispatcher.
class FifoDesign {
 public:
  explicit FifoDesign(const std::string& name)
      : path_(testing::TempDir() + name) {
    ::unlink(path_.c_str());
    if (::mkfifo(path_.c_str(), 0600) != 0)
      ADD_FAILURE() << "mkfifo failed for " << path_;
  }
  ~FifoDesign() { ::unlink(path_.c_str()); }

  const std::string& path() const { return path_; }

  /// Spins until the server side is blocked opening/reading the pipe
  /// (O_NONBLOCK writes fail with ENXIO until a reader exists).
  int waitForReader() {
    for (;;) {
      const int fd = ::open(path_.c_str(), O_WRONLY | O_NONBLOCK);
      if (fd >= 0) return fd;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  /// Spins until no reader holds the pipe open (an abandoned dispatcher
  /// has noticed its cancel flag and closed the fd) -- after this, any
  /// reader that appears belongs to a NEW request, so waitForReader/
  /// release cannot feed bytes to the cancelled one by mistake.
  void waitForNoReader() {
    for (;;) {
      const int fd = ::open(path_.c_str(), O_WRONLY | O_NONBLOCK);
      if (fd < 0 && errno == ENXIO) return;
      if (fd >= 0) ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  /// Feeds the chip through the pipe, releasing the blocked request.
  void release(int fd, const chip::Chip& chip) {
    const std::string tmp = path_ + ".bytes";
    chip::writeChipFile(tmp, chip);
    const std::string bytes = readFile(tmp);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (w < 0) break;
      off += static_cast<std::size_t>(w);
    }
    ::close(fd);
    ::unlink(tmp.c_str());
  }

 private:
  std::string path_;
};

/// Scope guard for the test's write end of a FifoDesign. A request parked
/// on a FIFO with no deadline legitimately blocks graceful drain forever,
/// so if a fatal assertion unwinds the test before release(), the server
/// destructor would hang the whole suite. The guard feeds one junk byte and
/// closes: the parked reader sees bytes-then-EOF, fails the chip parse, and
/// the request completes as an ordinary error so drain can finish.
class FifoUnwedge {
 public:
  explicit FifoUnwedge(int fd) : fd_(fd) {}
  ~FifoUnwedge() {
    if (fd_ < 0) return;
    (void)!::write(fd_, "x", 1);
    ::close(fd_);
  }
  /// Hands the fd to FifoDesign::release() for the normal path.
  int disarm() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

TEST(ServeNet, FullQueueShedsLoadWithBusyThenRecovers) {
  // Deterministic at the Server tier: one dispatcher, a one-slot waiting
  // queue, and the executing request parked on a FifoDesign.
  FifoDesign fifo("serve_net_busy.chip");
  serve::Server server(/*jobs=*/1);
  serve::AdmissionOptions admission;
  admission.maxInflight = 1;
  admission.maxQueue = 1;
  admission.allowFifoDesigns = true;
  server.startDispatch(admission);

  serve::Request blocked;
  blocked.design = fifo.path();
  auto blockedFut = server.submit(std::move(blocked));
  const int fifoFd = fifo.waitForReader();  // executing, not waiting
  FifoUnwedge unwedge(fifoFd);
  ASSERT_EQ(server.queuedRequests(), 0u);

  serve::Request queued;
  queued.design = "S1";
  auto queuedFut = server.submit(std::move(queued));
  ASSERT_EQ(server.queuedRequests(), 1u);

  // The queue is at its high-water mark: the next submit is shed
  // immediately (the future is already resolved -- nothing to wait on).
  serve::Request over;
  over.design = "S2";
  auto overFut = server.submit(std::move(over));
  const serve::Response busy = overFut.get();
  EXPECT_TRUE(busy.busy);
  EXPECT_EQ(busy.design, "S2");
  const std::string busyLine = serve::formatResponse(busy);
  EXPECT_EQ(busyLine.rfind("busy S2 queue full", 0), 0u) << busyLine;

  // Unblock; both admitted requests complete, and the queue takes new
  // work again.
  fifo.release(unwedge.disarm(), chip::generateChip(chip::table1Designs()[2]));
  EXPECT_TRUE(blockedFut.get().ok);
  EXPECT_TRUE(queuedFut.get().ok);
  serve::Request after;
  after.design = "S1";
  const serve::Response recovered = server.submit(std::move(after)).get();
  EXPECT_FALSE(recovered.busy);
  EXPECT_TRUE(recovered.ok);
}

TEST(ServeNet, GracefulDrainFinishesInflightAndRefusesLateConnects) {
  FifoDesign fifo("serve_net_drain.chip");
  const chip::Chip chip = chip::generateChip(chip::table1Designs()[0]);
  const std::string expectedHash =
      util::sha256Hex(core::solutionToString(
          core::routeChip(chip, core::pacorDefaultConfig())));

  serve::net::NetOptions netOptions = loopback();
  netOptions.admission.allowFifoDesigns = true;
  serve::net::NetServer server(netOptions);
  serve::net::Client inflight("127.0.0.1", server.port());
  serve::net::Client bystander("127.0.0.1", server.port());
  // Force both connections through accept() before the drain closes the
  // listener: a TCP connect completes in the kernel backlog, so without a
  // round trip the acceptLoop may not have serviced `bystander` yet and the
  // drain would RST it as a late connect instead of answering busy. A
  // malformed frame is answered in place (no queue work), so this is cheap.
  EXPECT_EQ(bystander.call(""), "err - field=design empty request line");
  ASSERT_TRUE(inflight.send(fifo.path()));
  const int fifoFd = fifo.waitForReader();  // the request is executing
  FifoUnwedge unwedge(fifoFd);

  server.beginDrain();

  // Frames arriving on open connections after drain began are shed, not
  // hung: the queue answers busy immediately.
  const std::string busyLine = bystander.call("S1");
  EXPECT_EQ(busyLine.rfind("busy S1 draining", 0), 0u) << busyLine;

  // The in-flight request completes and its response is flushed.
  fifo.release(unwedge.disarm(), chip);
  std::string response;
  ASSERT_TRUE(inflight.recv(response));
  const auto parsed = serve::parseResponseLine(response);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, "ok");
  EXPECT_EQ(parsed->sha256, expectedHash);

  server.wait();
  // The listener is down: late connects are refused outright.
  EXPECT_THROW(serve::net::Client("127.0.0.1", server.port()),
               std::runtime_error);
}

// --- liveness: deadlines, watchdog, dispatcher recycling ----------------

/// Shorthand: a future resolved within `seconds` (liveness tests must
/// never hang the suite on the very bug they guard against).
serve::Response getWithin(std::future<serve::Response>& fut, int seconds) {
  if (fut.wait_for(std::chrono::seconds(seconds)) !=
      std::future_status::ready) {
    ADD_FAILURE() << "response not produced within " << seconds << "s";
    std::abort();  // blocking on get() would hang the whole suite
  }
  return fut.get();
}

TEST(ServeDeadline, ExpiresWhileQueuedBehindAParkedDesign) {
  // One dispatcher, parked forever on a FIFO design: the queued S1 can
  // never pop, so only the watchdog's queue sweep (or the pop-time check,
  // if the timing lands there) can answer it.
  FifoDesign fifo("serve_deadline_queued.chip");
  serve::Server server(/*jobs=*/1);
  serve::AdmissionOptions admission;
  admission.maxInflight = 1;
  admission.allowFifoDesigns = true;
  server.startDispatch(admission);

  serve::Request parked;
  parked.design = fifo.path();
  auto parkedFut = server.submit(std::move(parked));
  const int fifoFd = fifo.waitForReader();
  FifoUnwedge unwedge(fifoFd);

  serve::Request queued;
  queued.design = "S1";
  queued.deadlineMs = 50;
  auto queuedFut = server.submit(std::move(queued));
  const serve::Response expired = getWithin(queuedFut, 10);
  EXPECT_FALSE(expired.ok);
  EXPECT_TRUE(expired.deadlineExpired);
  EXPECT_EQ(expired.errorField, "deadline");
  EXPECT_EQ(expired.design, "S1");
  const std::string line = serve::formatResponse(expired);
  EXPECT_EQ(line.rfind("err S1 field=deadline deadline expired after 50 ms",
                       0),
            0u)
      << line;

  // The parked request had no deadline; releasing it completes normally,
  // and the freed dispatcher serves new work.
  fifo.release(unwedge.disarm(), chip::generateChip(chip::table1Designs()[2]));
  EXPECT_TRUE(getWithin(parkedFut, 60).ok);
  serve::Request after;
  after.design = "S1";
  auto afterFut = server.submit(std::move(after));
  EXPECT_TRUE(getWithin(afterFut, 60).ok);
  EXPECT_GE(server.stats().deadlineExpired, 1u);
}

TEST(ServeDeadline, MidExecutionExpiryRecyclesTheDispatcherSlot) {
  FifoDesign fifo("serve_deadline_exec.chip");
  serve::Server server(/*jobs=*/1);
  serve::AdmissionOptions admission;
  admission.maxInflight = 1;
  admission.allowFifoDesigns = true;
  server.startDispatch(admission);

  // The executing request itself expires: the watchdog answers the caller
  // and recycles the slot while the abandoned load is still parked.
  serve::Request stuck;
  stuck.design = fifo.path();
  stuck.deadlineMs = 200;
  auto stuckFut = server.submit(std::move(stuck));
  const int stuckFd = fifo.waitForReader();
  const serve::Response expired = getWithin(stuckFut, 10);
  // Close our write end: a lingering writer would rob the retry below of
  // its EOF (a FIFO read sees EOF only once EVERY writer is gone).
  ::close(stuckFd);
  EXPECT_TRUE(expired.deadlineExpired);
  EXPECT_EQ(expired.errorField, "deadline");
  EXPECT_NE(expired.error.find("(executing)"), std::string::npos)
      << expired.error;

  // The recycled slot keeps serving other designs immediately...
  serve::Request other;
  other.design = "S1";
  auto otherFut = server.submit(std::move(other));
  EXPECT_TRUE(getWithin(otherFut, 60).ok);

  // ...and once the cancelled reader has let go of the pipe, an identical
  // request succeeds: the context was never built, so this run is cold.
  fifo.waitForNoReader();
  serve::Request retry;
  retry.design = fifo.path();
  auto retryFut = server.submit(std::move(retry));
  const int fifoFd = fifo.waitForReader();
  fifo.release(fifoFd, chip::generateChip(chip::table1Designs()[2]));
  const serve::Response ok = getWithin(retryFut, 60);
  EXPECT_TRUE(ok.ok) << ok.error;
  EXPECT_GT(ok.coldBuilds, 0);

  const serve::Server::Stats stats = server.stats();
  EXPECT_GE(stats.deadlineExpired, 1u);
  EXPECT_GE(stats.dispatcherRecycles, 1u);
}

TEST(ServeDeadline, ServerDefaultAppliesWhenTheRequestCarriesNone) {
  FifoDesign fifo("serve_deadline_default.chip");
  serve::Server server(/*jobs=*/1);
  serve::AdmissionOptions admission;
  admission.maxInflight = 1;
  admission.defaultDeadlineMs = 100;
  admission.allowFifoDesigns = true;
  server.startDispatch(admission);

  serve::Request stuck;
  stuck.design = fifo.path();  // no per-request deadline
  auto stuckFut = server.submit(std::move(stuck));
  const int stuckFd = fifo.waitForReader();
  const serve::Response expired = getWithin(stuckFut, 10);
  EXPECT_TRUE(expired.deadlineExpired);
  EXPECT_NE(expired.error.find("after 100 ms"), std::string::npos)
      << expired.error;
  ::close(stuckFd);
  fifo.waitForNoReader();  // let the cancelled load exit before teardown
}

TEST(ServeDeadline, SweptQueueCannotDoubleDispatchADesign) {
  // Regression: the watchdog's queued sweep used to leave the swept
  // design's key listed in runnable_; a later submit for the same design
  // then saw an empty, idle fifo and listed the key a SECOND time, so two
  // freed dispatchers could execute the design concurrently -- breaking
  // per-design FIFO serialization (and, for eco, commit order). With a
  // FIFO design as the target the break is directly observable: two
  // concurrent readers would race one pipe and split the chip bytes.
  FifoDesign parked1("serve_sweep_p1.chip");
  FifoDesign parked2("serve_sweep_p2.chip");
  FifoDesign target("serve_sweep_target.chip");
  serve::Server server(/*jobs=*/1);
  serve::AdmissionOptions admission;
  admission.maxInflight = 2;
  admission.allowFifoDesigns = true;
  server.startDispatch(admission);

  // Occupy both dispatchers, so the target request below can only ever be
  // answered by the watchdog's queued sweep.
  serve::Request busy1;
  busy1.design = parked1.path();
  auto busy1Fut = server.submit(std::move(busy1));
  serve::Request busy2;
  busy2.design = parked2.path();
  auto busy2Fut = server.submit(std::move(busy2));
  FifoUnwedge unwedge1(parked1.waitForReader());
  FifoUnwedge unwedge2(parked2.waitForReader());

  serve::Request doomed;
  doomed.design = target.path();
  doomed.deadlineMs = 50;
  auto doomedFut = server.submit(std::move(doomed));
  const serve::Response expired = getWithin(doomedFut, 10);
  EXPECT_TRUE(expired.deadlineExpired);
  ASSERT_EQ(server.queuedRequests(), 0u);

  // Two fresh requests for the swept design, then both dispatchers free
  // up at once: the design must still run them strictly one at a time.
  serve::Request first;
  first.design = target.path();
  auto firstFut = server.submit(std::move(first));
  serve::Request second;
  second.design = target.path();
  auto secondFut = server.submit(std::move(second));
  const chip::Chip chip = chip::generateChip(chip::table1Designs()[2]);
  parked1.release(unwedge1.disarm(), chip);
  parked2.release(unwedge2.disarm(), chip);
  EXPECT_TRUE(getWithin(busy1Fut, 60).ok);
  EXPECT_TRUE(getWithin(busy2Fut, 60).ok);

  // Exactly ONE reader parks on the pipe: the first request loads the
  // design, and the second -- running strictly after it -- reuses the
  // freshly built context without touching the pipe again. Under double
  // dispatch both requests would miss the context cache, park on the pipe
  // together, and split the single write between them: parse failures
  // (or a never-released second reader) instead of two ok responses.
  const int fd = target.waitForReader();
  target.release(fd, chip);
  const serve::Response firstResp = getWithin(firstFut, 60);
  EXPECT_TRUE(firstResp.ok) << firstResp.error;
  const serve::Response secondResp = getWithin(secondFut, 60);
  EXPECT_TRUE(secondResp.ok) << secondResp.error;
  EXPECT_EQ(secondResp.solutionHash, firstResp.solutionHash);
}

TEST(ServeDeadline, EcoRequestsHonorGenerousDeadlines) {
  // A deadline far in the future must not perturb the eco path: an empty
  // edit script is an identity re-route against the cached result.
  const std::string deltaPath = testing::TempDir() + "serve_deadline_empty.delta";
  chip::writeDeltaFile(deltaPath, chip::ChipDelta{});

  serve::Server server(/*jobs=*/1);
  serve::Request route;
  route.design = "S1";
  route.deadlineMs = serve::kMaxDeadlineMs;
  auto routeFut = server.submit(std::move(route));
  const serve::Response routed = getWithin(routeFut, 60);
  ASSERT_TRUE(routed.ok) << routed.error;

  serve::Request eco;
  eco.verb = serve::Verb::kEco;
  eco.design = "S1";
  eco.deltaPath = deltaPath;
  eco.deadlineMs = serve::kMaxDeadlineMs;
  auto ecoFut = server.submit(std::move(eco));
  const serve::Response ecoResp = getWithin(ecoFut, 60);
  ASSERT_TRUE(ecoResp.ok) << ecoResp.error;
  EXPECT_EQ(ecoResp.ecoMode, "identity");
  EXPECT_EQ(ecoResp.solutionHash, routed.solutionHash);
}

// --- LRU design cache ----------------------------------------------------

TEST(ServeLru, EvictionRebuildsTheDesignByteIdentically) {
  serve::Server server(/*jobs=*/1);
  serve::AdmissionOptions admission;
  admission.maxInflight = 1;
  admission.maxDesigns = 2;
  server.startDispatch(admission);

  const auto routeOnce = [&server](const std::string& design) {
    serve::Request req;
    req.design = design;
    auto fut = server.submit(std::move(req));
    const serve::Response resp = getWithin(fut, 60);
    EXPECT_TRUE(resp.ok) << resp.error;
    return resp;
  };

  const serve::Response first = routeOnce("S1");
  routeOnce("S2");
  routeOnce("S3");  // capacity 2: S1 is the LRU victim
  EXPECT_FALSE(server.hasContext("S1"));
  EXPECT_TRUE(server.hasContext("S2"));
  EXPECT_TRUE(server.hasContext("S3"));
  EXPECT_EQ(server.designCount(), 2u);
  EXPECT_GE(server.stats().evictions, 1u);

  // The evicted design rebuilds cold -- and byte-identically.
  const serve::Response again = routeOnce("S1");
  EXPECT_GT(again.coldBuilds, 0);
  EXPECT_EQ(again.solutionText, first.solutionText);
  EXPECT_EQ(again.solutionHash, first.solutionHash);
}

TEST(ServeLru, PinnedContextsAreNeverEvicted) {
  serve::Server server(/*jobs=*/1);
  // The external pin: holding the shared_ptr is exactly what an executing
  // request does, so this models an in-flight context under pressure.
  std::shared_ptr<serve::DesignContext> pin = server.context(
      "pinned", [] { return chip::generateChip(chip::table1Designs()[2]); });

  serve::AdmissionOptions admission;
  admission.maxInflight = 1;
  admission.maxDesigns = 1;
  server.startDispatch(admission);

  serve::Request req;
  req.design = "S2";
  auto fut = server.submit(std::move(req));
  EXPECT_TRUE(getWithin(fut, 60).ok);

  // Over capacity (2 resident > 1), but the pinned context survived: only
  // unpinned LRU entries are eviction candidates.
  EXPECT_TRUE(server.hasContext("pinned"));

  // Dropping the pin makes it evictable: the next insert reclaims down to
  // the cap, and the pinned-era context goes first (it is least recent).
  pin.reset();
  serve::Request next;
  next.design = "S3";
  auto nextFut = server.submit(std::move(next));
  EXPECT_TRUE(getWithin(nextFut, 60).ok);
  EXPECT_FALSE(server.hasContext("pinned"));
  EXPECT_LE(server.designCount(), 1u);
}

// --- load hardening ------------------------------------------------------

TEST(ServeLoad, NonRegularDesignFilesGetStructuredErrors) {
  // A FIFO without the test-only escape hatch, and a directory: both must
  // answer a structured `err ... field=design` without ever blocking.
  const std::string fifoPath = testing::TempDir() + "serve_load_reject.chip";
  ::unlink(fifoPath.c_str());
  ASSERT_EQ(::mkfifo(fifoPath.c_str(), 0600), 0);
  const std::string dirPath = testing::TempDir() + "serve_load_dir.chip";
  ::mkdir(dirPath.c_str(), 0700);

  serve::Server server(/*jobs=*/1);
  for (const std::string& path : {fifoPath, dirPath}) {
    SCOPED_TRACE(path);
    serve::Request req;
    req.design = path;
    auto fut = server.submit(std::move(req));
    const serve::Response resp = getWithin(fut, 10);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorField, "design");
    EXPECT_EQ(serve::formatResponse(resp).rfind("err " + path + " field=design", 0),
              0u)
        << serve::formatResponse(resp);
  }
  ::unlink(fifoPath.c_str());
  ::rmdir(dirPath.c_str());

  // Missing paths keep their historical plain-error shape (see
  // ExecutionErrorsComeBackAsErrorResponses): reject only what EXISTS and
  // is the wrong kind of file.
}

TEST(ServeNet, ClientDisconnectMidResponseKeepsTheServerServing) {
  // The client vanishes between request and response: the write fails
  // (EPIPE/ECONNRESET), which must neither kill the process (SIGPIPE) nor
  // wedge the server for other clients.
  FifoDesign fifo("serve_net_disconnect.chip");
  serve::net::NetOptions netOptions = loopback();
  netOptions.admission.allowFifoDesigns = true;
  serve::net::NetServer server(netOptions);

  int fifoFd = -1;
  {
    serve::net::Client doomed("127.0.0.1", server.port());
    ASSERT_TRUE(doomed.send(fifo.path()));
    fifoFd = fifo.waitForReader();  // request admitted and executing
  }  // ~Client closes the socket with the response still pending
  FifoUnwedge unwedge(fifoFd);

  // Resolving the request now writes into a dead connection.
  fifo.release(unwedge.disarm(), chip::generateChip(chip::table1Designs()[2]));

  // The server keeps serving other clients as if nothing happened.
  serve::net::Client bystander("127.0.0.1", server.port());
  for (int i = 0; i < 3; ++i) {
    const auto resp = serve::parseResponseLine(bystander.call("S1"));
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, "ok") << "request " << i;
  }
  server.wait();  // drains cleanly despite the dead connection
}

}  // namespace
}  // namespace pacor
