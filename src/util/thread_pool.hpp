#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pacor::util {

/// Number of worker threads "--jobs 0" resolves to: all hardware threads.
inline unsigned hardwareJobs() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Minimal persistent thread pool for the routing pipeline's fork/join
/// loops. A one-shot routeChip call creates one pool and reuses it across
/// stages; a long-lived server shares a single pool across every request
/// (core::RouteResources), so worker threads -- and their thread-local
/// RouterWorkspaces -- are spawned once per process, not per call.
///
/// The only primitive is parallelFor: workers (and the calling thread)
/// pull task indices from a shared atomic counter until exhausted. The
/// body receives (taskIndex, workerIndex); workerIndex is stable within
/// one parallelFor call and < threadCount(), which lets callers keep
/// per-worker scratch without locks. Exceptions thrown by the body are
/// captured and the first one rethrown on the caller after the join.
///
/// parallelFor may be called from multiple threads concurrently: whole
/// batches are serialized on an internal mutex, so concurrent callers
/// take turns (each batch still sees the exact single-caller semantics,
/// including stable workerIndex assignment). It remains non-reentrant
/// from within a task body.
///
/// A pool constructed with threads <= 1 spawns nothing and runs
/// parallelFor inline; `--jobs 1` therefore exercises the exact serial
/// code path.
class ThreadPool {
 public:
  using Body = std::function<void(std::size_t taskIndex, unsigned workerIndex)>;

  explicit ThreadPool(unsigned threads) {
    if (threads <= 1) return;
    workers_.reserve(threads - 1);
    for (unsigned w = 1; w < threads; ++w)
      workers_.emplace_back([this, w] { workerLoop(w); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Total workers including the calling thread.
  unsigned threadCount() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Batches run inline on the caller (<= 1 task, or a serial pool) vs.
  /// batches dispatched to the worker threads, cumulative over the pool's
  /// lifetime. Surfaced as the `pool.batches_*` pipeline metrics.
  std::uint64_t inlineBatches() const noexcept {
    return inlineBatches_.load(std::memory_order_relaxed);
  }
  std::uint64_t dispatchedBatches() const noexcept {
    return dispatchedBatches_.load(std::memory_order_relaxed);
  }

  /// Runs body(taskIndex, workerIndex) for every taskIndex in
  /// [0, taskCount). Blocks until all tasks finished and every
  /// participating worker has left the batch. Concurrent callers are
  /// serialized batch-by-batch; not reentrant from a task body.
  void parallelFor(std::size_t taskCount, const Body& body) {
    if (taskCount == 0) return;
    // A single task (or a serial pool) gains nothing from waking workers
    // and paying two mutex handoffs -- run it inline on the caller. The
    // counters let the pipeline report how often dispatch was worth it.
    if (workers_.empty() || taskCount == 1) {
      inlineBatches_.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t i = 0; i < taskCount; ++i) body(i, 0);
      return;
    }
    dispatchedBatches_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard batchLock(batchMutex_);
    {
      std::lock_guard lock(mutex_);
      body_ = &body;
      taskCount_ = taskCount;
      nextTask_.store(0, std::memory_order_relaxed);
      pending_ = taskCount;
      ++generation_;
    }
    wake_.notify_all();
    runTasks(body, taskCount, 0);
    std::unique_lock lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0 && activeWorkers_ == 0; });
    body_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  void runTasks(const Body& body, std::size_t taskCount, unsigned workerIndex) {
    std::size_t finished = 0;
    for (;;) {
      const std::size_t i = nextTask_.fetch_add(1, std::memory_order_relaxed);
      if (i >= taskCount) break;
      try {
        body(i, workerIndex);
      } catch (...) {
        std::lock_guard lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      ++finished;
    }
    if (finished > 0) {
      std::lock_guard lock(mutex_);
      pending_ -= finished;
      if (pending_ == 0) done_.notify_all();
    }
  }

  void workerLoop(unsigned workerIndex) {
    std::uint64_t seen = 0;
    for (;;) {
      const Body* body = nullptr;
      std::size_t taskCount = 0;
      {
        std::unique_lock lock(mutex_);
        wake_.wait(lock, [&] { return stopping_ || generation_ != seen; });
        if (stopping_) return;
        seen = generation_;
        if (body_ == nullptr) continue;  // woke after the batch completed
        body = body_;
        taskCount = taskCount_;
        ++activeWorkers_;
      }
      runTasks(*body, taskCount, workerIndex);
      {
        std::lock_guard lock(mutex_);
        if (--activeWorkers_ == 0) done_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex batchMutex_;  ///< serializes whole batches across callers
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const Body* body_ = nullptr;
  std::size_t taskCount_ = 0;
  std::atomic<std::size_t> nextTask_{0};
  std::size_t pending_ = 0;
  std::size_t activeWorkers_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> inlineBatches_{0};
  std::atomic<std::uint64_t> dispatchedBatches_{0};
};

}  // namespace pacor::util
