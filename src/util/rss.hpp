#pragma once

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace pacor::util {

/// Peak resident-set size of the calling process in KiB, from
/// getrusage(RUSAGE_SELF). Monotone over the process lifetime (it is a
/// high-water mark, not the current RSS); returns 0 on platforms that do
/// not expose it. The benchmarks report this next to wall time so memory
/// regressions on the big dies are as visible as slowdowns.
inline std::int64_t peakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // macOS reports bytes
#else
  return usage.ru_maxrss;  // Linux reports KiB
#endif
#else
  return 0;
#endif
}

}  // namespace pacor::util
