#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "geom/point.hpp"
#include "route/path.hpp"

namespace pacor::sim {

using geom::Point;

/// First-order fluidic parameters of a PDMS control channel, per grid
/// cell. Pressure propagation through flexible PDMS is slow (paper Sec. 1,
/// citing Lim et al.): each channel segment acts as a hydraulic resistance
/// and the elastomer wall as a compliance, so a control channel is an RC
/// ladder and the wavefront delay grows with channel length — the physical
/// reason the length-matching constraint exists.
struct ChannelModel {
  double segmentResistance = 1.0;  ///< hydraulic resistance per cell (a.u.)
  double segmentCapacitance = 1.0; ///< wall compliance per cell (a.u.)
  double valveCapacitance = 4.0;   ///< extra compliance of a valve chamber
  double threshold = 0.9;          ///< fraction of source pressure that actuates
};

/// An RC tree built from routed control channels of one net, rooted at
/// the control pin cell. Construction fails (std::nullopt) when the cells
/// do not form a connected tree containing the root.
class ChannelTree {
 public:
  /// `paths` are the routed channel segments of one net; `root` must be a
  /// cell of some path (the control pin); `valves` get valveCapacitance.
  static std::optional<ChannelTree> build(Point root, std::span<const route::Path> paths,
                                          std::span<const Point> valves,
                                          const ChannelModel& model = {});

  std::size_t cellCount() const noexcept { return cells_.size(); }
  Point root() const noexcept { return cells_[0]; }

  /// Elmore delay of a cell: sum over the root path of R_upstream * C_sub.
  /// Monotone in path length for uniform ladders; the standard first-order
  /// estimate of the pressure wavefront arrival.
  double elmoreDelay(Point cell) const;

  /// Max |delay(a) - delay(b)| over the given cells (valve skew).
  double skew(std::span<const Point> cells) const;

  /// Explicit transient simulation of the RC ladder with a unit pressure
  /// step at the root; returns the time each queried cell first crosses
  /// model.threshold, or -1 when it never does within maxTime.
  std::vector<double> actuationTimes(std::span<const Point> cells, double dt,
                                     double maxTime) const;

 private:
  ChannelTree() = default;

  ChannelModel model_;
  std::vector<Point> cells_;                   ///< BFS order, root first
  std::vector<int> parent_;                    ///< index into cells_; -1 for root
  std::vector<double> capacitance_;            ///< per cell
  std::vector<double> elmore_;                 ///< per cell
  std::unordered_map<Point, int> index_;
};

/// Per-cluster synchronization analysis of a full routing result.
struct ClusterSkew {
  std::size_t clusterIndex = 0;
  bool lengthMatchRequested = false;
  bool lengthMatched = false;
  double elmoreSkew = -1.0;  ///< -1 when the cluster could not be analyzed
};

struct SkewReport {
  std::vector<ClusterSkew> clusters;
  double worstMatchedSkew = 0.0;    ///< over length-matched clusters
  double worstUnmatchedSkew = 0.0;  ///< over the rest (multi-valve only)
};

}  // namespace pacor::sim
