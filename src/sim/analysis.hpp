#pragma once

#include "chip/chip.hpp"
#include "pacor/result.hpp"
#include "sim/pressure.hpp"

namespace pacor::sim {

/// Builds an RC channel tree for every multi-valve cluster of a routing
/// result and reports the Elmore actuation skew between its valves --
/// the physical quantity the length-matching constraint controls. A
/// cluster that is unrouted or whose channels do not form a tree gets
/// elmoreSkew = -1 and is excluded from the worst-case aggregates.
SkewReport analyzeSkew(const chip::Chip& chip, const core::PacorResult& result,
                       const ChannelModel& model = {});

}  // namespace pacor::sim
