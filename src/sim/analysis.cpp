#include "sim/analysis.hpp"

#include <algorithm>

namespace pacor::sim {

SkewReport analyzeSkew(const chip::Chip& chip, const core::PacorResult& result,
                       const ChannelModel& model) {
  SkewReport report;
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    const core::RoutedCluster& c = result.clusters[i];
    if (c.valves.size() < 2) continue;

    ClusterSkew entry;
    entry.clusterIndex = i;
    entry.lengthMatchRequested = c.lengthMatchRequested;
    entry.lengthMatched = c.lengthMatched;

    if (c.pin >= 0) {
      std::vector<route::Path> paths = c.treePaths;
      paths.push_back(c.escapePath);
      std::vector<geom::Point> valves;
      valves.reserve(c.valves.size());
      for (const chip::ValveId v : c.valves) valves.push_back(chip.valve(v).pos);
      if (const auto tree =
              ChannelTree::build(chip.pin(c.pin).pos, paths, valves, model)) {
        entry.elmoreSkew = tree->skew(valves);
        if (c.lengthMatchRequested && c.lengthMatched)
          report.worstMatchedSkew = std::max(report.worstMatchedSkew, entry.elmoreSkew);
        else
          report.worstUnmatchedSkew =
              std::max(report.worstUnmatchedSkew, entry.elmoreSkew);
      }
    }
    report.clusters.push_back(entry);
  }
  return report;
}

}  // namespace pacor::sim
