#include "sim/pressure.hpp"

#include "grid/grid.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

namespace pacor::sim {

std::optional<ChannelTree> ChannelTree::build(Point root,
                                              std::span<const route::Path> paths,
                                              std::span<const Point> valves,
                                              const ChannelModel& model) {
  // Collect unique cells and 4-adjacency among them.
  std::unordered_set<Point> cellSet;
  for (const auto& path : paths) cellSet.insert(path.begin(), path.end());
  if (!cellSet.contains(root)) return std::nullopt;

  ChannelTree tree;
  tree.model_ = model;
  std::unordered_set<Point> valveSet(valves.begin(), valves.end());

  // BFS from the root over channel cells; visiting everything exactly once
  // certifies the net is a connected tree rooted at the pin.
  std::queue<Point> frontier;
  frontier.push(root);
  tree.index_.emplace(root, 0);
  tree.cells_.push_back(root);
  tree.parent_.push_back(-1);
  while (!frontier.empty()) {
    const Point p = frontier.front();
    frontier.pop();
    const int pi = tree.index_.at(p);
    for (const Point d : grid::Grid::kNeighborOffsets) {
      const Point q = p + d;
      if (!cellSet.contains(q) || tree.index_.contains(q)) continue;
      tree.index_.emplace(q, static_cast<int>(tree.cells_.size()));
      tree.cells_.push_back(q);
      tree.parent_.push_back(pi);
      frontier.push(q);
    }
  }
  if (tree.cells_.size() != cellSet.size()) return std::nullopt;  // disconnected

  const std::size_t n = tree.cells_.size();
  tree.capacitance_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    tree.capacitance_[i] = model.segmentCapacitance +
                           (valveSet.contains(tree.cells_[i]) ? model.valveCapacitance : 0.0);

  // Subtree capacitance bottom-up (children have larger BFS index).
  std::vector<double> subCap = tree.capacitance_;
  for (std::size_t i = n; i-- > 1;) subCap[static_cast<std::size_t>(tree.parent_[i])] += subCap[i];

  // Elmore top-down: delay(child) = delay(parent) + R_edge * subCap(child).
  tree.elmore_.assign(n, 0.0);
  for (std::size_t i = 1; i < n; ++i)
    tree.elmore_[i] = tree.elmore_[static_cast<std::size_t>(tree.parent_[i])] +
                      model.segmentResistance * subCap[i];
  return tree;
}

double ChannelTree::elmoreDelay(Point cell) const {
  const auto it = index_.find(cell);
  return it == index_.end() ? -1.0 : elmore_[static_cast<std::size_t>(it->second)];
}

double ChannelTree::skew(std::span<const Point> cells) const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const Point c : cells) {
    const double d = elmoreDelay(c);
    if (d < 0) continue;
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return (hi < lo) ? 0.0 : hi - lo;
}

std::vector<double> ChannelTree::actuationTimes(std::span<const Point> cells, double dt,
                                                double maxTime) const {
  const std::size_t n = cells_.size();
  std::vector<double> pressure(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> crossed(n, -1.0);
  crossed[0] = 0.0;  // root is the source

  const double g = 1.0 / model_.segmentResistance;  // edge conductance
  for (double t = dt; t <= maxTime; t += dt) {
    // Forward Euler on C_i dP_i/dt = sum_j g (P_j - P_i) over tree edges;
    // the root is clamped at unit source pressure.
    std::copy(pressure.begin(), pressure.end(), next.begin());
    pressure[0] = 1.0;
    for (std::size_t i = 1; i < n; ++i) {
      const auto pi = static_cast<std::size_t>(parent_[i]);
      const double flow = g * (pressure[pi] - pressure[i]) * dt;
      next[i] += flow / capacitance_[i];
      if (pi != 0) next[pi] -= flow / capacitance_[pi];
    }
    next[0] = 1.0;
    pressure.swap(next);
    for (std::size_t i = 0; i < n; ++i)
      if (crossed[i] < 0 && pressure[i] >= model_.threshold) crossed[i] = t;
  }

  std::vector<double> out;
  out.reserve(cells.size());
  for (const Point c : cells) {
    const auto it = index_.find(c);
    out.push_back(it == index_.end() ? -1.0
                                     : crossed[static_cast<std::size_t>(it->second)]);
  }
  return out;
}

}  // namespace pacor::sim
