#include "serve/serve.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include "chip/generator.hpp"
#include "chip/io.hpp"
#include "pacor/eco.hpp"
#include "pacor/escape.hpp"
#include "pacor/solution_io.hpp"
#include "util/sha256.hpp"

namespace pacor::serve {

namespace {

unsigned poolSize(int jobs) {
  const int resolved = jobs == 0 ? static_cast<int>(util::hardwareJobs()) : jobs;
  return static_cast<unsigned>(std::max(1, resolved));
}

/// True when two configs produce byte-identical routed output, so a result
/// cached under one can serve as the ECO base under the other. Every
/// output-affecting knob is compared; jobs and incrementalEscape are
/// excluded by the pipeline's bit-identity contract.
bool configsEquivalent(const core::PacorConfig& a, const core::PacorConfig& b) {
  return a.candidates.count == b.candidates.count &&
         a.candidates.ringSearchRadius == b.candidates.ringSearchRadius &&
         a.lambda == b.lambda && a.useSelection == b.useSelection &&
         a.exactSelectionLimit == b.exactSelectionLimit &&
         a.negotiation.baseHistoryCost == b.negotiation.baseHistoryCost &&
         a.negotiation.alpha == b.negotiation.alpha &&
         a.negotiation.maxIterations == b.negotiation.maxIterations &&
         a.detourIterations == b.detourIterations &&
         a.useBoundedDetour == b.useBoundedDetour &&
         a.detourStage == b.detourStage &&
         a.maxEscapeRounds == b.maxEscapeRounds &&
         a.escapeMode == b.escapeMode && a.fastEscape == b.fastEscape &&
         a.matchingRetries == b.matchingRetries &&
         a.legalizeRadius == b.legalizeRadius;
}

/// Response fields + side files every successful routing request shares.
void fillRouteResponse(Response& resp, const core::PacorResult& result,
                       const RequestOptions& options) {
  resp.complete = result.complete;
  resp.solutionText = core::solutionToString(result);
  resp.solutionHash = util::sha256Hex(resp.solutionText);
  resp.clusterCount = result.clusters.size();
  resp.totalLength = result.totalChannelLength;
  resp.ok = true;
  if (!options.solutionPath.empty())
    core::writeSolutionFile(options.solutionPath, result);
  if (!options.metricsPath.empty()) {
    std::ofstream os(options.metricsPath);
    os << "{\n  \"design\": \"" << result.design << "\",\n  \"metrics\": "
       << result.metrics.toJson(/*pretty=*/true) << "\n}\n";
    if (!os) {
      resp.ok = false;
      resp.error = "cannot write metrics file " + options.metricsPath;
    }
  }
}

}  // namespace

DesignContext::DesignContext(chip::Chip chip)
    : chip_(std::move(chip)),
      obstacleTemplate_(core::makeRoutingObstacleTemplate(chip_)) {}

DesignContext::~DesignContext() = default;

Server::Server(int jobs) : pool_(poolSize(jobs)) {}

DesignContext& Server::context(const std::string& key,
                               const std::function<chip::Chip()>& load) {
  // Holding the map lock through `load` serializes first-touch loads of
  // the same design (cheap: a generate or one file read, paid once).
  std::lock_guard<std::mutex> lock(contextsMutex_);
  auto it = contexts_.find(key);
  if (it == contexts_.end())
    it = contexts_.emplace(key, std::make_unique<DesignContext>(load())).first;
  return *it->second;
}

std::size_t Server::designCount() const {
  std::lock_guard<std::mutex> lock(contextsMutex_);
  return contexts_.size();
}

Response Server::route(DesignContext& ctx, const RequestOptions& options) {
  Response resp;
  resp.design = ctx.chip().name;

  // Trace ownership is serialized explicitly: a traced request waits for
  // every in-flight request to drain and runs alone, so its session is
  // neither superseded mid-flight nor polluted by concurrent requests'
  // spans. Untraced requests share the fence and run concurrently.
  const bool traced = !options.tracePath.empty();
  std::shared_lock<std::shared_mutex> shared(traceFence_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(traceFence_, std::defer_lock);
  if (traced)
    exclusive.lock();
  else
    shared.lock();

  if (traced) ctx.traceSession().begin(options.traceLevel);
  // The chip and template must stay put while this request routes; eco()
  // takes the same lock exclusively to swap them.
  std::shared_lock<std::shared_mutex> state(ctx.stateMutex_);
  // One request at a time drives the persistent escape session; losers of
  // the try-lock route through a request-local session (byte-identical,
  // just without the cross-request warm start).
  std::unique_lock<std::mutex> sessionLock(ctx.escapeMutex_, std::try_to_lock);
  try {
    core::RouteResources resources;
    resources.pool = &pool_;
    resources.obstacleTemplate = &ctx.obstacleTemplate_;
    if (sessionLock.owns_lock()) resources.escapeSession = &ctx.escapeSession_;
    const core::PacorResult result =
        core::routeChip(ctx.chip_, options.config, resources);
    fillRouteResponse(resp, result, options);
    std::lock_guard<std::mutex> cache(ctx.cacheMutex_);
    ctx.lastResult_ = result;
    ctx.lastConfig_ = options.config;
    ctx.hasLast_ = true;
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }

  if (traced) {
    const std::vector<trace::Event> events = ctx.traceSession().end();
    // Belt and braces: the fence makes supersession impossible here, but a
    // discarded trace must be reported, never returned as "empty".
    if (ctx.traceSession().superseded()) {
      resp.traceDiscarded = true;
      resp.ok = false;
      if (!resp.error.empty()) resp.error += "; ";
      resp.error += "trace discarded: session superseded by a concurrent request";
    } else {
      resp.traceSpans = static_cast<int>(events.size());
      if (!trace::writeChromeTrace(options.tracePath, events)) {
        resp.ok = false;
        if (!resp.error.empty()) resp.error += "; ";
        resp.error += "cannot write trace file " + options.tracePath;
      }
    }
  }
  return resp;
}

Response Server::route(const std::string& key, const chip::Chip& chip,
                       const RequestOptions& options) {
  return route(context(key, [&] { return chip; }), options);
}

Response Server::eco(DesignContext& ctx, const chip::ChipDelta& delta,
                     const RequestOptions& options) {
  Response resp;

  // Same trace-ownership discipline as route(); then the context's state
  // lock is taken exclusively -- an eco edit replaces the chip and the
  // obstacle template, so no request may route the design concurrently.
  const bool traced = !options.tracePath.empty();
  std::shared_lock<std::shared_mutex> shared(traceFence_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(traceFence_, std::defer_lock);
  if (traced)
    exclusive.lock();
  else
    shared.lock();

  if (traced) ctx.traceSession().begin(options.traceLevel);
  std::unique_lock<std::shared_mutex> state(ctx.stateMutex_);
  // Uncontended given the exclusive state lock, but keeps the invariant
  // that whoever routes through the persistent session holds this mutex.
  std::unique_lock<std::mutex> sessionLock(ctx.escapeMutex_);
  resp.design = ctx.chip_.name;
  try {
    const chip::Chip base = ctx.chip_;
    core::RouteResources resources;
    resources.pool = &pool_;
    resources.escapeSession = &ctx.escapeSession_;

    // The ECO base: the cached previous result when its config routes
    // byte-identically under this request's config, else a fresh route of
    // the pre-edit chip (paid once; subsequent eco requests chain).
    bool havePrev = false;
    core::PacorResult prev;
    {
      std::lock_guard<std::mutex> cache(ctx.cacheMutex_);
      if (ctx.hasLast_ && configsEquivalent(ctx.lastConfig_, options.config)) {
        prev = ctx.lastResult_;
        havePrev = true;
      }
    }
    if (!havePrev) {
      core::RouteResources baseResources = resources;
      baseResources.obstacleTemplate = &ctx.obstacleTemplate_;
      prev = core::routeChip(base, options.config, baseResources);
    }

    core::EcoInfo info;
    const core::PacorResult result =
        core::rerouteChip(base, prev, delta, options.config, resources, &info);

    // Commit the edited design: later requests (route or eco) see it.
    ctx.chip_ = chip::apply(base, delta);
    ctx.obstacleTemplate_ = core::makeRoutingObstacleTemplate(ctx.chip_);
    {
      std::lock_guard<std::mutex> cache(ctx.cacheMutex_);
      ctx.lastResult_ = result;
      ctx.lastConfig_ = options.config;
      ctx.hasLast_ = true;
    }
    resp.design = ctx.chip_.name;
    fillRouteResponse(resp, result, options);
    resp.ecoMode = info.mode == core::EcoInfo::Mode::kIdentity ? "identity"
                   : info.mode == core::EcoInfo::Mode::kIncremental
                       ? "incremental"
                       : "full";
    resp.ecoDirty = info.dirtyClusters;
    resp.ecoFrozen = info.frozenClusters;
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }

  if (traced) {
    const std::vector<trace::Event> events = ctx.traceSession().end();
    if (ctx.traceSession().superseded()) {
      resp.traceDiscarded = true;
      resp.ok = false;
      if (!resp.error.empty()) resp.error += "; ";
      resp.error += "trace discarded: session superseded by a concurrent request";
    } else {
      resp.traceSpans = static_cast<int>(events.size());
      if (!trace::writeChromeTrace(options.tracePath, events)) {
        resp.ok = false;
        if (!resp.error.empty()) resp.error += "; ";
        resp.error += "cannot write trace file " + options.tracePath;
      }
    }
  }
  return resp;
}

namespace {

/// One parsed manifest line; `error` non-empty when the line is malformed.
struct BatchRequest {
  std::string design;
  RequestOptions options;
  std::string error;
  bool eco = false;       ///< line used the `eco` verb
  std::string deltaPath;  ///< edit script path (eco requests)
};

std::optional<chip::GeneratorParams> findTable1Design(const std::string& name) {
  for (const auto& params : chip::table1Designs())
    if (params.name == name) return params;
  return std::nullopt;
}

BatchRequest parseLine(const std::string& line) {
  BatchRequest req;
  std::istringstream is(line);
  if (!(is >> req.design)) {
    req.error = "empty request line";
    return req;
  }
  if (req.design == "eco") {
    req.eco = true;
    if (!(is >> req.design)) {
      req.error = "eco request without a design";
      return req;
    }
  }
  std::string variant = "pacor";
  bool incrementalEscape = true;
  bool fastEscape = false;
  std::string token;
  while (is >> token) {
    if (req.eco && token.rfind("delta=", 0) == 0) {
      req.deltaPath = token.substr(6);
    } else if (token.rfind("sol=", 0) == 0) {
      req.options.solutionPath = token.substr(4);
    } else if (token.rfind("metrics=", 0) == 0) {
      req.options.metricsPath = token.substr(8);
    } else if (token.rfind("trace=", 0) == 0) {
      req.options.tracePath = token.substr(6);
    } else if (token.rfind("trace-level=", 0) == 0) {
      const auto level = trace::parseLevel(token.substr(12));
      if (!level) {
        req.error = "bad trace-level '" + token.substr(12) + "'";
        return req;
      }
      req.options.traceLevel = *level;
    } else if (token.rfind("variant=", 0) == 0) {
      variant = token.substr(8);
    } else if (token == "no-incremental-escape") {
      incrementalEscape = false;
    } else if (token == "fast-escape") {
      fastEscape = true;
    } else {
      req.error = "unknown option '" + token + "'";
      return req;
    }
  }
  if (variant == "pacor")
    req.options.config = core::pacorDefaultConfig();
  else if (variant == "wosel")
    req.options.config = core::withoutSelectionConfig();
  else if (variant == "detour-first")
    req.options.config = core::detourFirstConfig();
  else {
    req.error = "unknown variant '" + variant + "'";
    return req;
  }
  req.options.config.incrementalEscape = incrementalEscape;
  req.options.config.fastEscape = fastEscape;
  if (req.eco && req.deltaPath.empty()) req.error = "eco request without delta=PATH";
  return req;
}

Response executeRequest(Server& server, const BatchRequest& req) {
  Response resp;
  resp.design = req.design;
  if (!req.error.empty()) {
    resp.error = req.error;
    return resp;
  }
  try {
    DesignContext& ctx = server.context(req.design, [&req]() -> chip::Chip {
      // FPVA spec tokens (fpva:NxM[:key=val...]) synthesize valve arrays
      // on demand; the spec string is the cache key, so repeat requests
      // for the same array hit the warm DesignContext.
      if (chip::isFpvaSpec(req.design))
        return chip::generateFpvaChip(chip::parseFpvaSpec(req.design));
      if (const auto params = findTable1Design(req.design))
        return chip::generateChip(*params);
      return chip::readChipFile(req.design);
    });
    resp = req.eco ? server.eco(ctx, chip::readDeltaFile(req.deltaPath), req.options)
                   : server.route(ctx, req.options);
    resp.design = req.design;  // report the manifest key, not chip.name
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }
  return resp;
}

void printResponse(std::ostream& out, const Response& resp) {
  if (!resp.ok) {
    out << "error " << resp.design << ' '
        << (resp.error.empty() ? "unknown failure" : resp.error) << '\n';
    return;
  }
  out << "ok " << resp.design << " sha256=" << resp.solutionHash
      << " complete=" << (resp.complete ? 1 : 0) << " clusters="
      << resp.clusterCount << " length=" << resp.totalLength;
  if (resp.traceSpans >= 0) out << " trace_spans=" << resp.traceSpans;
  // Only eco responses carry the extra fields: stdout stays byte-stable
  // for any manifest that predates the verb.
  if (!resp.ecoMode.empty())
    out << " eco=" << resp.ecoMode << " dirty=" << resp.ecoDirty
        << " reused=" << resp.ecoFrozen;
  out << '\n';
}

}  // namespace

int runBatch(std::istream& manifest, std::ostream& out, const BatchOptions& options) {
  std::vector<BatchRequest> requests;
  std::string line;
  while (std::getline(manifest, line)) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    requests.push_back(parseLine(line));
  }

  Server server(options.jobs);
  std::vector<Response> responses(requests.size());
  const auto t0 = std::chrono::steady_clock::now();

  const std::size_t inFlight = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, options.concurrency)), requests.size());
  if (inFlight <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i)
      responses[i] = executeRequest(server, requests[i]);
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) break;
        responses[i] = executeRequest(server, requests[i]);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(inFlight);
    for (std::size_t t = 0; t < inFlight; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Responses print in request order; timing goes to stderr so stdout is
  // byte-stable for a given manifest.
  int failed = 0;
  for (const Response& resp : responses) {
    printResponse(out, resp);
    if (!resp.ok || !resp.complete) ++failed;
  }
  std::fprintf(stderr,
               "pacor serve: %zu request(s), %zu design context(s), jobs=%u, "
               "concurrency=%zu, %d failure(s), %.2fs\n",
               requests.size(), server.designCount(), server.threadCount(),
               inFlight, failed, seconds);
  return failed;
}

}  // namespace pacor::serve
