#include "serve/serve.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "chip/generator.hpp"
#include "chip/io.hpp"
#include "pacor/eco.hpp"
#include "pacor/escape.hpp"
#include "pacor/solution_io.hpp"
#include "util/sha256.hpp"

namespace pacor::serve {

namespace {

unsigned poolSize(int jobs) {
  const int resolved = jobs == 0 ? static_cast<int>(util::hardwareJobs()) : jobs;
  return static_cast<unsigned>(std::max(1, resolved));
}

/// True when two configs produce byte-identical routed output, so a result
/// cached under one can serve as the ECO base under the other. Every
/// output-affecting knob is compared; jobs and incrementalEscape are
/// excluded by the pipeline's bit-identity contract.
bool configsEquivalent(const core::PacorConfig& a, const core::PacorConfig& b) {
  return a.candidates.count == b.candidates.count &&
         a.candidates.ringSearchRadius == b.candidates.ringSearchRadius &&
         a.lambda == b.lambda && a.useSelection == b.useSelection &&
         a.exactSelectionLimit == b.exactSelectionLimit &&
         a.negotiation.baseHistoryCost == b.negotiation.baseHistoryCost &&
         a.negotiation.alpha == b.negotiation.alpha &&
         a.negotiation.maxIterations == b.negotiation.maxIterations &&
         a.detourIterations == b.detourIterations &&
         a.useBoundedDetour == b.useBoundedDetour &&
         a.detourStage == b.detourStage &&
         a.maxEscapeRounds == b.maxEscapeRounds &&
         a.escapeMode == b.escapeMode && a.fastEscape == b.fastEscape &&
         a.matchingRetries == b.matchingRetries &&
         a.legalizeRadius == b.legalizeRadius;
}

bool cancelled(const std::shared_ptr<std::atomic<bool>>& cancel) {
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

/// Response fields + side files every successful routing request shares.
void fillRouteResponse(Response& resp, const core::PacorResult& result,
                       const RequestOptions& options) {
  resp.complete = result.complete;
  resp.solutionText = core::solutionToString(result);
  resp.solutionHash = util::sha256Hex(resp.solutionText);
  resp.clusterCount = result.clusters.size();
  resp.totalLength = result.totalChannelLength;
  resp.coldBuilds =
      static_cast<int>(result.metrics.getInt("escape.flow.cold_builds", -1));
  resp.ok = true;
  // No side files for a cancelled (watchdog-abandoned) request: the caller
  // was already answered with a deadline error, so a write here could only
  // clobber the output of a retry racing this discarded execution.
  if (cancelled(options.cancel)) return;
  if (!options.solutionPath.empty())
    core::writeSolutionFile(options.solutionPath, result);
  if (!options.metricsPath.empty()) {
    std::ofstream os(options.metricsPath);
    os << "{\n  \"design\": \"" << result.design << "\",\n  \"metrics\": "
       << result.metrics.toJson(/*pretty=*/true) << "\n}\n";
    if (!os) {
      resp.ok = false;
      resp.error = "cannot write metrics file " + options.metricsPath;
    }
  }
}

}  // namespace

namespace {

/// Close-on-scope-exit for raw fds (the read paths below throw).
struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

/// Chunked regular-file read, checking the cancel flag between chunks so
/// an expired request stops holding its dispatcher on a large/slow file.
std::string readFileCancellable(
    const std::string& path, const std::shared_ptr<std::atomic<bool>>& cancel) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    throw std::runtime_error("cannot read chip file " + path + ": " +
                             std::strerror(errno));
  FdGuard guard{fd};
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    if (cancelled(cancel))
      throw LoadError("deadline", "design load cancelled: " + path);
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("cannot read chip file " + path + ": " +
                               std::strerror(errno));
    }
    if (r == 0) return bytes;
    bytes.append(buf, static_cast<std::size_t>(r));
  }
}

/// TEST-ONLY FIFO path: parks until a writer supplies the chip bytes,
/// polling the cancel flag. Opened O_RDONLY|O_NONBLOCK so the open never
/// blocks; a read of 0 before any byte means "no writer yet" (FIFO
/// semantics), not EOF -- EOF is a 0 read after at least one byte.
std::string readFifoCancellable(
    const std::string& path, const std::shared_ptr<std::atomic<bool>>& cancel) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_NONBLOCK);
  if (fd < 0)
    throw std::runtime_error("cannot open fifo design " + path + ": " +
                             std::strerror(errno));
  FdGuard guard{fd};
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    if (cancelled(cancel))
      throw LoadError("deadline", "design load cancelled: " + path);
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r > 0) {
      bytes.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0 && !bytes.empty()) return bytes;  // writer closed after data
    if (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      throw std::runtime_error("cannot read fifo design " + path + ": " +
                               std::strerror(errno));
    // No writer yet (r==0 with nothing read) or momentarily empty: park.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

chip::Chip loadDesign(const std::string& token, const LoadOptions& options) {
  // FPVA spec tokens (fpva:NxM[:key=val...]) synthesize valve arrays on
  // demand; the spec string is the cache key, so repeat requests for the
  // same array hit the warm DesignContext.
  if (chip::isFpvaSpec(token))
    return chip::generateFpvaChip(chip::parseFpvaSpec(token));
  for (const auto& params : chip::table1Designs())
    if (params.name == token) return chip::generateChip(params);
  // Stat gate: only regular files are read as .chip paths. A FIFO (or a
  // directory, or a device node) would block the dispatcher or feed it
  // garbage; reject it with a structured err instead. Missing paths fall
  // through to the plain error path below, keeping the old message.
  struct stat st {};
  if (::stat(token.c_str(), &st) == 0 && !S_ISREG(st.st_mode)) {
    if (S_ISFIFO(st.st_mode) && options.allowFifoDesigns) {
      std::istringstream is(readFifoCancellable(token, options.cancel));
      return chip::readChip(is);
    }
    const char* kind = S_ISFIFO(st.st_mode)  ? "a fifo"
                       : S_ISDIR(st.st_mode) ? "a directory"
                       : S_ISCHR(st.st_mode) || S_ISBLK(st.st_mode)
                           ? "a device node"
                           : "not a regular file";
    throw LoadError("design",
                    "design path " + token + " is " + kind +
                        ", not a regular .chip file");
  }
  std::istringstream is(readFileCancellable(token, options.cancel));
  return chip::readChip(is);
}

chip::Chip loadDesign(const std::string& token) {
  return loadDesign(token, LoadOptions{});
}

DesignContext::DesignContext(chip::Chip chip)
    : chip_(std::move(chip)),
      obstacleTemplate_(core::makeRoutingObstacleTemplate(chip_)) {}

DesignContext::~DesignContext() = default;

Server::Server(int jobs) : pool_(poolSize(jobs)) {}

Server::~Server() { drainAndStop(); }

std::shared_ptr<DesignContext> Server::context(
    const std::string& key, const std::function<chip::Chip()>& load) {
  {
    std::lock_guard<std::mutex> lock(contextsMutex_);
    auto it = contexts_.find(key);
    if (it != contexts_.end()) {
      // O(1) LRU touch: splice the key to the most-recent end.
      lru_.splice(lru_.begin(), lru_, it->second.lruIt);
      return it->second.ctx;
    }
  }
  // Load WITHOUT the cache lock: a slow or parked load of one design must
  // never block lookups (or loads) of another. Two first-touch loads of
  // the same key can race; the first insert wins and the loser's copy is
  // dropped -- both are built from the same token, so either is correct.
  auto fresh = std::make_shared<DesignContext>(load());
  std::lock_guard<std::mutex> lock(contextsMutex_);
  auto it = contexts_.find(key);
  if (it != contexts_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    return it->second.ctx;
  }
  lru_.push_front(key);
  contexts_.emplace(key, ContextEntry{fresh, lru_.begin()});
  maybeEvictLocked();
  return fresh;
}

/// Evicts least-recently-used, unpinned contexts until the cache fits
/// AdmissionOptions::maxDesigns. Pinned entries (use_count > 1: some
/// request is executing against them, or a caller holds the shared_ptr)
/// are skipped, so the resident count can transiently exceed the bound by
/// the number of in-flight designs -- eviction never races a route.
/// Caller holds contextsMutex_.
void Server::maybeEvictLocked() {
  const std::size_t cap = maxDesigns_.load(std::memory_order_relaxed);
  if (cap == 0) return;  // unlimited
  auto it = lru_.end();
  while (contexts_.size() > cap && it != lru_.begin()) {
    --it;
    auto entry = contexts_.find(*it);
    if (entry == contexts_.end()) {  // should not happen; keep lru_ sane
      it = lru_.erase(it);
      continue;
    }
    // use_count()==1 means the map holds the only reference: no request
    // is pinned on it. New pins are minted only under contextsMutex_
    // (this lock), so the check cannot race a fresh pin.
    if (entry->second.ctx.use_count() > 1) continue;
    contexts_.erase(entry);
    it = lru_.erase(it);
    ++evictions_;
  }
}

bool Server::hasContext(const std::string& key) const {
  std::lock_guard<std::mutex> lock(contextsMutex_);
  return contexts_.count(key) != 0;
}

std::size_t Server::designCount() const {
  std::lock_guard<std::mutex> lock(contextsMutex_);
  return contexts_.size();
}

Server::Stats Server::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(queueMutex_);
    s.deadlineExpired = deadlineExpired_;
    s.dispatcherRecycles = dispatcherRecycles_;
  }
  {
    std::lock_guard<std::mutex> lock(contextsMutex_);
    s.evictions = evictions_;
  }
  return s;
}

Response Server::route(DesignContext& ctx, const RequestOptions& options) {
  Response resp;
  resp.design = ctx.chip().name;

  // Trace ownership is serialized explicitly: a traced request waits for
  // every in-flight request to drain and runs alone, so its session is
  // neither superseded mid-flight nor polluted by concurrent requests'
  // spans. Untraced requests share the fence and run concurrently.
  const bool traced = !options.tracePath.empty();
  std::shared_lock<std::shared_mutex> shared(traceFence_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(traceFence_, std::defer_lock);
  if (traced)
    exclusive.lock();
  else
    shared.lock();

  if (traced) ctx.traceSession().begin(options.traceLevel);
  // The chip and template must stay put while this request routes; eco()
  // takes the same lock exclusively to swap them.
  std::shared_lock<std::shared_mutex> state(ctx.stateMutex_);
  // One request at a time drives the persistent escape session; losers of
  // the try-lock route through a request-local session (byte-identical,
  // just without the cross-request warm start). Requests arriving through
  // the submit() queue are serialized per design, so they always win.
  std::unique_lock<std::mutex> sessionLock(ctx.escapeMutex_, std::try_to_lock);
  try {
    core::RouteResources resources;
    resources.pool = &pool_;
    resources.obstacleTemplate = &ctx.obstacleTemplate_;
    if (sessionLock.owns_lock()) resources.escapeSession = &ctx.escapeSession_;
    const core::PacorResult result =
        core::routeChip(ctx.chip_, options.config, resources);
    fillRouteResponse(resp, result, options);
    std::lock_guard<std::mutex> cache(ctx.cacheMutex_);
    ctx.lastResult_ = result;
    ctx.lastConfig_ = options.config;
    ctx.hasLast_ = true;
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }

  if (traced) {
    const std::vector<trace::Event> events = ctx.traceSession().end();
    // Belt and braces: the fence makes supersession impossible here, but a
    // discarded trace must be reported, never returned as "empty".
    if (ctx.traceSession().superseded()) {
      resp.traceDiscarded = true;
      resp.ok = false;
      if (!resp.error.empty()) resp.error += "; ";
      resp.error += "trace discarded: session superseded by a concurrent request";
    } else {
      resp.traceSpans = static_cast<int>(events.size());
      if (!trace::writeChromeTrace(options.tracePath, events)) {
        resp.ok = false;
        if (!resp.error.empty()) resp.error += "; ";
        resp.error += "cannot write trace file " + options.tracePath;
      }
    }
  }
  return resp;
}

Response Server::route(const std::string& key, const chip::Chip& chip,
                       const RequestOptions& options) {
  // The shared_ptr is the pin: the context cannot be evicted-and-freed
  // while this request routes against it.
  const std::shared_ptr<DesignContext> ctx = context(key, [&] { return chip; });
  return route(*ctx, options);
}

Response Server::eco(DesignContext& ctx, const chip::ChipDelta& delta,
                     const RequestOptions& options) {
  Response resp;

  // Same trace-ownership discipline as route(); then the context's state
  // lock is taken exclusively -- an eco edit replaces the chip and the
  // obstacle template, so no request may route the design concurrently.
  const bool traced = !options.tracePath.empty();
  std::shared_lock<std::shared_mutex> shared(traceFence_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(traceFence_, std::defer_lock);
  if (traced)
    exclusive.lock();
  else
    shared.lock();

  if (traced) ctx.traceSession().begin(options.traceLevel);
  std::unique_lock<std::shared_mutex> state(ctx.stateMutex_);
  // Uncontended given the exclusive state lock, but keeps the invariant
  // that whoever routes through the persistent session holds this mutex.
  std::unique_lock<std::mutex> sessionLock(ctx.escapeMutex_);
  resp.design = ctx.chip_.name;
  try {
    const chip::Chip base = ctx.chip_;
    core::RouteResources resources;
    resources.pool = &pool_;
    resources.escapeSession = &ctx.escapeSession_;

    // The ECO base: the cached previous result when its config routes
    // byte-identically under this request's config, else a fresh route of
    // the pre-edit chip (paid once; subsequent eco requests chain).
    bool havePrev = false;
    core::PacorResult prev;
    {
      std::lock_guard<std::mutex> cache(ctx.cacheMutex_);
      if (ctx.hasLast_ && configsEquivalent(ctx.lastConfig_, options.config)) {
        prev = ctx.lastResult_;
        havePrev = true;
      }
    }
    if (!havePrev) {
      core::RouteResources baseResources = resources;
      baseResources.obstacleTemplate = &ctx.obstacleTemplate_;
      prev = core::routeChip(base, options.config, baseResources);
    }

    core::EcoInfo info;
    const core::PacorResult result =
        core::rerouteChip(base, prev, delta, options.config, resources, &info);

    // A watchdog-abandoned eco must not commit: the caller was already
    // answered `err ... deadline` and may retry the same delta, so
    // advancing chip_/obstacleTemplate_/lastResult_ here would make that
    // retry double-apply the edit. The discarded response does not matter;
    // the state update does. Checked under stateMutex_ (held exclusively
    // since before the base route), immediately before the commit.
    if (cancelled(options.cancel))
      throw LoadError("deadline",
                      "eco cancelled after its deadline expired; "
                      "delta not committed");

    // Commit the edited design: later requests (route or eco) see it.
    ctx.chip_ = chip::apply(base, delta);
    ctx.obstacleTemplate_ = core::makeRoutingObstacleTemplate(ctx.chip_);
    {
      std::lock_guard<std::mutex> cache(ctx.cacheMutex_);
      ctx.lastResult_ = result;
      ctx.lastConfig_ = options.config;
      ctx.hasLast_ = true;
    }
    resp.design = ctx.chip_.name;
    fillRouteResponse(resp, result, options);
    resp.ecoMode = info.mode == core::EcoInfo::Mode::kIdentity ? "identity"
                   : info.mode == core::EcoInfo::Mode::kIncremental
                       ? "incremental"
                       : "full";
    resp.ecoDirty = info.dirtyClusters;
    resp.ecoFrozen = info.frozenClusters;
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }

  if (traced) {
    const std::vector<trace::Event> events = ctx.traceSession().end();
    if (ctx.traceSession().superseded()) {
      resp.traceDiscarded = true;
      resp.ok = false;
      if (!resp.error.empty()) resp.error += "; ";
      resp.error += "trace discarded: session superseded by a concurrent request";
    } else {
      resp.traceSpans = static_cast<int>(events.size());
      if (!trace::writeChromeTrace(options.tracePath, events)) {
        resp.ok = false;
        if (!resp.error.empty()) resp.error += "; ";
        resp.error += "cannot write trace file " + options.tracePath;
      }
    }
  }
  return resp;
}

// --- submit() queue tier -------------------------------------------------

namespace {

/// The structured answer for a request whose deadline passed: renders as
/// `err <design> field=deadline deadline expired after <D> ms (<phase>)`.
Response deadlineResponse(const std::string& design, std::int64_t deadlineMs,
                          const char* phase) {
  Response resp;
  resp.design = design;
  resp.ok = false;
  resp.deadlineExpired = true;
  resp.errorField = "deadline";
  resp.error = "deadline expired after " + std::to_string(deadlineMs) +
               " ms (" + phase + ")";
  return resp;
}

}  // namespace

Response Server::execute(const Request& req,
                         const std::shared_ptr<std::atomic<bool>>& cancel) {
  Response resp;
  resp.design = req.design;
  try {
    LoadOptions loadOptions;
    loadOptions.cancel = cancel;
    // admission_ is written once in startDispatch, before any dispatcher
    // (the only execute() caller) exists.
    loadOptions.allowFifoDesigns = admission_.allowFifoDesigns;
    const std::shared_ptr<DesignContext> pinned = context(
        req.design, [&req, &loadOptions] { return loadDesign(req.design, loadOptions); });
    DesignContext& ctx = *pinned;
    // The watchdog already answered the caller: skip the (discarded)
    // routing work and free the dispatcher for live requests.
    if (cancelled(cancel)) {
      resp.ok = false;
      resp.error = "request cancelled after its deadline expired";
      return resp;
    }
    if (req.verb == Verb::kGen) {
      // Warm-up only: the context (chip + obstacle template) now exists,
      // so the first routing request of this design skips the load.
      std::shared_lock<std::shared_mutex> state(ctx.stateMutex_);
      resp.ok = true;
      resp.genValves = static_cast<int>(ctx.chip().valves.size());
      resp.genPins = static_cast<int>(ctx.chip().pins.size());
      resp.genObstacles = static_cast<int>(ctx.chip().obstacles.size());
      return resp;
    }
    RequestOptions options = optionsFor(req);
    options.cancel = cancel;  // guards side-file writes and the eco commit
    resp = req.verb == Verb::kEco
               ? eco(ctx, chip::readDeltaFile(req.deltaPath), options)
               : route(ctx, options);
    resp.design = req.design;  // report the request token, not chip.name
  } catch (const LoadError& e) {
    // Structured: the client can tell a bad design token from a routing
    // failure. Renders as `err <design> field=<field> <reason>`.
    resp.ok = false;
    resp.errorField = e.field;
    resp.error = e.reason;
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }
  return resp;
}

void Server::startDispatch(const AdmissionOptions& admission) {
  std::lock_guard<std::mutex> lock(queueMutex_);
  if (dispatchStarted_) return;
  dispatchStarted_ = true;
  admission_ = admission;
  admission_.maxInflight = std::max(1, admission_.maxInflight);
  maxDesigns_.store(admission_.maxDesigns, std::memory_order_relaxed);
  dispatchers_.reserve(static_cast<std::size_t>(admission_.maxInflight) + 1);
  for (int i = 0; i < admission_.maxInflight; ++i)
    dispatchers_.emplace_back([this] { dispatchLoop(); });
  watchdog_ = std::thread([this] { watchdogLoop(); });
}

std::future<Response> Server::submit(Request req) {
  startDispatch(AdmissionOptions{});  // no-op when already configured
  std::unique_lock<std::mutex> lock(queueMutex_);
  if (draining_ ||
      (admission_.maxQueue != 0 && waiting_ >= admission_.maxQueue)) {
    Response busy;
    busy.design = req.design;
    busy.busy = true;
    busy.error = draining_
                     ? "draining: server is shutting down"
                     : "queue full (" + std::to_string(waiting_) +
                           " waiting, max " +
                           std::to_string(admission_.maxQueue) + ")";
    lock.unlock();
    std::promise<Response> ready;
    std::future<Response> fut = ready.get_future();
    ready.set_value(std::move(busy));
    return fut;
  }
  const std::string key = req.design;
  Pending pending{std::move(req), {}};
  // The deadline clock starts at admission: deadline_ms= on the request,
  // else the server-wide default. gen requests carry no options by
  // grammar, so they inherit the default like any other.
  const std::int64_t effectiveMs = pending.req.deadlineMs > 0
                                       ? pending.req.deadlineMs
                                       : admission_.defaultDeadlineMs;
  if (effectiveMs > 0) {
    pending.hasDeadline = true;
    pending.deadlineMs = effectiveMs;
    pending.deadline = Clock::now() + std::chrono::milliseconds(effectiveMs);
  }
  DesignQueue& dq = queues_[key];
  // Not yet listed runnable and no dispatcher on it: enqueue the design.
  const bool listDesign = dq.fifo.empty() && !dq.running;
  const bool armWatchdog = pending.hasDeadline;
  dq.fifo.push_back(std::move(pending));
  std::future<Response> fut = dq.fifo.back().promise.get_future();
  ++waiting_;
  if (listDesign) runnable_.push_back(key);
  workCv_.notify_one();
  if (armWatchdog) watchdogCv_.notify_one();  // re-aim at the new deadline
  return fut;
}

void Server::dispatchLoop() {
  std::unique_lock<std::mutex> lock(queueMutex_);
  for (;;) {
    workCv_.wait(lock, [this] { return stopping_ || !runnable_.empty(); });
    if (runnable_.empty()) {
      if (stopping_) return;
      continue;
    }
    const std::string key = std::move(runnable_.front());
    runnable_.pop_front();
    DesignQueue& dq = queues_[key];  // recreates the node if it was reaped
    // A dispatcher is already on this design (stale or duplicate listing):
    // skip WITHOUT dispatching, so same-design requests stay serialized.
    // No work is lost -- whoever clears `running` (the executing
    // dispatcher finishing, or the watchdog recycling its slot) re-lists
    // the key when the fifo still has entries.
    if (dq.running) continue;
    if (dq.fifo.empty()) {  // watchdog swept the queued request(s)
      queues_.erase(key);   // empty + idle: drop the node, see watchdogLoop
      continue;
    }
    Pending pending = std::move(dq.fifo.front());
    dq.fifo.pop_front();
    --waiting_;
    // Enforcement point 1: already past its deadline when popped --
    // answer without dispatching (no load, no route, no context touch).
    if (pending.hasDeadline && Clock::now() >= pending.deadline) {
      ++deadlineExpired_;
      if (!dq.fifo.empty()) {
        runnable_.push_back(key);
        workCv_.notify_one();
      } else {
        queues_.erase(key);
      }
      if (waiting_ == 0 && executing_ == 0) idleCv_.notify_all();
      lock.unlock();
      pending.promise.set_value(
          deadlineResponse(pending.req.design, pending.deadlineMs, "queued"));
      lock.lock();
      continue;
    }
    dq.running = true;
    ++executing_;
    // Enforcement point 2/3 plumbing: the in-flight record the watchdog
    // sweeps, carrying the cancel flag the load path polls.
    auto inflight = std::make_shared<Inflight>();
    inflight->design = key;
    inflight->hasDeadline = pending.hasDeadline;
    inflight->deadlineMs = pending.deadlineMs;
    inflight->deadline = pending.deadline;
    inflight->promise = std::move(pending.promise);
    inflight_.push_back(inflight);
    if (inflight->hasDeadline) watchdogCv_.notify_one();
    lock.unlock();

    Response resp = execute(pending.req, inflight->cancel);

    lock.lock();
    if (inflight->abandoned) {
      // The watchdog expired this request mid-execution: it already
      // answered the caller, released the design slot, and spawned a
      // replacement dispatcher. This thread's slot is gone -- record the
      // id so the watchdog can join-and-drop the handle (dispatchers_
      // must not grow by one per recycle forever), discard the result,
      // and exit. (Bounded: every blocking step in execute() polls the
      // cancel flag, so an abandoned thread always gets here.)
      finishedDispatchers_.push_back(std::this_thread::get_id());
      watchdogCv_.notify_one();  // reap this handle promptly
      return;
    }
    inflight_.remove(inflight);
    --executing_;
    dq.running = false;
    // FIFO across designs too: a design with more work re-queues at the
    // back, so one hot design cannot starve the others. An emptied design
    // drops its queue node, keeping queues_ bounded by live designs
    // instead of every token ever submitted.
    if (!dq.fifo.empty()) {
      runnable_.push_back(key);
      workCv_.notify_one();
    } else {
      queues_.erase(key);
    }
    if (waiting_ == 0 && executing_ == 0) idleCv_.notify_all();
    lock.unlock();
    inflight->promise.set_value(std::move(resp));
    lock.lock();
  }
}

/// Joins dispatcher threads that exited after a watchdog recycle and drops
/// their handles from dispatchers_. Each id in finishedDispatchers_ was
/// recorded by the exiting thread itself under queueMutex_ immediately
/// before returning, so by the time the watchdog (which also holds
/// queueMutex_) sees an id, that thread has released the mutex and is in
/// its exit epilogue -- the join is near-instant and cannot deadlock.
/// Caller holds queueMutex_.
void Server::reapDispatchersLocked() {
  for (const std::thread::id id : finishedDispatchers_) {
    for (auto it = dispatchers_.begin(); it != dispatchers_.end(); ++it) {
      if (it->get_id() == id) {
        it->join();
        dispatchers_.erase(it);
        break;
      }
    }
  }
  finishedDispatchers_.clear();
}

void Server::watchdogLoop() {
  std::unique_lock<std::mutex> lock(queueMutex_);
  for (;;) {
    if (stopping_) return;
    // Sleep until the earliest live deadline (queued or executing), or
    // until submit()/dispatchLoop() arms a new one.
    bool haveDeadline = false;
    Clock::time_point next{};
    const auto consider = [&](bool has, Clock::time_point tp) {
      if (!has) return;
      if (!haveDeadline || tp < next) next = tp;
      haveDeadline = true;
    };
    for (const auto& [key, dq] : queues_)
      for (const Pending& p : dq.fifo) consider(p.hasDeadline, p.deadline);
    for (const auto& inf : inflight_) consider(inf->hasDeadline, inf->deadline);
    if (haveDeadline)
      watchdogCv_.wait_until(lock, next);
    else
      watchdogCv_.wait(lock);
    if (stopping_) return;

    // Join-and-drop dispatcher handles decommissioned by earlier recycles
    // (their threads have exited or are about to), so a long-lived server
    // does not grow dispatchers_ by one thread per recycle forever.
    reapDispatchersLocked();

    const Clock::time_point now = Clock::now();
    std::vector<std::promise<Response>> promises;
    std::vector<Response> answers;

    // Sweep the waiting queues: an expired request queued behind a parked
    // (or merely busy) design is answered here -- it would otherwise wait
    // forever on a dispatcher that never frees up.
    for (auto qit = queues_.begin(); qit != queues_.end();) {
      DesignQueue& dq = qit->second;
      for (auto it = dq.fifo.begin(); it != dq.fifo.end();) {
        if (it->hasDeadline && now >= it->deadline) {
          ++deadlineExpired_;
          --waiting_;
          answers.push_back(
              deadlineResponse(it->req.design, it->deadlineMs, "queued"));
          promises.push_back(std::move(it->promise));
          it = dq.fifo.erase(it);
        } else {
          ++it;
        }
      }
      // A sweep that empties an idle design's fifo must also retract its
      // runnable_ listing: left behind, a later submit() would see
      // `fifo.empty() && !running` and list the key a SECOND time, and two
      // dispatchers could then execute the same design concurrently.
      // Dropping the empty node keeps queues_ (and this scan) bounded by
      // live designs rather than every token ever submitted.
      if (dq.fifo.empty() && !dq.running) {
        runnable_.erase(
            std::remove(runnable_.begin(), runnable_.end(), qit->first),
            runnable_.end());
        qit = queues_.erase(qit);
      } else {
        ++qit;
      }
    }

    // Sweep the in-flight set: answer the caller, cancel the execution,
    // and recycle the dispatcher slot -- the stuck thread is decommissioned
    // (it discards its result and exits when its blocking step notices the
    // cancel flag), a replacement thread keeps concurrency at maxInflight,
    // and the design's FIFO resumes draining immediately.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      Inflight& inf = **it;
      if (inf.hasDeadline && now >= inf.deadline) {
        inf.abandoned = true;
        inf.cancel->store(true, std::memory_order_relaxed);
        ++deadlineExpired_;
        ++dispatcherRecycles_;
        --executing_;
        DesignQueue& dq = queues_[inf.design];
        dq.running = false;
        if (!dq.fifo.empty()) {
          runnable_.push_back(inf.design);
          workCv_.notify_one();
        } else {
          queues_.erase(inf.design);
        }
        dispatchers_.emplace_back([this] { dispatchLoop(); });
        answers.push_back(
            deadlineResponse(inf.design, inf.deadlineMs, "executing"));
        promises.push_back(std::move(inf.promise));
        it = inflight_.erase(it);
      } else {
        ++it;
      }
    }

    if (waiting_ == 0 && executing_ == 0) idleCv_.notify_all();
    if (promises.empty()) continue;
    lock.unlock();
    for (std::size_t i = 0; i < promises.size(); ++i)
      promises[i].set_value(std::move(answers[i]));
    lock.lock();
  }
}

void Server::beginDrain() {
  std::lock_guard<std::mutex> lock(queueMutex_);
  draining_ = true;
}

void Server::drainAndStop() {
  beginDrain();
  std::vector<std::thread> workers;
  std::thread watchdog;
  {
    std::unique_lock<std::mutex> lock(queueMutex_);
    idleCv_.wait(lock, [this] { return waiting_ == 0 && executing_ == 0; });
    stopping_ = true;
    workCv_.notify_all();
    watchdogCv_.notify_all();
    workers.swap(dispatchers_);
    watchdog.swap(watchdog_);
  }
  // Joins are bounded even for decommissioned threads: their blocking
  // steps poll the cancel flag the watchdog set when it abandoned them.
  for (std::thread& t : workers) t.join();
  if (watchdog.joinable()) watchdog.join();
}

std::size_t Server::queuedRequests() const {
  std::lock_guard<std::mutex> lock(queueMutex_);
  return waiting_;
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(queueMutex_);
  return draining_;
}

// --- batch adapter -------------------------------------------------------

int runBatch(std::istream& manifest, std::ostream& out, const BatchOptions& options) {
  // One slot per manifest request, in manifest order: either an already
  // rendered parse-error response or the future of a submitted request.
  struct Slot {
    std::optional<std::future<Response>> fut;
    Response immediate;
  };

  Server server(options.jobs);
  AdmissionOptions admission;
  admission.maxInflight = std::max(1, options.concurrency);
  admission.maxQueue = 0;
  admission.defaultDeadlineMs = options.defaultDeadlineMs;
  admission.maxDesigns = options.maxDesigns;
  admission.allowFifoDesigns = options.allowFifoDesigns;
  server.startDispatch(admission);

  std::vector<Slot> slots;
  std::string line;
  int lineNumber = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::getline(manifest, line)) {
    ++lineNumber;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    ParseError error;
    Slot slot;
    if (std::optional<Request> req = parseRequestLine(line, &error)) {
      slot.fut = server.submit(std::move(*req));
    } else {
      slot.immediate.design = error.design.empty() ? "-" : error.design;
      slot.immediate.ok = false;
      slot.immediate.error =
          "line " + std::to_string(lineNumber) + ": " + error.render();
    }
    slots.push_back(std::move(slot));
  }

  // Futures resolve out of order (per-design FIFO, cross-design parallel);
  // responses still print in request order, stdout byte-stable for a
  // given manifest.
  int failed = 0;
  std::vector<Response> responses;
  responses.reserve(slots.size());
  for (Slot& slot : slots)
    responses.push_back(slot.fut ? slot.fut->get() : std::move(slot.immediate));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (const Response& resp : responses) {
    out << formatResponse(resp) << '\n';
    const bool genOk = resp.ok && resp.genValves >= 0;
    if (!resp.ok || (!genOk && !resp.complete)) ++failed;
  }
  std::fprintf(stderr,
               "pacor serve: %zu request(s), %zu design context(s), jobs=%u, "
               "concurrency=%d, %d failure(s), %.2fs\n",
               slots.size(), server.designCount(), server.threadCount(),
               std::max(1, options.concurrency), failed, seconds);
  return failed;
}

}  // namespace pacor::serve
