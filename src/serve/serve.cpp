#include "serve/serve.hpp"

#include <chrono>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "chip/generator.hpp"
#include "chip/io.hpp"
#include "pacor/eco.hpp"
#include "pacor/escape.hpp"
#include "pacor/solution_io.hpp"
#include "util/sha256.hpp"

namespace pacor::serve {

namespace {

unsigned poolSize(int jobs) {
  const int resolved = jobs == 0 ? static_cast<int>(util::hardwareJobs()) : jobs;
  return static_cast<unsigned>(std::max(1, resolved));
}

/// True when two configs produce byte-identical routed output, so a result
/// cached under one can serve as the ECO base under the other. Every
/// output-affecting knob is compared; jobs and incrementalEscape are
/// excluded by the pipeline's bit-identity contract.
bool configsEquivalent(const core::PacorConfig& a, const core::PacorConfig& b) {
  return a.candidates.count == b.candidates.count &&
         a.candidates.ringSearchRadius == b.candidates.ringSearchRadius &&
         a.lambda == b.lambda && a.useSelection == b.useSelection &&
         a.exactSelectionLimit == b.exactSelectionLimit &&
         a.negotiation.baseHistoryCost == b.negotiation.baseHistoryCost &&
         a.negotiation.alpha == b.negotiation.alpha &&
         a.negotiation.maxIterations == b.negotiation.maxIterations &&
         a.detourIterations == b.detourIterations &&
         a.useBoundedDetour == b.useBoundedDetour &&
         a.detourStage == b.detourStage &&
         a.maxEscapeRounds == b.maxEscapeRounds &&
         a.escapeMode == b.escapeMode && a.fastEscape == b.fastEscape &&
         a.matchingRetries == b.matchingRetries &&
         a.legalizeRadius == b.legalizeRadius;
}

/// Response fields + side files every successful routing request shares.
void fillRouteResponse(Response& resp, const core::PacorResult& result,
                       const RequestOptions& options) {
  resp.complete = result.complete;
  resp.solutionText = core::solutionToString(result);
  resp.solutionHash = util::sha256Hex(resp.solutionText);
  resp.clusterCount = result.clusters.size();
  resp.totalLength = result.totalChannelLength;
  resp.coldBuilds =
      static_cast<int>(result.metrics.getInt("escape.flow.cold_builds", -1));
  resp.ok = true;
  if (!options.solutionPath.empty())
    core::writeSolutionFile(options.solutionPath, result);
  if (!options.metricsPath.empty()) {
    std::ofstream os(options.metricsPath);
    os << "{\n  \"design\": \"" << result.design << "\",\n  \"metrics\": "
       << result.metrics.toJson(/*pretty=*/true) << "\n}\n";
    if (!os) {
      resp.ok = false;
      resp.error = "cannot write metrics file " + options.metricsPath;
    }
  }
}

}  // namespace

chip::Chip loadDesign(const std::string& token) {
  // FPVA spec tokens (fpva:NxM[:key=val...]) synthesize valve arrays on
  // demand; the spec string is the cache key, so repeat requests for the
  // same array hit the warm DesignContext.
  if (chip::isFpvaSpec(token))
    return chip::generateFpvaChip(chip::parseFpvaSpec(token));
  for (const auto& params : chip::table1Designs())
    if (params.name == token) return chip::generateChip(params);
  return chip::readChipFile(token);
}

DesignContext::DesignContext(chip::Chip chip)
    : chip_(std::move(chip)),
      obstacleTemplate_(core::makeRoutingObstacleTemplate(chip_)) {}

DesignContext::~DesignContext() = default;

Server::Server(int jobs) : pool_(poolSize(jobs)) {}

Server::~Server() { drainAndStop(); }

DesignContext& Server::context(const std::string& key,
                               const std::function<chip::Chip()>& load) {
  // Holding the map lock through `load` serializes first-touch loads of
  // the same design (cheap: a generate or one file read, paid once).
  std::lock_guard<std::mutex> lock(contextsMutex_);
  auto it = contexts_.find(key);
  if (it == contexts_.end())
    it = contexts_.emplace(key, std::make_unique<DesignContext>(load())).first;
  return *it->second;
}

std::size_t Server::designCount() const {
  std::lock_guard<std::mutex> lock(contextsMutex_);
  return contexts_.size();
}

Response Server::route(DesignContext& ctx, const RequestOptions& options) {
  Response resp;
  resp.design = ctx.chip().name;

  // Trace ownership is serialized explicitly: a traced request waits for
  // every in-flight request to drain and runs alone, so its session is
  // neither superseded mid-flight nor polluted by concurrent requests'
  // spans. Untraced requests share the fence and run concurrently.
  const bool traced = !options.tracePath.empty();
  std::shared_lock<std::shared_mutex> shared(traceFence_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(traceFence_, std::defer_lock);
  if (traced)
    exclusive.lock();
  else
    shared.lock();

  if (traced) ctx.traceSession().begin(options.traceLevel);
  // The chip and template must stay put while this request routes; eco()
  // takes the same lock exclusively to swap them.
  std::shared_lock<std::shared_mutex> state(ctx.stateMutex_);
  // One request at a time drives the persistent escape session; losers of
  // the try-lock route through a request-local session (byte-identical,
  // just without the cross-request warm start). Requests arriving through
  // the submit() queue are serialized per design, so they always win.
  std::unique_lock<std::mutex> sessionLock(ctx.escapeMutex_, std::try_to_lock);
  try {
    core::RouteResources resources;
    resources.pool = &pool_;
    resources.obstacleTemplate = &ctx.obstacleTemplate_;
    if (sessionLock.owns_lock()) resources.escapeSession = &ctx.escapeSession_;
    const core::PacorResult result =
        core::routeChip(ctx.chip_, options.config, resources);
    fillRouteResponse(resp, result, options);
    std::lock_guard<std::mutex> cache(ctx.cacheMutex_);
    ctx.lastResult_ = result;
    ctx.lastConfig_ = options.config;
    ctx.hasLast_ = true;
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }

  if (traced) {
    const std::vector<trace::Event> events = ctx.traceSession().end();
    // Belt and braces: the fence makes supersession impossible here, but a
    // discarded trace must be reported, never returned as "empty".
    if (ctx.traceSession().superseded()) {
      resp.traceDiscarded = true;
      resp.ok = false;
      if (!resp.error.empty()) resp.error += "; ";
      resp.error += "trace discarded: session superseded by a concurrent request";
    } else {
      resp.traceSpans = static_cast<int>(events.size());
      if (!trace::writeChromeTrace(options.tracePath, events)) {
        resp.ok = false;
        if (!resp.error.empty()) resp.error += "; ";
        resp.error += "cannot write trace file " + options.tracePath;
      }
    }
  }
  return resp;
}

Response Server::route(const std::string& key, const chip::Chip& chip,
                       const RequestOptions& options) {
  return route(context(key, [&] { return chip; }), options);
}

Response Server::eco(DesignContext& ctx, const chip::ChipDelta& delta,
                     const RequestOptions& options) {
  Response resp;

  // Same trace-ownership discipline as route(); then the context's state
  // lock is taken exclusively -- an eco edit replaces the chip and the
  // obstacle template, so no request may route the design concurrently.
  const bool traced = !options.tracePath.empty();
  std::shared_lock<std::shared_mutex> shared(traceFence_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(traceFence_, std::defer_lock);
  if (traced)
    exclusive.lock();
  else
    shared.lock();

  if (traced) ctx.traceSession().begin(options.traceLevel);
  std::unique_lock<std::shared_mutex> state(ctx.stateMutex_);
  // Uncontended given the exclusive state lock, but keeps the invariant
  // that whoever routes through the persistent session holds this mutex.
  std::unique_lock<std::mutex> sessionLock(ctx.escapeMutex_);
  resp.design = ctx.chip_.name;
  try {
    const chip::Chip base = ctx.chip_;
    core::RouteResources resources;
    resources.pool = &pool_;
    resources.escapeSession = &ctx.escapeSession_;

    // The ECO base: the cached previous result when its config routes
    // byte-identically under this request's config, else a fresh route of
    // the pre-edit chip (paid once; subsequent eco requests chain).
    bool havePrev = false;
    core::PacorResult prev;
    {
      std::lock_guard<std::mutex> cache(ctx.cacheMutex_);
      if (ctx.hasLast_ && configsEquivalent(ctx.lastConfig_, options.config)) {
        prev = ctx.lastResult_;
        havePrev = true;
      }
    }
    if (!havePrev) {
      core::RouteResources baseResources = resources;
      baseResources.obstacleTemplate = &ctx.obstacleTemplate_;
      prev = core::routeChip(base, options.config, baseResources);
    }

    core::EcoInfo info;
    const core::PacorResult result =
        core::rerouteChip(base, prev, delta, options.config, resources, &info);

    // Commit the edited design: later requests (route or eco) see it.
    ctx.chip_ = chip::apply(base, delta);
    ctx.obstacleTemplate_ = core::makeRoutingObstacleTemplate(ctx.chip_);
    {
      std::lock_guard<std::mutex> cache(ctx.cacheMutex_);
      ctx.lastResult_ = result;
      ctx.lastConfig_ = options.config;
      ctx.hasLast_ = true;
    }
    resp.design = ctx.chip_.name;
    fillRouteResponse(resp, result, options);
    resp.ecoMode = info.mode == core::EcoInfo::Mode::kIdentity ? "identity"
                   : info.mode == core::EcoInfo::Mode::kIncremental
                       ? "incremental"
                       : "full";
    resp.ecoDirty = info.dirtyClusters;
    resp.ecoFrozen = info.frozenClusters;
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }

  if (traced) {
    const std::vector<trace::Event> events = ctx.traceSession().end();
    if (ctx.traceSession().superseded()) {
      resp.traceDiscarded = true;
      resp.ok = false;
      if (!resp.error.empty()) resp.error += "; ";
      resp.error += "trace discarded: session superseded by a concurrent request";
    } else {
      resp.traceSpans = static_cast<int>(events.size());
      if (!trace::writeChromeTrace(options.tracePath, events)) {
        resp.ok = false;
        if (!resp.error.empty()) resp.error += "; ";
        resp.error += "cannot write trace file " + options.tracePath;
      }
    }
  }
  return resp;
}

// --- submit() queue tier -------------------------------------------------

Response Server::execute(const Request& req) {
  Response resp;
  resp.design = req.design;
  try {
    DesignContext& ctx =
        context(req.design, [&req] { return loadDesign(req.design); });
    if (req.verb == Verb::kGen) {
      // Warm-up only: the context (chip + obstacle template) now exists,
      // so the first routing request of this design skips the load.
      std::shared_lock<std::shared_mutex> state(ctx.stateMutex_);
      resp.ok = true;
      resp.genValves = static_cast<int>(ctx.chip().valves.size());
      resp.genPins = static_cast<int>(ctx.chip().pins.size());
      resp.genObstacles = static_cast<int>(ctx.chip().obstacles.size());
      return resp;
    }
    const RequestOptions options = optionsFor(req);
    resp = req.verb == Verb::kEco
               ? eco(ctx, chip::readDeltaFile(req.deltaPath), options)
               : route(ctx, options);
    resp.design = req.design;  // report the request token, not chip.name
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }
  return resp;
}

void Server::startDispatch(const AdmissionOptions& admission) {
  std::lock_guard<std::mutex> lock(queueMutex_);
  if (dispatchStarted_) return;
  dispatchStarted_ = true;
  admission_ = admission;
  admission_.maxInflight = std::max(1, admission_.maxInflight);
  dispatchers_.reserve(static_cast<std::size_t>(admission_.maxInflight));
  for (int i = 0; i < admission_.maxInflight; ++i)
    dispatchers_.emplace_back([this] { dispatchLoop(); });
}

std::future<Response> Server::submit(Request req) {
  startDispatch(AdmissionOptions{});  // no-op when already configured
  std::unique_lock<std::mutex> lock(queueMutex_);
  if (draining_ ||
      (admission_.maxQueue != 0 && waiting_ >= admission_.maxQueue)) {
    Response busy;
    busy.design = req.design;
    busy.busy = true;
    busy.error = draining_
                     ? "draining: server is shutting down"
                     : "queue full (" + std::to_string(waiting_) +
                           " waiting, max " +
                           std::to_string(admission_.maxQueue) + ")";
    lock.unlock();
    std::promise<Response> ready;
    std::future<Response> fut = ready.get_future();
    ready.set_value(std::move(busy));
    return fut;
  }
  const std::string key = req.design;
  DesignQueue& dq = queues_[key];
  // Not yet listed runnable and no dispatcher on it: enqueue the design.
  const bool listDesign = dq.fifo.empty() && !dq.running;
  dq.fifo.push_back(Pending{std::move(req), {}});
  std::future<Response> fut = dq.fifo.back().promise.get_future();
  ++waiting_;
  if (listDesign) runnable_.push_back(key);
  workCv_.notify_one();
  return fut;
}

void Server::dispatchLoop() {
  std::unique_lock<std::mutex> lock(queueMutex_);
  for (;;) {
    workCv_.wait(lock, [this] { return stopping_ || !runnable_.empty(); });
    if (runnable_.empty()) {
      if (stopping_) return;
      continue;
    }
    const std::string key = std::move(runnable_.front());
    runnable_.pop_front();
    DesignQueue& dq = queues_[key];  // map nodes are stable
    dq.running = true;
    Pending pending = std::move(dq.fifo.front());
    dq.fifo.pop_front();
    --waiting_;
    ++executing_;
    lock.unlock();

    pending.promise.set_value(execute(pending.req));

    lock.lock();
    --executing_;
    dq.running = false;
    // FIFO across designs too: a design with more work re-queues at the
    // back, so one hot design cannot starve the others.
    if (!dq.fifo.empty()) {
      runnable_.push_back(key);
      workCv_.notify_one();
    }
    if (waiting_ == 0 && executing_ == 0) idleCv_.notify_all();
  }
}

void Server::beginDrain() {
  std::lock_guard<std::mutex> lock(queueMutex_);
  draining_ = true;
}

void Server::drainAndStop() {
  beginDrain();
  std::vector<std::thread> workers;
  {
    std::unique_lock<std::mutex> lock(queueMutex_);
    idleCv_.wait(lock, [this] { return waiting_ == 0 && executing_ == 0; });
    stopping_ = true;
    workCv_.notify_all();
    workers.swap(dispatchers_);
  }
  for (std::thread& t : workers) t.join();
}

std::size_t Server::queuedRequests() const {
  std::lock_guard<std::mutex> lock(queueMutex_);
  return waiting_;
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(queueMutex_);
  return draining_;
}

// --- batch adapter -------------------------------------------------------

int runBatch(std::istream& manifest, std::ostream& out, const BatchOptions& options) {
  // One slot per manifest request, in manifest order: either an already
  // rendered parse-error response or the future of a submitted request.
  struct Slot {
    std::optional<std::future<Response>> fut;
    Response immediate;
  };

  Server server(options.jobs);
  server.startDispatch(
      {std::max(1, options.concurrency), /*maxQueue=*/0});

  std::vector<Slot> slots;
  std::string line;
  int lineNumber = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::getline(manifest, line)) {
    ++lineNumber;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    ParseError error;
    Slot slot;
    if (std::optional<Request> req = parseRequestLine(line, &error)) {
      slot.fut = server.submit(std::move(*req));
    } else {
      slot.immediate.design = error.design.empty() ? "-" : error.design;
      slot.immediate.ok = false;
      slot.immediate.error =
          "line " + std::to_string(lineNumber) + ": " + error.render();
    }
    slots.push_back(std::move(slot));
  }

  // Futures resolve out of order (per-design FIFO, cross-design parallel);
  // responses still print in request order, stdout byte-stable for a
  // given manifest.
  int failed = 0;
  std::vector<Response> responses;
  responses.reserve(slots.size());
  for (Slot& slot : slots)
    responses.push_back(slot.fut ? slot.fut->get() : std::move(slot.immediate));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (const Response& resp : responses) {
    out << formatResponse(resp) << '\n';
    const bool genOk = resp.ok && resp.genValves >= 0;
    if (!resp.ok || (!genOk && !resp.complete)) ++failed;
  }
  std::fprintf(stderr,
               "pacor serve: %zu request(s), %zu design context(s), jobs=%u, "
               "concurrency=%d, %d failure(s), %.2fs\n",
               slots.size(), server.designCount(), server.threadCount(),
               std::max(1, options.concurrency), failed, seconds);
  return failed;
}

}  // namespace pacor::serve
