#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve.hpp"

namespace pacor::serve::net {

/// Frame layer of the socket protocol: every request and every response is
/// one length-framed text payload -- a 4-byte big-endian unsigned length
/// followed by that many bytes, the request/response line of protocol.hpp
/// without a trailing newline. Clients may pipeline: frames on one
/// connection are answered in order, one response frame per request frame.
/// Returns false on EOF/error (readFrame: clean EOF before any byte is a
/// false with frame.clear()).
bool writeFrame(int fd, const std::string& payload);
bool readFrame(int fd, std::string& payload, std::size_t maxBytes);

struct NetOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; NetServer::port() tells which
  int jobs = 1;            ///< shared routing pool size (0 = all cores)
  AdmissionOptions admission;  ///< queue bound + dispatcher count
  std::size_t maxFrameBytes = 1 << 20;  ///< oversized frames drop the conn
};

/// TCP front end over Server::submit. One accept thread; per connection a
/// reader thread (frame -> parse -> submit; malformed frames get an
/// immediate structured `err` response without touching the queue) and a
/// writer thread that resolves the connection's futures strictly in
/// request order, so pipelined clients can match responses positionally.
///
/// Shutdown protocol (beginDrain, then wait):
///   1. the listener closes -- late connects are refused by the OS,
///   2. the queue tier drains -- frames still arriving on open
///      connections get immediate `busy draining` responses,
///   3. every admitted request finishes and its response frame is
///      flushed before the connection closes.
class NetServer {
 public:
  /// Binds and listens; throws std::runtime_error when the address is
  /// unavailable. Serving starts immediately (accept thread).
  explicit NetServer(const NetOptions& options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  Server& server() noexcept { return server_; }

  /// Stops accepting connections and admitting requests (non-blocking).
  void beginDrain();
  /// Waits until every admitted request resolved and every response frame
  /// flushed, then joins all threads. Implies beginDrain().
  void wait();

 private:
  struct Connection;
  void acceptLoop();
  void readerLoop(Connection& conn);
  void writerLoop(Connection& conn);

  NetOptions options_;
  Server server_;
  int listenFd_ = -1;
  int wakePipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> draining_{false};
  std::thread acceptThread_;
  std::mutex connectionsMutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

/// Runs a NetServer until SIGTERM/SIGINT, then drains gracefully (finish
/// in-flight, flush responses, refuse late connects) and returns 0.
/// Returns 1 when the listener cannot bind. This is `pacor serve
/// --listen=HOST:PORT`.
int serveForever(const NetOptions& options);

/// Minimal blocking client for tests and the replay driver: one
/// connection, framed request lines in, framed response lines out.
class Client {
 public:
  /// Throws std::runtime_error when the connection is refused.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One round trip: send a request line, wait for its response line.
  /// Throws on a dropped connection.
  std::string call(const std::string& requestLine);

  /// Split halves of call() for pipelining several requests at once.
  bool send(const std::string& requestLine);
  bool recv(std::string& responseLine);

 private:
  int fd_ = -1;
};

}  // namespace pacor::serve::net
