#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "chip/chip.hpp"
#include "chip/delta.hpp"
#include "grid/obstacle_map.hpp"
#include "pacor/config.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/result.hpp"
#include "serve/protocol.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace pacor::serve {

/// A structured design-load failure (ParseError-style): `field` names the
/// offending request field (always "design" today), `reason` says why.
/// The serve tiers render it as `err <design> field=<field> <reason>`
/// instead of a bare `error` response -- the client can tell a malformed
/// design token from a routing failure.
class LoadError : public std::runtime_error {
 public:
  LoadError(std::string field, std::string reason)
      : std::runtime_error(reason), field(std::move(field)),
        reason(std::move(reason)) {}
  std::string field;
  std::string reason;
};

/// Knobs of the cancellable design-load path.
struct LoadOptions {
  /// Per-request cancel flag: checked between read chunks (and while
  /// parked on a FIFO), so a request whose deadline expired stops
  /// occupying its dispatcher in bounded time. Null = never cancelled.
  std::shared_ptr<std::atomic<bool>> cancel;

  /// TEST-ONLY escape hatch: allow a named pipe (FIFO) as a .chip path.
  /// The read parks until a writer supplies the bytes -- exactly what the
  /// drain/deadline tests need to hold a dispatcher at a known point.
  /// Off by default: loadDesign rejects every non-regular file with a
  /// structured LoadError instead of blocking or reading garbage.
  bool allowFifoDesigns = false;
};

/// Resolves a request's design token into a chip: a Table-1 name (Chip1,
/// Chip2, S1..S5) generates the paper instance, an FPVA spec
/// (fpva:NxM[:key=val...]) synthesizes a valve array, anything else is
/// read as a .chip file path. The token doubles as the server's context
/// (and queue-affinity) key.
///
/// File paths are stat-gated: only regular files are read (in chunks,
/// checking `options.cancel` between chunks); FIFOs, directories, and
/// device nodes throw a structured LoadError -- unless
/// `options.allowFifoDesigns` admits FIFOs through the cancellable
/// parked-read path. Unknown/unreadable designs throw.
chip::Chip loadDesign(const std::string& token, const LoadOptions& options);
chip::Chip loadDesign(const std::string& token);

/// Per-design state the server keeps alive across requests: the parsed
/// chip (mutated only by ECO edits), the routing obstacle template (static
/// obstacles + blocked boundary cells, derived once instead of per
/// request), the design's persistent EscapeFlowSession (warm-rebound into
/// each request that wins the try-lock; see Server::route), the previous
/// routed result for ECO chains, and this design's trace session handle.
/// Thread-local RouterWorkspaces live on the shared pool's workers, so
/// they too survive across requests without being owned here.
class DesignContext {
 public:
  explicit DesignContext(chip::Chip chip);
  ~DesignContext();

  const chip::Chip& chip() const noexcept { return chip_; }
  const grid::ObstacleMap& obstacleTemplate() const noexcept {
    return obstacleTemplate_;
  }
  trace::Session& traceSession() noexcept { return traceSession_; }

 private:
  friend class Server;

  chip::Chip chip_;
  grid::ObstacleMap obstacleTemplate_;
  trace::Session traceSession_;

  /// ECO fence: route() holds it shared (the chip and template must stay
  /// put while a request routes), eco() exclusively (it swaps both for the
  /// edited design). Acquired after the server's trace fence, always.
  mutable std::shared_mutex stateMutex_;

  /// Persistent escape-flow session of this design. One request at a time
  /// may drive it: route() try-locks escapeMutex_ and the winner passes
  /// the slot into routeChip (which warm-rebinds or lazily builds it);
  /// losers route with a request-local session, byte-identical either
  /// way. The submit() queue tier serializes same-design requests, so
  /// queued traffic always wins this lock and always lands warm.
  std::mutex escapeMutex_;
  std::unique_ptr<core::EscapeFlowSession> escapeSession_;

  /// Most recent routed result + the config that produced it: the `prev`
  /// an ECO request chains from when the configs are output-equivalent
  /// (otherwise eco() re-routes the base once before applying the edit).
  std::mutex cacheMutex_;
  bool hasLast_ = false;
  core::PacorConfig lastConfig_;
  core::PacorResult lastResult_;
};

/// Admission-control knobs of the Server::submit queue tier.
struct AdmissionOptions {
  /// Dispatcher threads = requests executing at once (distinct designs;
  /// same-design requests are always serialized FIFO for warm affinity).
  int maxInflight = 2;

  /// High-water mark on requests WAITING in the per-design queues (the
  /// executing ones are bounded by maxInflight separately). Submissions
  /// past it get an immediate `busy` response instead of queueing.
  /// 0 = unbounded (batch mode: every manifest line is admitted).
  std::size_t maxQueue = 0;

  /// Server-side deadline (ms from admission) applied to requests that
  /// carry no deadline_ms= of their own. 0 = no default deadline.
  std::int64_t defaultDeadlineMs = 0;

  /// LRU bound on cached DesignContexts (parsed chip + obstacle template
  /// + warm escape session + ECO result cache). Past it, the
  /// least-recently-used context with no in-flight pin is evicted; a
  /// later request for that design rebuilds it cold, byte-identically.
  /// Generous by default so steady traffic never rebuilds; 0 = unlimited.
  /// Pinned (executing) contexts are never evicted, so the resident count
  /// can transiently exceed the bound by the number of in-flight designs.
  std::size_t maxDesigns = 256;

  /// TEST-ONLY: forwarded to LoadOptions::allowFifoDesigns for every
  /// design load this server performs.
  bool allowFifoDesigns = false;
};

/// Long-lived request loop state: one shared worker pool, one
/// DesignContext per distinct design. Requests may be submitted from any
/// number of threads concurrently; each gets an isolated result (own
/// MetricsRegistry, request-scoped search counters) that is byte-identical
/// to a fresh one-shot routeChip of the same chip and config.
///
/// Two tiers share the same execution core:
///  * route()/eco() -- direct, caller-threaded execution against a held
///    context (concurrent same-design callers race the escape-session
///    try-lock; losers run a request-local session, byte-identical).
///  * submit() -- the queued front-end tier: each request joins its
///    design's FIFO queue, design queues run one request at a time (so
///    repeat traffic always lands on the warm EscapeFlowSession and
///    obstacle template), distinct designs run concurrently on up to
///    AdmissionOptions::maxInflight dispatcher threads, and a bounded
///    waiting queue sheds load with `busy` responses past the high-water
///    mark. Both the batch manifest loop and the socket front end are
///    thin adapters over submit().
///
/// Liveness (submit tier only): every request may carry a deadline
/// (deadline_ms= or AdmissionOptions::defaultDeadlineMs). It is enforced
/// at three points -- a request already past its deadline when a
/// dispatcher pops it is answered `err ... field=deadline` without
/// dispatch; design loads run on a cancellable chunked-read path so a
/// parked file can be abandoned; and a watchdog thread sweeps both the
/// waiting queues and the in-flight set, answering expired requests and
/// recycling a stuck dispatcher's slot (see dispatchLoop) so the
/// per-design FIFO keeps draining. Cached DesignContexts are LRU-bounded
/// by AdmissionOptions::maxDesigns with pinned-while-in-use shared_ptr
/// refcounts, so eviction never races an executing route.
class Server {
 public:
  /// `jobs` sizes the shared routing pool (0 = all hardware threads).
  explicit Server(int jobs = 1);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The context for `key`, constructing it via `load` on first use and
  /// marking it most-recently-used. The returned shared_ptr is the pin:
  /// the context outlives any LRU eviction while the caller holds it, and
  /// a context with an outstanding pin is never chosen for eviction.
  /// Loads run without the cache lock, so a slow (or parked) load of one
  /// design never blocks lookups of another; two concurrent first-touch
  /// loads of the same key race benignly (first insert wins, the loser's
  /// copy is dropped).
  std::shared_ptr<DesignContext> context(
      const std::string& key, const std::function<chip::Chip()>& load);

  /// True while `key` has a live cached context (i.e. not yet evicted).
  bool hasContext(const std::string& key) const;

  /// Routes one request against a held context.
  Response route(DesignContext& ctx, const RequestOptions& options);

  /// Convenience: get-or-create the context for `key` from `chip`, then
  /// route. Later calls with the same key reuse the cached context (the
  /// chip argument is ignored then).
  Response route(const std::string& key, const chip::Chip& chip,
                 const RequestOptions& options);

  /// Applies an ECO edit script to a held context and re-routes
  /// incrementally (core::rerouteChip) against the context's cached
  /// previous result -- routing the pre-edit chip first when no previous
  /// result exists or it came from an output-inequivalent config. On
  /// success the context's chip, obstacle template, and result cache are
  /// advanced to the edited design, so eco requests chain. Runs
  /// exclusively against concurrent route() calls on the same context.
  Response eco(DesignContext& ctx, const chip::ChipDelta& delta,
               const RequestOptions& options);

  /// Starts the dispatcher threads with the given limits. Idempotent
  /// (later calls are ignored); submit() starts it with defaults when the
  /// caller did not.
  void startDispatch(const AdmissionOptions& admission);

  /// Queues one typed request on its design's FIFO and returns the future
  /// response. Never blocks on routing work: past the waiting-queue
  /// high-water mark (or while draining) the returned future is already
  /// resolved to a `busy` response. Design resolution (generate or .chip
  /// read) happens on the dispatcher thread; its failure resolves the
  /// future to an `error` response.
  std::future<Response> submit(Request req);

  /// Stops admitting: every later submit() resolves to `busy draining`.
  /// Already-admitted requests keep executing. Non-blocking.
  void beginDrain();

  /// beginDrain() + waits until every admitted request has resolved, then
  /// joins the dispatcher threads. Safe to call more than once; the
  /// destructor calls it. After it returns, submit() still answers (busy).
  void drainAndStop();

  /// Requests waiting in design queues (excludes the executing ones).
  std::size_t queuedRequests() const;
  bool draining() const;

  std::size_t designCount() const;
  unsigned threadCount() const noexcept { return pool_.threadCount(); }

  /// Monotonic liveness counters, surfaced by the front ends and
  /// BENCH_serve.json.
  struct Stats {
    std::uint64_t deadlineExpired = 0;  ///< requests answered `err deadline`
    std::uint64_t evictions = 0;        ///< DesignContexts LRU-evicted
    std::uint64_t dispatcherRecycles = 0;  ///< stuck slots the watchdog recycled
  };
  Stats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request req;
    std::promise<Response> promise;
    bool hasDeadline = false;
    std::int64_t deadlineMs = 0;  ///< the effective value, for the err text
    Clock::time_point deadline{};
  };
  /// One design's FIFO. `running` marks a dispatcher executing its head;
  /// at most one dispatcher per design at a time -- that is the affinity
  /// guarantee that keeps the warm escape session uncontended. (The
  /// watchdog may clear `running` for a stuck execution; the abandoned
  /// thread's result is discarded, so the guarantee holds for results.)
  struct DesignQueue {
    std::deque<Pending> fifo;
    bool running = false;
  };
  /// One executing request, visible to the watchdog. `abandoned` is the
  /// ownership handshake: whoever flips state under queueMutex_ first --
  /// the dispatcher finishing or the watchdog expiring it -- answers the
  /// promise; the other side discards.
  struct Inflight {
    std::string design;
    bool hasDeadline = false;
    std::int64_t deadlineMs = 0;
    Clock::time_point deadline{};
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);
    std::promise<Response> promise;
    bool abandoned = false;
  };

  Response execute(const Request& req,
                   const std::shared_ptr<std::atomic<bool>>& cancel);
  void dispatchLoop();
  void watchdogLoop();
  void maybeEvictLocked();
  void reapDispatchersLocked();

  util::ThreadPool pool_;
  mutable std::mutex contextsMutex_;
  /// LRU-bounded context cache. The shared_ptr refcount doubles as the
  /// pin: evictable entries are exactly those with use_count()==1 (the
  /// map's own reference). lru_ is most-recent-first; entries hold their
  /// own list iterator for O(1) touch.
  struct ContextEntry {
    std::shared_ptr<DesignContext> ctx;
    std::list<std::string>::iterator lruIt;
  };
  std::map<std::string, ContextEntry> contexts_;
  std::list<std::string> lru_;
  std::uint64_t evictions_ = 0;
  /// Effective cap, mirrored out of AdmissionOptions at startDispatch so
  /// direct route()/context() callers (no dispatch tier) share it.
  std::atomic<std::size_t> maxDesigns_{AdmissionOptions{}.maxDesigns};

  /// Trace ownership fence: tracing has one process-wide recorder, so a
  /// traced request takes this exclusively (draining in-flight requests
  /// and blocking new ones until its session ended), while untraced
  /// requests run concurrently under shared locks. This is what keeps one
  /// request's begin() from discarding another's events -- and keeps
  /// concurrent requests' spans out of the active trace.
  mutable std::shared_mutex traceFence_;

  /// Queue tier state, all under queueMutex_.
  mutable std::mutex queueMutex_;
  std::condition_variable workCv_;  ///< dispatchers: runnable work exists
  std::condition_variable idleCv_;  ///< drainAndStop: everything resolved
  std::condition_variable watchdogCv_;  ///< watchdog: new deadline or stop
  /// Per-design FIFOs, keyed by design token. Nodes are created on
  /// submit and erased as soon as a design's fifo is empty with no
  /// dispatcher running it (cheap to recreate), so the map -- and the
  /// watchdog's per-wake scan of it -- stays bounded by live designs, not
  /// by every token (including garbage paths) ever submitted.
  std::map<std::string, DesignQueue> queues_;
  std::deque<std::string> runnable_;  ///< designs with work, none executing
  std::list<std::shared_ptr<Inflight>> inflight_;  ///< executing requests
  std::size_t waiting_ = 0;           ///< requests in fifos (not executing)
  int executing_ = 0;
  std::uint64_t deadlineExpired_ = 0;
  std::uint64_t dispatcherRecycles_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  bool dispatchStarted_ = false;
  AdmissionOptions admission_;
  std::vector<std::thread> dispatchers_;
  /// Ids of decommissioned dispatcher threads that have exited (each
  /// recorded by the exiting thread under queueMutex_); the watchdog
  /// joins and erases the matching dispatchers_ handles on its next pass,
  /// so recycles do not accumulate dead thread handles without bound.
  std::vector<std::thread::id> finishedDispatchers_;
  std::thread watchdog_;
};

/// Batch/stdin line protocol: one request per non-blank, non-'#' manifest
/// line, in the shared grammar of serve::parseRequestLine (see
/// protocol.hpp). A thin adapter over Server::submit: lines are parsed,
/// queued with per-design FIFO affinity and `concurrency` dispatcher
/// threads (the waiting queue is unbounded -- batch mode never sheds
/// load), and the responses printed to `out` in request order, one
/// serve::formatResponse line each. Malformed lines report
/// `line N: <reason> (field '<field>')` without aborting the batch.
/// Timing and throughput go to stderr so stdout stays byte-stable for a
/// given manifest. Returns the number of failed requests (error responses
/// plus incomplete routings).
struct BatchOptions {
  int jobs = 1;         ///< shared routing pool size (0 = all cores)
  int concurrency = 1;  ///< requests in flight at once

  /// Forwarded into the server's AdmissionOptions (the waiting queue
  /// itself stays unbounded in batch mode).
  std::int64_t defaultDeadlineMs = 0;
  std::size_t maxDesigns = AdmissionOptions{}.maxDesigns;
  bool allowFifoDesigns = false;  ///< test-only, see LoadOptions
};
int runBatch(std::istream& manifest, std::ostream& out, const BatchOptions& options);

}  // namespace pacor::serve
