#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "chip/chip.hpp"
#include "chip/delta.hpp"
#include "grid/obstacle_map.hpp"
#include "pacor/config.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/result.hpp"
#include "serve/protocol.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace pacor::serve {

/// Resolves a request's design token into a chip: a Table-1 name (Chip1,
/// Chip2, S1..S5) generates the paper instance, an FPVA spec
/// (fpva:NxM[:key=val...]) synthesizes a valve array, anything else is
/// read as a .chip file path. Throws on unknown/unreadable designs. The
/// token doubles as the server's context (and queue-affinity) key.
chip::Chip loadDesign(const std::string& token);

/// Per-design state the server keeps alive across requests: the parsed
/// chip (mutated only by ECO edits), the routing obstacle template (static
/// obstacles + blocked boundary cells, derived once instead of per
/// request), the design's persistent EscapeFlowSession (warm-rebound into
/// each request that wins the try-lock; see Server::route), the previous
/// routed result for ECO chains, and this design's trace session handle.
/// Thread-local RouterWorkspaces live on the shared pool's workers, so
/// they too survive across requests without being owned here.
class DesignContext {
 public:
  explicit DesignContext(chip::Chip chip);
  ~DesignContext();

  const chip::Chip& chip() const noexcept { return chip_; }
  const grid::ObstacleMap& obstacleTemplate() const noexcept {
    return obstacleTemplate_;
  }
  trace::Session& traceSession() noexcept { return traceSession_; }

 private:
  friend class Server;

  chip::Chip chip_;
  grid::ObstacleMap obstacleTemplate_;
  trace::Session traceSession_;

  /// ECO fence: route() holds it shared (the chip and template must stay
  /// put while a request routes), eco() exclusively (it swaps both for the
  /// edited design). Acquired after the server's trace fence, always.
  mutable std::shared_mutex stateMutex_;

  /// Persistent escape-flow session of this design. One request at a time
  /// may drive it: route() try-locks escapeMutex_ and the winner passes
  /// the slot into routeChip (which warm-rebinds or lazily builds it);
  /// losers route with a request-local session, byte-identical either
  /// way. The submit() queue tier serializes same-design requests, so
  /// queued traffic always wins this lock and always lands warm.
  std::mutex escapeMutex_;
  std::unique_ptr<core::EscapeFlowSession> escapeSession_;

  /// Most recent routed result + the config that produced it: the `prev`
  /// an ECO request chains from when the configs are output-equivalent
  /// (otherwise eco() re-routes the base once before applying the edit).
  std::mutex cacheMutex_;
  bool hasLast_ = false;
  core::PacorConfig lastConfig_;
  core::PacorResult lastResult_;
};

/// Admission-control knobs of the Server::submit queue tier.
struct AdmissionOptions {
  /// Dispatcher threads = requests executing at once (distinct designs;
  /// same-design requests are always serialized FIFO for warm affinity).
  int maxInflight = 2;

  /// High-water mark on requests WAITING in the per-design queues (the
  /// executing ones are bounded by maxInflight separately). Submissions
  /// past it get an immediate `busy` response instead of queueing.
  /// 0 = unbounded (batch mode: every manifest line is admitted).
  std::size_t maxQueue = 0;
};

/// Long-lived request loop state: one shared worker pool, one
/// DesignContext per distinct design. Requests may be submitted from any
/// number of threads concurrently; each gets an isolated result (own
/// MetricsRegistry, request-scoped search counters) that is byte-identical
/// to a fresh one-shot routeChip of the same chip and config.
///
/// Two tiers share the same execution core:
///  * route()/eco() -- direct, caller-threaded execution against a held
///    context (concurrent same-design callers race the escape-session
///    try-lock; losers run a request-local session, byte-identical).
///  * submit() -- the queued front-end tier: each request joins its
///    design's FIFO queue, design queues run one request at a time (so
///    repeat traffic always lands on the warm EscapeFlowSession and
///    obstacle template), distinct designs run concurrently on up to
///    AdmissionOptions::maxInflight dispatcher threads, and a bounded
///    waiting queue sheds load with `busy` responses past the high-water
///    mark. Both the batch manifest loop and the socket front end are
///    thin adapters over submit().
class Server {
 public:
  /// `jobs` sizes the shared routing pool (0 = all hardware threads).
  explicit Server(int jobs = 1);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The context for `key`, constructing it via `load` on first use.
  /// Construction is serialized; later lookups are a map find. The
  /// reference stays valid for the server's lifetime.
  DesignContext& context(const std::string& key,
                         const std::function<chip::Chip()>& load);

  /// Routes one request against a held context.
  Response route(DesignContext& ctx, const RequestOptions& options);

  /// Convenience: get-or-create the context for `key` from `chip`, then
  /// route. Later calls with the same key reuse the cached context (the
  /// chip argument is ignored then).
  Response route(const std::string& key, const chip::Chip& chip,
                 const RequestOptions& options);

  /// Applies an ECO edit script to a held context and re-routes
  /// incrementally (core::rerouteChip) against the context's cached
  /// previous result -- routing the pre-edit chip first when no previous
  /// result exists or it came from an output-inequivalent config. On
  /// success the context's chip, obstacle template, and result cache are
  /// advanced to the edited design, so eco requests chain. Runs
  /// exclusively against concurrent route() calls on the same context.
  Response eco(DesignContext& ctx, const chip::ChipDelta& delta,
               const RequestOptions& options);

  /// Starts the dispatcher threads with the given limits. Idempotent
  /// (later calls are ignored); submit() starts it with defaults when the
  /// caller did not.
  void startDispatch(const AdmissionOptions& admission);

  /// Queues one typed request on its design's FIFO and returns the future
  /// response. Never blocks on routing work: past the waiting-queue
  /// high-water mark (or while draining) the returned future is already
  /// resolved to a `busy` response. Design resolution (generate or .chip
  /// read) happens on the dispatcher thread; its failure resolves the
  /// future to an `error` response.
  std::future<Response> submit(Request req);

  /// Stops admitting: every later submit() resolves to `busy draining`.
  /// Already-admitted requests keep executing. Non-blocking.
  void beginDrain();

  /// beginDrain() + waits until every admitted request has resolved, then
  /// joins the dispatcher threads. Safe to call more than once; the
  /// destructor calls it. After it returns, submit() still answers (busy).
  void drainAndStop();

  /// Requests waiting in design queues (excludes the executing ones).
  std::size_t queuedRequests() const;
  bool draining() const;

  std::size_t designCount() const;
  unsigned threadCount() const noexcept { return pool_.threadCount(); }

 private:
  struct Pending {
    Request req;
    std::promise<Response> promise;
  };
  /// One design's FIFO. `running` marks a dispatcher executing its head;
  /// at most one dispatcher per design, ever -- that is the affinity
  /// guarantee that keeps the warm escape session uncontended.
  struct DesignQueue {
    std::deque<Pending> fifo;
    bool running = false;
  };

  Response execute(const Request& req);
  void dispatchLoop();

  util::ThreadPool pool_;
  mutable std::mutex contextsMutex_;
  // node-stable map: context references survive later insertions.
  std::map<std::string, std::unique_ptr<DesignContext>> contexts_;

  /// Trace ownership fence: tracing has one process-wide recorder, so a
  /// traced request takes this exclusively (draining in-flight requests
  /// and blocking new ones until its session ended), while untraced
  /// requests run concurrently under shared locks. This is what keeps one
  /// request's begin() from discarding another's events -- and keeps
  /// concurrent requests' spans out of the active trace.
  mutable std::shared_mutex traceFence_;

  /// Queue tier state, all under queueMutex_.
  mutable std::mutex queueMutex_;
  std::condition_variable workCv_;  ///< dispatchers: runnable work exists
  std::condition_variable idleCv_;  ///< drainAndStop: everything resolved
  std::map<std::string, DesignQueue> queues_;
  std::deque<std::string> runnable_;  ///< designs with work, none executing
  std::size_t waiting_ = 0;           ///< requests in fifos (not executing)
  int executing_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  bool dispatchStarted_ = false;
  AdmissionOptions admission_;
  std::vector<std::thread> dispatchers_;
};

/// Batch/stdin line protocol: one request per non-blank, non-'#' manifest
/// line, in the shared grammar of serve::parseRequestLine (see
/// protocol.hpp). A thin adapter over Server::submit: lines are parsed,
/// queued with per-design FIFO affinity and `concurrency` dispatcher
/// threads (the waiting queue is unbounded -- batch mode never sheds
/// load), and the responses printed to `out` in request order, one
/// serve::formatResponse line each. Malformed lines report
/// `line N: <reason> (field '<field>')` without aborting the batch.
/// Timing and throughput go to stderr so stdout stays byte-stable for a
/// given manifest. Returns the number of failed requests (error responses
/// plus incomplete routings).
struct BatchOptions {
  int jobs = 1;         ///< shared routing pool size (0 = all cores)
  int concurrency = 1;  ///< requests in flight at once
};
int runBatch(std::istream& manifest, std::ostream& out, const BatchOptions& options);

}  // namespace pacor::serve
