#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "chip/chip.hpp"
#include "chip/delta.hpp"
#include "grid/obstacle_map.hpp"
#include "pacor/config.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/result.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace pacor::serve {

/// Options of one routing request. The config carries the flow variant
/// knobs; config.jobs is ignored -- the server's shared pool decides the
/// parallelism (the routed output is byte-identical for every value).
struct RequestOptions {
  core::PacorConfig config;

  std::string solutionPath;  ///< write the solution file here when set
  std::string metricsPath;   ///< write the metrics JSON here when set

  /// Per-request Chrome trace. Tracing is a process-wide single-recorder
  /// facility, so the server runs traced requests exclusively (no other
  /// request in flight) -- see Server::route.
  std::string tracePath;
  trace::Level traceLevel = trace::Level::kCluster;
};

/// Result of one request, carrying the canonical solution bytes so callers
/// can assert byte-identity against one-shot routeChip runs.
struct Response {
  std::string design;
  bool ok = false;        ///< request executed without an exception
  bool complete = false;  ///< 100% routing completion
  std::string solutionText;  ///< canonical solutionToString bytes
  std::string solutionHash;  ///< SHA-256 of solutionText
  std::size_t clusterCount = 0;
  std::int64_t totalLength = 0;
  int traceSpans = -1;         ///< recorded spans; -1 = no trace requested
  bool traceDiscarded = false; ///< trace superseded by a concurrent session
  std::string error;           ///< non-empty when !ok (or trace/file I/O failed)

  /// ECO responses only (empty / -1 otherwise): how rerouteChip answered.
  std::string ecoMode;  ///< "identity", "incremental", or "full"
  int ecoDirty = -1;    ///< clusters re-routed
  int ecoFrozen = -1;   ///< previous clusters carried verbatim
};

/// Per-design state the server keeps alive across requests: the parsed
/// chip (mutated only by ECO edits), the routing obstacle template (static
/// obstacles + blocked boundary cells, derived once instead of per
/// request), the design's persistent EscapeFlowSession (warm-rebound into
/// each request that wins the try-lock; see Server::route), the previous
/// routed result for ECO chains, and this design's trace session handle.
/// Thread-local RouterWorkspaces live on the shared pool's workers, so
/// they too survive across requests without being owned here.
class DesignContext {
 public:
  explicit DesignContext(chip::Chip chip);
  ~DesignContext();

  const chip::Chip& chip() const noexcept { return chip_; }
  const grid::ObstacleMap& obstacleTemplate() const noexcept {
    return obstacleTemplate_;
  }
  trace::Session& traceSession() noexcept { return traceSession_; }

 private:
  friend class Server;

  chip::Chip chip_;
  grid::ObstacleMap obstacleTemplate_;
  trace::Session traceSession_;

  /// ECO fence: route() holds it shared (the chip and template must stay
  /// put while a request routes), eco() exclusively (it swaps both for the
  /// edited design). Acquired after the server's trace fence, always.
  mutable std::shared_mutex stateMutex_;

  /// Persistent escape-flow session of this design. One request at a time
  /// may drive it: route() try-locks escapeMutex_ and the winner passes
  /// the slot into routeChip (which warm-rebinds or lazily builds it);
  /// losers route with a request-local session, byte-identical either way.
  std::mutex escapeMutex_;
  std::unique_ptr<core::EscapeFlowSession> escapeSession_;

  /// Most recent routed result + the config that produced it: the `prev`
  /// an ECO request chains from when the configs are output-equivalent
  /// (otherwise eco() re-routes the base once before applying the edit).
  std::mutex cacheMutex_;
  bool hasLast_ = false;
  core::PacorConfig lastConfig_;
  core::PacorResult lastResult_;
};

/// Long-lived request loop state: one shared worker pool, one
/// DesignContext per distinct design. Requests may be submitted from any
/// number of threads concurrently; each gets an isolated result (own
/// MetricsRegistry, request-scoped search counters) that is byte-identical
/// to a fresh one-shot routeChip of the same chip and config.
class Server {
 public:
  /// `jobs` sizes the shared routing pool (0 = all hardware threads).
  explicit Server(int jobs = 1);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The context for `key`, constructing it via `load` on first use.
  /// Construction is serialized; later lookups are a map find. The
  /// reference stays valid for the server's lifetime.
  DesignContext& context(const std::string& key,
                         const std::function<chip::Chip()>& load);

  /// Routes one request against a held context.
  Response route(DesignContext& ctx, const RequestOptions& options);

  /// Convenience: get-or-create the context for `key` from `chip`, then
  /// route. Later calls with the same key reuse the cached context (the
  /// chip argument is ignored then).
  Response route(const std::string& key, const chip::Chip& chip,
                 const RequestOptions& options);

  /// Applies an ECO edit script to a held context and re-routes
  /// incrementally (core::rerouteChip) against the context's cached
  /// previous result -- routing the pre-edit chip first when no previous
  /// result exists or it came from an output-inequivalent config. On
  /// success the context's chip, obstacle template, and result cache are
  /// advanced to the edited design, so eco requests chain. Runs
  /// exclusively against concurrent route() calls on the same context.
  Response eco(DesignContext& ctx, const chip::ChipDelta& delta,
               const RequestOptions& options);

  std::size_t designCount() const;
  unsigned threadCount() const noexcept { return pool_.threadCount(); }

 private:
  util::ThreadPool pool_;
  mutable std::mutex contextsMutex_;
  // node-stable map: context references survive later insertions.
  std::map<std::string, std::unique_ptr<DesignContext>> contexts_;

  /// Trace ownership fence: tracing has one process-wide recorder, so a
  /// traced request takes this exclusively (draining in-flight requests
  /// and blocking new ones until its session ended), while untraced
  /// requests run concurrently under shared locks. This is what keeps one
  /// request's begin() from discarding another's events -- and keeps
  /// concurrent requests' spans out of the active trace.
  mutable std::shared_mutex traceFence_;
};

/// Batch/stdin line protocol. Each non-blank, non-'#' manifest line is one
/// request:
///
///   <design> [sol=PATH] [metrics=PATH] [trace=PATH]
///            [trace-level=stage|cluster|search]
///            [variant=pacor|wosel|detour-first] [no-incremental-escape]
///            [fast-escape]
///   eco <design> delta=PATH [same options]
///
/// <design> is a Table-1 name (Chip1, Chip2, S1..S5; generated in-process)
/// or a path to a .chip file. The `eco` verb applies the edit script at
/// delta=PATH (chip/delta.hpp text format) to the design's current state
/// and re-routes incrementally; later requests against the same design see
/// the edited chip. Responses go to `out` in request order, one line each:
///
///   ok <design> sha256=<hash> complete=<0|1> clusters=<n> length=<L> [trace_spans=<n>]
///       [eco=identity|incremental|full dirty=<n> reused=<n>]
///   error <design> <message>
///
/// Timing and throughput go to stderr so stdout stays byte-stable for a
/// given manifest. Returns the number of failed requests (error responses
/// plus incomplete routings).
struct BatchOptions {
  int jobs = 1;         ///< shared routing pool size (0 = all cores)
  int concurrency = 1;  ///< requests in flight at once
};
int runBatch(std::istream& manifest, std::ostream& out, const BatchOptions& options);

}  // namespace pacor::serve
