#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <stdexcept>

namespace pacor::serve::net {

namespace {

/// send()/recv() loops over partial transfers; MSG_NOSIGNAL instead of a
/// process-wide SIGPIPE handler (every fd here is a socket).
bool writeAll(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Returns false on error or EOF; *cleanEof is set when the very first
/// byte was already EOF (an orderly close between frames).
bool readAll(int fd, char* data, std::size_t n, bool* cleanEof = nullptr) {
  bool first = true;
  while (n > 0) {
    const ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) {
      if (cleanEof != nullptr && first) *cleanEof = true;
      return false;
    }
    first = false;
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

int connectTo(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace

bool writeFrame(int fd, const std::string& payload) {
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(n >> 24), static_cast<unsigned char>(n >> 16),
      static_cast<unsigned char>(n >> 8), static_cast<unsigned char>(n)};
  return writeAll(fd, reinterpret_cast<const char*>(header), 4) &&
         writeAll(fd, payload.data(), payload.size());
}

bool readFrame(int fd, std::string& payload, std::size_t maxBytes) {
  payload.clear();
  char header[4];
  bool cleanEof = false;
  if (!readAll(fd, header, 4, &cleanEof)) return false;
  const std::uint32_t n =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0])) << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1])) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2])) << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (n > maxBytes) return false;  // oversized frame: drop the connection
  payload.resize(n);
  return n == 0 || readAll(fd, payload.data(), n);
}

/// One accepted connection: the reader turns frames into queued futures,
/// the writer resolves them strictly in arrival order and flushes the
/// response frames. SHUT_RD on `fd` is the drain signal (reader sees EOF,
/// write side stays open so the queued responses still go out).
struct NetServer::Connection {
  int fd = -1;
  std::thread reader;
  std::thread writer;
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::future<Response>> pending;
  bool readerDone = false;
  bool writeFailed = false;  ///< client went away mid-response
};

NetServer::NetServer(const NetOptions& options)
    : options_(options), server_(options.jobs) {
  server_.startDispatch(options_.admission);

  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) throw std::runtime_error("cannot create listen socket");
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("bad listen host '" + options_.host + "'");
  }
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listenFd_, 64) != 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("cannot bind " + options_.host + ":" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t boundLen = sizeof bound;
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &boundLen);
  port_ = ntohs(bound.sin_port);

  if (::pipe(wakePipe_) != 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("cannot create wake pipe");
  }
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

NetServer::~NetServer() {
  wait();
  if (wakePipe_[0] >= 0) ::close(wakePipe_[0]);
  if (wakePipe_[1] >= 0) ::close(wakePipe_[1]);
}

void NetServer::acceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listenFd_, POLLIN, 0}, {wakePipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (draining_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection& ref = *conn;
    {
      std::lock_guard<std::mutex> lock(connectionsMutex_);
      if (draining_.load()) {  // drain won the race: refuse
        ::close(fd);
        continue;
      }
      connections_.push_back(std::move(conn));
    }
    ref.reader = std::thread([this, &ref] { readerLoop(ref); });
    ref.writer = std::thread([this, &ref] { writerLoop(ref); });
  }
  // Closed here, on the owning thread, so no poll/accept races the close.
  ::close(listenFd_);
  listenFd_ = -1;
}

void NetServer::readerLoop(Connection& conn) {
  std::string payload;
  while (readFrame(conn.fd, payload, options_.maxFrameBytes)) {
    std::future<Response> fut;
    ParseError error;
    if (std::optional<Request> req = parseRequestLine(payload, &error)) {
      fut = server_.submit(std::move(*req));
    } else {
      // Malformed frames never touch the queue tier: answer a structured
      // `err` response in place, still in arrival order.
      Response resp;
      resp.design = error.design.empty() ? "-" : error.design;
      resp.errorField = error.field.empty() ? "request" : error.field;
      resp.error = error.reason;
      std::promise<Response> ready;
      fut = ready.get_future();
      ready.set_value(std::move(resp));
    }
    {
      std::lock_guard<std::mutex> lock(conn.mutex);
      conn.pending.push_back(std::move(fut));
    }
    conn.cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    conn.readerDone = true;
  }
  conn.cv.notify_one();
}

void NetServer::writerLoop(Connection& conn) {
  for (;;) {
    std::future<Response> fut;
    {
      std::unique_lock<std::mutex> lock(conn.mutex);
      conn.cv.wait(lock,
                   [&conn] { return conn.readerDone || !conn.pending.empty(); });
      if (conn.pending.empty()) return;  // reader done, everything flushed
      fut = std::move(conn.pending.front());
      conn.pending.pop_front();
    }
    // A failed write (client disconnected mid-response -- EPIPE/ECONNRESET
    // under MSG_NOSIGNAL, or a short send the writeAll loop could not
    // finish) must not stop the loop: every queued future still has to be
    // consumed so the request's result is reaped and drain can complete.
    // After the first failure the remaining responses are computed but not
    // sent -- the peer is gone, and other connections are unaffected.
    const Response resp = fut.get();
    if (!conn.writeFailed && !writeFrame(conn.fd, formatResponse(resp)))
      conn.writeFailed = true;
  }
}

void NetServer::beginDrain() {
  server_.beginDrain();
  if (draining_.exchange(true)) return;
  const char byte = 'w';
  (void)!::write(wakePipe_[1], &byte, 1);
}

void NetServer::wait() {
  beginDrain();
  if (acceptThread_.joinable()) acceptThread_.join();
  // Every admitted request resolves before the readers are unplugged, so
  // no in-flight work is abandoned...
  server_.drainAndStop();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connectionsMutex_);
    connections.swap(connections_);
  }
  // ...and SHUT_RD (not RDWR) ends the readers while the writers keep
  // flushing the already-queued response frames.
  for (const auto& conn : connections) ::shutdown(conn->fd, SHUT_RD);
  for (const auto& conn : connections) {
    conn->reader.join();
    conn->writer.join();
    ::close(conn->fd);
  }
}

namespace {

int gSignalPipe[2] = {-1, -1};

void onShutdownSignal(int) {
  const char byte = 's';
  (void)!::write(gSignalPipe[1], &byte, 1);
}

}  // namespace

int serveForever(const NetOptions& options) {
  // Belt and braces next to the per-send MSG_NOSIGNAL: any stray write to
  // a dead peer (or a sol=/metrics= side file that turns out to be a
  // pipe) must error with EPIPE, never kill the server.
  ::signal(SIGPIPE, SIG_IGN);
  std::unique_ptr<NetServer> server;
  try {
    server = std::make_unique<NetServer>(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pacor serve: %s\n", e.what());
    return 1;
  }
  if (::pipe(gSignalPipe) != 0) {
    std::fprintf(stderr, "pacor serve: cannot create signal pipe\n");
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = onShutdownSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  std::fprintf(stderr,
               "pacor serve: listening on %s:%u (jobs=%u, max-inflight=%d, "
               "max-queue=%zu, max-designs=%zu, deadline-ms=%lld)\n",
               options.host.c_str(), server->port(),
               server->server().threadCount(),
               std::max(1, options.admission.maxInflight),
               options.admission.maxQueue, options.admission.maxDesigns,
               static_cast<long long>(options.admission.defaultDeadlineMs));

  char byte;
  while (::read(gSignalPipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "pacor serve: draining (finishing in-flight requests)\n");
  server->beginDrain();
  server->wait();
  const std::size_t designs = server->server().designCount();
  const Server::Stats stats = server->server().stats();
  server.reset();
  ::close(gSignalPipe[0]);
  ::close(gSignalPipe[1]);
  gSignalPipe[0] = gSignalPipe[1] = -1;
  std::fprintf(stderr,
               "pacor serve: drained, %zu design context(s) resident, "
               "%llu deadline_expired, %llu eviction(s), %llu dispatcher "
               "recycle(s)\n",
               designs, static_cast<unsigned long long>(stats.deadlineExpired),
               static_cast<unsigned long long>(stats.evictions),
               static_cast<unsigned long long>(stats.dispatcherRecycles));
  return 0;
}

Client::Client(const std::string& host, std::uint16_t port)
    : fd_(connectTo(host, port)) {
  if (fd_ < 0)
    throw std::runtime_error("cannot connect to " + host + ":" +
                             std::to_string(port));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::call(const std::string& requestLine) {
  std::string response;
  if (!send(requestLine) || !recv(response))
    throw std::runtime_error("connection dropped during call");
  return response;
}

bool Client::send(const std::string& requestLine) {
  return writeFrame(fd_, requestLine);
}

bool Client::recv(std::string& responseLine) {
  // Responses are bounded lines; 1 MiB is far past any real one.
  return readFrame(fd_, responseLine, 1 << 20);
}

}  // namespace pacor::serve::net
