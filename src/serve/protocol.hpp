#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "pacor/config.hpp"
#include "trace/trace.hpp"

namespace pacor::serve {

/// Options of one routing request. The config carries the flow variant
/// knobs; config.jobs is ignored -- the server's shared pool decides the
/// parallelism (the routed output is byte-identical for every value).
struct RequestOptions {
  core::PacorConfig config;

  std::string solutionPath;  ///< write the solution file here when set
  std::string metricsPath;   ///< write the metrics JSON here when set

  /// Per-request Chrome trace. Tracing is a process-wide single-recorder
  /// facility, so the server runs traced requests exclusively (no other
  /// request in flight) -- see Server::route.
  std::string tracePath;
  trace::Level traceLevel = trace::Level::kCluster;

  /// Server-side, not part of the wire grammar: the per-request cancel
  /// flag the watchdog sets when the deadline expires mid-execution. An
  /// abandoned request's response is discarded, but the flag is also
  /// checked before every externally visible effect -- side-file writes
  /// and the eco state commit -- so a request the caller was told timed
  /// out never mutates files or design state behind a retry's back.
  /// Null = never cancelled.
  std::shared_ptr<std::atomic<bool>> cancel;
};

/// What a request asks the server to do.
enum class Verb {
  kRoute,  ///< route the design's current state
  kEco,    ///< apply an edit script, re-route incrementally
  kGen,    ///< load/generate the design into a warm context, no routing
};

/// The three Table-2 flow variants a request line can select.
enum class Variant { kPacor, kWosel, kDetourFirst };

/// One typed request: the single in-memory form behind every entry point
/// (batch manifest lines, the socket front end, the fuzzer, tests). The
/// wire grammar, shared verbatim by batch mode and the framed socket
/// protocol, is one line:
///
///   [eco|gen ]<design> [delta=PATH] [sol=PATH] [metrics=PATH]
///       [trace=PATH] [trace-level=stage|cluster|search]
///       [variant=pacor|wosel|detour-first] [no-incremental-escape]
///       [fast-escape] [deadline_ms=N]
///
/// <design> is a Table-1 name (Chip1, Chip2, S1..S5), an FPVA spec
/// (fpva:NxM[:key=val...]), or a path to a .chip file; it doubles as the
/// server's context/affinity key. `delta=` is required by (and only legal
/// on) eco requests; `gen` requests accept no options at all.
/// `deadline_ms=` is an integer in [1, kMaxDeadlineMs], measured from
/// admission; a request not answered by then resolves to a structured
/// `err <design> field=deadline ...` response instead (see serve.hpp).
struct Request {
  Verb verb = Verb::kRoute;
  std::string design;
  std::string deltaPath;  ///< eco only: edit script (chip/delta.hpp format)

  Variant variant = Variant::kPacor;
  bool incrementalEscape = true;
  bool fastEscape = false;
  std::string solutionPath;
  std::string metricsPath;
  std::string tracePath;
  trace::Level traceLevel = trace::Level::kCluster;

  /// Per-request deadline in milliseconds from admission; 0 = use the
  /// server's AdmissionOptions::defaultDeadlineMs (itself 0 = none).
  std::int64_t deadlineMs = 0;
};

/// Upper bound on deadline_ms= values (24 h): larger values are parse
/// errors, which keeps the arithmetic on deadline time points overflow-free.
inline constexpr std::int64_t kMaxDeadlineMs = 86'400'000;

/// Why a request line failed to parse: the offending field (an option
/// name like "trace-level", "delta", or "design") plus a human reason.
/// Batch mode renders it as `line N: <reason> (field '<field>')`; the
/// socket path returns a structured `err` response carrying the field.
struct ParseError {
  std::string field;
  std::string reason;
  std::string design;  ///< the design token, when one was read before failing

  /// "<reason> (field '<field>')" -- the canonical rendering.
  std::string render() const;
};

/// Result of one request, carrying the canonical solution bytes so callers
/// can assert byte-identity against one-shot routeChip runs.
struct Response {
  std::string design;
  bool ok = false;        ///< request executed without an exception
  bool complete = false;  ///< 100% routing completion
  std::string solutionText;  ///< canonical solutionToString bytes
  std::string solutionHash;  ///< SHA-256 of solutionText
  std::size_t clusterCount = 0;
  std::int64_t totalLength = 0;
  int coldBuilds = -1;  ///< escape.flow.cold_builds; 0 = warm session reuse
  int traceSpans = -1;         ///< recorded spans; -1 = no trace requested
  bool traceDiscarded = false; ///< trace superseded by a concurrent session
  std::string error;           ///< non-empty when !ok (or trace/file I/O failed)

  /// Admission control: the request was refused before execution because
  /// the server's waiting queue was full or it is draining. `error` holds
  /// the reason; the response renders as `busy <design> <reason>`.
  bool busy = false;

  /// Protocol-level failure (malformed request line): the offending field
  /// name. Renders as `err <design|-> field=<field> <reason>`.
  std::string errorField;

  /// The request's deadline passed before it finished: the server (or its
  /// watchdog) answered `err <design> field=deadline deadline expired
  /// after <D> ms (<queued|executing>)` without (or instead of) a result.
  bool deadlineExpired = false;

  /// ECO responses only (empty / -1 otherwise): how rerouteChip answered.
  std::string ecoMode;  ///< "identity", "incremental", or "full"
  int ecoDirty = -1;    ///< clusters re-routed
  int ecoFrozen = -1;   ///< previous clusters carried verbatim

  /// `gen` responses only (-1 otherwise): shape of the loaded design.
  int genValves = -1;
  int genPins = -1;
  int genObstacles = -1;
};

/// Parses one request line (the grammar above). Returns nullopt and fills
/// `error` (when given) on malformed input; never throws on any byte
/// sequence. Blank / comment ('#') lines are the caller's concern -- here
/// an empty line is a parse error on field "design".
std::optional<Request> parseRequestLine(const std::string& line,
                                        ParseError* error = nullptr);

/// The canonical text of a request: fields in grammar order, defaults
/// omitted (variant=pacor, trace-level=cluster, absent paths). Exact
/// round trip: parseRequestLine(formatRequestLine(r)) reproduces r, and
/// formatRequestLine(*parseRequestLine(x)) is the canonical form of any
/// parseable line x (idempotent under a second parse/format).
std::string formatRequestLine(const Request& req);

/// The RequestOptions a request resolves to: variant -> base config, then
/// the incremental-escape / fast-escape flags and the side-file paths.
RequestOptions optionsFor(const Request& req);

/// One response line (no trailing newline), the single wire encoding used
/// by batch stdout and the socket frames:
///
///   ok <design> sha256=<hash> complete=<0|1> clusters=<n> length=<L>
///       [cold_builds=<n>] [trace_spans=<n>]
///       [eco=identity|incremental|full dirty=<n> reused=<n>]
///   ok <design> gen=1 valves=<n> pins=<n> obstacles=<n>
///   busy <design> <reason>
///   err <design|-> field=<field> <reason>
///   error <design> <message>
std::string formatResponse(const Response& resp);

/// Minimal decode of a response line (status + design + key=value fields),
/// for clients (the replay driver, tests) that assert on responses.
struct ParsedResponse {
  std::string status;  ///< "ok", "busy", "err", or "error"
  std::string design;
  std::string sha256;
  int complete = -1;
  int coldBuilds = -1;
  std::string errorField;  ///< err responses: the offending field
  std::string message;     ///< busy/err/error: trailing reason text
};
std::optional<ParsedResponse> parseResponseLine(const std::string& line);

}  // namespace pacor::serve
