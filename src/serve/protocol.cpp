#include "serve/protocol.hpp"

#include <sstream>

#include "pacor/pipeline.hpp"

namespace pacor::serve {

namespace {

const char* levelName(trace::Level level) {
  switch (level) {
    case trace::Level::kOff: return "off";
    case trace::Level::kStage: return "stage";
    case trace::Level::kCluster: return "cluster";
    case trace::Level::kSearch: return "search";
  }
  return "cluster";
}

const char* variantName(Variant v) {
  switch (v) {
    case Variant::kPacor: return "pacor";
    case Variant::kWosel: return "wosel";
    case Variant::kDetourFirst: return "detour-first";
  }
  return "pacor";
}

std::optional<Request> failParse(ParseError* error, std::string field,
                                 std::string reason,
                                 const std::string& design = {}) {
  if (error != nullptr) {
    error->field = std::move(field);
    error->reason = std::move(reason);
    error->design = design;
  }
  return std::nullopt;
}

/// "key=value" tokens: the key of `token` when it starts with `key=`.
bool keyedValue(const std::string& token, const char* key, std::string& out) {
  const std::size_t keyLen = std::char_traits<char>::length(key);
  if (token.size() < keyLen + 1 || token.compare(0, keyLen, key) != 0 ||
      token[keyLen] != '=')
    return false;
  out = token.substr(keyLen + 1);
  return true;
}

}  // namespace

std::string ParseError::render() const {
  return reason + " (field '" + field + "')";
}

std::optional<Request> parseRequestLine(const std::string& line,
                                        ParseError* error) {
  Request req;
  std::istringstream is(line);
  if (!(is >> req.design))
    return failParse(error, "design", "empty request line");
  if (req.design == "eco" || req.design == "gen") {
    req.verb = req.design == "eco" ? Verb::kEco : Verb::kGen;
    if (!(is >> req.design))
      return failParse(error, "design",
                       std::string(req.verb == Verb::kEco ? "eco" : "gen") +
                           " request without a design");
  }
  std::string token;
  std::string value;
  while (is >> token) {
    if (req.verb == Verb::kGen) {
      const std::string field = token.substr(0, token.find('='));
      return failParse(error, field,
                       "gen requests take no options ('" + token + "')",
                       req.design);
    }
    if (keyedValue(token, "delta", value)) {
      if (req.verb != Verb::kEco)
        return failParse(error, "delta", "delta= is only valid on eco requests", req.design);
      if (value.empty()) return failParse(error, "delta", "empty delta= path", req.design);
      req.deltaPath = value;
    } else if (keyedValue(token, "sol", value)) {
      if (value.empty()) return failParse(error, "sol", "empty sol= path", req.design);
      req.solutionPath = value;
    } else if (keyedValue(token, "metrics", value)) {
      if (value.empty()) return failParse(error, "metrics", "empty metrics= path", req.design);
      req.metricsPath = value;
    } else if (keyedValue(token, "trace", value)) {
      if (value.empty()) return failParse(error, "trace", "empty trace= path", req.design);
      req.tracePath = value;
    } else if (keyedValue(token, "trace-level", value)) {
      const auto level = trace::parseLevel(value);
      if (!level)
        return failParse(error, "trace-level", "bad trace-level '" + value + "'", req.design);
      req.traceLevel = *level;
    } else if (keyedValue(token, "variant", value)) {
      if (value == "pacor") req.variant = Variant::kPacor;
      else if (value == "wosel") req.variant = Variant::kWosel;
      else if (value == "detour-first") req.variant = Variant::kDetourFirst;
      else return failParse(error, "variant", "unknown variant '" + value + "'", req.design);
    } else if (keyedValue(token, "deadline_ms", value)) {
      // Total validation: digits only (no sign, no suffix), in range.
      // Junk (`deadline_ms=`, negative, overflow) is a structured parse
      // error -- fuzz property (i) holds the parser to "never throws".
      bool digits = !value.empty();
      for (const char c : value)
        if (c < '0' || c > '9') digits = false;
      std::int64_t ms = 0;
      if (digits && value.size() <= 18) {
        for (const char c : value) ms = ms * 10 + (c - '0');
      } else {
        digits = false;
      }
      if (!digits || ms < 1 || ms > kMaxDeadlineMs)
        return failParse(error, "deadline_ms",
                         "bad deadline_ms '" + value + "' (want an integer in 1.." +
                             std::to_string(kMaxDeadlineMs) + ")",
                         req.design);
      req.deadlineMs = ms;
    } else if (token == "no-incremental-escape") {
      req.incrementalEscape = false;
    } else if (token == "fast-escape") {
      req.fastEscape = true;
    } else {
      const std::string field = token.substr(0, token.find('='));
      return failParse(error, field, "unknown option '" + token + "'",
                       req.design);
    }
  }
  if (req.verb == Verb::kEco && req.deltaPath.empty())
    return failParse(error, "delta", "eco request without delta=PATH",
                     req.design);
  return req;
}

std::string formatRequestLine(const Request& req) {
  std::string out;
  if (req.verb == Verb::kEco) out += "eco ";
  else if (req.verb == Verb::kGen) out += "gen ";
  out += req.design;
  if (req.verb == Verb::kGen) return out;
  if (!req.deltaPath.empty()) out += " delta=" + req.deltaPath;
  if (!req.solutionPath.empty()) out += " sol=" + req.solutionPath;
  if (!req.metricsPath.empty()) out += " metrics=" + req.metricsPath;
  if (!req.tracePath.empty()) out += " trace=" + req.tracePath;
  if (req.traceLevel != trace::Level::kCluster)
    out += std::string(" trace-level=") + levelName(req.traceLevel);
  if (req.variant != Variant::kPacor)
    out += std::string(" variant=") + variantName(req.variant);
  if (!req.incrementalEscape) out += " no-incremental-escape";
  if (req.fastEscape) out += " fast-escape";
  if (req.deadlineMs > 0) out += " deadline_ms=" + std::to_string(req.deadlineMs);
  return out;
}

RequestOptions optionsFor(const Request& req) {
  RequestOptions options;
  switch (req.variant) {
    case Variant::kPacor: options.config = core::pacorDefaultConfig(); break;
    case Variant::kWosel: options.config = core::withoutSelectionConfig(); break;
    case Variant::kDetourFirst: options.config = core::detourFirstConfig(); break;
  }
  options.config.incrementalEscape = req.incrementalEscape;
  options.config.fastEscape = req.fastEscape;
  options.solutionPath = req.solutionPath;
  options.metricsPath = req.metricsPath;
  options.tracePath = req.tracePath;
  options.traceLevel = req.traceLevel;
  return options;
}

std::string formatResponse(const Response& resp) {
  std::ostringstream out;
  if (resp.busy) {
    out << "busy " << (resp.design.empty() ? "-" : resp.design) << ' '
        << (resp.error.empty() ? "server busy" : resp.error);
    return out.str();
  }
  if (!resp.errorField.empty()) {
    out << "err " << (resp.design.empty() ? "-" : resp.design)
        << " field=" << resp.errorField << ' '
        << (resp.error.empty() ? "malformed request" : resp.error);
    return out.str();
  }
  if (!resp.ok) {
    out << "error " << resp.design << ' '
        << (resp.error.empty() ? "unknown failure" : resp.error);
    return out.str();
  }
  if (resp.genValves >= 0) {
    out << "ok " << resp.design << " gen=1 valves=" << resp.genValves
        << " pins=" << resp.genPins << " obstacles=" << resp.genObstacles;
    return out.str();
  }
  out << "ok " << resp.design << " sha256=" << resp.solutionHash
      << " complete=" << (resp.complete ? 1 : 0) << " clusters="
      << resp.clusterCount << " length=" << resp.totalLength;
  if (resp.coldBuilds >= 0) out << " cold_builds=" << resp.coldBuilds;
  if (resp.traceSpans >= 0) out << " trace_spans=" << resp.traceSpans;
  // Only eco responses carry the extra fields: the line stays byte-stable
  // for any manifest that predates the verb.
  if (!resp.ecoMode.empty())
    out << " eco=" << resp.ecoMode << " dirty=" << resp.ecoDirty
        << " reused=" << resp.ecoFrozen;
  return out.str();
}

std::optional<ParsedResponse> parseResponseLine(const std::string& line) {
  std::istringstream is(line);
  ParsedResponse parsed;
  if (!(is >> parsed.status >> parsed.design)) return std::nullopt;
  if (parsed.status != "ok" && parsed.status != "busy" &&
      parsed.status != "err" && parsed.status != "error")
    return std::nullopt;
  const auto asInt = [](const std::string& v) {
    try {
      return std::stoi(v);
    } catch (const std::exception&) {
      return -1;
    }
  };
  std::string token;
  std::string value;
  while (is >> token) {
    if (keyedValue(token, "sha256", value)) parsed.sha256 = value;
    else if (keyedValue(token, "complete", value)) parsed.complete = asInt(value);
    else if (keyedValue(token, "cold_builds", value))
      parsed.coldBuilds = asInt(value);
    else if (keyedValue(token, "field", value)) parsed.errorField = value;
    else if (parsed.status != "ok") {
      if (!parsed.message.empty()) parsed.message += ' ';
      parsed.message += token;
    }
  }
  return parsed;
}

}  // namespace pacor::serve
