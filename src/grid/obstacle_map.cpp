#include "grid/obstacle_map.hpp"

#include <algorithm>
#include <cassert>

namespace pacor::grid {

void ObstacleMap::blockRect(const geom::Rect& r) {
  const geom::Rect clipped = r.intersectWith(grid_.bounds());
  for (std::int32_t y = clipped.lo.y; y <= clipped.hi.y; ++y)
    for (std::int32_t x = clipped.lo.x; x <= clipped.hi.x; ++x)
      owner_[grid_.index({x, y})] = kObstacle;
}

void ObstacleMap::occupy(std::span<const Point> path, NetId net) {
  assert(net >= 0);
  for (const Point p : path) {
    NetId& o = owner_[grid_.index(p)];
    assert(o == kFreeCell || o == net);
    o = net;
  }
}

void ObstacleMap::release(NetId net) {
  assert(net >= 0);
  std::replace(owner_.begin(), owner_.end(), net, kFreeCell);
}

void ObstacleMap::releasePath(std::span<const Point> path, NetId net) {
  assert(net >= 0);
  for (const Point p : path) {
    NetId& o = owner_[grid_.index(p)];
    if (o == net) o = kFreeCell;
  }
}

std::int64_t ObstacleMap::countOwnedBy(NetId net) const noexcept {
  return std::count(owner_.begin(), owner_.end(), net);
}

void ObstacleMapTransaction::occupy(std::span<const Point> path, NetId net) {
  assert(net >= 0);
  for (const Point p : path) {
    const std::int32_t idx = map_.grid_.index(p);
    NetId& o = map_.owner_[static_cast<std::size_t>(idx)];
    assert(o == kFreeCell || o == net);
    if (o == net) continue;
    log_.push_back({idx, o});
    o = net;
  }
}

void ObstacleMapTransaction::releasePath(std::span<const Point> path, NetId net) {
  assert(net >= 0);
  for (const Point p : path) {
    const std::int32_t idx = map_.grid_.index(p);
    NetId& o = map_.owner_[static_cast<std::size_t>(idx)];
    if (o != net) continue;
    log_.push_back({idx, o});
    o = kFreeCell;
  }
}

void ObstacleMapTransaction::rollback() {
  for (auto it = log_.rbegin(); it != log_.rend(); ++it)
    map_.owner_[static_cast<std::size_t>(it->cell)] = it->previousOwner;
  log_.clear();
}

}  // namespace pacor::grid
