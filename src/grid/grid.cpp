#include "grid/grid.hpp"

namespace pacor::grid {

std::vector<Point> Grid::neighbors(Point p) const {
  std::vector<Point> out;
  out.reserve(4);
  forNeighbors(p, [&](Point q) { out.push_back(q); });
  return out;
}

std::vector<Point> Grid::boundaryCells() const {
  std::vector<Point> out;
  if (w_ <= 0 || h_ <= 0) return out;
  if (w_ == 1 && h_ == 1) return {{0, 0}};
  out.reserve(2 * (w_ + h_) - 4);
  for (std::int32_t x = 0; x < w_; ++x) out.push_back({x, 0});
  for (std::int32_t y = 1; y < h_; ++y) out.push_back({w_ - 1, y});
  if (h_ > 1)
    for (std::int32_t x = w_ - 2; x >= 0; --x) out.push_back({x, h_ - 1});
  if (w_ > 1)
    for (std::int32_t y = h_ - 2; y >= 1; --y) out.push_back({0, y});
  return out;
}

}  // namespace pacor::grid
