#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "grid/grid.hpp"

namespace pacor::grid {

/// Net identifier for occupancy bookkeeping. kFreeCell marks an unoccupied
/// cell; static obstacles use kObstacle.
using NetId = std::int32_t;
inline constexpr NetId kFreeCell = -1;
inline constexpr NetId kObstacle = -2;

/// Obstacle + occupancy map over a routing grid (the paper's ObsMap,
/// Alg. 1 step 2, extended with per-net ownership so rip-up & reroute can
/// release exactly one net's cells).
///
/// Each cell stores the NetId that occupies it: kFreeCell, kObstacle
/// (immovable blockage from the chip netlist), or a routed net's id.
class ObstacleMap {
 public:
  ObstacleMap() = default;
  explicit ObstacleMap(const Grid& grid)
      : grid_(grid),
        owner_(static_cast<std::size_t>(grid.cellCount()), kFreeCell) {}

  const Grid& grid() const noexcept { return grid_; }

  NetId owner(Point p) const noexcept { return owner_[grid_.index(p)]; }
  bool isObstacle(Point p) const noexcept { return owner(p) == kObstacle; }
  bool isFree(Point p) const noexcept { return owner(p) == kFreeCell; }

  /// True when cell p can be used by net `net`: free, or already owned by
  /// the same net (paths of one net may touch, e.g. a Steiner tree).
  bool isFreeFor(Point p, NetId net) const noexcept {
    const NetId o = owner(p);
    return o == kFreeCell || o == net;
  }

  void addObstacle(Point p) { owner_[grid_.index(p)] = kObstacle; }
  void blockRect(const geom::Rect& r);

  /// Marks every cell of `path` as owned by `net`. Cells already owned by
  /// the same net stay owned (tree trunks are shared); claiming a cell
  /// owned by a different net or an obstacle is a programming error.
  void occupy(std::span<const Point> path, NetId net);

  /// Releases every cell currently owned by `net`.
  void release(NetId net);

  /// Releases exactly the cells of `path` owned by `net` (used when only
  /// one path of a multi-path net is ripped up).
  void releasePath(std::span<const Point> path, NetId net);

  std::int64_t countOwnedBy(NetId net) const noexcept;
  std::int64_t obstacleCount() const noexcept { return countOwnedBy(kObstacle); }

 private:
  Grid grid_;
  std::vector<NetId> owner_;
};

}  // namespace pacor::grid
