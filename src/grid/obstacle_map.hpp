#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "grid/grid.hpp"

namespace pacor::grid {

/// Net identifier for occupancy bookkeeping. kFreeCell marks an unoccupied
/// cell; static obstacles use kObstacle.
using NetId = std::int32_t;
inline constexpr NetId kFreeCell = -1;
inline constexpr NetId kObstacle = -2;

/// Obstacle + occupancy map over a routing grid (the paper's ObsMap,
/// Alg. 1 step 2, extended with per-net ownership so rip-up & reroute can
/// release exactly one net's cells).
///
/// Each cell stores the NetId that occupies it: kFreeCell, kObstacle
/// (immovable blockage from the chip netlist), or a routed net's id.
class ObstacleMap {
 public:
  ObstacleMap() = default;
  explicit ObstacleMap(const Grid& grid)
      : grid_(grid),
        owner_(static_cast<std::size_t>(grid.cellCount()), kFreeCell) {}

  const Grid& grid() const noexcept { return grid_; }

  NetId owner(Point p) const noexcept { return owner_[grid_.index(p)]; }
  bool isObstacle(Point p) const noexcept { return owner(p) == kObstacle; }
  bool isFree(Point p) const noexcept { return owner(p) == kFreeCell; }

  /// True when cell p can be used by net `net`: free, or already owned by
  /// the same net (paths of one net may touch, e.g. a Steiner tree).
  bool isFreeFor(Point p, NetId net) const noexcept {
    const NetId o = owner(p);
    return o == kFreeCell || o == net;
  }

  void addObstacle(Point p) { owner_[grid_.index(p)] = kObstacle; }
  void blockRect(const geom::Rect& r);

  /// Marks every cell of `path` as owned by `net`. Cells already owned by
  /// the same net stay owned (tree trunks are shared); claiming a cell
  /// owned by a different net or an obstacle is a programming error.
  void occupy(std::span<const Point> path, NetId net);

  /// Releases every cell currently owned by `net`.
  void release(NetId net);

  /// Releases exactly the cells of `path` owned by `net` (used when only
  /// one path of a multi-path net is ripped up).
  void releasePath(std::span<const Point> path, NetId net);

  std::int64_t countOwnedBy(NetId net) const noexcept;
  std::int64_t obstacleCount() const noexcept { return countOwnedBy(kObstacle); }

 private:
  friend class ObstacleMapTransaction;
  Grid grid_;
  std::vector<NetId> owner_;
};

/// Undo log over an ObstacleMap: every owner mutation applied through the
/// transaction is recorded so the map can be restored to its prior state
/// in O(#mutations) instead of keeping a full O(cells) copy around.
///
/// This is what makes negotiation rip-up cheap (route/negotiation.cpp):
/// each iteration routes all edges through a transaction and, when some
/// edge failed, rolls the occupancy back in time proportional to the
/// routed path lengths. The log also doubles as the exact changed-cell
/// set the parallel routing layer needs for its speculative commits.
class ObstacleMapTransaction {
 public:
  explicit ObstacleMapTransaction(ObstacleMap& map) : map_(map) {}

  struct Entry {
    std::int32_t cell;
    NetId previousOwner;
  };

  /// Same contracts as the ObstacleMap methods of the same names.
  void occupy(std::span<const Point> path, NetId net);
  void releasePath(std::span<const Point> path, NetId net);

  /// Undoes every mutation since construction (or the last commit), most
  /// recent first, restoring the exact prior owner of each cell.
  void rollback();

  /// Keeps the mutations and forgets the log.
  void commit() { log_.clear(); }

  /// Mutations recorded so far, in application order. Entries are appended
  /// only for cells whose owner actually changed.
  std::span<const Entry> log() const noexcept { return log_; }

 private:
  ObstacleMap& map_;
  std::vector<Entry> log_;
};

}  // namespace pacor::grid
