#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace pacor::grid {

using geom::Point;

/// Uniform routing grid. The chip area is partitioned by the minimum
/// channel width + spacing design rule into W x H unit cells; one routed
/// channel occupies one cell, so design rules reduce to "one path per
/// cell" (paper Sec. 2). Grid cells are addressed by Point in
/// [0, W) x [0, H) or by flat index y * W + x.
class Grid {
 public:
  /// Largest representable cell count: flat indices are int32
  /// (y * W + x), so any W x H beyond this silently corrupts every
  /// index() result. Construction rejects such grids (checked, not
  /// asserted -- the dimensions come straight from chip files and
  /// generator parameters).
  static constexpr std::int64_t kMaxCells =
      std::numeric_limits<std::int32_t>::max();

  Grid() = default;
  Grid(std::int32_t width, std::int32_t height) : w_(width), h_(height) {
    assert(width > 0 && height > 0);
    if (static_cast<std::int64_t>(width) * height > kMaxCells)
      throw std::invalid_argument(
          "grid: width * height overflows the int32 cell-index range");
  }

  std::int32_t width() const noexcept { return w_; }
  std::int32_t height() const noexcept { return h_; }
  std::int64_t cellCount() const noexcept {
    return static_cast<std::int64_t>(w_) * h_;
  }
  geom::Rect bounds() const noexcept { return {{0, 0}, {w_ - 1, h_ - 1}}; }

  bool inBounds(Point p) const noexcept {
    return p.x >= 0 && p.x < w_ && p.y >= 0 && p.y < h_;
  }
  bool onBoundary(Point p) const noexcept {
    return inBounds(p) &&
           (p.x == 0 || p.y == 0 || p.x == w_ - 1 || p.y == h_ - 1);
  }

  [[nodiscard]] std::int32_t index(Point p) const noexcept {
    assert(inBounds(p));
    return p.y * w_ + p.x;
  }
  [[nodiscard]] Point point(std::int32_t idx) const noexcept {
    // One combined div/mod on the cached width: this is the innermost
    // operation of every search kernel.
    const auto dv = std::div(idx, w_);
    return {dv.rem, dv.quot};
  }

  /// 4-connected neighbor offsets in deterministic order (E, W, N, S).
  static constexpr std::array<Point, 4> kNeighborOffsets{
      Point{1, 0}, Point{-1, 0}, Point{0, 1}, Point{0, -1}};

  /// In-bounds 4-neighbors of p.
  std::vector<Point> neighbors(Point p) const;

  /// Calls fn(Point) for each in-bounds 4-neighbor; avoids allocation on
  /// hot paths (A*, flow-graph construction).
  template <typename Fn>
  void forNeighbors(Point p, Fn&& fn) const {
    for (const Point d : kNeighborOffsets) {
      const Point q = p + d;
      if (inBounds(q)) fn(q);
    }
  }

  /// All boundary cells in clockwise order starting at (0,0).
  std::vector<Point> boundaryCells() const;

 private:
  std::int32_t w_ = 0;
  std::int32_t h_ = 0;
};

}  // namespace pacor::grid
