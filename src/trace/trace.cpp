#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>

namespace pacor::trace {

namespace detail {
std::atomic<int> gLevel{static_cast<int>(Level::kOff)};
}  // namespace detail

namespace {

std::int64_t nowNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread event storage. Buffers are owned by the registry, not the
/// threads: a one-shot routeChip call's pool workers die before
/// endSession() merges their spans, while a server's shared pool workers
/// outlive many sessions. A thread re-acquires a fresh buffer per session
/// (the session stamp invalidates the cached thread_local pointer), so
/// one long-lived thread across two sessions never writes into a drained
/// buffer.
struct Buffer {
  int tid = 0;
  std::vector<Event> events;
};

std::mutex gMutex;
std::deque<Buffer> gBuffers;               // the active session's buffers
std::atomic<std::uint64_t> gSession{0};    // bumped by Session::begin/end
std::atomic<std::int64_t> gT0{0};          // session time origin (ns)
std::atomic<Session*> gActive{nullptr};    // the session owning gBuffers

thread_local Buffer* tlBuffer = nullptr;
thread_local std::uint64_t tlSession = 0;

Buffer& localBuffer() {
  const std::uint64_t session = gSession.load(std::memory_order_acquire);
  if (tlBuffer == nullptr || tlSession != session) {
    std::lock_guard<std::mutex> lock(gMutex);
    gBuffers.push_back(Buffer{static_cast<int>(gBuffers.size()), {}});
    tlBuffer = &gBuffers.back();
    tlSession = session;
  }
  return *tlBuffer;
}

}  // namespace

std::optional<Level> parseLevel(std::string_view name) noexcept {
  if (name == "off") return Level::kOff;
  if (name == "stage") return Level::kStage;
  if (name == "cluster") return Level::kCluster;
  if (name == "search") return Level::kSearch;
  return std::nullopt;
}

Session::~Session() {
  if (active()) end();  // discard: nobody is left to receive the events
}

void Session::begin(Level level) {
  std::lock_guard<std::mutex> lock(gMutex);
  // Mark the session we are about to kick out so its owner can tell a
  // silent discard from a trace that was simply empty. gActive always
  // points at a live session: a Session that dies while active ends (and
  // clears gActive) in its destructor.
  if (Session* prev = gActive.load(std::memory_order_relaxed);
      prev != nullptr && prev != this)
    prev->superseded_ = true;
  superseded_ = false;
  gBuffers.clear();  // invalidated thread_local pointers re-acquire below
  gSession.fetch_add(1, std::memory_order_release);
  gT0.store(nowNs(), std::memory_order_relaxed);
  gActive.store(level > Level::kOff ? this : nullptr,
                std::memory_order_relaxed);
  detail::gLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::vector<Event> Session::end() {
  if (!active()) return {};
  detail::gLevel.store(static_cast<int>(Level::kOff), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(gMutex);
  gActive.store(nullptr, std::memory_order_relaxed);
  std::vector<Event> merged;
  for (const Buffer& b : gBuffers)
    merged.insert(merged.end(), b.events.begin(), b.events.end());
  gBuffers.clear();
  gSession.fetch_add(1, std::memory_order_release);
  std::sort(merged.begin(), merged.end(), [](const Event& a, const Event& b) {
    if (a.startNs != b.startNs) return a.startNs < b.startNs;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.durNs > b.durNs;  // enclosing span first
  });
  return merged;
}

bool Session::active() const noexcept {
  return gActive.load(std::memory_order_relaxed) == this;
}

bool Session::superseded() const noexcept {
  std::lock_guard<std::mutex> lock(gMutex);
  return superseded_;
}

Session& defaultSession() noexcept {
  static Session instance;
  return instance;
}

bool sessionActive() noexcept { return enabled(Level::kStage); }

Span::Span(const char* name, const char* cat, Level level) noexcept {
  if (!enabled(level)) return;
  name_ = name;
  cat_ = cat;
  startNs_ = nowNs() - gT0.load(std::memory_order_relaxed);
}

void Span::arg(const char* key, std::int64_t value) noexcept {
  if (startNs_ < 0) return;
  for (Arg& slot : args_)
    if (slot.key == nullptr) {
      slot = {key, value};
      return;
    }
}

void Span::close() noexcept {
  if (startNs_ < 0) return;
  const std::int64_t start = startNs_;
  startNs_ = -1;
  // The session may have ended while the span was open (endSession inside
  // a traced region violates the contract, but must not corrupt state).
  if (!enabled(Level::kStage)) return;
  Event e;
  e.name = name_;
  e.cat = cat_;
  e.startNs = start;
  e.durNs = nowNs() - gT0.load(std::memory_order_relaxed) - start;
  if (e.durNs < 0) e.durNs = 0;
  e.args[0] = args_[0];
  e.args[1] = args_[1];
  Buffer& buf = localBuffer();
  e.tid = buf.tid;
  buf.events.push_back(e);
}

std::string toChromeJson(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 128 + 64);
  out += "{\"traceEvents\": [\n";
  char num[64];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    out += "  {\"name\": \"";
    out += e.name != nullptr ? e.name : "?";
    out += "\", \"cat\": \"";
    out += e.cat != nullptr ? e.cat : "?";
    out += "\", \"ph\": \"X\", \"ts\": ";
    std::snprintf(num, sizeof num, "%.3f", static_cast<double>(e.startNs) / 1000.0);
    out += num;
    out += ", \"dur\": ";
    std::snprintf(num, sizeof num, "%.3f", static_cast<double>(e.durNs) / 1000.0);
    out += num;
    out += ", \"pid\": 1, \"tid\": ";
    std::snprintf(num, sizeof num, "%d", e.tid);
    out += num;
    if (e.args[0].key != nullptr) {
      out += ", \"args\": {";
      for (int a = 0; a < 2 && e.args[a].key != nullptr; ++a) {
        if (a > 0) out += ", ";
        out += '"';
        out += e.args[a].key;
        out += "\": ";
        std::snprintf(num, sizeof num, "%lld",
                      static_cast<long long>(e.args[a].value));
        out += num;
      }
      out += '}';
    }
    out += '}';
    if (i + 1 < events.size()) out += ',';
    out += '\n';
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool writeChromeTrace(const std::string& path, const std::vector<Event>& events) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = toChromeJson(events);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace pacor::trace
