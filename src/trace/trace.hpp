#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pacor::trace {

/// Span granularity. A session enabled at level L records every span whose
/// level is <= L: kStage keeps only the five pipeline stages (plus their
/// sub-phases), kCluster adds per-cluster and per-iteration work, kSearch
/// adds one span per search-kernel invocation (large traces).
enum class Level : int {
  kOff = 0,
  kStage = 1,
  kCluster = 2,
  kSearch = 3,
};

/// Parses "off" / "stage" / "cluster" / "search"; nullopt otherwise.
std::optional<Level> parseLevel(std::string_view name) noexcept;

namespace detail {
/// Session level, read on every Span construction. Relaxed is enough: the
/// only writers are beginSession/endSession, which the usage contract
/// places strictly before/after the traced region.
extern std::atomic<int> gLevel;
}  // namespace detail

/// True when spans of `need` are being recorded. With tracing off this is
/// a single relaxed atomic load + compare -- the entire disabled-path cost
/// of the subsystem.
inline bool enabled(Level need = Level::kStage) noexcept {
  return detail::gLevel.load(std::memory_order_relaxed) >= static_cast<int>(need);
}

/// One key/value annotation on a span. Keys must be string literals (or
/// otherwise outlive the session): events store the pointer only.
struct Arg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

/// One completed span, Chrome trace_event "X" (complete) phase. Name and
/// category are static strings; times are nanoseconds relative to the
/// session start.
struct Event {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t startNs = 0;
  std::int64_t durNs = 0;
  int tid = 0;  ///< per-thread buffer id, dense from 0 (0 = first tracer)
  Arg args[2];
};

/// A recording session as a first-class handle: owns the per-thread event
/// buffers collected while it is the active recorder. At most one Session
/// records at a time (Span construction reads one global level atomic, so
/// the disabled path stays a single load); begin() on one session while
/// another is active supersedes it, discarding the superseded session's
/// events -- the same fate repeated beginSession() calls always had. The
/// loser's superseded() flag is set so its owner can observe and report
/// the discard; callers that must not lose events (the serve loop) are
/// expected to serialize trace ownership instead of racing begin().
///
/// The process-wide default instance is defaultSession(); the historical
/// free functions beginSession/endSession/sessionActive are thin wrappers
/// over it, so existing call sites compile (and behave) unchanged. Local
/// Session objects are for isolated collection -- a test or a library
/// consumer can record a region without disturbing anyone holding events
/// from the default instance.
class Session {
 public:
  Session() = default;
  ~Session();  ///< ends (and discards) the session if still active

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Makes this session the active recorder at `level` (kOff just ends
  /// it). Any previously active session -- this one included -- is ended
  /// first and its buffered events are discarded. Call strictly before
  /// the traced region; spans already open keep their old session's fate.
  void begin(Level level);

  /// Stops recording if this session is the active one, merges every
  /// per-thread buffer, and returns the events sorted by (startNs, tid).
  /// Returns an empty vector when this session was not active -- check
  /// superseded() to distinguish "never began" from "another session's
  /// begin() discarded my events".
  std::vector<Event> end();

  /// True between begin(level > kOff) and end() of *this* session.
  bool active() const noexcept;

  /// True when another session's begin() ended this one while it was
  /// recording, discarding its buffered events before end() could collect
  /// them. The flag survives end() (which then returns empty) so callers
  /// can report the discard instead of silently accepting an empty trace;
  /// it resets on the next begin() of this session.
  bool superseded() const noexcept;

 private:
  bool superseded_ = false;  ///< guarded by the trace registry mutex
};

/// The process-wide default session the free-function API drives.
Session& defaultSession() noexcept;

/// Starts a recording session at `level` (kOff clears and disables).
/// Buffers from any previous session are discarded. Call strictly before
/// the traced region -- spans already open keep their old session's fate.
/// Equivalent to defaultSession().begin(level).
inline void beginSession(Level level) { defaultSession().begin(level); }

/// Stops recording, merges every per-thread buffer, and returns the
/// events sorted by (startNs, tid). Returns an empty vector when no
/// session was active. Equivalent to defaultSession().end().
inline std::vector<Event> endSession() { return defaultSession().end(); }

/// True while any session (default or local) is recording.
bool sessionActive() noexcept;

/// RAII scoped span. Construction is inert (no clock read, no buffer
/// touch) unless the session level admits `level`; destruction records
/// one Event into the calling thread's buffer. Spans on one thread must
/// nest (natural for scoped lifetimes), which is what makes the merged
/// trace laminar per tid.
class Span {
 public:
  Span(const char* name, const char* cat, Level level = Level::kStage) noexcept;
  ~Span() noexcept { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches up to two integer annotations; no-op when inert or full.
  void arg(const char* key, std::int64_t value) noexcept;

  /// Records the span now (instead of at destruction) and inerts it.
  void close() noexcept;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t startNs_ = -1;  ///< -1 = inert (tracing disabled at ctor)
  Arg args_[2];
};

/// Serializes events as Chrome trace_event JSON ({"traceEvents": [...]}),
/// loadable in chrome://tracing and Perfetto. Timestamps become
/// microseconds (the trace_event unit).
std::string toChromeJson(const std::vector<Event>& events);

/// Writes toChromeJson(events) to `path`; false on I/O failure.
bool writeChromeTrace(const std::string& path, const std::vector<Event>& events);

}  // namespace pacor::trace
