#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace pacor::trace {

/// Typed, insertion-ordered metrics registry: the single queryable home
/// for the pipeline's scattered counters (search effort, detour stats,
/// LM routing stats, escape remedies, stage seconds). Lives by value on
/// PacorResult, so it is deliberately header-only with implicit special
/// members -- consumers that only read results (e.g. the independent
/// oracle) pick up no extra link dependency.
///
/// Names are dotted paths ("detour.reroutes", "time.escape_s"); insertion
/// order is preserved and the JSON dump is deterministic, which lets
/// bench baselines diff snapshots textually.
class MetricsRegistry {
 public:
  struct Entry {
    std::string name;
    bool isReal = false;
    std::int64_t i = 0;
    double r = 0.0;
  };

  void setInt(std::string_view name, std::int64_t value) {
    Entry& e = slot(name);
    e.isReal = false;
    e.i = value;
  }

  void setReal(std::string_view name, double value) {
    Entry& e = slot(name);
    e.isReal = true;
    e.r = value;
  }

  /// Adds to an integer metric, creating it at `delta` when absent.
  void addInt(std::string_view name, std::int64_t delta) {
    Entry& e = slot(name);
    e.isReal = false;
    e.i += delta;
  }

  const Entry* find(std::string_view name) const noexcept {
    for (const Entry& e : entries_)
      if (e.name == name) return &e;
    return nullptr;
  }

  std::int64_t getInt(std::string_view name, std::int64_t fallback = 0) const noexcept {
    const Entry* e = find(name);
    return e != nullptr && !e->isReal ? e->i : fallback;
  }

  double getReal(std::string_view name, double fallback = 0.0) const noexcept {
    const Entry* e = find(name);
    if (e == nullptr) return fallback;
    return e->isReal ? e->r : static_cast<double>(e->i);
  }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// JSON object in insertion order. `pretty` puts one metric per line
  /// with two-space indentation; otherwise a single line.
  std::string toJson(bool pretty = false) const {
    std::string out = "{";
    char num[64];
    for (std::size_t k = 0; k < entries_.size(); ++k) {
      const Entry& e = entries_[k];
      if (k > 0) out += ',';
      out += pretty ? "\n  " : (k > 0 ? " " : "");
      out += '"';
      out += e.name;
      out += "\": ";
      if (e.isReal)
        std::snprintf(num, sizeof num, "%.6g", e.r);
      else
        std::snprintf(num, sizeof num, "%lld", static_cast<long long>(e.i));
      out += num;
    }
    if (pretty && !entries_.empty()) out += '\n';
    out += '}';
    return out;
  }

 private:
  Entry& slot(std::string_view name) {
    for (Entry& e : entries_)
      if (e.name == name) return e;
    entries_.push_back(Entry{std::string(name), false, 0, 0.0});
    return entries_.back();
  }

  std::vector<Entry> entries_;
};

}  // namespace pacor::trace
