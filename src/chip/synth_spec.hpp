#pragma once

#include <iosfwd>
#include <string>

#include "chip/chip.hpp"
#include "chip/flow_layer.hpp"
#include "chip/schedule.hpp"

namespace pacor::chip {

/// Everything a designer specifies before control-layer routing: the die,
/// the flow layer, the valve sites, the candidate pins, the clusters that
/// must share a pin (with or without length matching), and the bioassay
/// schedule. `buildChip` runs control synthesis (schedule -> activation
/// sequences) and flow-layer rasterization (channels/components -> control
/// obstacles) to produce the routing instance PACOR consumes.
///
/// Text format ("pacor-synth 1"):
///
///   pacor-synth 1
///   name <token>
///   grid <w> <h>
///   delta <d>
///   valves <n>
///   <x> <y>                                  (n lines, ids are 0..n-1)
///   channels <n>
///   <k> <x1> <y1> ... <xk> <yk>              (n lines)
///   components <n>
///   <kind> <x1> <y1> <x2> <y2>               (n lines)
///   pins <n>
///   <x> <y>                                  (n lines)
///   clusters <n>
///   <lm 0|1> <k> <v1> ... <vk>               (n lines)
///   horizon <steps>
///   operations <n>
///   <name> <start> <end> <no> <v...> <nc> <v...>   (n lines)
struct SynthSpec {
  std::string name = "synth";
  grid::Grid die;
  std::int64_t delta = 1;
  std::vector<geom::Point> valveSites;
  FlowLayer flow;
  std::vector<geom::Point> pinSites;
  std::vector<ValveCluster> clusters;
  AssaySchedule assay;

  /// First structural problem, or nullopt.
  std::optional<std::string> validate() const;
};

/// Control synthesis + obstacle rasterization + instance assembly.
/// Throws std::runtime_error on schedule conflicts or invalid geometry.
Chip buildChip(const SynthSpec& spec);

void writeSynthSpec(std::ostream& os, const SynthSpec& spec);
SynthSpec readSynthSpec(std::istream& is);
void writeSynthSpecFile(const std::string& path, const SynthSpec& spec);
SynthSpec readSynthSpecFile(const std::string& path);

}  // namespace pacor::chip
