#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "chip/chip.hpp"

namespace pacor::chip {

/// One edit of a chip instance. Ops are applied in order; valve and pin
/// ids refer to the instance state at the moment the op applies (removals
/// renumber the ids above the removed one down by one, exactly like the
/// dense-id invariant of Chip::validate() demands).
struct DeltaOp {
  enum class Kind : std::uint8_t {
    kSetName,           ///< name = text
    kSetGrid,           ///< routingGrid = Grid(pos.x, pos.y)
    kSetRules,          ///< rules = {pos.x, pos.y}
    kSetDelta,          ///< delta = value
    kMoveValve,         ///< valves[id].pos = pos
    kSetValveSequence,  ///< valves[id].sequence = ActivationSequence(text)
    kAddValve,          ///< append Valve{next id, pos, text}
    kRemoveValve,       ///< erase valve id, renumber, fix cluster members
    kMovePin,           ///< pins[id].pos = pos
    kAddPin,            ///< append ControlPin{next id, pos}
    kRemovePin,         ///< erase pin id, renumber
    kAddObstacle,       ///< append pos to obstacles
    kRemoveObstacle,    ///< erase the first obstacle equal to pos
    kSetCluster,        ///< givenClusters[id] = cluster
    kAddCluster,        ///< append cluster
    kRemoveCluster,     ///< erase givenClusters[id]
  };

  Kind kind = Kind::kSetName;
  std::int32_t id = -1;   ///< valve/pin/cluster index where applicable
  geom::Point pos{0, 0};  ///< position / (w,h) / (width,spacing) payload
  std::int64_t value = 0; ///< delta-threshold payload
  std::string text;       ///< name or activation-sequence payload
  ValveCluster cluster;   ///< cluster payload

  friend bool operator==(const DeltaOp& a, const DeltaOp& b) {
    return a.kind == b.kind && a.id == b.id && a.pos == b.pos &&
           a.value == b.value && a.text == b.text &&
           a.cluster.valves == b.cluster.valves &&
           a.cluster.lengthMatched == b.cluster.lengthMatched;
  }
};

/// An ordered edit script between two chip instances. The contract is
/// `apply(A, diff(A, B)) == B` field-for-field (diff() self-checks it);
/// hand-built deltas express ECO edits (move a valve, add an obstacle,
/// retarget a cluster) without rewriting the whole instance.
struct ChipDelta {
  std::vector<DeltaOp> ops;

  bool empty() const noexcept { return ops.empty(); }

  // Convenience builders for hand-written ECO edit scripts.
  ChipDelta& moveValve(ValveId id, Point to);
  ChipDelta& setValveSequence(ValveId id, std::string seq);
  ChipDelta& addValve(Point at, std::string seq);
  ChipDelta& removeValve(ValveId id);
  ChipDelta& movePin(PinId id, Point to);
  ChipDelta& addPin(Point at);
  ChipDelta& removePin(PinId id);
  ChipDelta& addObstacle(Point at);
  ChipDelta& removeObstacle(Point at);
  ChipDelta& setCluster(std::int32_t index, ValveCluster cluster);
  ChipDelta& addCluster(ValveCluster cluster);
  ChipDelta& removeCluster(std::int32_t index);
  ChipDelta& setDelta(std::int64_t value);
  ChipDelta& setName(std::string name);
};

/// Field-for-field equality of two chip instances (vectors compared in
/// order). This is the equality diff()/apply() are specified against.
bool chipsEqual(const Chip& a, const Chip& b);

/// Minimal-ish edit script turning A into B: scalar edits, per-index
/// valve/pin moves plus trailing removals/appends, an obstacle multiset
/// diff (falling back to a rewrite when B reorders survivors), and
/// per-index cluster rewrites. Self-checks `apply(A, result) == B` and
/// throws std::logic_error if the reconstruction ever misses.
ChipDelta diff(const Chip& a, const Chip& b);

/// Applies the edit script to a copy of `base` and returns it. Throws
/// std::invalid_argument on structurally impossible ops (id out of range,
/// removing a missing obstacle); the result is NOT validated -- callers
/// decide whether intermediate or final states must pass Chip::validate().
Chip apply(const Chip& base, const ChipDelta& delta);

/// apply() variant that also reports where base's valves ended up:
/// valveMap[oldId] = id in the result, or -1 when the valve was removed.
/// The incremental router uses this to match surviving clusters.
struct AppliedDelta {
  Chip chip;
  std::vector<ValveId> valveMap;
};
AppliedDelta applyWithMap(const Chip& base, const ChipDelta& delta);

/// Plain-text serialization of an edit script ("pacor-delta 1" header,
/// one op per line). Same conventions as chip/io.hpp: '#' comments and
/// blank lines are skipped on input, malformed input throws
/// std::runtime_error.
void writeDelta(std::ostream& os, const ChipDelta& delta);
ChipDelta readDelta(std::istream& is);
void writeDeltaFile(const std::string& path, const ChipDelta& delta);
ChipDelta readDeltaFile(const std::string& path);
std::string deltaToString(const ChipDelta& delta);
ChipDelta deltaFromString(const std::string& text);

}  // namespace pacor::chip
