#include "chip/synth_spec.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pacor::chip {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("synth spec: " + what);
}

std::istringstream lineFor(std::istream& is, const char* key) {
  std::string line;
  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    std::istringstream ls(line);
    std::string k;
    ls >> k;
    if (k != key) fail(std::string("expected '") + key + "', got '" + k + "'");
    return ls;
  }
  fail(std::string("unexpected EOF, wanted '") + key + "'");
}

std::size_t countFor(std::istream& is, const char* key) {
  auto ls = lineFor(is, key);
  std::size_t n = 0;
  if (!(ls >> n)) fail(std::string("malformed count for '") + key + "'");
  constexpr std::size_t kMaxRecords = 16'777'216;
  if (n > kMaxRecords) fail(std::string("implausible count for '") + key + "'");
  return n;
}

/// Next non-comment record line (no leading keyword).
std::istringstream recordLine(std::istream& is, const char* context) {
  std::string line;
  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    return std::istringstream(line);
  }
  fail(std::string("unexpected EOF while reading ") + context);
}

}  // namespace

std::optional<std::string> SynthSpec::validate() const {
  if (die.width() <= 0 || die.height() <= 0) return "die has non-positive size";
  for (const geom::Point v : valveSites)
    if (!die.inBounds(v)) return "valve site " + v.str() + " out of bounds";
  if (const auto err = flow.validate(die)) return err;
  for (const geom::Point p : pinSites)
    if (!die.onBoundary(p)) return "pin " + p.str() + " not on the boundary";
  std::vector<int> seen(valveSites.size(), 0);
  for (const ValveCluster& c : clusters) {
    if (c.valves.size() < 2) return "clusters need >= 2 valves";
    for (const ValveId v : c.valves) {
      if (v < 0 || static_cast<std::size_t>(v) >= valveSites.size())
        return "cluster references unknown valve " + std::to_string(v);
      if (++seen[static_cast<std::size_t>(v)] > 1)
        return "valve " + std::to_string(v) + " in two clusters";
    }
  }
  if (const auto err = assay.validate(valveSites.size())) return err;
  return std::nullopt;
}

Chip buildChip(const SynthSpec& spec) {
  if (const auto err = spec.validate()) fail("invalid spec: " + *err);

  std::string conflict;
  const auto sequences = synthesizeSequences(spec.assay, spec.valveSites.size(), &conflict);
  if (!sequences) fail("schedule conflict: " + conflict);

  Chip chip;
  chip.name = spec.name;
  chip.routingGrid = spec.die;
  chip.delta = spec.delta;
  for (std::size_t v = 0; v < spec.valveSites.size(); ++v)
    chip.valves.push_back(
        {static_cast<ValveId>(v), spec.valveSites[v], (*sequences)[v]});
  chip.obstacles = controlObstacles(spec.flow, spec.die, spec.valveSites);
  for (std::size_t p = 0; p < spec.pinSites.size(); ++p)
    chip.pins.push_back({static_cast<PinId>(p), spec.pinSites[p]});
  chip.givenClusters = spec.clusters;

  if (const auto err = chip.validate()) fail("assembled chip invalid: " + *err);
  return chip;
}

void writeSynthSpec(std::ostream& os, const SynthSpec& spec) {
  os << "pacor-synth 1\n";
  os << "name " << spec.name << '\n';
  os << "grid " << spec.die.width() << ' ' << spec.die.height() << '\n';
  os << "delta " << spec.delta << '\n';
  os << "valves " << spec.valveSites.size() << '\n';
  for (const geom::Point v : spec.valveSites) os << v.x << ' ' << v.y << '\n';
  os << "channels " << spec.flow.channels.size() << '\n';
  for (const FlowChannel& c : spec.flow.channels) {
    os << c.waypoints.size();
    for (const geom::Point w : c.waypoints) os << ' ' << w.x << ' ' << w.y;
    os << '\n';
  }
  os << "components " << spec.flow.components.size() << '\n';
  for (const FlowComponent& c : spec.flow.components)
    os << c.kind << ' ' << c.footprint.lo.x << ' ' << c.footprint.lo.y << ' '
       << c.footprint.hi.x << ' ' << c.footprint.hi.y << '\n';
  os << "pins " << spec.pinSites.size() << '\n';
  for (const geom::Point p : spec.pinSites) os << p.x << ' ' << p.y << '\n';
  os << "clusters " << spec.clusters.size() << '\n';
  for (const ValveCluster& c : spec.clusters) {
    os << (c.lengthMatched ? 1 : 0) << ' ' << c.valves.size();
    for (const ValveId v : c.valves) os << ' ' << v;
    os << '\n';
  }
  os << "horizon " << spec.assay.horizon << '\n';
  os << "operations " << spec.assay.operations.size() << '\n';
  for (const ScheduledOperation& op : spec.assay.operations) {
    os << op.name << ' ' << op.start << ' ' << op.end << ' ' << op.openValves.size();
    for (const auto v : op.openValves) os << ' ' << v;
    os << ' ' << op.closedValves.size();
    for (const auto v : op.closedValves) os << ' ' << v;
    os << '\n';
  }
  if (!os) fail("write failure");
}

SynthSpec readSynthSpec(std::istream& is) {
  SynthSpec spec;
  {
    auto ls = lineFor(is, "pacor-synth");
    int version = 0;
    ls >> version;
    if (version != 1) fail("unsupported version");
  }
  {
    auto ls = lineFor(is, "name");
    ls >> spec.name;
  }
  {
    auto ls = lineFor(is, "grid");
    std::int32_t w = 0, h = 0;
    if (!(ls >> w >> h) || w <= 0 || h <= 0) fail("bad grid");
    spec.die = grid::Grid(w, h);
  }
  {
    auto ls = lineFor(is, "delta");
    if (!(ls >> spec.delta)) fail("bad delta");
  }
  spec.valveSites.resize(countFor(is, "valves"));
  for (auto& v : spec.valveSites) {
    auto ls = recordLine(is, "valve site");
    if (!(ls >> v.x >> v.y)) fail("malformed valve site");
  }
  spec.flow.channels.resize(countFor(is, "channels"));
  for (auto& c : spec.flow.channels) {
    auto ls = recordLine(is, "channel");
    std::size_t k = 0;
    if (!(ls >> k) || k < 2 || k > 65536) fail("malformed channel");
    c.waypoints.resize(k);
    for (auto& w : c.waypoints)
      if (!(ls >> w.x >> w.y)) fail("malformed channel waypoint");
  }
  spec.flow.components.resize(countFor(is, "components"));
  for (auto& c : spec.flow.components) {
    auto ls = recordLine(is, "component");
    if (!(ls >> c.kind >> c.footprint.lo.x >> c.footprint.lo.y >> c.footprint.hi.x >>
          c.footprint.hi.y))
      fail("malformed component");
  }
  spec.pinSites.resize(countFor(is, "pins"));
  for (auto& p : spec.pinSites) {
    auto ls = recordLine(is, "pin");
    if (!(ls >> p.x >> p.y)) fail("malformed pin");
  }
  spec.clusters.resize(countFor(is, "clusters"));
  for (auto& c : spec.clusters) {
    auto ls = recordLine(is, "cluster");
    int lm = 0;
    std::size_t k = 0;
    if (!(ls >> lm >> k) || k > 65536) fail("malformed cluster");
    c.lengthMatched = lm != 0;
    c.valves.resize(k);
    for (auto& v : c.valves)
      if (!(ls >> v)) fail("malformed cluster member");
  }
  {
    auto ls = lineFor(is, "horizon");
    if (!(ls >> spec.assay.horizon)) fail("bad horizon");
  }
  spec.assay.operations.resize(countFor(is, "operations"));
  for (auto& op : spec.assay.operations) {
    auto ls = recordLine(is, "operation");
    std::size_t no = 0;
    if (!(ls >> op.name >> op.start >> op.end >> no) || no > 65536)
      fail("malformed operation");
    op.openValves.resize(no);
    for (auto& v : op.openValves)
      if (!(ls >> v)) fail("malformed open valve list");
    std::size_t nc = 0;
    if (!(ls >> nc) || nc > 65536) fail("malformed operation");
    op.closedValves.resize(nc);
    for (auto& v : op.closedValves)
      if (!(ls >> v)) fail("malformed closed valve list");
  }
  if (const auto err = spec.validate()) fail("invalid spec: " + *err);
  return spec;
}

void writeSynthSpecFile(const std::string& path, const SynthSpec& spec) {
  std::ofstream os(path);
  if (!os) fail("cannot open for writing: " + path);
  writeSynthSpec(os, spec);
}

SynthSpec readSynthSpecFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot open for reading: " + path);
  return readSynthSpec(is);
}

}  // namespace pacor::chip
