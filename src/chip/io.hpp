#pragma once

#include <iosfwd>
#include <string>

#include "chip/chip.hpp"

namespace pacor::chip {

/// Plain-text chip instance format, one section per entity kind:
///
///   pacor-chip 1
///   name <string>
///   grid <width> <height>
///   rules <channel_width_um> <channel_spacing_um>
///   delta <grid units>
///   valves <n>
///   <id> <x> <y> <01X-sequence>      (n lines)
///   pins <n>
///   <id> <x> <y>                     (n lines)
///   obstacles <n>
///   <x> <y>                          (n lines)
///   clusters <n>
///   <lm 0|1> <k> <v1> ... <vk>       (n lines)
///
/// Lines starting with '#' are comments. Both functions throw
/// std::runtime_error on malformed input / IO failure.
void writeChip(std::ostream& os, const Chip& chip);
Chip readChip(std::istream& is);

void writeChipFile(const std::string& path, const Chip& chip);
Chip readChipFile(const std::string& path);

}  // namespace pacor::chip
