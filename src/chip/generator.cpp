#include "chip/generator.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <unordered_set>

namespace pacor::chip {
namespace {

/// Deterministic uniform int in [lo, hi] (modulo; bias irrelevant for
/// benchmark synthesis and stable across standard libraries, unlike
/// std::uniform_int_distribution).
std::int32_t randInt(std::mt19937& rng, std::int32_t lo, std::int32_t hi) {
  return lo + static_cast<std::int32_t>(rng() % static_cast<std::uint32_t>(hi - lo + 1));
}

/// Places `pinCount` control pins evenly spread along the boundary ring
/// with a random rotation. Indices are distinct because pinCount never
/// exceeds the boundary cell count (checked by the callers).
void placeBoundaryPins(Chip& chip, std::int32_t pinCount, std::mt19937& rng) {
  const auto boundary = chip.routingGrid.boundaryCells();
  const std::size_t n = boundary.size();
  const std::size_t offset = rng() % n;
  for (std::int32_t i = 0; i < pinCount; ++i) {
    const std::size_t idx =
        (offset + static_cast<std::size_t>(i) * n / static_cast<std::size_t>(pinCount)) % n;
    chip.pins.push_back({static_cast<PinId>(i), boundary[idx]});
  }
}

/// Assigns activation sequences so that valves sharing a given cluster
/// are pairwise compatible and valves of different groups are provably
/// incompatible: each group (cluster or singleton) gets a unique binary
/// code on the leading steps plus a shared random base, with X's
/// sprinkled over the tail.
void assignGroupSequences(Chip& chip, std::int32_t sequenceLength, std::mt19937& rng) {
  std::vector<std::size_t> groupOf(chip.valves.size());
  std::size_t groups = 0;
  {
    std::vector<bool> inCluster(chip.valves.size(), false);
    for (const auto& cluster : chip.givenClusters) {
      for (const ValveId v : cluster.valves) {
        groupOf[static_cast<std::size_t>(v)] = groups;
        inCluster[static_cast<std::size_t>(v)] = true;
      }
      ++groups;
    }
    for (std::size_t v = 0; v < chip.valves.size(); ++v)
      if (!inCluster[v]) groupOf[v] = groups++;
  }

  std::int32_t codeLen = 1;
  while ((std::size_t{1} << codeLen) < groups) ++codeLen;
  const std::int32_t seqLen = std::max(sequenceLength, codeLen + 2);

  std::vector<std::string> base(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    std::string s(static_cast<std::size_t>(seqLen), '0');
    for (std::int32_t b = 0; b < codeLen; ++b)
      s[static_cast<std::size_t>(b)] = ((g >> b) & 1) ? '1' : '0';
    for (std::int32_t i = codeLen; i < seqLen; ++i)
      s[static_cast<std::size_t>(i)] = (rng() & 1u) ? '1' : '0';
    base[g] = std::move(s);
  }
  for (auto& valve : chip.valves) {
    std::string s = base[groupOf[static_cast<std::size_t>(valve.id)]];
    for (std::int32_t i = codeLen; i < seqLen; ++i)
      if (rng() % 4 == 0) s[static_cast<std::size_t>(i)] = 'X';
    valve.sequence = ActivationSequence(s);
  }
}

class Builder {
 public:
  explicit Builder(const GeneratorParams& p) : p_(p), rng_(p.seed) {
    if (p.width < 8 || p.height < 8)
      throw std::invalid_argument("generator: chip must be at least 8x8");
    if (static_cast<std::int64_t>(p.width) * p.height > grid::Grid::kMaxCells)
      throw std::invalid_argument(
          "generator: width * height exceeds the int32 cell-index range");
    std::int64_t clusteredValves = 0;
    for (const auto s : p.lmClusterSizes) {
      if (s < 2) throw std::invalid_argument("generator: cluster sizes must be >= 2");
      clusteredValves += s;
    }
    for (const auto s : p.plainClusterSizes) {
      if (s < 2) throw std::invalid_argument("generator: cluster sizes must be >= 2");
      clusteredValves += s;
    }
    if (clusteredValves > p.valveCount)
      throw std::invalid_argument("generator: cluster sizes exceed valve count");
    const std::int64_t interior =
        static_cast<std::int64_t>(p.width - 2 * kMargin) * (p.height - 2 * kMargin);
    if (p.valveCount * 4 + p.obstacleCellCount > interior)
      throw std::invalid_argument("generator: chip too small for valves + obstacles");
    const std::int64_t boundary = 2 * (static_cast<std::int64_t>(p.width) + p.height) - 4;
    if (p.pinCount > boundary)
      throw std::invalid_argument("generator: more pins than boundary cells");
  }

  Chip build() {
    Chip chip;
    chip.name = p_.name;
    chip.routingGrid = grid::Grid(p_.width, p_.height);
    chip.delta = p_.delta;

    placePins(chip);
    placeValves(chip);
    placeObstacles(chip);
    assignSequences(chip);

    if (const auto err = chip.validate())
      throw std::logic_error("generator produced invalid chip: " + *err);
    return chip;
  }

 private:
  static constexpr std::int32_t kMargin = 2;  ///< valve/obstacle keep-out ring

  bool isInterior(Point q) const {
    return q.x >= kMargin && q.x < p_.width - kMargin && q.y >= kMargin &&
           q.y < p_.height - kMargin;
  }

  Point randomInterior() {
    return {randInt(rng_, kMargin, p_.width - 1 - kMargin),
            randInt(rng_, kMargin, p_.height - 1 - kMargin)};
  }

  /// Min Chebyshev distance from q to all placed valve cells.
  std::int64_t distToValves(Point q) const {
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const Point v : valveCells_) best = std::min(best, geom::chebyshev(q, v));
    return best;
  }

  void placePins(Chip& chip) { placeBoundaryPins(chip, p_.pinCount, rng_); }

  /// Picks a free interior cell maximizing min distance to `centers`
  /// (best-of-k sampling) so clusters spread over the chip.
  Point pickSpreadCenter(const std::vector<Point>& centers) {
    Point best = randomInterior();
    std::int64_t bestScore = -1;
    for (int tries = 0; tries < 24; ++tries) {
      const Point q = randomInterior();
      std::int64_t score = std::numeric_limits<std::int64_t>::max();
      for (const Point c : centers) score = std::min(score, geom::chebyshev(q, c));
      if (centers.empty()) score = 0;
      if (score > bestScore) {
        bestScore = score;
        best = q;
      }
    }
    return best;
  }

  /// Places `size` valves within an expanding Chebyshev radius of a fresh
  /// cluster center, pairwise separation >= 2 so no valve is boxed in.
  std::vector<ValveId> placeClusterValves(Chip& chip, std::int32_t size,
                                          std::vector<Point>& centers) {
    const Point center = pickSpreadCenter(centers);
    centers.push_back(center);
    std::vector<ValveId> members;
    std::int32_t radius = std::max<std::int32_t>(2, p_.clusterRadius);
    int attempts = 0;
    while (static_cast<std::int32_t>(members.size()) < size) {
      if (++attempts > 4000) {
        radius += 2;  // dense chip: widen the cluster footprint
        attempts = 0;
        if (radius > std::max(p_.width, p_.height))
          throw std::invalid_argument("generator: cannot place cluster valves");
      }
      Point q = {center.x + randInt(rng_, -radius, radius),
                 center.y + randInt(rng_, -radius, radius)};
      if (!isInterior(q)) continue;
      if (distToValves(q) < 2) continue;
      members.push_back(addValve(chip, q));
    }
    return members;
  }

  ValveId addValve(Chip& chip, Point q) {
    const auto id = static_cast<ValveId>(chip.valves.size());
    chip.valves.push_back({id, q, ActivationSequence()});
    valveCells_.push_back(q);
    return id;
  }

  void placeValves(Chip& chip) {
    std::vector<Point> centers;
    for (const std::int32_t size : p_.lmClusterSizes)
      chip.givenClusters.push_back({placeClusterValves(chip, size, centers), true});
    for (const std::int32_t size : p_.plainClusterSizes)
      chip.givenClusters.push_back({placeClusterValves(chip, size, centers), false});

    // Remaining valves are singletons scattered across the chip.
    int attempts = 0;
    while (static_cast<std::int32_t>(chip.valves.size()) < p_.valveCount) {
      if (++attempts > 100000)
        throw std::invalid_argument("generator: cannot place singleton valves");
      const Point q = randomInterior();
      if (distToValves(q) < 2) continue;
      addValve(chip, q);
    }
  }

  void placeObstacles(Chip& chip) {
    std::unordered_set<Point> cells;
    int attempts = 0;
    while (static_cast<std::int32_t>(cells.size()) < p_.obstacleCellCount) {
      if (++attempts > 200000)
        throw std::invalid_argument("generator: cannot place obstacles");
      const Point q = randomInterior();
      // Keep a free ring around every valve so terminals stay reachable.
      if (distToValves(q) < 2) continue;
      // Short horizontal/vertical strips emulate flow-layer via blockages.
      const std::int32_t len = randInt(rng_, 1, 3);
      const bool horizontal = (rng_() & 1u) != 0;
      for (std::int32_t k = 0; k < len; ++k) {
        const Point c = horizontal ? Point{q.x + k, q.y} : Point{q.x, q.y + k};
        if (!isInterior(c) || distToValves(c) < 2) break;
        if (static_cast<std::int32_t>(cells.size()) >= p_.obstacleCellCount) break;
        cells.insert(c);
      }
    }
    chip.obstacles.assign(cells.begin(), cells.end());
    std::sort(chip.obstacles.begin(), chip.obstacles.end());
  }

  void assignSequences(Chip& chip) {
    assignGroupSequences(chip, p_.sequenceLength, rng_);
  }

  const GeneratorParams& p_;
  std::mt19937 rng_;
  std::vector<Point> valveCells_;
};

GeneratorParams preset(std::string name, std::int32_t w, std::int32_t h,
                       std::int32_t valves, std::int32_t pins, std::int32_t obs,
                       std::vector<std::int32_t> lmSizes, std::int32_t radius,
                       std::uint32_t seed) {
  GeneratorParams p;
  p.name = std::move(name);
  p.width = w;
  p.height = h;
  p.valveCount = valves;
  p.pinCount = pins;
  p.obstacleCellCount = obs;
  p.lmClusterSizes = std::move(lmSizes);
  p.clusterRadius = radius;
  p.seed = seed;
  return p;
}

/// `count` cluster sizes drawn from a fixed pattern (mostly pairs, some
/// triples/quads), matching the papers' mix of functional units.
std::vector<std::int32_t> patternSizes(std::size_t count) {
  static constexpr std::int32_t kPattern[] = {2, 2, 3, 2, 2, 4, 2, 3, 2, 2};
  std::vector<std::int32_t> sizes(count);
  for (std::size_t i = 0; i < count; ++i) sizes[i] = kPattern[i % std::size(kPattern)];
  return sizes;
}

}  // namespace

Chip generateChip(const GeneratorParams& params) { return Builder(params).build(); }

GeneratorParams chip1Params() {
  return preset("Chip1", 179, 413, 176, 556, 1800, patternSizes(40), 6, 20151);
}

GeneratorParams chip2Params() {
  // The paper notes Chip2 contains only two-valve clusters.
  return preset("Chip2", 231, 265, 56, 495, 1863, std::vector<std::int32_t>(22, 2), 6,
                20152);
}

GeneratorParams s1Params() {
  return preset("S1", 12, 12, 5, 14, 9, {2, 2}, 3, 101);
}

GeneratorParams s2Params() {
  return preset("S2", 22, 22, 10, 40, 54, {3, 2}, 4, 102);
}

GeneratorParams s3Params() {
  return preset("S3", 52, 52, 15, 93, 0, {2, 2, 3, 2, 2}, 5, 103);
}

GeneratorParams s4Params() {
  return preset("S4", 72, 72, 20, 139, 27, {2, 3, 2, 2, 3, 2, 2}, 5, 104);
}

GeneratorParams s5Params() {
  return preset("S5", 152, 152, 40, 306, 135, patternSizes(13), 6, 105);
}

std::vector<GeneratorParams> table1Designs() {
  return {chip1Params(), chip2Params(), s1Params(), s2Params(),
          s3Params(),    s4Params(),    s5Params()};
}

GeneratorParams stressParams(std::uint32_t seed) {
  GeneratorParams p =
      preset("Stress" + std::to_string(seed), 64, 64, 44, 40, 320,
             {3, 4, 3, 2, 3, 4, 2, 3, 3, 2, 4, 3}, 5, 7'000 + seed);
  return p;
}

GeneratorParams randomParams(std::uint32_t seed) {
  // Decorrelate the parameter stream from the Builder's placement stream
  // (which reuses the same seed).
  std::mt19937 rng(seed * 2654435761u + 0x9e3779b9u);
  GeneratorParams p;
  p.name = "Fuzz" + std::to_string(seed);
  p.width = randInt(rng, 14, 44);
  p.height = randInt(rng, 14, 44);
  p.clusterRadius = randInt(rng, 3, 6);
  p.delta = randInt(rng, 1, 4);
  p.sequenceLength = randInt(rng, 8, 24);
  p.seed = seed;

  const std::int32_t lmClusters = randInt(rng, 1, 4);
  for (std::int32_t i = 0; i < lmClusters; ++i)
    p.lmClusterSizes.push_back(randInt(rng, 2, 4));
  const std::int32_t plainClusters = randInt(rng, 0, 2);
  for (std::int32_t i = 0; i < plainClusters; ++i)
    p.plainClusterSizes.push_back(randInt(rng, 2, 3));

  std::int32_t clustered = 0;
  for (const auto s : p.lmClusterSizes) clustered += s;
  for (const auto s : p.plainClusterSizes) clustered += s;
  p.valveCount = clustered + randInt(rng, 0, 5);

  // Feasibility margins mirror the Builder's checks: valves need a 4x
  // interior allowance, obstacles fill part of what remains.
  const std::int64_t interior =
      static_cast<std::int64_t>(p.width - 4) * (p.height - 4);
  const std::int64_t spare = interior - 4 * p.valveCount;
  if (spare > 0)
    p.obstacleCellCount =
        static_cast<std::int32_t>(std::min<std::int64_t>(spare / 2, interior * randInt(rng, 0, 10) / 100));

  const std::int64_t boundary = 2 * (static_cast<std::int64_t>(p.width) + p.height) - 4;
  const std::int32_t wantPins =
      static_cast<std::int32_t>(p.lmClusterSizes.size() + p.plainClusterSizes.size()) +
      p.valveCount + randInt(rng, 4, 12);
  p.pinCount = static_cast<std::int32_t>(std::min<std::int64_t>(wantPins, boundary));
  return p;
}

// --------------------------------------------------------------------------
// FPVA valve arrays.

namespace {

[[noreturn]] void fpvaFail(const std::string& what) {
  throw std::invalid_argument("fpva generator: " + what);
}

/// Distance from coordinate v to the nearest lattice coordinate
/// margin + k * pitch, k in [0, count).
std::int32_t axisDistToLattice(std::int32_t v, std::int32_t margin,
                               std::int32_t pitch, std::int32_t count) {
  if (v <= margin) return margin - v;
  const std::int32_t last = margin + (count - 1) * pitch;
  if (v >= last) return v - last;
  const std::int32_t rem = (v - margin) % pitch;
  return std::min(rem, pitch - rem);
}

}  // namespace

Chip generateFpvaChip(const FpvaParams& params) {
  FpvaParams p = params;
  if (p.rows < 2 || p.cols < 2) fpvaFail("array must be at least 2x2 valves");
  // Auto-scaled defaults (pitch/block = 0), calibrated so the default
  // instance of every size escape-routes to completion: larger arrays
  // need wider corridors between valves and larger cluster blocks (fewer
  // simultaneous cell-disjoint escape paths).
  const std::int32_t n = std::max(p.rows, p.cols);
  if (p.pitch == 0) p.pitch = n <= 16 ? 4 : n <= 32 ? 5 : n <= 64 ? 7 : 8;
  if (p.blockRows == 0 && p.blockCols == 0) {
    if (n <= 24) { p.blockRows = 2; p.blockCols = 2; }
    else if (n <= 32) { p.blockRows = 2; p.blockCols = 4; }
    else if (n <= 64) { p.blockRows = 4; p.blockCols = 4; }
    else { p.blockRows = 4; p.blockCols = 8; }
  } else if (p.blockRows == 0 || p.blockCols == 0) {
    fpvaFail("block rows and columns must be set together");
  }
  if (p.pitch < 3) fpvaFail("pitch must be >= 3 (valves need a free ring)");
  if (p.margin < 2) fpvaFail("margin must be >= 2");
  if (p.blockRows < 1 || p.blockCols < 1 || p.blockRows * p.blockCols < 2)
    fpvaFail("cluster blocks must hold at least 2 valves");
  if (p.lmPercent < 0 || p.lmPercent > 100) fpvaFail("lm percent must be in [0, 100]");
  if (p.obstaclePermille < 0 || p.obstaclePermille > 300)
    fpvaFail("obstacle density must be in [0, 300] per mille");
  if (p.extraPins < 0) fpvaFail("extra pin count must be >= 0");

  // Checked grid-size arithmetic: every product stays in int64 until it
  // is proven to fit the int32 cell-index range (bugfix satellite -- an
  // oversized array must fail loudly here, not corrupt indices later).
  const std::int64_t w64 =
      2 * static_cast<std::int64_t>(p.margin) + (static_cast<std::int64_t>(p.cols) - 1) * p.pitch + 1;
  const std::int64_t h64 =
      2 * static_cast<std::int64_t>(p.margin) + (static_cast<std::int64_t>(p.rows) - 1) * p.pitch + 1;
  if (w64 < 8 || h64 < 8) fpvaFail("array too small: grid must be at least 8x8");
  if (w64 > grid::Grid::kMaxCells || h64 > grid::Grid::kMaxCells ||
      w64 * h64 > grid::Grid::kMaxCells)
    fpvaFail("grid " + std::to_string(w64) + "x" + std::to_string(h64) +
             " exceeds the int32 cell-index range");
  const auto w = static_cast<std::int32_t>(w64);
  const auto h = static_cast<std::int32_t>(h64);

  // Ragged block grid: the last block row/column absorbs the remainder,
  // so every block holds >= blockRows * blockCols >= 2 valves.
  const std::int32_t numBlockRows = std::max(1, p.rows / p.blockRows);
  const std::int32_t numBlockCols = std::max(1, p.cols / p.blockCols);
  const std::int64_t blocks =
      static_cast<std::int64_t>(numBlockRows) * numBlockCols;
  const std::int64_t boundary = 2 * (static_cast<std::int64_t>(w) + h) - 4;
  if (blocks > boundary)
    fpvaFail("array needs " + std::to_string(blocks) +
             " control pins but the boundary has only " + std::to_string(boundary) +
             " cells; increase pitch or the cluster-block size");
  const auto pinCount = static_cast<std::int32_t>(
      std::min<std::int64_t>(blocks + p.extraPins, boundary));

  Chip chip;
  chip.name = p.name.empty()
                  ? "fpva_" + std::to_string(p.rows) + "x" + std::to_string(p.cols)
                  : p.name;
  chip.routingGrid = grid::Grid(w, h);
  chip.delta = p.delta;

  std::mt19937 rng(p.seed);
  placeBoundaryPins(chip, pinCount, rng);

  // Valves on the lattice, row-major: valve (i, j) has id i * cols + j.
  for (std::int32_t i = 0; i < p.rows; ++i)
    for (std::int32_t j = 0; j < p.cols; ++j)
      chip.valves.push_back({static_cast<ValveId>(i * p.cols + j),
                             {p.margin + j * p.pitch, p.margin + i * p.pitch},
                             ActivationSequence()});

  // Cluster blocks in row-major block order. The length-matching flag is
  // spread evenly and deterministically over the blocks (independent of
  // the rng stream): block b is matched iff the running lmPercent quota
  // gains a unit at b.
  std::vector<std::vector<ValveId>> members(static_cast<std::size_t>(blocks));
  for (std::int32_t i = 0; i < p.rows; ++i)
    for (std::int32_t j = 0; j < p.cols; ++j) {
      const std::int32_t bi = std::min(i / p.blockRows, numBlockRows - 1);
      const std::int32_t bj = std::min(j / p.blockCols, numBlockCols - 1);
      members[static_cast<std::size_t>(bi) * static_cast<std::size_t>(numBlockCols) +
              static_cast<std::size_t>(bj)]
          .push_back(static_cast<ValveId>(i * p.cols + j));
    }
  for (std::int64_t b = 0; b < blocks; ++b) {
    const bool lm = (b + 1) * p.lmPercent / 100 > b * p.lmPercent / 100;
    chip.givenClusters.push_back({std::move(members[static_cast<std::size_t>(b)]), lm});
  }

  // Obstacle sprinkling: short strips as in the Table-1 generator, but
  // the valve keep-out test is the O(1) lattice distance, not a linear
  // scan over every valve -- the Table-1 path is quadratic at FPVA scale.
  const auto distToValve = [&](Point q) {
    return std::max(axisDistToLattice(q.x, p.margin, p.pitch, p.cols),
                    axisDistToLattice(q.y, p.margin, p.pitch, p.rows));
  };
  const std::int64_t interior =
      static_cast<std::int64_t>(w - 4) * (h - 4);
  const std::int64_t valveFootprint = static_cast<std::int64_t>(p.rows) * p.cols * 4;
  const std::int64_t spare = std::max<std::int64_t>(0, interior - valveFootprint);
  const auto obstacleTarget = static_cast<std::int32_t>(std::min(
      spare / 2, interior * p.obstaclePermille / 1000));
  if (obstacleTarget > 0) {
    std::unordered_set<Point> cells;
    const auto isInterior = [&](Point q) {
      return q.x >= 2 && q.x < w - 2 && q.y >= 2 && q.y < h - 2;
    };
    int attempts = 0;
    while (static_cast<std::int32_t>(cells.size()) < obstacleTarget) {
      if (++attempts > 400000) break;  // dense array: place what fits
      const Point q{randInt(rng, 2, w - 3), randInt(rng, 2, h - 3)};
      if (distToValve(q) < 2) continue;
      const std::int32_t len = randInt(rng, 1, 3);
      const bool horizontal = (rng() & 1u) != 0;
      for (std::int32_t k = 0; k < len; ++k) {
        const Point c = horizontal ? Point{q.x + k, q.y} : Point{q.x, q.y + k};
        if (!isInterior(c) || distToValve(c) < 2) break;
        if (static_cast<std::int32_t>(cells.size()) >= obstacleTarget) break;
        cells.insert(c);
      }
    }
    chip.obstacles.assign(cells.begin(), cells.end());
    std::sort(chip.obstacles.begin(), chip.obstacles.end());
  }

  assignGroupSequences(chip, p.sequenceLength, rng);

  if (const auto err = chip.validate())
    throw std::logic_error("fpva generator produced invalid chip: " + *err);
  return chip;
}

bool isFpvaSpec(const std::string& name) { return name.rfind("fpva:", 0) == 0; }

FpvaParams parseFpvaSpec(const std::string& spec) {
  std::string body = isFpvaSpec(spec) ? spec.substr(5) : spec;
  if (body.empty()) fpvaFail("empty spec");
  for (char& c : body)
    if (c == ',') c = ':';

  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= body.size()) {
    const std::size_t colon = body.find(':', start);
    const std::size_t end = colon == std::string::npos ? body.size() : colon;
    if (end > start) tokens.push_back(body.substr(start, end - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (tokens.empty()) fpvaFail("empty spec");

  const auto parseInt = [](const std::string& text, const std::string& what) {
    try {
      std::size_t used = 0;
      const long long v = std::stoll(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
      return v;
    } catch (const std::exception&) {
      fpvaFail("malformed " + what + " '" + text + "'");
    }
  };
  const auto parseDims = [&](const std::string& text, const std::string& what,
                             std::int32_t& rowsOut, std::int32_t& colsOut) {
    const std::size_t x = text.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= text.size())
      fpvaFail("malformed " + what + " '" + text + "' (want ROWSxCOLS)");
    rowsOut = static_cast<std::int32_t>(parseInt(text.substr(0, x), what));
    colsOut = static_cast<std::int32_t>(parseInt(text.substr(x + 1), what));
  };

  FpvaParams p;
  parseDims(tokens.front(), "array size", p.rows, p.cols);
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) fpvaFail("expected key=value, got '" + tok + "'");
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "pitch") p.pitch = static_cast<std::int32_t>(parseInt(val, key));
    else if (key == "margin") p.margin = static_cast<std::int32_t>(parseInt(val, key));
    else if (key == "block") parseDims(val, key, p.blockRows, p.blockCols);
    else if (key == "lm") p.lmPercent = static_cast<std::int32_t>(parseInt(val, key));
    else if (key == "obs") p.obstaclePermille = static_cast<std::int32_t>(parseInt(val, key));
    else if (key == "pins") p.extraPins = static_cast<std::int32_t>(parseInt(val, key));
    else if (key == "seq") p.sequenceLength = static_cast<std::int32_t>(parseInt(val, key));
    else if (key == "delta") p.delta = parseInt(val, key);
    else if (key == "seed") p.seed = static_cast<std::uint32_t>(parseInt(val, key));
    else fpvaFail("unknown key '" + key + "'");
  }
  return p;
}

FpvaParams randomFpvaParams(std::uint32_t seed) {
  // Decorrelate the parameter stream from the placement stream, as in
  // randomParams.
  std::mt19937 rng(seed * 2654435761u + 0x517cc1b7u);
  FpvaParams p;
  p.name = "FpvaFuzz" + std::to_string(seed);
  p.rows = randInt(rng, 3, 7);
  p.cols = randInt(rng, 3, 7);
  p.pitch = randInt(rng, 3, 5);
  p.margin = randInt(rng, 2, 4);
  p.blockRows = randInt(rng, 1, 2);
  p.blockCols = randInt(rng, 1, 2);
  if (p.blockRows * p.blockCols < 2) p.blockCols = 2;
  p.lmPercent = randInt(rng, 0, 100);
  p.obstaclePermille = randInt(rng, 0, 40);
  p.extraPins = randInt(rng, 4, 16);
  p.sequenceLength = randInt(rng, 8, 20);
  p.delta = randInt(rng, 1, 4);
  p.seed = seed;
  return p;
}

}  // namespace pacor::chip
