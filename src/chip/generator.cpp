#include "chip/generator.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <unordered_set>

namespace pacor::chip {
namespace {

/// Deterministic uniform int in [lo, hi] (modulo; bias irrelevant for
/// benchmark synthesis and stable across standard libraries, unlike
/// std::uniform_int_distribution).
std::int32_t randInt(std::mt19937& rng, std::int32_t lo, std::int32_t hi) {
  return lo + static_cast<std::int32_t>(rng() % static_cast<std::uint32_t>(hi - lo + 1));
}

class Builder {
 public:
  explicit Builder(const GeneratorParams& p) : p_(p), rng_(p.seed) {
    if (p.width < 8 || p.height < 8)
      throw std::invalid_argument("generator: chip must be at least 8x8");
    std::int64_t clusteredValves = 0;
    for (const auto s : p.lmClusterSizes) {
      if (s < 2) throw std::invalid_argument("generator: cluster sizes must be >= 2");
      clusteredValves += s;
    }
    for (const auto s : p.plainClusterSizes) {
      if (s < 2) throw std::invalid_argument("generator: cluster sizes must be >= 2");
      clusteredValves += s;
    }
    if (clusteredValves > p.valveCount)
      throw std::invalid_argument("generator: cluster sizes exceed valve count");
    const std::int64_t interior =
        static_cast<std::int64_t>(p.width - 2 * kMargin) * (p.height - 2 * kMargin);
    if (p.valveCount * 4 + p.obstacleCellCount > interior)
      throw std::invalid_argument("generator: chip too small for valves + obstacles");
    const std::int64_t boundary = 2 * (static_cast<std::int64_t>(p.width) + p.height) - 4;
    if (p.pinCount > boundary)
      throw std::invalid_argument("generator: more pins than boundary cells");
  }

  Chip build() {
    Chip chip;
    chip.name = p_.name;
    chip.routingGrid = grid::Grid(p_.width, p_.height);
    chip.delta = p_.delta;

    placePins(chip);
    placeValves(chip);
    placeObstacles(chip);
    assignSequences(chip);

    if (const auto err = chip.validate())
      throw std::logic_error("generator produced invalid chip: " + *err);
    return chip;
  }

 private:
  static constexpr std::int32_t kMargin = 2;  ///< valve/obstacle keep-out ring

  bool isInterior(Point q) const {
    return q.x >= kMargin && q.x < p_.width - kMargin && q.y >= kMargin &&
           q.y < p_.height - kMargin;
  }

  Point randomInterior() {
    return {randInt(rng_, kMargin, p_.width - 1 - kMargin),
            randInt(rng_, kMargin, p_.height - 1 - kMargin)};
  }

  /// Min Chebyshev distance from q to all placed valve cells.
  std::int64_t distToValves(Point q) const {
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const Point v : valveCells_) best = std::min(best, geom::chebyshev(q, v));
    return best;
  }

  void placePins(Chip& chip) {
    const auto boundary = chip.routingGrid.boundaryCells();
    const std::size_t n = boundary.size();
    const std::size_t offset = rng_() % n;
    for (std::int32_t i = 0; i < p_.pinCount; ++i) {
      // Evenly spread with a random rotation; indices are distinct because
      // pinCount <= n (checked in the constructor).
      const std::size_t idx =
          (offset + static_cast<std::size_t>(i) * n / static_cast<std::size_t>(p_.pinCount)) % n;
      chip.pins.push_back({static_cast<PinId>(i), boundary[idx]});
    }
  }

  /// Picks a free interior cell maximizing min distance to `centers`
  /// (best-of-k sampling) so clusters spread over the chip.
  Point pickSpreadCenter(const std::vector<Point>& centers) {
    Point best = randomInterior();
    std::int64_t bestScore = -1;
    for (int tries = 0; tries < 24; ++tries) {
      const Point q = randomInterior();
      std::int64_t score = std::numeric_limits<std::int64_t>::max();
      for (const Point c : centers) score = std::min(score, geom::chebyshev(q, c));
      if (centers.empty()) score = 0;
      if (score > bestScore) {
        bestScore = score;
        best = q;
      }
    }
    return best;
  }

  /// Places `size` valves within an expanding Chebyshev radius of a fresh
  /// cluster center, pairwise separation >= 2 so no valve is boxed in.
  std::vector<ValveId> placeClusterValves(Chip& chip, std::int32_t size,
                                          std::vector<Point>& centers) {
    const Point center = pickSpreadCenter(centers);
    centers.push_back(center);
    std::vector<ValveId> members;
    std::int32_t radius = std::max<std::int32_t>(2, p_.clusterRadius);
    int attempts = 0;
    while (static_cast<std::int32_t>(members.size()) < size) {
      if (++attempts > 4000) {
        radius += 2;  // dense chip: widen the cluster footprint
        attempts = 0;
        if (radius > std::max(p_.width, p_.height))
          throw std::invalid_argument("generator: cannot place cluster valves");
      }
      Point q = {center.x + randInt(rng_, -radius, radius),
                 center.y + randInt(rng_, -radius, radius)};
      if (!isInterior(q)) continue;
      if (distToValves(q) < 2) continue;
      members.push_back(addValve(chip, q));
    }
    return members;
  }

  ValveId addValve(Chip& chip, Point q) {
    const auto id = static_cast<ValveId>(chip.valves.size());
    chip.valves.push_back({id, q, ActivationSequence()});
    valveCells_.push_back(q);
    return id;
  }

  void placeValves(Chip& chip) {
    std::vector<Point> centers;
    for (const std::int32_t size : p_.lmClusterSizes)
      chip.givenClusters.push_back({placeClusterValves(chip, size, centers), true});
    for (const std::int32_t size : p_.plainClusterSizes)
      chip.givenClusters.push_back({placeClusterValves(chip, size, centers), false});

    // Remaining valves are singletons scattered across the chip.
    int attempts = 0;
    while (static_cast<std::int32_t>(chip.valves.size()) < p_.valveCount) {
      if (++attempts > 100000)
        throw std::invalid_argument("generator: cannot place singleton valves");
      const Point q = randomInterior();
      if (distToValves(q) < 2) continue;
      addValve(chip, q);
    }
  }

  void placeObstacles(Chip& chip) {
    std::unordered_set<Point> cells;
    int attempts = 0;
    while (static_cast<std::int32_t>(cells.size()) < p_.obstacleCellCount) {
      if (++attempts > 200000)
        throw std::invalid_argument("generator: cannot place obstacles");
      const Point q = randomInterior();
      // Keep a free ring around every valve so terminals stay reachable.
      if (distToValves(q) < 2) continue;
      // Short horizontal/vertical strips emulate flow-layer via blockages.
      const std::int32_t len = randInt(rng_, 1, 3);
      const bool horizontal = (rng_() & 1u) != 0;
      for (std::int32_t k = 0; k < len; ++k) {
        const Point c = horizontal ? Point{q.x + k, q.y} : Point{q.x, q.y + k};
        if (!isInterior(c) || distToValves(c) < 2) break;
        if (static_cast<std::int32_t>(cells.size()) >= p_.obstacleCellCount) break;
        cells.insert(c);
      }
    }
    chip.obstacles.assign(cells.begin(), cells.end());
    std::sort(chip.obstacles.begin(), chip.obstacles.end());
  }

  void assignSequences(Chip& chip) {
    // Group id per valve: each given cluster is one group; each singleton
    // its own group. Groups get unique binary codes on the leading steps,
    // making cross-group valves provably incompatible and group members
    // compatible (code + shared random base, X's elsewhere).
    std::vector<std::size_t> groupOf(chip.valves.size());
    std::size_t groups = 0;
    {
      std::vector<bool> inCluster(chip.valves.size(), false);
      for (const auto& cluster : chip.givenClusters) {
        for (const ValveId v : cluster.valves) {
          groupOf[static_cast<std::size_t>(v)] = groups;
          inCluster[static_cast<std::size_t>(v)] = true;
        }
        ++groups;
      }
      for (std::size_t v = 0; v < chip.valves.size(); ++v)
        if (!inCluster[v]) groupOf[v] = groups++;
    }

    std::int32_t codeLen = 1;
    while ((std::size_t{1} << codeLen) < groups) ++codeLen;
    const std::int32_t seqLen = std::max(p_.sequenceLength, codeLen + 2);

    std::vector<std::string> base(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      std::string s(static_cast<std::size_t>(seqLen), '0');
      for (std::int32_t b = 0; b < codeLen; ++b)
        s[static_cast<std::size_t>(b)] = ((g >> b) & 1) ? '1' : '0';
      for (std::int32_t i = codeLen; i < seqLen; ++i)
        s[static_cast<std::size_t>(i)] = (rng_() & 1u) ? '1' : '0';
      base[g] = std::move(s);
    }
    for (auto& valve : chip.valves) {
      std::string s = base[groupOf[static_cast<std::size_t>(valve.id)]];
      for (std::int32_t i = codeLen; i < seqLen; ++i)
        if (rng_() % 4 == 0) s[static_cast<std::size_t>(i)] = 'X';
      valve.sequence = ActivationSequence(s);
    }
  }

  const GeneratorParams& p_;
  std::mt19937 rng_;
  std::vector<Point> valveCells_;
};

GeneratorParams preset(std::string name, std::int32_t w, std::int32_t h,
                       std::int32_t valves, std::int32_t pins, std::int32_t obs,
                       std::vector<std::int32_t> lmSizes, std::int32_t radius,
                       std::uint32_t seed) {
  GeneratorParams p;
  p.name = std::move(name);
  p.width = w;
  p.height = h;
  p.valveCount = valves;
  p.pinCount = pins;
  p.obstacleCellCount = obs;
  p.lmClusterSizes = std::move(lmSizes);
  p.clusterRadius = radius;
  p.seed = seed;
  return p;
}

/// `count` cluster sizes drawn from a fixed pattern (mostly pairs, some
/// triples/quads), matching the papers' mix of functional units.
std::vector<std::int32_t> patternSizes(std::size_t count) {
  static constexpr std::int32_t kPattern[] = {2, 2, 3, 2, 2, 4, 2, 3, 2, 2};
  std::vector<std::int32_t> sizes(count);
  for (std::size_t i = 0; i < count; ++i) sizes[i] = kPattern[i % std::size(kPattern)];
  return sizes;
}

}  // namespace

Chip generateChip(const GeneratorParams& params) { return Builder(params).build(); }

GeneratorParams chip1Params() {
  return preset("Chip1", 179, 413, 176, 556, 1800, patternSizes(40), 6, 20151);
}

GeneratorParams chip2Params() {
  // The paper notes Chip2 contains only two-valve clusters.
  return preset("Chip2", 231, 265, 56, 495, 1863, std::vector<std::int32_t>(22, 2), 6,
                20152);
}

GeneratorParams s1Params() {
  return preset("S1", 12, 12, 5, 14, 9, {2, 2}, 3, 101);
}

GeneratorParams s2Params() {
  return preset("S2", 22, 22, 10, 40, 54, {3, 2}, 4, 102);
}

GeneratorParams s3Params() {
  return preset("S3", 52, 52, 15, 93, 0, {2, 2, 3, 2, 2}, 5, 103);
}

GeneratorParams s4Params() {
  return preset("S4", 72, 72, 20, 139, 27, {2, 3, 2, 2, 3, 2, 2}, 5, 104);
}

GeneratorParams s5Params() {
  return preset("S5", 152, 152, 40, 306, 135, patternSizes(13), 6, 105);
}

std::vector<GeneratorParams> table1Designs() {
  return {chip1Params(), chip2Params(), s1Params(), s2Params(),
          s3Params(),    s4Params(),    s5Params()};
}

GeneratorParams stressParams(std::uint32_t seed) {
  GeneratorParams p =
      preset("Stress" + std::to_string(seed), 64, 64, 44, 40, 320,
             {3, 4, 3, 2, 3, 4, 2, 3, 3, 2, 4, 3}, 5, 7'000 + seed);
  return p;
}

GeneratorParams randomParams(std::uint32_t seed) {
  // Decorrelate the parameter stream from the Builder's placement stream
  // (which reuses the same seed).
  std::mt19937 rng(seed * 2654435761u + 0x9e3779b9u);
  GeneratorParams p;
  p.name = "Fuzz" + std::to_string(seed);
  p.width = randInt(rng, 14, 44);
  p.height = randInt(rng, 14, 44);
  p.clusterRadius = randInt(rng, 3, 6);
  p.delta = randInt(rng, 1, 4);
  p.sequenceLength = randInt(rng, 8, 24);
  p.seed = seed;

  const std::int32_t lmClusters = randInt(rng, 1, 4);
  for (std::int32_t i = 0; i < lmClusters; ++i)
    p.lmClusterSizes.push_back(randInt(rng, 2, 4));
  const std::int32_t plainClusters = randInt(rng, 0, 2);
  for (std::int32_t i = 0; i < plainClusters; ++i)
    p.plainClusterSizes.push_back(randInt(rng, 2, 3));

  std::int32_t clustered = 0;
  for (const auto s : p.lmClusterSizes) clustered += s;
  for (const auto s : p.plainClusterSizes) clustered += s;
  p.valveCount = clustered + randInt(rng, 0, 5);

  // Feasibility margins mirror the Builder's checks: valves need a 4x
  // interior allowance, obstacles fill part of what remains.
  const std::int64_t interior =
      static_cast<std::int64_t>(p.width - 4) * (p.height - 4);
  const std::int64_t spare = interior - 4 * p.valveCount;
  if (spare > 0)
    p.obstacleCellCount =
        static_cast<std::int32_t>(std::min<std::int64_t>(spare / 2, interior * randInt(rng, 0, 10) / 100));

  const std::int64_t boundary = 2 * (static_cast<std::int64_t>(p.width) + p.height) - 4;
  const std::int32_t wantPins =
      static_cast<std::int32_t>(p.lmClusterSizes.size() + p.plainClusterSizes.size()) +
      p.valveCount + randInt(rng, 4, 12);
  p.pinCount = static_cast<std::int32_t>(std::min<std::int64_t>(wantPins, boundary));
  return p;
}

}  // namespace pacor::chip
