#include "chip/stats.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

namespace pacor::chip {

ChipStats computeStats(const Chip& chip) {
  ChipStats stats;
  stats.name = chip.name;
  stats.width = chip.routingGrid.width();
  stats.height = chip.routingGrid.height();
  stats.valveCount = chip.valves.size();
  stats.pinCount = chip.pins.size();
  stats.obstacleCount = chip.obstacles.size();

  const auto cells = static_cast<double>(chip.routingGrid.cellCount());
  stats.obstacleDensity = cells > 0 ? static_cast<double>(chip.obstacles.size()) / cells : 0;
  stats.valveDensity = cells > 0 ? static_cast<double>(chip.valves.size()) / cells : 0;

  double diameterSum = 0.0;
  for (const ValveCluster& c : chip.givenClusters) {
    ++stats.clusterCount;
    if (c.lengthMatched) ++stats.matchedClusterCount;
    stats.largestClusterSize = std::max(stats.largestClusterSize, c.valves.size());
    std::int64_t diameter = 0;
    for (std::size_t i = 0; i < c.valves.size(); ++i)
      for (std::size_t j = i + 1; j < c.valves.size(); ++j)
        diameter = std::max(diameter, geom::manhattan(chip.valve(c.valves[i]).pos,
                                                      chip.valve(c.valves[j]).pos));
    diameterSum += static_cast<double>(diameter);
  }
  if (stats.clusterCount > 0)
    stats.meanClusterDiameter = diameterSum / static_cast<double>(stats.clusterCount);

  std::size_t compatiblePairs = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < chip.valves.size(); ++i)
    for (std::size_t j = i + 1; j < chip.valves.size(); ++j) {
      ++pairs;
      if (chip.valves[i].sequence.compatibleWith(chip.valves[j].sequence))
        ++compatiblePairs;
    }
  stats.compatibilityDensity =
      pairs > 0 ? static_cast<double>(compatiblePairs) / static_cast<double>(pairs) : 0;

  std::int64_t minDist = std::numeric_limits<std::int64_t>::max();
  for (const Valve& v : chip.valves)
    for (const ControlPin& p : chip.pins)
      minDist = std::min(minDist, geom::manhattan(v.pos, p.pos));
  stats.minValveToPinDistance =
      (chip.valves.empty() || chip.pins.empty()) ? 0 : minDist;
  return stats;
}

std::ostream& operator<<(std::ostream& os, const ChipStats& stats) {
  os << "design " << stats.name << ": " << stats.width << 'x' << stats.height << ", "
     << stats.valveCount << " valves, " << stats.pinCount << " candidate pins, "
     << stats.obstacleCount << " blocked cells\n";
  os << "  clusters: " << stats.clusterCount << " (" << stats.matchedClusterCount
     << " length-matched, largest " << stats.largestClusterSize
     << " valves, mean diameter " << stats.meanClusterDiameter << ")\n";
  os << "  densities: obstacles " << stats.obstacleDensity << ", valves "
     << stats.valveDensity << ", compatibility " << stats.compatibilityDensity << '\n';
  os << "  nearest valve-to-pin distance: " << stats.minValveToPinDistance << '\n';
  return os;
}

}  // namespace pacor::chip
