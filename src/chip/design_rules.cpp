// DesignRules is header-only; this TU anchors the target.
#include "chip/design_rules.hpp"
