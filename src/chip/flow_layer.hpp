#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "grid/grid.hpp"

namespace pacor::chip {

/// A flow-layer channel as a rectilinear polyline of grid waypoints
/// (consecutive waypoints share a row or column).
struct FlowChannel {
  std::vector<geom::Point> waypoints;
};

/// A flow-layer component (chamber, mixer coil, reservoir): its footprint
/// is opaque to the control layer (bonding area / multi-height features).
struct FlowComponent {
  std::string kind;
  geom::Rect footprint;
};

/// The flow layer of a two-layer PDMS chip. PACOR never routes flow
/// channels (see Lin et al., DAC'14 for that problem) but the control
/// layer inherits its obstacles from here: this model is where the
/// "#Obs" column of Table 1 physically comes from.
struct FlowLayer {
  std::vector<FlowChannel> channels;
  std::vector<FlowComponent> components;

  /// Structural check: waypoints rectilinear and in bounds, footprints in
  /// bounds. Returns the first problem found.
  std::optional<std::string> validate(const grid::Grid& grid) const;
};

/// Rasterizes the control-layer blockage induced by a flow layer.
/// Component footprints always block. Flow channel cells block
/// *conservatively* (a control channel running along a flow channel would
/// act as an unintended valve membrane), except at declared valve sites
/// -- the one place a control channel is supposed to meet a flow channel.
/// Cells are returned sorted and deduplicated.
std::vector<geom::Point> controlObstacles(const FlowLayer& flow, const grid::Grid& grid,
                                          std::span<const geom::Point> valveSites);

/// Cells covered by one rectilinear channel (its full polyline trace).
std::vector<geom::Point> traceChannel(const FlowChannel& channel);

}  // namespace pacor::chip
