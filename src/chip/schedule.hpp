#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chip/activation.hpp"

namespace pacor::chip {

/// One scheduled fluidic operation: during time steps [start, end) the
/// listed valves must be held open ('0') resp. closed ('1'). This is the
/// output shape of the binding & scheduling stage the paper builds on
/// (Minhass et al., ASP-DAC'13): PACOR's activation sequences "are
/// obtained by the resource binding and scheduling process".
struct ScheduledOperation {
  std::string name;
  std::int32_t start = 0;
  std::int32_t end = 0;  ///< exclusive
  std::vector<std::int32_t> openValves;
  std::vector<std::int32_t> closedValves;
};

/// A bioassay schedule over a fixed horizon of time steps.
struct AssaySchedule {
  std::int32_t horizon = 0;
  std::vector<ScheduledOperation> operations;

  /// First structural problem found, or nullopt: windows inside the
  /// horizon, start < end, no valve listed both open and closed in one
  /// operation.
  std::optional<std::string> validate(std::size_t valveCount) const;
};

/// Control synthesis, step 1: per-valve activation sequences. A time step
/// covered by an operation pins the valve to '0'/'1'; anything not
/// demanded stays 'X' (don't care) -- exactly the freedom the broadcast
/// addressing scheme later exploits to share control pins. Returns
/// nullopt (with `conflict` filled) when two operations demand opposite
/// states of one valve in the same step: the schedule itself is invalid.
std::optional<std::vector<ActivationSequence>> synthesizeSequences(
    const AssaySchedule& schedule, std::size_t valveCount,
    std::string* conflict = nullptr);

/// Synthetic bioassay generator: `groups` valve groups act as functional
/// units (mixer/pump-like), each driven together by a few operations in
/// disjoint or overlapping windows. Deterministic per seed; always
/// produces a conflict-free schedule.
AssaySchedule synthesizeAssay(std::size_t valveCount, std::int32_t horizon,
                              std::size_t groups, std::uint32_t seed);

}  // namespace pacor::chip
