#include "chip/schedule.hpp"

#include <random>
#include <sstream>

namespace pacor::chip {

std::optional<std::string> AssaySchedule::validate(std::size_t valveCount) const {
  if (horizon <= 0) return "horizon must be positive";
  for (const ScheduledOperation& op : operations) {
    if (op.start < 0 || op.end > horizon || op.start >= op.end)
      return "operation '" + op.name + "' has an invalid window";
    for (const auto v : op.openValves)
      if (v < 0 || static_cast<std::size_t>(v) >= valveCount)
        return "operation '" + op.name + "' references unknown valve";
    for (const auto v : op.closedValves) {
      if (v < 0 || static_cast<std::size_t>(v) >= valveCount)
        return "operation '" + op.name + "' references unknown valve";
      for (const auto o : op.openValves)
        if (o == v)
          return "operation '" + op.name + "' lists valve " + std::to_string(v) +
                 " both open and closed";
    }
  }
  return std::nullopt;
}

std::optional<std::vector<ActivationSequence>> synthesizeSequences(
    const AssaySchedule& schedule, std::size_t valveCount, std::string* conflict) {
  // steps[v][t]: ' ' undemanded, '0' open, '1' closed.
  std::vector<std::string> steps(valveCount,
                                 std::string(static_cast<std::size_t>(schedule.horizon), ' '));
  const auto demand = [&](std::int32_t valve, const ScheduledOperation& op,
                          char state) -> bool {
    for (std::int32_t t = op.start; t < op.end; ++t) {
      char& cell = steps[static_cast<std::size_t>(valve)][static_cast<std::size_t>(t)];
      if (cell != ' ' && cell != state) {
        if (conflict != nullptr) {
          std::ostringstream os;
          os << "valve " << valve << " demanded both open and closed at step " << t
             << " (operation '" << op.name << "')";
          *conflict = os.str();
        }
        return false;
      }
      cell = state;
    }
    return true;
  };

  for (const ScheduledOperation& op : schedule.operations) {
    for (const auto v : op.openValves)
      if (!demand(v, op, '0')) return std::nullopt;
    for (const auto v : op.closedValves)
      if (!demand(v, op, '1')) return std::nullopt;
  }

  std::vector<ActivationSequence> out;
  out.reserve(valveCount);
  for (std::string& s : steps) {
    for (char& c : s)
      if (c == ' ') c = 'X';
    out.emplace_back(s);
  }
  return out;
}

AssaySchedule synthesizeAssay(std::size_t valveCount, std::int32_t horizon,
                              std::size_t groups, std::uint32_t seed) {
  AssaySchedule schedule;
  schedule.horizon = horizon;
  if (valveCount == 0 || groups == 0 || horizon <= 1) return schedule;
  std::mt19937 rng(seed);

  // Valves are dealt round-robin into functional groups; each group gets
  // 1-3 operations in random conflict-free windows (per group, windows
  // may overlap only with identical state demands -- we simply make each
  // operation's window disjoint from the group's previous ones).
  std::vector<std::vector<std::int32_t>> members(groups);
  for (std::size_t v = 0; v < valveCount; ++v)
    members[v % groups].push_back(static_cast<std::int32_t>(v));

  for (std::size_t g = 0; g < groups; ++g) {
    if (members[g].empty()) continue;
    std::int32_t cursor = static_cast<std::int32_t>(rng() % 2);
    const int opCount = 1 + static_cast<int>(rng() % 3);
    for (int k = 0; k < opCount && cursor + 1 < horizon; ++k) {
      const std::int32_t len =
          1 + static_cast<std::int32_t>(rng() % static_cast<unsigned>(
                                            std::max<std::int32_t>(1, (horizon - cursor) / 2)));
      ScheduledOperation op;
      op.name = "g" + std::to_string(g) + "_op" + std::to_string(k);
      op.start = cursor;
      op.end = std::min<std::int32_t>(horizon, cursor + len);
      // Alternate the group's members between gate (closed) and path
      // (open) roles, as a mixer's peristaltic phases would.
      for (std::size_t i = 0; i < members[g].size(); ++i) {
        if ((i + static_cast<std::size_t>(k)) % 2 == 0)
          op.openValves.push_back(members[g][i]);
        else
          op.closedValves.push_back(members[g][i]);
      }
      schedule.operations.push_back(std::move(op));
      cursor += len + static_cast<std::int32_t>(rng() % 2);
    }
  }
  return schedule;
}

}  // namespace pacor::chip
