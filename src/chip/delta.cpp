#include "chip/delta.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pacor::chip {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("chip delta io: " + what);
}

[[noreturn]] void badOp(const std::string& what) {
  throw std::invalid_argument("chip::apply: " + what);
}

/// Next non-comment, non-blank line; false on EOF.
bool nextLine(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    return true;
  }
  return false;
}

std::size_t checkedCount(std::size_t n, const char* what) {
  constexpr std::size_t kMaxRecords = 16'777'216;
  if (n > kMaxRecords) fail(std::string("implausible count for ") + what);
  return n;
}

void checkIndex(std::int32_t id, std::size_t size, const char* what) {
  if (id < 0 || static_cast<std::size_t>(id) >= size)
    badOp(std::string(what) + " index " + std::to_string(id) + " out of range");
}

/// Applies one op to `chip`; `valveMap` (when non-null) tracks where the
/// original instance's valves end up across removals.
void applyOp(Chip& chip, const DeltaOp& op, std::vector<ValveId>* valveMap) {
  switch (op.kind) {
    case DeltaOp::Kind::kSetName:
      chip.name = op.text;
      break;
    case DeltaOp::Kind::kSetGrid:
      if (op.pos.x <= 0 || op.pos.y <= 0) badOp("grid dimensions must be positive");
      chip.routingGrid = grid::Grid(op.pos.x, op.pos.y);
      break;
    case DeltaOp::Kind::kSetRules:
      chip.rules.minChannelWidthUm = op.pos.x;
      chip.rules.minChannelSpacingUm = op.pos.y;
      if (!chip.rules.valid()) badOp("design rules must be positive");
      break;
    case DeltaOp::Kind::kSetDelta:
      chip.delta = op.value;
      break;
    case DeltaOp::Kind::kMoveValve:
      checkIndex(op.id, chip.valves.size(), "valve");
      chip.valves[static_cast<std::size_t>(op.id)].pos = op.pos;
      break;
    case DeltaOp::Kind::kSetValveSequence:
      checkIndex(op.id, chip.valves.size(), "valve");
      chip.valves[static_cast<std::size_t>(op.id)].sequence =
          ActivationSequence(op.text);
      break;
    case DeltaOp::Kind::kAddValve: {
      Valve v;
      v.id = static_cast<ValveId>(chip.valves.size());
      v.pos = op.pos;
      v.sequence = ActivationSequence(op.text);
      chip.valves.push_back(std::move(v));
      break;
    }
    case DeltaOp::Kind::kRemoveValve: {
      checkIndex(op.id, chip.valves.size(), "valve");
      chip.valves.erase(chip.valves.begin() + op.id);
      for (std::size_t i = 0; i < chip.valves.size(); ++i)
        chip.valves[i].id = static_cast<ValveId>(i);
      for (ValveCluster& c : chip.givenClusters) {
        std::erase(c.valves, op.id);
        for (ValveId& v : c.valves)
          if (v > op.id) --v;
      }
      if (valveMap != nullptr)
        for (ValveId& v : *valveMap) {
          if (v == op.id) v = -1;
          else if (v > op.id) --v;
        }
      break;
    }
    case DeltaOp::Kind::kMovePin:
      checkIndex(op.id, chip.pins.size(), "pin");
      chip.pins[static_cast<std::size_t>(op.id)].pos = op.pos;
      break;
    case DeltaOp::Kind::kAddPin: {
      ControlPin p;
      p.id = static_cast<PinId>(chip.pins.size());
      p.pos = op.pos;
      chip.pins.push_back(p);
      break;
    }
    case DeltaOp::Kind::kRemovePin:
      checkIndex(op.id, chip.pins.size(), "pin");
      chip.pins.erase(chip.pins.begin() + op.id);
      for (std::size_t i = 0; i < chip.pins.size(); ++i)
        chip.pins[i].id = static_cast<PinId>(i);
      break;
    case DeltaOp::Kind::kAddObstacle:
      chip.obstacles.push_back(op.pos);
      break;
    case DeltaOp::Kind::kRemoveObstacle: {
      const auto it = std::find(chip.obstacles.begin(), chip.obstacles.end(), op.pos);
      if (it == chip.obstacles.end())
        badOp("no obstacle at (" + std::to_string(op.pos.x) + ", " +
              std::to_string(op.pos.y) + ")");
      chip.obstacles.erase(it);
      break;
    }
    case DeltaOp::Kind::kSetCluster:
      checkIndex(op.id, chip.givenClusters.size(), "cluster");
      chip.givenClusters[static_cast<std::size_t>(op.id)] = op.cluster;
      break;
    case DeltaOp::Kind::kAddCluster:
      chip.givenClusters.push_back(op.cluster);
      break;
    case DeltaOp::Kind::kRemoveCluster:
      checkIndex(op.id, chip.givenClusters.size(), "cluster");
      chip.givenClusters.erase(chip.givenClusters.begin() + op.id);
      break;
  }
}

}  // namespace

#define PACOR_DELTA_BUILDER(fn, body)        \
  ChipDelta& ChipDelta::fn {                 \
    DeltaOp op;                              \
    body;                                    \
    ops.push_back(std::move(op));            \
    return *this;                            \
  }

PACOR_DELTA_BUILDER(moveValve(ValveId id, Point to), {
  op.kind = DeltaOp::Kind::kMoveValve; op.id = id; op.pos = to;
})
PACOR_DELTA_BUILDER(setValveSequence(ValveId id, std::string seq), {
  op.kind = DeltaOp::Kind::kSetValveSequence; op.id = id; op.text = std::move(seq);
})
PACOR_DELTA_BUILDER(addValve(Point at, std::string seq), {
  op.kind = DeltaOp::Kind::kAddValve; op.pos = at; op.text = std::move(seq);
})
PACOR_DELTA_BUILDER(removeValve(ValveId id), {
  op.kind = DeltaOp::Kind::kRemoveValve; op.id = id;
})
PACOR_DELTA_BUILDER(movePin(PinId id, Point to), {
  op.kind = DeltaOp::Kind::kMovePin; op.id = id; op.pos = to;
})
PACOR_DELTA_BUILDER(addPin(Point at), {
  op.kind = DeltaOp::Kind::kAddPin; op.pos = at;
})
PACOR_DELTA_BUILDER(removePin(PinId id), {
  op.kind = DeltaOp::Kind::kRemovePin; op.id = id;
})
PACOR_DELTA_BUILDER(addObstacle(Point at), {
  op.kind = DeltaOp::Kind::kAddObstacle; op.pos = at;
})
PACOR_DELTA_BUILDER(removeObstacle(Point at), {
  op.kind = DeltaOp::Kind::kRemoveObstacle; op.pos = at;
})
PACOR_DELTA_BUILDER(setCluster(std::int32_t index, ValveCluster cluster), {
  op.kind = DeltaOp::Kind::kSetCluster; op.id = index; op.cluster = std::move(cluster);
})
PACOR_DELTA_BUILDER(addCluster(ValveCluster cluster), {
  op.kind = DeltaOp::Kind::kAddCluster; op.cluster = std::move(cluster);
})
PACOR_DELTA_BUILDER(removeCluster(std::int32_t index), {
  op.kind = DeltaOp::Kind::kRemoveCluster; op.id = index;
})
PACOR_DELTA_BUILDER(setDelta(std::int64_t value), {
  op.kind = DeltaOp::Kind::kSetDelta; op.value = value;
})
PACOR_DELTA_BUILDER(setName(std::string name), {
  op.kind = DeltaOp::Kind::kSetName; op.text = std::move(name);
})

#undef PACOR_DELTA_BUILDER

bool chipsEqual(const Chip& a, const Chip& b) {
  if (a.name != b.name || a.delta != b.delta) return false;
  if (a.routingGrid.width() != b.routingGrid.width() ||
      a.routingGrid.height() != b.routingGrid.height())
    return false;
  if (a.rules.minChannelWidthUm != b.rules.minChannelWidthUm ||
      a.rules.minChannelSpacingUm != b.rules.minChannelSpacingUm)
    return false;
  if (a.valves.size() != b.valves.size() || a.pins.size() != b.pins.size() ||
      a.obstacles.size() != b.obstacles.size() ||
      a.givenClusters.size() != b.givenClusters.size())
    return false;
  for (std::size_t i = 0; i < a.valves.size(); ++i) {
    const Valve& va = a.valves[i];
    const Valve& vb = b.valves[i];
    if (va.id != vb.id || va.pos != vb.pos || va.sequence != vb.sequence)
      return false;
  }
  for (std::size_t i = 0; i < a.pins.size(); ++i)
    if (a.pins[i].id != b.pins[i].id || a.pins[i].pos != b.pins[i].pos) return false;
  if (a.obstacles != b.obstacles) return false;
  for (std::size_t i = 0; i < a.givenClusters.size(); ++i)
    if (a.givenClusters[i].valves != b.givenClusters[i].valves ||
        a.givenClusters[i].lengthMatched != b.givenClusters[i].lengthMatched)
      return false;
  return true;
}

ChipDelta diff(const Chip& a, const Chip& b) {
  ChipDelta delta;
  if (a.name != b.name) delta.setName(b.name);
  if (a.routingGrid.width() != b.routingGrid.width() ||
      a.routingGrid.height() != b.routingGrid.height()) {
    DeltaOp op;
    op.kind = DeltaOp::Kind::kSetGrid;
    op.pos = {b.routingGrid.width(), b.routingGrid.height()};
    delta.ops.push_back(std::move(op));
  }
  if (a.rules.minChannelWidthUm != b.rules.minChannelWidthUm ||
      a.rules.minChannelSpacingUm != b.rules.minChannelSpacingUm) {
    DeltaOp op;
    op.kind = DeltaOp::Kind::kSetRules;
    op.pos = {b.rules.minChannelWidthUm, b.rules.minChannelSpacingUm};
    delta.ops.push_back(std::move(op));
  }
  if (a.delta != b.delta) delta.setDelta(b.delta);

  // Valves: per-index edits, then trailing removals (descending, so the
  // kept prefix never renumbers), then appends.
  const std::size_t commonValves = std::min(a.valves.size(), b.valves.size());
  for (std::size_t i = 0; i < commonValves; ++i) {
    if (a.valves[i].pos != b.valves[i].pos)
      delta.moveValve(static_cast<ValveId>(i), b.valves[i].pos);
    if (a.valves[i].sequence != b.valves[i].sequence)
      delta.setValveSequence(static_cast<ValveId>(i), b.valves[i].sequence.str());
  }
  for (std::size_t i = a.valves.size(); i > b.valves.size(); --i)
    delta.removeValve(static_cast<ValveId>(i - 1));
  for (std::size_t i = a.valves.size(); i < b.valves.size(); ++i)
    delta.addValve(b.valves[i].pos, b.valves[i].sequence.str());

  // Pins: same pattern.
  const std::size_t commonPins = std::min(a.pins.size(), b.pins.size());
  for (std::size_t i = 0; i < commonPins; ++i)
    if (a.pins[i].pos != b.pins[i].pos)
      delta.movePin(static_cast<PinId>(i), b.pins[i].pos);
  for (std::size_t i = a.pins.size(); i > b.pins.size(); --i)
    delta.removePin(static_cast<PinId>(i - 1));
  for (std::size_t i = a.pins.size(); i < b.pins.size(); ++i)
    delta.addPin(b.pins[i].pos);

  // Obstacles: multiset diff (remove A-only, append B-only). When B also
  // reorders the survivors the multiset form cannot reproduce the exact
  // vector, so fall back to a full rewrite.
  {
    std::vector<Point> removals;   // in A order
    std::vector<Point> additions;  // in B order
    std::vector<char> matchedB(b.obstacles.size(), 0);
    std::vector<char> matchedA(a.obstacles.size(), 0);
    for (std::size_t i = 0; i < a.obstacles.size(); ++i)
      for (std::size_t j = 0; j < b.obstacles.size(); ++j)
        if (!matchedB[j] && b.obstacles[j] == a.obstacles[i]) {
          matchedB[j] = 1;
          matchedA[i] = 1;
          break;
        }
    std::vector<Point> survivors;
    for (std::size_t i = 0; i < a.obstacles.size(); ++i)
      (matchedA[i] ? survivors : removals).push_back(a.obstacles[i]);
    for (std::size_t j = 0; j < b.obstacles.size(); ++j)
      if (!matchedB[j]) additions.push_back(b.obstacles[j]);
    std::vector<Point> expected = survivors;
    expected.insert(expected.end(), additions.begin(), additions.end());
    if (expected == b.obstacles) {
      for (const Point p : removals) delta.removeObstacle(p);
      for (const Point p : additions) delta.addObstacle(p);
    } else {
      for (std::size_t i = a.obstacles.size(); i > 0; --i)
        delta.removeObstacle(a.obstacles[i - 1]);
      for (const Point p : b.obstacles) delta.addObstacle(p);
    }
  }

  // Clusters: per-index rewrites against B's final valve ids (the valve
  // ops above already settled the numbering), trailing removals, appends.
  const std::size_t commonClusters =
      std::min(a.givenClusters.size(), b.givenClusters.size());
  Chip probe = apply(a, delta);  // state after valve/pin/obstacle ops
  for (std::size_t i = 0; i < commonClusters; ++i)
    if (probe.givenClusters[i].valves != b.givenClusters[i].valves ||
        probe.givenClusters[i].lengthMatched != b.givenClusters[i].lengthMatched)
      delta.setCluster(static_cast<std::int32_t>(i), b.givenClusters[i]);
  for (std::size_t i = probe.givenClusters.size(); i > b.givenClusters.size(); --i)
    delta.removeCluster(static_cast<std::int32_t>(i - 1));
  for (std::size_t i = probe.givenClusters.size(); i < b.givenClusters.size(); ++i)
    delta.addCluster(b.givenClusters[i]);

  if (!chipsEqual(apply(a, delta), b))
    throw std::logic_error("chip::diff: edit script does not reproduce B");
  return delta;
}

Chip apply(const Chip& base, const ChipDelta& delta) {
  Chip chip = base;
  for (const DeltaOp& op : delta.ops) applyOp(chip, op, nullptr);
  return chip;
}

AppliedDelta applyWithMap(const Chip& base, const ChipDelta& delta) {
  AppliedDelta out;
  out.chip = base;
  out.valveMap.resize(base.valves.size());
  for (std::size_t i = 0; i < out.valveMap.size(); ++i)
    out.valveMap[i] = static_cast<ValveId>(i);
  for (const DeltaOp& op : delta.ops) applyOp(out.chip, op, &out.valveMap);
  return out;
}

namespace {

const char* opName(DeltaOp::Kind kind) {
  switch (kind) {
    case DeltaOp::Kind::kSetName: return "set-name";
    case DeltaOp::Kind::kSetGrid: return "set-grid";
    case DeltaOp::Kind::kSetRules: return "set-rules";
    case DeltaOp::Kind::kSetDelta: return "set-delta";
    case DeltaOp::Kind::kMoveValve: return "move-valve";
    case DeltaOp::Kind::kSetValveSequence: return "set-valve-seq";
    case DeltaOp::Kind::kAddValve: return "add-valve";
    case DeltaOp::Kind::kRemoveValve: return "remove-valve";
    case DeltaOp::Kind::kMovePin: return "move-pin";
    case DeltaOp::Kind::kAddPin: return "add-pin";
    case DeltaOp::Kind::kRemovePin: return "remove-pin";
    case DeltaOp::Kind::kAddObstacle: return "add-obstacle";
    case DeltaOp::Kind::kRemoveObstacle: return "remove-obstacle";
    case DeltaOp::Kind::kSetCluster: return "set-cluster";
    case DeltaOp::Kind::kAddCluster: return "add-cluster";
    case DeltaOp::Kind::kRemoveCluster: return "remove-cluster";
  }
  return "?";
}

}  // namespace

void writeDelta(std::ostream& os, const ChipDelta& delta) {
  os << "pacor-delta 1\n";
  os << "ops " << delta.ops.size() << '\n';
  for (const DeltaOp& op : delta.ops) {
    os << opName(op.kind);
    switch (op.kind) {
      case DeltaOp::Kind::kSetName:
        os << ' ' << op.text;
        break;
      case DeltaOp::Kind::kSetGrid:
      case DeltaOp::Kind::kSetRules:
      case DeltaOp::Kind::kAddPin:
      case DeltaOp::Kind::kAddObstacle:
      case DeltaOp::Kind::kRemoveObstacle:
        os << ' ' << op.pos.x << ' ' << op.pos.y;
        break;
      case DeltaOp::Kind::kSetDelta:
        os << ' ' << op.value;
        break;
      case DeltaOp::Kind::kMoveValve:
      case DeltaOp::Kind::kMovePin:
        os << ' ' << op.id << ' ' << op.pos.x << ' ' << op.pos.y;
        break;
      case DeltaOp::Kind::kSetValveSequence:
        os << ' ' << op.id << ' ' << op.text;
        break;
      case DeltaOp::Kind::kAddValve:
        os << ' ' << op.pos.x << ' ' << op.pos.y << ' ' << op.text;
        break;
      case DeltaOp::Kind::kRemoveValve:
      case DeltaOp::Kind::kRemovePin:
      case DeltaOp::Kind::kRemoveCluster:
        os << ' ' << op.id;
        break;
      case DeltaOp::Kind::kSetCluster:
      case DeltaOp::Kind::kAddCluster: {
        if (op.kind == DeltaOp::Kind::kSetCluster) os << ' ' << op.id;
        os << ' ' << (op.cluster.lengthMatched ? 1 : 0) << ' '
           << op.cluster.valves.size();
        for (const ValveId v : op.cluster.valves) os << ' ' << v;
        break;
      }
    }
    os << '\n';
  }
  if (!os) fail("write failure");
}

ChipDelta readDelta(std::istream& is) {
  std::string line;
  if (!nextLine(is, line)) fail("unexpected end of file while reading header");
  {
    std::istringstream ls(line);
    std::string magic;
    int version = 0;
    ls >> magic >> version;
    if (magic != "pacor-delta" || version != 1)
      fail("bad header (want 'pacor-delta 1')");
  }
  if (!nextLine(is, line)) fail("unexpected end of file while reading op count");
  std::size_t count = 0;
  {
    std::istringstream ls(line);
    std::string key;
    ls >> key >> count;
    if (key != "ops" || ls.fail()) fail("expected 'ops <n>'");
    checkedCount(count, "ops");
  }
  ChipDelta delta;
  delta.ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!nextLine(is, line)) fail("unexpected end of file while reading op");
    std::istringstream ls(line);
    std::string name;
    ls >> name;
    DeltaOp op;
    const auto readId = [&] { if (!(ls >> op.id)) fail("malformed id in " + name); };
    const auto readPos = [&] {
      if (!(ls >> op.pos.x >> op.pos.y)) fail("malformed position in " + name);
    };
    const auto readText = [&] {
      if (!(ls >> op.text)) fail("malformed text payload in " + name);
    };
    const auto readCluster = [&] {
      int lm = 0;
      std::size_t k = 0;
      if (!(ls >> lm >> k)) fail("malformed cluster payload in " + name);
      op.cluster.lengthMatched = lm != 0;
      op.cluster.valves.resize(checkedCount(k, "cluster members"));
      for (std::size_t j = 0; j < k; ++j)
        if (!(ls >> op.cluster.valves[j])) fail("malformed cluster members in " + name);
    };
    if (name == "set-name") { op.kind = DeltaOp::Kind::kSetName; readText(); }
    else if (name == "set-grid") { op.kind = DeltaOp::Kind::kSetGrid; readPos(); }
    else if (name == "set-rules") { op.kind = DeltaOp::Kind::kSetRules; readPos(); }
    else if (name == "set-delta") {
      op.kind = DeltaOp::Kind::kSetDelta;
      if (!(ls >> op.value)) fail("malformed value in set-delta");
    } else if (name == "move-valve") {
      op.kind = DeltaOp::Kind::kMoveValve; readId(); readPos();
    } else if (name == "set-valve-seq") {
      op.kind = DeltaOp::Kind::kSetValveSequence; readId(); readText();
    } else if (name == "add-valve") {
      op.kind = DeltaOp::Kind::kAddValve; readPos(); readText();
    } else if (name == "remove-valve") { op.kind = DeltaOp::Kind::kRemoveValve; readId(); }
    else if (name == "move-pin") { op.kind = DeltaOp::Kind::kMovePin; readId(); readPos(); }
    else if (name == "add-pin") { op.kind = DeltaOp::Kind::kAddPin; readPos(); }
    else if (name == "remove-pin") { op.kind = DeltaOp::Kind::kRemovePin; readId(); }
    else if (name == "add-obstacle") { op.kind = DeltaOp::Kind::kAddObstacle; readPos(); }
    else if (name == "remove-obstacle") {
      op.kind = DeltaOp::Kind::kRemoveObstacle; readPos();
    } else if (name == "set-cluster") {
      op.kind = DeltaOp::Kind::kSetCluster; readId(); readCluster();
    } else if (name == "add-cluster") {
      op.kind = DeltaOp::Kind::kAddCluster; readCluster();
    } else if (name == "remove-cluster") {
      op.kind = DeltaOp::Kind::kRemoveCluster; readId();
    } else {
      fail("unknown op '" + name + "'");
    }
    // Sequence payloads must parse; surface the '01X' contract here, not
    // at apply time.
    if (op.kind == DeltaOp::Kind::kSetValveSequence ||
        op.kind == DeltaOp::Kind::kAddValve) {
      try {
        ActivationSequence check(op.text);
      } catch (const std::invalid_argument& e) {
        fail(std::string("bad activation sequence: ") + e.what());
      }
    }
    delta.ops.push_back(std::move(op));
  }
  return delta;
}

void writeDeltaFile(const std::string& path, const ChipDelta& delta) {
  std::ofstream os(path);
  if (!os) fail("cannot open for writing: " + path);
  writeDelta(os, delta);
}

ChipDelta readDeltaFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot open for reading: " + path);
  return readDelta(is);
}

std::string deltaToString(const ChipDelta& delta) {
  std::ostringstream os;
  writeDelta(os, delta);
  return os.str();
}

ChipDelta deltaFromString(const std::string& text) {
  std::istringstream is(text);
  return readDelta(is);
}

}  // namespace pacor::chip
