#include "chip/chip.hpp"

#include <sstream>
#include <unordered_set>

namespace pacor::chip {

graph::AdjacencyMatrix Chip::compatibilityGraph() const {
  graph::AdjacencyMatrix g(valves.size());
  for (std::size_t i = 0; i < valves.size(); ++i)
    for (std::size_t j = i + 1; j < valves.size(); ++j)
      if (valves[i].sequence.compatibleWith(valves[j].sequence)) g.addEdge(i, j);
  return g;
}

grid::ObstacleMap Chip::makeObstacleMap() const {
  grid::ObstacleMap map(routingGrid);
  for (const Point p : obstacles) map.addObstacle(p);
  return map;
}

std::optional<std::string> Chip::validate() const {
  std::ostringstream err;
  if (routingGrid.width() <= 0 || routingGrid.height() <= 0)
    return "routing grid has non-positive dimensions";
  if (!rules.valid()) return "design rules invalid";
  if (delta < 0) return "delta must be non-negative";

  std::unordered_set<Point> usedCells;
  for (std::size_t i = 0; i < valves.size(); ++i) {
    const Valve& v = valves[i];
    if (v.id != static_cast<ValveId>(i)) {
      err << "valve ids must be dense 0..n-1; slot " << i << " has id " << v.id;
      return err.str();
    }
    if (!routingGrid.inBounds(v.pos)) {
      err << "valve " << v.id << " at " << v.pos.str() << " out of bounds";
      return err.str();
    }
    if (!usedCells.insert(v.pos).second) {
      err << "valve " << v.id << " overlaps another valve at " << v.pos.str();
      return err.str();
    }
    if (!valves.empty() && v.sequence.length() != valves.front().sequence.length()) {
      err << "valve " << v.id << " has sequence length " << v.sequence.length()
          << " != " << valves.front().sequence.length();
      return err.str();
    }
  }
  for (std::size_t i = 0; i < pins.size(); ++i) {
    const ControlPin& p = pins[i];
    if (p.id != static_cast<PinId>(i)) {
      err << "pin ids must be dense 0..n-1; slot " << i << " has id " << p.id;
      return err.str();
    }
    if (!routingGrid.onBoundary(p.pos)) {
      err << "pin " << p.id << " at " << p.pos.str() << " is not on the chip boundary";
      return err.str();
    }
    if (!usedCells.insert(p.pos).second) {
      err << "pin " << p.id << " overlaps a valve or pin at " << p.pos.str();
      return err.str();
    }
  }
  for (const Point o : obstacles) {
    if (!routingGrid.inBounds(o)) {
      err << "obstacle at " << o.str() << " out of bounds";
      return err.str();
    }
    if (usedCells.count(o)) {
      err << "obstacle at " << o.str() << " overlaps a valve or pin";
      return err.str();
    }
  }

  std::vector<int> clusterOf(valves.size(), -1);
  for (std::size_t c = 0; c < givenClusters.size(); ++c) {
    const ValveCluster& cluster = givenClusters[c];
    if (cluster.valves.size() < 2) {
      err << "given cluster " << c << " has fewer than 2 valves";
      return err.str();
    }
    for (const ValveId v : cluster.valves) {
      if (v < 0 || static_cast<std::size_t>(v) >= valves.size()) {
        err << "given cluster " << c << " references unknown valve " << v;
        return err.str();
      }
      if (clusterOf[static_cast<std::size_t>(v)] != -1) {
        err << "valve " << v << " appears in two given clusters";
        return err.str();
      }
      clusterOf[static_cast<std::size_t>(v)] = static_cast<int>(c);
    }
    // Length-matching must conform with compatibility (paper Sec. 2 note).
    for (std::size_t i = 0; i < cluster.valves.size(); ++i)
      for (std::size_t j = i + 1; j < cluster.valves.size(); ++j) {
        const Valve& a = valve(cluster.valves[i]);
        const Valve& b = valve(cluster.valves[j]);
        if (!a.sequence.compatibleWith(b.sequence)) {
          err << "given cluster " << c << " contains incompatible valves " << a.id
              << " and " << b.id;
          return err.str();
        }
      }
  }
  return std::nullopt;
}

}  // namespace pacor::chip
