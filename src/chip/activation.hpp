#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pacor::chip {

/// Activation status of a valve at one time step (paper Def. 1):
/// '0' = open, '1' = closed, 'X' = don't care.
enum class Activation : char {
  kOpen = '0',
  kClosed = '1',
  kDontCare = 'X',
};

/// Two statuses are compatible when equal or either is don't-care
/// (paper Def. 2).
constexpr bool compatible(Activation a, Activation b) noexcept {
  return a == b || a == Activation::kDontCare || b == Activation::kDontCare;
}

/// Valve activation sequence over the scheduled time steps (Def. 1).
/// Stored as a validated "01X" string; sequences of one chip share a
/// common length fixed by the binding/scheduling result.
class ActivationSequence {
 public:
  ActivationSequence() = default;

  /// Throws std::invalid_argument on characters outside {0, 1, X}.
  explicit ActivationSequence(std::string_view steps);

  std::size_t length() const noexcept { return steps_.size(); }
  bool empty() const noexcept { return steps_.empty(); }
  Activation at(std::size_t i) const { return static_cast<Activation>(steps_.at(i)); }
  const std::string& str() const noexcept { return steps_; }

  friend bool operator==(const ActivationSequence&, const ActivationSequence&) = default;

  /// Pairwise per-step compatibility (Def. 3). Sequences of different
  /// length are incompatible by convention (they cannot share a pin).
  bool compatibleWith(const ActivationSequence& other) const noexcept;

  /// Step-wise merge of two compatible sequences: don't-cares resolve to
  /// the other side's concrete status. The merged sequence is what the
  /// shared control pin actually drives.
  ActivationSequence mergedWith(const ActivationSequence& other) const;

 private:
  std::string steps_;
};

}  // namespace pacor::chip
