#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "chip/chip.hpp"

namespace pacor::chip {

/// Instance statistics of a routing problem, in the spirit of the paper's
/// Table 1 plus derived difficulty indicators. Used by `pacor info` and
/// the benchmark reports.
struct ChipStats {
  std::string name;
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::size_t valveCount = 0;
  std::size_t pinCount = 0;
  std::size_t obstacleCount = 0;

  std::size_t clusterCount = 0;         ///< given clusters (>= 2 valves)
  std::size_t matchedClusterCount = 0;  ///< of which length-matched
  std::size_t largestClusterSize = 0;

  double obstacleDensity = 0.0;  ///< blocked cells / total cells
  double valveDensity = 0.0;     ///< valves / total cells

  /// Mean Manhattan diameter of the given clusters (0 when none); larger
  /// diameters mean longer trees and harder matching.
  double meanClusterDiameter = 0.0;

  /// Compatibility-graph edge density among all valves (how much pin
  /// sharing the broadcast addressing scheme can exploit).
  double compatibilityDensity = 0.0;

  /// Min Manhattan distance from any valve to the nearest candidate pin
  /// (a lower bound witness for the shortest possible escape).
  std::int64_t minValveToPinDistance = 0;
};

ChipStats computeStats(const Chip& chip);

std::ostream& operator<<(std::ostream& os, const ChipStats& stats);

}  // namespace pacor::chip
