#include "chip/activation.hpp"

#include <stdexcept>

namespace pacor::chip {

ActivationSequence::ActivationSequence(std::string_view steps) : steps_(steps) {
  for (const char c : steps_) {
    if (c != '0' && c != '1' && c != 'X')
      throw std::invalid_argument("activation sequence may contain only 0, 1, X: got '" +
                                  std::string(1, c) + "'");
  }
}

bool ActivationSequence::compatibleWith(const ActivationSequence& other) const noexcept {
  if (steps_.size() != other.steps_.size()) return false;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (!compatible(static_cast<Activation>(steps_[i]),
                    static_cast<Activation>(other.steps_[i])))
      return false;
  }
  return true;
}

ActivationSequence ActivationSequence::mergedWith(const ActivationSequence& other) const {
  if (!compatibleWith(other))
    throw std::invalid_argument("cannot merge incompatible activation sequences");
  std::string merged = steps_;
  for (std::size_t i = 0; i < merged.size(); ++i)
    if (merged[i] == 'X') merged[i] = other.steps_[i];
  ActivationSequence out;
  out.steps_ = std::move(merged);
  return out;
}

}  // namespace pacor::chip
