#include "chip/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pacor::chip {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("chip io: " + what);
}

/// Next non-comment, non-blank line; false on EOF.
bool nextLine(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    return true;
  }
  return false;
}

std::istringstream expectLine(std::istream& is, const std::string& context) {
  std::string line;
  if (!nextLine(is, line)) fail("unexpected end of file while reading " + context);
  return std::istringstream(line);
}


/// Rejects absurd record counts before any allocation (a corrupted count
/// must fail cleanly, not throw std::length_error out of vector).
std::size_t checkedCount(std::size_t n, const char* what) {
  constexpr std::size_t kMaxRecords = 16'777'216;
  if (n > kMaxRecords) fail(std::string("implausible count for ") + what);
  return n;
}

template <typename T>
T parseField(std::istringstream& ls, const std::string& context) {
  T value{};
  if (!(ls >> value)) fail("malformed " + context);
  return value;
}

}  // namespace

void writeChip(std::ostream& os, const Chip& chip) {
  os << "pacor-chip 1\n";
  os << "name " << chip.name << '\n';
  os << "grid " << chip.routingGrid.width() << ' ' << chip.routingGrid.height() << '\n';
  os << "rules " << chip.rules.minChannelWidthUm << ' ' << chip.rules.minChannelSpacingUm
     << '\n';
  os << "delta " << chip.delta << '\n';
  os << "valves " << chip.valves.size() << '\n';
  for (const Valve& v : chip.valves)
    os << v.id << ' ' << v.pos.x << ' ' << v.pos.y << ' ' << v.sequence.str() << '\n';
  os << "pins " << chip.pins.size() << '\n';
  for (const ControlPin& p : chip.pins) os << p.id << ' ' << p.pos.x << ' ' << p.pos.y << '\n';
  os << "obstacles " << chip.obstacles.size() << '\n';
  for (const Point o : chip.obstacles) os << o.x << ' ' << o.y << '\n';
  os << "clusters " << chip.givenClusters.size() << '\n';
  for (const ValveCluster& c : chip.givenClusters) {
    os << (c.lengthMatched ? 1 : 0) << ' ' << c.valves.size();
    for (const ValveId v : c.valves) os << ' ' << v;
    os << '\n';
  }
  if (!os) fail("write failure");
}

Chip readChip(std::istream& is) {
  Chip chip;
  {
    auto ls = expectLine(is, "header");
    std::string magic;
    int version = 0;
    ls >> magic >> version;
    if (magic != "pacor-chip" || version != 1) fail("bad header (want 'pacor-chip 1')");
  }
  {
    auto ls = expectLine(is, "name");
    std::string key;
    ls >> key >> chip.name;
    if (key != "name") fail("expected 'name'");
  }
  {
    auto ls = expectLine(is, "grid");
    std::string key;
    std::int32_t w = 0, h = 0;
    ls >> key >> w >> h;
    if (key != "grid" || w <= 0 || h <= 0) fail("bad grid line");
    // Checked product before constructing: an oversized grid must fail
    // with a parse error, not corrupt int32 cell indices downstream.
    if (static_cast<std::int64_t>(w) * h > grid::Grid::kMaxCells)
      fail("grid " + std::to_string(w) + "x" + std::to_string(h) +
           " exceeds the int32 cell-index range");
    chip.routingGrid = grid::Grid(w, h);
  }
  {
    auto ls = expectLine(is, "rules");
    std::string key;
    ls >> key >> chip.rules.minChannelWidthUm >> chip.rules.minChannelSpacingUm;
    if (key != "rules" || !chip.rules.valid()) fail("bad rules line");
  }
  {
    auto ls = expectLine(is, "delta");
    std::string key;
    ls >> key >> chip.delta;
    if (key != "delta" || chip.delta < 0) fail("bad delta line");
  }
  {
    auto ls = expectLine(is, "valves count");
    std::string key;
    std::size_t n = 0;
    ls >> key >> n;
    if (key != "valves") fail("expected 'valves'");
    chip.valves.reserve(checkedCount(n, "valves"));
    for (std::size_t i = 0; i < n; ++i) {
      auto vl = expectLine(is, "valve");
      Valve v;
      std::string seq;
      vl >> v.id >> v.pos.x >> v.pos.y >> seq;
      if (vl.fail()) fail("malformed valve line");
      v.sequence = ActivationSequence(seq);
      chip.valves.push_back(std::move(v));
    }
  }
  {
    auto ls = expectLine(is, "pins count");
    std::string key;
    std::size_t n = 0;
    ls >> key >> n;
    if (key != "pins") fail("expected 'pins'");
    chip.pins.reserve(checkedCount(n, "pins"));
    for (std::size_t i = 0; i < n; ++i) {
      auto pl = expectLine(is, "pin");
      ControlPin p;
      pl >> p.id >> p.pos.x >> p.pos.y;
      if (pl.fail()) fail("malformed pin line");
      chip.pins.push_back(p);
    }
  }
  {
    auto ls = expectLine(is, "obstacles count");
    std::string key;
    std::size_t n = 0;
    ls >> key >> n;
    if (key != "obstacles") fail("expected 'obstacles'");
    chip.obstacles.reserve(checkedCount(n, "obstacles"));
    for (std::size_t i = 0; i < n; ++i) {
      auto ol = expectLine(is, "obstacle");
      Point o;
      ol >> o.x >> o.y;
      if (ol.fail()) fail("malformed obstacle line");
      chip.obstacles.push_back(o);
    }
  }
  {
    auto ls = expectLine(is, "clusters count");
    std::string key;
    std::size_t n = 0;
    ls >> key >> n;
    if (key != "clusters") fail("expected 'clusters'");
    chip.givenClusters.reserve(checkedCount(n, "clusters"));
    for (std::size_t i = 0; i < n; ++i) {
      auto cl = expectLine(is, "cluster");
      int lm = 0;
      std::size_t k = 0;
      cl >> lm >> k;
      if (cl.fail()) fail("malformed cluster line");
      ValveCluster c;
      c.lengthMatched = lm != 0;
      c.valves.resize(checkedCount(k, "cluster members"));
      for (std::size_t j = 0; j < k; ++j) cl >> c.valves[j];
      if (cl.fail()) fail("malformed cluster members");
      chip.givenClusters.push_back(std::move(c));
    }
  }
  if (const auto err = chip.validate()) fail("invalid chip: " + *err);
  return chip;
}

void writeChipFile(const std::string& path, const Chip& chip) {
  std::ofstream os(path);
  if (!os) fail("cannot open for writing: " + path);
  writeChip(os, chip);
}

Chip readChipFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot open for reading: " + path);
  return readChip(is);
}

}  // namespace pacor::chip
