#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/chip.hpp"

namespace pacor::chip {

/// Parameters of the synthetic benchmark generator.
///
/// The paper evaluates on two real biochips (Chip1, Chip2) and five
/// synthesized testcases (S1-S5) whose instance statistics are published
/// in Table 1 but whose netlists are not. The generator reproduces every
/// published statistic — grid size, valve count, candidate control pin
/// count, obstructed cell count, and the Table 2 cluster counts — with a
/// deterministic seeded layout, so the router sees instances of the same
/// shape and difficulty.
struct GeneratorParams {
  std::string name = "synthetic";
  std::int32_t width = 32;
  std::int32_t height = 32;
  std::int32_t valveCount = 8;
  std::int32_t pinCount = 16;
  std::int32_t obstacleCellCount = 0;
  /// Sizes of the length-matching clusters (each >= 2); members become
  /// pairwise compatible and carry the length-matching constraint.
  std::vector<std::int32_t> lmClusterSizes;
  /// Sizes of additional compatible groups *without* the constraint;
  /// exercises the MST-based cluster routing path.
  std::vector<std::int32_t> plainClusterSizes;
  std::int32_t sequenceLength = 16;
  std::int32_t clusterRadius = 6;  ///< Chebyshev spread of a cluster's valves
  std::int64_t delta = 1;          ///< length-matching threshold of the instance
  std::uint32_t seed = 1;
};

/// Builds a chip instance from the parameters. The result always passes
/// Chip::validate(). Throws std::invalid_argument when the parameters are
/// infeasible (e.g. more valves than interior cells).
Chip generateChip(const GeneratorParams& params);

/// Table 1 presets. Cluster counts follow Table 2 (Chip1: 40, Chip2: 22
/// two-valve clusters, S1: 2, S2: 2, S3: 5, S4: 7, S5: 13).
GeneratorParams chip1Params();
GeneratorParams chip2Params();
GeneratorParams s1Params();
GeneratorParams s2Params();
GeneratorParams s3Params();
GeneratorParams s4Params();
GeneratorParams s5Params();

/// All seven Table 1 designs in paper order.
std::vector<GeneratorParams> table1Designs();

/// Congestion stress instance: many length-matching clusters packed into
/// a small die with scattered blockages and a modest pin budget. The
/// Table 1 regenerations are routable enough that all flow variants
/// saturate; these instances make the paper's Table 2 ordering (selection
/// helps matching, detour-first trades matches for wirelength) visible.
/// Different seeds give independent instances for aggregate comparisons.
GeneratorParams stressParams(std::uint32_t seed);

/// Randomized instance for differential fuzzing (tools/pacor_fuzz): die
/// size, valve/cluster mix, obstacle density, delta, and pin budget are
/// all drawn from the seed, constrained so the parameters are always
/// feasible for generateChip. The same seed always yields the same
/// instance; distinct seeds explore the space independently.
GeneratorParams randomParams(std::uint32_t seed);

}  // namespace pacor::chip
