#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/chip.hpp"

namespace pacor::chip {

/// Parameters of the synthetic benchmark generator.
///
/// The paper evaluates on two real biochips (Chip1, Chip2) and five
/// synthesized testcases (S1-S5) whose instance statistics are published
/// in Table 1 but whose netlists are not. The generator reproduces every
/// published statistic — grid size, valve count, candidate control pin
/// count, obstructed cell count, and the Table 2 cluster counts — with a
/// deterministic seeded layout, so the router sees instances of the same
/// shape and difficulty.
struct GeneratorParams {
  std::string name = "synthetic";
  std::int32_t width = 32;
  std::int32_t height = 32;
  std::int32_t valveCount = 8;
  std::int32_t pinCount = 16;
  std::int32_t obstacleCellCount = 0;
  /// Sizes of the length-matching clusters (each >= 2); members become
  /// pairwise compatible and carry the length-matching constraint.
  std::vector<std::int32_t> lmClusterSizes;
  /// Sizes of additional compatible groups *without* the constraint;
  /// exercises the MST-based cluster routing path.
  std::vector<std::int32_t> plainClusterSizes;
  std::int32_t sequenceLength = 16;
  std::int32_t clusterRadius = 6;  ///< Chebyshev spread of a cluster's valves
  std::int64_t delta = 1;          ///< length-matching threshold of the instance
  std::uint32_t seed = 1;
};

/// Builds a chip instance from the parameters. The result always passes
/// Chip::validate(). Throws std::invalid_argument when the parameters are
/// infeasible (e.g. more valves than interior cells).
Chip generateChip(const GeneratorParams& params);

/// Table 1 presets. Cluster counts follow Table 2 (Chip1: 40, Chip2: 22
/// two-valve clusters, S1: 2, S2: 2, S3: 5, S4: 7, S5: 13).
GeneratorParams chip1Params();
GeneratorParams chip2Params();
GeneratorParams s1Params();
GeneratorParams s2Params();
GeneratorParams s3Params();
GeneratorParams s4Params();
GeneratorParams s5Params();

/// All seven Table 1 designs in paper order.
std::vector<GeneratorParams> table1Designs();

/// Congestion stress instance: many length-matching clusters packed into
/// a small die with scattered blockages and a modest pin budget. The
/// Table 1 regenerations are routable enough that all flow variants
/// saturate; these instances make the paper's Table 2 ordering (selection
/// helps matching, detour-first trades matches for wirelength) visible.
/// Different seeds give independent instances for aggregate comparisons.
GeneratorParams stressParams(std::uint32_t seed);

/// Randomized instance for differential fuzzing (tools/pacor_fuzz): die
/// size, valve/cluster mix, obstacle density, delta, and pin budget are
/// all drawn from the seed, constrained so the parameters are always
/// feasible for generateChip. The same seed always yields the same
/// instance; distinct seeds explore the space independently.
GeneratorParams randomParams(std::uint32_t seed);

/// Parameters of the FPVA (fully programmable valve array) generator.
///
/// The FPVA testing paper describes regular N x M grids of thousands of
/// programmable valves -- 10-100x the valve counts of Table 1. Valves sit
/// on a `pitch`-spaced lattice inside a `margin`-cell free ring;
/// neighboring valves form blockRows x blockCols cluster blocks (each
/// block shares one control pin), a deterministic `lmPercent` share of
/// the blocks carries the length-matching constraint (the dense-cluster
/// mix of the storage-synthesis paper), control pins ring the boundary,
/// and `obstaclePermille` of the interior is sprinkled with short
/// flow-layer-style obstacle strips. Everything is seeded: the same
/// params always yield the same chip.
struct FpvaParams {
  std::string name;                   ///< defaults to "fpva_<rows>x<cols>"
  std::int32_t rows = 8;              ///< valve-array rows (N)
  std::int32_t cols = 8;              ///< valve-array columns (M)
  /// Lattice pitch in grid cells (>= 3). 0 = auto: scaled with the array
  /// size so the default instances stay escape-routable (bigger arrays
  /// need wider routing corridors between valves).
  std::int32_t pitch = 0;
  std::int32_t margin = 3;            ///< free ring between array and boundary (>= 2)
  /// Cluster-block dimensions in valves (block = one control pin). 0 =
  /// auto: scaled with the array size to keep the escape-cluster count in
  /// the routable range.
  std::int32_t blockRows = 0;
  std::int32_t blockCols = 0;
  std::int32_t lmPercent = 50;        ///< % of blocks that are length-matched
  std::int32_t obstaclePermille = 0;  ///< interior obstacle density, per mille
  std::int32_t extraPins = 16;        ///< pins beyond the one-per-block minimum
  std::int32_t sequenceLength = 16;
  std::int64_t delta = 2;             ///< length-matching threshold
  std::uint32_t seed = 1;
};

/// Builds an N x M valve-array chip. The result always passes
/// Chip::validate(); throws std::invalid_argument on infeasible
/// parameters (including grids whose cell count would overflow int32
/// indices -- checked arithmetic, never silent truncation).
Chip generateFpvaChip(const FpvaParams& params);

/// Parses an FPVA spec string: `[fpva:]ROWSxCOLS[<sep>key=value ...]`
/// with `:` or `,` separators. Keys: pitch, margin, block (RxC), lm (%),
/// obs (per mille), pins (extra), seq, delta, seed. Examples: "8x8",
/// "fpva:16x16:pitch=5,obs=20". Throws std::invalid_argument on
/// malformed specs.
FpvaParams parseFpvaSpec(const std::string& spec);

/// True when `name` is an FPVA spec token (the "fpva:" prefix); the serve
/// manifest loop and the CLI use this to route design names to
/// generateFpvaChip instead of the chip-file reader.
bool isFpvaSpec(const std::string& name);

/// Randomized small FPVA instance for differential fuzzing; same
/// seed-determinism contract as randomParams.
FpvaParams randomFpvaParams(std::uint32_t seed);

}  // namespace pacor::chip
