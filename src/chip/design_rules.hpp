#pragma once

#include <cstdint>

namespace pacor::chip {

/// Physical design rules of the control layer, in micrometers. The router
/// works on a uniform grid whose pitch is derived from these rules (paper
/// Sec. 4.1: "routing grids ... partitioned according to the minimum
/// channel width and spacing design rule"): one channel per cell plus the
/// mandatory spacing on each side.
struct DesignRules {
  /// Minimum control channel width (um). Unger-style PDMS valves give
  /// ~10 um channels; defaults follow mVLSI practice.
  std::int32_t minChannelWidthUm = 10;
  /// Minimum spacing between adjacent control channels (um).
  std::int32_t minChannelSpacingUm = 10;

  /// Grid pitch: a channel centered in a cell of this size can never
  /// violate spacing against a channel in any other cell.
  std::int32_t gridPitchUm() const noexcept {
    return minChannelWidthUm + minChannelSpacingUm;
  }

  /// Physical chip dimension (um) -> routing grid cells (floor).
  std::int32_t umToCells(std::int64_t um) const noexcept {
    return static_cast<std::int32_t>(um / gridPitchUm());
  }

  /// Grid cells -> channel length in micrometers.
  std::int64_t cellsToUm(std::int64_t cells) const noexcept {
    return cells * gridPitchUm();
  }

  bool valid() const noexcept {
    return minChannelWidthUm > 0 && minChannelSpacingUm > 0;
  }
};

}  // namespace pacor::chip
