#include "chip/flow_layer.hpp"

#include <algorithm>
#include <unordered_set>

namespace pacor::chip {

std::optional<std::string> FlowLayer::validate(const grid::Grid& grid) const {
  for (std::size_t c = 0; c < channels.size(); ++c) {
    const auto& wp = channels[c].waypoints;
    if (wp.size() < 2) return "flow channel " + std::to_string(c) + " has < 2 waypoints";
    for (std::size_t i = 0; i < wp.size(); ++i) {
      if (!grid.inBounds(wp[i]))
        return "flow channel " + std::to_string(c) + " leaves the grid at " +
               wp[i].str();
      if (i > 0 && wp[i - 1].x != wp[i].x && wp[i - 1].y != wp[i].y)
        return "flow channel " + std::to_string(c) + " has a non-rectilinear segment";
    }
  }
  for (std::size_t k = 0; k < components.size(); ++k) {
    const geom::Rect& r = components[k].footprint;
    if (r.empty() || !grid.inBounds(r.lo) || !grid.inBounds(r.hi))
      return "component " + std::to_string(k) + " footprint out of bounds";
  }
  return std::nullopt;
}

std::vector<geom::Point> traceChannel(const FlowChannel& channel) {
  std::vector<geom::Point> cells;
  const auto& wp = channel.waypoints;
  for (std::size_t i = 0; i + 1 < wp.size(); ++i) {
    geom::Point a = wp[i];
    const geom::Point b = wp[i + 1];
    const geom::Point d{b.x > a.x ? 1 : (b.x < a.x ? -1 : 0),
                        b.y > a.y ? 1 : (b.y < a.y ? -1 : 0)};
    for (;; a = a + d) {
      cells.push_back(a);
      if (a == b) break;
      if (d.x == 0 && d.y == 0) break;  // degenerate segment
    }
  }
  // Joints between segments appear twice; dedupe preserving nothing
  // special about order (callers sort anyway).
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

std::vector<geom::Point> controlObstacles(const FlowLayer& flow, const grid::Grid& grid,
                                          std::span<const geom::Point> valveSites) {
  std::unordered_set<geom::Point> valves(valveSites.begin(), valveSites.end());
  std::unordered_set<geom::Point> cells;

  for (const FlowComponent& comp : flow.components) {
    const geom::Rect r = comp.footprint.intersectWith(grid.bounds());
    for (std::int32_t y = r.lo.y; y <= r.hi.y; ++y)
      for (std::int32_t x = r.lo.x; x <= r.hi.x; ++x)
        if (!valves.contains({x, y})) cells.insert({x, y});
  }
  for (const FlowChannel& channel : flow.channels)
    for (const geom::Point p : traceChannel(channel))
      if (grid.inBounds(p) && !valves.contains(p)) cells.insert(p);

  std::vector<geom::Point> out(cells.begin(), cells.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pacor::chip
