#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chip/activation.hpp"
#include "chip/design_rules.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "graph/adjacency.hpp"
#include "grid/grid.hpp"
#include "grid/obstacle_map.hpp"

namespace pacor::chip {

using geom::Point;

using ValveId = std::int32_t;
using PinId = std::int32_t;

/// A control-layer valve: grid position plus its scheduled activation
/// sequence. Valves driven by one control pin must be pairwise compatible
/// (paper Def. 4 and constraint (ii)).
struct Valve {
  ValveId id = 0;
  Point pos;
  ActivationSequence sequence;
};

/// Candidate control pin position on the chip boundary; a pressure source
/// is attached to each *used* pin.
struct ControlPin {
  PinId id = 0;
  Point pos;
};

/// A set of valves that must share one control pin. When lengthMatched is
/// set, the routed channel lengths from the shared pin to every member
/// must differ by at most the chip's delta (constraint (iii)).
struct ValveCluster {
  std::vector<ValveId> valves;
  bool lengthMatched = false;
};

/// Full control-layer routing instance (paper Sec. 2 "Given").
struct Chip {
  std::string name;
  grid::Grid routingGrid;
  DesignRules rules;
  std::vector<Valve> valves;
  std::vector<ControlPin> pins;
  std::vector<Point> obstacles;             ///< blocked routing cells
  std::vector<ValveCluster> givenClusters;  ///< length-matching clusters M(V)
  std::int64_t delta = 1;                   ///< length-matching threshold (grid units)

  const Valve& valve(ValveId id) const { return valves.at(static_cast<std::size_t>(id)); }
  const ControlPin& pin(PinId id) const { return pins.at(static_cast<std::size_t>(id)); }

  /// Pairwise valve compatibility graph (edge = may share a pin).
  graph::AdjacencyMatrix compatibilityGraph() const;

  /// Obstacle map seeded with the chip's blocked cells.
  grid::ObstacleMap makeObstacleMap() const;

  /// Structural validation; returns a description of the first problem
  /// found, or nullopt when the instance is well-formed:
  /// ids dense, valves/pins/obstacles in bounds and disjoint, pins on the
  /// boundary, given clusters pairwise compatible with >= 2 members.
  std::optional<std::string> validate() const;
};

}  // namespace pacor::chip
