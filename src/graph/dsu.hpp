#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace pacor::graph {

/// Disjoint-set union with path halving + union by size.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns false when already joined.
  bool unite(std::size_t a, std::size_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool connected(std::size_t a, std::size_t b) noexcept { return find(a) == find(b); }
  std::size_t setSize(std::size_t x) noexcept { return size_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace pacor::graph
