#pragma once

#include <cstddef>
#include <vector>

#include "graph/adjacency.hpp"

namespace pacor::graph {

/// Result of a maximum-weight clique search.
struct CliqueResult {
  std::vector<std::size_t> vertices;  ///< clique members, ascending
  double weight = 0.0;                ///< sum of member weights
};

/// Exact maximum-(vertex-)weight clique by branch-and-bound with a
/// sum-of-positive-candidates bound. Exponential worst case; intended for
/// the candidate-tree conflict graphs of this paper (hundreds of vertices,
/// sparse positive structure). Vertices with non-positive weight may still
/// be picked when they enable heavier neighbours.
///
/// This is the "graph-based algorithm" variant of the paper's Sec. 4.2;
/// the production selection path (selection.hpp) replaces the paper's
/// Gurobi ILP with a dedicated exact semi-assignment branch-and-bound.
CliqueResult maxWeightClique(const AdjacencyMatrix& g,
                             const std::vector<double>& weights);

/// Greedy maximum-weight clique (seed best vertex, grow by best marginal
/// weight). Fast lower bound / fallback for large graphs.
CliqueResult maxWeightCliqueGreedy(const AdjacencyMatrix& g,
                                   const std::vector<double>& weights);

}  // namespace pacor::graph
