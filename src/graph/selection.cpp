#include "graph/selection.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "trace/trace.hpp"

namespace pacor::graph {

std::size_t SelectionProblem::addCandidate(std::size_t cluster, double nodeWeight) {
  if (cluster >= clusters_.size()) clusters_.resize(cluster + 1);
  const std::size_t id = clusterOf_.size();
  clusters_[cluster].push_back(id);
  clusterOf_.push_back(cluster);
  nodeWeight_.push_back(nodeWeight);
  for (auto& row : pair_) row.push_back(0.0);
  pair_.emplace_back(clusterOf_.size(), 0.0);
  return id;
}

void SelectionProblem::setPairWeight(std::size_t a, std::size_t b, double w) {
  assert(a < candidateCount() && b < candidateCount());
  assert(clusterOf_[a] != clusterOf_[b]);
  pair_[a][b] = w;
  pair_[b][a] = w;
}

double SelectionProblem::pairWeight(std::size_t a, std::size_t b) const {
  return pair_[a][b];
}

double SelectionProblem::objective(const std::vector<std::size_t>& chosen) const {
  double total = 0.0;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    total += nodeWeight_[chosen[i]];
    for (std::size_t j = i + 1; j < chosen.size(); ++j)
      total += pair_[chosen[i]][chosen[j]];
  }
  return total;
}

namespace {

struct BnB {
  const SelectionProblem& p;
  const std::vector<std::vector<std::size_t>>& clusters;
  std::size_t budget;
  std::size_t explored = 0;
  bool exhausted = false;

  std::vector<std::size_t> cur;
  std::vector<std::size_t> best;
  double bestObj = -std::numeric_limits<double>::infinity();

  // ub[k] = best-case (node weight only) contribution of cluster order[k].
  std::vector<std::size_t> order;
  std::vector<double> suffixUb;

  void run(std::vector<std::size_t> incumbent, double incumbentObj) {
    best = std::move(incumbent);
    bestObj = incumbentObj;

    const std::size_t k = clusters.size();
    order.resize(k);
    std::iota(order.begin(), order.end(), 0);
    // Branch on small clusters first: narrow top levels shrink the tree.
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return clusters[a].size() < clusters[b].size();
    });
    suffixUb.assign(k + 1, 0.0);
    for (std::size_t i = k; i-- > 0;) {
      double mx = -std::numeric_limits<double>::infinity();
      for (const std::size_t c : clusters[order[i]])
        mx = std::max(mx, p.nodeWeight(c));
      suffixUb[i] = suffixUb[i + 1] + mx;  // edges <= 0: node-only bound is admissible
    }
    cur.clear();
    descend(0, 0.0);
  }

  void descend(std::size_t level, double score) {
    if (exhausted) return;
    if (++explored > budget) {
      exhausted = true;
      return;
    }
    if (level == order.size()) {
      if (score > bestObj) {
        bestObj = score;
        // cur is ordered by `order`; scatter back to cluster index order.
        best.assign(order.size(), 0);
        for (std::size_t i = 0; i < order.size(); ++i) best[order[i]] = cur[i];
      }
      return;
    }
    if (score + suffixUb[level] <= bestObj) return;

    // Try candidates of this cluster best-first by marginal gain.
    const auto& cands = clusters[order[level]];
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(cands.size());
    for (const std::size_t c : cands) {
      double gain = p.nodeWeight(c);
      for (const std::size_t prev : cur) gain += p.pairWeight(c, prev);
      ranked.emplace_back(gain, c);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [gain, c] : ranked) {
      if (score + gain + suffixUb[level + 1] <= bestObj) break;  // sorted: rest worse
      cur.push_back(c);
      descend(level + 1, score + gain);
      cur.pop_back();
      if (exhausted) return;
    }
  }
};

}  // namespace

SelectionProblem::Solution SelectionProblem::solveGreedy() const {
  const std::size_t k = clusters_.size();
  Solution sol;
  sol.exact = false;
  if (k == 0) return sol;
  for (const auto& c : clusters_) {
    assert(!c.empty() && "every cluster needs at least one candidate");
    (void)c;
  }

  // Greedy: clusters in input order, pick max marginal gain.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t pick = clusters_[i].front();
    double pickGain = -std::numeric_limits<double>::infinity();
    for (const std::size_t c : clusters_[i]) {
      double gain = nodeWeight_[c];
      for (const std::size_t prev : chosen) gain += pair_[c][prev];
      if (gain > pickGain) {
        pickGain = gain;
        pick = c;
      }
    }
    chosen.push_back(pick);
  }

  // Local search: re-pick one cluster at a time until fixpoint.
  bool improved = true;
  std::size_t rounds = 0;
  while (improved && rounds < 100) {
    improved = false;
    ++rounds;
    for (std::size_t i = 0; i < k; ++i) {
      double curContrib = nodeWeight_[chosen[i]];
      for (std::size_t j = 0; j < k; ++j)
        if (j != i) curContrib += pair_[chosen[i]][chosen[j]];
      for (const std::size_t c : clusters_[i]) {
        if (c == chosen[i]) continue;
        double contrib = nodeWeight_[c];
        for (std::size_t j = 0; j < k; ++j)
          if (j != i) contrib += pair_[c][chosen[j]];
        if (contrib > curContrib + 1e-12) {
          chosen[i] = c;
          curContrib = contrib;
          improved = true;
        }
      }
    }
  }

  sol.chosen = std::move(chosen);
  sol.objective = objective(sol.chosen);
  return sol;
}

SelectionProblem::Solution SelectionProblem::solveExact(std::size_t nodeBudget) const {
  trace::Span span("selection.exact_bnb", "graph", trace::Level::kCluster);
  Solution greedy = solveGreedy();
  if (clusters_.empty()) return {{}, 0.0, true};

  BnB bnb{*this, clusters_, nodeBudget, 0, false, {}, {}, -std::numeric_limits<double>::infinity(), {}, {}};
  bnb.run(greedy.chosen, greedy.objective);
  span.arg("explored", static_cast<std::int64_t>(bnb.explored));
  span.arg("exhausted", bnb.exhausted ? 1 : 0);

  Solution sol;
  sol.chosen = bnb.best;
  sol.objective = bnb.bestObj;
  sol.exact = !bnb.exhausted;
  return sol;
}

}  // namespace pacor::graph
