// Dsu is header-only; this TU anchors the target.
#include "graph/dsu.hpp"
