#pragma once

#include <span>
#include <vector>

#include "geom/point.hpp"
#include "graph/mst.hpp"

namespace pacor::graph {

/// Result of a rectilinear Steiner minimal tree heuristic.
struct SteinerTree {
  /// Added Steiner points (subset of the Hanan grid of the terminals).
  std::vector<geom::Point> steinerPoints;
  /// Tree edges over the concatenation [terminals..., steinerPoints...].
  std::vector<WeightedEdge> edges;
  std::int64_t cost = 0;
};

/// Iterated 1-Steiner heuristic (Kahng/Robins): repeatedly add the Hanan
/// grid point that reduces the Manhattan-MST cost the most, until no
/// candidate improves. Within ~1.5x of optimal in theory, typically a few
/// percent above on routing-sized inputs; O(n^4)-ish, fine for cluster
/// sizes. Provided as the wirelength-oriented alternative to the plain
/// MST topology for clusters without the length-matching constraint
/// (matched clusters need DME's equidistance, not minimal length).
SteinerTree iteratedOneSteiner(std::span<const geom::Point> terminals);

/// Cost of the plain Manhattan MST over the terminals (for comparison).
std::int64_t mstCost(std::span<const geom::Point> terminals);

}  // namespace pacor::graph
