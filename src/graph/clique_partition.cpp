#include "graph/clique_partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace pacor::graph {

std::vector<std::vector<std::size_t>> cliquePartition(const AdjacencyMatrix& g) {
  const std::size_t n = g.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Seed cliques from high-degree vertices: they have the most room to
  // grow, which empirically yields fewer cliques.
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return g.degree(a) > g.degree(b);
  });

  std::vector<bool> assigned(n, false);
  std::vector<std::vector<std::size_t>> cliques;
  for (const std::size_t seed : order) {
    if (assigned[seed]) continue;
    std::vector<std::size_t> clique{seed};
    assigned[seed] = true;
    // Grow greedily in degree order; candidates must be adjacent to the
    // whole clique so the invariant holds by construction.
    for (const std::size_t v : order) {
      if (assigned[v]) continue;
      if (g.adjacentToAll(v, clique)) {
        clique.push_back(v);
        assigned[v] = true;
      }
    }
    cliques.push_back(std::move(clique));
  }
  return cliques;
}

std::vector<std::vector<std::size_t>> cliquePartitionExact(const AdjacencyMatrix& g) {
  const std::size_t n = g.size();
  if (n == 0) return {};
  // 3^n subset DP: past this the tables alone are tens of MB and the
  // submask enumeration runs for minutes. A caller asking for *exact*
  // must not silently receive the greedy heuristic (that bug surfaced at
  // FPVA cluster counts); use cliquePartitionAuto for size-gated fallback.
  if (n > kMaxExactCliqueVertices)
    throw std::invalid_argument(
        "cliquePartitionExact: " + std::to_string(n) +
        " vertices exceeds the exact-DP capacity of " +
        std::to_string(kMaxExactCliqueVertices) +
        " (use cliquePartitionAuto or cliquePartition for larger graphs)");

  // Adjacency as bitmasks.
  std::vector<std::uint32_t> adj(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j && g.hasEdge(i, j)) adj[i] |= (1u << j);

  const std::uint32_t full = n == 32 ? ~0u : ((1u << n) - 1);
  // isClique[m]: drop the lowest vertex v; m is a clique iff m\{v} is a
  // clique and v is adjacent to all of m\{v}.
  std::vector<char> isClique(full + 1, 0);
  isClique[0] = 1;
  for (std::uint32_t m = 1; m <= full; ++m) {
    const auto v = static_cast<std::size_t>(__builtin_ctz(m));
    const std::uint32_t rest = m & (m - 1);
    isClique[m] = isClique[rest] && ((adj[v] & rest) == rest);
  }

  // f[S] = minimum cliques covering S; branch on the clique containing
  // S's lowest vertex (every cover has one), enumerated as submasks.
  // 32-bit values: clique counts never exceed n, but the arithmetic must
  // stay wide enough that f[S ^ clique] + 1 can never wrap the sentinel.
  constexpr std::uint32_t kInf = 0xFFFFFFFFu;
  std::vector<std::uint32_t> f(full + 1, kInf);
  std::vector<std::uint32_t> pick(full + 1, 0);
  f[0] = 0;
  for (std::uint32_t S = 1; S <= full; ++S) {
    const auto v = static_cast<std::size_t>(__builtin_ctz(S));
    const std::uint32_t withoutV = S & (S - 1);
    // Enumerate submasks of withoutV; clique candidate = sub | {v}.
    for (std::uint32_t sub = withoutV;; sub = (sub - 1) & withoutV) {
      const std::uint32_t clique = sub | (1u << v);
      if (isClique[clique] && f[S ^ clique] != kInf && f[S ^ clique] + 1 < f[S]) {
        f[S] = f[S ^ clique] + 1;
        pick[S] = clique;
      }
      if (sub == 0) break;
    }
  }

  std::vector<std::vector<std::size_t>> out;
  for (std::uint32_t S = full; S != 0; S ^= pick[S]) {
    std::vector<std::size_t> clique;
    for (std::uint32_t m = pick[S]; m != 0; m &= m - 1)
      clique.push_back(static_cast<std::size_t>(__builtin_ctz(m)));
    out.push_back(std::move(clique));
  }
  return out;
}

std::vector<std::vector<std::size_t>> cliquePartitionAuto(const AdjacencyMatrix& g,
                                                          std::size_t exactLimit) {
  // Clamp to the DP capacity so a generous exactLimit degrades to greedy
  // instead of tripping the cliquePartitionExact capacity throw.
  const std::size_t limit = std::min(exactLimit, kMaxExactCliqueVertices);
  return g.size() <= limit ? cliquePartitionExact(g) : cliquePartition(g);
}

bool isValidCliquePartition(const AdjacencyMatrix& g,
                            const std::vector<std::vector<std::size_t>>& partition) {
  std::vector<int> seen(g.size(), 0);
  for (const auto& clique : partition) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      if (clique[i] >= g.size()) return false;
      ++seen[clique[i]];
      for (std::size_t j = i + 1; j < clique.size(); ++j)
        if (!g.hasEdge(clique[i], clique[j])) return false;
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](int c) { return c == 1; });
}

}  // namespace pacor::graph
