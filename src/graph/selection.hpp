#pragma once

#include <cstddef>
#include <vector>

namespace pacor::graph {

/// One-candidate-per-cluster selection with pairwise interaction weights —
/// the combinatorial core of the paper's candidate Steiner tree selection
/// (Sec. 4.2). The paper builds a graph whose vertices are candidate trees
/// (node weight = length-mismatch cost, Eq. 2) and whose edges connect
/// candidates of *different* clusters (edge weight = overlap cost, Eq. 3),
/// then solves maximum weight clique with Gurobi ILP. Because candidates
/// of one cluster are never adjacent, a maximum clique that covers every
/// cluster is exactly a choice of one candidate per cluster maximizing
///   sum(node weights) + sum(pairwise weights of chosen pairs).
///
/// This class is the offline substitute for that ILP: an exact
/// branch-and-bound (all interaction weights <= 0 gives an additive upper
/// bound) plus a greedy + single-swap local search fallback for instances
/// above the exact-size cutoff.
class SelectionProblem {
 public:
  /// Registers a candidate for `cluster` (clusters must be dense indices
  /// 0..K-1) with its node weight. Returns the global candidate id.
  std::size_t addCandidate(std::size_t cluster, double nodeWeight);

  /// Sets the symmetric interaction weight between candidates a and b.
  /// Candidates must belong to different clusters. Weights are expected
  /// to be <= 0 (overlap penalties); positive weights still solve but may
  /// weaken the exact bound.
  void setPairWeight(std::size_t a, std::size_t b, double w);

  std::size_t clusterCount() const noexcept { return clusters_.size(); }
  std::size_t candidateCount() const noexcept { return clusterOf_.size(); }
  double nodeWeight(std::size_t cand) const { return nodeWeight_[cand]; }
  double pairWeight(std::size_t a, std::size_t b) const;

  /// Objective value of a full assignment (chosen[i] = candidate id of
  /// cluster i).
  double objective(const std::vector<std::size_t>& chosen) const;

  /// Exact optimum via branch-and-bound. `nodeBudget` caps the number of
  /// explored B&B nodes; on exhaustion the best incumbent (>= greedy) is
  /// returned and `exact` is set false.
  struct Solution {
    std::vector<std::size_t> chosen;  ///< candidate id per cluster
    double objective = 0.0;
    bool exact = true;
  };
  Solution solveExact(std::size_t nodeBudget = 20'000'000) const;

  /// Greedy construction + iterated single-cluster local search.
  Solution solveGreedy() const;

 private:
  std::vector<std::vector<std::size_t>> clusters_;  ///< cluster -> candidate ids
  std::vector<std::size_t> clusterOf_;              ///< candidate -> cluster
  std::vector<double> nodeWeight_;
  std::vector<std::vector<double>> pair_;  ///< dense symmetric matrix
};

}  // namespace pacor::graph
