#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace pacor::graph {

/// Dense undirected graph over n vertices stored as packed bit rows.
/// Used for compatibility graphs (valve clustering) and the candidate
/// Steiner tree conflict graph (MWCP selection).
class AdjacencyMatrix {
 public:
  AdjacencyMatrix() = default;
  explicit AdjacencyMatrix(std::size_t n)
      : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {}

  std::size_t size() const noexcept { return n_; }

  void addEdge(std::size_t a, std::size_t b) {
    assert(a < n_ && b < n_ && a != b);
    bits_[a * words_ + b / 64] |= (std::uint64_t{1} << (b % 64));
    bits_[b * words_ + a / 64] |= (std::uint64_t{1} << (a % 64));
  }

  bool hasEdge(std::size_t a, std::size_t b) const noexcept {
    assert(a < n_ && b < n_);
    return (bits_[a * words_ + b / 64] >> (b % 64)) & 1;
  }

  std::size_t degree(std::size_t v) const noexcept {
    std::size_t d = 0;
    for (std::size_t w = 0; w < words_; ++w)
      d += static_cast<std::size_t>(__builtin_popcountll(bits_[v * words_ + w]));
    return d;
  }

  /// True when v is adjacent to every vertex in `clique`.
  bool adjacentToAll(std::size_t v, const std::vector<std::size_t>& clique) const noexcept {
    for (const std::size_t u : clique)
      if (!hasEdge(v, u)) return false;
    return true;
  }

 private:
  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace pacor::graph
