#include "graph/min_cost_flow.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <unordered_map>

namespace pacor::graph {

MinCostFlow::MinCostFlow(std::size_t nodeCount)
    : nodes_(nodeCount, Node{0, 0, -1, 0, 0, 0}),
      nodeBits_(std::max<unsigned>(1, std::bit_width(nodeCount))) {}

void MinCostFlow::heapPush(std::vector<std::uint64_t>& heap, std::uint64_t key) {
  std::size_t i = heap.size();
  heap.push_back(key);
  while (i > 0) {
    const std::size_t p = (i - 1) >> 2;
    if (heap[p] <= key) break;
    heap[i] = heap[p];
    i = p;
  }
  heap[i] = key;
}

std::uint64_t MinCostFlow::heapPop(std::vector<std::uint64_t>& heap) {
  const std::uint64_t top = heap.front();
  const std::uint64_t last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t c = 4 * i + 1;
      if (c >= n) break;
      std::size_t m = c;
      const std::size_t hi = std::min(c + 4, n);
      for (std::size_t j = c + 1; j < hi; ++j)
        if (heap[j] < heap[m]) m = j;
      if (last <= heap[m]) break;
      heap[i] = heap[m];
      i = m;
    }
    heap[i] = last;
  }
  return top;
}

void MinCostFlow::bmInsert(std::size_t v) {
  const std::size_t w0 = v >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (v & 63);
  if ((bmL0_[w0] & bit) != 0) return;  // idempotent: dedups same-distance pushes
  bmL0_[w0] |= bit;
  bmL1_[w0 >> 6] |= std::uint64_t{1} << (w0 & 63);
  bmL2_[w0 >> 12] |= std::uint64_t{1} << ((w0 >> 6) & 63);
  ++bmCount_;
}

std::size_t MinCostFlow::bmPopMin() {
  std::size_t w2 = 0;
  while (bmL2_[w2] == 0) ++w2;
  const std::size_t w1 =
      (w2 << 6) + static_cast<std::size_t>(std::countr_zero(bmL2_[w2]));
  const std::size_t w0 =
      (w1 << 6) + static_cast<std::size_t>(std::countr_zero(bmL1_[w1]));
  const std::size_t v =
      (w0 << 6) + static_cast<std::size_t>(std::countr_zero(bmL0_[w0]));
  bmL0_[w0] &= bmL0_[w0] - 1;
  if (bmL0_[w0] == 0) {
    bmL1_[w1] &= ~(std::uint64_t{1} << (w0 & 63));
    if (bmL1_[w1] == 0) bmL2_[w2] &= ~(std::uint64_t{1} << (w1 & 63));
  }
  --bmCount_;
  return v;
}

void MinCostFlow::bmClearAll() {
  for (std::size_t w2 = 0; w2 < bmL2_.size(); ++w2) {
    std::uint64_t m2 = bmL2_[w2];
    while (m2 != 0) {
      const std::size_t w1 =
          (w2 << 6) + static_cast<std::size_t>(std::countr_zero(m2));
      std::uint64_t m1 = bmL1_[w1];
      while (m1 != 0) {
        bmL0_[(w1 << 6) + static_cast<std::size_t>(std::countr_zero(m1))] = 0;
        m1 &= m1 - 1;
      }
      bmL1_[w1] = 0;
      m2 &= m2 - 1;
    }
    bmL2_[w2] = 0;
  }
  bmCount_ = 0;
}

std::size_t MinCostFlow::addEdge(std::size_t u, std::size_t v, std::int64_t capacity,
                                 std::int64_t cost) {
  assert(u < nodes_.size() && v < nodes_.size());
  assert(capacity >= 0 && cost >= 0);
  assert(cost <= std::numeric_limits<std::int32_t>::max());
  const std::size_t id = baseCap_.size();
  arcFrom_.push_back(static_cast<std::int32_t>(u));
  arcTo_.push_back(static_cast<std::int32_t>(v));
  arcCap_.push_back(capacity);
  arcCost_.push_back(cost);
  arcFrom_.push_back(static_cast<std::int32_t>(v));
  arcTo_.push_back(static_cast<std::int32_t>(u));
  arcCap_.push_back(0);
  arcCost_.push_back(-cost);
  baseCap_.push_back(capacity);
  if (csrBuilt_) {
    linkOverlayArc(2 * id);
    linkOverlayArc(2 * id + 1);
    // A new residual arc may have negative reduced cost under the current
    // potentials; harmless when the network is at zero flow (the repair
    // degenerates to re-zeroing).
    if (capacity > 0) potentialsDirty_ = true;
  }
  return id;
}

void MinCostFlow::linkOverlayArc(std::size_t arcId) {
  if (ovHead_.empty()) {
    ovHead_.assign(nodes_.size(), -1);
    ovTail_.assign(nodes_.size(), -1);
  }
  const std::size_t j = arcId - builtArcs_;
  if (ovNext_.size() <= j) {
    ovNext_.resize(j + 1);
    ovPrev_.resize(j + 1);
  }
  const auto u = static_cast<std::size_t>(arcFrom_[arcId]);
  // Sticky "may have overlay arcs" marker in the node's own (hot, already
  // loaded) record: the Dijkstra settle loop reads it instead of a random
  // ovHead_ lookup per settle. Conservative -- truncateEdges leaves it set,
  // and a stale marker just re-checks ovHead_ once.
  nodes_[u].pad |= 1;
  ovNext_[j] = -1;
  ovPrev_[j] = ovTail_[u];
  if (ovTail_[u] == -1)
    ovHead_[u] = static_cast<std::int32_t>(arcId);
  else
    ovNext_[static_cast<std::size_t>(ovTail_[u]) - builtArcs_] =
        static_cast<std::int32_t>(arcId);
  ovTail_[u] = static_cast<std::int32_t>(arcId);
}

std::int64_t MinCostFlow::capOfArc(std::size_t arcId) const {
  // Caps move into csrArc_ once the CSR exists; overlay arcs (and all arcs
  // before the build) keep theirs in arcCap_.
  return csrBuilt_ && arcId < builtArcs_
             ? csrArc_[static_cast<std::size_t>(arcPos_[arcId])].cap
             : arcCap_[arcId];
}

void MinCostFlow::setArcResidual(std::size_t arcId, std::int64_t cap) {
  if (csrBuilt_ && arcId < builtArcs_)
    csrArc_[static_cast<std::size_t>(arcPos_[arcId])].cap = cap;
  else
    arcCap_[arcId] = cap;
}

std::int64_t MinCostFlow::zeroFlowCap(std::size_t arcId) const {
  if (arcEndpointDisabled(arcId)) return 0;
  return (arcId & 1) != 0 ? 0 : baseCap_[arcId >> 1];
}

void MinCostFlow::markDirtyArc(std::size_t arcId) {
  if (arcId < builtArcs_)
    dirtyCsr_.push_back(arcPos_[arcId]);
  else
    dirtyOv_.push_back(static_cast<std::int32_t>(arcId));
}

void MinCostFlow::ensureCsr() {
  if (csrBuilt_) return;
  csrBuilt_ = true;
  builtArcs_ = arcFrom_.size();

  const std::size_t n = nodes_.size();
  // Counting sort of arc ids by source node: per-node arcs end up in
  // increasing arc id = chronological order, the order the old adjacency
  // lists iterated in.
  csrStart_.assign(n + 1, 0);
  for (const std::int32_t u : arcFrom_) ++csrStart_[static_cast<std::size_t>(u) + 1];
  for (std::size_t u = 0; u < n; ++u) csrStart_[u + 1] += csrStart_[u];
  arcPos_.resize(builtArcs_);
  std::vector<std::size_t> fill(csrStart_.begin(), csrStart_.end() - 1);
  for (std::size_t a = 0; a < builtArcs_; ++a)
    arcPos_[a] = static_cast<std::int32_t>(fill[static_cast<std::size_t>(arcFrom_[a])]++);

  csrArc_.resize(builtArcs_);
  csrRev_.resize(builtArcs_);
  csrArcId_.resize(builtArcs_);
  for (std::size_t a = 0; a < builtArcs_; ++a) {
    const auto k = static_cast<std::size_t>(arcPos_[a]);
    csrArc_[k] = {arcCap_[a], arcTo_[a], static_cast<std::int32_t>(arcCost_[a])};
    csrRev_[k] = arcPos_[a ^ 1];
    csrArcId_[k] = static_cast<std::int32_t>(a);
  }

  for (Node& node : nodes_) node.distStamp = node.doneStamp = 0;
  epoch_ = 0;
}

namespace {

/// Visits every arc out of `node` in scan order (CSR arcs, then overlay
/// chain); stops early when `fn` returns true.
template <typename Fn>
void forEachArcFromImpl(const std::vector<std::size_t>& csrStart,
                        const std::vector<std::int32_t>& csrArcId, bool csrBuilt,
                        const std::vector<std::int32_t>& ovHead,
                        const std::vector<std::int32_t>& ovNext,
                        std::size_t builtArcs, std::size_t node, Fn&& fn) {
  if (csrBuilt) {
    const std::size_t end = csrStart[node + 1];
    for (std::size_t k = csrStart[node]; k < end; ++k)
      if (fn(static_cast<std::size_t>(csrArcId[k]))) return;
  }
  if (!ovHead.empty()) {
    for (std::int32_t a = ovHead[node]; a != -1;
         a = ovNext[static_cast<std::size_t>(a) - builtArcs])
      if (fn(static_cast<std::size_t>(a))) return;
  }
}

}  // namespace

template <typename Pred>
std::int64_t MinCostFlow::findArcFrom(std::size_t node, Pred&& pred) const {
  std::int64_t found = -1;
  forEachArcFromImpl(csrStart_, csrArcId_, csrBuilt_, ovHead_, ovNext_, builtArcs_,
                     node, [&](std::size_t a) {
                       if (!pred(a)) return false;
                       found = static_cast<std::int64_t>(a);
                       return true;
                     });
  return found;
}

void MinCostFlow::cancelUnitBackwardFrom(std::size_t node) {
  // Remove one unit of flow arriving at `node` by walking flow-carrying
  // arcs backwards; stops at the source (no incoming flow). Every step
  // lowers total routed volume by one unit, so the walk terminates even if
  // the flow decomposition contains cycles.
  for (;;) {
    const std::int64_t back = findArcFrom(
        node, [&](std::size_t a) { return (a & 1) != 0 && capOfArc(a) > 0; });
    if (back < 0) return;
    const auto b = static_cast<std::size_t>(back);
    setArcResidual(b, capOfArc(b) - 1);
    setArcResidual(b ^ 1, capOfArc(b ^ 1) + 1);
    markDirtyArc(b);
    markDirtyArc(b ^ 1);
    node = static_cast<std::size_t>(arcTo_[b]);
  }
}

void MinCostFlow::cancelUnitForwardFrom(std::size_t node) {
  // Remove one unit of flow leaving `node`, walking toward the sink.
  for (;;) {
    const std::int64_t fwd = findArcFrom(
        node, [&](std::size_t a) { return (a & 1) == 0 && capOfArc(a ^ 1) > 0; });
    if (fwd < 0) return;
    const auto a = static_cast<std::size_t>(fwd);
    setArcResidual(a, capOfArc(a) + 1);
    setArcResidual(a ^ 1, capOfArc(a ^ 1) - 1);
    markDirtyArc(a);
    markDirtyArc(a ^ 1);
    node = static_cast<std::size_t>(arcTo_[a]);
  }
}

std::int64_t MinCostFlow::cancelFlowThrough(std::size_t edgeId,
                                            std::int64_t maxUnits) {
  ensureCsr();
  std::int64_t cancelled = 0;
  const std::size_t fwd = 2 * edgeId;
  while (cancelled < maxUnits && flowOn(edgeId) > 0) {
    setArcResidual(fwd, capOfArc(fwd) + 1);
    setArcResidual(fwd ^ 1, capOfArc(fwd ^ 1) - 1);
    markDirtyArc(fwd);
    markDirtyArc(fwd ^ 1);
    cancelUnitBackwardFrom(static_cast<std::size_t>(arcFrom_[fwd]));
    cancelUnitForwardFrom(static_cast<std::size_t>(arcTo_[fwd]));
    ++cancelled;
  }
  if (cancelled > 0) {
    flowUnits_ = std::max<std::int64_t>(0, flowUnits_ - cancelled);
    // Restored forward residual capacity can carry negative reduced cost.
    potentialsDirty_ = true;
  }
  return cancelled;
}

std::int64_t MinCostFlow::cancelFlowThroughNode(std::size_t node) {
  ensureCsr();
  std::int64_t cancelled = 0;
  // Units passing through (or terminating at) `node`: consume an incoming
  // unit, then its matching outgoing unit if conservation forwards one.
  for (;;) {
    const std::int64_t in = findArcFrom(
        node, [&](std::size_t a) { return (a & 1) != 0 && capOfArc(a) > 0; });
    if (in < 0) break;
    const auto b = static_cast<std::size_t>(in);
    setArcResidual(b, capOfArc(b) - 1);
    setArcResidual(b ^ 1, capOfArc(b ^ 1) + 1);
    markDirtyArc(b);
    markDirtyArc(b ^ 1);
    cancelUnitBackwardFrom(static_cast<std::size_t>(arcTo_[b]));
    const std::int64_t out = findArcFrom(
        node, [&](std::size_t a) { return (a & 1) == 0 && capOfArc(a ^ 1) > 0; });
    if (out >= 0) {
      const auto a = static_cast<std::size_t>(out);
      setArcResidual(a, capOfArc(a) + 1);
      setArcResidual(a ^ 1, capOfArc(a ^ 1) - 1);
      markDirtyArc(a);
      markDirtyArc(a ^ 1);
      cancelUnitForwardFrom(static_cast<std::size_t>(arcTo_[a]));
    }
    ++cancelled;
  }
  // Units originating at `node` (source-like): leftover outgoing flow.
  for (;;) {
    const std::int64_t out = findArcFrom(
        node, [&](std::size_t a) { return (a & 1) == 0 && capOfArc(a ^ 1) > 0; });
    if (out < 0) break;
    const auto a = static_cast<std::size_t>(out);
    setArcResidual(a, capOfArc(a) + 1);
    setArcResidual(a ^ 1, capOfArc(a ^ 1) - 1);
    markDirtyArc(a);
    markDirtyArc(a ^ 1);
    cancelUnitForwardFrom(static_cast<std::size_t>(arcTo_[a]));
    ++cancelled;
  }
  if (cancelled > 0) {
    flowUnits_ = std::max<std::int64_t>(0, flowUnits_ - cancelled);
    potentialsDirty_ = true;
  }
  return cancelled;
}

void MinCostFlow::setCapacity(std::size_t edgeId, std::int64_t capacity) {
  assert(edgeId < baseCap_.size());
  assert(capacity >= 0);
  ensureCsr();
  std::int64_t flow = flowOn(edgeId);
  if (flow > capacity) {
    cancelFlowThrough(edgeId, flow - capacity);
    flow = capacity;
  }
  const std::int64_t old = baseCap_[edgeId];
  baseCap_[edgeId] = capacity;
  if (!arcEndpointDisabled(2 * edgeId)) {
    setArcResidual(2 * edgeId, capacity - flow);
    if (capacity > old) potentialsDirty_ = true;
  }
}

void MinCostFlow::disableNode(std::size_t node) {
  assert(node < nodes_.size());
  ensureCsr();
  if (disabled_.empty()) disabled_.assign(nodes_.size(), 0);
  if (disabled_[node] != 0) return;
  cancelFlowThroughNode(node);
  disabled_[node] = 1;
  // Zero every incident arc: the node's own arcs plus their reverses cover
  // each incident edge exactly once. Capacity only shrinks here, so the
  // potentials stay valid (beyond what the cancellation already flagged).
  forEachArcFromImpl(csrStart_, csrArcId_, csrBuilt_, ovHead_, ovNext_, builtArcs_,
                     node, [&](std::size_t a) {
                       setArcResidual(a, 0);
                       setArcResidual(a ^ 1, 0);
                       return false;
                     });
}

void MinCostFlow::enableNode(std::size_t node) {
  assert(node < nodes_.size());
  ensureCsr();
  if (disabled_.empty() || disabled_[node] == 0) return;
  disabled_[node] = 0;
  forEachArcFromImpl(csrStart_, csrArcId_, csrBuilt_, ovHead_, ovNext_, builtArcs_,
                     node, [&](std::size_t a) {
                       // Arcs to a still-disabled neighbor stay closed; the
                       // rest return to their zero-flow capacity (no flow
                       // can traverse a disabled node, so there is none to
                       // preserve on any incident arc).
                       if (!nodeDisabled(static_cast<std::size_t>(arcTo_[a]))) {
                         setArcResidual(a, zeroFlowCap(a));
                         setArcResidual(a ^ 1, zeroFlowCap(a ^ 1));
                       }
                       return false;
                     });
  potentialsDirty_ = true;
}

void MinCostFlow::resetFlow() {
  counters_.warmArcTouches += dirtyCsr_.size() + dirtyOv_.size();
  for (const std::int32_t k : dirtyCsr_)
    csrArc_[static_cast<std::size_t>(k)].cap =
        zeroFlowCap(static_cast<std::size_t>(csrArcId_[static_cast<std::size_t>(k)]));
  for (const std::int32_t a : dirtyOv_)
    arcCap_[static_cast<std::size_t>(a)] = zeroFlowCap(static_cast<std::size_t>(a));
  dirtyCsr_.clear();
  dirtyOv_.clear();
  for (Node& node : nodes_) node.potential = 0;
  flowUnits_ = 0;
  potentialsDirty_ = false;
}

void MinCostFlow::truncateEdges(std::size_t edgeCount) {
  assert(edgeCount <= baseCap_.size());
  const std::size_t keepArcs = 2 * edgeCount;
  if (csrBuilt_) {
    assert(keepArcs >= builtArcs_ && "only overlay edges can be truncated");
    for (std::size_t a = arcFrom_.size(); a > keepArcs;) {
      --a;
      assert(capOfArc(a) == zeroFlowCap(a) && "truncated edges must be flow-free");
      // Dropping the suffix in reverse insertion order means each dropped
      // arc is currently the tail of its node's overlay chain.
      const auto u = static_cast<std::size_t>(arcFrom_[a]);
      const std::size_t j = a - builtArcs_;
      assert(ovTail_[u] == static_cast<std::int32_t>(a));
      const std::int32_t prev = ovPrev_[j];
      ovTail_[u] = prev;
      if (prev == -1)
        ovHead_[u] = -1;
      else
        ovNext_[static_cast<std::size_t>(prev) - builtArcs_] = -1;
    }
    ovNext_.resize(keepArcs - builtArcs_);
    ovPrev_.resize(keepArcs - builtArcs_);
    dirtyOv_.erase(std::remove_if(dirtyOv_.begin(), dirtyOv_.end(),
                                  [&](std::int32_t a) {
                                    return static_cast<std::size_t>(a) >= keepArcs;
                                  }),
                   dirtyOv_.end());
  }
  arcFrom_.resize(keepArcs);
  arcTo_.resize(keepArcs);
  arcCap_.resize(keepArcs);
  arcCost_.resize(keepArcs);
  baseCap_.resize(edgeCount);
}

void MinCostFlow::repairPotentials() {
  potentialsDirty_ = false;
  if (flowUnits_ == 0 && dirtyCsr_.empty() && dirtyOv_.empty()) {
    // Zero flow: zero potentials are trivially valid (all costs >= 0).
    for (Node& node : nodes_) node.potential = 0;
    return;
  }
  // General repair: Bellman-Ford from a virtual source at distance zero to
  // every node yields potentials under which all reduced costs are
  // non-negative -- provided the residual graph has no negative cycle.
  // Cancellation can leave one (the remaining flow need not be min-cost
  // for its value); push flow around any such cycle first, which keeps the
  // flow value, strictly lowers its cost, and therefore terminates. This
  // path is never taken by the escape session (it resets to zero flow
  // before editing).
  const std::size_t n = nodes_.size();
  std::vector<std::int32_t> parent(n, -1);
  for (;;) {
    for (Node& node : nodes_) node.potential = 0;
    std::fill(parent.begin(), parent.end(), -1);
    std::int64_t relaxedNode = -1;
    for (std::size_t iter = 0; iter < n; ++iter) {
      relaxedNode = -1;
      for (std::size_t a = 0; a < arcFrom_.size(); ++a) {
        if (capOfArc(a) <= 0) continue;
        const auto u = static_cast<std::size_t>(arcFrom_[a]);
        const auto v = static_cast<std::size_t>(arcTo_[a]);
        const std::int64_t nd = nodes_[u].potential + arcCost_[a];
        if (nd < nodes_[v].potential) {
          nodes_[v].potential = nd;
          parent[v] = static_cast<std::int32_t>(a);
          relaxedNode = static_cast<std::int64_t>(v);
        }
      }
      if (relaxedNode < 0) break;
    }
    if (relaxedNode < 0) return;  // converged: potentials valid
    // A relaxation surviving n sweeps pinpoints a negative cycle: walk the
    // parent chain n steps to land on it, then collect and cancel it.
    auto x = static_cast<std::size_t>(relaxedNode);
    for (std::size_t i = 0; i < n; ++i)
      x = static_cast<std::size_t>(arcFrom_[static_cast<std::size_t>(parent[x])]);
    std::vector<std::size_t> cycleArcs;
    std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
    for (std::size_t v = x;;) {
      const auto a = static_cast<std::size_t>(parent[v]);
      cycleArcs.push_back(a);
      bottleneck = std::min(bottleneck, capOfArc(a));
      v = static_cast<std::size_t>(arcFrom_[a]);
      if (v == x) break;
    }
    for (const std::size_t a : cycleArcs) {
      setArcResidual(a, capOfArc(a) - bottleneck);
      setArcResidual(a ^ 1, capOfArc(a ^ 1) + bottleneck);
      markDirtyArc(a);
      markDirtyArc(a ^ 1);
    }
  }
}

std::int64_t MinCostFlow::firstArcCode(std::size_t u) const {
  if (csrStart_[u] < csrStart_[u + 1])
    return static_cast<std::int64_t>(csrStart_[u]);
  if (!ovHead_.empty() && ovHead_[u] != -1)
    return -static_cast<std::int64_t>(ovHead_[u]) - 2;
  return -1;
}

std::int64_t MinCostFlow::nextArcCode(std::size_t u, std::int64_t code) const {
  if (code >= 0) {
    const std::size_t k = static_cast<std::size_t>(code) + 1;
    if (k < csrStart_[u + 1]) return static_cast<std::int64_t>(k);
    if (!ovHead_.empty() && ovHead_[u] != -1)
      return -static_cast<std::int64_t>(ovHead_[u]) - 2;
    return -1;
  }
  const auto a = static_cast<std::size_t>(-code - 2);
  const std::int32_t next = ovNext_[a - builtArcs_];
  return next == -1 ? -1 : -static_cast<std::int64_t>(next) - 2;
}

std::int64_t MinCostFlow::residualOfCode(std::int64_t code) const {
  return code >= 0 ? csrArc_[static_cast<std::size_t>(code)].cap
                   : arcCap_[static_cast<std::size_t>(-code - 2)];
}

std::int32_t MinCostFlow::headOfCode(std::int64_t code) const {
  return code >= 0 ? csrArc_[static_cast<std::size_t>(code)].to
                   : arcTo_[static_cast<std::size_t>(-code - 2)];
}

std::int32_t MinCostFlow::tailOfCode(std::int64_t code) const {
  if (code >= 0) {
    const auto k = static_cast<std::size_t>(code);
    return csrArc_[static_cast<std::size_t>(csrRev_[k])].to;
  }
  return arcFrom_[static_cast<std::size_t>(-code - 2)];
}

std::int64_t MinCostFlow::costOfCode(std::int64_t code) const {
  return code >= 0 ? csrArc_[static_cast<std::size_t>(code)].cost
                   : arcCost_[static_cast<std::size_t>(-code - 2)];
}

void MinCostFlow::pushOnCode(std::int64_t code, std::int64_t units) {
  if (code >= 0) {
    const auto k = static_cast<std::size_t>(code);
    const auto r = static_cast<std::size_t>(csrRev_[k]);
    csrArc_[k].cap -= units;
    csrArc_[r].cap += units;
    dirtyCsr_.push_back(static_cast<std::int32_t>(k));
    dirtyCsr_.push_back(csrRev_[k]);
  } else {
    const auto a = static_cast<std::size_t>(-code - 2);
    arcCap_[a] -= units;
    arcCap_[a ^ 1] += units;
    dirtyOv_.push_back(static_cast<std::int32_t>(a));
    dirtyOv_.push_back(static_cast<std::int32_t>(a ^ 1));
  }
}

std::int64_t MinCostFlow::remainingSinkCapacity(std::size_t t) const {
  // Residual capacity of every arc INTO t = the partners of t's outgoing
  // arcs (arcs come in 2e/2e+1 pairs). Every augmenting path is simple
  // and ends on one such arc, so each routed unit consumes exactly one
  // unit of this sum: zero remaining capacity proves no augmenting path
  // exists, making the skip exactly equivalent to running a failing pass.
  std::int64_t cap = 0;
  forEachArcFromImpl(csrStart_, csrArcId_, csrBuilt_, ovHead_, ovNext_, builtArcs_,
                     t, [&](std::size_t a) {
                       cap += capOfArc(a ^ 1);
                       return false;
                     });
  return cap;
}

std::int64_t MinCostFlow::augmentTightPaths(std::size_t s, std::size_t t,
                                            std::int64_t budget, std::int64_t& cost) {
  // Blocking-flow DFS over the admissible subgraph: residual arcs whose
  // reduced cost under the just-updated potentials is zero. Every tight
  // s->t path costs exactly the pass's sink distance (reduced costs
  // telescope to zero), so saturating any set of them preserves the SSP
  // optimality invariant; reverse arcs of tight arcs are tight too, so
  // the potentials stay valid for the next Dijkstra pass. Standard
  // current-arc + blocked-node marking bounds the phase by O(arcs +
  // paths * length); a node marked blocked cannot regain an admissible
  // outgoing arc within the phase, because augmentations only add
  // residual on reverse arcs out of on-path nodes.
  const std::size_t n = nodes_.size();
  if (dfsCur_.size() < n) {
    dfsCur_.assign(n, -1);
    dfsCurStamp_.assign(n, 0);
    dfsBlockedStamp_.assign(n, 0);
    dfsOnPathStamp_.assign(n, 0);
  }
  if (++dfsPhase_ == 0) {
    std::fill(dfsCurStamp_.begin(), dfsCurStamp_.end(), 0);
    std::fill(dfsBlockedStamp_.begin(), dfsBlockedStamp_.end(), 0);
    dfsPhase_ = 1;
  }
  std::int64_t total = 0;
  while (total < budget) {
    if (++dfsPathId_ == 0) {
      std::fill(dfsOnPathStamp_.begin(), dfsOnPathStamp_.end(), 0);
      dfsPathId_ = 1;
    }
    dfsStackNode_.clear();
    dfsStackArc_.clear();
    dfsStackNode_.push_back(static_cast<std::int32_t>(s));
    dfsOnPathStamp_[s] = dfsPathId_;
    bool reached = false;
    while (!dfsStackNode_.empty()) {
      const auto u = static_cast<std::size_t>(dfsStackNode_.back());
      if (u == t) {
        reached = true;
        break;
      }
      std::int64_t cur = dfsCurStamp_[u] == dfsPhase_ ? dfsCur_[u] : firstArcCode(u);
      dfsCurStamp_[u] = dfsPhase_;
      const std::int64_t potU = nodes_[u].potential;
      std::int64_t chosen = -1;
      for (; cur != -1; cur = nextArcCode(u, cur)) {
        if (residualOfCode(cur) <= 0) continue;
        const auto v = static_cast<std::size_t>(headOfCode(cur));
        if (dfsBlockedStamp_[v] == dfsPhase_ || dfsOnPathStamp_[v] == dfsPathId_)
          continue;
        if (costOfCode(cur) + potU - nodes_[v].potential != 0) continue;
        chosen = cur;
        break;
      }
      dfsCur_[u] = cur;
      // Arc codes are >= 0 (CSR) or <= -2 (overlay); only the -1 sentinel
      // means no admissible arc survived the scan.
      if (chosen == -1) {
        dfsBlockedStamp_[u] = dfsPhase_;
        dfsStackNode_.pop_back();
        if (!dfsStackArc_.empty()) dfsStackArc_.pop_back();
      } else {
        const auto v = static_cast<std::size_t>(headOfCode(chosen));
        dfsStackNode_.push_back(static_cast<std::int32_t>(v));
        dfsOnPathStamp_[v] = dfsPathId_;
        dfsStackArc_.push_back(chosen);
      }
    }
    if (!reached) break;
    std::int64_t push = budget - total;
    for (const std::int64_t code : dfsStackArc_)
      push = std::min(push, residualOfCode(code));
    for (const std::int64_t code : dfsStackArc_) {
      pushOnCode(code, push);
      cost += push * costOfCode(code);
    }
    total += push;
    ++counters_.augmentations;
    ++counters_.multiAugPaths;
  }
  return total;
}

bool MinCostFlow::augmentBidir(std::size_t s, std::size_t t, std::int64_t& cost) {
  // Bidirectional Dijkstra over reduced costs for the final unit of
  // demand: forward from s over residual arcs, backward from t over the
  // partners of each settled node's outgoing arcs (= its incoming residual
  // arcs), stopping once the best meeting-node path cannot be beaten by
  // the two frontier minima. The found path is a shortest path w.r.t.
  // reduced (hence actual) cost, so augmenting it keeps the flow optimal;
  // it is generally NOT tight under the current potentials, so they are
  // flagged dirty for any later run() on the accumulated flow.
  ++counters_.bidirPasses;
  const std::size_t n = nodes_.size();
  if (bnodes_.size() < n) bnodes_.assign(n, BNode{0, -1, 0, 0});
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    for (Node& node : nodes_) node.distStamp = node.doneStamp = 0;
    epoch_ = 0;
  }
  ++epoch_;
  if (bepoch_ == std::numeric_limits<std::uint32_t>::max()) {
    for (BNode& node : bnodes_) node.distStamp = node.doneStamp = 0;
    bepoch_ = 0;
  }
  ++bepoch_;
  heap_.clear();
  heapB_.clear();

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  std::int64_t best = kInf;
  std::size_t meet = static_cast<std::size_t>(-1);
  const auto consider = [&](std::size_t v) {
    if (nodes_[v].distStamp == epoch_ && bnodes_[v].distStamp == bepoch_) {
      const std::int64_t c = nodes_[v].dist + bnodes_[v].dist;
      if (c < best) {
        best = c;
        meet = v;
      }
    }
  };

  const std::uint64_t nodeMask = (std::uint64_t{1} << nodeBits_) - 1;
  nodes_[s].dist = 0;
  nodes_[s].prevArc = -1;
  nodes_[s].distStamp = epoch_;
  bnodes_[t].dist = 0;
  bnodes_[t].prevArc = -1;
  bnodes_[t].distStamp = bepoch_;
  heapPush(heap_, static_cast<std::uint64_t>(s));
  heapPush(heapB_, static_cast<std::uint64_t>(t));
  consider(s);
  consider(t);

  while (!heap_.empty() || !heapB_.empty()) {
    const std::int64_t topF =
        heap_.empty() ? kInf : static_cast<std::int64_t>(heap_.front() >> nodeBits_);
    const std::int64_t topB =
        heapB_.empty() ? kInf
                       : static_cast<std::int64_t>(heapB_.front() >> nodeBits_);
    if (best <= (topF >= kInf || topB >= kInf ? kInf : topF + topB)) break;
    if (topF <= topB) {
      const std::uint64_t top = heapPop(heap_);
      ++counters_.queuePops;
      const auto u = static_cast<std::size_t>(top & nodeMask);
      if (nodes_[u].doneStamp == epoch_) continue;
      nodes_[u].doneStamp = epoch_;
      ++counters_.settles;
      const auto d = static_cast<std::int64_t>(top >> nodeBits_);
      const std::int64_t potU = nodes_[u].potential;
      for (std::int64_t code = firstArcCode(u); code != -1;
           code = nextArcCode(u, code)) {
        if (residualOfCode(code) <= 0) continue;
        const auto v = static_cast<std::size_t>(headOfCode(code));
        Node& node = nodes_[v];
        if (node.doneStamp == epoch_) continue;
        const std::int64_t nd = d + costOfCode(code) + potU - node.potential;
        assert(nd >= d && "reduced cost must be non-negative");
        if (node.distStamp != epoch_ || nd < node.dist) {
          node.dist = nd;
          node.prevArc = static_cast<std::int32_t>(code);
          node.distStamp = epoch_;
          heapPush(heap_, (static_cast<std::uint64_t>(nd) << nodeBits_) |
                              static_cast<std::uint64_t>(v));
          ++counters_.heapPushes;
          consider(v);
        }
      }
    } else {
      const std::uint64_t top = heapPop(heapB_);
      ++counters_.queuePops;
      const auto w = static_cast<std::size_t>(top & nodeMask);
      if (bnodes_[w].doneStamp == bepoch_) continue;
      bnodes_[w].doneStamp = bepoch_;
      ++counters_.settles;
      const auto d = static_cast<std::int64_t>(top >> nodeBits_);
      const std::int64_t potW = nodes_[w].potential;
      for (std::int64_t code = firstArcCode(w); code != -1;
           code = nextArcCode(w, code)) {
        // Partner arc: x -> w, the residual arc into w this step relaxes.
        std::int64_t partner;
        std::size_t x;
        if (code >= 0) {
          partner = static_cast<std::int64_t>(csrRev_[static_cast<std::size_t>(code)]);
          x = static_cast<std::size_t>(csrArc_[static_cast<std::size_t>(code)].to);
        } else {
          const auto a = static_cast<std::size_t>(-code - 2);
          partner = -static_cast<std::int64_t>(a ^ 1) - 2;
          x = static_cast<std::size_t>(arcTo_[a]);
        }
        if (residualOfCode(partner) <= 0) continue;
        BNode& node = bnodes_[x];
        if (node.doneStamp == bepoch_) continue;
        const std::int64_t nd =
            d + costOfCode(partner) + nodes_[x].potential - potW;
        assert(nd >= d && "reduced cost must be non-negative");
        if (node.distStamp != bepoch_ || nd < node.dist) {
          node.dist = nd;
          node.prevArc = static_cast<std::int32_t>(partner);
          node.distStamp = bepoch_;
          heapPush(heapB_, (static_cast<std::uint64_t>(nd) << nodeBits_) |
                               static_cast<std::uint64_t>(x));
          ++counters_.heapPushes;
          consider(x);
        }
      }
    }
  }
  if (meet == static_cast<std::size_t>(-1)) return false;

  // Stitch the two prevArc chains into one arc-code walk s -> ... -> t.
  std::vector<std::int64_t> codes;
  for (std::size_t v = meet; v != s;) {
    const std::int32_t code = nodes_[v].prevArc;
    codes.push_back(code);
    v = static_cast<std::size_t>(tailOfCode(code));
  }
  std::reverse(codes.begin(), codes.end());
  for (std::size_t v = meet; v != t;) {
    const std::int32_t code = bnodes_[v].prevArc;
    codes.push_back(code);
    v = static_cast<std::size_t>(headOfCode(code));
  }

  // The halves may overlap (a node settled by both sides); excise any
  // cycle so each arc appears at most once — cycles on a shortest walk
  // have zero reduced cost, so the remaining simple path is still minimal.
  std::vector<std::int64_t> path;
  std::vector<std::size_t> nodeSeq{s};
  std::unordered_map<std::size_t, std::size_t> at{{s, 0}};
  for (const std::int64_t code : codes) {
    const auto v = static_cast<std::size_t>(headOfCode(code));
    if (const auto it = at.find(v); it != at.end()) {
      while (nodeSeq.size() > it->second + 1) {
        at.erase(nodeSeq.back());
        nodeSeq.pop_back();
        path.pop_back();
      }
      continue;
    }
    path.push_back(code);
    nodeSeq.push_back(v);
    at.emplace(v, nodeSeq.size() - 1);
  }

  for (const std::int64_t code : path) {
    assert(residualOfCode(code) > 0);
    pushOnCode(code, 1);
    cost += costOfCode(code);
  }
  ++counters_.augmentations;
  potentialsDirty_ = true;
  return true;
}

MinCostFlow::Result MinCostFlow::run(std::size_t s, std::size_t t,
                                     std::int64_t maxFlow) {
  ensureCsr();
  if (potentialsDirty_) repairPotentials();
  Result result;

  // Lazy queue storage. Bucket array is distance-indexed (bucketSpan_
  // slots); the bitmap covers node ids and represents the ACTIVE bucket.
  if (useBucketQueue_) {
    if (buckets_.size() < static_cast<std::size_t>(bucketSpan_))
      buckets_.resize(static_cast<std::size_t>(bucketSpan_));
    const std::size_t words = (nodes_.size() + 63) / 64;
    if (bmL0_.size() < words) {
      bmL0_.assign(words, 0);
      bmL1_.assign((words + 63) / 64, 0);
      bmL2_.assign((bmL1_.size() + 63) / 64, 0);
      bmCount_ = 0;
    }
  }
  const std::uint64_t nodeMask = (std::uint64_t{1} << nodeBits_) - 1;

  // Effort tallies live in registers inside the hot loop and flush to
  // counters_ once per run().
  std::uint64_t nBucketPushes = 0, nHeapPushes = 0, nQueuePops = 0, nSettles = 0;

  // Push/pop over the combined Dial-bucket + overflow-heap queue. The
  // pop sequence reproduces the packed-heap comparator order exactly:
  //   - every bucketed dist is < bucketSpan_ <= every heap dist, so the
  //     heap drains strictly after the buckets;
  //   - buckets drain in increasing dist (activeDist_ is monotone within
  //     a pass) and the active bucket's bitmap pops in node-id order,
  //     matching the (dist << nodeBits_) | node key order;
  //   - stale queue entries (node improved after an earlier push) pop at
  //     their original dist and are skipped by doneStamp, as in the heap.
  // Same-dist pushes during settling (the zero-reduced-cost plateau the
  // sink cut exists for) are O(1) bit-sets instead of heap sift-ups.
  const auto queuePush = [&](std::int64_t nd, std::size_t v) {
    if (useBucketQueue_ && nd < bucketSpan_) {
      ++nBucketPushes;
      if (nd == activeDist_) {
        bmInsert(v);
      } else {
        auto& bucket = buckets_[static_cast<std::size_t>(nd)];
        if (bucket.empty()) usedBuckets_.push_back(static_cast<std::int32_t>(nd));
        bucket.push_back(static_cast<std::int32_t>(v));
        if (nd > bucketHi_) bucketHi_ = nd;
      }
    } else {
      ++nHeapPushes;
      heapPush(heap_, (static_cast<std::uint64_t>(nd) << nodeBits_) |
                          static_cast<std::uint64_t>(v));
    }
  };
  const auto queuePop = [&](std::size_t& u, std::int64_t& d) -> bool {
    if (useBucketQueue_) {
      if (bmCount_ != 0) {
        u = bmPopMin();
        d = activeDist_;
        ++nQueuePops;
        return true;
      }
      // Advance the cursor to the next non-empty bucket and promote it to
      // the bitmap. The scan segments are disjoint across a pass
      // (activeDist_ only grows), so the total scan cost is O(bucketSpan_)
      // per pass, dominated by the relaxation work.
      while (activeDist_ < bucketHi_) {
        ++activeDist_;
        auto& bucket = buckets_[static_cast<std::size_t>(activeDist_)];
        if (bucket.empty()) continue;
        for (const std::int32_t x : bucket) bmInsert(static_cast<std::size_t>(x));
        bucket.clear();
        u = bmPopMin();
        d = activeDist_;
        ++nQueuePops;
        return true;
      }
    }
    if (heap_.empty()) return false;
    const std::uint64_t top = heapPop(heap_);
    u = static_cast<std::size_t>(top & nodeMask);
    d = static_cast<std::int64_t>(top >> nodeBits_);
    ++nQueuePops;
    return true;
  };

  // Remaining residual capacity into the sink bounds every future
  // augmentation one-for-one, so hitting zero proves the next Dijkstra
  // pass would fail -- skip it. The skipped pass has no observable
  // effect (a failing pass never updates potentials), so default-mode
  // output is unchanged.
  std::int64_t sinkCap = s != t ? remainingSinkCapacity(t)
                                : std::numeric_limits<std::int64_t>::max();

  while (result.flow < maxFlow) {
    if (sinkCap <= 0) {
      ++counters_.earlyExits;
      break;
    }
    // Opt-in fast path for the last unit of demand: meet-in-the-middle
    // Dijkstra instead of a full forward pass. Runs at most once per
    // run() call (the unit either routes, finishing the loop, or fails).
    if (fastSsp_ && maxFlow - result.flow == 1 && s != t) {
      if (!augmentBidir(s, t, result.cost)) break;
      result.flow += 1;
      flowUnits_ += 1;
      sinkCap -= 1;
      continue;
    }
    // Dijkstra on reduced costs. "Clearing" dist/done is an epoch bump;
    // unlabeled == stamp mismatch.
    if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      for (Node& node : nodes_) node.distStamp = node.doneStamp = 0;
      epoch_ = 0;
    }
    ++epoch_;
    ++counters_.dijkstraPasses;
    heap_.clear();
    settled_.clear();
    const std::size_t dbWords = (nodes_.size() + 63) / 64;
    if (doneBits_.size() < dbWords) doneBits_.resize(dbWords);
    std::fill_n(doneBits_.begin(), dbWords, 0);
    if (useBucketQueue_) {
      // A sink cut can abandon queued entries; clearing touches only the
      // buckets and bitmap words actually used last pass.
      if (bmCount_ != 0) bmClearAll();
      for (const std::int32_t b : usedBuckets_)
        buckets_[static_cast<std::size_t>(b)].clear();
      usedBuckets_.clear();
      activeDist_ = 0;
      bucketHi_ = -1;
    }
    nodes_[s].dist = 0;
    nodes_[s].prevArc = -1;
    nodes_[s].distStamp = epoch_;
    queuePush(0, s);
    // Once the sink is labeled at B, an entry pushed with key > B can
    // never settle: pops are monotone and the sink cut fires at the first
    // pop with d >= sink.dist <= B. Skipping those pushes (the label
    // write still happens, so later comparisons are unchanged) prunes the
    // plateau boundary without touching the settle sequence. Strictly
    // greater only -- entries AT the bound (the sink's own included) must
    // stay queued so the cut always fires.
    std::int64_t sinkBound = std::numeric_limits<std::int64_t>::max();
    bool reachedSink = false;
    std::int64_t sinkDist = 0;
    std::size_t u = 0;
    std::int64_t d = 0;
    while (queuePop(u, d)) {
      // Sink cut: once the sink's label equals the queue minimum, no
      // strict improvement at or below that key is possible (arc costs
      // are non-negative), so the sink's predecessor chain is already
      // final -- settling the remaining equal-key nodes first, as a
      // (distance, node-id) queue would, cannot change the augmenting
      // path or any label below the sink distance. Stopping here skips
      // the zero-reduced-cost plateau that Johnson potentials create
      // around the previous shortest-path tree. Checking after the pop
      // is equivalent to checking against the queue front: the popped
      // key IS the front, and the consumed entry would be discarded at
      // the next pass reset anyway.
      if (nodes_[t].distStamp == epoch_ && nodes_[t].dist <= d) {
        reachedSink = true;
        sinkDist = nodes_[t].dist;
        break;
      }
      if ((doneBits_[u >> 6] >> (u & 63)) & 1) continue;
      doneBits_[u >> 6] |= std::uint64_t{1} << (u & 63);
      nodes_[u].doneStamp = epoch_;
      settled_.push_back(static_cast<std::int32_t>(u));
      ++nSettles;
      const std::int64_t potU = nodes_[u].potential;
      const std::size_t end = csrStart_[u + 1];
      for (std::size_t k = csrStart_[u]; k < end; ++k) {
        const CsrArc& arc = csrArc_[k];
        // The relax loop is bound by the random Node load below; hide it
        // behind the current iteration by prefetching the next arc's head.
        // Zero-cap arcs (unused reverse residuals, about half the CSR) are
        // skipped below and not worth the prefetch bandwidth.
        if (k + 1 < end && csrArc_[k + 1].cap > 0)
          __builtin_prefetch(&nodes_[static_cast<std::size_t>(csrArc_[k + 1].to)]);
        if (arc.cap <= 0) continue;
        const auto v = static_cast<std::size_t>(arc.to);
        if ((doneBits_[v >> 6] >> (v & 63)) & 1) continue;
        Node& node = nodes_[v];
        const std::int64_t nd = d + arc.cost + potU - node.potential;
        assert(nd >= d && "reduced cost must be non-negative");
        if (node.distStamp != epoch_ || nd < node.dist) {
          node.dist = nd;
          node.prevArc = static_cast<std::int32_t>(k);
          node.distStamp = epoch_;
          if (v == t) sinkBound = nd;
          if (nd <= sinkBound) queuePush(nd, v);
        }
      }
      // Overlay arcs (added after the CSR build) scan after the node's CSR
      // arcs -- exactly their per-node insertion-order position, so the
      // relaxation sequence matches a solver handed these arcs up front.
      // Gated on the node-local marker so overlay-free nodes (almost all
      // of them) skip the ovHead_ load entirely.
      if ((nodes_[u].pad & 1) != 0) {
        for (std::int32_t oa = ovHead_[u]; oa != -1;
             oa = ovNext_[static_cast<std::size_t>(oa) - builtArcs_]) {
          const auto a = static_cast<std::size_t>(oa);
          if (arcCap_[a] <= 0) continue;
          const auto v = static_cast<std::size_t>(arcTo_[a]);
          if ((doneBits_[v >> 6] >> (v & 63)) & 1) continue;
          Node& node = nodes_[v];
          const std::int64_t nd = d + arcCost_[a] + potU - node.potential;
          assert(nd >= d && "reduced cost must be non-negative");
          if (node.distStamp != epoch_ || nd < node.dist) {
            node.dist = nd;
            node.prevArc = -static_cast<std::int32_t>(a) - 2;
            node.distStamp = epoch_;
            if (v == t) sinkBound = nd;
            if (nd <= sinkBound) queuePush(nd, v);
          }
        }
      }
    }
    if (!reachedSink) break;  // no augmenting path

    // Potential update with early termination: every node whose true
    // distance is below dist[t] is settled (pops are monotone), so
    // clamping all other labels -- including unlabeled nodes -- to
    // dist[t] keeps every residual reduced cost non-negative. The clamped
    // update adds dist[t] uniformly to every node; a uniform shift cancels
    // out of every reduced cost (only potential differences are ever
    // read), so it can be dropped entirely. What remains is the relative
    // correction dist[v] - dist[t] on settled nodes -- any labeled-but-
    // unsettled node has dist >= dist[t] once the sink cut fires, hence
    // zero correction.
    // sinkDist == 0 means every settled label is 0 too (pops are
    // monotone), making the correction below a no-op -- skip the sweep.
    // Otherwise settled_ is in pop order, so labels are non-decreasing:
    // stop at the first dist >= sinkDist instead of scanning the rest.
    if (sinkDist > 0) {
      for (const std::int32_t v : settled_) {
        Node& node = nodes_[static_cast<std::size_t>(v)];
        if (node.dist >= sinkDist) break;
        node.potential += node.dist - sinkDist;
      }
    }
    settled_.clear();

    // Opt-in multi-augmentation: saturate every admissible shortest path
    // in the zero-reduced-cost subgraph left by the potential update,
    // instead of one path per pass. The sink's predecessor path is tight
    // under the new potentials, so at least one unit always routes.
    if (fastSsp_) {
      const std::int64_t pushed =
          augmentTightPaths(s, t, maxFlow - result.flow, result.cost);
      if (pushed <= 0) break;  // unreachable; guards against a stall
      result.flow += pushed;
      flowUnits_ += pushed;
      sinkCap -= pushed;
      continue;
    }

    // Bottleneck along the path. prevArc holds CSR positions (>= 0, tail
    // reachable via the reverse arc) or overlay arc ids encoded as
    // -(arc + 2) (tail stored directly in the ingest arrays).
    std::int64_t push = maxFlow - result.flow;
    for (std::size_t v = t; v != s;) {
      const std::int32_t code = nodes_[v].prevArc;
      if (code >= 0) {
        const auto k = static_cast<std::size_t>(code);
        push = std::min(push, csrArc_[k].cap);
        v = static_cast<std::size_t>(csrArc_[static_cast<std::size_t>(csrRev_[k])].to);
      } else {
        const auto a = static_cast<std::size_t>(-code - 2);
        push = std::min(push, arcCap_[a]);
        v = static_cast<std::size_t>(arcFrom_[a]);
      }
    }
    for (std::size_t v = t; v != s;) {
      const std::int32_t code = nodes_[v].prevArc;
      if (code >= 0) {
        const auto k = static_cast<std::size_t>(code);
        const auto r = static_cast<std::size_t>(csrRev_[k]);
        csrArc_[k].cap -= push;
        csrArc_[r].cap += push;
        result.cost += push * csrArc_[k].cost;
        dirtyCsr_.push_back(code);
        dirtyCsr_.push_back(csrRev_[k]);
        v = static_cast<std::size_t>(csrArc_[r].to);
      } else {
        const auto a = static_cast<std::size_t>(-code - 2);
        arcCap_[a] -= push;
        arcCap_[a ^ 1] += push;
        result.cost += push * arcCost_[a];
        dirtyOv_.push_back(static_cast<std::int32_t>(a));
        dirtyOv_.push_back(static_cast<std::int32_t>(a ^ 1));
        v = static_cast<std::size_t>(arcFrom_[a]);
      }
    }
    ++counters_.augmentations;
    result.flow += push;
    flowUnits_ += push;
    sinkCap -= push;
  }
  counters_.bucketPushes += nBucketPushes;
  counters_.heapPushes += nHeapPushes;
  counters_.queuePops += nQueuePops;
  counters_.settles += nSettles;
  return result;
}

MinCostFlow::Result MinCostFlow::rerun(std::size_t s, std::size_t t,
                                       std::int64_t maxFlow) {
  resetFlow();
  return run(s, t, maxFlow);
}

std::int64_t MinCostFlow::flowOn(std::size_t edgeId) const {
  if (!disabled_.empty() && arcEndpointDisabled(2 * edgeId)) return 0;
  return baseCap_[edgeId] - capOfArc(2 * edgeId);
}

std::int64_t MinCostFlow::residual(std::size_t edgeId) const {
  return capOfArc(2 * edgeId);
}

}  // namespace pacor::graph
