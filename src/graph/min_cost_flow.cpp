#include "graph/min_cost_flow.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace pacor::graph {

MinCostFlow::MinCostFlow(std::size_t nodeCount)
    : nodes_(nodeCount, Node{0, 0, -1, 0, 0, 0}),
      nodeBits_(std::max<unsigned>(1, std::bit_width(nodeCount))) {}

void MinCostFlow::heapPush(std::uint64_t key) {
  std::size_t i = heap_.size();
  heap_.push_back(key);
  while (i > 0) {
    const std::size_t p = (i - 1) >> 2;
    if (heap_[p] <= key) break;
    heap_[i] = heap_[p];
    i = p;
  }
  heap_[i] = key;
}

std::uint64_t MinCostFlow::heapPop() {
  const std::uint64_t top = heap_.front();
  const std::uint64_t last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t c = 4 * i + 1;
      if (c >= n) break;
      std::size_t m = c;
      const std::size_t hi = std::min(c + 4, n);
      for (std::size_t j = c + 1; j < hi; ++j)
        if (heap_[j] < heap_[m]) m = j;
      if (last <= heap_[m]) break;
      heap_[i] = heap_[m];
      i = m;
    }
    heap_[i] = last;
  }
  return top;
}

std::size_t MinCostFlow::addEdge(std::size_t u, std::size_t v, std::int64_t capacity,
                                 std::int64_t cost) {
  assert(u < nodes_.size() && v < nodes_.size());
  assert(capacity >= 0 && cost >= 0);
  assert(cost <= std::numeric_limits<std::int32_t>::max());
  const std::size_t id = baseCap_.size();
  arcFrom_.push_back(static_cast<std::int32_t>(u));
  arcTo_.push_back(static_cast<std::int32_t>(v));
  arcCap_.push_back(capacity);
  arcCost_.push_back(cost);
  arcFrom_.push_back(static_cast<std::int32_t>(v));
  arcTo_.push_back(static_cast<std::int32_t>(u));
  arcCap_.push_back(0);
  arcCost_.push_back(-cost);
  baseCap_.push_back(capacity);
  if (csrBuilt_) {
    linkOverlayArc(2 * id);
    linkOverlayArc(2 * id + 1);
    // A new residual arc may have negative reduced cost under the current
    // potentials; harmless when the network is at zero flow (the repair
    // degenerates to re-zeroing).
    if (capacity > 0) potentialsDirty_ = true;
  }
  return id;
}

void MinCostFlow::linkOverlayArc(std::size_t arcId) {
  if (ovHead_.empty()) {
    ovHead_.assign(nodes_.size(), -1);
    ovTail_.assign(nodes_.size(), -1);
  }
  const std::size_t j = arcId - builtArcs_;
  if (ovNext_.size() <= j) {
    ovNext_.resize(j + 1);
    ovPrev_.resize(j + 1);
  }
  const auto u = static_cast<std::size_t>(arcFrom_[arcId]);
  ovNext_[j] = -1;
  ovPrev_[j] = ovTail_[u];
  if (ovTail_[u] == -1)
    ovHead_[u] = static_cast<std::int32_t>(arcId);
  else
    ovNext_[static_cast<std::size_t>(ovTail_[u]) - builtArcs_] =
        static_cast<std::int32_t>(arcId);
  ovTail_[u] = static_cast<std::int32_t>(arcId);
}

std::int64_t MinCostFlow::capOfArc(std::size_t arcId) const {
  // Caps move into csrArc_ once the CSR exists; overlay arcs (and all arcs
  // before the build) keep theirs in arcCap_.
  return csrBuilt_ && arcId < builtArcs_
             ? csrArc_[static_cast<std::size_t>(arcPos_[arcId])].cap
             : arcCap_[arcId];
}

void MinCostFlow::setArcResidual(std::size_t arcId, std::int64_t cap) {
  if (csrBuilt_ && arcId < builtArcs_)
    csrArc_[static_cast<std::size_t>(arcPos_[arcId])].cap = cap;
  else
    arcCap_[arcId] = cap;
}

std::int64_t MinCostFlow::zeroFlowCap(std::size_t arcId) const {
  if (arcEndpointDisabled(arcId)) return 0;
  return (arcId & 1) != 0 ? 0 : baseCap_[arcId >> 1];
}

void MinCostFlow::markDirtyArc(std::size_t arcId) {
  if (arcId < builtArcs_)
    dirtyCsr_.push_back(arcPos_[arcId]);
  else
    dirtyOv_.push_back(static_cast<std::int32_t>(arcId));
}

void MinCostFlow::ensureCsr() {
  if (csrBuilt_) return;
  csrBuilt_ = true;
  builtArcs_ = arcFrom_.size();

  const std::size_t n = nodes_.size();
  // Counting sort of arc ids by source node: per-node arcs end up in
  // increasing arc id = chronological order, the order the old adjacency
  // lists iterated in.
  csrStart_.assign(n + 1, 0);
  for (const std::int32_t u : arcFrom_) ++csrStart_[static_cast<std::size_t>(u) + 1];
  for (std::size_t u = 0; u < n; ++u) csrStart_[u + 1] += csrStart_[u];
  arcPos_.resize(builtArcs_);
  std::vector<std::size_t> fill(csrStart_.begin(), csrStart_.end() - 1);
  for (std::size_t a = 0; a < builtArcs_; ++a)
    arcPos_[a] = static_cast<std::int32_t>(fill[static_cast<std::size_t>(arcFrom_[a])]++);

  csrArc_.resize(builtArcs_);
  csrRev_.resize(builtArcs_);
  csrArcId_.resize(builtArcs_);
  for (std::size_t a = 0; a < builtArcs_; ++a) {
    const auto k = static_cast<std::size_t>(arcPos_[a]);
    csrArc_[k] = {arcCap_[a], arcTo_[a], static_cast<std::int32_t>(arcCost_[a])};
    csrRev_[k] = arcPos_[a ^ 1];
    csrArcId_[k] = static_cast<std::int32_t>(a);
  }

  for (Node& node : nodes_) node.distStamp = node.doneStamp = 0;
  epoch_ = 0;
}

namespace {

/// Visits every arc out of `node` in scan order (CSR arcs, then overlay
/// chain); stops early when `fn` returns true.
template <typename Fn>
void forEachArcFromImpl(const std::vector<std::size_t>& csrStart,
                        const std::vector<std::int32_t>& csrArcId, bool csrBuilt,
                        const std::vector<std::int32_t>& ovHead,
                        const std::vector<std::int32_t>& ovNext,
                        std::size_t builtArcs, std::size_t node, Fn&& fn) {
  if (csrBuilt) {
    const std::size_t end = csrStart[node + 1];
    for (std::size_t k = csrStart[node]; k < end; ++k)
      if (fn(static_cast<std::size_t>(csrArcId[k]))) return;
  }
  if (!ovHead.empty()) {
    for (std::int32_t a = ovHead[node]; a != -1;
         a = ovNext[static_cast<std::size_t>(a) - builtArcs])
      if (fn(static_cast<std::size_t>(a))) return;
  }
}

}  // namespace

template <typename Pred>
std::int64_t MinCostFlow::findArcFrom(std::size_t node, Pred&& pred) const {
  std::int64_t found = -1;
  forEachArcFromImpl(csrStart_, csrArcId_, csrBuilt_, ovHead_, ovNext_, builtArcs_,
                     node, [&](std::size_t a) {
                       if (!pred(a)) return false;
                       found = static_cast<std::int64_t>(a);
                       return true;
                     });
  return found;
}

void MinCostFlow::cancelUnitBackwardFrom(std::size_t node) {
  // Remove one unit of flow arriving at `node` by walking flow-carrying
  // arcs backwards; stops at the source (no incoming flow). Every step
  // lowers total routed volume by one unit, so the walk terminates even if
  // the flow decomposition contains cycles.
  for (;;) {
    const std::int64_t back = findArcFrom(
        node, [&](std::size_t a) { return (a & 1) != 0 && capOfArc(a) > 0; });
    if (back < 0) return;
    const auto b = static_cast<std::size_t>(back);
    setArcResidual(b, capOfArc(b) - 1);
    setArcResidual(b ^ 1, capOfArc(b ^ 1) + 1);
    markDirtyArc(b);
    markDirtyArc(b ^ 1);
    node = static_cast<std::size_t>(arcTo_[b]);
  }
}

void MinCostFlow::cancelUnitForwardFrom(std::size_t node) {
  // Remove one unit of flow leaving `node`, walking toward the sink.
  for (;;) {
    const std::int64_t fwd = findArcFrom(
        node, [&](std::size_t a) { return (a & 1) == 0 && capOfArc(a ^ 1) > 0; });
    if (fwd < 0) return;
    const auto a = static_cast<std::size_t>(fwd);
    setArcResidual(a, capOfArc(a) + 1);
    setArcResidual(a ^ 1, capOfArc(a ^ 1) - 1);
    markDirtyArc(a);
    markDirtyArc(a ^ 1);
    node = static_cast<std::size_t>(arcTo_[a]);
  }
}

std::int64_t MinCostFlow::cancelFlowThrough(std::size_t edgeId,
                                            std::int64_t maxUnits) {
  ensureCsr();
  std::int64_t cancelled = 0;
  const std::size_t fwd = 2 * edgeId;
  while (cancelled < maxUnits && flowOn(edgeId) > 0) {
    setArcResidual(fwd, capOfArc(fwd) + 1);
    setArcResidual(fwd ^ 1, capOfArc(fwd ^ 1) - 1);
    markDirtyArc(fwd);
    markDirtyArc(fwd ^ 1);
    cancelUnitBackwardFrom(static_cast<std::size_t>(arcFrom_[fwd]));
    cancelUnitForwardFrom(static_cast<std::size_t>(arcTo_[fwd]));
    ++cancelled;
  }
  if (cancelled > 0) {
    flowUnits_ = std::max<std::int64_t>(0, flowUnits_ - cancelled);
    // Restored forward residual capacity can carry negative reduced cost.
    potentialsDirty_ = true;
  }
  return cancelled;
}

std::int64_t MinCostFlow::cancelFlowThroughNode(std::size_t node) {
  ensureCsr();
  std::int64_t cancelled = 0;
  // Units passing through (or terminating at) `node`: consume an incoming
  // unit, then its matching outgoing unit if conservation forwards one.
  for (;;) {
    const std::int64_t in = findArcFrom(
        node, [&](std::size_t a) { return (a & 1) != 0 && capOfArc(a) > 0; });
    if (in < 0) break;
    const auto b = static_cast<std::size_t>(in);
    setArcResidual(b, capOfArc(b) - 1);
    setArcResidual(b ^ 1, capOfArc(b ^ 1) + 1);
    markDirtyArc(b);
    markDirtyArc(b ^ 1);
    cancelUnitBackwardFrom(static_cast<std::size_t>(arcTo_[b]));
    const std::int64_t out = findArcFrom(
        node, [&](std::size_t a) { return (a & 1) == 0 && capOfArc(a ^ 1) > 0; });
    if (out >= 0) {
      const auto a = static_cast<std::size_t>(out);
      setArcResidual(a, capOfArc(a) + 1);
      setArcResidual(a ^ 1, capOfArc(a ^ 1) - 1);
      markDirtyArc(a);
      markDirtyArc(a ^ 1);
      cancelUnitForwardFrom(static_cast<std::size_t>(arcTo_[a]));
    }
    ++cancelled;
  }
  // Units originating at `node` (source-like): leftover outgoing flow.
  for (;;) {
    const std::int64_t out = findArcFrom(
        node, [&](std::size_t a) { return (a & 1) == 0 && capOfArc(a ^ 1) > 0; });
    if (out < 0) break;
    const auto a = static_cast<std::size_t>(out);
    setArcResidual(a, capOfArc(a) + 1);
    setArcResidual(a ^ 1, capOfArc(a ^ 1) - 1);
    markDirtyArc(a);
    markDirtyArc(a ^ 1);
    cancelUnitForwardFrom(static_cast<std::size_t>(arcTo_[a]));
    ++cancelled;
  }
  if (cancelled > 0) {
    flowUnits_ = std::max<std::int64_t>(0, flowUnits_ - cancelled);
    potentialsDirty_ = true;
  }
  return cancelled;
}

void MinCostFlow::setCapacity(std::size_t edgeId, std::int64_t capacity) {
  assert(edgeId < baseCap_.size());
  assert(capacity >= 0);
  ensureCsr();
  std::int64_t flow = flowOn(edgeId);
  if (flow > capacity) {
    cancelFlowThrough(edgeId, flow - capacity);
    flow = capacity;
  }
  const std::int64_t old = baseCap_[edgeId];
  baseCap_[edgeId] = capacity;
  if (!arcEndpointDisabled(2 * edgeId)) {
    setArcResidual(2 * edgeId, capacity - flow);
    if (capacity > old) potentialsDirty_ = true;
  }
}

void MinCostFlow::disableNode(std::size_t node) {
  assert(node < nodes_.size());
  ensureCsr();
  if (disabled_.empty()) disabled_.assign(nodes_.size(), 0);
  if (disabled_[node] != 0) return;
  cancelFlowThroughNode(node);
  disabled_[node] = 1;
  // Zero every incident arc: the node's own arcs plus their reverses cover
  // each incident edge exactly once. Capacity only shrinks here, so the
  // potentials stay valid (beyond what the cancellation already flagged).
  forEachArcFromImpl(csrStart_, csrArcId_, csrBuilt_, ovHead_, ovNext_, builtArcs_,
                     node, [&](std::size_t a) {
                       setArcResidual(a, 0);
                       setArcResidual(a ^ 1, 0);
                       return false;
                     });
}

void MinCostFlow::enableNode(std::size_t node) {
  assert(node < nodes_.size());
  ensureCsr();
  if (disabled_.empty() || disabled_[node] == 0) return;
  disabled_[node] = 0;
  forEachArcFromImpl(csrStart_, csrArcId_, csrBuilt_, ovHead_, ovNext_, builtArcs_,
                     node, [&](std::size_t a) {
                       // Arcs to a still-disabled neighbor stay closed; the
                       // rest return to their zero-flow capacity (no flow
                       // can traverse a disabled node, so there is none to
                       // preserve on any incident arc).
                       if (!nodeDisabled(static_cast<std::size_t>(arcTo_[a]))) {
                         setArcResidual(a, zeroFlowCap(a));
                         setArcResidual(a ^ 1, zeroFlowCap(a ^ 1));
                       }
                       return false;
                     });
  potentialsDirty_ = true;
}

void MinCostFlow::resetFlow() {
  for (const std::int32_t k : dirtyCsr_)
    csrArc_[static_cast<std::size_t>(k)].cap =
        zeroFlowCap(static_cast<std::size_t>(csrArcId_[static_cast<std::size_t>(k)]));
  for (const std::int32_t a : dirtyOv_)
    arcCap_[static_cast<std::size_t>(a)] = zeroFlowCap(static_cast<std::size_t>(a));
  dirtyCsr_.clear();
  dirtyOv_.clear();
  for (Node& node : nodes_) node.potential = 0;
  flowUnits_ = 0;
  potentialsDirty_ = false;
}

void MinCostFlow::truncateEdges(std::size_t edgeCount) {
  assert(edgeCount <= baseCap_.size());
  const std::size_t keepArcs = 2 * edgeCount;
  if (csrBuilt_) {
    assert(keepArcs >= builtArcs_ && "only overlay edges can be truncated");
    for (std::size_t a = arcFrom_.size(); a > keepArcs;) {
      --a;
      assert(capOfArc(a) == zeroFlowCap(a) && "truncated edges must be flow-free");
      // Dropping the suffix in reverse insertion order means each dropped
      // arc is currently the tail of its node's overlay chain.
      const auto u = static_cast<std::size_t>(arcFrom_[a]);
      const std::size_t j = a - builtArcs_;
      assert(ovTail_[u] == static_cast<std::int32_t>(a));
      const std::int32_t prev = ovPrev_[j];
      ovTail_[u] = prev;
      if (prev == -1)
        ovHead_[u] = -1;
      else
        ovNext_[static_cast<std::size_t>(prev) - builtArcs_] = -1;
    }
    ovNext_.resize(keepArcs - builtArcs_);
    ovPrev_.resize(keepArcs - builtArcs_);
    dirtyOv_.erase(std::remove_if(dirtyOv_.begin(), dirtyOv_.end(),
                                  [&](std::int32_t a) {
                                    return static_cast<std::size_t>(a) >= keepArcs;
                                  }),
                   dirtyOv_.end());
  }
  arcFrom_.resize(keepArcs);
  arcTo_.resize(keepArcs);
  arcCap_.resize(keepArcs);
  arcCost_.resize(keepArcs);
  baseCap_.resize(edgeCount);
}

void MinCostFlow::repairPotentials() {
  potentialsDirty_ = false;
  if (flowUnits_ == 0 && dirtyCsr_.empty() && dirtyOv_.empty()) {
    // Zero flow: zero potentials are trivially valid (all costs >= 0).
    for (Node& node : nodes_) node.potential = 0;
    return;
  }
  // General repair: Bellman-Ford from a virtual source at distance zero to
  // every node yields potentials under which all reduced costs are
  // non-negative -- provided the residual graph has no negative cycle.
  // Cancellation can leave one (the remaining flow need not be min-cost
  // for its value); push flow around any such cycle first, which keeps the
  // flow value, strictly lowers its cost, and therefore terminates. This
  // path is never taken by the escape session (it resets to zero flow
  // before editing).
  const std::size_t n = nodes_.size();
  std::vector<std::int32_t> parent(n, -1);
  for (;;) {
    for (Node& node : nodes_) node.potential = 0;
    std::fill(parent.begin(), parent.end(), -1);
    std::int64_t relaxedNode = -1;
    for (std::size_t iter = 0; iter < n; ++iter) {
      relaxedNode = -1;
      for (std::size_t a = 0; a < arcFrom_.size(); ++a) {
        if (capOfArc(a) <= 0) continue;
        const auto u = static_cast<std::size_t>(arcFrom_[a]);
        const auto v = static_cast<std::size_t>(arcTo_[a]);
        const std::int64_t nd = nodes_[u].potential + arcCost_[a];
        if (nd < nodes_[v].potential) {
          nodes_[v].potential = nd;
          parent[v] = static_cast<std::int32_t>(a);
          relaxedNode = static_cast<std::int64_t>(v);
        }
      }
      if (relaxedNode < 0) break;
    }
    if (relaxedNode < 0) return;  // converged: potentials valid
    // A relaxation surviving n sweeps pinpoints a negative cycle: walk the
    // parent chain n steps to land on it, then collect and cancel it.
    auto x = static_cast<std::size_t>(relaxedNode);
    for (std::size_t i = 0; i < n; ++i)
      x = static_cast<std::size_t>(arcFrom_[static_cast<std::size_t>(parent[x])]);
    std::vector<std::size_t> cycleArcs;
    std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
    for (std::size_t v = x;;) {
      const auto a = static_cast<std::size_t>(parent[v]);
      cycleArcs.push_back(a);
      bottleneck = std::min(bottleneck, capOfArc(a));
      v = static_cast<std::size_t>(arcFrom_[a]);
      if (v == x) break;
    }
    for (const std::size_t a : cycleArcs) {
      setArcResidual(a, capOfArc(a) - bottleneck);
      setArcResidual(a ^ 1, capOfArc(a ^ 1) + bottleneck);
      markDirtyArc(a);
      markDirtyArc(a ^ 1);
    }
  }
}

MinCostFlow::Result MinCostFlow::run(std::size_t s, std::size_t t,
                                     std::int64_t maxFlow) {
  ensureCsr();
  if (potentialsDirty_) repairPotentials();
  Result result;

  while (result.flow < maxFlow) {
    // Dijkstra on reduced costs. "Clearing" dist/done is an epoch bump;
    // unlabeled == stamp mismatch.
    if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      for (Node& node : nodes_) node.distStamp = node.doneStamp = 0;
      epoch_ = 0;
    }
    ++epoch_;
    heap_.clear();
    settled_.clear();
    nodes_[s].dist = 0;
    nodes_[s].prevArc = -1;
    nodes_[s].distStamp = epoch_;
    const std::uint64_t nodeMask = (std::uint64_t{1} << nodeBits_) - 1;
    heapPush(static_cast<std::uint64_t>(s));
    bool reachedSink = false;
    std::int64_t sinkDist = 0;
    while (!heap_.empty()) {
      // Sink cut: once the sink's label equals the heap minimum, no strict
      // improvement at or below that key is possible (arc costs are
      // non-negative), so the sink's predecessor chain is already final --
      // settling the remaining equal-key nodes first, as a (distance,
      // node-id) queue would, cannot change the augmenting path or any
      // label below the sink distance. Stopping here skips the zero-
      // reduced-cost plateau that Johnson potentials create around the
      // previous shortest-path tree.
      if (nodes_[t].distStamp == epoch_ &&
          nodes_[t].dist <= static_cast<std::int64_t>(heap_.front() >> nodeBits_)) {
        reachedSink = true;
        sinkDist = nodes_[t].dist;
        break;
      }
      const std::uint64_t top = heapPop();
      const auto u = static_cast<std::size_t>(top & nodeMask);
      if (nodes_[u].doneStamp == epoch_) continue;
      nodes_[u].doneStamp = epoch_;
      settled_.push_back(static_cast<std::int32_t>(u));
      const auto d = static_cast<std::int64_t>(top >> nodeBits_);
      const std::int64_t potU = nodes_[u].potential;
      const std::size_t end = csrStart_[u + 1];
      for (std::size_t k = csrStart_[u]; k < end; ++k) {
        const CsrArc& arc = csrArc_[k];
        if (arc.cap <= 0) continue;
        const auto v = static_cast<std::size_t>(arc.to);
        Node& node = nodes_[v];
        if (node.doneStamp == epoch_) continue;
        const std::int64_t nd = d + arc.cost + potU - node.potential;
        assert(nd >= d && "reduced cost must be non-negative");
        if (node.distStamp != epoch_ || nd < node.dist) {
          node.dist = nd;
          node.prevArc = static_cast<std::int32_t>(k);
          node.distStamp = epoch_;
          heapPush((static_cast<std::uint64_t>(nd) << nodeBits_) |
                   static_cast<std::uint64_t>(v));
        }
      }
      // Overlay arcs (added after the CSR build) scan after the node's CSR
      // arcs -- exactly their per-node insertion-order position, so the
      // relaxation sequence matches a solver handed these arcs up front.
      if (!ovHead_.empty()) {
        for (std::int32_t oa = ovHead_[u]; oa != -1;
             oa = ovNext_[static_cast<std::size_t>(oa) - builtArcs_]) {
          const auto a = static_cast<std::size_t>(oa);
          if (arcCap_[a] <= 0) continue;
          const auto v = static_cast<std::size_t>(arcTo_[a]);
          Node& node = nodes_[v];
          if (node.doneStamp == epoch_) continue;
          const std::int64_t nd = d + arcCost_[a] + potU - node.potential;
          assert(nd >= d && "reduced cost must be non-negative");
          if (node.distStamp != epoch_ || nd < node.dist) {
            node.dist = nd;
            node.prevArc = -static_cast<std::int32_t>(a) - 2;
            node.distStamp = epoch_;
            heapPush((static_cast<std::uint64_t>(nd) << nodeBits_) |
                     static_cast<std::uint64_t>(v));
          }
        }
      }
    }
    if (!reachedSink) break;  // no augmenting path

    // Potential update with early termination: every node whose true
    // distance is below dist[t] is settled (pops are monotone), so
    // clamping all other labels -- including unlabeled nodes -- to
    // dist[t] keeps every residual reduced cost non-negative. The clamped
    // update adds dist[t] uniformly to every node; a uniform shift cancels
    // out of every reduced cost (only potential differences are ever
    // read), so it can be dropped entirely. What remains is the relative
    // correction dist[v] - dist[t] on settled nodes -- any labeled-but-
    // unsettled node has dist >= dist[t] once the sink cut fires, hence
    // zero correction.
    for (const std::int32_t v : settled_) {
      Node& node = nodes_[static_cast<std::size_t>(v)];
      if (node.dist < sinkDist) node.potential += node.dist - sinkDist;
    }
    settled_.clear();

    // Bottleneck along the path. prevArc holds CSR positions (>= 0, tail
    // reachable via the reverse arc) or overlay arc ids encoded as
    // -(arc + 2) (tail stored directly in the ingest arrays).
    std::int64_t push = maxFlow - result.flow;
    for (std::size_t v = t; v != s;) {
      const std::int32_t code = nodes_[v].prevArc;
      if (code >= 0) {
        const auto k = static_cast<std::size_t>(code);
        push = std::min(push, csrArc_[k].cap);
        v = static_cast<std::size_t>(csrArc_[static_cast<std::size_t>(csrRev_[k])].to);
      } else {
        const auto a = static_cast<std::size_t>(-code - 2);
        push = std::min(push, arcCap_[a]);
        v = static_cast<std::size_t>(arcFrom_[a]);
      }
    }
    for (std::size_t v = t; v != s;) {
      const std::int32_t code = nodes_[v].prevArc;
      if (code >= 0) {
        const auto k = static_cast<std::size_t>(code);
        const auto r = static_cast<std::size_t>(csrRev_[k]);
        csrArc_[k].cap -= push;
        csrArc_[r].cap += push;
        result.cost += push * csrArc_[k].cost;
        dirtyCsr_.push_back(code);
        dirtyCsr_.push_back(csrRev_[k]);
        v = static_cast<std::size_t>(csrArc_[r].to);
      } else {
        const auto a = static_cast<std::size_t>(-code - 2);
        arcCap_[a] -= push;
        arcCap_[a ^ 1] += push;
        result.cost += push * arcCost_[a];
        dirtyOv_.push_back(static_cast<std::int32_t>(a));
        dirtyOv_.push_back(static_cast<std::int32_t>(a ^ 1));
        v = static_cast<std::size_t>(arcFrom_[a]);
      }
    }
    result.flow += push;
    flowUnits_ += push;
  }
  return result;
}

MinCostFlow::Result MinCostFlow::rerun(std::size_t s, std::size_t t,
                                       std::int64_t maxFlow) {
  resetFlow();
  return run(s, t, maxFlow);
}

std::int64_t MinCostFlow::flowOn(std::size_t edgeId) const {
  if (!disabled_.empty() && arcEndpointDisabled(2 * edgeId)) return 0;
  return baseCap_[edgeId] - capOfArc(2 * edgeId);
}

std::int64_t MinCostFlow::residual(std::size_t edgeId) const {
  return capOfArc(2 * edgeId);
}

}  // namespace pacor::graph
