#include "graph/min_cost_flow.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace pacor::graph {

MinCostFlow::MinCostFlow(std::size_t nodeCount)
    : nodes_(nodeCount, Node{0, 0, -1, 0, 0, 0}),
      nodeBits_(std::max<unsigned>(1, std::bit_width(nodeCount))) {}

void MinCostFlow::heapPush(std::uint64_t key) {
  std::size_t i = heap_.size();
  heap_.push_back(key);
  while (i > 0) {
    const std::size_t p = (i - 1) >> 2;
    if (heap_[p] <= key) break;
    heap_[i] = heap_[p];
    i = p;
  }
  heap_[i] = key;
}

std::uint64_t MinCostFlow::heapPop() {
  const std::uint64_t top = heap_.front();
  const std::uint64_t last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t c = 4 * i + 1;
      if (c >= n) break;
      std::size_t m = c;
      const std::size_t hi = std::min(c + 4, n);
      for (std::size_t j = c + 1; j < hi; ++j)
        if (heap_[j] < heap_[m]) m = j;
      if (last <= heap_[m]) break;
      heap_[i] = heap_[m];
      i = m;
    }
    heap_[i] = last;
  }
  return top;
}

std::size_t MinCostFlow::addEdge(std::size_t u, std::size_t v, std::int64_t capacity,
                                 std::int64_t cost) {
  assert(u < nodes_.size() && v < nodes_.size());
  assert(capacity >= 0 && cost >= 0);
  assert(cost <= std::numeric_limits<std::int32_t>::max());
  const std::size_t id = originalCap_.size();
  arcFrom_.push_back(static_cast<std::int32_t>(u));
  arcTo_.push_back(static_cast<std::int32_t>(v));
  arcCap_.push_back(capacity);
  arcCost_.push_back(cost);
  arcFrom_.push_back(static_cast<std::int32_t>(v));
  arcTo_.push_back(static_cast<std::int32_t>(u));
  arcCap_.push_back(0);
  arcCost_.push_back(-cost);
  originalCap_.push_back(capacity);
  return id;
}

std::int64_t MinCostFlow::capOf(std::size_t arcId) const {
  // Caps move into csrArc_ once the CSR exists; arcs added afterwards are
  // still in arcCap_ until the next rebuild.
  return arcId < builtArcs_ ? csrArc_[static_cast<std::size_t>(arcPos_[arcId])].cap
                            : arcCap_[arcId];
}

void MinCostFlow::ensureCsr() {
  if (builtArcs_ == arcFrom_.size()) return;
  // Flow already routed lives in csrArc_; fold it back before rebuilding.
  for (std::size_t a = 0; a < builtArcs_; ++a)
    arcCap_[a] = csrArc_[static_cast<std::size_t>(arcPos_[a])].cap;
  builtArcs_ = arcFrom_.size();

  const std::size_t n = nodes_.size();
  // Counting sort of arc ids by source node: per-node arcs end up in
  // increasing arc id = chronological order, the order the old adjacency
  // lists iterated in.
  csrStart_.assign(n + 1, 0);
  for (const std::int32_t u : arcFrom_) ++csrStart_[static_cast<std::size_t>(u) + 1];
  for (std::size_t u = 0; u < n; ++u) csrStart_[u + 1] += csrStart_[u];
  arcPos_.resize(builtArcs_);
  std::vector<std::size_t> fill(csrStart_.begin(), csrStart_.end() - 1);
  for (std::size_t a = 0; a < builtArcs_; ++a)
    arcPos_[a] = static_cast<std::int32_t>(fill[static_cast<std::size_t>(arcFrom_[a])]++);

  csrArc_.resize(builtArcs_);
  csrRev_.resize(builtArcs_);
  for (std::size_t a = 0; a < builtArcs_; ++a) {
    const auto k = static_cast<std::size_t>(arcPos_[a]);
    csrArc_[k] = {arcCap_[a], arcTo_[a], static_cast<std::int32_t>(arcCost_[a])};
    csrRev_[k] = arcPos_[a ^ 1];
  }

  for (Node& node : nodes_) node.distStamp = node.doneStamp = 0;
  epoch_ = 0;
}

MinCostFlow::Result MinCostFlow::run(std::size_t s, std::size_t t,
                                     std::int64_t maxFlow) {
  ensureCsr();
  Result result;

  while (result.flow < maxFlow) {
    // Dijkstra on reduced costs. "Clearing" dist/done is an epoch bump;
    // unlabeled == stamp mismatch.
    if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      for (Node& node : nodes_) node.distStamp = node.doneStamp = 0;
      epoch_ = 0;
    }
    ++epoch_;
    heap_.clear();
    settled_.clear();
    nodes_[s].dist = 0;
    nodes_[s].prevArc = -1;
    nodes_[s].distStamp = epoch_;
    const std::uint64_t nodeMask = (std::uint64_t{1} << nodeBits_) - 1;
    heapPush(static_cast<std::uint64_t>(s));
    bool reachedSink = false;
    std::int64_t sinkDist = 0;
    while (!heap_.empty()) {
      // Sink cut: once the sink's label equals the heap minimum, no strict
      // improvement at or below that key is possible (arc costs are
      // non-negative), so the sink's predecessor chain is already final --
      // settling the remaining equal-key nodes first, as a (distance,
      // node-id) queue would, cannot change the augmenting path or any
      // label below the sink distance. Stopping here skips the zero-
      // reduced-cost plateau that Johnson potentials create around the
      // previous shortest-path tree.
      if (nodes_[t].distStamp == epoch_ &&
          nodes_[t].dist <= static_cast<std::int64_t>(heap_.front() >> nodeBits_)) {
        reachedSink = true;
        sinkDist = nodes_[t].dist;
        break;
      }
      const std::uint64_t top = heapPop();
      const auto u = static_cast<std::size_t>(top & nodeMask);
      if (nodes_[u].doneStamp == epoch_) continue;
      nodes_[u].doneStamp = epoch_;
      settled_.push_back(static_cast<std::int32_t>(u));
      const auto d = static_cast<std::int64_t>(top >> nodeBits_);
      const std::int64_t potU = nodes_[u].potential;
      const std::size_t end = csrStart_[u + 1];
      for (std::size_t k = csrStart_[u]; k < end; ++k) {
        const CsrArc& arc = csrArc_[k];
        if (arc.cap <= 0) continue;
        const auto v = static_cast<std::size_t>(arc.to);
        Node& node = nodes_[v];
        if (node.doneStamp == epoch_) continue;
        const std::int64_t nd = d + arc.cost + potU - node.potential;
        assert(nd >= d && "reduced cost must be non-negative");
        if (node.distStamp != epoch_ || nd < node.dist) {
          node.dist = nd;
          node.prevArc = static_cast<std::int32_t>(k);
          node.distStamp = epoch_;
          heapPush((static_cast<std::uint64_t>(nd) << nodeBits_) |
                   static_cast<std::uint64_t>(v));
        }
      }
    }
    if (!reachedSink) break;  // no augmenting path

    // Potential update with early termination: every node whose true
    // distance is below dist[t] is settled (pops are monotone), so
    // clamping all other labels -- including unlabeled nodes -- to
    // dist[t] keeps every residual reduced cost non-negative. The clamped
    // update adds dist[t] uniformly to every node; a uniform shift cancels
    // out of every reduced cost (only potential differences are ever
    // read), so it can be dropped entirely. What remains is the relative
    // correction dist[v] - dist[t] on settled nodes -- any labeled-but-
    // unsettled node has dist >= dist[t] once the sink cut fires, hence
    // zero correction.
    for (const std::int32_t v : settled_) {
      Node& node = nodes_[static_cast<std::size_t>(v)];
      if (node.dist < sinkDist) node.potential += node.dist - sinkDist;
    }
    settled_.clear();

    // Bottleneck along the path (prevArc holds CSR positions; the tail of
    // the arc is the head of its reverse arc).
    std::int64_t push = maxFlow - result.flow;
    for (std::size_t v = t; v != s;) {
      const auto k = static_cast<std::size_t>(nodes_[v].prevArc);
      push = std::min(push, csrArc_[k].cap);
      v = static_cast<std::size_t>(csrArc_[static_cast<std::size_t>(csrRev_[k])].to);
    }
    for (std::size_t v = t; v != s;) {
      const auto k = static_cast<std::size_t>(nodes_[v].prevArc);
      csrArc_[k].cap -= push;
      csrArc_[static_cast<std::size_t>(csrRev_[k])].cap += push;
      result.cost += push * csrArc_[k].cost;
      v = static_cast<std::size_t>(csrArc_[static_cast<std::size_t>(csrRev_[k])].to);
    }
    result.flow += push;
  }
  return result;
}

std::int64_t MinCostFlow::flowOn(std::size_t edgeId) const {
  return originalCap_[edgeId] - capOf(2 * edgeId);
}

std::int64_t MinCostFlow::residual(std::size_t edgeId) const {
  return capOf(2 * edgeId);
}

}  // namespace pacor::graph
