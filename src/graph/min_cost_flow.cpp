#include "graph/min_cost_flow.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace pacor::graph {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}

MinCostFlow::MinCostFlow(std::size_t nodeCount)
    : head_(nodeCount), potential_(nodeCount, 0) {}

std::size_t MinCostFlow::addEdge(std::size_t u, std::size_t v, std::int64_t capacity,
                                 std::int64_t cost) {
  assert(u < head_.size() && v < head_.size());
  assert(capacity >= 0 && cost >= 0);
  const std::size_t id = edgeRef_.size();
  head_[u].push_back({v, head_[v].size(), capacity, cost});
  head_[v].push_back({u, head_[u].size() - 1, 0, -cost});
  edgeRef_.emplace_back(u, head_[u].size() - 1);
  originalCap_.push_back(capacity);
  return id;
}

MinCostFlow::Result MinCostFlow::run(std::size_t s, std::size_t t,
                                     std::int64_t maxFlow) {
  Result result;
  const std::size_t n = head_.size();
  std::vector<std::int64_t> dist(n);
  std::vector<std::size_t> prevNode(n), prevArc(n);
  std::vector<bool> done(n);

  while (result.flow < maxFlow) {
    // Dijkstra on reduced costs, stopping as soon as the sink settles.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(done.begin(), done.end(), false);
    using QItem = std::pair<std::int64_t, std::size_t>;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    dist[s] = 0;
    pq.emplace(0, s);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (done[u]) continue;
      done[u] = true;
      if (u == t) break;  // settled: the shortest augmenting path is known
      for (std::size_t i = 0; i < head_[u].size(); ++i) {
        const Arc& a = head_[u][i];
        if (a.cap <= 0 || done[a.to]) continue;
        const std::int64_t nd = d + a.cost + potential_[u] - potential_[a.to];
        assert(nd >= d && "reduced cost must be non-negative");
        if (nd < dist[a.to]) {
          dist[a.to] = nd;
          prevNode[a.to] = u;
          prevArc[a.to] = i;
          pq.emplace(nd, a.to);
        }
      }
    }
    if (!done[t]) break;  // no augmenting path

    // Potential update with early termination: every node whose true
    // distance is below dist[t] is settled (pops are monotone), so
    // clamping all other labels -- including unlabeled nodes -- to
    // dist[t] keeps every residual reduced cost non-negative.
    for (std::size_t v = 0; v < n; ++v)
      potential_[v] += std::min(dist[v], dist[t]);

    // Bottleneck along the path.
    std::int64_t push = maxFlow - result.flow;
    for (std::size_t v = t; v != s; v = prevNode[v])
      push = std::min(push, head_[prevNode[v]][prevArc[v]].cap);
    for (std::size_t v = t; v != s; v = prevNode[v]) {
      Arc& a = head_[prevNode[v]][prevArc[v]];
      a.cap -= push;
      head_[a.to][a.rev].cap += push;
      result.cost += push * a.cost;
    }
    result.flow += push;
  }
  return result;
}

std::int64_t MinCostFlow::flowOn(std::size_t edgeId) const {
  const auto [u, slot] = edgeRef_[edgeId];
  return originalCap_[edgeId] - head_[u][slot].cap;
}

std::int64_t MinCostFlow::residual(std::size_t edgeId) const {
  const auto [u, slot] = edgeRef_[edgeId];
  return head_[u][slot].cap;
}

}  // namespace pacor::graph
