#include "graph/max_weight_clique.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pacor::graph {
namespace {

class Solver {
 public:
  Solver(const AdjacencyMatrix& g, const std::vector<double>& w) : g_(g), w_(w) {
    order_.resize(g.size());
    std::iota(order_.begin(), order_.end(), 0);
    // Heavier vertices first so the incumbent improves early and the
    // additive bound tightens.
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) { return w_[a] > w_[b]; });
  }

  CliqueResult solve() {
    std::vector<std::size_t> cands = order_;
    expand(cands, {}, 0.0);
    std::sort(best_.vertices.begin(), best_.vertices.end());
    return best_;
  }

 private:
  void expand(const std::vector<std::size_t>& cands, std::vector<std::size_t> cur,
              double curWeight) {
    if (curWeight > best_.weight) best_ = {cur, curWeight};
    double optimistic = curWeight;
    for (const std::size_t v : cands)
      if (w_[v] > 0) optimistic += w_[v];
    if (optimistic <= best_.weight) return;

    for (std::size_t i = 0; i < cands.size(); ++i) {
      const std::size_t v = cands[i];
      // Re-check the bound as candidates are consumed left to right.
      double rest = curWeight;
      for (std::size_t j = i; j < cands.size(); ++j)
        if (w_[cands[j]] > 0) rest += w_[cands[j]];
      if (rest <= best_.weight) return;

      std::vector<std::size_t> next;
      next.reserve(cands.size() - i);
      for (std::size_t j = i + 1; j < cands.size(); ++j)
        if (g_.hasEdge(v, cands[j])) next.push_back(cands[j]);
      cur.push_back(v);
      expand(next, cur, curWeight + w_[v]);
      cur.pop_back();
    }
  }

  const AdjacencyMatrix& g_;
  const std::vector<double>& w_;
  std::vector<std::size_t> order_;
  CliqueResult best_;  // empty clique, weight 0 — valid baseline
};

}  // namespace

CliqueResult maxWeightClique(const AdjacencyMatrix& g, const std::vector<double>& weights) {
  assert(g.size() == weights.size());
  return Solver(g, weights).solve();
}

CliqueResult maxWeightCliqueGreedy(const AdjacencyMatrix& g,
                                   const std::vector<double>& weights) {
  assert(g.size() == weights.size());
  CliqueResult best;
  for (std::size_t seed = 0; seed < g.size(); ++seed) {
    std::vector<std::size_t> clique{seed};
    double total = weights[seed];
    while (true) {
      std::size_t pick = g.size();
      double pickW = 0.0;
      for (std::size_t v = 0; v < g.size(); ++v) {
        if (weights[v] <= 0) continue;
        if (std::find(clique.begin(), clique.end(), v) != clique.end()) continue;
        if (!g.adjacentToAll(v, clique)) continue;
        if (pick == g.size() || weights[v] > pickW) {
          pick = v;
          pickW = weights[v];
        }
      }
      if (pick == g.size()) break;
      clique.push_back(pick);
      total += pickW;
    }
    if (total > best.weight) {
      std::sort(clique.begin(), clique.end());
      best = {std::move(clique), total};
    }
  }
  return best;
}

}  // namespace pacor::graph
