#include "graph/steiner.hpp"

#include <algorithm>
#include <unordered_set>

namespace pacor::graph {
namespace {

std::int64_t mstCostOf(const std::vector<geom::Point>& pts) {
  return totalCost(manhattanMst(pts));
}

}  // namespace

std::int64_t mstCost(std::span<const geom::Point> terminals) {
  return totalCost(manhattanMst(terminals));
}

SteinerTree iteratedOneSteiner(std::span<const geom::Point> terminals) {
  SteinerTree tree;
  std::vector<geom::Point> nodes(terminals.begin(), terminals.end());
  if (nodes.size() < 3) {
    tree.edges = manhattanMst(nodes);
    tree.cost = totalCost(tree.edges);
    return tree;
  }

  std::int64_t best = mstCostOf(nodes);
  while (true) {
    // Hanan grid of the current node set (terminals + added points).
    std::unordered_set<std::int32_t> xsSet, ysSet;
    for (const geom::Point p : nodes) {
      xsSet.insert(p.x);
      ysSet.insert(p.y);
    }
    const std::vector<std::int32_t> xs(xsSet.begin(), xsSet.end());
    const std::vector<std::int32_t> ys(ysSet.begin(), ysSet.end());
    const std::unordered_set<geom::Point> present(nodes.begin(), nodes.end());

    geom::Point bestCandidate{};
    std::int64_t bestGainCost = best;
    for (const std::int32_t x : xs)
      for (const std::int32_t y : ys) {
        const geom::Point cand{x, y};
        if (present.contains(cand)) continue;
        nodes.push_back(cand);
        const std::int64_t withCand = mstCostOf(nodes);
        nodes.pop_back();
        if (withCand < bestGainCost) {
          bestGainCost = withCand;
          bestCandidate = cand;
        }
      }
    if (bestGainCost >= best) break;
    best = bestGainCost;
    nodes.push_back(bestCandidate);
    tree.steinerPoints.push_back(bestCandidate);
  }

  // Prune degree-<=2 Steiner points that stopped paying for themselves
  // (a point of degree 2 on a straight line adds nothing; MST cost check
  // keeps it simple: drop any added point whose removal doesn't hurt).
  for (std::size_t i = tree.steinerPoints.size(); i-- > 0;) {
    std::vector<geom::Point> without = nodes;
    without.erase(std::find(without.begin(), without.end(), tree.steinerPoints[i]));
    if (mstCostOf(without) <= best) {
      nodes = std::move(without);
      tree.steinerPoints.erase(tree.steinerPoints.begin() +
                               static_cast<std::ptrdiff_t>(i));
    }
  }

  tree.edges = manhattanMst(nodes);
  tree.cost = totalCost(tree.edges);
  return tree;
}

}  // namespace pacor::graph
