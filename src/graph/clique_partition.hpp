#pragma once

#include <cstddef>
#include <vector>

#include "graph/adjacency.hpp"

namespace pacor::graph {

/// Partitions the vertices of a compatibility graph into cliques,
/// heuristically minimizing the clique count (the valve-clustering step of
/// the paper's flow: each clique of pairwise-compatible valves shares one
/// control pin; minimum clique partition is NP-complete, so a greedy
/// max-clique extraction heuristic is used, as in the paper Sec. 3).
///
/// Returns cliques as vertex-index lists; every vertex appears in exactly
/// one clique and every returned group is pairwise adjacent.
std::vector<std::vector<std::size_t>> cliquePartition(const AdjacencyMatrix& g);

/// Validates that `partition` covers each vertex exactly once and each
/// group is a clique of g. Used by tests and by PACOR input validation.
bool isValidCliquePartition(const AdjacencyMatrix& g,
                            const std::vector<std::vector<std::size_t>>& partition);

/// Hard capacity of the exact subset DP: beyond this vertex count the
/// O(3^n) enumeration and the 2^n tables are impractical.
inline constexpr std::size_t kMaxExactCliqueVertices = 20;

/// Exact minimum clique partition by subset dynamic programming over the
/// complement coloring (O(3^n) worst case; practical to n ~ 18). Used when
/// the free-valve count is small enough that the extra control pins saved
/// by an optimal partition matter; the greedy heuristic covers the rest.
///
/// Throws std::invalid_argument when g.size() > kMaxExactCliqueVertices:
/// a caller asking for an exact answer must not silently receive the
/// greedy heuristic (use cliquePartitionAuto for size-gated fallback).
std::vector<std::vector<std::size_t>> cliquePartitionExact(const AdjacencyMatrix& g);

/// Convenience: exact up to `exactLimit` vertices (itself clamped to
/// kMaxExactCliqueVertices), greedy otherwise. Never throws on size.
std::vector<std::vector<std::size_t>> cliquePartitionAuto(const AdjacencyMatrix& g,
                                                          std::size_t exactLimit = 16);

}  // namespace pacor::graph
