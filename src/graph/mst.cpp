#include "graph/mst.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/dsu.hpp"

namespace pacor::graph {

std::vector<WeightedEdge> manhattanMst(std::span<const geom::Point> points) {
  std::vector<WeightedEdge> tree;
  const std::size_t n = points.size();
  if (n < 2) return tree;
  tree.reserve(n - 1);

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> best(n, kInf);
  std::vector<std::size_t> from(n, 0);
  std::vector<bool> inTree(n, false);

  inTree[0] = true;
  for (std::size_t j = 1; j < n; ++j) {
    best[j] = geom::manhattan(points[0], points[j]);
    from[j] = 0;
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = n;
    std::int64_t pickCost = kInf;
    for (std::size_t j = 0; j < n; ++j) {
      if (!inTree[j] && best[j] < pickCost) {
        pickCost = best[j];
        pick = j;
      }
    }
    inTree[pick] = true;
    tree.push_back({from[pick], pick, pickCost});
    for (std::size_t j = 0; j < n; ++j) {
      if (inTree[j]) continue;
      const std::int64_t c = geom::manhattan(points[pick], points[j]);
      if (c < best[j]) {
        best[j] = c;
        from[j] = pick;
      }
    }
  }
  return tree;
}

std::vector<WeightedEdge> kruskalMst(std::size_t vertexCount,
                                     std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& x, const WeightedEdge& y) { return x.cost < y.cost; });
  Dsu dsu(vertexCount);
  std::vector<WeightedEdge> tree;
  for (const WeightedEdge& e : edges) {
    if (dsu.unite(e.a, e.b)) {
      tree.push_back(e);
      if (tree.size() + 1 == vertexCount) break;
    }
  }
  return tree;
}

std::int64_t totalCost(std::span<const WeightedEdge> edges) {
  return std::accumulate(edges.begin(), edges.end(), std::int64_t{0},
                         [](std::int64_t acc, const WeightedEdge& e) { return acc + e.cost; });
}

}  // namespace pacor::graph
