#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace pacor::graph {

/// Successive-shortest-path min-cost max-flow with Dijkstra + Johnson
/// potentials. Integral capacities and non-negative costs.
///
/// This replaces the paper's Gurobi LP for the escape-routing formulation
/// (Sec. 5): the constraint matrix there is a network-flow matrix, hence
/// totally unimodular, so the LP optimum is attained at an integral
/// vertex — which is exactly what this solver computes. Maximizing the
/// routed-path count with the beta-dominant reward term is equivalent to
/// the lexicographic (max flow, then min cost) objective realized by
/// min-cost *max*-flow.
///
/// Layout is chosen for the Dijkstra inner loop: arcs live in CSR order
/// (to / cost / cap arrays indexed by CSR position, reverse arc reachable
/// through a position xref), and all per-node search state shares one
/// 32-byte record so relaxing a neighbor touches a single cache line.
/// That state is generation-stamped instead of refilled, so one
/// augmentation costs O(heap work + path length), not O(nodes). The pop
/// sequence of the Dijkstra heap is the comparator-determined order over
/// (distance, node) pairs — distance ties break toward the smaller node
/// id — so results are identical to the original adjacency-list
/// implementation, augmenting path for augmenting path.
///
/// ## Mutable-solver API (incremental sessions)
///
/// Beyond the classic build-once/run-once usage, the solver is a mutable
/// object that supports warm restarts across topology edits:
///
///  * The CSR is built exactly once (at the first run or mutation). Edges
///    added afterwards land in a small *overlay* adjacency that is scanned
///    after a node's CSR arcs — which is exactly the position they would
///    occupy under per-node insertion order, so a solver that received the
///    same edges pre-build relaxes arcs in the same sequence and computes
///    the same flow, augmenting path for augmenting path.
///  * setCapacity / disableNode / enableNode edit capacities in place
///    (cancelling any flow that the edit strands), cancelFlowThrough pushes
///    routed flow back along the residual graph so conservation holds
///    after an edit, and truncateEdges drops a suffix of overlay edges
///    (the per-round arcs of a session).
///  * resetFlow() returns the network to its zero-flow state in
///    O(arcs touched by augmentation), not O(arcs), via a dirty list, and
///    rerun() = resetFlow() + run(): a warm restart that reuses the CSR,
///    the stamped search state, and all allocations. Potentials are
///    cleared on reset — re-solving from the zero state with zeroed
///    potentials reproduces the cold solver's augmentation sequence
///    bit-for-bit, which keeps incremental results byte-identical to
///    from-scratch solves (reusing the previous solve's potentials would
///    silently change (distance, node) tie-breaking on equal-cost paths).
///
/// ## Open list: Dial buckets with a heap fallback
///
/// Reduced costs under Johnson potentials are small non-negative integers
/// on the escape networks (unit grid steps plus bounded tap biases), so
/// the default open list is a Dial/bucket queue: labels below the bucket
/// span (setBucketSpan; callers size it from the grid diameter) go to
/// per-distance buckets, and the *active* bucket is drained through
/// a three-level bitmap over node ids, so the frequent case — a zero-
/// reduced-cost plateau flooding one bucket — pops in O(1) word scans
/// instead of heap sifts. Labels at or beyond the span overflow into
/// the packed 4-ary heap and drain strictly after every bucket (all
/// bucket distances are smaller), so the settle sequence is *exactly* the
/// lexicographic (distance, node) order of the pure-heap implementation,
/// stale entries included: default-mode results stay bit-identical, and
/// setBucketQueue(false) selects the pure heap for A/B tests and
/// benchmarks.
///
/// ## Fast mode (multi-augmentation + bidirectional refinement)
///
/// setFastSsp(true) enables two refinements that keep the (flow, cost)
/// optimum but reorder augmentations, so equal-cost ties may resolve to
/// different (equally optimal) paths:
///
///  * after each Dijkstra pass + potential update, a blocking-flow DFS
///    saturates *every* admissible path of the zero-reduced-cost subgraph
///    (all such paths cost exactly the sink distance, and augmenting
///    tight arcs keeps the potentials valid), instead of one path per
///    pass;
///  * when exactly one unit of demand remains — the warm-rerun / ECO
///    shape — the final path comes from a bidirectional Dijkstra over
///    reduced costs (forward from the source, backward over reverse
///    residual arcs from the sink) that stops as soon as the frontiers
///    prove a meeting path minimal.
///
/// Both preserve the min-cost max-flow optimum: callers that need
/// bit-identical output to the classic solver simply leave fast mode off.
class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t nodeCount);

  std::size_t nodeCount() const noexcept { return nodes_.size(); }

  /// Number of edges added so far; edge ids are dense in [0, edgeCount()).
  std::size_t edgeCount() const noexcept { return baseCap_.size(); }

  /// Adds a directed edge u -> v. Returns an edge id usable with flowOn().
  /// Edges added after the first run/mutation go to the overlay (no CSR
  /// rebuild); they behave as if inserted at the same point pre-build.
  std::size_t addEdge(std::size_t u, std::size_t v, std::int64_t capacity,
                      std::int64_t cost);

  struct Result {
    std::int64_t flow = 0;
    std::int64_t cost = 0;
  };

  /// Cumulative solver-effort counters across run()/rerun() calls; the
  /// escape metrics (`escape.flow.*`) and bench_min_cost_flow read these.
  struct Counters {
    std::uint64_t dijkstraPasses = 0;  ///< label passes started
    std::uint64_t augmentations = 0;   ///< augmenting paths applied (all kinds)
    std::uint64_t multiAugPaths = 0;   ///< paths found by the fast-mode DFS
    std::uint64_t bidirPasses = 0;     ///< bidirectional last-unit searches
    std::uint64_t bucketPushes = 0;    ///< open-list inserts into Dial buckets
    std::uint64_t heapPushes = 0;      ///< open-list inserts into the 4-ary heap
    std::uint64_t queuePops = 0;       ///< open-list pops, stale entries included
    std::uint64_t settles = 0;         ///< nodes settled across all passes
    std::uint64_t earlyExits = 0;      ///< passes skipped by the sink-capacity cut
    std::uint64_t warmArcTouches = 0;  ///< arcs repaired by resetFlow()
  };
  const Counters& counters() const noexcept { return counters_; }
  void resetCounters() noexcept { counters_ = {}; }

  /// Selects the open list: Dial buckets (default) or the pure packed
  /// heap. Both settle in the identical (distance, node) order; the knob
  /// exists for differential tests and the solver microbenchmark.
  void setBucketQueue(bool on) noexcept { useBucketQueue_ = on; }
  bool bucketQueue() const noexcept { return useBucketQueue_; }

  /// Bounds of the Dial bucket span (distance labels below the span go to
  /// buckets; at or above it, to the overflow heap). The floor keeps the
  /// bucket path meaningful, the ceiling bounds the bucket array itself.
  static constexpr std::int64_t kMinBucketSpan = std::int64_t{1} << 6;
  static constexpr std::int64_t kMaxBucketSpan = std::int64_t{1} << 20;
  static constexpr std::int64_t kDefaultBucketSpan = std::int64_t{1} << 14;

  /// Sets the Dial bucket span, clamped to [kMinBucketSpan,
  /// kMaxBucketSpan]. Any span yields the identical settle order (labels
  /// past the span overflow into the heap, which drains strictly after
  /// every bucket); the knob trades bucket-array memory against how much
  /// of the distance range enjoys O(1) pushes. Call between solves.
  void setBucketSpan(std::int64_t span) noexcept {
    bucketSpan_ = std::max(kMinBucketSpan, std::min(span, kMaxBucketSpan));
  }
  std::int64_t bucketSpan() const noexcept { return bucketSpan_; }

  /// Span recommendation covering distance labels up to
  /// `maxExpectedDistance` (e.g. a few grid diameters for an escape
  /// network): the next power of two above it, clamped to the span
  /// bounds. Labels beyond the estimate still solve correctly via the
  /// overflow heap.
  static std::int64_t recommendedBucketSpan(std::int64_t maxExpectedDistance) noexcept {
    std::int64_t span = kMinBucketSpan;
    while (span <= maxExpectedDistance && span < kMaxBucketSpan) span <<= 1;
    return span;
  }

  /// Enables multi-augmentation + the bidirectional last-unit refinement.
  /// The (flow, cost) optimum is unchanged; individual equal-cost paths
  /// may differ from the classic solver, so callers relying on golden
  /// hashes must leave this off.
  void setFastSsp(bool on) noexcept { fastSsp_ = on; }
  bool fastSsp() const noexcept { return fastSsp_; }

  /// Builds the CSR over the edges added so far (normally deferred to the
  /// first run or mutation). Every edge added afterwards goes to the
  /// overlay; a session calls this once after laying down its persistent
  /// network so truncateEdges() can drop per-round edges later.
  void freeze() { ensureCsr(); }

  /// Sends up to `maxFlow` units from s to t along successively cheapest
  /// augmenting paths. May be called repeatedly; flow accumulates.
  Result run(std::size_t s, std::size_t t,
             std::int64_t maxFlow = std::int64_t{1} << 60);

  /// Warm restart: resetFlow() followed by run(). Reuses the CSR, the
  /// stamped per-node search state, and every allocation of the previous
  /// solve; only the arcs the previous solve actually touched are repaired.
  Result rerun(std::size_t s, std::size_t t,
               std::int64_t maxFlow = std::int64_t{1} << 60);

  /// Flow currently on edge `edgeId` (as returned by addEdge).
  std::int64_t flowOn(std::size_t edgeId) const;

  /// Residual capacity of edge `edgeId`.
  std::int64_t residual(std::size_t edgeId) const;

  /// Current base capacity of edge `edgeId` (as set by addEdge/setCapacity).
  std::int64_t capacityOf(std::size_t edgeId) const { return baseCap_[edgeId]; }

  /// Total s->t units currently routed in the network (augmented minus
  /// cancelled).
  std::int64_t totalFlowUnits() const noexcept { return flowUnits_; }

  /// Changes the capacity of `edgeId`. If the edge currently carries more
  /// than `capacity` units, the excess is cancelled first (pushed back
  /// along the residual graph), so capacity/flow invariants hold.
  void setCapacity(std::size_t edgeId, std::int64_t capacity);

  /// Disables `node`: cancels all flow through it, then zeroes the
  /// residual capacity of every incident arc, so no future augmenting
  /// path can use it. Idempotent.
  void disableNode(std::size_t node);

  /// Re-enables `node`: restores the base capacity of every incident arc
  /// whose other endpoint is not itself disabled. Idempotent.
  void enableNode(std::size_t node);

  bool nodeDisabled(std::size_t node) const {
    return !disabled_.empty() && disabled_[node] != 0;
  }

  /// Cancels up to `maxUnits` units of flow crossing `edgeId`, pushing
  /// each unit back along flow-carrying arcs toward the source and sink
  /// (the residual-graph repair that keeps conservation intact after an
  /// edit). Returns the number of units cancelled; the network's total
  /// s->t flow drops by that amount.
  std::int64_t cancelFlowThrough(std::size_t edgeId,
                                 std::int64_t maxUnits = std::int64_t{1} << 60);

  /// Cancels every unit of flow passing through `node` (including flow
  /// originating or terminating there). Returns the units cancelled.
  std::int64_t cancelFlowThroughNode(std::size_t node);

  /// Returns the network to its zero-flow state and clears the Johnson
  /// potentials. Cost is proportional to the number of arcs the previous
  /// solves touched, not the size of the graph.
  void resetFlow();

  /// Drops every edge with id >= `edgeCount` (a suffix). The dropped
  /// edges must be overlay edges (added after the CSR build) and must be
  /// flow-free — call resetFlow() or cancel their flow first. This is how
  /// a session discards its per-round arcs while keeping the persistent
  /// network.
  void truncateEdges(std::size_t edgeCount);

  /// Visits every edge that currently carries flow, in O(arcs touched by
  /// augmentation) instead of O(edges): calls fn(edgeId, flow). An edge
  /// may be visited more than once (the dirty list is not deduplicated);
  /// callers must be idempotent per edge.
  template <typename Fn>
  void forEachPositiveFlowEdge(Fn&& fn) const {
    const auto visit = [&](std::size_t arcId) {
      if ((arcId & 1) != 0) return;  // forward arcs only
      const std::size_t e = arcId >> 1;
      const std::int64_t f = flowOn(e);
      if (f > 0) fn(e, f);
    };
    for (const std::int32_t k : dirtyCsr_)
      visit(static_cast<std::size_t>(csrArcId_[static_cast<std::size_t>(k)]));
    for (const std::int32_t a : dirtyOv_) visit(static_cast<std::size_t>(a));
  }

 private:
  void ensureCsr();
  std::int64_t capOfArc(std::size_t arcId) const;
  void setArcResidual(std::size_t arcId, std::int64_t cap);
  std::int64_t zeroFlowCap(std::size_t arcId) const;
  void markDirtyArc(std::size_t arcId);
  bool arcEndpointDisabled(std::size_t arcId) const {
    return nodeDisabled(static_cast<std::size_t>(arcFrom_[arcId])) ||
           nodeDisabled(static_cast<std::size_t>(arcTo_[arcId]));
  }
  /// First arc out of `node` (scan order) with `pred(arcId)`; -1 if none.
  template <typename Pred>
  std::int64_t findArcFrom(std::size_t node, Pred&& pred) const;
  void cancelUnitBackwardFrom(std::size_t node);
  void cancelUnitForwardFrom(std::size_t node);
  void repairPotentials();
  std::int64_t remainingSinkCapacity(std::size_t t) const;
  std::int64_t augmentTightPaths(std::size_t s, std::size_t t, std::int64_t budget,
                                 std::int64_t& cost);
  bool augmentBidir(std::size_t s, std::size_t t, std::int64_t& cost);

  // Arc-code helpers shared by the fast-mode refinements. A code is the
  // prevArc encoding: a CSR position (>= 0) or an overlay arc id a as
  // -(a + 2); -1 is the end-of-scan sentinel.
  std::int64_t firstArcCode(std::size_t u) const;
  std::int64_t nextArcCode(std::size_t u, std::int64_t code) const;
  std::int64_t residualOfCode(std::int64_t code) const;
  std::int32_t headOfCode(std::int64_t code) const;
  std::int32_t tailOfCode(std::int64_t code) const;
  std::int64_t costOfCode(std::int64_t code) const;
  void pushOnCode(std::int64_t code, std::int64_t units);

  // Edge ingest order; arc a = 2 * edge + (backward ? 1 : 0). arcCap_ is
  // authoritative for overlay arcs (and for all arcs until the CSR is
  // built); CSR arcs keep their live residual in csrArc_.
  std::vector<std::int32_t> arcFrom_;
  std::vector<std::int32_t> arcTo_;
  std::vector<std::int64_t> arcCap_;
  std::vector<std::int64_t> arcCost_;
  std::vector<std::int64_t> baseCap_;  ///< per edge; mutable via setCapacity

  // CSR adjacency: node u's arcs are CSR positions csrStart_[u] ..
  // csrStart_[u+1), in arc-id (= insertion) order. The Dijkstra-hot arc
  // fields share one 16-byte record so scanning a node's arcs is a single
  // stream; arc costs are capped at 32 bits (checked in addEdge).
  struct CsrArc {
    std::int64_t cap;  ///< residual capacity (mutable state)
    std::int32_t to;
    std::int32_t cost;
  };
  static_assert(sizeof(CsrArc) == 16);
  std::vector<std::size_t> csrStart_;
  std::vector<CsrArc> csrArc_;           ///< per CSR position
  std::vector<std::int32_t> csrRev_;     ///< CSR position of the reverse arc
  std::vector<std::int32_t> arcPos_;     ///< arc id -> CSR position
  std::vector<std::int32_t> csrArcId_;   ///< CSR position -> arc id
  std::size_t builtArcs_ = 0;
  bool csrBuilt_ = false;

  // Overlay adjacency for arcs added after the CSR build: doubly-linked
  // per-node chains in insertion order, scanned after a node's CSR arcs.
  // Indexed by (arcId - builtArcs_).
  std::vector<std::int32_t> ovNext_;
  std::vector<std::int32_t> ovPrev_;
  std::vector<std::int32_t> ovHead_;  ///< per node; lazily sized
  std::vector<std::int32_t> ovTail_;  ///< per node; lazily sized
  void linkOverlayArc(std::size_t arcId);

  // Per-node search state; dist/prevArc valid when distStamp == epoch_.
  // prevArc encodes a CSR position (>= 0) or an overlay arc id a as
  // -(a + 2); -1 is the no-predecessor sentinel.
  struct alignas(32) Node {
    std::int64_t dist;
    std::int64_t potential;
    std::int32_t prevArc;
    std::uint32_t distStamp;
    std::uint32_t doneStamp;
    std::uint32_t pad;
  };
  static_assert(sizeof(Node) == 32);  // over-aligned: never straddles cache lines
  std::vector<Node> nodes_;
  std::uint32_t epoch_ = 0;

  std::vector<std::uint8_t> disabled_;  ///< per node; lazily sized

  // Arcs whose residual diverged from the zero-flow value because of
  // augmentation / cancellation; resetFlow() repairs exactly these.
  // Entries may repeat (restoration is idempotent).
  std::vector<std::int32_t> dirtyCsr_;  ///< CSR positions
  std::vector<std::int32_t> dirtyOv_;   ///< overlay arc ids
  std::int64_t flowUnits_ = 0;
  bool potentialsDirty_ = false;  ///< an edit may have broken reduced costs

  // Open list, heap part: a 4-ary heap of keys packed as
  // (distance << nodeBits_) | node. Packed comparison is exactly the
  // lexicographic (distance, node) order of a pair heap — distance ties
  // break toward the smaller node id — and any correct priority queue
  // pops the comparator minimum, so the settle sequence is independent of
  // heap arity and layout. In bucket mode the heap holds only the
  // overflow (distance >= kBucketSpan), which drains after every bucket.
  unsigned nodeBits_ = 1;
  std::vector<std::uint64_t> heap_;
  std::vector<std::int32_t> settled_;  ///< pop order, for the potential update
  /// Per-pass mirror of `doneStamp == epoch_`, one bit per node. The
  /// relax loop checks this 17-KB-per-134k-nodes bitset (L1/L2-resident)
  /// before touching the 32-byte Node record, so arcs into already-
  /// settled nodes -- roughly half of a grid pass's relaxations -- skip
  /// the random Node load entirely. Cleared at the start of every pass.
  std::vector<std::uint64_t> doneBits_;
  static void heapPush(std::vector<std::uint64_t>& heap, std::uint64_t key);
  static std::uint64_t heapPop(std::vector<std::uint64_t>& heap);

  // Open list, Dial part: per-distance buckets of node ids below
  // bucketSpan_. The bucket being drained ("active") lives in a
  // three-level bitmap over node ids, so pop-min is a handful of word
  // scans and inserting into the active distance (zero-reduced-cost
  // relaxations) is three bit-sets. Future distances append to plain
  // vectors; usedBuckets_ lets a pass that ends on the sink cut clear
  // only what it touched.
  std::int64_t bucketSpan_ = kDefaultBucketSpan;
  bool useBucketQueue_ = true;
  std::vector<std::vector<std::int32_t>> buckets_;
  std::vector<std::int32_t> usedBuckets_;
  std::int64_t activeDist_ = 0;  ///< distance held by the bitmap
  std::int64_t bucketHi_ = -1;   ///< highest non-empty future bucket
  std::vector<std::uint64_t> bmL0_, bmL1_, bmL2_;
  std::size_t bmCount_ = 0;
  void bmInsert(std::size_t v);
  std::size_t bmPopMin();
  void bmClearAll();

  // Fast-mode scratch: blocking-flow DFS state (current-arc cursors,
  // blocked/on-path stamps) and the backward labels + heap of the
  // bidirectional refinement. All lazily sized; idle unless fastSsp_.
  bool fastSsp_ = false;
  std::vector<std::int64_t> dfsCur_;
  std::vector<std::uint32_t> dfsCurStamp_;
  std::vector<std::uint32_t> dfsBlockedStamp_;
  std::vector<std::uint32_t> dfsOnPathStamp_;
  std::vector<std::int32_t> dfsStackNode_;
  std::vector<std::int64_t> dfsStackArc_;
  std::uint32_t dfsPhase_ = 0;
  std::uint32_t dfsPathId_ = 0;
  struct BNode {
    std::int64_t dist;
    std::int32_t prevArc;
    std::uint32_t distStamp;
    std::uint32_t doneStamp;
  };
  std::vector<BNode> bnodes_;
  std::vector<std::uint64_t> heapB_;
  std::uint32_t bepoch_ = 0;

  Counters counters_;
};

}  // namespace pacor::graph
