#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace pacor::graph {

/// Successive-shortest-path min-cost max-flow with Dijkstra + Johnson
/// potentials. Integral capacities and non-negative costs.
///
/// This replaces the paper's Gurobi LP for the escape-routing formulation
/// (Sec. 5): the constraint matrix there is a network-flow matrix, hence
/// totally unimodular, so the LP optimum is attained at an integral
/// vertex — which is exactly what this solver computes. Maximizing the
/// routed-path count with the beta-dominant reward term is equivalent to
/// the lexicographic (max flow, then min cost) objective realized by
/// min-cost *max*-flow.
///
/// Layout is chosen for the Dijkstra inner loop: arcs live in CSR order
/// (to / cost / cap arrays indexed by CSR position, reverse arc reachable
/// through a position xref), and all per-node search state shares one
/// 32-byte record so relaxing a neighbor touches a single cache line.
/// That state is generation-stamped instead of refilled, so one
/// augmentation costs O(heap work + path length), not O(nodes). The pop
/// sequence of the Dijkstra heap is the comparator-determined order over
/// (distance, node) pairs — distance ties break toward the smaller node
/// id — so results are identical to the original adjacency-list
/// implementation, augmenting path for augmenting path.
class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t nodeCount);

  std::size_t nodeCount() const noexcept { return nodes_.size(); }

  /// Adds a directed edge u -> v. Returns an edge id usable with flowOn().
  std::size_t addEdge(std::size_t u, std::size_t v, std::int64_t capacity,
                      std::int64_t cost);

  struct Result {
    std::int64_t flow = 0;
    std::int64_t cost = 0;
  };

  /// Sends up to `maxFlow` units from s to t along successively cheapest
  /// augmenting paths. May be called repeatedly; flow accumulates.
  Result run(std::size_t s, std::size_t t,
             std::int64_t maxFlow = std::int64_t{1} << 60);

  /// Flow currently on edge `edgeId` (as returned by addEdge).
  std::int64_t flowOn(std::size_t edgeId) const;

  /// Residual capacity of edge `edgeId`.
  std::int64_t residual(std::size_t edgeId) const;

 private:
  void ensureCsr();
  std::int64_t capOf(std::size_t arcId) const;

  // Edge ingest order; arc a = 2 * edge + (backward ? 1 : 0). Caps are
  // authoritative here only until ensureCsr() moves them into csrCap_.
  std::vector<std::int32_t> arcFrom_;
  std::vector<std::int32_t> arcTo_;
  std::vector<std::int64_t> arcCap_;
  std::vector<std::int64_t> arcCost_;
  std::vector<std::int64_t> originalCap_;  ///< per edge

  // CSR adjacency: node u's arcs are CSR positions csrStart_[u] ..
  // csrStart_[u+1), in arc-id (= insertion) order. The Dijkstra-hot arc
  // fields share one 16-byte record so scanning a node's arcs is a single
  // stream; arc costs are capped at 32 bits (checked in addEdge).
  struct CsrArc {
    std::int64_t cap;  ///< residual capacity (mutable state)
    std::int32_t to;
    std::int32_t cost;
  };
  static_assert(sizeof(CsrArc) == 16);
  std::vector<std::size_t> csrStart_;
  std::vector<CsrArc> csrArc_;         ///< per CSR position
  std::vector<std::int32_t> csrRev_;   ///< CSR position of the reverse arc
  std::vector<std::int32_t> arcPos_;   ///< arc id -> CSR position
  std::size_t builtArcs_ = 0;

  // Per-node search state; dist/prevArc valid when distStamp == epoch_.
  struct Node {
    std::int64_t dist;
    std::int64_t potential;
    std::int32_t prevArc;  ///< CSR position of the arc into this node
    std::uint32_t distStamp;
    std::uint32_t doneStamp;
    std::uint32_t pad;
  };
  static_assert(sizeof(Node) == 32);
  std::vector<Node> nodes_;
  std::uint32_t epoch_ = 0;

  // Open list: a 4-ary heap of keys packed as (distance << nodeBits_) |
  // node. Packed comparison is exactly the lexicographic (distance, node)
  // order of a pair heap — distance ties break toward the smaller node id
  // — and any correct priority queue pops the comparator minimum, so the
  // settle sequence is independent of heap arity and layout.
  unsigned nodeBits_ = 1;
  std::vector<std::uint64_t> heap_;
  std::vector<std::int32_t> settled_;  ///< pop order, for the potential update
  void heapPush(std::uint64_t key);
  std::uint64_t heapPop();
};

}  // namespace pacor::graph
