#pragma once

#include <cstdint>
#include <vector>

namespace pacor::graph {

/// Successive-shortest-path min-cost max-flow with Dijkstra + Johnson
/// potentials. Integral capacities and non-negative costs.
///
/// This replaces the paper's Gurobi LP for the escape-routing formulation
/// (Sec. 5): the constraint matrix there is a network-flow matrix, hence
/// totally unimodular, so the LP optimum is attained at an integral
/// vertex — which is exactly what this solver computes. Maximizing the
/// routed-path count with the beta-dominant reward term is equivalent to
/// the lexicographic (max flow, then min cost) objective realized by
/// min-cost *max*-flow.
class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t nodeCount);

  std::size_t nodeCount() const noexcept { return head_.size(); }

  /// Adds a directed edge u -> v. Returns an edge id usable with flowOn().
  std::size_t addEdge(std::size_t u, std::size_t v, std::int64_t capacity,
                      std::int64_t cost);

  struct Result {
    std::int64_t flow = 0;
    std::int64_t cost = 0;
  };

  /// Sends up to `maxFlow` units from s to t along successively cheapest
  /// augmenting paths. May be called repeatedly; flow accumulates.
  Result run(std::size_t s, std::size_t t,
             std::int64_t maxFlow = std::int64_t{1} << 60);

  /// Flow currently on edge `edgeId` (as returned by addEdge).
  std::int64_t flowOn(std::size_t edgeId) const;

  /// Residual capacity of edge `edgeId`.
  std::int64_t residual(std::size_t edgeId) const;

 private:
  struct Arc {
    std::size_t to;
    std::size_t rev;  ///< index of the reverse arc in adj_[to]
    std::int64_t cap;
    std::int64_t cost;
  };

  std::vector<std::vector<Arc>> head_;
  std::vector<std::pair<std::size_t, std::size_t>> edgeRef_;  ///< id -> (u, slot)
  std::vector<std::int64_t> originalCap_;
  std::vector<std::int64_t> potential_;
};

}  // namespace pacor::graph
