#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.hpp"

namespace pacor::graph {

/// Undirected edge between vertex indices with a cost.
struct WeightedEdge {
  std::size_t a = 0;
  std::size_t b = 0;
  std::int64_t cost = 0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

/// Prim MST over the complete Manhattan-distance graph of `points`
/// (O(n^2), exact; n is a cluster size, tens at most). Returns n-1 edges.
/// This fixes the connection topology for MST-based cluster routing
/// (paper Sec. 3, "MST-based cluster routing").
std::vector<WeightedEdge> manhattanMst(std::span<const geom::Point> points);

/// Kruskal MST over an explicit edge list on `vertexCount` vertices.
/// Returns the forest edges (|V|-1 when connected).
std::vector<WeightedEdge> kruskalMst(std::size_t vertexCount,
                                     std::vector<WeightedEdge> edges);

/// Total cost of an edge set.
std::int64_t totalCost(std::span<const WeightedEdge> edges);

}  // namespace pacor::graph
