#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/chip.hpp"
#include "route/path.hpp"
#include "route/workspace.hpp"
#include "trace/metrics.hpp"

namespace pacor::core {

/// Final routing state of one cluster (a pin-sharing valve group).
struct RoutedCluster {
  std::vector<chip::ValveId> valves;
  bool lengthMatchRequested = false;  ///< carried the constraint on input
  bool lengthMatched = false;         ///< final lengths within delta
  bool routed = false;                ///< every valve connected to the pin
  chip::PinId pin = -1;

  std::vector<route::Path> treePaths;  ///< intra-cluster channels
  route::Path escapePath;              ///< tap ... pin channel
  geom::Point tap;                     ///< Steiner root / middle point / valve

  /// Channel length from the pin to each valve (same order as `valves`),
  /// measured through the routed cells; -1 when unrouted.
  std::vector<std::int64_t> valveLengths;

  /// Edge count of all channels of this cluster (cells - 1 of the union).
  std::int64_t totalLength = 0;

  /// ECO re-routing provenance: true when this cluster was carried
  /// verbatim from the previous result by rerouteChip (its geometry is
  /// guaranteed byte-equal to the prior run's). Not serialized -- the
  /// canonical solution text is unchanged by ECO bookkeeping.
  bool ecoCarried = false;

  std::int64_t lengthSpread() const;  ///< max - min of valveLengths (0 if unrouted)
};

/// Per-stage wall-clock breakdown (seconds).
struct StageTimes {
  double clustering = 0.0;
  double clusterRouting = 0.0;
  double escape = 0.0;
  double detour = 0.0;
  double total = 0.0;
};

/// Complete result of one PACOR run — everything Table 2 reports, plus
/// the routed geometry for visualization and simulation.
struct PacorResult {
  std::string design;
  std::vector<RoutedCluster> clusters;

  bool complete = false;             ///< 100% routing completion
  int multiValveClusterCount = 0;    ///< Table 2 "#Clusters" (>= 2 valves)
  int matchedClusterCount = 0;       ///< Table 2 "#Matched Clusters"
  std::int64_t matchedChannelLength = 0;  ///< total length of matched clusters
  std::int64_t totalChannelLength = 0;
  StageTimes times;

  int escapeRounds = 0;     ///< de-clustering / rip-up rounds used
  int declusteredCount = 0; ///< clusters split or demoted during rip-up

  // Stage diagnostics (filled by the pipeline).
  int lmCandidatesBuilt = 0;      ///< candidate Steiner trees constructed
  bool selectionExact = true;     ///< MWCP solved to optimality (vs heuristic)
  int negotiationIterations = 0;  ///< Alg. 1 iterations consumed
  int detourReroutes = 0;         ///< successful bounded-length reroutes
  int detourBumpFallbacks = 0;    ///< of which via bump insertion
  int detourIterations = 0;       ///< Alg. 2 outer rounds, summed over clusters
  int detourRestores = 0;         ///< clusters rolled back to their snapshot

  // Escape rip-up remedy decisions across all rounds (incl. retries).
  int escapeWideTapRemedies = 0;  ///< matched trees given a wide tap
  int escapeDemotions = 0;        ///< matched trees demoted to plain
  int escapeSplits = 0;           ///< plain trees force-split in half

  /// Search-kernel effort per stage (A* invocations / settled expansions /
  /// bounded-DFS visits), measured as global-tally deltas around each
  /// stage. The escape figure covers the rip-up rounds' re-routing; the
  /// detour figure includes the matching-driven retry passes.
  route::SearchCounters searchClusterRouting;
  route::SearchCounters searchEscape;
  route::SearchCounters searchDetour;

  /// Worker threads the routing stages actually used (config.jobs with
  /// 0 resolved to the hardware concurrency).
  int parallelJobs = 1;

  /// Every counter above (plus the LM-routing and remedy breakdowns) in
  /// one queryable, deterministically-dumpable registry. Filled by the
  /// pipeline at harvest time; `pacor route --metrics=out.json` and
  /// bench_routing serialize it verbatim.
  trace::MetricsRegistry metrics;
};

}  // namespace pacor::core
