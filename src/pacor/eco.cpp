#include "pacor/eco.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "pacor/clustering.hpp"
#include "pacor/work.hpp"

namespace pacor::core {
namespace {

std::vector<chip::ValveId> sortedIds(std::vector<chip::ValveId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

void fillEcoMetrics(PacorResult& result, const EcoInfo& info,
                    std::size_t deltaOps) {
  trace::MetricsRegistry& m = result.metrics;
  m.setInt("eco.mode", info.mode == EcoInfo::Mode::kIdentity      ? 0
                       : info.mode == EcoInfo::Mode::kIncremental ? 1
                                                                  : 2);
  m.setInt("eco.fallback", info.fellBack ? 1 : 0);
  m.setInt("eco.delta_ops", static_cast<std::int64_t>(deltaOps));
  m.setInt("eco.dirty_clusters", info.dirtyClusters);
  m.setInt("eco.frozen_clusters", info.frozenClusters);
  m.setInt("eco.total_specs", info.totalSpecs);
  m.setReal("eco.reuse_ratio", info.reuseRatio);
}

/// Every cell a routed cluster owns in the obstacle map: valve cells, the
/// intra-cluster tree, and the escape channel (the same union the pipeline
/// committed; occupy() tolerates the overlaps between them).
template <typename CellFn>
void forEachClusterCell(const chip::Chip& chip, const RoutedCluster& rc,
                        std::span<const chip::ValveId> valvesInChip,
                        CellFn&& fn) {
  for (const chip::ValveId v : valvesInChip) fn(chip.valve(v).pos);
  for (const route::Path& p : rc.treePaths)
    for (const geom::Point c : p) fn(c);
  for (const geom::Point c : rc.escapePath) fn(c);
}

}  // namespace

PacorResult rerouteChip(const chip::Chip& base, const PacorResult& prev,
                        const chip::ChipDelta& delta, const PacorConfig& config,
                        const RouteResources& resources, EcoInfo* info) {
  chip::AppliedDelta applied = chip::applyWithMap(base, delta);
  const chip::Chip& edited = applied.chip;
  if (const auto err = edited.validate())
    throw std::invalid_argument("rerouteChip: edited chip is invalid: " + *err);

  EcoInfo local;
  EcoInfo& out = info != nullptr ? *info : local;
  out = EcoInfo{};

  const auto fullRoute = [&](std::string reason, bool fellBack) {
    out.mode = EcoInfo::Mode::kFull;
    out.fellBack = fellBack;
    out.fullReason = std::move(reason);
    PacorResult result = routeChip(edited, config, resources);
    fillEcoMetrics(result, out, delta.ops.size());
    return result;
  };

  // Structural edits invalidate every committed escape (the boundary /
  // pin layout or the whole coordinate system changed): route fresh.
  if (edited.routingGrid.width() != base.routingGrid.width() ||
      edited.routingGrid.height() != base.routingGrid.height())
    return fullRoute("routing grid changed", false);
  if (edited.rules.minChannelWidthUm != base.rules.minChannelWidthUm ||
      edited.rules.minChannelSpacingUm != base.rules.minChannelSpacingUm)
    return fullRoute("design rules changed", false);
  if (edited.pins.size() != base.pins.size())
    return fullRoute("pin set changed", false);
  for (std::size_t i = 0; i < base.pins.size(); ++i)
    if (edited.pins[i].pos != base.pins[i].pos)
      return fullRoute("pin set changed", false);

  // --- Map the previous result onto base's clustering --------------------
  const std::vector<ClusterSpec> specsA = clusterValves(base);
  const std::vector<ClusterSpec> specsB = clusterValves(edited);
  out.totalSpecs = static_cast<int>(specsB.size());

  std::vector<int> valveToSpecA(base.valves.size(), -1);
  for (std::size_t s = 0; s < specsA.size(); ++s)
    for (const chip::ValveId v : specsA[s].valves)
      valveToSpecA[static_cast<std::size_t>(v)] = static_cast<int>(s);

  // A previous cluster may be a de-clustered fragment of its spec, so a
  // spec maps to a *group* of routed clusters whose valve union must cover
  // it exactly.
  std::vector<std::vector<std::size_t>> groupRcs(specsA.size());
  std::vector<std::vector<chip::ValveId>> groupUnion(specsA.size());
  for (std::size_t i = 0; i < prev.clusters.size(); ++i) {
    const RoutedCluster& rc = prev.clusters[i];
    if (rc.valves.empty()) return fullRoute("unusable previous result", false);
    int specA = -1;
    for (const chip::ValveId v : rc.valves) {
      if (v < 0 || static_cast<std::size_t>(v) >= base.valves.size())
        return fullRoute("unusable previous result", false);
      const int s = valveToSpecA[static_cast<std::size_t>(v)];
      if (specA == -1) specA = s;
      if (s != specA || s < 0)
        return fullRoute("unusable previous result", false);
    }
    groupRcs[static_cast<std::size_t>(specA)].push_back(i);
    auto& u = groupUnion[static_cast<std::size_t>(specA)];
    u.insert(u.end(), rc.valves.begin(), rc.valves.end());
  }

  // --- The edit's blocker set --------------------------------------------
  // Cells that did not block routing before but do now: obstacles added by
  // the delta plus the sites of new or moved valves. A committed cluster
  // whose geometry touches any of them cannot be carried.
  std::vector<chip::ValveId> invMap(edited.valves.size(), -1);
  for (std::size_t old = 0; old < applied.valveMap.size(); ++old)
    if (applied.valveMap[old] >= 0)
      invMap[static_cast<std::size_t>(applied.valveMap[old])] =
          static_cast<chip::ValveId>(old);

  std::unordered_set<geom::Point> blockers;
  {
    std::unordered_map<geom::Point, int> obsCount;
    for (const geom::Point p : base.obstacles) ++obsCount[p];
    for (const geom::Point p : edited.obstacles) {
      const auto it = obsCount.find(p);
      if (it == obsCount.end() || it->second == 0)
        blockers.insert(p);
      else
        --it->second;
    }
  }
  for (const chip::Valve& v : edited.valves) {
    const chip::ValveId old = invMap[static_cast<std::size_t>(v.id)];
    if (old < 0 || base.valve(old).pos != v.pos) blockers.insert(v.pos);
  }

  const bool deltaChanged = base.delta != edited.delta;

  // --- Per-spec verdict: carry frozen or re-route dirty -------------------
  std::map<std::vector<chip::ValveId>, std::size_t> specAByKey;
  for (std::size_t s = 0; s < specsA.size(); ++s)
    specAByKey[sortedIds(specsA[s].valves)] = s;

  struct Plan {
    int specA = -1;    ///< matching base spec (membership + lm), -1 if none
    bool clean = false;  ///< the previous geometry can be carried verbatim
  };
  std::vector<Plan> plans(specsB.size());
  int frozenSpecs = 0;
  for (std::size_t b = 0; b < specsB.size(); ++b) {
    const ClusterSpec& spec = specsB[b];
    std::vector<chip::ValveId> pre;
    pre.reserve(spec.valves.size());
    bool mapped = true;
    for (const chip::ValveId v : spec.valves) {
      const chip::ValveId old = invMap[static_cast<std::size_t>(v)];
      if (old < 0) {
        mapped = false;
        break;
      }
      pre.push_back(old);
    }
    if (!mapped) continue;
    const auto it = specAByKey.find(sortedIds(std::move(pre)));
    if (it == specAByKey.end()) continue;
    const std::size_t sa = it->second;
    if (specsA[sa].lengthMatched != spec.lengthMatched) continue;
    plans[b].specA = static_cast<int>(sa);

    if (deltaChanged && spec.lengthMatched) continue;
    bool clean = true;
    for (const chip::ValveId v : spec.valves)
      if (base.valve(invMap[static_cast<std::size_t>(v)]).pos !=
          edited.valve(v).pos)
        clean = false;
    const auto& group = groupRcs[sa];
    if (group.empty() ||
        sortedIds(groupUnion[sa]) != sortedIds(specsA[sa].valves))
      clean = false;
    for (const std::size_t rcIdx : group) {
      const RoutedCluster& rc = prev.clusters[rcIdx];
      if (!rc.routed || rc.pin < 0 ||
          static_cast<std::size_t>(rc.pin) >= edited.pins.size()) {
        clean = false;
        break;
      }
      forEachClusterCell(base, rc, rc.valves, [&](geom::Point c) {
        if (blockers.contains(c)) clean = false;
      });
      if (!clean) break;
    }
    if (clean) {
      plans[b].clean = true;
      ++frozenSpecs;
    }
  }
  out.dirtyClusters = static_cast<int>(specsB.size()) - frozenSpecs;

  // --- Identity: nothing the edit touched needs routing -------------------
  if (out.dirtyClusters == 0 && specsA.size() == specsB.size() &&
      frozenSpecs == static_cast<int>(specsB.size())) {
    out.mode = EcoInfo::Mode::kIdentity;
    out.frozenClusters = static_cast<int>(prev.clusters.size());
    out.reuseRatio = 1.0;
    PacorResult result = prev;
    result.design = edited.name;
    for (RoutedCluster& rc : result.clusters) rc.ecoCarried = true;
    fillEcoMetrics(result, out, delta.ops.size());
    return result;
  }

  // --- Incremental: seed stages 2-5 with the survivors frozen -------------
  detail::PipelineSeed seed;
  seed.obstacles = makeRoutingObstacleTemplate(edited);
  seed.multiValveClusterCount = static_cast<int>(
      std::count_if(specsB.begin(), specsB.end(),
                    [](const ClusterSpec& s) { return s.valves.size() >= 2; }));
  grid::NetId nextNet = 0;
  int frozenRcs = 0;
  bool seedConflict = false;
  const auto occupyCell = [&](grid::ObstacleMap& map, geom::Point c,
                              grid::NetId net) {
    if (!map.isFreeFor(c, net)) {
      seedConflict = true;
      return;
    }
    map.occupy(std::span<const geom::Point>(&c, 1), net);
  };
  for (std::size_t b = 0; b < specsB.size(); ++b) {
    const ClusterSpec& spec = specsB[b];
    if (!plans[b].clean) {
      WorkCluster wc;
      wc.spec = spec;
      wc.net = nextNet++;
      for (const chip::ValveId v : spec.valves)
        occupyCell(seed.obstacles, edited.valve(v).pos, wc.net);
      seed.clusters.push_back(std::move(wc));
      continue;
    }
    for (const std::size_t rcIdx : groupRcs[static_cast<std::size_t>(plans[b].specA)]) {
      const RoutedCluster& rc = prev.clusters[rcIdx];
      WorkCluster wc;
      wc.spec.valves.reserve(rc.valves.size());
      for (const chip::ValveId v : rc.valves)
        wc.spec.valves.push_back(applied.valveMap[static_cast<std::size_t>(v)]);
      wc.spec.lengthMatched = rc.lengthMatchRequested;
      wc.net = nextNet++;
      wc.internallyRouted = true;
      wc.treePaths = rc.treePaths;
      wc.escapePath = rc.escapePath;
      wc.pin = rc.pin;
      wc.tap = rc.tap;
      wc.rootTap = rc.tap;
      wc.tapCells = {rc.tap};
      wc.lengthMatched = rc.lengthMatched;
      wc.ecoFrozen = true;
      forEachClusterCell(edited, rc, wc.spec.valves, [&](geom::Point c) {
        occupyCell(seed.obstacles, c, wc.net);
      });
      ++frozenRcs;
      seed.clusters.push_back(std::move(wc));
    }
  }
  seed.nextNet = nextNet;
  if (seedConflict)
    return fullRoute("previous geometry conflicts with the edited chip", true);

  out.mode = EcoInfo::Mode::kIncremental;
  out.frozenClusters = frozenRcs;
  out.reuseRatio = prev.clusters.empty()
                       ? 0.0
                       : static_cast<double>(frozenRcs) /
                             static_cast<double>(prev.clusters.size());

  PacorResult result =
      detail::routeChipSeeded(edited, config, resources, std::move(seed));

  // --- Acceptance: never hand back worse than a fresh route would ---------
  if (!result.complete)
    return fullRoute("incremental re-route incomplete", true);
  // A dirty cluster whose previous incarnation was cleanly length-matched
  // must come back matched in one piece; anything less is a quality
  // regression the full flow may well avoid.
  for (std::size_t b = 0; b < specsB.size(); ++b) {
    const ClusterSpec& spec = specsB[b];
    if (plans[b].clean || !spec.lengthMatched || plans[b].specA < 0) continue;
    const auto& group = groupRcs[static_cast<std::size_t>(plans[b].specA)];
    if (group.size() != 1) continue;
    const RoutedCluster& was = prev.clusters[group.front()];
    if (!was.lengthMatchRequested || !was.lengthMatched) continue;
    const std::vector<chip::ValveId> want = sortedIds(spec.valves);
    bool ok = false;
    for (const RoutedCluster& rc : result.clusters) {
      if (rc.ecoCarried || sortedIds(rc.valves) != want) continue;
      ok = rc.lengthMatchRequested && rc.lengthMatched;
      break;
    }
    if (!ok)
      return fullRoute("length matching regressed on a re-routed cluster",
                       true);
  }

  fillEcoMetrics(result, out, delta.ops.size());
  return result;
}

}  // namespace pacor::core
