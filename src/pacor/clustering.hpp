#pragma once

#include <vector>

#include "chip/chip.hpp"

namespace pacor::core {

/// A cluster scheduled for routing: valve ids plus whether it carries the
/// length-matching constraint. Produced by valve clustering, consumed by
/// the routing stages; the escape stage may split (de-cluster) entries.
struct ClusterSpec {
  std::vector<chip::ValveId> valves;
  bool lengthMatched = false;
};

/// Valve clustering under the broadcast addressing scheme (paper Fig. 2,
/// first stage): the chip's given length-matching clusters are preserved
/// verbatim; all remaining valves are partitioned into a heuristically
/// minimal number of pairwise-compatible cliques (each clique shares one
/// control pin, minimizing the pin count). Singleton clusters are valid.
std::vector<ClusterSpec> clusterValves(const chip::Chip& chip);

}  // namespace pacor::core
