#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "grid/obstacle_map.hpp"
#include "pacor/work.hpp"

namespace pacor::core {

/// Channel lengths from `origin` to each valve of the cluster, measured
/// along the routed paths: consecutive path cells are connected, and two
/// paths join only where they share a cell (channels merely running
/// adjacent stay hydraulically separate). Returns -1 for unreachable
/// valves. `origin` is the control pin cell in the final flow, or the tap
/// cell for detour-first matching.
std::vector<std::int64_t> measureValveLengths(const chip::Chip& chip,
                                              const WorkCluster& wc, Point origin);

/// Rebuilds the cluster's detour structure (treePaths split into segments
/// between junctions + leaf-first sink sequences) from its routed
/// geometry, rooted at the escape anchor (escapePath.front()). Needed
/// after a wide-tap escape: when the escape attaches away from the DME
/// root, the original root-relative sequences no longer describe which
/// segments lie on a sink's pin path. Returns false when the geometry is
/// not a tree containing the anchor and every valve; the cluster keeps
/// its old structure in that case.
bool rebuildDetourStructure(const chip::Chip& chip, WorkCluster& wc);

struct DetourStats {
  int reroutes = 0;       ///< successful bounded-length reroutes
  int bumpFallbacks = 0;  ///< of which via bump insertion
  int iterations = 0;     ///< Alg. 2 outer rounds used (cumulative across calls)
  int restores = 0;       ///< clusters rolled back to their pre-detour snapshot
};

/// Path detouring for length matching (Algorithm 2): while some full path
/// is shorter than maxL - delta, walk its path sequence leaf-first and
/// lengthen the first not-yet-detoured path into the window
/// [maxL - delta, maxL] using minimum-length bounded A* with a bump-
/// insertion fallback. On a sink that cannot be detoured this round the
/// cluster's paths are restored to their pre-detour state and false is
/// returned; true means the cluster's valve lengths (from `origin`) ended
/// within delta. Requires wc.lmStructured.
bool detourClusterForMatching(const chip::Chip& chip, grid::ObstacleMap& obstacles,
                              WorkCluster& wc, Point origin, std::int64_t delta,
                              int maxRounds, DetourStats* stats = nullptr,
                              bool useBoundedRoute = true);

}  // namespace pacor::core
