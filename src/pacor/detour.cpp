#include "pacor/detour.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <unordered_set>

#include "route/bounded_astar.hpp"
#include "route/bump_detour.hpp"
#include "trace/trace.hpp"

namespace pacor::core {
namespace {

/// Cells of every path of the cluster except path `skip` (-1 = none),
/// plus the valve cells (terminals stay owned during reroutes).
std::unordered_set<Point> cellsExcept(const chip::Chip& chip, const WorkCluster& wc,
                                      int skip) {
  std::unordered_set<Point> cells;
  for (std::size_t i = 0; i < wc.treePaths.size(); ++i) {
    if (static_cast<int>(i) == skip) continue;
    cells.insert(wc.treePaths[i].begin(), wc.treePaths[i].end());
  }
  cells.insert(wc.escapePath.begin(), wc.escapePath.end());
  for (const chip::ValveId v : wc.spec.valves) cells.insert(chip.valve(v).pos);
  return cells;
}

/// Temporary net id for reroute searches: everything the cluster owns
/// must read as blocked except the cells explicitly released.
constexpr grid::NetId kDetourProbeNet = 2'000'000'000;

/// Attempts to reroute wc.treePaths[pathIdx] so its length grows by a
/// value in [needLo, needHi] (both >= 0). Commits on success.
bool reroutePath(const chip::Chip& chip, grid::ObstacleMap& obstacles, WorkCluster& wc,
                 int pathIdx, std::int64_t needLo, std::int64_t needHi,
                 DetourStats* stats, bool useBoundedRoute) {
  route::Path& path = wc.treePaths[static_cast<std::size_t>(pathIdx)];
  if (path.size() < 2) return false;
  const Point a = path.front();
  const Point b = path.back();
  const std::int64_t oldLen = route::pathLength(path);

  // Release the cells only this path owns, plus its endpoints (which may
  // be shared junctions); everything else of the cluster stays blocking.
  const auto shared = cellsExcept(chip, wc, pathIdx);
  std::vector<Point> released;
  for (const Point c : path)
    if (!shared.contains(c)) released.push_back(c);
  std::vector<std::pair<Point, grid::NetId>> endpointOwners;
  for (const Point c : {a, b}) {
    const grid::NetId owner = obstacles.owner(c);
    if (owner >= 0) {
      endpointOwners.emplace_back(c, owner);
      obstacles.releasePath(std::span<const Point>(&c, 1), owner);
    }
  }
  obstacles.releasePath(released, wc.net);

  const auto restore = [&] {
    obstacles.occupy(released, wc.net);
    for (const auto& [cell, owner] : endpointOwners) {
      if (obstacles.owner(cell) == grid::kFreeCell)
        obstacles.occupy(std::span<const Point>(&cell, 1), owner);
    }
  };

  // When the escape channel attaches mid-path (wide-tap clusters), the
  // anchor cell must survive the detour; only bump insertion (which keeps
  // every original cell) is safe for such paths.
  bool carriesAnchor = false;
  if (path.size() > 2) {
    const std::unordered_set<Point> escapeCells(wc.escapePath.begin(),
                                                wc.escapePath.end());
    for (std::size_t i = 1; i + 1 < path.size(); ++i)
      if (escapeCells.contains(path[i])) {
        carriesAnchor = true;
        break;
      }
  }

  route::BoundedAStarRequest req;
  req.source = a;
  req.target = b;
  req.net = kDetourProbeNet;
  req.minLength = oldLen + needLo;
  req.maxLength = oldLen + needHi;
  route::BoundedAStarResult found;
  if (useBoundedRoute && !carriesAnchor) found = route::boundedLengthRoute(obstacles, req);

  route::Path newPath;
  if (found.success) {
    newPath = std::move(found.path);
  } else {
    // Bump-insertion fallback operates on the original geometry.
    route::BumpDetourRequest bump;
    bump.path = path;
    bump.net = kDetourProbeNet;
    bump.minLength = oldLen + needLo;
    bump.maxLength = oldLen + needHi;
    auto bumped = route::bumpDetour(obstacles, bump);
    if (!bumped.success) {
      restore();
      return false;
    }
    newPath = std::move(bumped.path);
    if (stats != nullptr) ++stats->bumpFallbacks;
  }

  obstacles.occupy(newPath, wc.net);
  // Shared endpoints are covered by the new path (same endpoints), so
  // endpoints owned by wc.net are restored implicitly. An endpoint owned
  // by a *foreign* net should be impossible inside one cluster, but a
  // silently swallowed owner would corrupt the obstacle map for the rest
  // of the run — so re-assert it here and put any foreign owner back.
  for (const auto& [cell, owner] : endpointOwners) {
    assert(owner == wc.net && "detour endpoint owned by a foreign net");
    if (owner != wc.net && obstacles.owner(cell) == wc.net) {
      obstacles.releasePath(std::span<const Point>(&cell, 1), wc.net);
      obstacles.occupy(std::span<const Point>(&cell, 1), owner);
    }
  }
  path = std::move(newPath);
  if (stats != nullptr) ++stats->reroutes;
  return true;
}

}  // namespace

std::vector<std::int64_t> measureValveLengths(const chip::Chip& chip,
                                              const WorkCluster& wc, Point origin) {
  // Channel adjacency comes from the routed paths, NOT from grid
  // adjacency of owned cells: parallel channels of one net one cell apart
  // are separated by PDMS and carry no shortcut.
  std::unordered_map<Point, std::vector<Point>> adj;
  const auto link = [&](Point a, Point b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  const auto addPath = [&](const route::Path& p) {
    if (p.size() == 1) adj.try_emplace(p[0]);
    for (std::size_t i = 1; i < p.size(); ++i) link(p[i - 1], p[i]);
  };
  for (const route::Path& p : wc.treePaths) addPath(p);
  addPath(wc.escapePath);
  for (const chip::ValveId v : wc.spec.valves) adj.try_emplace(chip.valve(v).pos);

  std::unordered_map<Point, std::int64_t> dist;
  if (adj.contains(origin)) {
    std::queue<Point> frontier;
    frontier.push(origin);
    dist.emplace(origin, 0);
    while (!frontier.empty()) {
      const Point p = frontier.front();
      frontier.pop();
      const std::int64_t d = dist.at(p);
      for (const Point q : adj.at(p)) {
        if (dist.contains(q)) continue;
        dist.emplace(q, d + 1);
        frontier.push(q);
      }
    }
  }
  std::vector<std::int64_t> out;
  out.reserve(wc.spec.valves.size());
  for (const chip::ValveId v : wc.spec.valves) {
    const auto it = dist.find(chip.valve(v).pos);
    out.push_back(it == dist.end() ? -1 : it->second);
  }
  return out;
}

bool rebuildDetourStructure(const chip::Chip& chip, WorkCluster& wc) {
  if (wc.escapePath.empty()) return false;
  const Point anchor = wc.escapePath.front();

  // Channel adjacency from the tree paths only (path edges, not grid
  // adjacency), plus degree information to find junctions.
  std::unordered_map<Point, std::vector<Point>> adj;
  for (const route::Path& p : wc.treePaths)
    for (std::size_t i = 1; i < p.size(); ++i) {
      adj[p[i - 1]].push_back(p[i]);
      adj[p[i]].push_back(p[i - 1]);
    }
  if (!adj.contains(anchor)) return false;

  // BFS tree rooted at the anchor.
  std::unordered_map<Point, Point> parent;
  std::queue<Point> frontier;
  frontier.push(anchor);
  parent.emplace(anchor, anchor);
  while (!frontier.empty()) {
    const Point p = frontier.front();
    frontier.pop();
    for (const Point q : adj.at(p)) {
      if (parent.contains(q)) continue;
      parent.emplace(q, p);
      frontier.push(q);
    }
  }

  std::unordered_set<Point> cut{anchor};  // segment boundaries
  for (const auto& [cell, neighbors] : adj)
    if (neighbors.size() >= 3) cut.insert(cell);
  std::vector<Point> valveCells;
  for (const chip::ValveId v : wc.spec.valves) {
    const Point cell = chip.valve(v).pos;
    if (!parent.contains(cell)) return false;  // valve unreachable
    cut.insert(cell);
    valveCells.push_back(cell);
  }

  // Walk each valve up to the anchor, cutting segments at `cut` cells.
  // Segments shared between sinks are deduplicated on their leaf-side end.
  std::vector<route::Path> segments;
  std::unordered_map<Point, int> segmentByLeafEnd;
  std::vector<std::vector<int>> sequences(wc.spec.valves.size());
  for (std::size_t s = 0; s < valveCells.size(); ++s) {
    Point at = valveCells[s];
    while (at != anchor) {
      route::Path seg{at};
      Point walker = at;
      do {
        walker = parent.at(walker);
        seg.push_back(walker);
      } while (walker != anchor && !cut.contains(walker));
      const auto [it, fresh] =
          segmentByLeafEnd.emplace(at, static_cast<int>(segments.size()));
      if (fresh) segments.push_back(seg);
      sequences[s].push_back(it->second);
      at = walker;
    }
  }

  wc.treePaths = std::move(segments);
  wc.sinkSequences = std::move(sequences);
  wc.tap = anchor;
  wc.lmStructured = true;
  return true;
}

bool detourClusterForMatching(const chip::Chip& chip, grid::ObstacleMap& obstacles,
                              WorkCluster& wc, Point origin, std::int64_t delta,
                              int maxRounds, DetourStats* stats, bool useBoundedRoute) {
  if (!wc.lmStructured) return false;

  trace::Span span("detour.cluster", "detour", trace::Level::kCluster);

  // Snapshot for the Alg. 2 restore-on-failure semantics.
  const std::vector<route::Path> snapshotPaths = wc.treePaths;
  bool anyCommitted = false;  // a reroute changed the obstacle map

  // Alg. 2 steps 22-24: put the original paths back and give up. Used on
  // a failed round AND on budget exhaustion with matching unsatisfied —
  // leaving a half-detoured tree committed would waste channel length
  // without buying the match.
  const auto restoreSnapshot = [&] {
    obstacles.release(wc.net);
    wc.treePaths = snapshotPaths;
    for (const route::Path& p : wc.treePaths) obstacles.occupy(p, wc.net);
    if (!wc.escapePath.empty()) obstacles.occupy(wc.escapePath, wc.net);
    for (const chip::ValveId v : wc.spec.valves) {
      const Point cell = chip.valve(v).pos;
      obstacles.occupy(std::span<const Point>(&cell, 1), wc.net);
    }
    wc.lengthMatched = false;
    if (stats != nullptr) ++stats->restores;
  };

  const auto measure = [&] { return measureValveLengths(chip, wc, origin); };

  for (int round = 0; round < maxRounds; ++round) {
    if (stats != nullptr) ++stats->iterations;
    const auto lengths = measure();
    if (std::any_of(lengths.begin(), lengths.end(),
                    [](std::int64_t l) { return l < 0; })) {
      // Cluster not fully connected from origin. Reachable mid-loop only
      // if an earlier round's reroute broke connectivity — undo it.
      if (anyCommitted) restoreSnapshot();
      return false;
    }
    const std::int64_t maxL = *std::max_element(lengths.begin(), lengths.end());

    std::vector<std::size_t> shortSinks;
    for (std::size_t s = 0; s < lengths.size(); ++s)
      if (lengths[s] < maxL - delta) shortSinks.push_back(s);
    if (shortSinks.empty()) {
      wc.lengthMatched = true;
      return true;
    }

    std::vector<bool> detoured(wc.treePaths.size(), false);
    bool roundFailed = false;
    for (const std::size_t s : shortSinks) {
      const std::int64_t needLo = (maxL - delta) - lengths[s];
      const std::int64_t needHi = maxL - lengths[s];
      bool success = false;
      for (const int pathIdx : wc.sinkSequences[s]) {
        if (detoured[static_cast<std::size_t>(pathIdx)]) {
          success = true;  // a shared ancestor was already lengthened;
          break;           // lengths are re-measured next round
        }
        if (reroutePath(chip, obstacles, wc, pathIdx, needLo, needHi, stats,
                        useBoundedRoute)) {
          detoured[static_cast<std::size_t>(pathIdx)] = true;
          anyCommitted = true;
          success = true;
          break;
        }
      }
      if (!success) {
        if (std::getenv("PACOR_DEBUG"))
          std::fprintf(stderr,
                       "detour: sink %zu stuck (len %lld, maxL %lld, need [%lld,%lld])\n",
                       s, static_cast<long long>(lengths[s]),
                       static_cast<long long>(maxL), static_cast<long long>(needLo),
                       static_cast<long long>(needHi));
        roundFailed = true;
        break;
      }
    }

    if (roundFailed) {
      restoreSnapshot();
      return false;
    }
  }

  const auto lengths = measure();
  const auto [lo, hi] = std::minmax_element(lengths.begin(), lengths.end());
  wc.lengthMatched = !lengths.empty() && *lo >= 0 && (*hi - *lo) <= delta;
  // Budget exhausted without reaching the match: the same restore applies
  // here, otherwise the partially-detoured paths stay committed.
  if (!wc.lengthMatched && anyCommitted) restoreSnapshot();
  return wc.lengthMatched;
}

}  // namespace pacor::core
