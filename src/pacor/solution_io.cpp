#include "pacor/solution_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace pacor::core {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("solution io: " + what);
}

std::istringstream lineFor(std::istream& is, const char* key) {
  std::string line;
  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    std::istringstream ls(line);
    std::string k;
    ls >> k;
    if (k != key) fail(std::string("expected '") + key + "', got '" + k + "'");
    return ls;
  }
  fail(std::string("unexpected EOF, wanted '") + key + "'");
}


/// Rejects absurd record counts before any allocation (a corrupted count
/// must fail cleanly, not throw std::length_error out of vector).
std::size_t checkedCount(std::size_t n, const char* what) {
  constexpr std::size_t kMaxRecords = 16'777'216;
  if (n > kMaxRecords) fail(std::string("implausible count for ") + what);
  return n;
}

void writePath(std::ostream& os, const char* key, const route::Path& path) {
  os << key << ' ' << path.size();
  for (const geom::Point p : path) os << ' ' << p.x << ' ' << p.y;
  os << '\n';
}

route::Path readPath(std::istringstream& ls) {
  std::size_t n = 0;
  if (!(ls >> n)) fail("malformed path length");
  route::Path path(checkedCount(n, "path cells"));
  for (auto& p : path)
    if (!(ls >> p.x >> p.y)) fail("malformed path cell");
  return path;
}

}  // namespace

void writeSolution(std::ostream& os, const PacorResult& result) {
  os << "pacor-solution 1\n";
  os << "design " << result.design << '\n';
  os << "complete " << (result.complete ? 1 : 0) << '\n';
  os << "stats " << result.multiValveClusterCount << ' ' << result.matchedClusterCount
     << ' ' << result.matchedChannelLength << ' ' << result.totalChannelLength << ' '
     << result.escapeRounds << ' ' << result.declusteredCount << '\n';
  os << "clusters " << result.clusters.size() << '\n';
  for (const RoutedCluster& c : result.clusters) {
    os << "valves " << c.valves.size();
    for (const auto v : c.valves) os << ' ' << v;
    os << '\n';
    os << "flags " << (c.lengthMatchRequested ? 1 : 0) << ' '
       << (c.lengthMatched ? 1 : 0) << ' ' << (c.routed ? 1 : 0) << '\n';
    os << "pin " << c.pin << '\n';
    os << "tap " << c.tap.x << ' ' << c.tap.y << '\n';
    os << "lengths " << c.valveLengths.size();
    for (const auto l : c.valveLengths) os << ' ' << l;
    os << '\n';
    os << "treepaths " << c.treePaths.size() << '\n';
    for (const route::Path& p : c.treePaths) writePath(os, "path", p);
    writePath(os, "escape", c.escapePath);
  }
  if (!os) fail("write failure");
}

PacorResult readSolution(std::istream& is) {
  PacorResult result;
  {
    auto ls = lineFor(is, "pacor-solution");
    int version = 0;
    ls >> version;
    if (version != 1) fail("unsupported version");
  }
  {
    auto ls = lineFor(is, "design");
    ls >> result.design;
  }
  {
    auto ls = lineFor(is, "complete");
    int c = 0;
    ls >> c;
    result.complete = c != 0;
  }
  {
    auto ls = lineFor(is, "stats");
    ls >> result.multiValveClusterCount >> result.matchedClusterCount >>
        result.matchedChannelLength >> result.totalChannelLength >>
        result.escapeRounds >> result.declusteredCount;
    if (ls.fail()) fail("malformed stats");
  }
  std::size_t n = 0;
  {
    auto ls = lineFor(is, "clusters");
    if (!(ls >> n)) fail("malformed cluster count");
  }
  result.clusters.resize(checkedCount(n, "clusters"));
  for (RoutedCluster& c : result.clusters) {
    {
      auto ls = lineFor(is, "valves");
      std::size_t k = 0;
      if (!(ls >> k)) fail("malformed valves");
      c.valves.resize(checkedCount(k, "valves"));
      for (auto& v : c.valves)
        if (!(ls >> v)) fail("malformed valve id");
    }
    {
      auto ls = lineFor(is, "flags");
      int a = 0, b = 0, r = 0;
      if (!(ls >> a >> b >> r)) fail("malformed flags");
      c.lengthMatchRequested = a != 0;
      c.lengthMatched = b != 0;
      c.routed = r != 0;
    }
    {
      auto ls = lineFor(is, "pin");
      if (!(ls >> c.pin)) fail("malformed pin");
    }
    {
      auto ls = lineFor(is, "tap");
      if (!(ls >> c.tap.x >> c.tap.y)) fail("malformed tap");
    }
    {
      auto ls = lineFor(is, "lengths");
      std::size_t k = 0;
      if (!(ls >> k)) fail("malformed lengths");
      c.valveLengths.resize(checkedCount(k, "lengths"));
      for (auto& l : c.valveLengths)
        if (!(ls >> l)) fail("malformed length");
    }
    std::size_t m = 0;
    {
      auto ls = lineFor(is, "treepaths");
      if (!(ls >> m)) fail("malformed treepaths");
    }
    c.treePaths.resize(checkedCount(m, "tree paths"));
    for (auto& p : c.treePaths) {
      auto ls = lineFor(is, "path");
      p = readPath(ls);
    }
    {
      auto ls = lineFor(is, "escape");
      c.escapePath = readPath(ls);
    }
    c.totalLength = 0;
    std::unordered_set<geom::Point> cells;
    for (const auto& p : c.treePaths) cells.insert(p.begin(), p.end());
    cells.insert(c.escapePath.begin(), c.escapePath.end());
    if (!cells.empty()) c.totalLength = static_cast<std::int64_t>(cells.size()) - 1;
  }
  return result;
}

void writeSolutionFile(const std::string& path, const PacorResult& result) {
  std::ofstream os(path);
  if (!os) fail("cannot open for writing: " + path);
  writeSolution(os, result);
}

PacorResult readSolutionFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot open for reading: " + path);
  return readSolution(is);
}

std::string solutionToString(const PacorResult& result) {
  std::ostringstream os;
  writeSolution(os, result);
  return os.str();
}

PacorResult solutionFromString(const std::string& text) {
  std::istringstream is(text);
  return readSolution(is);
}

}  // namespace pacor::core
