#include "pacor/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pacor::core {

std::int64_t RoutedCluster::lengthSpread() const {
  if (valveLengths.empty() || !routed) return 0;
  const auto [lo, hi] = std::minmax_element(valveLengths.begin(), valveLengths.end());
  return *hi - *lo;
}

std::string describeResult(const PacorResult& result) {
  std::ostringstream os;
  os << "design " << result.design << ": " << result.clusters.size() << " clusters ("
     << result.multiValveClusterCount << " multi-valve), "
     << (result.complete ? "100% routed" : "INCOMPLETE") << ", matched "
     << result.matchedClusterCount << ", total length " << result.totalChannelLength
     << ", matched length " << result.matchedChannelLength << ", "
     << result.escapeRounds << " escape round(s), " << result.declusteredCount
     << " declustered\n";
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    const RoutedCluster& c = result.clusters[i];
    os << "  cluster " << i << " [";
    for (std::size_t k = 0; k < c.valves.size(); ++k)
      os << (k ? "," : "") << c.valves[k];
    os << "] pin=" << c.pin << " len=" << c.totalLength;
    if (c.lengthMatchRequested)
      os << " match=" << (c.lengthMatched ? "yes" : "NO")
         << " spread=" << c.lengthSpread();
    if (!c.routed) os << " UNROUTED";
    os << '\n';
  }
  return os.str();
}

namespace {

void printGroup(std::ostream& os, std::int64_t a, std::int64_t b, std::int64_t c,
                int width) {
  os << std::setw(width) << a << std::setw(width) << b << std::setw(width) << c;
}

}  // namespace

void printTable2Header(std::ostream& os) {
  os << std::left << std::setw(8) << "Design" << std::right << std::setw(10)
     << "#Clusters"
     << " |" << std::setw(8) << "w/oSel" << std::setw(8) << "DetF" << std::setw(8)
     << "PACOR"
     << " |" << std::setw(9) << "w/oSel" << std::setw(9) << "DetF" << std::setw(9)
     << "PACOR"
     << " |" << std::setw(9) << "w/oSel" << std::setw(9) << "DetF" << std::setw(9)
     << "PACOR"
     << " |" << std::setw(9) << "w/oSel" << std::setw(9) << "DetF" << std::setw(9)
     << "PACOR" << '\n';
  os << std::left << std::setw(8) << "" << std::right << std::setw(10) << ""
     << " |" << std::setw(24) << "#Matched Clusters"
     << " |" << std::setw(27) << "Matched channel length"
     << " |" << std::setw(27) << "Total channel length"
     << " |" << std::setw(27) << "Runtime (s)" << '\n';
}

void printTable2Row(std::ostream& os, const PacorResult& withoutSel,
                    const PacorResult& detourFirst, const PacorResult& pacor) {
  os << std::left << std::setw(8) << pacor.design << std::right << std::setw(10)
     << pacor.multiValveClusterCount << " |";
  printGroup(os, withoutSel.matchedClusterCount, detourFirst.matchedClusterCount,
             pacor.matchedClusterCount, 8);
  os << " |";
  printGroup(os, withoutSel.matchedChannelLength, detourFirst.matchedChannelLength,
             pacor.matchedChannelLength, 9);
  os << " |";
  printGroup(os, withoutSel.totalChannelLength, detourFirst.totalChannelLength,
             pacor.totalChannelLength, 9);
  os << " |" << std::fixed << std::setprecision(3) << std::setw(9)
     << withoutSel.times.total << std::setw(9) << detourFirst.times.total
     << std::setw(9) << pacor.times.total << '\n';
  os.unsetf(std::ios::fixed);
}

namespace {

std::int64_t totalExpansions(const PacorResult& r) {
  return r.metrics.getInt("search.cluster_routing.expansions") +
         r.metrics.getInt("search.escape.expansions") +
         r.metrics.getInt("search.detour.expansions");
}

}  // namespace

std::string describeEffort(const PacorResult& result) {
  const trace::MetricsRegistry& m = result.metrics;
  std::ostringstream os;
  os << "effort " << result.design << ": " << totalExpansions(result)
     << " expansions (" << m.getInt("search.cluster_routing.searches")
     << " route + " << m.getInt("search.detour.searches")
     << " detour searches), " << m.getInt("escape.rounds")
     << " escape round(s) (" << m.getInt("escape.flow.warm_rounds")
     << " warm), " << m.getInt("detour.iterations") << " detour iteration(s)";
  return os.str();
}

void printEffortHeader(std::ostream& os) {
  os << std::left << std::setw(8) << "Design" << std::right;
  for (int group = 0; group < 3; ++group)
    os << " |" << std::setw(10) << "w/oSel" << std::setw(10) << "DetF"
       << std::setw(10) << "PACOR";
  os << '\n';
  os << std::left << std::setw(8) << "" << std::right
     << " |" << std::setw(30) << "Search expansions"
     << " |" << std::setw(30) << "Escape rounds (warm)"
     << " |" << std::setw(30) << "Detour iterations" << '\n';
}

void printEffortRow(std::ostream& os, const PacorResult& withoutSel,
                    const PacorResult& detourFirst, const PacorResult& pacor) {
  const PacorResult* variants[3] = {&withoutSel, &detourFirst, &pacor};
  os << std::left << std::setw(8) << pacor.design << std::right << " |";
  for (const PacorResult* r : variants)
    os << std::setw(10) << totalExpansions(*r);
  os << " |";
  for (const PacorResult* r : variants) {
    std::ostringstream cell;
    cell << r->metrics.getInt("escape.rounds") << " ("
         << r->metrics.getInt("escape.flow.warm_rounds") << ')';
    os << std::setw(10) << cell.str();
  }
  os << " |";
  for (const PacorResult* r : variants)
    os << std::setw(10) << r->metrics.getInt("detour.iterations");
  os << '\n';
}

}  // namespace pacor::core
