#include "pacor/mst_routing.hpp"

#include <algorithm>
#include <unordered_set>

#include "route/astar.hpp"

namespace pacor::core {

bool routePlainCluster(const chip::Chip& chip, grid::ObstacleMap& obstacles,
                       WorkCluster& wc) {
  wc.treePaths.clear();
  wc.tapCells.clear();

  std::vector<Point> valveCells;
  valveCells.reserve(wc.spec.valves.size());
  for (const chip::ValveId v : wc.spec.valves) valveCells.push_back(chip.valve(v).pos);

  if (valveCells.size() == 1) {
    wc.tap = valveCells[0];
    wc.tapCells = valveCells;
    wc.internallyRouted = true;
    return true;
  }

  // Grow the routed component: repeatedly connect the nearest unconnected
  // valve to the current tree (point-to-path A*; the multi-target search
  // picks the cheapest valve, which is exactly Prim's selection rule on
  // routed distances).
  std::unordered_set<Point> treeCells{valveCells[0]};
  std::vector<Point> pending(valveCells.begin() + 1, valveCells.end());

  while (!pending.empty()) {
    route::AStarRequest req;
    req.sources.assign(treeCells.begin(), treeCells.end());
    req.targets = pending;
    req.net = wc.net;
    const auto found = route::aStarRoute(obstacles, req);
    if (!found.success) {
      // Roll back: release everything this cluster routed so far (valve
      // cells stay owned -- they were occupied before routing began).
      for (const route::Path& p : wc.treePaths) obstacles.releasePath(p, wc.net);
      for (const Point v : valveCells)
        obstacles.occupy(std::span<const Point>(&v, 1), wc.net);
      wc.treePaths.clear();
      return false;
    }
    const Point reached = found.path.back();
    pending.erase(std::find(pending.begin(), pending.end(), reached));
    obstacles.occupy(found.path, wc.net);
    treeCells.insert(found.path.begin(), found.path.end());
    wc.treePaths.push_back(found.path);
  }

  wc.tapCells.assign(treeCells.begin(), treeCells.end());
  std::sort(wc.tapCells.begin(), wc.tapCells.end());
  wc.tap = valveCells[0];
  wc.internallyRouted = true;
  return true;
}

std::vector<WorkCluster> routeWithDeclustering(const chip::Chip& chip,
                                               grid::ObstacleMap& obstacles,
                                               WorkCluster wc,
                                               const std::function<grid::NetId()>& allocateNet,
                                               int* declusterCount) {
  if (routePlainCluster(chip, obstacles, wc)) return {std::move(wc)};
  if (wc.spec.valves.size() == 1) {
    // A singleton cannot fail internal routing (no edges); defensive.
    wc.internallyRouted = true;
    return {std::move(wc)};
  }
  if (declusterCount != nullptr) ++declusterCount[0];

  // Median split along the axis with the larger spread keeps the halves
  // geometrically coherent (smaller trees route more easily).
  std::vector<chip::ValveId> sorted = wc.spec.valves;
  geom::Rect box = geom::Rect::fromPoint(chip.valve(sorted[0]).pos);
  for (const chip::ValveId v : sorted)
    box = box.unionWith(geom::Rect::fromPoint(chip.valve(v).pos));
  const bool byX = box.width() >= box.height();
  std::stable_sort(sorted.begin(), sorted.end(), [&](chip::ValveId a, chip::ValveId b) {
    const Point pa = chip.valve(a).pos;
    const Point pb = chip.valve(b).pos;
    return byX ? pa.x < pb.x : pa.y < pb.y;
  });
  const std::size_t half = sorted.size() / 2;

  // Release the old net entirely; the halves re-own their valve cells.
  obstacles.release(wc.net);

  std::vector<WorkCluster> out;
  for (int part = 0; part < 2; ++part) {
    WorkCluster sub;
    sub.spec.lengthMatched = false;
    sub.spec.valves.assign(sorted.begin() + (part == 0 ? 0 : static_cast<std::ptrdiff_t>(half)),
                           part == 0 ? sorted.begin() + static_cast<std::ptrdiff_t>(half)
                                     : sorted.end());
    sub.net = allocateNet();
    sub.wasDemoted = wc.wasDemoted;
    for (const chip::ValveId v : sub.spec.valves) {
      const Point cell = chip.valve(v).pos;
      obstacles.occupy(std::span<const Point>(&cell, 1), sub.net);
    }
    auto routedParts = routeWithDeclustering(chip, obstacles, std::move(sub), allocateNet,
                                             declusterCount);
    for (auto& p : routedParts) out.push_back(std::move(p));
  }
  return out;
}

}  // namespace pacor::core
