#include "pacor/mst_routing.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

#include "route/astar.hpp"
#include "route/workspace.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace pacor::core {
namespace {

/// Result of one spanning-tree growth over a cluster's valve cells.
struct TreeGrowth {
  bool success = false;
  std::vector<route::Path> paths;
  std::unordered_set<Point> treeCells;
};

/// Grows the routed component valve by valve: repeatedly connects the
/// nearest unconnected valve to the current tree (point-to-path A*; the
/// multi-target search picks the cheapest valve, which is exactly Prim's
/// selection rule on routed distances).
///
/// With a non-null `commit` every successful path is occupied as it is
/// found (the serial mode). A null `commit` runs the *identical* search
/// sequence without touching the map: A* treats a free cell and a cell
/// owned by the searching net the same way, and the only cells whose
/// ownership the commits would change are the tree's own cells — which
/// every later search seeds as sources anyway — so the uncommitted
/// searches cannot diverge. `touched`, when given, accumulates every cell
/// any of the searches labeled (for the speculative accept check).
TreeGrowth growSpanningTree(const grid::ObstacleMap& obstacles,
                            grid::ObstacleMap* commit,
                            const std::vector<Point>& valveCells, grid::NetId net,
                            std::vector<std::int32_t>* touched) {
  TreeGrowth out;
  out.treeCells.insert(valveCells[0]);
  std::vector<Point> pending(valveCells.begin() + 1, valveCells.end());
  route::RouterWorkspace& ws = route::localWorkspace();

  while (!pending.empty()) {
    route::AStarRequest req;
    req.sources.assign(out.treeCells.begin(), out.treeCells.end());
    req.targets = pending;
    req.net = net;
    const auto found = route::aStarRoute(obstacles, req, &ws);
    if (touched != nullptr)
      touched->insert(touched->end(), ws.touched.begin(), ws.touched.end());
    if (!found.success) return out;
    const Point reached = found.path.back();
    pending.erase(std::find(pending.begin(), pending.end(), reached));
    if (commit != nullptr) commit->occupy(found.path, net);
    out.treeCells.insert(found.path.begin(), found.path.end());
    out.paths.push_back(found.path);
  }
  out.success = true;
  return out;
}

/// Installs a completed growth into the cluster's routed-tree fields.
void applyGrowth(WorkCluster& wc, TreeGrowth grown, Point root) {
  wc.treePaths = std::move(grown.paths);
  wc.tapCells.assign(grown.treeCells.begin(), grown.treeCells.end());
  std::sort(wc.tapCells.begin(), wc.tapCells.end());
  wc.tap = root;
  wc.internallyRouted = true;
}

void markPaths(std::vector<char>& changed, const grid::Grid& g,
               const std::vector<route::Path>& paths) {
  for (const route::Path& p : paths)
    for (const Point c : p) changed[static_cast<std::size_t>(g.index(c))] = 1;
}

}  // namespace

bool routePlainCluster(const chip::Chip& chip, grid::ObstacleMap& obstacles,
                       WorkCluster& wc) {
  trace::Span span("mst.cluster", "mst_routing", trace::Level::kCluster);
  span.arg("valves", static_cast<std::int64_t>(wc.spec.valves.size()));
  wc.treePaths.clear();
  wc.tapCells.clear();

  std::vector<Point> valveCells;
  valveCells.reserve(wc.spec.valves.size());
  for (const chip::ValveId v : wc.spec.valves) valveCells.push_back(chip.valve(v).pos);

  if (valveCells.size() == 1) {
    wc.tap = valveCells[0];
    wc.tapCells = valveCells;
    wc.internallyRouted = true;
    return true;
  }

  TreeGrowth grown = growSpanningTree(obstacles, &obstacles, valveCells, wc.net,
                                      nullptr);
  if (!grown.success) {
    // Roll back: release everything this cluster routed so far (valve
    // cells stay owned -- they were occupied before routing began).
    for (const route::Path& p : grown.paths) obstacles.releasePath(p, wc.net);
    for (const Point v : valveCells)
      obstacles.occupy(std::span<const Point>(&v, 1), wc.net);
    return false;
  }
  applyGrowth(wc, std::move(grown), valveCells[0]);
  return true;
}

std::vector<WorkCluster> routeWithDeclustering(const chip::Chip& chip,
                                               grid::ObstacleMap& obstacles,
                                               WorkCluster wc,
                                               const std::function<grid::NetId()>& allocateNet,
                                               int* declusterCount) {
  if (routePlainCluster(chip, obstacles, wc)) return {std::move(wc)};
  if (wc.spec.valves.size() == 1) {
    // A singleton cannot fail internal routing (no edges); defensive.
    wc.internallyRouted = true;
    return {std::move(wc)};
  }
  if (declusterCount != nullptr) ++declusterCount[0];

  // Median split along the axis with the larger spread keeps the halves
  // geometrically coherent (smaller trees route more easily).
  std::vector<chip::ValveId> sorted = wc.spec.valves;
  geom::Rect box = geom::Rect::fromPoint(chip.valve(sorted[0]).pos);
  for (const chip::ValveId v : sorted)
    box = box.unionWith(geom::Rect::fromPoint(chip.valve(v).pos));
  const bool byX = box.width() >= box.height();
  std::stable_sort(sorted.begin(), sorted.end(), [&](chip::ValveId a, chip::ValveId b) {
    const Point pa = chip.valve(a).pos;
    const Point pb = chip.valve(b).pos;
    return byX ? pa.x < pb.x : pa.y < pb.y;
  });
  const std::size_t half = sorted.size() / 2;

  // Release the old net entirely; the halves re-own their valve cells.
  obstacles.release(wc.net);

  std::vector<WorkCluster> out;
  for (int part = 0; part < 2; ++part) {
    WorkCluster sub;
    sub.spec.lengthMatched = false;
    sub.spec.valves.assign(sorted.begin() + (part == 0 ? 0 : static_cast<std::ptrdiff_t>(half)),
                           part == 0 ? sorted.begin() + static_cast<std::ptrdiff_t>(half)
                                     : sorted.end());
    sub.net = allocateNet();
    sub.wasDemoted = wc.wasDemoted;
    for (const chip::ValveId v : sub.spec.valves) {
      const Point cell = chip.valve(v).pos;
      obstacles.occupy(std::span<const Point>(&cell, 1), sub.net);
    }
    auto routedParts = routeWithDeclustering(chip, obstacles, std::move(sub), allocateNet,
                                             declusterCount);
    for (auto& p : routedParts) out.push_back(std::move(p));
  }
  return out;
}

std::vector<WorkCluster> routeClustersStage(const chip::Chip& chip,
                                            grid::ObstacleMap& obstacles,
                                            std::vector<WorkCluster> clusters,
                                            const std::function<grid::NetId()>& allocateNet,
                                            int* declusterCount,
                                            util::ThreadPool* pool) {
  // Clusters whose tree growth is worth speculating on (singletons route
  // trivially and never touch the map).
  std::vector<std::size_t> pendingIdx;
  for (std::size_t i = 0; i < clusters.size(); ++i)
    if (!clusters[i].internallyRouted && clusters[i].spec.valves.size() >= 2)
      pendingIdx.push_back(i);

  struct Speculative {
    TreeGrowth grown;
    std::vector<std::int32_t> touched;
  };
  std::vector<Speculative> spec;
  const bool speculate =
      pool != nullptr && pool->threadCount() > 1 && pendingIdx.size() > 1;
  if (speculate) {
    // Phase 1: grow every pending tree against the stage-start occupancy.
    // The map is read-only here, so all workers share it without copies;
    // each worker's searches run in its own thread-local workspace.
    trace::Span span("mst.speculate", "mst_routing", trace::Level::kCluster);
    span.arg("clusters", static_cast<std::int64_t>(pendingIdx.size()));
    spec.resize(pendingIdx.size());
    route::SharedTally* const tally = route::activeTally();
    pool->parallelFor(pendingIdx.size(), [&, tally](std::size_t k, unsigned) {
      // Credit worker-thread searches to the requesting thread's sink.
      route::TallyScope tallyScope(tally);
      const WorkCluster& wc = clusters[pendingIdx[k]];
      std::vector<Point> valveCells;
      valveCells.reserve(wc.spec.valves.size());
      for (const chip::ValveId v : wc.spec.valves)
        valveCells.push_back(chip.valve(v).pos);
      spec[k].grown = growSpanningTree(obstacles, nullptr, valveCells, wc.net,
                                       &spec[k].touched);
    });
  }

  const grid::Grid& g = obstacles.grid();
  std::vector<char> changed(
      speculate ? static_cast<std::size_t>(g.cellCount()) : 0, 0);

  // Phase 2: serial commit in cluster order. A speculative tree is the
  // serial result iff no cell its searches examined was changed by an
  // earlier commit: commits only turn free cells into occupied ones (net
  // ownership may move during declustering, but an occupied cell stays
  // blocked for every other cluster), so an unexamined cell cannot have
  // influenced the search either way.
  std::vector<WorkCluster> next;
  next.reserve(clusters.size());
  std::size_t specIdx = 0;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    WorkCluster& wc = clusters[i];
    if (wc.internallyRouted) {
      next.push_back(std::move(wc));
      continue;
    }
    Speculative* sp = nullptr;
    if (speculate && specIdx < pendingIdx.size() && pendingIdx[specIdx] == i)
      sp = &spec[specIdx++];

    bool accepted = sp != nullptr && sp->grown.success;
    if (accepted)
      for (const std::int32_t c : sp->touched)
        if (changed[static_cast<std::size_t>(c)] != 0) {
          accepted = false;
          break;
        }

    if (accepted) {
      for (const route::Path& p : sp->grown.paths) obstacles.occupy(p, wc.net);
      markPaths(changed, g, sp->grown.paths);
      applyGrowth(wc, std::move(sp->grown), chip.valve(wc.spec.valves.front()).pos);
      next.push_back(std::move(wc));
      continue;
    }

    auto parts = routeWithDeclustering(chip, obstacles, std::move(wc), allocateNet,
                                       declusterCount);
    if (speculate)
      for (const WorkCluster& part : parts) markPaths(changed, g, part.treePaths);
    for (auto& p : parts) next.push_back(std::move(p));
  }
  return next;
}

}  // namespace pacor::core
