#pragma once

#include <vector>

#include "chip/chip.hpp"
#include "grid/obstacle_map.hpp"
#include "pacor/clustering.hpp"
#include "route/path.hpp"

namespace pacor::core {

using geom::Point;

/// Mutable routing state of one cluster as it moves through the stages.
/// Cell ownership in the shared ObstacleMap uses `net` as the id.
struct WorkCluster {
  ClusterSpec spec;
  grid::NetId net = grid::kFreeCell;

  bool internallyRouted = false;
  std::vector<route::Path> treePaths;  ///< intra-cluster channels

  /// Escape tap: DME root for length-matching trees, middle point for
  /// two-valve matched pairs, the valve itself for singletons. Plain
  /// multi-valve clusters may escape from any tree cell (tapCells).
  /// `tap` tracks the current structure root (rebuilt after wide-tap
  /// escapes); `rootTap` keeps the original DME root for retries.
  Point tap;
  Point rootTap;
  std::vector<Point> tapCells;

  /// Length-matching structure: per valve (same order as spec.valves) the
  /// tree-path indices from its leaf edge up to the root — the paper's
  /// path sequence (Def. 6), consumed by the detour stage.
  std::vector<std::vector<int>> sinkSequences;
  bool lmStructured = false;

  route::Path escapePath;  ///< tap ... pin (set by the escape stage)
  chip::PinId pin = -1;

  /// Escape-stage fallback for matched trees whose root is walled in:
  /// allow the escape to attach anywhere on the tree (the final detour
  /// stage re-equalizes pin-to-valve lengths, so matching is preserved).
  bool wideTap = false;

  bool lengthMatched = false;  ///< set by the detour stage
  bool wasDemoted = false;     ///< LM constraint dropped during the flow

  /// ECO re-routing: this cluster is a survivor carried verbatim from a
  /// previous result. Its geometry, pin, and matching verdict are frozen
  /// -- every rip-up, relax, and detour pass skips it (eco.cpp seeds
  /// these; the fresh pipeline never sets the flag).
  bool ecoFrozen = false;

  bool isSingleton() const noexcept { return spec.valves.size() == 1; }
  bool wantsMatching() const noexcept { return spec.lengthMatched && !wasDemoted; }
};

}  // namespace pacor::core
