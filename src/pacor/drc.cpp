#include "pacor/drc.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace pacor::core {
namespace {

using geom::Point;

/// Path-graph BFS lengths from `origin` (channels join only at shared
/// cells); mirrors the router's measurement but derived from the result.
std::unordered_map<Point, std::int64_t> channelDistances(const RoutedCluster& cluster,
                                                         Point origin) {
  std::unordered_map<Point, std::vector<Point>> adj;
  const auto addPath = [&](const route::Path& p) {
    if (p.size() == 1) adj.try_emplace(p[0]);
    for (std::size_t i = 1; i < p.size(); ++i) {
      adj[p[i - 1]].push_back(p[i]);
      adj[p[i]].push_back(p[i - 1]);
    }
  };
  for (const route::Path& p : cluster.treePaths) addPath(p);
  addPath(cluster.escapePath);

  std::unordered_map<Point, std::int64_t> dist;
  if (!adj.contains(origin)) return dist;
  std::queue<Point> frontier;
  frontier.push(origin);
  dist.emplace(origin, 0);
  while (!frontier.empty()) {
    const Point p = frontier.front();
    frontier.pop();
    const std::int64_t d = dist.at(p);
    for (const Point q : adj.at(p)) {
      if (dist.contains(q)) continue;
      dist.emplace(q, d + 1);
      frontier.push(q);
    }
  }
  return dist;
}

}  // namespace

std::string kindName(DrcViolation::Kind kind) {
  switch (kind) {
    case DrcViolation::Kind::kUnroutedValve: return "unrouted-valve";
    case DrcViolation::Kind::kBrokenPath: return "broken-path";
    case DrcViolation::Kind::kOutOfBounds: return "out-of-bounds";
    case DrcViolation::Kind::kOnObstacle: return "on-obstacle";
    case DrcViolation::Kind::kCellConflict: return "cell-conflict";
    case DrcViolation::Kind::kPinConflict: return "pin-conflict";
    case DrcViolation::Kind::kPinNotOnBoundary: return "pin-not-candidate";
    case DrcViolation::Kind::kIncompatibleValves: return "incompatible-valves";
    case DrcViolation::Kind::kEscapeDetached: return "escape-detached";
    case DrcViolation::Kind::kMatchViolated: return "match-violated";
    case DrcViolation::Kind::kLengthMismatchReport: return "length-report-mismatch";
  }
  return "unknown";
}

std::string DrcReport::str() const {
  std::ostringstream os;
  if (clean()) {
    os << "DRC clean\n";
    return os.str();
  }
  os << violations.size() << " violation(s):\n";
  for (const DrcViolation& v : violations)
    os << "  [" << kindName(v.kind) << "] cluster " << v.cluster << ": " << v.detail
       << '\n';
  return os.str();
}

DrcReport checkSolution(const chip::Chip& chip, const PacorResult& result) {
  DrcReport report;
  const auto add = [&](DrcViolation::Kind kind, std::size_t cluster, std::string detail) {
    report.violations.push_back({kind, cluster, std::move(detail)});
  };

  const grid::ObstacleMap obstacles = chip.makeObstacleMap();
  std::unordered_map<Point, std::size_t> cellOwner;
  std::unordered_map<chip::PinId, std::size_t> pinOwner;

  for (std::size_t ci = 0; ci < result.clusters.size(); ++ci) {
    const RoutedCluster& c = result.clusters[ci];

    // Per-path structural checks.
    std::vector<const route::Path*> paths;
    for (const route::Path& p : c.treePaths) paths.push_back(&p);
    if (!c.escapePath.empty()) paths.push_back(&c.escapePath);
    std::unordered_set<Point> cells;
    for (const route::Path* p : paths) {
      if (p->size() > 1 && !route::isValidChannel(*p))
        add(DrcViolation::Kind::kBrokenPath, ci, "path disconnected or self-crossing");
      for (const Point cell : *p) {
        cells.insert(cell);
        if (!chip.routingGrid.inBounds(cell))
          add(DrcViolation::Kind::kOutOfBounds, ci, cell.str());
        else if (obstacles.isObstacle(cell))
          add(DrcViolation::Kind::kOnObstacle, ci, cell.str());
      }
    }
    for (const Point cell : cells) {
      const auto [it, fresh] = cellOwner.emplace(cell, ci);
      if (!fresh && it->second != ci)
        add(DrcViolation::Kind::kCellConflict, ci,
            cell.str() + " also used by cluster " + std::to_string(it->second));
    }

    // Pin assignment.
    if (c.pin < 0) {
      add(DrcViolation::Kind::kUnroutedValve, ci, "no control pin assigned");
      continue;
    }
    if (static_cast<std::size_t>(c.pin) >= chip.pins.size()) {
      add(DrcViolation::Kind::kPinNotOnBoundary, ci,
          "pin id " + std::to_string(c.pin) + " unknown");
      continue;
    }
    const auto [pinIt, pinFresh] = pinOwner.emplace(c.pin, ci);
    if (!pinFresh)
      add(DrcViolation::Kind::kPinConflict, ci,
          "pin " + std::to_string(c.pin) + " also drives cluster " +
              std::to_string(pinIt->second));

    // Compatibility of all valves sharing the pin (constraint ii).
    for (std::size_t i = 0; i < c.valves.size(); ++i)
      for (std::size_t j = i + 1; j < c.valves.size(); ++j)
        if (!chip.valve(c.valves[i])
                 .sequence.compatibleWith(chip.valve(c.valves[j]).sequence))
          add(DrcViolation::Kind::kIncompatibleValves, ci,
              "valves " + std::to_string(c.valves[i]) + " and " +
                  std::to_string(c.valves[j]));

    // Escape attachment + connectivity + lengths, all from geometry.
    const Point pinCell = chip.pin(c.pin).pos;
    const auto dist = channelDistances(c, pinCell);
    if (!c.escapePath.empty()) {
      std::unordered_set<Point> treeCells;
      for (const route::Path& p : c.treePaths) treeCells.insert(p.begin(), p.end());
      for (const chip::ValveId v : c.valves) treeCells.insert(chip.valve(v).pos);
      const bool attached =
          std::any_of(c.escapePath.begin(), c.escapePath.end(),
                      [&](Point cell) { return treeCells.contains(cell); });
      if (!attached)
        add(DrcViolation::Kind::kEscapeDetached, ci, "escape never touches the tree");
    }

    std::vector<std::int64_t> lengths;
    bool allRouted = true;
    for (const chip::ValveId v : c.valves) {
      const auto it = dist.find(chip.valve(v).pos);
      if (it == dist.end()) {
        add(DrcViolation::Kind::kUnroutedValve, ci,
            "valve " + std::to_string(v) + " unreachable from pin");
        allRouted = false;
      } else {
        lengths.push_back(it->second);
      }
    }

    if (allRouted && !c.valveLengths.empty()) {
      for (std::size_t i = 0; i < lengths.size(); ++i)
        if (c.valveLengths[i] != lengths[i]) {
          add(DrcViolation::Kind::kLengthMismatchReport, ci,
              "valve " + std::to_string(c.valves[i]) + " reported " +
                  std::to_string(c.valveLengths[i]) + " measured " +
                  std::to_string(lengths[i]));
          break;
        }
    }
    if (allRouted && c.lengthMatchRequested && c.lengthMatched && !lengths.empty()) {
      const auto [lo, hi] = std::minmax_element(lengths.begin(), lengths.end());
      if (*hi - *lo > chip.delta)
        add(DrcViolation::Kind::kMatchViolated, ci,
            "spread " + std::to_string(*hi - *lo) + " > delta " +
                std::to_string(chip.delta));
    }
  }
  return report;
}

}  // namespace pacor::core
