#pragma once

#include <cstdint>

#include "dme/candidate_tree.hpp"
#include "route/negotiation.hpp"

namespace pacor::core {

/// When the length-matching detour stage runs (paper Table 2 variants):
/// kFinal is the full PACOR flow (detour after escape routing); kAfter-
/// ClusterRouting is the "Detour First" self-comparison baseline.
enum class DetourStage {
  kFinal,
  kAfterClusterRouting,
};

/// Escape-routing solver choice: the paper's simultaneous min-cost flow,
/// or the greedy sequential baseline it replaces (ablation only).
enum class EscapeMode {
  kMinCostFlow,
  kSequential,
};

/// Full configuration of the PACOR flow with the paper's defaults.
struct PacorConfig {
  /// Candidate Steiner trees per length-matching cluster (Sec. 4.1).
  dme::CandidateOptions candidates;

  /// Weight of the length-mismatch cost versus the overlap cost in the
  /// selection objective (Eqs. 2-3); the paper uses 0.1, prioritizing
  /// routability over pre-routing mismatch.
  double lambda = 0.1;

  /// Enables the MWCP-based candidate tree selection (Sec. 4.2). Disabled
  /// = the "w/o Sel" baseline (first candidate per cluster).
  bool useSelection = true;

  /// Exact selection is used up to this candidate count; larger instances
  /// fall back to greedy + local search (the ILP-scale escape hatch).
  std::size_t exactSelectionLimit = 400;

  /// Negotiation-based routing parameters (Alg. 1; bg = 1, alpha = 0.1,
  /// gamma = 10).
  route::NegotiationConfig negotiation;

  /// Detour iteration threshold theta of Alg. 2.
  int detourIterations = 10;

  /// Use the minimum-length bounded A* for detouring (Sec. 6); disabled,
  /// the detour stage falls back to serpentine bump insertion only (the
  /// ablation in bench_delta_sweep quantifies the difference).
  bool useBoundedDetour = true;

  DetourStage detourStage = DetourStage::kFinal;

  /// De-clustering / rip-up rounds of the escape stage (Fig. 2 loop).
  int maxEscapeRounds = 5;

  /// Escape solver (kSequential is the ablation baseline of Sec. 5).
  EscapeMode escapeMode = EscapeMode::kMinCostFlow;

  /// Serve the min-cost-flow escape passes from one persistent
  /// EscapeFlowSession (warm restarts with per-round deltas) instead of
  /// rebuilding the flow network every rip-up round. Results are
  /// bit-identical either way; this only removes build work. The
  /// `--no-incremental-escape` CLI flag clears it as an escape hatch.
  bool incrementalEscape = true;

  /// Fast escape-flow mode (`route --fast-escape`): the min-cost-flow
  /// solver saturates every admissible shortest path per Dijkstra pass
  /// (blocking-flow multi-augmentation) and routes a final single unit of
  /// demand bidirectionally. The routed count and total escape cost are
  /// unchanged -- the optimum is the same -- but equal-cost ties may
  /// resolve to different paths than the classic one-path-per-pass solver,
  /// so output is validated by the src/verify oracle and the differential
  /// fuzzer instead of golden hashes. Off by default.
  bool fastEscape = false;

  /// Matching-driven rip-up passes: when a constrained cluster routes but
  /// cannot be equalized (its escape anchored at a leaf because a plain
  /// tree walls it in), relax the nearest plain blocker and redo the
  /// escape + detour stages. 0 disables the feedback.
  int matchingRetries = 1;

  /// Ring-search cap when legalizing DME merging nodes.
  int legalizeRadius = 64;

  /// Worker threads for the routing stages (negotiation and the MST
  /// stage route speculatively in parallel, then commit serially).
  /// 1 = fully serial; 0 = one thread per hardware core. The routed
  /// result is bit-identical for every value.
  int jobs = 1;
};

}  // namespace pacor::core
