#pragma once

#include <iosfwd>
#include <string>

#include "pacor/result.hpp"

namespace pacor::core {

/// Plain-text serialization of a routed solution. Together with the chip
/// file (chip/io.hpp) this makes a run fully reproducible and lets the
/// `pacor check` CLI verify solutions produced elsewhere. Format:
///
///   pacor-solution 1
///   design <name>
///   complete <0|1>
///   stats <#multiValve> <#matched> <matchedLen> <totalLen> <rounds> <declustered>
///   clusters <n>
///   --- per cluster ---
///   valves <k> <v1> ... <vk>
///   flags <lmRequested> <lmMatched> <routed>
///   pin <id>
///   tap <x> <y>
///   lengths <k> <l1> ... <lk>
///   treepaths <m>
///   path <cells> <x1> <y1> ... (m lines)
///   escape <cells> <x1> <y1> ...
///
/// Both functions throw std::runtime_error on malformed input.
void writeSolution(std::ostream& os, const PacorResult& result);
PacorResult readSolution(std::istream& is);

void writeSolutionFile(const std::string& path, const PacorResult& result);
PacorResult readSolutionFile(const std::string& path);

/// In-memory forms of the same format. The string form is the canonical
/// byte representation used by the differential fuzz harness and the
/// golden-hash regression tests: two results are "byte-identical" iff
/// their solutionToString outputs match.
std::string solutionToString(const PacorResult& result);
PacorResult solutionFromString(const std::string& text);

}  // namespace pacor::core
