#pragma once

#include <memory>
#include <vector>

#include "chip/chip.hpp"
#include "grid/obstacle_map.hpp"
#include "pacor/config.hpp"
#include "pacor/result.hpp"
#include "pacor/work.hpp"

namespace pacor::util {
class ThreadPool;
}

namespace pacor::core {

class EscapeFlowSession;

/// Long-lived resources an embedding caller (the serve loop) can supply
/// to routeChip so repeated in-process requests stop re-doing per-call
/// setup. Every field is optional; a default-constructed RouteResources
/// reproduces the self-contained one-shot behavior.
///
/// The routed output is byte-identical (canonical solutionToString text)
/// with or without shared resources, for any pool size -- reusing them
/// only removes setup work, never changes results.
struct RouteResources {
  /// Worker pool shared across requests instead of constructing (and
  /// joining) one per routeChip call. When set, config.jobs is ignored:
  /// the pool's size decides the parallelism. The pool may be used by
  /// several concurrent routeChip calls; batches are serialized inside
  /// ThreadPool::parallelFor.
  util::ThreadPool* pool = nullptr;

  /// Prebuilt routing obstacle template for this chip, exactly as
  /// makeRoutingObstacleTemplate() returns it. routeChip copies it
  /// instead of re-deriving static obstacles + blocked boundary cells on
  /// every request. Must match the chip's routing grid.
  const grid::ObstacleMap* obstacleTemplate = nullptr;

  /// Slot for a persistent EscapeFlowSession that survives across
  /// requests of one design (the serve loop owns the unique_ptr). When
  /// set, routeChip constructs the session into the slot on first use and
  /// warm-rebinds it afterwards -- resetting it first whenever
  /// EscapeFlowSession::compatibleWith rejects the request's chip (pin or
  /// grid edits). The slot must not be used by two in-flight requests at
  /// once; Server::route arbitrates with a try-lock and falls back to a
  /// request-local session, which is byte-identical either way.
  std::unique_ptr<EscapeFlowSession>* escapeSession = nullptr;
};

/// The initial routing workspace of a chip: static obstacles plus blocked
/// non-pin boundary cells (escape constraint 8 applied globally). This is
/// what routeChip derives on every call when no template is supplied; a
/// long-lived server builds it once per design and passes it through
/// RouteResources.
grid::ObstacleMap makeRoutingObstacleTemplate(const chip::Chip& chip);

/// Runs the full PACOR control-layer routing flow (paper Fig. 2) on a
/// chip instance: valve clustering, length-matching cluster routing (DME
/// candidates, MWCP selection, negotiation), MST-based routing of plain
/// clusters, min-cost-flow escape routing with de-clustering / rip-up
/// rounds, and path detouring for length matching. Throws
/// std::invalid_argument when the chip fails validation.
///
/// Safe to call from several threads at once: each call owns its routing
/// state, search-effort counters are scoped to the request (not diffed
/// from the process-wide tally), and shared RouteResources are designed
/// for concurrent use.
///
/// `resources` supplies optional long-lived state (see RouteResources for
/// the ownership contract); the default-constructed value reproduces the
/// self-contained one-shot behavior, so `routeChip(chip)` and
/// `routeChip(chip, config)` keep working unchanged.
PacorResult routeChip(const chip::Chip& chip, const PacorConfig& config = {},
                      const RouteResources& resources = {});

/// Convenience configurations for the paper's Table 2 self-comparison.
PacorConfig pacorDefaultConfig();   ///< the full flow
PacorConfig withoutSelectionConfig();  ///< "w/o Sel"
PacorConfig detourFirstConfig();    ///< "Detour First"

namespace detail {

/// Pre-seeded pipeline state for ECO re-routing (eco.cpp): the clustering
/// stage is replaced by a caller-supplied work-cluster set -- frozen
/// survivors carrying their committed geometry plus dirty clusters ready
/// for routing -- over an obstacle map already loaded with the frozen
/// occupancy. Stages 2-5 then run exactly as in routeChip, with every
/// rip-up / relax / detour pass skipping ecoFrozen clusters.
struct PipelineSeed {
  std::vector<WorkCluster> clusters;
  grid::ObstacleMap obstacles;
  grid::NetId nextNet = 0;
  int multiValveClusterCount = 0;
};

/// routeChip with stage 1 replaced by the seed. Internal to the ECO entry
/// point; validation and equivalence guarantees live on core::rerouteChip.
PacorResult routeChipSeeded(const chip::Chip& chip, const PacorConfig& config,
                            const RouteResources& resources, PipelineSeed seed);

}  // namespace detail

}  // namespace pacor::core
