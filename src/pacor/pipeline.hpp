#pragma once

#include "chip/chip.hpp"
#include "pacor/config.hpp"
#include "pacor/result.hpp"

namespace pacor::core {

/// Runs the full PACOR control-layer routing flow (paper Fig. 2) on a
/// chip instance: valve clustering, length-matching cluster routing (DME
/// candidates, MWCP selection, negotiation), MST-based routing of plain
/// clusters, min-cost-flow escape routing with de-clustering / rip-up
/// rounds, and path detouring for length matching. Throws
/// std::invalid_argument when the chip fails validation.
PacorResult routeChip(const chip::Chip& chip, const PacorConfig& config = {});

/// Convenience configurations for the paper's Table 2 self-comparison.
PacorConfig pacorDefaultConfig();   ///< the full flow
PacorConfig withoutSelectionConfig();  ///< "w/o Sel"
PacorConfig detourFirstConfig();    ///< "Detour First"

}  // namespace pacor::core
