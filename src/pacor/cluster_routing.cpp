#include "pacor/cluster_routing.hpp"

#include <algorithm>
#include <optional>

#include "dme/candidate_tree.hpp"
#include "geom/rect.hpp"
#include "graph/selection.hpp"
#include "route/negotiation.hpp"
#include "trace/trace.hpp"

namespace pacor::core {
namespace {

/// One candidate plan for a cluster: either a DME candidate tree or the
/// fixed direct edge of a two-valve cluster.
struct CandidatePlan {
  std::optional<dme::DmeCandidate> tree;  ///< nullopt = two-valve direct edge
  std::vector<std::pair<Point, Point>> edgeSpans;  ///< for the overlap cost
  std::int64_t mismatchEstimate = 0;
};

/// Eq. 4: overlap between the bounding boxes of two tree edges, as a
/// fraction of the smaller box (inclusive lattice areas).
double overlapCost(const std::pair<Point, Point>& e1, const std::pair<Point, Point>& e2) {
  const geom::Rect b1 = geom::boundingBox(e1.first, e1.second);
  const geom::Rect b2 = geom::boundingBox(e2.first, e2.second);
  const std::int64_t inter = b1.intersectWith(b2).area();
  if (inter <= 0) return 0.0;
  const std::int64_t denom = std::min(b1.area(), b2.area());
  return denom > 0 ? static_cast<double>(inter) / static_cast<double>(denom) : 0.0;
}

/// Eq. 3 summed over all edge pairs of two candidate plans.
double pairOverlap(const CandidatePlan& a, const CandidatePlan& b) {
  double total = 0.0;
  for (const auto& ea : a.edgeSpans)
    for (const auto& eb : b.edgeSpans) total += overlapCost(ea, eb);
  return total;
}

CandidatePlan directEdgePlan(const chip::Chip& chip, const WorkCluster& wc) {
  CandidatePlan plan;
  const Point a = chip.valve(wc.spec.valves[0]).pos;
  const Point b = chip.valve(wc.spec.valves[1]).pos;
  plan.edgeSpans = {{a, b}};
  plan.mismatchEstimate = 0;  // a middle tap splits the edge evenly
  return plan;
}

std::vector<CandidatePlan> dmePlans(const chip::Chip& chip, const PacorConfig& config,
                                    const grid::ObstacleMap& obstacles,
                                    const WorkCluster& wc) {
  std::vector<Point> sinks;
  sinks.reserve(wc.spec.valves.size());
  for (const chip::ValveId v : wc.spec.valves) sinks.push_back(chip.valve(v).pos);

  dme::CandidateOptions opt = config.candidates;
  opt.ringSearchRadius = config.legalizeRadius;
  std::vector<CandidatePlan> plans;
  for (auto& cand : dme::buildCandidateTrees(obstacles, wc.net, sinks, opt)) {
    CandidatePlan plan;
    plan.mismatchEstimate = cand.mismatchEstimate;
    for (const auto& [p, c] : cand.edges())
      plan.edgeSpans.emplace_back(cand.embed[static_cast<std::size_t>(p)],
                                  cand.embed[static_cast<std::size_t>(c)]);
    plan.tree = std::move(cand);
    plans.push_back(std::move(plan));
  }
  return plans;
}

/// Negotiation edges + detour bookkeeping for a chosen plan.
struct EdgeBundle {
  std::vector<route::NegotiationEdge> edges;
  /// Per edge: the (parent, child) topology nodes (DME) or {-1, -1}.
  std::vector<std::pair<int, int>> topoEdges;
};

EdgeBundle bundleFor(const chip::Chip& chip, const WorkCluster& wc,
                     const CandidatePlan& plan, int group) {
  EdgeBundle bundle;
  if (!plan.tree) {
    route::NegotiationEdge e;
    e.a = {chip.valve(wc.spec.valves[0]).pos};
    e.b = {chip.valve(wc.spec.valves[1]).pos};
    e.group = group;
    bundle.edges.push_back(std::move(e));
    bundle.topoEdges.push_back({-1, -1});
    return bundle;
  }
  const dme::DmeCandidate& tree = *plan.tree;
  for (const auto& [p, c] : tree.edges()) {
    route::NegotiationEdge e;
    e.a = {tree.embed[static_cast<std::size_t>(c)]};   // child first: route
    e.b = {tree.embed[static_cast<std::size_t>(p)]};   // toward the parent
    e.group = group;
    bundle.edges.push_back(std::move(e));
    bundle.topoEdges.push_back({p, c});
  }
  return bundle;
}

/// Fills the cluster's tree paths, tap, and per-sink path sequences from
/// the routed bundle. Paths arrive aligned with bundle.edges.
void commitStructure(const chip::Chip& chip, WorkCluster& wc, const CandidatePlan& plan,
                     std::vector<route::Path> paths) {
  wc.treePaths.clear();
  wc.sinkSequences.assign(wc.spec.valves.size(), {});

  if (!plan.tree) {
    // Two-valve cluster: split the single path at its middle cell so each
    // arm is an independently detourable path (v0..tap, tap..v1).
    route::Path& whole = paths[0];
    const std::size_t mid = (whole.size() - 1) / 2;
    wc.tap = whole[mid];
    wc.rootTap = wc.tap;
    route::Path arm0(whole.begin(), whole.begin() + static_cast<std::ptrdiff_t>(mid) + 1);
    route::Path arm1(whole.begin() + static_cast<std::ptrdiff_t>(mid), whole.end());
    // Arms are stored leaf-to-tap so front() is the valve.
    std::reverse(arm1.begin(), arm1.end());
    // arm0 runs v0 -> tap already if the path was routed a->b.
    if (arm0.front() != chip.valve(wc.spec.valves[0]).pos)
      std::reverse(arm0.begin(), arm0.end());
    if (arm1.front() != chip.valve(wc.spec.valves[1]).pos)
      std::reverse(arm1.begin(), arm1.end());
    wc.treePaths = {std::move(arm0), std::move(arm1)};
    wc.sinkSequences = {{0}, {1}};
    wc.tapCells = {wc.tap};
    wc.lmStructured = true;
    return;
  }

  const dme::DmeCandidate& tree = *plan.tree;
  wc.treePaths = std::move(paths);
  wc.tap = tree.embed[static_cast<std::size_t>(tree.topo.root)];
  wc.rootTap = wc.tap;
  wc.tapCells = {wc.tap};

  // Map child topology node -> tree path index (each non-root node has
  // exactly one parent edge).
  std::vector<int> pathOfChild(tree.topo.nodes.size(), -1);
  {
    int idx = 0;
    for (const auto& [p, c] : tree.edges()) {
      (void)p;
      pathOfChild[static_cast<std::size_t>(c)] = idx++;
    }
  }
  const auto sinkPaths = tree.sinkToRootPaths();
  for (std::size_t s = 0; s < wc.spec.valves.size(); ++s) {
    // sinkToRootPaths is indexed by the candidate's sink order, which is
    // the order sinks were passed in == spec.valves order.
    const std::vector<int>& nodes = sinkPaths[s];
    std::vector<int>& seq = wc.sinkSequences[s];
    for (std::size_t k = 0; k + 1 < nodes.size(); ++k)
      seq.push_back(pathOfChild[static_cast<std::size_t>(nodes[k])]);
  }
  wc.lmStructured = true;
}

}  // namespace

LmRoutingStats routeLengthMatchingClusters(const chip::Chip& chip,
                                           const PacorConfig& config,
                                           grid::ObstacleMap& obstacles,
                                           std::span<WorkCluster*> clusters,
                                           util::ThreadPool* pool) {
  LmRoutingStats stats;
  if (clusters.empty()) return stats;

  // 1. Candidate construction (Sec. 4.1).
  trace::Span spanCandidates("lm.candidates", "cluster_routing");
  std::vector<std::vector<CandidatePlan>> plans(clusters.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    WorkCluster& wc = *clusters[i];
    if (wc.spec.valves.size() == 2) {
      plans[i].push_back(directEdgePlan(chip, wc));
      ++stats.pairClusters;
    } else {
      plans[i] = dmePlans(chip, config, obstacles, wc);
      ++stats.dmeClusters;
    }
    stats.candidatesBuilt += static_cast<int>(plans[i].size());
    if (plans[i].empty()) {
      // No embeddable tree at all (pathological blockage): demote now.
      wc.wasDemoted = true;
      ++stats.demoted;
    }
  }

  spanCandidates.arg("candidates", stats.candidatesBuilt);
  spanCandidates.close();

  // 2. Candidate selection (Sec. 4.2). Clusters without plans are skipped.
  trace::Span spanSelection("lm.selection", "cluster_routing");
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < clusters.size(); ++i)
    if (!plans[i].empty()) active.push_back(i);
  std::vector<std::size_t> chosen(clusters.size(), 0);

  if (config.useSelection && !active.empty()) {
    std::int64_t maxMismatch = 0;
    for (const std::size_t i : active)
      for (const CandidatePlan& p : plans[i])
        maxMismatch = std::max(maxMismatch, p.mismatchEstimate);

    graph::SelectionProblem problem;
    std::vector<std::pair<std::size_t, std::size_t>> flat;  // (cluster slot, plan idx)
    for (std::size_t a = 0; a < active.size(); ++a) {
      const std::size_t i = active[a];
      for (std::size_t k = 0; k < plans[i].size(); ++k) {
        const double mismatchCost =
            maxMismatch > 0 ? static_cast<double>(plans[i][k].mismatchEstimate) /
                                  static_cast<double>(maxMismatch)
                            : 0.0;
        problem.addCandidate(a, -config.lambda * mismatchCost);  // Eq. 2
        flat.emplace_back(a, k);
      }
    }
    for (std::size_t x = 0; x < flat.size(); ++x)
      for (std::size_t y = x + 1; y < flat.size(); ++y) {
        if (flat[x].first == flat[y].first) continue;
        const double ol = pairOverlap(plans[active[flat[x].first]][flat[x].second],
                                      plans[active[flat[y].first]][flat[y].second]);
        if (ol > 0.0)
          problem.setPairWeight(x, y, -(1.0 - config.lambda) * ol);  // Eq. 3
      }

    const auto solution = problem.candidateCount() <= config.exactSelectionLimit
                              ? problem.solveExact()
                              : problem.solveGreedy();
    stats.selectionExact = solution.exact;
    stats.selectionObjective = solution.objective;
    for (std::size_t a = 0; a < active.size(); ++a)
      chosen[active[a]] = flat[solution.chosen[a]].second;
  }

  spanSelection.arg("exact", stats.selectionExact ? 1 : 0);
  spanSelection.close();

  // 3. Negotiation-based routing of every selected tree edge (Sec. 4.3).
  trace::Span spanNegotiation("lm.negotiation", "cluster_routing");
  std::vector<route::NegotiationEdge> allEdges;
  struct EdgeOrigin {
    std::size_t cluster;
    std::size_t localIdx;
  };
  std::vector<EdgeOrigin> origins;
  std::vector<EdgeBundle> bundles(clusters.size());
  for (const std::size_t i : active) {
    bundles[i] = bundleFor(chip, *clusters[i], plans[i][chosen[i]], static_cast<int>(i));
    for (std::size_t e = 0; e < bundles[i].edges.size(); ++e) {
      allEdges.push_back(bundles[i].edges[e]);
      origins.push_back({i, e});
    }
  }

  const auto negotiated =
      route::negotiatedRoute(obstacles, allEdges, config.negotiation, pool);
  stats.negotiationIterations = negotiated.iterations;
  spanNegotiation.arg("edges", static_cast<std::int64_t>(allEdges.size()));
  spanNegotiation.arg("iterations", negotiated.iterations);
  spanNegotiation.close();

  // 4. Commit fully-routed clusters; demote the rest.
  trace::Span spanCommit("lm.commit", "cluster_routing");
  std::vector<std::vector<route::Path>> clusterPaths(clusters.size());
  std::vector<bool> clusterOk(clusters.size(), true);
  for (const std::size_t i : active)
    clusterPaths[i].resize(bundles[i].edges.size());
  for (std::size_t e = 0; e < allEdges.size(); ++e) {
    const EdgeOrigin& o = origins[e];
    if (negotiated.routed[e])
      clusterPaths[o.cluster][o.localIdx] = negotiated.paths[e];
    else
      clusterOk[o.cluster] = false;
  }

  for (const std::size_t i : active) {
    WorkCluster& wc = *clusters[i];
    if (!clusterOk[i]) {
      wc.wasDemoted = true;
      ++stats.demoted;
      continue;
    }
    commitStructure(chip, wc, plans[i][chosen[i]], std::move(clusterPaths[i]));
    for (const route::Path& p : wc.treePaths) obstacles.occupy(p, wc.net);
    wc.internallyRouted = true;
  }
  return stats;
}

}  // namespace pacor::core
