#include "pacor/escape.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "graph/min_cost_flow.hpp"
#include "route/astar.hpp"
#include "trace/trace.hpp"

namespace pacor::core {
namespace {

/// Flow-node numbering: cell c gets nodes 2c (in) and 2c+1 (out); cluster
/// virtual nodes, super source and super sink follow after.
struct NodeIds {
  std::int64_t cellCount;
  std::size_t clusterBase;
  std::size_t source;
  std::size_t sink;

  std::size_t in(std::int32_t cell) const { return static_cast<std::size_t>(2 * cell); }
  std::size_t out(std::int32_t cell) const { return static_cast<std::size_t>(2 * cell + 1); }
  std::size_t cluster(std::size_t k) const { return clusterBase + k; }
};

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

EscapeOutcome escapeRoute(const chip::Chip& chip, grid::ObstacleMap& obstacles,
                          std::span<WorkCluster*> clusters, bool fastEscape) {
  EscapeOutcome outcome;
  const grid::Grid& g = obstacles.grid();

  std::vector<std::size_t> pendingIdx;
  for (std::size_t i = 0; i < clusters.size(); ++i)
    if (clusters[i]->internallyRouted && clusters[i]->pin < 0) pendingIdx.push_back(i);
  outcome.requested = static_cast<int>(pendingIdx.size());
  if (pendingIdx.empty()) return outcome;

  trace::Span spanBuild("escape.flow_build", "escape", trace::Level::kCluster);
  const auto buildT0 = std::chrono::steady_clock::now();

  // Pins already consumed by previously escaped clusters stay reserved.
  std::unordered_set<Point> takenPins;
  for (const WorkCluster* wc : clusters)
    if (wc->pin >= 0) takenPins.insert(chip.pin(wc->pin).pos);

  NodeIds ids{g.cellCount(),
              static_cast<std::size_t>(2 * g.cellCount()),
              static_cast<std::size_t>(2 * g.cellCount()) + pendingIdx.size(),
              static_cast<std::size_t>(2 * g.cellCount()) + pendingIdx.size() + 1};
  graph::MinCostFlow flow(ids.sink + 1);
  flow.setFastSsp(fastEscape);
  // Size the Dial bucket span from the grid diameter: step costs are unit
  // and tap biases at most two Manhattan diameters, so a few diameters
  // cover every label this network produces. Small dies get a small
  // bucket array; FPVA-scale dies keep O(1) pushes instead of degrading
  // to the overflow heap. Longer labels would still solve correctly.
  flow.setBucketSpan(graph::MinCostFlow::recommendedBucketSpan(
      4 * (static_cast<std::int64_t>(g.width()) + g.height())));

  // Usable transit cells: free cells only (routed nets and obstacles
  // block; constraint 8 additionally blocks non-pin boundary cells, which
  // the pipeline already turned into obstacles).
  const auto transit = [&](Point p) { return obstacles.isFree(p); };

  // Node split: in -> out, capacity 1 (constraint 12), cost 0.
  for (std::int32_t c = 0; c < g.cellCount(); ++c) {
    if (!transit(g.point(c))) continue;
    flow.addEdge(ids.in(c), ids.out(c), 1, 0);
  }

  // Adjacency arcs out(a) -> in(b), cost 1 per grid step. Edge ids are
  // dense, so a flat (from, to) table beats hashing on the big dies.
  std::vector<std::pair<std::int32_t, std::int32_t>> stepArc;  // by edge id
  const auto padStepArc = [&](std::size_t id) {
    if (stepArc.size() <= id) stepArc.resize(id + 1, {-1, -1});
  };
  for (std::int32_t c = 0; c < g.cellCount(); ++c) {
    const Point p = g.point(c);
    if (!transit(p)) continue;
    g.forNeighbors(p, [&](Point q) {
      if (!transit(q)) return;
      const std::size_t e = flow.addEdge(ids.out(c), ids.in(g.index(q)), 1, 1);
      padStepArc(e);
      stepArc[e] = {c, g.index(q)};
    });
  }

  // Cluster supplies: source -> cluster (cap 1), cluster -> in(f) for
  // every free neighbor f of a tap cell (cost 1: the step off the tree).
  std::vector<std::size_t> supplyEdge(pendingIdx.size());
  std::vector<std::vector<std::size_t>> tapArcs(pendingIdx.size());
  std::vector<std::int32_t> tapArcCell;  // by edge id; -1 for non-tap arcs
  const auto padTapArc = [&](std::size_t id) {
    if (tapArcCell.size() <= id) tapArcCell.resize(id + 1, -1);
  };
  for (std::size_t k = 0; k < pendingIdx.size(); ++k) {
    const WorkCluster& wc = *clusters[pendingIdx[k]];
    supplyEdge[k] = flow.addEdge(ids.source, ids.cluster(k), 1, 0);
    // Wide-tap clusters (matched trees whose root was walled in) may
    // attach anywhere, but every cell of asymmetry must later be paid in
    // detour length -- bias the flow toward near-root attachments by
    // pricing the attach arc with the distance from the root.
    std::unordered_map<Point, std::int64_t> fanout;
    for (const Point tap : wc.tapCells) {
      const std::int64_t bias = wc.wideTap ? 2 * geom::manhattan(tap, wc.tap) : 0;
      g.forNeighbors(tap, [&](Point q) {
        if (!transit(q)) return;
        const auto [it, fresh] = fanout.emplace(q, bias);
        if (!fresh) it->second = std::min(it->second, bias);
      });
    }
    for (const auto& [f, bias] : fanout) {
      const std::size_t e = flow.addEdge(ids.cluster(k), ids.in(g.index(f)), 1, 1 + bias);
      tapArcs[k].push_back(e);
      padTapArc(e);
      tapArcCell[e] = g.index(f);
    }
  }

  // Pins: out(pin) -> sink, capacity 1 each (one cluster per pin).
  for (const chip::ControlPin& pin : chip.pins) {
    if (takenPins.contains(pin.pos) || !transit(pin.pos)) continue;
    flow.addEdge(ids.out(g.index(pin.pos)), ids.sink, 1, 0);
  }

  spanBuild.arg("pending", static_cast<std::int64_t>(pendingIdx.size()));
  spanBuild.close();
  outcome.flowBuildSeconds = secondsSince(buildT0);

  trace::Span spanRun("escape.flow_run", "escape", trace::Level::kCluster);
  const auto runT0 = std::chrono::steady_clock::now();
  const auto result =
      flow.run(ids.source, ids.sink, static_cast<std::int64_t>(pendingIdx.size()));
  outcome.routedCount = static_cast<int>(result.flow);
  outcome.flowCost = result.cost;
  outcome.flowRunSeconds = secondsSince(runT0);
  outcome.flowCounters = flow.counters();
  spanRun.arg("routed", result.flow);
  spanRun.close();

  trace::Span spanDecompose("escape.decompose", "escape", trace::Level::kCluster);

  // Pin lookup by cell for assignment.
  std::unordered_map<Point, chip::PinId> pinAt;
  for (const chip::ControlPin& pin : chip.pins) pinAt.emplace(pin.pos, pin.id);

  // Decompose per-cluster unit flows into escape paths.
  std::vector<std::int32_t> nextCell(static_cast<std::size_t>(g.cellCount()), -1);
  for (std::size_t e = 0; e < stepArc.size(); ++e)
    if (stepArc[e].first >= 0 && flow.flowOn(e) > 0)
      nextCell[static_cast<std::size_t>(stepArc[e].first)] = stepArc[e].second;

  for (std::size_t k = 0; k < pendingIdx.size(); ++k) {
    WorkCluster& wc = *clusters[pendingIdx[k]];
    if (flow.flowOn(supplyEdge[k]) == 0) {
      outcome.failed.push_back(pendingIdx[k]);
      continue;
    }
    std::int32_t first = -1;
    for (const std::size_t e : tapArcs[k])
      if (flow.flowOn(e) > 0) {
        first = tapArcCell[e];
        break;
      }

    route::Path path;
    // Anchor the path at an adjacent tap cell of this cluster.
    const Point firstPoint = g.point(first);
    Point anchor = wc.tapCells.front();
    for (const Point tap : wc.tapCells)
      if (geom::manhattan(tap, firstPoint) == 1) {
        anchor = tap;
        break;
      }
    path.push_back(anchor);
    for (std::int32_t c = first;;) {
      path.push_back(g.point(c));
      const std::int32_t n = nextCell[static_cast<std::size_t>(c)];
      if (n < 0) break;
      nextCell[static_cast<std::size_t>(c)] = -1;  // consume
      c = n;
    }

    wc.escapePath = path;
    wc.pin = pinAt.at(path.back());
    // The anchor cell already belongs to the cluster; occupy the rest.
    obstacles.occupy(std::span<const Point>(path.data() + 1, path.size() - 1), wc.net);
  }

  return outcome;
}

EscapeFlowSession::EscapeFlowSession(const chip::Chip& chip,
                                     grid::ObstacleMap& obstacles,
                                     bool fastEscape)
    : chip_(&chip),
      obstacles_(&obstacles),
      flow_(static_cast<std::size_t>(2 * obstacles.grid().cellCount()) +
            chip.valves.size() + 2),
      valveCapacity_(chip.valves.size()) {
  flow_.setFastSsp(fastEscape);
  trace::Span spanBuild("escape.flow_build", "escape", trace::Level::kCluster);
  const auto buildT0 = std::chrono::steady_clock::now();
  const grid::Grid& g = obstacles_->grid();
  // Same diameter-derived Dial span as escapeRoute(): identical settle
  // order at any span, so session solves stay byte-identical to scratch.
  flow_.setBucketSpan(graph::MinCostFlow::recommendedBucketSpan(
      4 * (static_cast<std::int64_t>(g.width()) + g.height())));
  const auto cellCount = static_cast<std::size_t>(g.cellCount());
  clusterBase_ = 2 * cellCount;
  // One virtual cluster node per pending cluster, renumbered every round in
  // pending order; clusters never outnumber valves, so valves.size() slots
  // always suffice and source/sink ids stay fixed across rounds.
  source_ = clusterBase_ + chip_->valves.size();
  sink_ = source_ + 1;

  freeMirror_.resize(cellCount);
  for (std::size_t c = 0; c < cellCount; ++c)
    freeMirror_[c] = obstacles_->isFree(g.point(static_cast<std::int32_t>(c))) ? 1 : 0;

  // Persistent network over every cell. Arcs match escapeRoute()'s
  // insertion order per node: split, then adjacency, then the pin arc.
  // Blocked cells are handled below by disabling their in-node, which
  // zero-caps the split arc and every adjacency arc into the cell --
  // adjacency is thereby gated on its head cell only, exactly the
  // reachable-arc set of the scratch build (a blocked tail's out-node is
  // unreachable because its own split arc is closed).
  splitEdge_.resize(cellCount);
  for (std::size_t c = 0; c < cellCount; ++c)
    splitEdge_[c] = flow_.addEdge(2 * c, 2 * c + 1, 1, 0);
  for (std::size_t c = 0; c < cellCount; ++c) {
    const Point p = g.point(static_cast<std::int32_t>(c));
    g.forNeighbors(p, [&](Point q) {
      const auto qi = static_cast<std::size_t>(g.index(q));
      const std::size_t e = flow_.addEdge(2 * c + 1, 2 * qi, 1, 1);
      if (stepArc_.size() <= e) stepArc_.resize(e + 1, {-1, -1});
      stepArc_[e] = {static_cast<std::int32_t>(c), static_cast<std::int32_t>(qi)};
    });
  }
  pinEdge_.reserve(chip_->pins.size());
  for (const chip::ControlPin& pin : chip_->pins) {
    const auto c = static_cast<std::size_t>(g.index(pin.pos));
    pinEdge_.push_back(flow_.addEdge(2 * c + 1, sink_, 1, 0));
    pinAt_.emplace(pin.pos, pin.id);
  }
  persistentEdges_ = flow_.edgeCount();
  ++stats_.coldBuilds;
  stats_.persistentArcs = static_cast<std::int64_t>(2 * persistentEdges_);

  flow_.freeze();
  for (std::size_t c = 0; c < cellCount; ++c)
    if (freeMirror_[c] == 0) flow_.disableNode(2 * c);

  nextCell_.assign(cellCount, -1);
  spanBuild.arg("cells", static_cast<std::int64_t>(cellCount));
  spanBuild.arg("arcs", stats_.persistentArcs);
  ctorSeconds_ = secondsSince(buildT0);
}

bool EscapeFlowSession::compatibleWith(const chip::Chip& chip) const noexcept {
  if (chip.valves.size() > valveCapacity_) return false;
  if (static_cast<std::size_t>(chip.routingGrid.cellCount()) != freeMirror_.size())
    return false;
  if (chip.pins.size() != pinEdge_.size()) return false;
  for (const chip::ControlPin& pin : chip.pins) {
    const auto it = pinAt_.find(pin.pos);
    if (it == pinAt_.end() || it->second != pin.id) return false;
  }
  return true;
}

void EscapeFlowSession::rebind(const chip::Chip& chip, grid::ObstacleMap& obstacles,
                               bool fastEscape) {
  chip_ = &chip;
  obstacles_ = &obstacles;
  flow_.setFastSsp(fastEscape);
  // Nothing else: the next route() already resets the flow, truncates the
  // overlay, and diffs freeMirror_ against the new map's occupancy -- the
  // same path every warm round takes within one request.
}

EscapeOutcome EscapeFlowSession::route(std::span<WorkCluster*> clusters) {
  EscapeOutcome outcome;
  const grid::Grid& g = obstacles_->grid();

  std::vector<std::size_t> pendingIdx;
  for (std::size_t i = 0; i < clusters.size(); ++i)
    if (clusters[i]->internallyRouted && clusters[i]->pin < 0) pendingIdx.push_back(i);
  outcome.requested = static_cast<int>(pendingIdx.size());
  if (pendingIdx.empty()) return outcome;

  ++stats_.rounds;
  const bool warm = !firstRound_;
  firstRound_ = false;
  if (warm) ++stats_.warmRounds;

  trace::Span spanDelta("escape.flow_delta", "escape", trace::Level::kCluster);
  const auto deltaT0 = std::chrono::steady_clock::now();

  // Per-round counters: reset before the warm repair so the round's
  // outcome records its own resetFlow arc touches.
  flow_.resetCounters();

  // Back to the persistent zero-flow network: repair the arcs the last
  // solve touched and drop its per-round cluster arcs.
  flow_.resetFlow();
  flow_.truncateEdges(persistentEdges_);

  // Cell occupancy deltas since the last round.
  std::int64_t deltaCells = 0;
  for (std::size_t c = 0; c < freeMirror_.size(); ++c) {
    const bool free = obstacles_->isFree(g.point(static_cast<std::int32_t>(c)));
    if (free == (freeMirror_[c] != 0)) continue;
    freeMirror_[c] = free ? 1 : 0;
    ++deltaCells;
    if (free)
      flow_.enableNode(2 * c);
    else
      flow_.disableNode(2 * c);
  }

  // Pin arcs: open iff the pin is unconsumed and its cell is free.
  std::unordered_set<Point> takenPins;
  for (const WorkCluster* wc : clusters)
    if (wc->pin >= 0) takenPins.insert(chip_->pin(wc->pin).pos);
  for (std::size_t i = 0; i < chip_->pins.size(); ++i) {
    const Point pos = chip_->pins[i].pos;
    const bool open = !takenPins.contains(pos) && obstacles_->isFree(pos);
    flow_.setCapacity(pinEdge_[i], open ? 1 : 0);
  }

  // Per-round cluster supplies and tap fanout, on the overlay. Mirrors
  // escapeRoute() exactly, including the per-cluster fanout map whose
  // iteration order decides tap-arc insertion order.
  std::vector<std::size_t> supplyEdge(pendingIdx.size());
  std::vector<std::vector<std::size_t>> tapArcs(pendingIdx.size());
  std::vector<std::int32_t> tapArcCell;  // by (edge id - persistentEdges_)
  for (std::size_t k = 0; k < pendingIdx.size(); ++k) {
    const WorkCluster& wc = *clusters[pendingIdx[k]];
    supplyEdge[k] = flow_.addEdge(source_, clusterBase_ + k, 1, 0);
    std::unordered_map<Point, std::int64_t> fanout;
    for (const Point tap : wc.tapCells) {
      const std::int64_t bias = wc.wideTap ? 2 * geom::manhattan(tap, wc.tap) : 0;
      g.forNeighbors(tap, [&](Point q) {
        if (!obstacles_->isFree(q)) return;
        const auto [it, fresh] = fanout.emplace(q, bias);
        if (!fresh) it->second = std::min(it->second, bias);
      });
    }
    for (const auto& [f, bias] : fanout) {
      const std::size_t e = flow_.addEdge(
          clusterBase_ + k, static_cast<std::size_t>(2 * g.index(f)), 1, 1 + bias);
      tapArcs[k].push_back(e);
      const std::size_t slot = e - persistentEdges_;
      if (tapArcCell.size() <= slot) tapArcCell.resize(slot + 1, -1);
      tapArcCell[slot] = g.index(f);
    }
  }
  const auto deltaArcs =
      static_cast<std::int64_t>(2 * (flow_.edgeCount() - persistentEdges_));
  if (warm) {
    stats_.warmDeltaCells += deltaCells;
    stats_.warmDeltaArcs += deltaArcs;
  }
  spanDelta.arg("pending", static_cast<std::int64_t>(pendingIdx.size()));
  spanDelta.arg("delta_cells", deltaCells);
  spanDelta.arg("delta_arcs", deltaArcs);
  spanDelta.close();
  // The one-time network build is charged to the first round, warm
  // rounds pay only their delta.
  outcome.flowBuildSeconds = secondsSince(deltaT0) + (warm ? 0.0 : ctorSeconds_);

  trace::Span spanRun("escape.flow_run", "escape", trace::Level::kCluster);
  const auto runT0 = std::chrono::steady_clock::now();
  const auto result = flow_.run(source_, sink_,
                                static_cast<std::int64_t>(pendingIdx.size()));
  outcome.routedCount = static_cast<int>(result.flow);
  outcome.flowCost = result.cost;
  outcome.flowRunSeconds = secondsSince(runT0);
  outcome.flowCounters = flow_.counters();
  spanRun.arg("routed", result.flow);
  spanRun.close();

  trace::Span spanDecompose("escape.decompose", "escape", trace::Level::kCluster);

  // Decompose per-cluster unit flows into escape paths. Flow edges are
  // found through the solver's dirty list (O(touched)); every entry of
  // nextCell_ written here is consumed by a path walk below (unit paths
  // cover all adjacency flow), so the array stays -1 across rounds.
  flow_.forEachPositiveFlowEdge([&](std::size_t e, std::int64_t) {
    if (e < stepArc_.size() && stepArc_[e].first >= 0)
      nextCell_[static_cast<std::size_t>(stepArc_[e].first)] = stepArc_[e].second;
  });

  for (std::size_t k = 0; k < pendingIdx.size(); ++k) {
    WorkCluster& wc = *clusters[pendingIdx[k]];
    if (flow_.flowOn(supplyEdge[k]) == 0) {
      outcome.failed.push_back(pendingIdx[k]);
      continue;
    }
    std::int32_t first = -1;
    for (const std::size_t e : tapArcs[k])
      if (flow_.flowOn(e) > 0) {
        first = tapArcCell[e - persistentEdges_];
        break;
      }

    route::Path path;
    const Point firstPoint = g.point(first);
    Point anchor = wc.tapCells.front();
    for (const Point tap : wc.tapCells)
      if (geom::manhattan(tap, firstPoint) == 1) {
        anchor = tap;
        break;
      }
    path.push_back(anchor);
    for (std::int32_t c = first;;) {
      path.push_back(g.point(c));
      const std::int32_t n = nextCell_[static_cast<std::size_t>(c)];
      if (n < 0) break;
      nextCell_[static_cast<std::size_t>(c)] = -1;  // consume
      c = n;
    }

    wc.escapePath = path;
    wc.pin = pinAt_.at(path.back());
    obstacles_->occupy(std::span<const Point>(path.data() + 1, path.size() - 1),
                      wc.net);
  }

  return outcome;
}

EscapeOutcome escapeRouteSequential(const chip::Chip& chip,
                                    grid::ObstacleMap& obstacles,
                                    std::span<WorkCluster*> clusters) {
  trace::Span span("escape.sequential", "escape", trace::Level::kCluster);
  EscapeOutcome outcome;

  std::unordered_set<Point> takenPins;
  for (const WorkCluster* wc : clusters)
    if (wc->pin >= 0) takenPins.insert(chip.pin(wc->pin).pos);
  std::unordered_map<Point, chip::PinId> pinAt;
  for (const chip::ControlPin& pin : chip.pins) pinAt.emplace(pin.pos, pin.id);

  for (std::size_t i = 0; i < clusters.size(); ++i) {
    WorkCluster& wc = *clusters[i];
    if (!wc.internallyRouted || wc.pin >= 0) continue;
    ++outcome.requested;

    route::AStarRequest req;
    req.sources = wc.tapCells;
    for (const chip::ControlPin& pin : chip.pins)
      if (!takenPins.contains(pin.pos) && obstacles.isFree(pin.pos))
        req.targets.push_back(pin.pos);
    req.net = wc.net;
    const auto found = route::aStarRoute(obstacles, req);
    if (!found.success) {
      outcome.failed.push_back(i);
      continue;
    }
    wc.escapePath = found.path;
    wc.pin = pinAt.at(found.path.back());
    takenPins.insert(found.path.back());
    obstacles.occupy(found.path, wc.net);
    ++outcome.routedCount;
    outcome.flowCost += route::pathLength(found.path);
  }
  return outcome;
}

}  // namespace pacor::core
