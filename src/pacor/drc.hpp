#pragma once

#include <string>
#include <vector>

#include "chip/chip.hpp"
#include "pacor/result.hpp"

namespace pacor::core {

/// One design-rule / consistency violation found in a routed solution.
struct DrcViolation {
  enum class Kind {
    kUnroutedValve,        ///< a valve has no channel to a pin
    kBrokenPath,           ///< a path is disconnected or self-intersecting
    kOutOfBounds,          ///< a channel cell outside the routing grid
    kOnObstacle,           ///< a channel cell on a blocked cell
    kCellConflict,         ///< two clusters share a channel cell
    kPinConflict,          ///< two clusters share a control pin
    kPinNotOnBoundary,     ///< assigned pin is not a candidate pin cell
    kIncompatibleValves,   ///< valves on one pin are not pairwise compatible
    kEscapeDetached,       ///< escape path does not touch the cluster tree
    kMatchViolated,        ///< a cluster reported matched exceeds delta
    kLengthMismatchReport, ///< reported valveLengths disagree with geometry
  };
  Kind kind;
  std::size_t cluster = 0;  ///< index into PacorResult::clusters
  std::string detail;
};

/// Result of a full design-rule check.
struct DrcReport {
  std::vector<DrcViolation> violations;
  bool clean() const noexcept { return violations.empty(); }
  std::string str() const;
};

/// Independent verifier for a routed solution: re-derives every claim of
/// the result (connectivity, disjointness, compatibility, pin assignment,
/// length matching) from the geometry alone, without trusting the
/// router's bookkeeping. Run by tests after every pipeline run and by the
/// `pacor check` CLI subcommand.
DrcReport checkSolution(const chip::Chip& chip, const PacorResult& result);

std::string kindName(DrcViolation::Kind kind);

}  // namespace pacor::core
