#pragma once

#include <iosfwd>
#include <string>

#include "pacor/result.hpp"

namespace pacor::core {

/// Human-readable per-cluster summary of a routing result (lengths,
/// matching state, pins) — the detailed companion of the Table 2 row.
std::string describeResult(const PacorResult& result);

/// Prints the Table 2 header (paper layout: #Matched Clusters, matched
/// channel length, total channel length, runtime for the three variants).
void printTable2Header(std::ostream& os);

/// Prints one Table 2 row comparing the three flow variants on a design.
void printTable2Row(std::ostream& os, const PacorResult& withoutSel,
                    const PacorResult& detourFirst, const PacorResult& pacor);

}  // namespace pacor::core
