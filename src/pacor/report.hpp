#pragma once

#include <iosfwd>
#include <string>

#include "pacor/result.hpp"

namespace pacor::core {

/// Human-readable per-cluster summary of a routing result (lengths,
/// matching state, pins) — the detailed companion of the Table 2 row.
std::string describeResult(const PacorResult& result);

/// Prints the Table 2 header (paper layout: #Matched Clusters, matched
/// channel length, total channel length, runtime for the three variants).
void printTable2Header(std::ostream& os);

/// Prints one Table 2 row comparing the three flow variants on a design.
void printTable2Row(std::ostream& os, const PacorResult& withoutSel,
                    const PacorResult& detourFirst, const PacorResult& pacor);

/// One-line search-effort summary of a result, drawn from its
/// MetricsRegistry: total A* expansions across the three search stages,
/// escape rounds (and how many of them the incremental flow session served
/// warm), and detour iterations. The Table 1 companion of describeResult.
std::string describeEffort(const PacorResult& result);

/// Prints the header of the search-effort companion of Table 2: the same
/// three-variant grouping as printTable2Header, with effort columns from
/// each result's MetricsRegistry instead of quality columns.
void printEffortHeader(std::ostream& os);

/// Prints one search-effort row for the three flow variants on a design.
void printEffortRow(std::ostream& os, const PacorResult& withoutSel,
                    const PacorResult& detourFirst, const PacorResult& pacor);

}  // namespace pacor::core
