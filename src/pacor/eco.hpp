#pragma once

#include <string>

#include "chip/chip.hpp"
#include "chip/delta.hpp"
#include "pacor/config.hpp"
#include "pacor/pipeline.hpp"
#include "pacor/result.hpp"

namespace pacor::core {

/// How rerouteChip answered an ECO request.
struct EcoInfo {
  enum class Mode {
    kIdentity,     ///< no cluster affected: previous result returned verbatim
    kIncremental,  ///< dirty clusters re-routed against frozen survivors
    kFull,         ///< from-scratch routeChip (structural edit or fallback)
  };

  Mode mode = Mode::kFull;
  bool fellBack = false;       ///< incremental attempt rejected, re-ran full
  std::string fullReason;      ///< why full mode was chosen (empty otherwise)
  int dirtyClusters = 0;       ///< clusters re-routed (B's clustering)
  int frozenClusters = 0;      ///< previous routed clusters carried verbatim
  int totalSpecs = 0;          ///< clusters of the edited chip
  double reuseRatio = 0.0;     ///< frozen / total previous clusters
};

/// Incremental ECO re-routing: applies `delta` to `base`, computes the set
/// of clusters the edit can affect, and re-routes ONLY those -- every
/// untouched cluster of `prev` is carried into the result byte-for-byte
/// (geometry, pin, matching verdict), marked with RoutedCluster::ecoCarried.
///
/// `prev` must be the result of routing `base` (any config); the edited
/// chip must pass Chip::validate() or std::invalid_argument is thrown.
///
/// Mode selection:
///  - identity: no cluster is affected -> `prev` is returned as-is (with
///    the edited chip's name), no routing work at all.
///  - incremental: the edit's dirty set -- clusters whose membership
///    changed under re-clustering, whose valves moved, whose committed
///    cells collide with new obstacles / new valve sites, or (for
///    length-matched clusters) when the delta threshold changed -- is
///    re-routed through the normal stage 2-5 pipeline with the survivors
///    frozen in place. Falls back to full when the seeded run is
///    incomplete or a previously-matched cluster loses its matching.
///  - full: grid / design-rule / pin edits (they invalidate every escape),
///    an unusable `prev`, or the fallback above -> plain routeChip on the
///    edited chip.
///
/// In every mode the returned solution is oracle-clean for the edited chip
/// exactly as if it came from routeChip; `result.metrics` carries eco.*
/// rows (mode, dirty/frozen counts, reuse ratio) and `info`, when given,
/// the same as a struct.
PacorResult rerouteChip(const chip::Chip& base, const PacorResult& prev,
                        const chip::ChipDelta& delta,
                        const PacorConfig& config = {},
                        const RouteResources& resources = {},
                        EcoInfo* info = nullptr);

}  // namespace pacor::core
