#pragma once

#include <span>
#include <vector>

#include "grid/obstacle_map.hpp"
#include "pacor/config.hpp"
#include "pacor/work.hpp"

namespace pacor::util {
class ThreadPool;
}

namespace pacor::core {

/// Outcome counters of the length-matching cluster routing stage.
struct LmRoutingStats {
  int dmeClusters = 0;        ///< clusters routed through DME (>= 3 valves)
  int pairClusters = 0;       ///< two-valve direct-edge clusters
  int candidatesBuilt = 0;    ///< total candidate Steiner trees
  int demoted = 0;            ///< clusters that lost the constraint here
  bool selectionExact = true; ///< exact MWCP optimum (vs heuristic)
  double selectionObjective = 0.0;
  int negotiationIterations = 0;
};

/// Length-matching aware cluster routing (paper Sec. 4): builds candidate
/// Steiner trees per constraint cluster (DME for >= 3 valves, the direct
/// edge for pairs), selects one candidate per cluster by the MWCP
/// formulation (Eqs. 2-4), and routes all selected tree edges with
/// negotiation-based routing (Alg. 1). Successful clusters are committed
/// into `obstacles` (net = cluster net) with their detour structure
/// (sink sequences, tap) filled in; clusters whose edges could not be
/// routed are demoted (wasDemoted = true) for MST-based routing. A
/// multi-thread `pool` parallelizes the negotiation iterations (see
/// route::negotiatedRoute); the result is identical to pool == nullptr.
LmRoutingStats routeLengthMatchingClusters(const chip::Chip& chip,
                                           const PacorConfig& config,
                                           grid::ObstacleMap& obstacles,
                                           std::span<WorkCluster*> clusters,
                                           util::ThreadPool* pool = nullptr);

}  // namespace pacor::core
