#include "pacor/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "pacor/cluster_routing.hpp"
#include "pacor/clustering.hpp"
#include "pacor/detour.hpp"
#include "pacor/escape.hpp"
#include "pacor/mst_routing.hpp"
#include "route/workspace.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace pacor::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Splits a plain multi-valve cluster in half and re-routes the parts
/// (used by the rip-up rounds when a whole routed tree blocks escapes).
std::vector<WorkCluster> forceSplit(const chip::Chip& chip, grid::ObstacleMap& obstacles,
                                    WorkCluster wc,
                                    const std::function<grid::NetId()>& allocateNet,
                                    int* declusterCount) {
  if (wc.spec.valves.size() < 2) return {std::move(wc)};
  obstacles.release(wc.net);
  if (declusterCount != nullptr) ++*declusterCount;

  std::vector<chip::ValveId> sorted = wc.spec.valves;
  geom::Rect box = geom::Rect::fromPoint(chip.valve(sorted[0]).pos);
  for (const chip::ValveId v : sorted)
    box = box.unionWith(geom::Rect::fromPoint(chip.valve(v).pos));
  const bool byX = box.width() >= box.height();
  std::stable_sort(sorted.begin(), sorted.end(), [&](chip::ValveId a, chip::ValveId b) {
    const geom::Point pa = chip.valve(a).pos;
    const geom::Point pb = chip.valve(b).pos;
    return byX ? pa.x < pb.x : pa.y < pb.y;
  });
  const std::size_t half = sorted.size() / 2;

  std::vector<WorkCluster> out;
  for (int part = 0; part < 2; ++part) {
    WorkCluster sub;
    sub.spec.lengthMatched = false;
    sub.wasDemoted = wc.wasDemoted;
    sub.spec.valves.assign(
        sorted.begin() + (part == 0 ? 0 : static_cast<std::ptrdiff_t>(half)),
        part == 0 ? sorted.begin() + static_cast<std::ptrdiff_t>(half) : sorted.end());
    sub.net = allocateNet();
    for (const chip::ValveId v : sub.spec.valves) {
      const geom::Point cell = chip.valve(v).pos;
      obstacles.occupy(std::span<const geom::Point>(&cell, 1), sub.net);
    }
    auto parts = routeWithDeclustering(chip, obstacles, std::move(sub), allocateNet,
                                       declusterCount);
    for (auto& p : parts) out.push_back(std::move(p));
  }
  return out;
}

/// Releases every escape path and pin so the next flow pass re-decides
/// all pin assignments globally. ECO-frozen survivors keep theirs: their
/// escape is part of the carried-over contract, and their pins stay
/// reserved through the takenPins set of the next flow pass.
void ripAllEscapes(grid::ObstacleMap& obstacles, std::vector<WorkCluster>& clusters) {
  for (WorkCluster& wc : clusters) {
    if (wc.pin < 0 || wc.ecoFrozen) continue;
    if (wc.escapePath.size() > 1)
      obstacles.releasePath(
          std::span<const geom::Point>(wc.escapePath.data() + 1, wc.escapePath.size() - 1),
          wc.net);
    wc.escapePath.clear();
    wc.pin = -1;
  }
}

/// Nearest plain (or, failing that, matched) multi-valve cluster to a
/// cell, excluding already-marked ones; clusters.size() when none exists.
std::size_t nearestRelaxable(const chip::Chip& chip,
                             const std::vector<WorkCluster>& clusters,
                             const std::vector<char>& relax, std::size_t self,
                             geom::Point cell, bool plainOnly) {
  const auto nearestWhere = [&](bool wantPlain) {
    std::size_t nearest = clusters.size();
    std::int64_t nearestDist = std::numeric_limits<std::int64_t>::max();
    for (std::size_t j = 0; j < clusters.size(); ++j) {
      if (j == self || relax[j] || clusters[j].spec.valves.size() < 2 ||
          clusters[j].ecoFrozen)
        continue;
      if (clusters[j].lmStructured == wantPlain) continue;
      for (const chip::ValveId v : clusters[j].spec.valves) {
        const std::int64_t d = geom::chebyshev(cell, chip.valve(v).pos);
        if (d < nearestDist) {
          nearestDist = d;
          nearest = j;
        }
      }
    }
    return nearest;
  };
  std::size_t nearest = nearestWhere(/*wantPlain=*/true);
  if (nearest == clusters.size() && !plainOnly)
    nearest = nearestWhere(/*wantPlain=*/false);
  return nearest;
}

}  // namespace

PacorConfig pacorDefaultConfig() { return {}; }

PacorConfig withoutSelectionConfig() {
  PacorConfig cfg;
  cfg.useSelection = false;
  return cfg;
}

PacorConfig detourFirstConfig() {
  PacorConfig cfg;
  cfg.detourStage = DetourStage::kAfterClusterRouting;
  return cfg;
}

grid::ObstacleMap makeRoutingObstacleTemplate(const chip::Chip& chip) {
  grid::ObstacleMap obstacles = chip.makeObstacleMap();
  std::unordered_set<geom::Point> pinCells;
  for (const chip::ControlPin& p : chip.pins) pinCells.insert(p.pos);
  for (const geom::Point b : chip.routingGrid.boundaryCells())
    if (!pinCells.contains(b) && obstacles.isFree(b)) obstacles.addObstacle(b);
  return obstacles;
}

namespace {

PacorResult routeChipImpl(const chip::Chip& chip, const PacorConfig& config,
                          const RouteResources& resources,
                          detail::PipelineSeed* seed) {
  if (const auto err = chip.validate())
    throw std::invalid_argument("routeChip: invalid chip: " + *err);
  if (seed == nullptr && resources.obstacleTemplate != nullptr &&
      resources.obstacleTemplate->grid().cellCount() != chip.routingGrid.cellCount())
    throw std::invalid_argument(
        "routeChip: obstacle template does not match the chip's routing grid");

  const auto tStart = Clock::now();
  PacorResult result;
  result.design = chip.name;
  trace::Span rootSpan("pacor.route", "pipeline");

  // Worker pool for the speculative-parallel routing stages. A shared
  // pool (serve mode) is reused as-is; otherwise one is built for this
  // call. jobs <= 1 spawns no threads and every stage takes the exact
  // serial path.
  std::optional<util::ThreadPool> ownedPool;
  if (resources.pool == nullptr) {
    const int jobs = config.jobs == 0 ? static_cast<int>(util::hardwareJobs())
                                      : config.jobs;
    ownedPool.emplace(static_cast<unsigned>(std::max(1, jobs)));
  }
  util::ThreadPool& pool = resources.pool != nullptr ? *resources.pool : *ownedPool;
  util::ThreadPool* poolPtr = pool.threadCount() > 1 ? &pool : nullptr;
  result.parallelJobs = static_cast<int>(pool.threadCount());
  // Dispatch-decision accounting (inline vs. worker handoff), diffed over
  // the request so a shared serve-mode pool reports per-request numbers
  // (approximate when requests overlap on one pool).
  const std::uint64_t poolInline0 = pool.inlineBatches();
  const std::uint64_t poolDispatched0 = pool.dispatchedBatches();

  // Request-scoped search-effort accounting. Per-stage counters are
  // snapshots of this sink, never differences of the process-wide
  // searchTally(): concurrent in-process requests each see only their own
  // searches (pool workers re-install the sink inside every task).
  route::SharedTally requestTally;
  route::TallyScope tallyScope(&requestTally);
  const route::SearchCounters tally0 = requestTally.snapshot();

  // Routing workspace: static obstacles plus blocked non-pin boundary
  // cells (escape constraint 8 applied globally for consistency); copied
  // from the caller's cached template when one is supplied. An ECO seed
  // brings its own map, pre-loaded with the frozen survivors' occupancy.
  grid::ObstacleMap obstacles =
      seed != nullptr ? std::move(seed->obstacles)
      : resources.obstacleTemplate != nullptr
          ? *resources.obstacleTemplate
          : makeRoutingObstacleTemplate(chip);

  // --- Stage 1: valve clustering (or the ECO seed in its place) ----------
  trace::Span spanClustering("stage.clustering", "pipeline");
  const auto tCluster = Clock::now();
  grid::NetId nextNet = 0;
  const auto allocateNet = [&nextNet] { return nextNet++; };
  std::vector<WorkCluster> clusters;
  if (seed != nullptr) {
    clusters = std::move(seed->clusters);
    nextNet = seed->nextNet;
    result.multiValveClusterCount = seed->multiValveClusterCount;
  } else {
    std::vector<ClusterSpec> specs = clusterValves(chip);
    result.multiValveClusterCount = static_cast<int>(
        std::count_if(specs.begin(), specs.end(),
                      [](const ClusterSpec& s) { return s.valves.size() >= 2; }));
    clusters.reserve(specs.size());
    for (ClusterSpec& spec : specs) {
      WorkCluster wc;
      wc.spec = std::move(spec);
      wc.net = allocateNet();
      for (const chip::ValveId v : wc.spec.valves) {
        const geom::Point cell = chip.valve(v).pos;
        obstacles.occupy(std::span<const geom::Point>(&cell, 1), wc.net);
      }
      clusters.push_back(std::move(wc));
    }
  }
  const auto tClusterEnd = Clock::now();
  result.times.clustering = seconds(tCluster, tClusterEnd);
  spanClustering.arg("clusters", static_cast<std::int64_t>(clusters.size()));
  spanClustering.close();

  // --- Stage 2: length-matching cluster routing --------------------------
  trace::Span spanLm("stage.cluster_routing", "pipeline");
  std::vector<WorkCluster*> lmClusters;
  for (WorkCluster& wc : clusters)
    if (wc.wantsMatching() && wc.spec.valves.size() >= 2 && !wc.internallyRouted)
      lmClusters.push_back(&wc);
  const LmRoutingStats lmStats =
      routeLengthMatchingClusters(chip, config, obstacles, lmClusters, poolPtr);
  result.lmCandidatesBuilt = lmStats.candidatesBuilt;
  result.selectionExact = lmStats.selectionExact;
  result.negotiationIterations = lmStats.negotiationIterations;
  spanLm.arg("lm_clusters", static_cast<std::int64_t>(lmClusters.size()));
  spanLm.arg("candidates", lmStats.candidatesBuilt);
  spanLm.close();

  // --- Stage 3: MST-based routing of everything else ---------------------
  trace::Span spanMst("stage.mst_routing", "pipeline");
  clusters = routeClustersStage(chip, obstacles, std::move(clusters), allocateNet,
                                &result.declusteredCount, poolPtr);
  spanMst.close();
  const auto tRouteEnd = Clock::now();
  result.times.clusterRouting = seconds(tClusterEnd, tRouteEnd);
  const route::SearchCounters tallyRoute = requestTally.snapshot();
  result.searchClusterRouting = tallyRoute - tally0;

  // --- Optional: detour-first baseline (match around the tap) ------------
  if (config.detourStage == DetourStage::kAfterClusterRouting) {
    trace::Span spanFirst("detour.first_pass", "pipeline");
    for (WorkCluster& wc : clusters) {
      if (!wc.lmStructured || !wc.internallyRouted || wc.ecoFrozen) continue;
      DetourStats stats;
      detourClusterForMatching(chip, obstacles, wc, wc.tap, chip.delta,
                               config.detourIterations, &stats,
                               config.useBoundedDetour);
      result.detourReroutes += stats.reroutes;
      result.detourBumpFallbacks += stats.bumpFallbacks;
      result.detourIterations += stats.iterations;
      result.detourRestores += stats.restores;
    }
  }

  // --- Stage 4: escape routing with de-clustering / rip-up rounds --------
  // One escape-flow session serves every round of both the rip-up loop and
  // the matching-retry re-escapes; created lazily at the first flow pass so
  // it snapshots the post-routing obstacle state. A caller-held slot
  // (serve mode) keeps the session alive across requests: the first flow
  // pass warm-rebinds it to this request's obstacle map -- or rebuilds it
  // when pin/grid edits made it incompatible -- and stats are diffed so
  // the metrics stay request-scoped.
  std::unique_ptr<EscapeFlowSession> ownedEscapeSession;
  std::unique_ptr<EscapeFlowSession>& escapeSessionSlot =
      resources.escapeSession != nullptr ? *resources.escapeSession
                                         : ownedEscapeSession;
  EscapeFlowSession* escapeSession = nullptr;  // non-null once prepared
  EscapeFlowSession::Stats escapeStats0;
  double escapeFlowBuildS = 0.0;
  double escapeFlowRunS = 0.0;
  graph::MinCostFlow::Counters escapeCounters;
  std::int64_t escapeFlowCost = 0;
  std::int64_t escapeFirstCost = -1;   // first pass with pending demand
  std::int64_t escapeFirstRouted = -1;
  const auto escapePass = [&](std::span<WorkCluster*> ptrs) {
    EscapeOutcome outcome;
    if (config.escapeMode != EscapeMode::kMinCostFlow) {
      outcome = escapeRouteSequential(chip, obstacles, ptrs);
    } else if (!config.incrementalEscape) {
      outcome = escapeRoute(chip, obstacles, ptrs, config.fastEscape);
    } else {
      if (escapeSession == nullptr) {
        if (escapeSessionSlot && !escapeSessionSlot->compatibleWith(chip))
          escapeSessionSlot.reset();
        if (escapeSessionSlot) {
          // Warm reuse: baseline the counters before this request's work.
          escapeStats0 = escapeSessionSlot->stats();
          escapeSessionSlot->rebind(chip, obstacles, config.fastEscape);
        } else {
          escapeSessionSlot = std::make_unique<EscapeFlowSession>(
              chip, obstacles, config.fastEscape);
          // Fresh construction belongs to this request: baseline zero so
          // the cold build shows up in the request's metrics.
          escapeStats0 = EscapeFlowSession::Stats{};
        }
        escapeSession = escapeSessionSlot.get();
      }
      outcome = escapeSession->route(ptrs);
    }
    escapeFlowBuildS += outcome.flowBuildSeconds;
    escapeFlowRunS += outcome.flowRunSeconds;
    const auto& fc = outcome.flowCounters;
    escapeCounters.dijkstraPasses += fc.dijkstraPasses;
    escapeCounters.augmentations += fc.augmentations;
    escapeCounters.multiAugPaths += fc.multiAugPaths;
    escapeCounters.bidirPasses += fc.bidirPasses;
    escapeCounters.bucketPushes += fc.bucketPushes;
    escapeCounters.heapPushes += fc.heapPushes;
    escapeCounters.queuePops += fc.queuePops;
    escapeCounters.settles += fc.settles;
    escapeCounters.earlyExits += fc.earlyExits;
    escapeCounters.warmArcTouches += fc.warmArcTouches;
    escapeFlowCost += outcome.flowCost;
    // First pass with actual demand: the fuzz harness compares this
    // (routed count, cost) pair across solver variants -- later rounds may
    // legitimately diverge through different equal-cost tie resolutions.
    if (escapeFirstRouted < 0 && outcome.requested > 0) {
      escapeFirstCost = outcome.flowCost;
      escapeFirstRouted = outcome.routedCount;
    }
    return outcome;
  };
  const auto runEscapeLoop = [&] {
    for (int round = 0; round < config.maxEscapeRounds; ++round) {
      trace::Span roundSpan("escape.round", "escape", trace::Level::kCluster);
      roundSpan.arg("round", round);
      ++result.escapeRounds;
      std::vector<WorkCluster*> ptrs;
      ptrs.reserve(clusters.size());
      for (WorkCluster& wc : clusters) ptrs.push_back(&wc);
      const EscapeOutcome outcome = escapePass(ptrs);
      roundSpan.arg("failed", static_cast<std::int64_t>(outcome.failed.size()));
      // The env is read once per process and each round's diagnostics go
      // out as one write: concurrent requests' lines interleave whole, not
      // character-by-character, and the hot loop never calls getenv.
      static const bool kDebug = std::getenv("PACOR_DEBUG") != nullptr;
      if (kDebug) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "[%s] escape round %d: requested %d routed %d failed %zu [",
                      chip.name.c_str(), round, outcome.requested,
                      outcome.routedCount, outcome.failed.size());
        std::string line = buf;
        for (const std::size_t f : outcome.failed) {
          std::snprintf(buf, sizeof buf, " %zu(%zuv,%s)", f,
                        clusters[f].spec.valves.size(),
                        clusters[f].lmStructured ? "lm" : "plain");
          line += buf;
        }
        line += " ]\n";
        std::fwrite(line.data(), 1, line.size(), stderr);
      }
      if (outcome.failed.empty()) break;
      if (round + 1 >= config.maxEscapeRounds) break;

      // Decide the remedies BEFORE touching any routing: a walled-in
      // matched tree first gets a wide tap (matching is restored by the
      // final detour stage), then demotion as a last resort; plain trees
      // are split in half; a stuck singleton causes its nearest
      // multi-valve neighbor -- the likeliest wall around it -- to be
      // relaxed instead, plain neighbors before matched ones (the paper's
      // higher rip-up cost for constrained clusters).
      // relax[] values: 1 = split/demote, 2 = widen the escape tap.
      std::vector<char> relax(clusters.size(), 0);
      for (const std::size_t f : outcome.failed) {
        if (clusters[f].spec.valves.size() >= 2) {
          if (clusters[f].lmStructured && !clusters[f].wideTap)
            relax[f] = 2;
          else
            relax[f] = 1;
          continue;
        }
        const geom::Point cell = chip.valve(clusters[f].spec.valves.front()).pos;
        const std::size_t nearest =
            nearestRelaxable(chip, clusters, relax, f, cell, /*plainOnly=*/false);
        if (nearest < clusters.size()) relax[nearest] = 1;
      }
      if (std::none_of(relax.begin(), relax.end(), [](char c) { return c != 0; }))
        break;  // nothing left to relax: keep the escapes already routed

      ripAllEscapes(obstacles, clusters);

      std::vector<WorkCluster> next;
      next.reserve(clusters.size());
      for (std::size_t i = 0; i < clusters.size(); ++i) {
        WorkCluster& wc = clusters[i];
        if (!relax[i]) {
          next.push_back(std::move(wc));
          continue;
        }
        if (relax[i] == 2) {
          // Widen: every tree cell becomes a legal escape attachment; the
          // root-distance bias in escapeRoute deprioritizes leaf
          // attachments but keeps them available as the last way out of a
          // walled-in region.
          std::unordered_set<geom::Point> cells;
          for (const route::Path& p : wc.treePaths) cells.insert(p.begin(), p.end());
          wc.tapCells.assign(cells.begin(), cells.end());
          std::sort(wc.tapCells.begin(), wc.tapCells.end());
          wc.wideTap = true;
          ++result.escapeWideTapRemedies;
          next.push_back(std::move(wc));
          continue;
        }
        if (wc.lmStructured) {
          // Demote: drop the matching structure, reroute as a plain tree.
          obstacles.release(wc.net);
          for (const chip::ValveId v : wc.spec.valves) {
            const geom::Point cell = chip.valve(v).pos;
            obstacles.occupy(std::span<const geom::Point>(&cell, 1), wc.net);
          }
          wc.lmStructured = false;
          wc.wasDemoted = true;
          wc.internallyRouted = false;
          wc.treePaths.clear();
          wc.sinkSequences.clear();
          ++result.declusteredCount;
          ++result.escapeDemotions;
          auto parts = routeWithDeclustering(chip, obstacles, std::move(wc),
                                             allocateNet, &result.declusteredCount);
          for (auto& p : parts) next.push_back(std::move(p));
        } else {
          ++result.escapeSplits;
          auto parts = forceSplit(chip, obstacles, std::move(wc), allocateNet,
                                  &result.declusteredCount);
          for (auto& p : parts) next.push_back(std::move(p));
        }
      }
      clusters = std::move(next);
    }
  };

  // --- Stage 5: final path detouring for length matching ------------------
  const auto runFinalDetour = [&] {
    for (WorkCluster& wc : clusters) {
      if (!wc.lmStructured || wc.pin < 0 || wc.ecoFrozen) continue;
      // The escape may have attached away from the structure's root (wide
      // taps): re-derive which segments lie on each sink's pin path.
      if (!wc.escapePath.empty() && wc.escapePath.front() != wc.tap)
        rebuildDetourStructure(chip, wc);
      const geom::Point origin = chip.pin(wc.pin).pos;
      if (config.detourStage == DetourStage::kFinal) {
        DetourStats stats;
        detourClusterForMatching(chip, obstacles, wc, origin, chip.delta,
                                 config.detourIterations, &stats,
                                 config.useBoundedDetour);
        result.detourReroutes += stats.reroutes;
        result.detourBumpFallbacks += stats.bumpFallbacks;
        result.detourIterations += stats.iterations;
        result.detourRestores += stats.restores;
      } else {
        // Detour-first: verify that tap-side matching survived escape.
        const auto lengths = measureValveLengths(chip, wc, origin);
        const auto [lo, hi] = std::minmax_element(lengths.begin(), lengths.end());
        wc.lengthMatched = !lengths.empty() && *lo >= 0 && (*hi - *lo) <= chip.delta;
      }
    }
  };

  trace::Span spanEscape("stage.escape", "pipeline");
  runEscapeLoop();
  spanEscape.arg("rounds", result.escapeRounds);
  spanEscape.close();
  const auto tEscapeEnd = Clock::now();
  result.times.escape = seconds(tRouteEnd, tEscapeEnd);
  const route::SearchCounters tallyEscape = requestTally.snapshot();
  result.searchEscape = tallyEscape - tallyRoute;
  // The flow solver has no A* tally of its own; graft its effort counters
  // into the escape search block (searches = label passes, expansions =
  // settled nodes, bounded visits = augmentations applied).
  result.searchEscape.searches +=
      escapeCounters.dijkstraPasses + escapeCounters.bidirPasses;
  result.searchEscape.expansions += escapeCounters.settles;
  result.searchEscape.boundedVisits += escapeCounters.augmentations;

  trace::Span spanDetour("stage.detour", "pipeline");
  runFinalDetour();

  // --- Matching-driven rip-up: a constrained cluster that routed but could
  // not be equalized (typically a wide tap anchored at a leaf because a
  // plain tree walls it in) gets one more chance: relax the nearest plain
  // blocker, re-run the escape flow from scratch, and detour again.
  for (int retry = 0; retry < config.matchingRetries; ++retry) {
    if (config.detourStage != DetourStage::kFinal) break;
    std::vector<std::size_t> hopeless;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      const WorkCluster& wc = clusters[i];
      if (wc.lmStructured && wc.pin >= 0 && wc.wantsMatching() &&
          !wc.lengthMatched && !wc.ecoFrozen)
        hopeless.push_back(i);
    }
    if (hopeless.empty()) break;

    std::vector<char> relax(clusters.size(), 0);
    bool anyBlocker = false;
    for (const std::size_t h : hopeless) {
      const std::size_t blocker = nearestRelaxable(chip, clusters, relax, h,
                                                   clusters[h].tap, /*plainOnly=*/true);
      if (blocker < clusters.size()) {
        relax[blocker] = 1;
        anyBlocker = true;
      }
    }
    if (!anyBlocker) break;

    ripAllEscapes(obstacles, clusters);
    std::vector<WorkCluster> next;
    next.reserve(clusters.size());
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      WorkCluster& wc = clusters[i];
      if (relax[i]) {
        ++result.escapeSplits;
        auto parts = forceSplit(chip, obstacles, std::move(wc), allocateNet,
                                &result.declusteredCount);
        for (auto& p : parts) next.push_back(std::move(p));
        continue;
      }
      if (wc.lmStructured && wc.wantsMatching() && !wc.lengthMatched &&
          !wc.ecoFrozen) {
        // Give the original DME root another chance now that space opened.
        wc.wideTap = false;
        wc.tap = wc.rootTap;
        wc.tapCells = {wc.rootTap};
      }
      next.push_back(std::move(wc));
    }
    clusters = std::move(next);

    runEscapeLoop();
    runFinalDetour();
  }
  spanDetour.arg("reroutes", result.detourReroutes);
  spanDetour.arg("restores", result.detourRestores);
  spanDetour.close();
  const auto tDetourEnd = Clock::now();
  result.times.detour = seconds(tEscapeEnd, tDetourEnd);
  result.searchDetour = requestTally.snapshot() - tallyEscape;

  // --- Harvest ------------------------------------------------------------
  result.complete = true;
  for (WorkCluster& wc : clusters) {
    RoutedCluster rc;
    rc.valves = wc.spec.valves;
    rc.lengthMatchRequested = wc.spec.lengthMatched && !wc.wasDemoted;
    rc.lengthMatched = wc.lengthMatched;
    rc.pin = wc.pin;
    rc.treePaths = wc.treePaths;
    rc.escapePath = wc.escapePath;
    rc.tap = wc.tap;
    rc.ecoCarried = wc.ecoFrozen;
    rc.routed = wc.pin >= 0;
    if (rc.routed) {
      rc.valveLengths = measureValveLengths(chip, wc, chip.pin(wc.pin).pos);
      rc.routed = std::all_of(rc.valveLengths.begin(), rc.valveLengths.end(),
                              [](std::int64_t l) { return l >= 0; });
    }
    rc.totalLength = std::max<std::int64_t>(0, obstacles.countOwnedBy(wc.net) - 1);
    if (!rc.routed) result.complete = false;
    result.totalChannelLength += rc.totalLength;
    if (rc.lengthMatchRequested && rc.lengthMatched) {
      ++result.matchedClusterCount;
      result.matchedChannelLength += rc.totalLength;
    }
    result.clusters.push_back(std::move(rc));
  }
  result.times.total = seconds(tStart, Clock::now());

  // --- Metrics registry: every counter of the run in one structure -------
  trace::MetricsRegistry& m = result.metrics;
  m.setInt("config.jobs", result.parallelJobs);
  m.setInt("pool.batches_inline",
           static_cast<std::int64_t>(pool.inlineBatches() - poolInline0));
  m.setInt("pool.batches_dispatched",
           static_cast<std::int64_t>(pool.dispatchedBatches() - poolDispatched0));
  m.setInt("pipeline.complete", result.complete ? 1 : 0);
  m.setInt("clusters.total", static_cast<std::int64_t>(result.clusters.size()));
  m.setInt("clusters.multi_valve", result.multiValveClusterCount);
  m.setInt("clusters.matched", result.matchedClusterCount);
  m.setInt("clusters.declustered", result.declusteredCount);
  m.setInt("length.total", result.totalChannelLength);
  m.setInt("length.matched", result.matchedChannelLength);
  m.setInt("lm.dme_clusters", lmStats.dmeClusters);
  m.setInt("lm.pair_clusters", lmStats.pairClusters);
  m.setInt("lm.candidates_built", lmStats.candidatesBuilt);
  m.setInt("lm.demoted", lmStats.demoted);
  m.setInt("lm.selection_exact", lmStats.selectionExact ? 1 : 0);
  m.setReal("lm.selection_objective", lmStats.selectionObjective);
  m.setInt("lm.negotiation_iterations", lmStats.negotiationIterations);
  m.setInt("escape.rounds", result.escapeRounds);
  m.setInt("escape.wide_tap_remedies", result.escapeWideTapRemedies);
  m.setInt("escape.demotions", result.escapeDemotions);
  m.setInt("escape.splits", result.escapeSplits);
  // Warm-restart effort of the incremental escape session; zeros when the
  // session was disabled or never constructed (keeps the schema stable).
  // Counters are diffed against the pre-request snapshot so a session
  // shared across serve requests still reports per-request numbers
  // (cold_builds = 0 is the signature of a warm cross-request reuse).
  {
    const EscapeFlowSession::Stats es =
        escapeSession != nullptr ? escapeSession->stats() : EscapeFlowSession::Stats{};
    m.setInt("escape.flow.incremental", escapeSession != nullptr ? 1 : 0);
    m.setInt("escape.flow.cold_builds", es.coldBuilds - escapeStats0.coldBuilds);
    m.setInt("escape.flow.warm_rounds", es.warmRounds - escapeStats0.warmRounds);
    m.setInt("escape.flow.warm_delta_cells",
             es.warmDeltaCells - escapeStats0.warmDeltaCells);
    m.setInt("escape.flow.warm_delta_arcs",
             es.warmDeltaArcs - escapeStats0.warmDeltaArcs);
    m.setInt("escape.flow.persistent_arcs", es.persistentArcs);
  }
  // Solver-effort counters summed over every escape pass.
  m.setInt("escape.flow.fast", config.fastEscape ? 1 : 0);
  m.setInt("escape.flow.dijkstra_passes",
           static_cast<std::int64_t>(escapeCounters.dijkstraPasses));
  m.setInt("escape.flow.augmentations",
           static_cast<std::int64_t>(escapeCounters.augmentations));
  m.setInt("escape.flow.multi_aug_paths",
           static_cast<std::int64_t>(escapeCounters.multiAugPaths));
  m.setInt("escape.flow.bidir_passes",
           static_cast<std::int64_t>(escapeCounters.bidirPasses));
  m.setInt("escape.flow.bucket_pushes",
           static_cast<std::int64_t>(escapeCounters.bucketPushes));
  m.setInt("escape.flow.heap_pushes",
           static_cast<std::int64_t>(escapeCounters.heapPushes));
  m.setInt("escape.flow.queue_pops",
           static_cast<std::int64_t>(escapeCounters.queuePops));
  m.setInt("escape.flow.settles",
           static_cast<std::int64_t>(escapeCounters.settles));
  m.setInt("escape.flow.early_exits",
           static_cast<std::int64_t>(escapeCounters.earlyExits));
  m.setInt("escape.flow.warm_arc_touches",
           static_cast<std::int64_t>(escapeCounters.warmArcTouches));
  m.setInt("escape.flow.cost", escapeFlowCost);
  m.setInt("escape.flow.first_cost", escapeFirstCost);
  m.setInt("escape.flow.first_routed", escapeFirstRouted);
  // Cumulative flow network build (or warm-delta) and solve time across
  // every escape pass; the incremental session's win shows up here.
  m.setReal("time.escape_flow_build_s", escapeFlowBuildS);
  m.setReal("time.escape_flow_run_s", escapeFlowRunS);
  m.setInt("detour.reroutes", result.detourReroutes);
  m.setInt("detour.bump_fallbacks", result.detourBumpFallbacks);
  m.setInt("detour.iterations", result.detourIterations);
  m.setInt("detour.restores", result.detourRestores);
  const auto fillSearch = [&m](const std::string& prefix,
                               const route::SearchCounters& c) {
    m.setInt(prefix + ".searches", static_cast<std::int64_t>(c.searches));
    m.setInt(prefix + ".expansions", static_cast<std::int64_t>(c.expansions));
    m.setInt(prefix + ".bounded_visits", static_cast<std::int64_t>(c.boundedVisits));
  };
  fillSearch("search.cluster_routing", result.searchClusterRouting);
  fillSearch("search.escape", result.searchEscape);
  fillSearch("search.detour", result.searchDetour);
  m.setReal("time.clustering_s", result.times.clustering);
  m.setReal("time.cluster_routing_s", result.times.clusterRouting);
  m.setReal("time.escape_s", result.times.escape);
  m.setReal("time.detour_s", result.times.detour);
  m.setReal("time.total_s", result.times.total);
  return result;
}

}  // namespace

PacorResult routeChip(const chip::Chip& chip, const PacorConfig& config,
                      const RouteResources& resources) {
  return routeChipImpl(chip, config, resources, nullptr);
}

namespace detail {

PacorResult routeChipSeeded(const chip::Chip& chip, const PacorConfig& config,
                            const RouteResources& resources, PipelineSeed seed) {
  return routeChipImpl(chip, config, resources, &seed);
}

}  // namespace detail

}  // namespace pacor::core
