#pragma once

#include <span>
#include <vector>

#include "grid/obstacle_map.hpp"
#include "pacor/work.hpp"

namespace pacor::core {

/// Outcome of one simultaneous escape-routing pass.
struct EscapeOutcome {
  int requested = 0;
  int routedCount = 0;
  std::vector<std::size_t> failed;  ///< indices into the cluster span
  std::int64_t flowCost = 0;        ///< total channel length of escape paths
};

/// Simultaneous escape routing of all internally-routed clusters to the
/// control pins via the paper's min-cost flow formulation (Sec. 5):
/// routing cells are node-split with unit capacity (constraint 12 -- no
/// crossings), each cluster feeds flow out of its tap cells (constraints
/// 6/10: the Steiner root for matched trees, the middle point for matched
/// pairs, any tree cell for plain clusters), non-pin boundary cells are
/// blocked (constraint 8), and every control pin accepts at most one path.
/// Min-cost max-flow realizes the beta-dominant objective exactly:
/// maximize the routed count, then minimize total channel length.
///
/// Successful clusters get escapePath (tap ... pin) committed into
/// `obstacles` and their pin assigned. Already-escaped clusters (pin >= 0)
/// are left untouched and their pins stay reserved.
EscapeOutcome escapeRoute(const chip::Chip& chip, grid::ObstacleMap& obstacles,
                          std::span<WorkCluster*> clusters);

/// Sequential greedy baseline for the same problem: clusters escape one at
/// a time via multi-target A* to the nearest free pin, each committed path
/// becoming an obstacle for the rest. This is what the paper's min-cost
/// flow formulation replaces -- the greedy order can block later clusters
/// and pick globally suboptimal pins; used by the escape ablation bench.
EscapeOutcome escapeRouteSequential(const chip::Chip& chip,
                                    grid::ObstacleMap& obstacles,
                                    std::span<WorkCluster*> clusters);

}  // namespace pacor::core
